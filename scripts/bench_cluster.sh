#!/bin/sh
# bench_cluster.sh — record sharded serving-tier latency (BENCH_cluster.json).
#
# Builds sitegen, objectrunnerd and loadgen; generates a small books
# corpus; starts a TWO-NODE cluster (consistent-hash ring, shared
# wrapper spill) on ephemeral ports; and replays the corpus open-loop
# against BOTH daemons, so roughly half the requests arrive at the
# non-owner and cross the forwarding path. The report at $OUT carries
# per-node request counts alongside the usual latency quantiles. Knobs
# are environment variables so CI can keep the run short:
#
#   RPS=25 DURATION=3s CONCURRENCY=8 PAGES=6 OUT=BENCH_cluster.json
set -eu

RPS=${RPS:-25}
DURATION=${DURATION:-3s}
CONCURRENCY=${CONCURRENCY:-8}
PAGES=${PAGES:-6}
OUT=${OUT:-BENCH_cluster.json}

workdir=$(mktemp -d)
pid1=""
pid2=""
cleanup() {
    [ -n "$pid1" ] && kill "$pid1" 2>/dev/null || true
    [ -n "$pid2" ] && kill "$pid2" 2>/dev/null || true
    rm -rf "$workdir" "$OUT.tmp"
}
trap cleanup EXIT INT TERM

go build -o "$workdir/sitegen" ./cmd/sitegen
go build -o "$workdir/objectrunnerd" ./cmd/objectrunnerd
go build -o "$workdir/loadgen" ./cmd/loadgen

"$workdir/sitegen" -out "$workdir/bench" -pages "$PAGES" -domains books >/dev/null

# Each daemon needs the other's address in its -peers roster before
# either has bound a socket, so ephemeral bind-then-read won't do.
# Reserve two free ports the same way the e2e tests do: bind :0, read
# the port, close. The window between close and the daemon's own bind
# is a benign race on a bench box.
cat > "$workdir/freeport.go" <<'EOF'
package main

import (
	"fmt"
	"net"
	"os"
)

func main() {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer l.Close()
	fmt.Println(l.Addr().(*net.TCPAddr).Port)
}
EOF
port1=$(go run "$workdir/freeport.go")
port2=$(go run "$workdir/freeport.go")
addr1="127.0.0.1:$port1"
addr2="127.0.0.1:$port2"

mkdir -p "$workdir/spill"
"$workdir/objectrunnerd" -addr "$addr1" -node-id n1 \
    -peers "n1,n2=http://$addr2" -wrapper-cache-dir "$workdir/spill" \
    2>"$workdir/n1.log" &
pid1=$!
"$workdir/objectrunnerd" -addr "$addr2" -node-id n2 \
    -peers "n1=http://$addr1,n2" -wrapper-cache-dir "$workdir/spill" \
    2>"$workdir/n2.log" &
pid2=$!

# The daemons print "listening on ADDR" to stderr once bound — that
# line is their startup contract (see cmd/objectrunnerd).
for node in n1 n2; do
    i=0
    while [ $i -lt 100 ]; do
        grep -q 'listening on' "$workdir/$node.log" && break
        eval "pid=\$pid${node#n}"
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "bench_cluster: $node exited during startup:" >&2
            cat "$workdir/$node.log" >&2
            exit 1
        fi
        sleep 0.1
        i=$((i + 1))
    done
    if ! grep -q 'listening on' "$workdir/$node.log"; then
        echo "bench_cluster: $node never reported its address" >&2
        exit 1
    fi
done

# Write through a temp path and rename only on success, so an aborted
# run never truncates the previous report; the trap removes the temp.
"$workdir/loadgen" -addr "http://$addr1,http://$addr2" -corpus "$workdir/bench" \
    -rps "$RPS" -concurrency "$CONCURRENCY" -duration "$DURATION" -out "$OUT.tmp"
mv "$OUT.tmp" "$OUT"

kill -TERM "$pid1" "$pid2"
wait "$pid1" || true
wait "$pid2" || true
pid1=""
pid2=""
echo "bench_cluster: report at $OUT"
