#!/bin/sh
# bench_load.sh — record serving-tier latency under load (BENCH_load.json).
#
# Builds sitegen, objectrunnerd and loadgen; generates a small books
# corpus; starts the daemon on an ephemeral port; replays the corpus
# open-loop at a modest rate; and leaves the latency report (RPS,
# error/shed counts, p50/p90/p95/p99/max per source) at $OUT. The knobs
# are environment variables so CI can keep the run short:
#
#   RPS=25 DURATION=3s CONCURRENCY=8 PAGES=6 OUT=BENCH_load.json
set -eu

RPS=${RPS:-25}
DURATION=${DURATION:-3s}
CONCURRENCY=${CONCURRENCY:-8}
PAGES=${PAGES:-6}
OUT=${OUT:-BENCH_load.json}

workdir=$(mktemp -d)
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$workdir" "$OUT.tmp"
}
trap cleanup EXIT INT TERM

go build -o "$workdir/sitegen" ./cmd/sitegen
go build -o "$workdir/objectrunnerd" ./cmd/objectrunnerd
go build -o "$workdir/loadgen" ./cmd/loadgen

"$workdir/sitegen" -out "$workdir/bench" -pages "$PAGES" -domains books >/dev/null

"$workdir/objectrunnerd" -addr 127.0.0.1:0 2>"$workdir/daemon.log" &
daemon_pid=$!

# The daemon prints "listening on ADDR" to stderr once the socket is
# bound — that line is its startup contract (see cmd/objectrunnerd).
addr=""
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's/.*listening on \(.*\)/\1/p' "$workdir/daemon.log")
    [ -n "$addr" ] && break
    if ! kill -0 "$daemon_pid" 2>/dev/null; then
        echo "bench_load: daemon exited during startup:" >&2
        cat "$workdir/daemon.log" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "bench_load: daemon never reported its address" >&2
    exit 1
fi

# Write through a temp path and rename only on success, so an aborted
# run never truncates the previous report; the trap removes the temp.
"$workdir/loadgen" -addr "http://$addr" -corpus "$workdir/bench" \
    -rps "$RPS" -concurrency "$CONCURRENCY" -duration "$DURATION" -out "$OUT.tmp"
mv "$OUT.tmp" "$OUT"

kill -TERM "$daemon_pid"
wait "$daemon_pid" || true
daemon_pid=""
echo "bench_load: report at $OUT"
