package objectrunner

import (
	"errors"

	"objectrunner/internal/store"
	"objectrunner/internal/wrapper"
)

// Sentinel errors of the error-honest API surface. Every error returned by
// the Err/Context methods wraps exactly one of these, so callers branch
// with errors.Is instead of parsing messages:
//
//	objs, err := w.ExtractErr(page)
//	switch {
//	case errors.Is(err, objectrunner.ErrNoWrapper): // never inferred
//	case errors.Is(err, objectrunner.ErrAborted):   // source discarded
//	case errors.Is(err, objectrunner.ErrCanceled):  // ctx canceled
//	}
//
// Cancellation errors additionally wrap the underlying context error, so
// errors.Is(err, context.Canceled) (or context.DeadlineExceeded) also
// holds.
var (
	// ErrAborted reports a source discarded by the pipeline's abort
	// conditions (no annotated block, empty sample, unmatched SOD). The
	// wrapper's Report explains which stage gave up and why.
	ErrAborted = errors.New("objectrunner: source discarded")

	// ErrNoWrapper reports an extraction call on a nil wrapper — one that
	// was never inferred or failed to load.
	ErrNoWrapper = errors.New("objectrunner: no wrapper")

	// ErrCanceled reports a call stopped by its context before completing.
	ErrCanceled = errors.New("objectrunner: canceled")
)

// Persistence errors, re-exported from the wrapper layer so callers of
// Save/LoadWrapper need only this package.
var (
	// ErrFormat reports a persistence stream that is not a wrapper stream,
	// is of an unsupported format version, or fails its checksum.
	ErrFormat = wrapper.ErrFormat

	// ErrSODMismatch reports a persisted wrapper loaded into an extractor
	// whose SOD differs from the one the wrapper was inferred for.
	ErrSODMismatch = wrapper.ErrSODMismatch
)

// ErrClosed reports a request on a Service whose cache was drained with
// Close — the serving tier is shutting down.
var ErrClosed = store.ErrClosed
