// Command objectrunner infers a wrapper for a structured Web source and
// extracts the objects described by an SOD.
//
// Usage:
//
//	objectrunner -sod concert.sod -pages './pages/*.html' \
//	    -dict Artist=artists.txt -dict Theater=theaters.txt [-json]
//
// The SOD file holds a Structured Object Description in the DSL form,
// e.g.
//
//	tuple {
//	    artist: instanceOf(Artist)
//	    date: date
//	    location: tuple { theater: instanceOf(Theater), address: address ? }
//	}
//
// Dictionary files list one instance per line (optionally "value<TAB>confidence").
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"objectrunner"
	"objectrunner/internal/obs"
)

type dictFlags map[string]string

func (d dictFlags) String() string { return fmt.Sprint(map[string]string(d)) }

func (d dictFlags) Set(v string) error {
	parts := strings.SplitN(v, "=", 2)
	if len(parts) != 2 {
		return fmt.Errorf("expected Class=file, got %q", v)
	}
	d[parts[0]] = parts[1]
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "objectrunner:", err)
		os.Exit(1)
	}
}

func run() error {
	sodPath := flag.String("sod", "", "path to the SOD file (required)")
	pagesGlob := flag.String("pages", "", "glob of source HTML pages (required)")
	dicts := dictFlags{}
	flag.Var(dicts, "dict", "Class=file dictionary (repeatable)")
	asJSON := flag.Bool("json", false, "emit objects as JSON")
	dedupe := flag.Bool("dedup", true, "drop duplicate objects")
	report := flag.Bool("report", false, "print the wrapper inference report to stderr")
	workers := flag.Int("workers", 0, "worker goroutines for per-page pipeline stages (0 = one per CPU)")
	saveWrapper := flag.String("save-wrapper", "", "persist the inferred wrapper to this file")
	loadWrapper := flag.String("load-wrapper", "", "load a persisted wrapper instead of inferring one")
	cacheDir := flag.String("wrapper-cache-dir", "", "wrapper cache directory: infer on first run, reuse the persisted wrapper afterwards")
	timeout := flag.Duration("timeout", 0, "abort inference and extraction after this long (0 = no limit)")
	obsCLI := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	if *sodPath == "" || *pagesGlob == "" {
		flag.Usage()
		return fmt.Errorf("-sod and -pages are required")
	}
	observer, obsCleanup, err := obsCLI.Start()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := obsCleanup(); cerr != nil {
			fmt.Fprintln(os.Stderr, "objectrunner: observability cleanup:", cerr)
		}
	}()
	sodText, err := os.ReadFile(*sodPath)
	if err != nil {
		return err
	}
	cfg := objectrunner.DefaultConfig()
	cfg.Workers = *workers
	opts := []objectrunner.Option{objectrunner.WithConfig(cfg)}
	if observer != nil {
		opts = append(opts, objectrunner.WithObserver(observer))
	}
	// Sorted for a deterministic dictionary load (and error) order.
	classes := make([]string, 0, len(dicts))
	for class := range dicts {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	for _, class := range classes {
		entries, err := readDictionary(dicts[class])
		if err != nil {
			return fmt.Errorf("dictionary %s: %w", class, err)
		}
		opts = append(opts, objectrunner.WithDictionary(class, entries))
	}
	ex, err := objectrunner.New(string(sodText), opts...)
	if err != nil {
		return err
	}

	files, err := filepath.Glob(*pagesGlob)
	if err != nil {
		return err
	}
	sort.Strings(files)
	if len(files) == 0 {
		return fmt.Errorf("no pages match %q", *pagesGlob)
	}
	pages := make([]string, 0, len(files))
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		pages = append(pages, string(b))
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	w, err := acquireWrapper(ctx, ex, pages, *loadWrapper, *cacheDir, *pagesGlob)
	if *report && w != nil {
		fmt.Fprintln(os.Stderr, w.Report())
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrapper over %d pages: %s\n", len(pages), w.Describe())
	if *saveWrapper != "" {
		if err := objectrunner.SaveWrapperFile(w, *saveWrapper); err != nil {
			return fmt.Errorf("save wrapper: %w", err)
		}
		fmt.Fprintf(os.Stderr, "wrapper saved to %s\n", *saveWrapper)
	}

	perPage, err := w.ExtractBatchContext(ctx, pages)
	if err != nil {
		return err
	}
	var objects []*objectrunner.Object
	for _, objs := range perPage {
		objects = append(objects, objs...)
	}
	if *dedupe {
		objects = objectrunner.Deduplicate(objects)
	}
	// Feed extractions back into the dictionaries (paper Eq. 4); in-process
	// only, but it closes the loop and reports enrichment in traces.
	ex.Enrich(objects, w.Score())
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(objectrunner.FlattenObjects(objects))
	}
	for i, o := range objects {
		fmt.Printf("%4d %s\n", i+1, o)
	}
	fmt.Fprintf(os.Stderr, "%d objects extracted\n", len(objects))
	return nil
}

// acquireWrapper resolves the wrapper by precedence: an explicitly loaded
// file, then the wrapper cache (keyed by the pages glob, inferring and
// persisting on a miss), then plain context-aware inference.
func acquireWrapper(ctx context.Context, ex *objectrunner.Extractor, pages []string, loadPath, cacheDir, sourceKey string) (*objectrunner.Wrapper, error) {
	if loadPath != "" {
		w, err := objectrunner.LoadWrapperFile(loadPath, ex)
		if err != nil {
			return nil, fmt.Errorf("load wrapper: %w", err)
		}
		fmt.Fprintf(os.Stderr, "wrapper loaded from %s\n", loadPath)
		return w, nil
	}
	if cacheDir != "" {
		svc := objectrunner.NewService(ex, objectrunner.StoreConfig{SpillDir: cacheDir})
		w, err := svc.Wrapper(ctx, sourceKey, pages)
		if err != nil {
			return w, err
		}
		if st := svc.Stats(); st.DiskHits > 0 {
			fmt.Fprintf(os.Stderr, "wrapper loaded from cache %s\n", cacheDir)
		}
		return w, nil
	}
	return ex.WrapContext(ctx, pages)
}

func readDictionary(path string) ([]objectrunner.Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var entries []objectrunner.Entry
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		conf := 0.9
		if i := strings.IndexByte(line, '\t'); i >= 0 {
			if v, err := strconv.ParseFloat(strings.TrimSpace(line[i+1:]), 64); err == nil {
				conf = v
			}
			line = line[:i]
		}
		entries = append(entries, objectrunner.Entry{Value: line, Confidence: conf})
	}
	return entries, sc.Err()
}
