// Command evaluate regenerates the paper's tables and figures over the
// synthetic benchmark (see DESIGN.md §4 for the experiment index):
//
//	evaluate -table 1          # Table I: per-source extraction results
//	evaluate -table 2          # Table II: SOD-guided vs random sampling
//	evaluate -table 3          # Table III: ObjectRunner vs ExAlg vs RoadRunner
//	evaluate -figure 6         # Figure 6(a)+(b)
//	evaluate -ablation support # support sweep on publications
//	evaluate -ablation coverage# dictionary-coverage sweep on concerts
//	evaluate -ablation alpha   # block-threshold sweep on albums
//	evaluate -timing           # wrapping time per source
//	evaluate -all              # everything
package main

import (
	"flag"
	"fmt"
	"os"

	"objectrunner/internal/experiments"
	"objectrunner/internal/obs"
	"objectrunner/internal/sitegen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "evaluate:", err)
		os.Exit(1)
	}
}

func run() error {
	table := flag.Int("table", 0, "reproduce Table 1, 2 or 3")
	figure := flag.Int("figure", 0, "reproduce Figure 6")
	ablation := flag.String("ablation", "", "ablation: support | coverage | alpha")
	timing := flag.Bool("timing", false, "measure wrapping times")
	all := flag.Bool("all", false, "run everything")
	seed := flag.Uint64("seed", 42, "benchmark seed")
	pages := flag.Int("pages", 20, "pages per source")
	workers := flag.Int("workers", 0, "worker goroutines for per-page pipeline stages (0 = one per CPU)")
	obsCLI := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	observer, obsCleanup, err := obsCLI.Start()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := obsCleanup(); cerr != nil {
			fmt.Fprintln(os.Stderr, "evaluate: observability cleanup:", cerr)
		}
	}()

	cfg := sitegen.DefaultConfig()
	cfg.Seed = *seed
	cfg.PagesPerSource = *pages

	env, err := experiments.NewEnv(cfg)
	if err != nil {
		return err
	}
	env.Obs = observer
	env.Workers = *workers
	ran := false
	if *all || *table == 1 {
		fmt.Println(experiments.FormatTable1(env.Table1()))
		ran = true
	}
	if *all || *table == 2 {
		fmt.Println(experiments.FormatTable2(env.Table2()))
		ran = true
	}
	var rows3 []experiments.Table3Row
	if *all || *table == 3 || *figure == 6 {
		rows3 = env.Table3()
	}
	if *all || *table == 3 {
		fmt.Println(experiments.FormatTable3(rows3))
		ran = true
	}
	if *all || *figure == 6 {
		fmt.Println(experiments.FormatFigure6(experiments.Figure6FromTable3(rows3)))
		ran = true
	}
	if *all || *ablation == "support" {
		fmt.Println(experiments.FormatSupportAblation("publications", env.SupportAblation("publications")))
		ran = true
	}
	if *all || *ablation == "coverage" {
		pts, err := experiments.CoverageAblation(cfg, "concerts", []float64{0.10, 0.20, 0.40, 0.80})
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatCoverageAblation("concerts", pts))
		ran = true
	}
	if *all || *ablation == "alpha" {
		fmt.Println(experiments.FormatAlphaAblation("albums", env.AlphaAblation("albums", []float64{0, 0.25, 0.5, 1, 2})))
		ran = true
	}
	if *all || *timing {
		fmt.Println(experiments.FormatTimings(env.WrappingTimes()))
		ran = true
	}
	if !ran {
		flag.Usage()
		return fmt.Errorf("nothing selected; use -table, -figure, -ablation, -timing or -all")
	}
	return nil
}
