// Command benchguard compares a fresh benchmark run against a committed
// baseline and fails when any benchmark regressed past the tolerance —
// the regression gate behind `make bench-guard`.
//
// Both sides are `go test -json` streams as written by the Makefile's
// bench targets (BENCH_parallel.json, BENCH_serve.json): every "output"
// event whose text is a benchmark result line like
//
//	BenchmarkWrapParallel/workers=4-8   	     100	  14752310 ns/op	  123456 B/op	  789 allocs/op
//
// is parsed into (name, ns/op, allocs/op). The trailing -N GOMAXPROCS
// suffix is stripped so records compare across machines, and when a
// stream carries several results for one benchmark (-count > 1), the
// minimum of each measure is kept — the fastest observed run is the
// least noisy estimate of what the code can do, which is the right
// basis on loaded CI runners.
//
// Usage:
//
//	benchguard [-tolerance 0.20] [-alloc-tolerance 0] baseline.json:fresh.json [more pairs...]
//
// Exit status 1 when any benchmark present in a baseline is missing from
// its fresh run, slower than baseline*(1+tolerance), or allocating more
// than baseline*(1+alloc-tolerance); benchmarks only present in the
// fresh run are reported but do not fail (they gate once they enter the
// baseline). allocs/op gates only where the baseline recorded it (runs
// with -benchmem), so pre-benchmem baselines stay usable. The diff table
// always prints, pass or fail.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// test2json splits one logical benchmark result across output events:
// the name lands in its own event ("BenchmarkWrapParallel/workers=1 \t")
// and the numbers in the next ("      20\t  14713999 ns/op\t..."), so
// the reader recognizes three shapes and stitches name→result pairs.
// The trailing -N GOMAXPROCS suffix is stripped from names.
var (
	// A complete result on one line (plain `go test -bench` output).
	fullLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(.*)$`)
	// A name-only line announcing the benchmark the next result belongs to.
	nameLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s*$`)
	// A result-only line: iteration count then ns/op.
	resultLine = regexp.MustCompile(`^\s*\d+\s+([0-9.]+) ns/op(.*)$`)
	// The -benchmem tail of a result line.
	allocsPart = regexp.MustCompile(`\s([0-9.]+) allocs/op`)
)

// result is the per-benchmark record the guard compares: minimum ns/op
// across repeats, and minimum allocs/op where -benchmem was on.
type result struct {
	ns        float64
	allocs    float64
	hasAllocs bool
}

// testEvent is the subset of the `go test -json` event stream we read.
type testEvent struct {
	Action string `json:"Action"`
	Test   string `json:"Test"`
	Output string `json:"Output"`
}

// parseStream reads a `go test -json` (or plain `go test -bench`) stream
// into name → best result. An empty stream is an error: a gate that
// compared nothing must not pass.
func parseStream(r io.Reader, label string) (map[string]result, error) {
	out := make(map[string]result)
	record := func(name, nsText, tail string) {
		ns, err := strconv.ParseFloat(nsText, 64)
		if err != nil {
			return
		}
		cur, seen := out[name]
		if !seen || ns < cur.ns {
			cur.ns = ns
		}
		if m := allocsPart.FindStringSubmatch(tail); m != nil {
			if al, err := strconv.ParseFloat(m[1], 64); err == nil {
				if !cur.hasAllocs || al < cur.allocs {
					cur.allocs = al
					cur.hasAllocs = true
				}
			}
		}
		out[name] = cur
	}
	// Name of the last name-only output event, waiting for its numbers.
	pending := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev testEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			// Tolerate stray non-JSON lines (e.g. a plain `go test` dump);
			// try to parse the raw line as a benchmark result instead.
			ev = testEvent{Action: "output", Output: sc.Text()}
		}
		if ev.Action != "output" {
			continue
		}
		line := strings.TrimRight(ev.Output, " \t\n")
		switch {
		case fullLine.MatchString(line):
			m := fullLine.FindStringSubmatch(line)
			record(m[1], m[2], m[3])
			pending = ""
		case nameLine.MatchString(line):
			pending = nameLine.FindStringSubmatch(line)[1]
		case resultLine.MatchString(line):
			// Prefer the stitched name; fall back to the event's Test
			// attribution (present on the first result per benchmark, and
			// never carrying the -N GOMAXPROCS suffix).
			name := pending
			if name == "" {
				name = ev.Test
			}
			if name != "" {
				m := resultLine.FindStringSubmatch(line)
				record(name, m[1], m[2])
			}
			pending = ""
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", label)
	}
	return out, nil
}

// readBench parses the stream at path.
func readBench(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseStream(f, path)
}

func human(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3gs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.4gms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.4gµs", ns/1e3)
	default:
		return fmt.Sprintf("%.4gns", ns)
	}
}

// comparePair prints the diff table for one baseline:fresh pair and
// reports whether anything regressed past the tolerances.
func comparePair(w io.Writer, basePath, freshPath string, base, fresh map[string]result, tolerance, allocTolerance float64) (failed bool) {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%s vs %s (tolerance +%.0f%%, allocs +%.0f%%)\n", basePath, freshPath, tolerance*100, allocTolerance*100)
	for _, name := range names {
		b := base[name]
		f, ok := fresh[name]
		if !ok {
			fmt.Fprintf(w, "  FAIL %-50s baseline %10s  fresh: missing\n", name, human(b.ns))
			failed = true
			continue
		}
		delta := (f.ns - b.ns) / b.ns * 100
		verdict := "ok  "
		if f.ns > b.ns*(1+tolerance) {
			verdict = "FAIL"
			failed = true
		}
		alloc := ""
		if b.hasAllocs {
			switch {
			case !f.hasAllocs:
				// The baseline gates allocs but the fresh run did not
				// record them: treat as a regression, not a silent skip.
				verdict = "FAIL"
				failed = true
				alloc = fmt.Sprintf("  allocs %.0f → missing", b.allocs)
			case f.allocs > b.allocs*(1+allocTolerance):
				verdict = "FAIL"
				failed = true
				alloc = fmt.Sprintf("  allocs %.0f → %.0f", b.allocs, f.allocs)
			default:
				alloc = fmt.Sprintf("  allocs %.0f → %.0f", b.allocs, f.allocs)
			}
		}
		fmt.Fprintf(w, "  %s %-50s baseline %10s  fresh %10s  %+6.1f%%%s\n",
			verdict, name, human(b.ns), human(f.ns), delta, alloc)
	}
	for name, f := range fresh {
		if _, ok := base[name]; !ok {
			fmt.Fprintf(w, "  new  %-50s fresh %10s (not in baseline; add via `make bench-baseline`)\n", name, human(f.ns))
		}
	}
	return failed
}

func main() {
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional ns/op regression before failing (0.20 = +20%)")
	allocTolerance := flag.Float64("alloc-tolerance", 0, "allowed fractional allocs/op regression before failing (0 = any increase fails; gates only benchmarks whose baseline recorded allocs)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: benchguard [-tolerance 0.20] [-alloc-tolerance 0] baseline.json:fresh.json [more pairs...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	failed := false
	for _, pair := range flag.Args() {
		basePath, freshPath, ok := strings.Cut(pair, ":")
		if !ok {
			fmt.Fprintf(os.Stderr, "benchguard: argument %q is not baseline:fresh\n", pair)
			os.Exit(2)
		}
		base, err := readBench(basePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: baseline %v (regenerate with `make bench-baseline`)\n", err)
			os.Exit(2)
		}
		fresh, err := readBench(freshPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: fresh run %v\n", err)
			os.Exit(2)
		}
		if comparePair(os.Stdout, basePath, freshPath, base, fresh, *tolerance, *allocTolerance) {
			failed = true
		}
	}
	if failed {
		fmt.Println("bench-guard: FAILED — ns/op or allocs/op regressed past tolerance (or a benchmark disappeared)")
		os.Exit(1)
	}
	fmt.Println("bench-guard: ok")
}
