package main

import (
	"strings"
	"testing"
)

// ev builds one test2json output event line.
func ev(output string) string {
	// Keep it literal: the parser must survive real-world escaping, so
	// craft the JSON by hand only for well-formed events.
	b := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\t", `\t`, "\n", `\n`).Replace(output)
	return `{"Action":"output","Package":"objectrunner","Output":"` + b + `"}`
}

func TestParseStreamStitchedResult(t *testing.T) {
	stream := strings.Join([]string{
		ev("BenchmarkServeCache/cache_hit-8 \t\n"),
		ev("    1000\t     35476 ns/op\t    2088 B/op\t      63 allocs/op\n"),
	}, "\n")
	got, err := parseStream(strings.NewReader(stream), "t")
	if err != nil {
		t.Fatal(err)
	}
	r, ok := got["BenchmarkServeCache/cache_hit"]
	if !ok {
		t.Fatalf("benchmark not parsed: %v", got)
	}
	if r.ns != 35476 || !r.hasAllocs || r.allocs != 63 {
		t.Fatalf("result = %+v", r)
	}
}

func TestParseStreamMinAcrossRepeats(t *testing.T) {
	stream := strings.Join([]string{
		ev("BenchmarkX-8   100\t 200 ns/op\t 10 allocs/op\n"),
		ev("BenchmarkX-8   100\t 150 ns/op\t 12 allocs/op\n"),
		ev("BenchmarkX-8   100\t 180 ns/op\t  9 allocs/op\n"),
	}, "\n")
	got, err := parseStream(strings.NewReader(stream), "t")
	if err != nil {
		t.Fatal(err)
	}
	r := got["BenchmarkX"]
	if r.ns != 150 || r.allocs != 9 {
		t.Fatalf("min not kept per measure: %+v", r)
	}
}

// TestParseStreamMalformed drives the parser through broken streams: it
// must either recover the parseable results or reject the stream with an
// error — never report an empty result set as success.
func TestParseStreamMalformed(t *testing.T) {
	cases := []struct {
		name      string
		stream    string
		wantErr   bool
		wantNames []string
	}{
		{
			name:    "empty_stream",
			stream:  "",
			wantErr: true,
		},
		{
			name:    "missing_pass_event_results_still_parse",
			stream:  ev("BenchmarkY-8   50\t 300 ns/op\n"), // no run/pass events at all
			wantErr: false, wantNames: []string{"BenchmarkY"},
		},
		{
			name: "truncated_test2json_line",
			stream: strings.Join([]string{
				ev("BenchmarkA-8   10\t 100 ns/op\n"),
				`{"Action":"output","Output":"BenchmarkB-8   10\t 999 ns/`, // cut mid-event
			}, "\n"),
			wantErr: false, wantNames: []string{"BenchmarkA"},
		},
		{
			name: "non_json_garbage_between_events",
			stream: strings.Join([]string{
				"make[1]: Entering directory '/repo'",
				ev("BenchmarkA-8   10\t 100 ns/op\n"),
				"<<<some binary junk\x01\x02>>>",
			}, "\n"),
			wantErr: false, wantNames: []string{"BenchmarkA"},
		},
		{
			name: "plain_bench_output_not_json",
			stream: strings.Join([]string{
				"goos: linux",
				"BenchmarkPlain-8   \t 100\t 123 ns/op\t 1 B/op\t 2 allocs/op",
				"PASS",
			}, "\n"),
			wantErr: false, wantNames: []string{"BenchmarkPlain"},
		},
		{
			name: "name_event_without_result",
			stream: strings.Join([]string{
				ev("BenchmarkOrphan-8 \t\n"),
				ev("--- FAIL: something\n"),
			}, "\n"),
			wantErr: true, // nothing parseable: the orphan name never got numbers
		},
		{
			name:      "result_without_name_uses_test_attribution",
			stream:    `{"Action":"output","Test":"BenchmarkAttributed","Output":"    10\t 42 ns/op\n"}`,
			wantErr:   false,
			wantNames: []string{"BenchmarkAttributed"},
		},
		{
			name:    "only_non_output_events",
			stream:  `{"Action":"run","Test":"BenchmarkZ"}` + "\n" + `{"Action":"pass","Test":"BenchmarkZ"}`,
			wantErr: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parseStream(strings.NewReader(tc.stream), tc.name)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("expected error, got %v", got)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(tc.wantNames) {
				t.Fatalf("parsed %v, want names %v", got, tc.wantNames)
			}
			for _, n := range tc.wantNames {
				if _, ok := got[n]; !ok {
					t.Errorf("missing %s in %v", n, got)
				}
			}
		})
	}
}

// TestCompareAllocGate exercises the allocs/op gate: regression past the
// tolerance fails, a fresh run missing allocs where the baseline has
// them fails, and a benchmark absent from the baseline never fails.
func TestCompareAllocGate(t *testing.T) {
	base := map[string]result{
		"BenchmarkHit": {ns: 100, allocs: 60, hasAllocs: true},
	}
	cases := []struct {
		name      string
		fresh     map[string]result
		tol, aTol float64
		wantFail  bool
	}{
		{"identical", map[string]result{"BenchmarkHit": {ns: 100, allocs: 60, hasAllocs: true}}, 0.2, 0, false},
		{"alloc_regression_strict", map[string]result{"BenchmarkHit": {ns: 100, allocs: 61, hasAllocs: true}}, 0.2, 0, true},
		{"alloc_within_tolerance", map[string]result{"BenchmarkHit": {ns: 100, allocs: 65, hasAllocs: true}}, 0.2, 0.10, false},
		{"alloc_past_tolerance", map[string]result{"BenchmarkHit": {ns: 100, allocs: 70, hasAllocs: true}}, 0.2, 0.10, true},
		{"fresh_missing_allocs", map[string]result{"BenchmarkHit": {ns: 100}}, 0.2, 0, true},
		{"ns_regression", map[string]result{"BenchmarkHit": {ns: 130, allocs: 60, hasAllocs: true}}, 0.2, 0, true},
		{"bench_vanished", map[string]result{"BenchmarkOther": {ns: 1}}, 0.2, 0, true},
		{"new_bench_in_fresh_ok", map[string]result{
			"BenchmarkHit": {ns: 100, allocs: 60, hasAllocs: true},
			"BenchmarkNew": {ns: 5, allocs: 1000, hasAllocs: true},
		}, 0.2, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			failed := comparePair(&sb, "base.json", "fresh.json", base, tc.fresh, tc.tol, tc.aTol)
			if failed != tc.wantFail {
				t.Fatalf("failed = %v, want %v\n%s", failed, tc.wantFail, sb.String())
			}
		})
	}
}

// TestCompareNoAllocsInBaseline keeps pre-benchmem baselines usable: a
// baseline without allocs/op must not gate the fresh run's allocations.
func TestCompareNoAllocsInBaseline(t *testing.T) {
	base := map[string]result{"BenchmarkOld": {ns: 100}}
	fresh := map[string]result{"BenchmarkOld": {ns: 100, allocs: 1e9, hasAllocs: true}}
	var sb strings.Builder
	if comparePair(&sb, "b", "f", base, fresh, 0.2, 0) {
		t.Fatalf("alloc gate fired without baseline allocs\n%s", sb.String())
	}
}
