// Command loadgen is an open-loop load generator for objectrunnerd: it
// replays a sitegen corpus (see cmd/sitegen) against one or more running
// daemons at a fixed request rate and reports latency quantiles per
// source.
//
// Open loop means the dispatch schedule is independent of completions:
// requests are launched on a fixed interval (1/rps) whether or not
// earlier ones have returned, which is how coordinated omission is
// avoided — a slow server cannot slow the clock that measures it. A
// bounded worker pool caps the damage: when all -concurrency slots are
// busy at a tick, the request is counted as shed rather than queued.
//
// Usage:
//
//	sitegen -out ./bench -pages 8
//	objectrunnerd -addr :8080 &
//	loadgen -addr http://127.0.0.1:8080 -corpus ./bench \
//	    -rps 50 -concurrency 16 -duration 10s -out BENCH_load.json
//
// -addr takes a comma-separated list of daemons; requests round-robin
// across them, which is how a multi-node cluster is driven (each node
// forwards what it does not own — the loadgen needs no ring knowledge).
//
// The run has two phases: a warmup that registers every discovered
// source with POST /v1/wrap (wrapper inference happens once, here), then
// the timed extraction replay against POST /v1/extract. All wire traffic
// goes through the typed api/v1 client. The report — achieved RPS,
// error/shed counts, overall and per-source latency p50/p90/p95/p99/max
// — is written to -out via tmp+rename, so a half-written file is never
// observed.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	apiv1 "objectrunner/api/v1"
	client "objectrunner/api/v1/client"
	"objectrunner/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

type config struct {
	addrs       []string
	corpus      string
	rps         float64
	concurrency int
	duration    time.Duration
	pagesPerReq int
	seed        int64
	out         string
	timeout     time.Duration
}

func run(argv []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cfg config
	addr := fs.String("addr", "http://127.0.0.1:8080", "daemon base URL(s), comma-separated; requests round-robin across them")
	fs.StringVar(&cfg.corpus, "corpus", "bench", "sitegen corpus directory")
	fs.Float64Var(&cfg.rps, "rps", 50, "extract requests per second (open loop)")
	fs.IntVar(&cfg.concurrency, "concurrency", 16, "in-flight request cap; requests hitting the cap are shed, not queued")
	fs.DurationVar(&cfg.duration, "duration", 10*time.Second, "replay duration")
	fs.IntVar(&cfg.pagesPerReq, "pages-per-request", 3, "pages per extract request")
	fs.Int64Var(&cfg.seed, "seed", 1, "page-selection seed")
	fs.StringVar(&cfg.out, "out", "BENCH_load.json", "report path (written via tmp+rename)")
	fs.DurationVar(&cfg.timeout, "timeout", 30*time.Second, "per-request client timeout")
	if err := fs.Parse(argv); err != nil {
		return err
	}
	for _, a := range strings.Split(*addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			cfg.addrs = append(cfg.addrs, a)
		}
	}
	if len(cfg.addrs) == 0 {
		return fmt.Errorf("-addr must name at least one daemon")
	}
	if cfg.rps <= 0 || cfg.concurrency <= 0 || cfg.duration <= 0 {
		return fmt.Errorf("rps, concurrency and duration must be positive")
	}

	corpus, err := discoverCorpus(cfg.corpus)
	if err != nil {
		return err
	}
	if len(corpus) == 0 {
		return fmt.Errorf("no sources found under %s (expected <domain>/sod.txt with <domain>/<source>/page*.html)", cfg.corpus)
	}
	fmt.Fprintf(stderr, "loadgen: %d sources discovered under %s, %d target(s)\n",
		len(corpus), cfg.corpus, len(cfg.addrs))

	// One typed client per target. The load generator measures shedding
	// itself (open loop), so the client's own 429 retry is disabled —
	// a throttled request must count as an error, not hide in a retry.
	hc := &http.Client{Timeout: cfg.timeout}
	clients := make([]*client.Client, len(cfg.addrs))
	for i, a := range cfg.addrs {
		clients[i] = client.New(a, client.WithHTTPClient(hc), client.WithRetries(0))
	}

	ctx := context.Background()
	for i, src := range corpus {
		// Round-robin the warmups too: in a cluster this exercises the
		// forwarding path (the receiving node proxies to the ring owner).
		cl := clients[i%len(clients)]
		if _, err := cl.Wrap(ctx, apiv1.WrapRequest{
			Source: src.key, SOD: src.sod, Pages: src.pages, Dictionaries: src.dicts,
		}); err != nil {
			return fmt.Errorf("warmup %s via %s: %w", src.key, cl.BaseURL(), err)
		}
		fmt.Fprintf(stderr, "loadgen: warmed %s (%d pages)\n", src.key, len(src.pages))
	}

	rep := replay(clients, cfg, corpus)
	if err := writeReport(cfg.out, rep); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "loadgen: %d sent, %d ok, %d errors, %d shed in %.1fs (%.1f rps achieved) -> %s\n",
		rep.Sent, rep.Completed, rep.Errors, rep.Shed, rep.WallSeconds, rep.AchievedRPS, cfg.out)
	return nil
}

// sourceCorpus is one replayable source: its registration payload and
// the page bodies to extract from.
type sourceCorpus struct {
	key   string
	sod   string
	dicts map[string][]apiv1.Entry
	pages []string
}

var instanceOfRE = regexp.MustCompile(`instanceOf\(([A-Za-z0-9_]+)\)`)

// discoverCorpus walks a sitegen output directory: every <domain> with a
// sod.txt contributes one source per page-bearing subdirectory, and the
// SOD's instanceOf(Class) references resolve to dictionaries/<class>.txt
// (KB class names are normalized to lower case, hence the file name).
func discoverCorpus(root string) ([]sourceCorpus, error) {
	domains, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	var out []sourceCorpus
	for _, dom := range domains {
		if !dom.IsDir() || dom.Name() == "dictionaries" {
			continue
		}
		sodPath := filepath.Join(root, dom.Name(), "sod.txt")
		sodBytes, err := os.ReadFile(sodPath)
		if err != nil {
			continue // not a domain directory
		}
		sod := string(sodBytes)
		dicts := make(map[string][]apiv1.Entry)
		for _, m := range instanceOfRE.FindAllStringSubmatch(sod, -1) {
			class := m[1]
			if _, ok := dicts[class]; ok {
				continue
			}
			entries, err := readDict(filepath.Join(root, "dictionaries", strings.ToLower(class)+".txt"))
			if err != nil {
				continue // classes without a KB dictionary are fine
			}
			dicts[class] = entries
		}
		srcs, err := os.ReadDir(filepath.Join(root, dom.Name()))
		if err != nil {
			return nil, err
		}
		for _, src := range srcs {
			if !src.IsDir() {
				continue
			}
			pages, err := readPages(filepath.Join(root, dom.Name(), src.Name()))
			if err != nil {
				return nil, err
			}
			if len(pages) == 0 {
				continue
			}
			out = append(out, sourceCorpus{
				key:   dom.Name() + "/" + src.Name(),
				sod:   sod,
				dicts: dicts,
				pages: pages,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out, nil
}

func readPages(dir string) ([]string, error) {
	names, err := filepath.Glob(filepath.Join(dir, "page*.html"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	pages := make([]string, 0, len(names))
	for _, name := range names {
		b, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		pages = append(pages, string(b))
	}
	return pages, nil
}

// readDict parses a sitegen dictionary file: one "value\tconfidence" per
// line, confidence optional.
func readDict(path string) ([]apiv1.Entry, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []apiv1.Entry
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		value, confStr, _ := strings.Cut(line, "\t")
		conf := 0.9
		if confStr != "" {
			if f, err := strconv.ParseFloat(strings.TrimSpace(confStr), 64); err == nil {
				conf = f
			}
		}
		entries = append(entries, apiv1.Entry{Value: value, Confidence: conf})
	}
	return entries, nil
}

// report is the BENCH_load.json shape.
type report struct {
	Config struct {
		RPS         float64 `json:"rps"`
		Concurrency int     `json:"concurrency"`
		DurationSec float64 `json:"duration_seconds"`
		PagesPerReq int     `json:"pages_per_request"`
		Sources     int     `json:"sources"`
		Targets     int     `json:"targets"`
	} `json:"config"`
	Sent        int64   `json:"sent"`
	Completed   int64   `json:"completed"`
	Errors      int64   `json:"errors"`
	Shed        int64   `json:"shed"`
	WallSeconds float64 `json:"wall_seconds"`
	AchievedRPS float64 `json:"achieved_rps"`
	Objects     int64   `json:"objects"`
	Latency     latency `json:"latency"`
	// PerSource holds one latency summary per source key.
	PerSource map[string]latency `json:"per_source"`
	// PerNode counts which node actually served each completed extract
	// (the response's node field — the ring owner, not the target hit).
	PerNode map[string]int64 `json:"per_node,omitempty"`
}

type latency struct {
	Count int64   `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

func toLatency(h obs.HistSnapshot) latency {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return latency{
		Count: h.Count,
		P50Ms: ms(h.Quantile(0.50)),
		P90Ms: ms(h.Quantile(0.90)),
		P95Ms: ms(h.Quantile(0.95)),
		P99Ms: ms(h.Quantile(0.99)),
		MaxMs: ms(h.Max),
	}
}

// replay drives the open loop: one dispatch per 1/rps interval over the
// requested duration, round-robin across sources and targets, random
// page windows, shedding (not queueing) when the concurrency cap is
// reached.
func replay(clients []*client.Client, cfg config, corpus []sourceCorpus) *report {
	met := obs.New()
	rng := rand.New(rand.NewSource(cfg.seed))
	sem := make(chan struct{}, cfg.concurrency)
	interval := time.Duration(float64(time.Second) / cfg.rps)

	var sent, shed, completed, errs, objects int64
	perNode := make(map[string]int64)
	results := make(chan struct {
		src     string
		node    string
		dur     time.Duration
		objects int64
		err     bool
	}, cfg.concurrency)
	collectorDone := make(chan struct{})
	go func() {
		defer close(collectorDone)
		for r := range results {
			completed++
			if r.err {
				errs++
			} else {
				objects += r.objects
				if r.node != "" {
					perNode[r.node]++
				}
				met.Observe("load.extract", r.dur)
				met.ObserveL("load.extract.by_source", r.dur, obs.L("source", r.src))
			}
		}
	}()

	begin := time.Now()
	deadline := begin.Add(cfg.duration)
	next := begin
	var wg sync.WaitGroup
	for i := 0; ; i++ {
		now := time.Now()
		if now.After(deadline) {
			break
		}
		if d := next.Sub(now); d > 0 {
			time.Sleep(d)
		}
		next = next.Add(interval)
		src := corpus[i%len(corpus)]
		cl := clients[i%len(clients)]
		lo := 0
		if n := len(src.pages) - cfg.pagesPerReq; n > 0 {
			lo = rng.Intn(n + 1)
		}
		hi := lo + cfg.pagesPerReq
		if hi > len(src.pages) {
			hi = len(src.pages)
		}
		pages := src.pages[lo:hi]
		select {
		case sem <- struct{}{}:
		default:
			shed++
			continue
		}
		sent++
		wg.Add(1)
		go func(key string, pages []string, cl *client.Client) {
			defer func() { <-sem; wg.Done() }()
			start := time.Now()
			resp, err := cl.Extract(context.Background(), apiv1.ExtractRequest{Source: key, Pages: pages})
			d := time.Since(start)
			var objs int64
			var node string
			if err == nil {
				objs = int64(resp.Count)
				node = resp.Node
			}
			results <- struct {
				src     string
				node    string
				dur     time.Duration
				objects int64
				err     bool
			}{key, node, d, objs, err != nil}
		}(src.key, pages, cl)
	}
	wg.Wait()
	close(results)
	<-collectorDone
	wall := time.Since(begin)

	rep := &report{PerSource: make(map[string]latency)}
	rep.Config.RPS = cfg.rps
	rep.Config.Concurrency = cfg.concurrency
	rep.Config.DurationSec = cfg.duration.Seconds()
	rep.Config.PagesPerReq = cfg.pagesPerReq
	rep.Config.Sources = len(corpus)
	rep.Config.Targets = len(clients)
	rep.Sent = sent
	rep.Completed = completed
	rep.Errors = errs
	rep.Shed = shed
	rep.Objects = objects
	rep.WallSeconds = wall.Seconds()
	if wall > 0 {
		rep.AchievedRPS = float64(sent) / wall.Seconds()
	}
	if len(perNode) > 0 {
		rep.PerNode = perNode
	}
	rep.Latency = toLatency(met.Histogram("load.extract"))
	for key, h := range met.Histograms() {
		name, labels := obs.SplitSeries(key)
		if name != "load.extract.by_source" || len(labels) != 1 {
			continue
		}
		rep.PerSource[labels[0].Value] = toLatency(h)
	}
	return rep
}

// writeReport writes the JSON report atomically: tmp file in the target
// directory, then rename.
func writeReport(path string, rep *report) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".loadgen-*.json")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
