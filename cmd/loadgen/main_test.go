package main

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"objectrunner/internal/httpserver"
	"objectrunner/internal/sitegen"
)

// materializeCorpus writes a small sitegen benchmark to dir in the same
// layout cmd/sitegen produces: <domain>/sod.txt, <domain>/<source>/
// page%03d.html, dictionaries/<class>.txt.
func materializeCorpus(t *testing.T, dir string) {
	t.Helper()
	cfg := sitegen.DefaultConfig()
	cfg.PagesPerSource = 6
	cfg.Domains = []string{"books"}
	b, err := sitegen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, dd := range b.Domains {
		domDir := filepath.Join(dir, dd.Spec.Name)
		// One source is enough: warmup infers a wrapper per source and
		// dominates the test's wall clock.
		src := dd.Sources[0]
		srcDir := filepath.Join(domDir, "src0")
		if err := os.MkdirAll(srcDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(domDir, "sod.txt"), []byte(dd.Spec.SODText+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		for i, html := range src.HTML {
			if err := os.WriteFile(filepath.Join(srcDir, fmt.Sprintf("page%03d.html", i)), []byte(html), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	dictDir := filepath.Join(dir, "dictionaries")
	if err := os.MkdirAll(dictDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, class := range b.KB.Classes() {
		var sb strings.Builder
		for _, e := range b.KB.Instances(class) {
			fmt.Fprintf(&sb, "%s\t%.3f\n", e.Value, e.Confidence)
		}
		if sb.Len() == 0 {
			continue
		}
		if err := os.WriteFile(filepath.Join(dictDir, class+".txt"), []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDiscoverCorpus(t *testing.T) {
	dir := t.TempDir()
	materializeCorpus(t, dir)
	corpus, err := discoverCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) != 1 {
		t.Fatalf("discovered %d sources, want 1", len(corpus))
	}
	src := corpus[0]
	if src.key != "books/src0" {
		t.Errorf("source key = %q", src.key)
	}
	// PagesPerSource on-template pages plus the junk pages sitegen mixes
	// in (JunkFraction).
	if len(src.pages) < 6 {
		t.Errorf("pages = %d, want >= 6", len(src.pages))
	}
	if src.sod == "" {
		t.Error("empty SOD")
	}
	// The books SOD references BookTitle and Author; both have KB
	// dictionaries.
	for _, class := range []string{"BookTitle", "Author"} {
		if len(src.dicts[class]) == 0 {
			t.Errorf("dictionary %s empty or missing (have %v)", class, dictClasses(src))
		}
	}
}

func dictClasses(src sourceCorpus) []string {
	out := make([]string, 0, len(src.dicts))
	for c := range src.dicts {
		out = append(out, c)
	}
	return out
}

// TestLoadgenEndToEnd replays the corpus against an in-process server
// and checks the report: everything sent either completed or was shed,
// no errors, and latency quantiles are populated and ordered.
func TestLoadgenEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs wrapper inference and a timed replay")
	}
	dir := t.TempDir()
	materializeCorpus(t, dir)

	srv := httpserver.New(httpserver.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	out := filepath.Join(dir, "BENCH_load.json")
	err := run([]string{
		"-addr", ts.URL,
		"-corpus", dir,
		"-rps", "40",
		"-concurrency", "8",
		"-duration", "1s",
		"-pages-per-request", "2",
		"-out", out,
	}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}

	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("bad report JSON: %v\n%s", err, b)
	}
	if rep.Sent == 0 {
		t.Fatal("no requests sent")
	}
	if rep.Completed != rep.Sent {
		t.Errorf("completed %d != sent %d", rep.Completed, rep.Sent)
	}
	if rep.Errors != 0 {
		t.Errorf("errors = %d, want 0", rep.Errors)
	}
	if rep.Objects == 0 {
		t.Error("no objects extracted during replay")
	}
	lat := rep.Latency
	if lat.Count != rep.Sent-rep.Errors {
		t.Errorf("latency count = %d, want %d", lat.Count, rep.Sent)
	}
	if lat.P50Ms <= 0 || lat.P50Ms > lat.P99Ms || lat.P99Ms > lat.MaxMs {
		t.Errorf("latency quantiles not ordered: %+v", lat)
	}
	perSrc, ok := rep.PerSource["books/src0"]
	if !ok {
		t.Fatalf("per-source latency missing: %+v", rep.PerSource)
	}
	if perSrc.Count == 0 || perSrc.P50Ms <= 0 {
		t.Errorf("per-source latency = %+v", perSrc)
	}
	if rep.AchievedRPS <= 0 {
		t.Errorf("achieved rps = %v", rep.AchievedRPS)
	}
	if rep.Config.Sources != 1 {
		t.Errorf("config sources = %d", rep.Config.Sources)
	}
}

func TestWriteReportAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_load.json")
	rep := &report{Sent: 3, PerSource: map[string]latency{}}
	if err := writeReport(path, rep); err != nil {
		t.Fatal(err)
	}
	// No tmp leftovers.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "BENCH_load.json" {
		t.Errorf("unexpected directory contents: %v", entries)
	}
	var got report
	b, _ := os.ReadFile(path)
	if err := json.Unmarshal(b, &got); err != nil || got.Sent != 3 {
		t.Errorf("round trip failed: %v %+v", err, got)
	}
}
