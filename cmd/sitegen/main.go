// Command sitegen materializes the synthetic structured-Web benchmark to
// disk: for each source, its HTML pages, a golden.json with the golden
// standard, and per-domain sod.txt files, plus dictionaries extracted
// from the generated knowledge base. It also prints the simulated
// Mechanical-Turk source ranking used for source selection in the paper.
//
// Usage:
//
//	sitegen -out ./bench -seed 42 -pages 30 [-domains concerts,cars]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"objectrunner/internal/sitegen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sitegen:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("out", "bench", "output directory")
	seed := flag.Uint64("seed", 42, "generation seed")
	pages := flag.Int("pages", 30, "pages per source")
	coverage := flag.Float64("coverage", 0.25, "knowledge-base dictionary coverage")
	domains := flag.String("domains", "", "comma-separated domain filter (default all)")
	flag.Parse()

	cfg := sitegen.DefaultConfig()
	cfg.Seed = *seed
	cfg.PagesPerSource = *pages
	cfg.KBCoverage = *coverage
	if *domains != "" {
		cfg.Domains = strings.Split(*domains, ",")
	}
	b, err := sitegen.Generate(cfg)
	if err != nil {
		return err
	}

	for _, dd := range b.Domains {
		domDir := filepath.Join(*out, dd.Spec.Name)
		if err := os.MkdirAll(domDir, 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(domDir, "sod.txt"), []byte(dd.Spec.SODText+"\n"), 0o644); err != nil {
			return err
		}
		for _, src := range dd.Sources {
			srcDir := filepath.Join(domDir, sanitize(src.Spec.Name))
			if err := os.MkdirAll(srcDir, 0o755); err != nil {
				return err
			}
			for i, html := range src.HTML {
				name := filepath.Join(srcDir, fmt.Sprintf("page%03d.html", i))
				if err := os.WriteFile(name, []byte(html), 0o644); err != nil {
					return err
				}
			}
			gj, err := json.MarshalIndent(src.Golden, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(filepath.Join(srcDir, "golden.json"), gj, 0o644); err != nil {
				return err
			}
		}
		ranking := sitegen.MTurkRanking(dd.Spec, 10, 10, *seed)
		fmt.Printf("%-14s top sources (simulated Mechanical Turk): %s\n", dd.Spec.Name, strings.Join(ranking, ", "))
	}

	// Dictionaries per class, as flat files usable by cmd/objectrunner.
	dictDir := filepath.Join(*out, "dictionaries")
	if err := os.MkdirAll(dictDir, 0o755); err != nil {
		return err
	}
	for _, class := range b.KB.Classes() {
		entries := b.KB.Instances(class)
		if len(entries) == 0 {
			continue
		}
		var sb strings.Builder
		for _, e := range entries {
			fmt.Fprintf(&sb, "%s\t%.3f\n", e.Value, e.Confidence)
		}
		if err := os.WriteFile(filepath.Join(dictDir, sanitize(class)+".txt"), []byte(sb.String()), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("benchmark written to %s (%d domains, seed %d, %d pages/source)\n",
		*out, len(b.Domains), *seed, *pages)
	return nil
}

func sanitize(name string) string {
	r := strings.NewReplacer(" ", "_", "(", "", ")", "", ".", "_", "/", "_")
	return r.Replace(name)
}
