// Command objectrunnerd is the ObjectRunner extraction daemon: a
// long-running HTTP service that registers structured-Web sources
// (POST /v1/wrap with an SOD, dictionaries and sample pages), serves
// batch extraction against cached wrappers (POST /v1/extract), and
// exposes cache introspection (/v1/sources), readiness (/healthz) and
// metrics (/metrics). See internal/httpserver for the endpoint
// contract.
//
// Usage:
//
//	objectrunnerd -addr :8080 -max-inflight 32 -request-timeout 2m \
//	    -wrapper-cache-dir /var/cache/objectrunner [-trace trace.jsonl]
//
// On SIGINT/SIGTERM the daemon drains gracefully: it stops accepting
// requests, cancels in-flight wraps and extracts through their
// contexts, waits for handlers to return (bounded by -drain-timeout),
// and spills the wrapper caches to -wrapper-cache-dir so the next
// process starts warm.
//
// Multi-node mode: start each daemon with -node-id and the full -peers
// roster (id=url pairs, the daemon's own id without a url) and point
// them at a shared -wrapper-cache-dir. A consistent-hash ring assigns
// every source key an owner; requests landing on the wrong node are
// transparently forwarded, and when the owner is down its sources are
// served from the shared spill:
//
//	objectrunnerd -addr :8080 -node-id n1 \
//	    -peers 'n1,n2=http://10.0.0.2:8080' -wrapper-cache-dir /shared
//	objectrunnerd -addr :8080 -node-id n2 \
//	    -peers 'n1=http://10.0.0.1:8080,n2' -wrapper-cache-dir /shared
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"objectrunner"
	"objectrunner/internal/cluster"
	"objectrunner/internal/httpserver"
	"objectrunner/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "objectrunnerd:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks an ephemeral port)")
	maxInflight := flag.Int("max-inflight", 32, "concurrent wrap/extract requests before answering 429")
	requestTimeout := flag.Duration("request-timeout", 2*time.Minute, "per-request deadline for inference and extraction (0 = no limit)")
	maxBody := flag.Int64("max-body", 32<<20, "request body size limit in bytes")
	cacheDir := flag.String("wrapper-cache-dir", "", "spill directory for wrapper persistence across restarts")
	cacheCap := flag.Int("cache-capacity", 64, "wrappers held in memory per source registry entry")
	cacheTTL := flag.Duration("cache-ttl", 0, "wrapper expiry (0 = no expiry)")
	healthThreshold := flag.Float64("health-threshold", 0, "empty-serve rate above which a wrapper is re-inferred (0 disables)")
	streamExtract := flag.Bool("stream-extract", true, "serve cache hits from the streaming token-level extractor (false = tree path: parse+clean per page)")
	workers := flag.Int("workers", 0, "pipeline worker goroutines per request (0 = one per CPU)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "bound on waiting for in-flight handlers and the cache spill at shutdown")
	flightTraces := flag.Int("flight-traces", 64, "request traces kept by the flight recorder (N most recent + N slowest, GET /v1/debug/traces)")
	enablePprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (opt-in: exposes process internals)")
	nodeID := flag.String("node-id", "", "this daemon's id in a multi-node cluster (labels its metrics; required with -peers)")
	peers := flag.String("peers", "", "full cluster roster as id=url pairs, comma-separated, own id without url (e.g. 'n1,n2=http://10.0.0.2:8080'); enables ring-based forwarding")
	obsCLI := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	observer, obsCleanup, err := obsCLI.Start()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := obsCleanup(); cerr != nil {
			fmt.Fprintln(os.Stderr, "objectrunnerd: observability cleanup:", cerr)
		}
	}()
	if observer == nil {
		// No sink requested: still aggregate counters and histograms so
		// /metrics has substance.
		observer = obs.New()
	}
	if *nodeID != "" {
		// Every metric series this process emits carries its node id, so
		// a shared scrape of the cluster stays attributable.
		observer.SetBaseLabels(obs.L("node", *nodeID))
	}

	var cl *cluster.Cluster
	if *peers != "" {
		if *nodeID == "" {
			return fmt.Errorf("-peers requires -node-id")
		}
		nodes, err := cluster.ParseNodes(*peers)
		if err != nil {
			return fmt.Errorf("bad -peers: %w", err)
		}
		cl, err = cluster.New(*nodeID, nodes, 0)
		if err != nil {
			return fmt.Errorf("bad cluster config: %w", err)
		}
		if *cacheDir == "" {
			fmt.Fprintln(os.Stderr, "objectrunnerd: warning: multi-node mode without -wrapper-cache-dir; peers cannot serve from a shared spill when this node is down")
		}
	}

	srv := httpserver.New(httpserver.Config{
		MaxInflight:    *maxInflight,
		RequestTimeout: *requestTimeout,
		MaxBodyBytes:   *maxBody,
		Workers:        *workers,
		Store: objectrunner.StoreConfig{
			Capacity:             *cacheCap,
			TTL:                  *cacheTTL,
			HealthThreshold:      *healthThreshold,
			SpillDir:             *cacheDir,
			DisableStreamExtract: !*streamExtract,
		},
		Obs:                observer,
		FlightRecorderSize: *flightTraces,
		EnablePprof:        *enablePprof,
		Cluster:            cl,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	// The resolved address line is part of the daemon's contract: with
	// port 0 it is how callers (and the e2e tests) learn the port.
	fmt.Fprintf(os.Stderr, "objectrunnerd: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately

	fmt.Fprintln(os.Stderr, "objectrunnerd: draining")
	sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain: refuse new work and flip /healthz to 503. Abort: cancel
	// in-flight wraps/extracts through their contexts, so handlers
	// answer promptly and Shutdown below returns fast.
	srv.Drain()
	srv.Abort()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "objectrunnerd: forced close:", err)
		hs.Close()
	}
	// Spill the wrapper caches so the next process starts warm.
	if err := srv.Close(sctx); err != nil {
		return fmt.Errorf("cache spill: %w", err)
	}
	fmt.Fprintln(os.Stderr, "objectrunnerd: drained, wrapper cache spilled")
	return nil
}
