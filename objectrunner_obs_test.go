package objectrunner

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"objectrunner/internal/obs"
)

// observedConcertExtractor builds the running-example extractor with the
// given observer attached.
func observedConcertExtractor(t testing.TB, ob *Observer) *Extractor {
	t.Helper()
	ex, err := New(`tuple {
		artist: instanceOf(Artist)
		date: date
		location: tuple { theater: instanceOf(Theater), address: address ? }
	}`,
		WithObserver(ob),
		WithDictionary("Artist", []Entry{
			{Value: "Metallica", Confidence: 0.9}, {Value: "Madonna", Confidence: 0.95},
			{Value: "Muse", Confidence: 0.85}, {Value: "Coldplay", Confidence: 0.9},
		}),
		WithDictionary("Theater", []Entry{
			{Value: "Madison Square Garden", Confidence: 0.9}, {Value: "The Town Hall", Confidence: 0.8},
			{Value: "B.B King Blues and Grill", Confidence: 0.75}, {Value: "Bowery Ballroom", Confidence: 0.85},
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

// TestPipelineEmitsAllStageSpans runs the full pipeline over the paper's
// running example and asserts every stage announced itself to the observer.
func TestPipelineEmitsAllStageSpans(t *testing.T) {
	mem := obs.NewMemory()
	ob := NewObserver(mem)
	ex := observedConcertExtractor(t, ob)

	w, err := ex.Wrap(concertPages())
	if err != nil {
		t.Fatal(err)
	}
	objects := extractAll(t, w, concertPages())
	if len(objects) == 0 {
		t.Fatal("no objects extracted")
	}
	ex.Enrich(objects, w.Score())

	want := []string{
		"pipeline.clean",
		"pipeline.segment",
		"pipeline.annotate",
		"pipeline.infer",
		"pipeline.variation",
		"pipeline.eqclass",
		"pipeline.template",
		"pipeline.extract",
		"pipeline.enrich",
	}
	got := map[string]bool{}
	for _, n := range mem.SpanNames() {
		got[n] = true
	}
	for _, n := range want {
		if !got[n] {
			t.Errorf("stage span %q was never started (saw %v)", n, mem.SpanNames())
		}
	}

	// Stage spans nest under the inference root span.
	var inferID int64
	for _, e := range mem.Events() {
		if e.Kind == "span_start" && e.Name == "pipeline.infer" {
			inferID = e.Span
		}
	}
	if inferID == 0 {
		t.Fatal("no pipeline.infer span")
	}
	for _, e := range mem.Events() {
		if e.Kind == "span_start" && (e.Name == "pipeline.segment" || e.Name == "pipeline.annotate" || e.Name == "pipeline.variation") {
			if e.Parent != inferID {
				t.Errorf("%s parented to span %d, want pipeline.infer %d", e.Name, e.Parent, inferID)
			}
		}
	}

	if ob.Counter("wrapper.variations") == 0 {
		t.Error("wrapper.variations counter never incremented")
	}
	if ob.Counter("extract.objects") == 0 {
		t.Error("extract.objects counter never incremented")
	}
}

// TestReportNamesChosenSupport checks the EXPLAIN report for a successful
// inference run.
func TestReportNamesChosenSupport(t *testing.T) {
	ex := concertExtractor(t)
	w, err := ex.Wrap(concertPages())
	if err != nil {
		t.Fatal(err)
	}
	rep := w.Report()
	if !strings.Contains(rep, "chosen: support=") {
		t.Errorf("report does not name the chosen support:\n%s", rep)
	}
	if !strings.Contains(rep, "variation support=") {
		t.Errorf("report does not list variations:\n%s", rep)
	}
}

// TestAbortedWrapperIsSafe verifies the nil/aborted guards: extraction
// yields nothing, Score is 0, and Report explains the abort.
func TestAbortedWrapperIsSafe(t *testing.T) {
	ex := concertExtractor(t)
	// Pages with no annotatable content abort during inference.
	blank := []string{"<html><body><p>nothing here</p></body></html>"}
	w, err := ex.Wrap(blank)
	if err == nil {
		t.Fatal("expected abort error for blank pages")
	}
	if w == nil {
		t.Fatal("aborted Wrap must still return the wrapper for Report")
	}
	if _, err := w.ExtractBatchErr(concertPages()); !errors.Is(err, ErrAborted) {
		t.Errorf("aborted wrapper batch err = %v, want ErrAborted", err)
	}
	if w.Score() != 0 || w.Support() != 0 {
		t.Errorf("aborted wrapper Score=%v Support=%d, want zeros", w.Score(), w.Support())
	}
	rep := w.Report()
	if !strings.Contains(rep, "ABORTED") {
		t.Errorf("report does not mention the abort:\n%s", rep)
	}

	var nilW *Wrapper
	if objs, err := nilW.ExtractErr(nil); objs != nil || !errors.Is(err, ErrNoWrapper) {
		t.Errorf("nil wrapper ExtractErr = %v, %v; want nil, ErrNoWrapper", objs, err)
	}
	if nilW.Score() != 0 || nilW.Support() != 0 {
		t.Error("nil wrapper Score/Support must be zero")
	}
	if !strings.Contains(nilW.Report(), "no wrapper") {
		t.Errorf("nil wrapper report = %q", nilW.Report())
	}
	if nilW.Describe() != "no wrapper" {
		t.Errorf("nil wrapper describe = %q", nilW.Describe())
	}
}

// TestTraceSinkProducesJSONL exercises the public trace surface end to end.
func TestTraceSinkProducesJSONL(t *testing.T) {
	var buf bytes.Buffer
	ob := NewObserver(TraceSink(&buf))
	ex := observedConcertExtractor(t, ob)
	if _, err := ex.RunContext(context.Background(), concertPages()); err != nil {
		t.Fatal(err)
	}
	evs, err := obs.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("trace is empty")
	}
	seen := map[string]bool{}
	for _, e := range evs {
		if e.Kind == "span_start" {
			seen[e.Name] = true
		}
	}
	for _, n := range []string{"pipeline.clean", "pipeline.infer", "pipeline.extract"} {
		if !seen[n] {
			t.Errorf("trace missing span %q", n)
		}
	}
}
