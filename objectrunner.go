// Package objectrunner is a from-scratch reproduction of the ObjectRunner
// system ("Automatic Extraction of Structured Web Data with Domain
// Knowledge", ICDE 2012): targeted extraction of real-world objects from
// template-based HTML pages, guided by a user-supplied Structured Object
// Description (SOD).
//
// The extraction pipeline combines the pages' structural regularity
// (ExAlg-style equivalence classes over token occurrence vectors) with
// domain knowledge (entity-type recognizers — regular expressions,
// predefined types, and dictionaries built on the fly from a knowledge
// base or a text corpus). Only the data matching the SOD is extracted; no
// manual labeling or training pages are needed.
//
// Quick start:
//
//	ex, err := objectrunner.New(`tuple {
//		artist: instanceOf(Artist)
//		date: date
//		theater: instanceOf(Theater)
//	}`, objectrunner.WithDictionary("Artist", artists),
//		objectrunner.WithDictionary("Theater", theaters))
//	...
//	w, err := ex.Wrap(pages) // pages: []string of raw HTML
//	objects, err := w.ExtractHTMLErr(newPage)
package objectrunner

import (
	"context"
	"fmt"
	"io"

	"objectrunner/internal/annotate"
	"objectrunner/internal/clean"
	"objectrunner/internal/corpus"
	"objectrunner/internal/dedup"
	"objectrunner/internal/dom"
	"objectrunner/internal/kb"
	"objectrunner/internal/obs"
	"objectrunner/internal/query"
	"objectrunner/internal/recognize"
	"objectrunner/internal/sod"
	"objectrunner/internal/wrapper"
)

// SOD is a Structured Object Description: the typing formalism describing
// the objects to harvest (tuples, sets with multiplicities, disjunctions
// over entity types).
type SOD = sod.Type

// Object is one extracted instance of the SOD.
type Object = sod.Instance

// Entry is a gazetteer instance with its confidence.
type Entry = recognize.Entry

// GazetteerSource supplies instances for open isInstanceOf entity types.
type GazetteerSource = recognize.GazetteerSource

// KnowledgeBase is a YAGO-style ontology usable as a gazetteer source,
// with semantic-neighborhood lookup.
type KnowledgeBase = kb.KB

// Corpus is a text corpus mined with Hearst patterns for gazetteer
// construction.
type Corpus = corpus.Corpus

// Config tunes the extraction pipeline (sample size, block threshold,
// token support range, segmentation).
type Config = wrapper.Config

// ParseSOD parses the SOD text DSL, e.g.
//
//	tuple { title: instanceOf(BookTitle), price: price,
//	        authors: set(author: instanceOf(Author))+ }
func ParseSOD(src string) (*SOD, error) { return sod.Parse(src) }

// NewKnowledgeBase returns an empty knowledge base. Assert facts with
// AddSubClass and AddInstance, then pass it via WithKnowledgeBase.
func NewKnowledgeBase() *KnowledgeBase { return kb.New() }

// NewCorpus returns an empty corpus. Add documents, then pass it via
// WithCorpus.
func NewCorpus() *Corpus { return corpus.New() }

// DefaultConfig mirrors the paper's experimental configuration.
func DefaultConfig() Config { return wrapper.DefaultConfig() }

// Observer is the observability handle of the extraction pipeline: it
// collects hierarchical spans, counters and duration histograms from
// every stage and forwards trace events to its sinks. A nil *Observer
// (the default) disables observation at near-zero cost.
type Observer = obs.Observer

// NewObserver builds an observer emitting to the given sinks (see
// TraceSink, LogSink). With no sinks it still aggregates counters and
// histograms, readable via Counters and Histograms.
func NewObserver(sinks ...obs.Sink) *Observer { return obs.New(sinks...) }

// TraceSink returns a sink writing a machine-readable JSONL trace (one
// event per line) — the format behind the CLIs' -trace flag.
func TraceSink(w io.Writer) obs.Sink { return obs.JSONL(w) }

// LogSink returns a human-readable sink built on log/slog — the format
// behind the CLIs' -v flag.
func LogSink(w io.Writer) obs.Sink { return obs.Text(w) }

// Extractor holds an SOD with its resolved recognizers and pipeline
// configuration, ready to wrap structured Web sources.
type Extractor struct {
	sod      *SOD
	registry *recognize.Registry
	recs     map[string]recognize.Recognizer
	tf       annotate.TermFreq
	cfg      Config
	obs      *Observer
}

// Option configures an Extractor.
type Option func(*options)

type options struct {
	sources []recognize.GazetteerSource
	static  recognize.StaticSource
	tf      annotate.TermFreq
	cfg     *Config
	obs     *Observer
}

// WithKnowledgeBase adds an ontology as a gazetteer source for
// isInstanceOf types (with semantic-neighborhood lookup) and as the term
// frequency provider for the selectivity estimates.
func WithKnowledgeBase(k *KnowledgeBase) Option {
	return func(o *options) {
		o.sources = append(o.sources, k)
		if o.tf == nil {
			o.tf = k
		}
	}
}

// WithCorpus adds a text corpus as a gazetteer source: instances are
// harvested with Hearst patterns and scored with the Str-ICNorm-Thresh
// metric. threshold drops candidates scoring below the given fraction of
// the best candidate (0 keeps everything).
func WithCorpus(c *Corpus, threshold float64) Option {
	return func(o *options) {
		o.sources = append(o.sources, corpus.Source{Corpus: c, Threshold: threshold})
		if o.tf == nil {
			o.tf = c
		}
	}
}

// WithDictionary supplies instances of a class directly.
func WithDictionary(class string, entries []Entry) Option {
	return func(o *options) {
		if o.static == nil {
			o.static = make(recognize.StaticSource)
		}
		o.static[class] = append(o.static[class], entries...)
	}
}

// WithGazetteerSource adds any custom gazetteer source.
func WithGazetteerSource(src GazetteerSource) Option {
	return func(o *options) { o.sources = append(o.sources, src) }
}

// WithConfig overrides the pipeline configuration.
func WithConfig(cfg Config) Option {
	return func(o *options) { o.cfg = &cfg }
}

// WithObserver attaches an observability handle to the extractor: every
// pipeline stage — cleaning, segmentation, annotation, equivalence-class
// analysis, the token-support variation loop, template matching,
// extraction and dictionary enrichment — emits spans, events, counters
// and duration histograms through it.
func WithObserver(ob *Observer) Option {
	return func(o *options) { o.obs = ob }
}

// New builds an Extractor for the SOD given in DSL form.
func New(sodText string, opts ...Option) (*Extractor, error) {
	s, err := sod.Parse(sodText)
	if err != nil {
		return nil, err
	}
	return NewFromSOD(s, opts...)
}

// NewFromSOD builds an Extractor for an already-constructed SOD.
func NewFromSOD(s *SOD, opts ...Option) (*Extractor, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	srcs := o.sources
	if o.static != nil {
		srcs = append([]recognize.GazetteerSource{o.static}, srcs...)
	}
	reg := recognize.NewRegistry(srcs...)
	recs, err := reg.ResolveAll(s)
	if err != nil {
		return nil, fmt.Errorf("objectrunner: %w", err)
	}
	cfg := wrapper.DefaultConfig()
	if o.cfg != nil {
		cfg = *o.cfg
	}
	if o.obs != nil {
		cfg.Obs = o.obs
	}
	// Always normalize, so Workers (and the rest of the defaults) are
	// resolved even when no config option was given.
	cfg.Normalize()
	return &Extractor{sod: s, registry: reg, recs: recs, tf: o.tf, cfg: cfg, obs: cfg.Obs}, nil
}

// SOD returns the extractor's object description.
func (e *Extractor) SOD() *SOD { return e.sod }

// ParsePage parses and cleans one raw HTML page.
func ParsePage(html string) *dom.Node { return clean.Page(html) }

// Wrapper is an inferred extraction template for one source. Its methods
// are safe on a nil or aborted wrapper: extraction returns no objects and
// Report/Describe explain why.
type Wrapper struct {
	inner *wrapper.Wrapper
}

// Wrap infers a wrapper from a source's raw HTML pages (paper §III):
// annotation, SOD-guided sample selection, equivalence-class analysis
// with the automatic parameter-variation loop, and SOD matching. It is
// WrapContext with a background context. A discarded source comes back as
// an aborted wrapper plus an error wrapping ErrAborted, so Report can
// explain which stage gave up and why.
func (e *Extractor) Wrap(pages []string) (*Wrapper, error) {
	return e.WrapContext(context.Background(), pages)
}

// WrapParsed infers a wrapper from already parsed and cleaned pages. It is
// WrapParsedContext with a background context; see Wrap for the error
// contract.
func (e *Extractor) WrapParsed(pages []*dom.Node) (*Wrapper, error) {
	return e.WrapParsedContext(context.Background(), pages)
}

// ok reports whether the wrapper is usable for extraction.
func (w *Wrapper) ok() bool { return w != nil && w.inner != nil && !w.inner.Aborted }

// Score is the wrapper's self-estimated quality in (0, 1]: 1 means no
// conflicting annotations were observed while building it. An unusable
// wrapper scores 0.
func (w *Wrapper) Score() float64 {
	if !w.ok() {
		return 0
	}
	return w.inner.Score()
}

// Support is the token-support value the variation loop settled on (0 for
// a nil or aborted wrapper).
func (w *Wrapper) Support() int {
	if !w.ok() {
		return 0
	}
	return w.inner.Support
}

// Describe summarizes the wrapper.
func (w *Wrapper) Describe() string {
	if w == nil || w.inner == nil {
		return "no wrapper"
	}
	return w.inner.Describe()
}

// Report returns the EXPLAIN-style account of the inference run: the
// central-block choice, the selectivity order and sample of Algorithm 1,
// one line per token-support variation with its accept/reject reason, and
// — for discarded sources — the aborting stage and reason.
func (w *Wrapper) Report() string {
	if w == nil || w.inner == nil {
		return "no wrapper: inference was not run"
	}
	return w.inner.Report.String()
}

// Enrich feeds extracted objects back into the extractor's isInstanceOf
// dictionaries (paper Eq. 4), returning how many new instances were
// added. Use the wrapper's Score as the quality input.
func (e *Extractor) Enrich(objects []*Object, wrapperScore float64) int {
	return wrapper.EnrichDictionariesObserved(e.registry, e.sod, objects, wrapperScore, e.obs)
}

// Deduplicate removes exact duplicates among extracted objects
// (normalized-value identity), keeping first occurrences.
func Deduplicate(objects []*Object) []*Object {
	return dedup.Deduplicate(objects)
}

// MergeSources concatenates per-source extractions, removing cross-source
// duplicates; it returns the merged objects and the duplicate count.
func MergeSources(bySource [][]*Object) ([]*Object, int) {
	return dedup.MergeSources(bySource)
}

// SOD rules (paper §II.A footnote 1): additional restrictions attached to
// an SOD beyond the type structure. Attach with sod.AddRule; the wrapper
// drops extracted objects violating them, and whole-node rules restrict
// annotation to matches covering an HTML node's entire text.
type (
	// Rule validates one extracted instance.
	Rule = sod.Rule
	// ValueRule constrains a field's value with a predicate.
	ValueRule = sod.ValueRule
	// OrderRule requires two fields to stand in an order relationship.
	OrderRule = sod.OrderRule
	// ContainsRule requires (or forbids) a substring in a field's value.
	ContainsRule = sod.ContainsRule
	// WholeNodeRule restricts a type to whole-node matches.
	WholeNodeRule = sod.WholeNodeRule
)

// Querying extracted collections (the architecture's phase-two querying).
type (
	// Query is a fluent query over extracted objects.
	Query = query.Query
	// Predicate tests one object.
	Predicate = query.Predicate
)

// Over starts a query over extracted objects; combine with query
// predicates Eq, Contains, NumLess, NumAtLeast, And, Or, Not.
func Over(objects []*Object) *Query { return query.Over(objects) }

// Eq matches objects whose field equals v (normalized comparison).
func Eq(field, v string) Predicate { return query.Eq(field, v) }

// FieldContains matches objects whose field contains the needle.
func FieldContains(field, needle string) Predicate { return query.Contains(field, needle) }

// NumLess matches objects whose field holds a number below bound.
func NumLess(field string, bound float64) Predicate { return query.NumLess(field, bound) }

// NumAtLeast matches objects whose field holds a number >= bound.
func NumAtLeast(field string, bound float64) Predicate { return query.NumAtLeast(field, bound) }

// And combines predicates conjunctively.
func And(ps ...Predicate) Predicate { return query.And(ps...) }

// Or combines predicates disjunctively.
func Or(ps ...Predicate) Predicate { return query.Or(ps...) }

// Not inverts a predicate.
func Not(p Predicate) Predicate { return query.Not(p) }

// WithSeedInstances declares an isInstanceOf class by example: the seeds
// are expanded against the knowledge base passed with WithKnowledgeBase
// (the paper's §VI "Google sets" style type specification). The option
// must come after WithKnowledgeBase.
func WithSeedInstances(class string, seeds []string) Option {
	return func(o *options) {
		var base *kb.KB
		for _, src := range o.sources {
			if k, ok := src.(*kb.KB); ok {
				base = k
			}
		}
		if base == nil {
			base = kb.New()
		}
		o.sources = append(o.sources, kb.SeedSource{KB: base, Seeds: map[string][]string{class: seeds}})
	}
}

// SourceRank scores one candidate source for this extractor's SOD.
type SourceRank struct {
	// Index is the source's position in the RankSources input.
	Index int
	// Score is the average per-page minimum annotation score across the
	// SOD's entity types; 0 means some type never appears.
	Score float64
}

// RankSources orders candidate sources (each a slice of raw HTML pages)
// by how relevant and data-rich they look for the SOD, best first — the
// paper's §VI source-selection direction. Only a few pages per source are
// probed.
func (e *Extractor) RankSources(sources [][]string) []SourceRank {
	parsed := make([][]*dom.Node, len(sources))
	for i, pages := range sources {
		for _, h := range pages {
			parsed[i] = append(parsed[i], clean.Page(h))
		}
	}
	scored := annotate.RankSources(parsed, e.sod, e.recs, e.tf, 5)
	out := make([]SourceRank, len(scored))
	for i, s := range scored {
		out[i] = SourceRank{Index: s.Index, Score: s.Score}
	}
	return out
}
