package objectrunner

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"objectrunner/internal/corpus"
	"objectrunner/internal/recognize"
	"objectrunner/internal/sitegen"
	"objectrunner/internal/wrapper"
)

// TestGoldenDump writes a corpus-wide fingerprint (per-source EXPLAIN
// report + every extracted object) to the path named by GOLDEN_OUT. It is
// a refactor aid, skipped unless the env var is set.
func TestGoldenDump(t *testing.T) {
	out := os.Getenv("GOLDEN_OUT")
	if out == "" {
		t.Skip("GOLDEN_OUT not set")
	}
	cfg := sitegen.DefaultConfig()
	cfg.PagesPerSource = 8
	b, err := sitegen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	regs := make(map[string]map[string]recognize.Recognizer)
	for _, dd := range b.Domains {
		reg := recognize.NewRegistry(b.KB, corpus.Source{Corpus: b.Corpus, Threshold: 0.05})
		recs, err := reg.ResolveAll(dd.SOD)
		if err != nil {
			t.Fatal(err)
		}
		regs[dd.Spec.Name] = recs
	}
	var sb strings.Builder
	for _, workers := range []int{1, 4} {
		for _, dd := range b.Domains {
			for _, src := range dd.Sources {
				wcfg := wrapper.DefaultConfig()
				wcfg.Workers = workers
				w := wrapper.Infer(src.Pages, dd.SOD, regs[dd.Spec.Name], b.KB, wcfg)
				fmt.Fprintf(&sb, "=== workers=%d %s/%s aborted=%v %s\n", workers, dd.Spec.Name, src.Spec.Name, w.Aborted, w.AbortReason)
				if w.Report != nil {
					sb.WriteString(w.Report.String())
				}
				if !w.Aborted {
					for pi, objs := range w.ExtractBatch(src.Pages) {
						for _, o := range objs {
							fmt.Fprintf(&sb, "p%d %s\n", pi, o.String())
						}
					}
				}
			}
		}
	}
	if err := os.WriteFile(out, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d bytes to %s", sb.Len(), out)
}
