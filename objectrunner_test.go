package objectrunner

import (
	"context"
	"strings"
	"testing"
)

// concertPages returns the paper's running example (Fig. 3) as raw HTML.
func concertPages() []string {
	page := func(body string) string { return "<html><body>" + body + "</body></html>" }
	return []string{
		page(`<li><div>Metallica</div><div>Monday May 11, 2010 8:00pm</div><div><span><a>Madison Square Garden</a></span><span>237 West 42nd Street</span><span>New York City</span><span>New York</span><span>10036</span></div></li>`),
		page(`<li><div>Madonna</div><div>Saturday May 29, 2010 7:00pm</div><div><span><a>The Town Hall</a></span><span>131 W 55th Street</span><span>New York City</span><span>New York</span><span>10019</span></div></li><li><div>Muse</div><div>Friday June 19, 2010 7:00pm</div><div><span><a>B.B King Blues and Grill</a></span><span>4 Penn Plaza</span><span>New York City</span><span>New York</span><span>10001</span></div></li>`),
		page(`<li><div>Coldplay</div><div>Saturday August 8, 2010 8:00pm</div><div><span><a>Bowery Ballroom</a></span><span>6 Delancey Street</span><span>New York City</span><span>New York</span><span>10002</span></div></li>`),
	}
}

func concertExtractor(t testing.TB, extra ...Option) *Extractor {
	t.Helper()
	opts := []Option{
		WithDictionary("Artist", []Entry{
			{Value: "Metallica", Confidence: 0.9}, {Value: "Madonna", Confidence: 0.95},
			{Value: "Muse", Confidence: 0.85}, {Value: "Coldplay", Confidence: 0.9},
		}),
		WithDictionary("Theater", []Entry{
			{Value: "Madison Square Garden", Confidence: 0.9}, {Value: "The Town Hall", Confidence: 0.8},
			{Value: "B.B King Blues and Grill", Confidence: 0.75}, {Value: "Bowery Ballroom", Confidence: 0.85},
		}),
	}
	opts = append(opts, extra...)
	ex, err := New(`tuple {
		artist: instanceOf(Artist)
		date: date
		location: tuple { theater: instanceOf(Theater), address: address ? }
	}`, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

func TestRunningExampleEndToEnd(t *testing.T) {
	ex := concertExtractor(t)
	objects, err := ex.RunContext(context.Background(), concertPages())
	if err != nil {
		t.Fatal(err)
	}
	if len(objects) != 4 {
		for _, o := range objects {
			t.Logf("obj: %s", o)
		}
		t.Fatalf("extracted %d objects, want 4", len(objects))
	}
	byArtist := make(map[string]*Object)
	for _, o := range objects {
		byArtist[o.FieldValue("artist")] = o
	}
	muse := byArtist["Muse"]
	if muse == nil {
		t.Fatal("Muse concert missing")
	}
	if got := muse.FieldValue("theater"); got != "B.B King Blues and Grill" {
		t.Errorf("theater = %q", got)
	}
	if got := muse.FieldValue("address"); got != "4 Penn Plaza" {
		t.Errorf("address = %q", got)
	}
}

func TestWrapperGeneralizesToUnseenValues(t *testing.T) {
	ex := concertExtractor(t)
	w, err := ex.Wrap(concertPages())
	if err != nil {
		t.Fatal(err)
	}
	unseen := `<html><body><li><div>The Strokes</div><div>Friday July 2, 2010 9:00pm</div><div><span><a>Terminal 5</a></span><span>610 West 56th Street</span><span>New York City</span><span>New York</span><span>10019</span></div></li></body></html>`
	objs, err := w.ExtractHTMLErr(unseen)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 1 {
		t.Fatalf("objects = %d", len(objs))
	}
	if got := objs[0].FieldValue("artist"); got != "The Strokes" {
		t.Errorf("artist = %q (dictionary coverage must not matter at extraction)", got)
	}
}

func TestIrrelevantSourceIsDiscarded(t *testing.T) {
	ex := concertExtractor(t)
	pages := []string{
		"<html><body><p>about our company and its mission</p></body></html>",
		"<html><body><p>read the terms of service carefully</p></body></html>",
		"<html><body><p>open positions and press contacts</p></body></html>",
	}
	if _, err := ex.Wrap(pages); err == nil {
		t.Fatal("irrelevant source not discarded")
	} else if !strings.Contains(err.Error(), "discarded") {
		t.Errorf("error = %v", err)
	}
}

func TestParseSODErrors(t *testing.T) {
	if _, err := ParseSOD(`tuple {}`); err == nil {
		t.Error("empty tuple accepted")
	}
	if _, err := New(`tuple { a: nosuchrecognizer }`); err == nil {
		t.Error("unknown recognizer accepted")
	}
}

func TestKnowledgeBaseGazetteer(t *testing.T) {
	k := NewKnowledgeBase()
	k.AddSubClass("Band", "Performer")
	k.AddSubClass("Artist", "Performer")
	k.AddInstance("Metallica", "Band", 0.9) // reachable via neighborhood
	k.AddInstance("Madonna", "Artist", 0.95)
	k.AddInstance("Muse", "Artist", 0.85)
	k.AddInstance("Coldplay", "Artist", 0.9)
	ex, err := New(`tuple { artist: instanceOf(Artist), date: date }`, WithKnowledgeBase(k))
	if err != nil {
		t.Fatal(err)
	}
	pages := []string{
		`<html><body><li><div>Metallica</div><div>Monday May 11, 2010 8:00pm</div></li><li><div>Madonna</div><div>Saturday May 29, 2010 7:00pm</div></li></body></html>`,
		`<html><body><li><div>Muse</div><div>Friday June 19, 2010 7:00pm</div></li></body></html>`,
		`<html><body><li><div>Coldplay</div><div>Saturday August 8, 2010 8:00pm</div></li><li><div>Madonna</div><div>Sunday May 30, 2010 6:00pm</div></li></body></html>`,
	}
	objs, err := ex.RunContext(context.Background(), pages)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 5 {
		t.Fatalf("objects = %d, want 5", len(objs))
	}
}

func TestCorpusGazetteer(t *testing.T) {
	c := NewCorpus()
	c.AddDocument("Great artists such as Metallica, Madonna and Muse toured together.")
	c.AddDocument("Coldplay is an artist with worldwide reach.")
	ex, err := New(`tuple { artist: instanceOf(Artist), date: date }`, WithCorpus(c, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	pages := []string{
		`<html><body><li><div>Metallica</div><div>Monday May 11, 2010 8:00pm</div></li></body></html>`,
		`<html><body><li><div>Muse</div><div>Friday June 19, 2010 7:00pm</div></li><li><div>Madonna</div><div>Saturday May 29, 2010 7:00pm</div></li></body></html>`,
		`<html><body><li><div>Coldplay</div><div>Saturday August 8, 2010 8:00pm</div></li></body></html>`,
	}
	objs, err := ex.RunContext(context.Background(), pages)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 4 {
		t.Fatalf("objects = %d, want 4", len(objs))
	}
}

func TestEnrichFeedbackLoop(t *testing.T) {
	ex := concertExtractor(t)
	w, err := ex.Wrap(concertPages())
	if err != nil {
		t.Fatal(err)
	}
	unseen := `<html><body><li><div>Arcade Fire</div><div>Sunday July 4, 2010 7:30pm</div><div><span><a>Radio City</a></span><span>1260 Sixth Avenue</span><span>New York City</span><span>New York</span><span>10020</span></div></li></body></html>`
	objs, err := w.ExtractHTMLErr(unseen)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 1 {
		t.Fatalf("objects = %d", len(objs))
	}
	added := ex.Enrich(objs, w.Score())
	if added == 0 {
		t.Error("enrichment added nothing")
	}
}

func TestDeduplicateAndMerge(t *testing.T) {
	ex := concertExtractor(t)
	pages := concertPages()
	w, err := ex.Wrap(pages)
	if err != nil {
		t.Fatal(err)
	}
	objs := extractAll(t, w, pages)
	doubled := append(append([]*Object{}, objs...), objs...)
	if got := Deduplicate(doubled); len(got) != len(objs) {
		t.Errorf("dedup: %d, want %d", len(got), len(objs))
	}
	merged, dropped := MergeSources([][]*Object{objs, objs})
	if len(merged) != len(objs) || dropped != len(objs) {
		t.Errorf("merge: %d kept, %d dropped", len(merged), dropped)
	}
}

func TestBooksWithAuthorSets(t *testing.T) {
	ex, err := New(`tuple {
		title: instanceOf(BookTitle)
		price: price
		authors: set(author: instanceOf(Author))+
	}`,
		WithDictionary("BookTitle", []Entry{
			{Value: "Pride and Prejudice", Confidence: 0.9}, {Value: "Cutting for Stone", Confidence: 0.9},
			{Value: "Norse Mythology", Confidence: 0.9}, {Value: "Good Omens", Confidence: 0.9},
		}),
		WithDictionary("Author", []Entry{
			{Value: "Jane Austen", Confidence: 0.9}, {Value: "Fiona Stafford", Confidence: 0.85},
			{Value: "Abraham Verghese", Confidence: 0.9}, {Value: "Neil Gaiman", Confidence: 0.9},
			{Value: "Terry Pratchett", Confidence: 0.9},
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	page := func(recs string) string { return "<html><body><ul>" + recs + "</ul></body></html>" }
	rec := func(title, authors, price string) string {
		return `<li><div>` + title + `</div><span>by ` + authors + `</span><em>` + price + `</em></li>`
	}
	pages := []string{
		page(rec("Pride and Prejudice", "Jane Austen and Fiona Stafford", "$9.99") + rec("Cutting for Stone", "Abraham Verghese", "$12.50")),
		page(rec("Norse Mythology", "Neil Gaiman", "$14.00") + rec("Good Omens", "Neil Gaiman, Terry Pratchett", "$11.25")),
		page(rec("Pride and Prejudice", "Jane Austen", "$8.75")),
	}
	objs, err := ex.RunContext(context.Background(), pages)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 5 {
		for _, o := range objs {
			t.Logf("obj: %s", o)
		}
		t.Fatalf("objects = %d, want 5", len(objs))
	}
	var omens *Object
	for _, o := range objs {
		if o.FieldValue("title") == "Good Omens" {
			omens = o
		}
	}
	if omens == nil {
		t.Fatal("Good Omens missing")
	}
	authors := omens.Field("authors")
	if authors == nil || len(authors.Children) != 2 {
		t.Fatalf("authors = %v", authors)
	}
}

func TestConfigOverride(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseSegmentation = false
	ex, err := New(`tuple { artist: instanceOf(Artist), date: date }`,
		WithDictionary("Artist", []Entry{{Value: "Metallica", Confidence: 0.9}, {Value: "Muse", Confidence: 0.9}, {Value: "Madonna", Confidence: 0.9}}),
		WithConfig(cfg),
	)
	if err != nil {
		t.Fatal(err)
	}
	pages := []string{
		`<html><body><li><div>Metallica</div><div>Monday May 11, 2010 8:00pm</div></li></body></html>`,
		`<html><body><li><div>Muse</div><div>Friday June 19, 2010 7:00pm</div></li></body></html>`,
		`<html><body><li><div>Madonna</div><div>Saturday May 29, 2010 7:00pm</div></li></body></html>`,
	}
	if _, err := ex.RunContext(context.Background(), pages); err != nil {
		t.Fatal(err)
	}
}
