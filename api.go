package objectrunner

import (
	"context"
	"fmt"

	"objectrunner/internal/clean"
	"objectrunner/internal/dom"
	"objectrunner/internal/obs"
	"objectrunner/internal/parallel"
	"objectrunner/internal/wrapper"
)

// Error-honest, context-aware API surface. The original methods (Extract,
// ExtractBatch, Run, …) stay as thin shims, but they conflate "no data on
// this page" with "you called me on a dead wrapper" and cannot stop
// mid-flight; the variants below return sentinel errors (errors.go) and
// honor context cancellation down through the worker pools.

// canceledErr wraps a context error so that both errors.Is(err,
// ErrCanceled) and errors.Is(err, context.Canceled/DeadlineExceeded) hold.
func canceledErr(err error) error {
	return fmt.Errorf("%w: %w", ErrCanceled, err)
}

// abortedErr wraps ErrAborted with the pipeline's abort reason.
func abortedErr(reason string) error {
	return fmt.Errorf("%w: %s", ErrAborted, reason)
}

// WrapContext is Wrap honoring cancellation: once ctx is canceled the
// pipeline stops dispatching new per-page work (cleaning, segmentation,
// annotation, tokenization) and the support-variation loop ends at its
// next checkpoint; the returned error wraps ErrCanceled and the context's
// own error. A discarded source comes back as an aborted wrapper plus an
// error wrapping ErrAborted, exactly like Wrap.
func (e *Extractor) WrapContext(ctx context.Context, pages []string) (*Wrapper, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sp := e.obs.Span("pipeline.clean",
		obs.A("pages", len(pages)), obs.A("workers", e.cfg.Workers))
	parsed := make([]*dom.Node, len(pages))
	if err := parallel.ForEachObservedCtx(ctx, sp.Observer(), e.cfg.Workers, len(pages), func(_ *obs.Observer, i int) {
		parsed[i] = clean.Page(pages[i])
	}); err != nil {
		sp.End(obs.A("canceled", true))
		return nil, canceledErr(err)
	}
	e.obs.Count("clean.pages", int64(len(pages)))
	sp.End()
	return e.WrapParsedContext(ctx, parsed)
}

// WrapParsedContext is WrapParsed honoring cancellation (see WrapContext).
func (e *Extractor) WrapParsedContext(ctx context.Context, pages []*dom.Node) (*Wrapper, error) {
	w, err := wrapper.InferContext(ctx, pages, e.sod, e.recs, e.tf, e.cfg)
	if err != nil {
		return nil, canceledErr(err)
	}
	if w.Aborted {
		return &Wrapper{inner: w}, abortedErr(w.AbortReason)
	}
	return &Wrapper{inner: w}, nil
}

// RunContext is Run honoring cancellation: wrap the source, then extract
// every object from all its pages, stopping promptly when ctx is canceled.
func (e *Extractor) RunContext(ctx context.Context, pages []string) ([]*Object, error) {
	w, err := e.WrapContext(ctx, pages)
	if err != nil {
		return nil, err
	}
	per, err := w.ExtractBatchContext(ctx, pages)
	if err != nil {
		return nil, err
	}
	var out []*Object
	for _, objs := range per {
		out = append(out, objs...)
	}
	return out, nil
}

// errIfUnusable returns the sentinel matching the wrapper's state, or nil
// when it can extract.
func (w *Wrapper) errIfUnusable() error {
	if w == nil || w.inner == nil {
		return ErrNoWrapper
	}
	if w.inner.Aborted {
		return abortedErr(w.inner.AbortReason)
	}
	return nil
}

// ExtractErr is Extract distinguishing "no objects on this page" (empty
// slice, nil error) from "this wrapper cannot extract" (ErrNoWrapper for a
// wrapper that was never inferred, ErrAborted for a discarded source).
func (w *Wrapper) ExtractErr(page *dom.Node) ([]*Object, error) {
	if err := w.errIfUnusable(); err != nil {
		return nil, err
	}
	return w.inner.ExtractPage(page), nil
}

// ExtractHTMLErr is ExtractHTML with the error contract of ExtractErr.
func (w *Wrapper) ExtractHTMLErr(html string) ([]*Object, error) {
	if err := w.errIfUnusable(); err != nil {
		return nil, err
	}
	return w.inner.ExtractPage(clean.Page(html)), nil
}

// ExtractBatchErr is ExtractBatch with the error contract of ExtractErr.
func (w *Wrapper) ExtractBatchErr(pages []string) ([][]*Object, error) {
	return w.ExtractBatchContext(context.Background(), pages)
}

// ExtractBatchContext is ExtractBatchErr honoring cancellation: the
// per-page cleaning and extraction fan-outs stop dispatching once ctx is
// canceled and the returned error wraps ErrCanceled.
func (w *Wrapper) ExtractBatchContext(ctx context.Context, pages []string) ([][]*Object, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := w.errIfUnusable(); err != nil {
		return nil, err
	}
	parsed := make([]*dom.Node, len(pages))
	if err := parallel.ForEachCtx(ctx, w.inner.Workers(), len(pages), func(i int) {
		parsed[i] = clean.Page(pages[i])
	}); err != nil {
		return nil, canceledErr(err)
	}
	out, err := w.inner.ExtractBatchContext(ctx, parsed)
	if err != nil {
		return nil, canceledErr(err)
	}
	return out, nil
}

// ExtractStreamBatchContext is ExtractBatchContext on the streaming
// path: extraction runs directly over each page's raw token stream —
// no DOM tree, no cleaning pass — with pooled per-worker scratch.
// Pages whose structure the streaming tokenizer cannot faithfully
// reproduce fall back to the tree path per page, so the output is
// byte-identical to ExtractBatchContext on every input.
func (w *Wrapper) ExtractStreamBatchContext(ctx context.Context, pages []string) ([][]*Object, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := w.errIfUnusable(); err != nil {
		return nil, err
	}
	out, err := w.inner.ExtractStreamBatchContext(ctx, pages)
	if err != nil {
		return nil, canceledErr(err)
	}
	return out, nil
}
