package objectrunner

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

func renderObjects(objs []*Object) string {
	var sb strings.Builder
	for _, o := range objs {
		sb.WriteString(o.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

func TestServeExtractWrapOnMissExtractOnHit(t *testing.T) {
	ex := concertExtractor(t)
	svc := NewService(ex, StoreConfig{})
	pages := concertPages()

	first, err := svc.ServeExtract(context.Background(), "concerts", pages)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 4 {
		t.Fatalf("objects = %d, want 4", len(first))
	}
	second, err := svc.ServeExtract(context.Background(), "concerts", pages)
	if err != nil {
		t.Fatal(err)
	}
	if renderObjects(first) != renderObjects(second) {
		t.Error("cache hit served different objects than the cold path")
	}
	st := svc.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 1 miss + 1 hit", st)
	}
}

func TestServeExtractMatchesDirectPipeline(t *testing.T) {
	ex := concertExtractor(t)
	pages := concertPages()
	want, err := ex.RunContext(context.Background(), pages)
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(concertExtractor(t), StoreConfig{})
	got, err := svc.ServeExtract(context.Background(), "concerts", pages)
	if err != nil {
		t.Fatal(err)
	}
	if renderObjects(got) != renderObjects(want) {
		t.Errorf("served output differs from Run:\n got: %s\nwant: %s",
			renderObjects(got), renderObjects(want))
	}
}

func TestServeExtractCachesAbortedSource(t *testing.T) {
	ex := concertExtractor(t)
	svc := NewService(ex, StoreConfig{})
	pages := []string{
		"<html><body><p>about our company</p></body></html>",
		"<html><body><p>terms of service</p></body></html>",
	}
	if _, err := svc.ServeExtract(context.Background(), "about", pages); !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if _, err := svc.ServeExtract(context.Background(), "about", pages); !errors.Is(err, ErrAborted) {
		t.Fatalf("second err = %v, want ErrAborted", err)
	}
	// The discard verdict was cached, not re-derived.
	if st := svc.Stats(); st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want the aborted wrapper cached", st)
	}
}

func TestServeExtractHealthEvictionReinfers(t *testing.T) {
	ex := concertExtractor(t)
	svc := NewService(ex, StoreConfig{HealthThreshold: 0.6, MinServedPages: 4})
	pages := concertPages()
	if _, err := svc.ServeExtract(context.Background(), "concerts", pages); err != nil {
		t.Fatal(err)
	}
	// Serve pages the wrapper cannot match until the empty rate crosses
	// the threshold: the wrapper must be evicted and re-inferred.
	junk := []string{
		"<html><body><p>nothing here</p></body></html>",
		"<html><body><p>still nothing</p></body></html>",
		"<html><body><p>empty again</p></body></html>",
	}
	for i := 0; i < 3; i++ {
		// Once the eviction lands, re-inference runs against the junk
		// pages and correctly discards them — that ErrAborted is the
		// proof the stale wrapper was dropped.
		if _, err := svc.ServeExtract(context.Background(), "concerts", junk); err != nil && !errors.Is(err, ErrAborted) {
			t.Fatal(err)
		}
	}
	st := svc.Stats()
	if st.EvictionsHealth == 0 {
		t.Errorf("stats = %+v, want a health eviction after all-empty serves", st)
	}
	if st.Misses < 2 {
		t.Errorf("stats = %+v, want re-inference after the eviction", st)
	}
}

func TestServeExtractDiskSpillAcrossServices(t *testing.T) {
	dir := t.TempDir()
	pages := concertPages()

	svc1 := NewService(concertExtractor(t), StoreConfig{SpillDir: dir})
	first, err := svc1.ServeExtract(context.Background(), "concerts", pages)
	if err != nil {
		t.Fatal(err)
	}

	// A new service over the same spill directory simulates a restart:
	// the wrapper loads from disk and serves identical output.
	svc2 := NewService(concertExtractor(t), StoreConfig{SpillDir: dir})
	second, err := svc2.ServeExtract(context.Background(), "concerts", pages)
	if err != nil {
		t.Fatal(err)
	}
	if renderObjects(first) != renderObjects(second) {
		t.Errorf("disk-loaded wrapper served different output:\n got: %s\nwant: %s",
			renderObjects(second), renderObjects(first))
	}
	if st := svc2.Stats(); st.DiskHits != 1 {
		t.Errorf("stats = %+v, want one disk hit", st)
	}
}

func TestServeExtractSingleflight(t *testing.T) {
	ex := concertExtractor(t)
	svc := NewService(ex, StoreConfig{})
	pages := concertPages()
	const n = 8
	var wg sync.WaitGroup
	outs := make([]string, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			objs, err := svc.ServeExtract(context.Background(), "concerts", pages)
			outs[i], errs[i] = renderObjects(objs), err
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if outs[i] != outs[0] {
			t.Fatalf("caller %d served different output", i)
		}
	}
	if st := svc.Stats(); st.Misses != 1 {
		t.Errorf("stats = %+v, want exactly one inference across %d concurrent calls", st, n)
	}
}

func TestServeExtractCanceled(t *testing.T) {
	ex := concertExtractor(t)
	svc := NewService(ex, StoreConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.ServeExtract(ctx, "concerts", concertPages()); !errors.Is(err, ErrCanceled) {
		t.Errorf("err = %v, want ErrCanceled", err)
	}
}

func TestServiceInvalidate(t *testing.T) {
	ex := concertExtractor(t)
	svc := NewService(ex, StoreConfig{})
	pages := concertPages()
	if _, err := svc.ServeExtract(context.Background(), "concerts", pages); err != nil {
		t.Fatal(err)
	}
	svc.Invalidate("concerts")
	if _, err := svc.ServeExtract(context.Background(), "concerts", pages); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.Misses != 2 {
		t.Errorf("stats = %+v, want re-inference after Invalidate", st)
	}
}
