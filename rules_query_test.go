package objectrunner

import (
	"context"
	"strings"
	"testing"
)

// TestRulesDropViolatingObjects exercises the §II.A footnote-1 rules end
// to end: a ContainsRule filters extracted objects at extraction time.
func TestRulesDropViolatingObjects(t *testing.T) {
	ex := concertExtractor(t)
	// Only concerts in venues whose name mentions "Hall" qualify.
	ex.SOD().AddRule(ContainsRule{Field: "theater", Needle: "hall"})
	w, err := ex.Wrap(concertPages())
	if err != nil {
		t.Fatal(err)
	}
	objs := extractAll(t, w, concertPages())
	if len(objs) != 1 {
		for _, o := range objs {
			t.Logf("obj: %s", o)
		}
		t.Fatalf("objects = %d, want 1 (only The Town Hall)", len(objs))
	}
	if got := objs[0].FieldValue("theater"); !strings.Contains(got, "Town Hall") {
		t.Errorf("survivor = %q", got)
	}
}

// TestPhaseTwoQuerying runs the architecture's second phase: querying
// the extracted collection.
func TestPhaseTwoQuerying(t *testing.T) {
	ex := concertExtractor(t)
	objs, err := ex.RunContext(context.Background(), concertPages())
	if err != nil {
		t.Fatal(err)
	}
	// Who plays in May 2010, ordered by artist?
	may := Over(objs).Where(FieldContains("date", "May")).OrderBy("artist").All()
	if len(may) != 2 {
		t.Fatalf("May concerts = %d, want 2", len(may))
	}
	if may[0].FieldValue("artist") != "Madonna" || may[1].FieldValue("artist") != "Metallica" {
		t.Errorf("order = %q, %q", may[0].FieldValue("artist"), may[1].FieldValue("artist"))
	}
	// Compound predicates.
	n := Over(objs).Where(And(
		FieldContains("date", "2010"),
		Not(Eq("artist", "Muse")),
	)).Count()
	if n != 3 {
		t.Errorf("compound count = %d, want 3", n)
	}
	// Projection.
	rows := Over(objs).Where(Eq("artist", "Coldplay")).Project("theater", "address")
	if len(rows) != 1 || rows[0]["theater"][0] != "Bowery Ballroom" {
		t.Errorf("projection = %v", rows)
	}
}

// TestNumericQueryOnPrices checks numeric predicates over extracted
// price fields.
func TestNumericQueryOnPrices(t *testing.T) {
	ex, err := New(`tuple { title: instanceOf(T), price: price }`,
		WithDictionary("T", []Entry{
			{Value: "Alpha Album", Confidence: 0.9}, {Value: "Beta Album", Confidence: 0.9},
			{Value: "Gamma Album", Confidence: 0.9},
		}))
	if err != nil {
		t.Fatal(err)
	}
	pages := []string{
		`<html><body><li><b>Alpha Album</b><i>$9.99</i></li><li><b>Beta Album</b><i>$19.99</i></li></body></html>`,
		`<html><body><li><b>Gamma Album</b><i>$14.50</i></li></body></html>`,
		`<html><body><li><b>Alpha Album</b><i>$8.49</i></li></body></html>`,
	}
	objs, err := ex.RunContext(context.Background(), pages)
	if err != nil {
		t.Fatal(err)
	}
	cheap := Over(objs).Where(NumLess("price", 15)).OrderByNum("price").All()
	if len(cheap) != 3 {
		t.Fatalf("cheap = %d, want 3", len(cheap))
	}
	if cheap[0].FieldValue("price") != "$8.49" {
		t.Errorf("cheapest = %q", cheap[0].FieldValue("price"))
	}
	if n := Over(objs).Where(NumAtLeast("price", 15)).Count(); n != 1 {
		t.Errorf("expensive = %d", n)
	}
}
