package objectrunner_test

import (
	"bytes"
	"fmt"
	"log"

	"objectrunner"
)

// Save/LoadWrapper round-trip a learned wrapper through any stream: the
// loaded wrapper extracts byte-identically, so inference can run once
// (in a batch job, say) and serve from anywhere.
func ExampleWrapper_Save() {
	page := func(body string) string { return "<html><body>" + body + "</body></html>" }
	pages := []string{
		page(`<li><div>Metallica</div><div>Monday May 11, 2010 8:00pm</div><div><span><a>Madison Square Garden</a></span></div></li>`),
		page(`<li><div>Madonna</div><div>Saturday May 29, 2010 7:00pm</div><div><span><a>The Town Hall</a></span></div></li>` +
			`<li><div>Muse</div><div>Friday June 19, 2010 7:00pm</div><div><span><a>B.B King Blues and Grill</a></span></div></li>`),
		page(`<li><div>Coldplay</div><div>Saturday August 8, 2010 8:00pm</div><div><span><a>Bowery Ballroom</a></span></div></li>`),
	}
	ex, err := objectrunner.New(`tuple {
		artist: instanceOf(Artist)
		date: date
		theater: instanceOf(Theater)
	}`,
		objectrunner.WithDictionary("Artist", []objectrunner.Entry{
			{Value: "Metallica", Confidence: 0.9}, {Value: "Madonna", Confidence: 0.95},
			{Value: "Muse", Confidence: 0.85}, {Value: "Coldplay", Confidence: 0.9},
		}),
		objectrunner.WithDictionary("Theater", []objectrunner.Entry{
			{Value: "Madison Square Garden", Confidence: 0.9}, {Value: "The Town Hall", Confidence: 0.8},
			{Value: "B.B King Blues and Grill", Confidence: 0.75}, {Value: "Bowery Ballroom", Confidence: 0.85},
		}))
	if err != nil {
		log.Fatal(err)
	}

	// Infer once, persist the learned state.
	w, err := ex.Wrap(pages)
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := w.Save(&buf); err != nil {
		log.Fatal(err)
	}

	// Load elsewhere — the extractor re-binds its live SOD (and rules) —
	// and extract from a page the original never saw.
	loaded, err := objectrunner.LoadWrapper(&buf, ex)
	if err != nil {
		log.Fatal(err)
	}
	unseen := page(`<li><div>The Strokes</div><div>Friday July 2, 2010 9:00pm</div><div><span><a>Terminal 5</a></span></div></li>`)
	objects, err := loaded.ExtractHTMLErr(unseen)
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range objects {
		fmt.Printf("%s @ %s\n", o.FieldValue("artist"), o.FieldValue("theater"))
	}
	// Output: The Strokes @ Terminal 5
}
