package objectrunner

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
)

// workersExtractor builds the concert extractor with an explicit worker
// count. GOMAXPROCS may be 1 on the test runner, so parallel tests force
// Workers > 1 to actually exercise goroutine interleavings.
func workersExtractor(t testing.TB, workers int) *Extractor {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Workers = workers
	return concertExtractor(t, WithConfig(cfg))
}

// TestWrapDeterministicAcrossRunsAndWorkers pins the pipeline's
// determinism contract: ten runs at every worker count (1, 2, 4, 8 —
// the fused tokenize→intern stage partitions the sample differently at
// each) must produce byte-identical inference reports and extraction
// output. The interned token model adds two things worth pinning here:
// the wrapper-scoped symbol table must come out identical on every run
// (asserted via the serialized bytes), and a wrapper that has gone
// through Save→Load — whose occurrence syms are re-resolved against the
// restored table — must extract exactly what the in-memory wrapper does.
// The worker-local tables' Merge remap must therefore land every symbol
// on the id the sequential pass would have chosen, whatever the chunk
// boundaries.
func TestWrapDeterministicAcrossRunsAndWorkers(t *testing.T) {
	pages := concertPages()
	var wantReport, wantObjs, wantNormSaved string
	for _, workers := range []int{1, 2, 4, 8} {
		// The serialized stream embeds the worker-pool size (re-applied on
		// load), so byte-identity is pinned per worker count, across runs.
		var wantSaved string
		for run := 0; run < 10; run++ {
			ex := workersExtractor(t, workers)
			w, err := ex.Wrap(pages)
			if err != nil {
				t.Fatalf("workers=%d run=%d: %v", workers, run, err)
			}
			gotReport := w.Report()
			gotObjs := fmt.Sprint(extractAll(t, w, pages))
			var saved bytes.Buffer
			if err := w.Save(&saved); err != nil {
				t.Fatalf("workers=%d run=%d: save: %v", workers, run, err)
			}
			if wantSaved == "" {
				wantSaved = saved.String()
				loaded, err := LoadWrapper(&saved, ex)
				if err != nil {
					t.Fatalf("workers=%d: load saved wrapper: %v", workers, err)
				}
				if loadedObjs := fmt.Sprint(extractAll(t, loaded, pages)); loadedObjs != gotObjs {
					t.Fatalf("workers=%d: save→load extraction diverged\n--- in-memory ---\n%s\n--- loaded ---\n%s",
						workers, gotObjs, loadedObjs)
				}
				// The only worker-count-dependent byte in the stream is the
				// recorded pool size itself (re-applied from the extractor's
				// config on load anyway). Normalizing it and re-saving must
				// give the same bytes at every worker count — the symbol
				// table, template and matches are pinned across counts.
				w.inner.SetWorkers(1)
				var norm bytes.Buffer
				if err := w.Save(&norm); err != nil {
					t.Fatalf("workers=%d: save normalized wrapper: %v", workers, err)
				}
				w.inner.SetWorkers(workers)
				if wantNormSaved == "" {
					wantNormSaved = norm.String()
				} else if norm.String() != wantNormSaved {
					t.Fatalf("workers=%d: serialized wrapper diverged across worker counts (fused tokenize→intern merge is not deterministic)", workers)
				}
			} else if saved.String() != wantSaved {
				t.Fatalf("workers=%d run=%d: serialized wrapper (symbol table included) diverged",
					workers, run)
			}
			if wantReport == "" && wantObjs == "" {
				wantReport, wantObjs = gotReport, gotObjs
				continue
			}
			if gotReport != wantReport {
				t.Fatalf("workers=%d run=%d: report diverged\n--- want ---\n%s\n--- got ---\n%s",
					workers, run, wantReport, gotReport)
			}
			if gotObjs != wantObjs {
				t.Fatalf("workers=%d run=%d: extraction diverged\n--- want ---\n%s\n--- got ---\n%s",
					workers, run, wantObjs, gotObjs)
			}
		}
	}
}

func TestExtractBatchPreservesInputOrder(t *testing.T) {
	ex := workersExtractor(t, 4)
	w, err := ex.Wrap(concertPages())
	if err != nil {
		t.Fatal(err)
	}
	training := concertPages()
	unseen := `<html><body><li><div>The Strokes</div><div>Friday July 2, 2010 9:00pm</div><div><span><a>Terminal 5</a></span><span>610 West 56th Street</span><span>New York City</span><span>New York</span><span>10019</span></div></li></body></html>`
	cases := []struct {
		name  string
		pages []string
	}{
		{"empty input", nil},
		{"single page", training[:1]},
		{"training pages", training},
		{"unseen page", []string{unseen}},
		{"mixed with empty, garbage and unseen", []string{
			training[0],
			"",
			"<html><body><p>nothing to extract here</p></body></html>",
			unseen,
			training[2],
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := w.ExtractBatchErr(tc.pages)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(tc.pages) {
				t.Fatalf("len = %d, want one slot per input page (%d)", len(got), len(tc.pages))
			}
			for i, p := range tc.pages {
				seq, err := w.ExtractHTMLErr(p)
				if err != nil {
					t.Fatal(err)
				}
				want := fmt.Sprint(seq)
				if fmt.Sprint(got[i]) != want {
					t.Errorf("slot %d differs from sequential ExtractHTMLErr\nwant %s\ngot  %s",
						i, want, fmt.Sprint(got[i]))
				}
			}
		})
	}
}

func TestExtractBatchAbortedAndNilWrapper(t *testing.T) {
	ex := workersExtractor(t, 4)
	w, err := ex.Wrap([]string{
		"<html><body><p>about our company and its mission</p></body></html>",
		"<html><body><p>read the terms of service carefully</p></body></html>",
		"<html><body><p>open positions and press contacts</p></body></html>",
	})
	if err == nil {
		t.Fatal("irrelevant source not discarded")
	}
	pages := concertPages()
	if _, err := w.ExtractBatchErr(pages); !errors.Is(err, ErrAborted) {
		t.Errorf("aborted wrapper batch err = %v, want ErrAborted", err)
	}
	var nilW *Wrapper
	if _, err := nilW.ExtractBatchErr(pages); !errors.Is(err, ErrNoWrapper) {
		t.Errorf("nil wrapper batch err = %v, want ErrNoWrapper", err)
	}
}

// TestParallelRunMatchesSequential drives the one-shot Run entry point
// at both worker counts and checks the end results coincide.
func TestParallelRunMatchesSequential(t *testing.T) {
	pages := concertPages()
	seq, err := workersExtractor(t, 1).RunContext(context.Background(), pages)
	if err != nil {
		t.Fatal(err)
	}
	par, err := workersExtractor(t, 4).RunContext(context.Background(), pages)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(seq) != fmt.Sprint(par) {
		t.Fatalf("parallel Run diverged\nseq %s\npar %s", fmt.Sprint(seq), fmt.Sprint(par))
	}
}

// TestWrapDeterministicAcrossFixpointWorkers pins the staged analysis
// core's new axis: the worker count of Algorithm 2's fixpoint passes
// (role re-keying, vector counting, annotation labelling) must not leak
// into a single output byte, at any pipeline worker count. Reports,
// extraction output, and the normalized serialized wrapper must be
// identical across every combination.
func TestWrapDeterministicAcrossFixpointWorkers(t *testing.T) {
	pages := concertPages()
	var wantReport, wantObjs, wantNormSaved string
	for _, pipeWorkers := range []int{1, 4} {
		for _, eqWorkers := range []int{1, 2, 4, 8} {
			cfg := DefaultConfig()
			cfg.Workers = pipeWorkers
			cfg.EQ.Workers = eqWorkers
			ex := concertExtractor(t, WithConfig(cfg))
			w, err := ex.Wrap(pages)
			if err != nil {
				t.Fatalf("workers=%d/%d: %v", pipeWorkers, eqWorkers, err)
			}
			gotReport := w.Report()
			gotObjs := fmt.Sprint(extractAll(t, w, pages))
			// The recorded pool size is the only legitimate worker-dependent
			// byte in the stream; normalize it before comparing.
			w.inner.SetWorkers(1)
			var norm bytes.Buffer
			if err := w.Save(&norm); err != nil {
				t.Fatalf("workers=%d/%d: save: %v", pipeWorkers, eqWorkers, err)
			}
			if wantReport == "" {
				wantReport, wantObjs, wantNormSaved = gotReport, gotObjs, norm.String()
				continue
			}
			if gotReport != wantReport {
				t.Errorf("workers=%d/%d: report diverged\n--- want ---\n%s\n--- got ---\n%s",
					pipeWorkers, eqWorkers, wantReport, gotReport)
			}
			if gotObjs != wantObjs {
				t.Errorf("workers=%d/%d: extraction diverged\n--- want ---\n%s\n--- got ---\n%s",
					pipeWorkers, eqWorkers, wantObjs, gotObjs)
			}
			if norm.String() != wantNormSaved {
				t.Errorf("workers=%d/%d: serialized wrapper diverged across fixpoint worker counts",
					pipeWorkers, eqWorkers)
			}
		}
	}
}

// TestAbortedWrapDeterministicAcrossFixpointWorkers drives the abort
// path (irrelevant source, no wrapper survives) across fixpoint worker
// counts: the aborted wrapper's report must come out identical.
func TestAbortedWrapDeterministicAcrossFixpointWorkers(t *testing.T) {
	irrelevant := []string{
		"<html><body><p>about our company and its mission</p></body></html>",
		"<html><body><p>read the terms of service carefully</p></body></html>",
		"<html><body><p>open positions and press contacts</p></body></html>",
	}
	var wantReport string
	for _, eqWorkers := range []int{1, 2, 4, 8} {
		cfg := DefaultConfig()
		cfg.EQ.Workers = eqWorkers
		ex := concertExtractor(t, WithConfig(cfg))
		w, err := ex.Wrap(irrelevant)
		if err == nil {
			t.Fatalf("eq workers=%d: irrelevant source not discarded", eqWorkers)
		}
		gotReport := w.Report()
		if wantReport == "" {
			wantReport = gotReport
			continue
		}
		if gotReport != wantReport {
			t.Errorf("eq workers=%d: aborted report diverged\n--- want ---\n%s\n--- got ---\n%s",
				eqWorkers, wantReport, gotReport)
		}
	}
}

// TestWrapVariationsReuseAnalysisBase asserts the support-variation loop
// resumes from one shared analysis base instead of redoing the corpus
// stage per variation: with SupportMin=3 and SupportMax=5, at least
// SupportMax-SupportMin runs must count as base reuses, against a single
// base build.
func TestWrapVariationsReuseAnalysisBase(t *testing.T) {
	ob := NewObserver()
	ex := observedConcertExtractor(t, ob)
	if _, err := ex.Wrap(concertPages()); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	if got := ob.Counter("eqclass.base_builds"); got != 1 {
		t.Errorf("base_builds = %d, want exactly 1 per wrap", got)
	}
	min := int64(cfg.SupportMax - cfg.SupportMin)
	if got := ob.Counter("eqclass.base_reuse"); got < min {
		t.Errorf("base_reuse = %d, want >= %d (one per extra support variation)", got, min)
	}
}
