module objectrunner

go 1.22
