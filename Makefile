# ObjectRunner build and verification targets.

GO ?= go

.PHONY: build test check bench trace clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the extended tier-1 gate (see ROADMAP.md): vet plus the full
# test suite under the race detector, then the parallel-pipeline and
# serving-cache tests twice more under race to shake out
# scheduling-dependent interleavings (singleflight, LRU, spill).
check:
	$(GO) vet ./...
	$(GO) test -race -timeout 40m ./...
	$(GO) test -race -count=2 -run 'Parallel|Determinis|ExtractBatch|ForEach|Workers' ./...
	$(GO) test -race -count=2 ./internal/store/
	$(GO) test -race -count=2 -run 'Serve|SaveLoad|WrapContext|Persist' .

# bench runs every benchmark and additionally records the parallel
# scaling run (BENCH_parallel.json) and the serving-cache economics —
# cold wrap vs cache hit vs disk load — (BENCH_serve.json) as JSON for
# the perf trajectory.
bench:
	$(GO) test -bench=. -benchmem -run XXX .
	$(GO) test -json -bench='^BenchmarkWrapParallel$$' -benchmem -run XXX . > BENCH_parallel.json
	$(GO) test -json -bench='^BenchmarkServeCache$$' -benchmem -run XXX . > BENCH_serve.json

# trace runs one books source end to end with a JSONL span trace and the
# EXPLAIN report on stderr.
trace: build
	$(GO) run ./cmd/sitegen -out /tmp/objectrunner-bench -domains books -pages 6
	$(GO) run ./cmd/objectrunner -sod /tmp/objectrunner-bench/books/sod.txt \
		-pages '/tmp/objectrunner-bench/books/bn/page*.html' \
		-dict BookTitle=/tmp/objectrunner-bench/dictionaries/booktitle.txt \
		-dict Author=/tmp/objectrunner-bench/dictionaries/author.txt \
		-trace /tmp/objectrunner-trace.jsonl -report -json >/dev/null
	@echo "trace written to /tmp/objectrunner-trace.jsonl"

clean:
	rm -rf /tmp/objectrunner-bench /tmp/objectrunner-trace.jsonl
