# ObjectRunner build and verification targets.

GO ?= go

.PHONY: build test check bench trace clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the extended tier-1 gate (see ROADMAP.md): vet plus the full
# test suite under the race detector, then the parallel-pipeline tests
# twice more under race to shake out scheduling-dependent interleavings.
check:
	$(GO) vet ./...
	$(GO) test -race -timeout 40m ./...
	$(GO) test -race -count=2 -run 'Parallel|Determinis|ExtractBatch|ForEach|Workers' ./...

# bench runs every benchmark and additionally records the parallel
# scaling run as JSON for the perf trajectory (BENCH_parallel.json).
bench:
	$(GO) test -bench=. -benchmem -run XXX .
	$(GO) test -json -bench='^BenchmarkWrapParallel$$' -benchmem -run XXX . > BENCH_parallel.json

# trace runs one books source end to end with a JSONL span trace and the
# EXPLAIN report on stderr.
trace: build
	$(GO) run ./cmd/sitegen -out /tmp/objectrunner-bench -domains books -pages 6
	$(GO) run ./cmd/objectrunner -sod /tmp/objectrunner-bench/books/sod.txt \
		-pages '/tmp/objectrunner-bench/books/bn/page*.html' \
		-dict BookTitle=/tmp/objectrunner-bench/dictionaries/booktitle.txt \
		-dict Author=/tmp/objectrunner-bench/dictionaries/author.txt \
		-trace /tmp/objectrunner-trace.jsonl -report -json >/dev/null
	@echo "trace written to /tmp/objectrunner-trace.jsonl"

clean:
	rm -rf /tmp/objectrunner-bench /tmp/objectrunner-trace.jsonl
