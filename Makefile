# ObjectRunner build and verification targets.

GO ?= go
GOFMT ?= gofmt

.PHONY: build test fmt fmt-check ci check bench bench-smoke bench-load bench-cluster bench-guard bench-baseline profile trace clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

fmt:
	$(GOFMT) -w .

# fmt-check fails (with the offending file list) if any file is not
# gofmt-clean, so CI can gate on formatting without rewriting files.
fmt-check:
	@out="$$($(GOFMT) -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# ci is the exact command set the GitHub workflow runs — keeping it in
# the Makefile means the local gate and CI cannot drift apart.
ci: fmt-check
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race -timeout 40m ./...

# check is the extended tier-1 gate (see ROADMAP.md): everything ci
# runs, then the parallel-pipeline, store-shutdown, and serving-cache
# tests twice more under race to shake out scheduling-dependent
# interleavings (singleflight, LRU, spill, drain), plus the symbol-table
# and tokenizer suites (concurrent interning, raw-text/entity edges) and
# the telemetry layer (labeled metrics, flight recorder) under the same
# repeated-race regime.
check: ci
	$(GO) test -race -count=2 -run 'Parallel|Determinis|ExtractBatch|ForEach|Workers|Chunks|Merge|Remap|SmallCorpus' ./...
	$(GO) test -race -count=2 ./internal/store/
	$(GO) test -race -count=2 ./internal/httpserver/
	$(GO) test -race -count=2 ./internal/cluster/
	$(GO) test -race -count=2 ./api/v1/...
	$(GO) test -race -count=2 ./internal/obs/
	$(GO) test -race -count=2 ./internal/symtab/
	$(GO) test -race -count=2 -run 'RawText|Entit|Tokeniz|Stream' ./internal/dom/ ./internal/eqclass/
	$(GO) test -race -count=2 -run 'Serve|SaveLoad|WrapContext|Persist|Close|Drain|StreamVsTreeExtract' .

# bench runs every benchmark and additionally records the parallel
# scaling run (BENCH_parallel.json), the serving-cache economics — cold
# wrap vs cache hit vs disk load — (BENCH_serve.json), and the cold
# inference allocation profile (BENCH_alloc.json) as JSON for the perf
# trajectory. Each JSON file is written to a temp path and renamed only
# on success, so a failed run never truncates the previous record.
bench:
	$(GO) test -bench=. -benchmem -run XXX .
	$(GO) test -json -bench='^Benchmark(WrapParallel|AnalyzeFixpoint)$$' -benchmem -run XXX . > BENCH_parallel.json.tmp
	mv BENCH_parallel.json.tmp BENCH_parallel.json
	$(GO) test -json -bench='^BenchmarkServeCache$$' -benchmem -run XXX . > BENCH_serve.json.tmp
	mv BENCH_serve.json.tmp BENCH_serve.json
	$(GO) test -json -bench='^BenchmarkInferAllocs$$' -benchmem -run XXX . > BENCH_alloc.json.tmp
	mv BENCH_alloc.json.tmp BENCH_alloc.json

# bench-smoke runs the recorded benchmarks once each (-benchtime=1x)
# purely to prove they still compile and complete; CI uploads the JSON
# as an artifact but asserts nothing about the numbers. -benchmem keeps
# allocs/op in the smoke record too.
bench-smoke:
	$(GO) test -json -bench='^Benchmark(WrapParallel|AnalyzeFixpoint)$$' -benchtime=1x -benchmem -run XXX . > BENCH_parallel.json.tmp
	mv BENCH_parallel.json.tmp BENCH_parallel.json
	$(GO) test -json -bench='^BenchmarkServeCache$$' -benchtime=1x -benchmem -run XXX . > BENCH_serve.json.tmp
	mv BENCH_serve.json.tmp BENCH_serve.json
	$(GO) test -json -bench='^BenchmarkInferAllocs$$' -benchtime=1x -benchmem -run XXX . > BENCH_alloc.json.tmp
	mv BENCH_alloc.json.tmp BENCH_alloc.json

# bench-guard is the perf regression gate: it re-records the parallel
# scaling and serving-cache benchmarks (tmp+rename, like bench) and
# compares them against the committed baselines under bench/baseline/
# with cmd/benchguard, failing on any >20% ns/op regression (or a
# vanished benchmark). A fixed iteration budget repeated GUARD_COUNT
# times keeps wall time in seconds; benchguard takes the minimum across
# repeats, so a single noisy run cannot fail the gate on its own.
# allocs/op gates separately (GUARD_ALLOC_TOLERANCE, default strict:
# any increase over a baseline that recorded allocs fails — allocation
# counts are deterministic, unlike wall time).
# Knobs: GUARD_BENCHTIME, GUARD_COUNT, GUARD_TOLERANCE,
# GUARD_ALLOC_TOLERANCE.
GUARD_BENCHTIME ?= 20x
GUARD_COUNT ?= 3
GUARD_TOLERANCE ?= 0.20
GUARD_ALLOC_TOLERANCE ?= 0

bench-guard:
	$(GO) test -json -bench='^Benchmark(WrapParallel|AnalyzeFixpoint)$$' -benchtime=$(GUARD_BENCHTIME) -count=$(GUARD_COUNT) -benchmem -run XXX . > BENCH_parallel.json.tmp
	mv BENCH_parallel.json.tmp BENCH_parallel.json
	$(GO) test -json -bench='^BenchmarkServeCache$$' -benchtime=$(GUARD_BENCHTIME) -count=$(GUARD_COUNT) -benchmem -run XXX . > BENCH_serve.json.tmp
	mv BENCH_serve.json.tmp BENCH_serve.json
	$(GO) run ./cmd/benchguard -tolerance $(GUARD_TOLERANCE) -alloc-tolerance $(GUARD_ALLOC_TOLERANCE) \
		bench/baseline/BENCH_parallel.json:BENCH_parallel.json \
		bench/baseline/BENCH_serve.json:BENCH_serve.json

# bench-baseline re-records the guard benchmarks and commits them as the
# new baselines (run after a PR that legitimately moves the numbers, on
# the machine whose numbers the guard should trust).
bench-baseline:
	$(GO) test -json -bench='^Benchmark(WrapParallel|AnalyzeFixpoint)$$' -benchtime=$(GUARD_BENCHTIME) -count=$(GUARD_COUNT) -benchmem -run XXX . > bench/baseline/BENCH_parallel.json.tmp
	mv bench/baseline/BENCH_parallel.json.tmp bench/baseline/BENCH_parallel.json
	$(GO) test -json -bench='^BenchmarkServeCache$$' -benchtime=$(GUARD_BENCHTIME) -count=$(GUARD_COUNT) -benchmem -run XXX . > bench/baseline/BENCH_serve.json.tmp
	mv bench/baseline/BENCH_serve.json.tmp bench/baseline/BENCH_serve.json

# profile regenerates the committed wrap-path CPU profile
# (bench/profile/wrap_workers4.prof) that bench/profile/README.md
# narrates: the full Wrap + ExtractBatch path at workers=4 over 50
# iterations. Re-run it after changes that move the inference profile,
# then refresh the README's numbers.
profile:
	$(GO) test -bench='^BenchmarkWrapParallel$$/workers=4' -benchtime=50x -run XXX -cpuprofile bench/profile/wrap_workers4.prof .

# bench-load records serving-tier latency under load: it starts a real
# objectrunnerd over a sitegen corpus and replays it open-loop with
# cmd/loadgen, writing BENCH_load.json (achieved RPS, error and shed
# counts, p50/p90/p95/p99/max latency per source). Knobs via env:
# RPS, DURATION, CONCURRENCY, PAGES, OUT (see scripts/bench_load.sh).
bench-load:
	sh scripts/bench_load.sh

# bench-cluster records the sharded serving tier under load: two real
# objectrunnerd nodes on one consistent-hash ring over a shared wrapper
# spill, replayed open-loop against both — so about half the requests
# cross the forwarding hop — writing BENCH_cluster.json with per-node
# request counts next to the latency quantiles. Same env knobs as
# bench-load (RPS, DURATION, CONCURRENCY, PAGES, OUT).
bench-cluster:
	sh scripts/bench_cluster.sh

# trace runs one books source end to end with a JSONL span trace and the
# EXPLAIN report on stderr.
trace: build
	$(GO) run ./cmd/sitegen -out /tmp/objectrunner-bench -domains books -pages 6
	$(GO) run ./cmd/objectrunner -sod /tmp/objectrunner-bench/books/sod.txt \
		-pages '/tmp/objectrunner-bench/books/bn/page*.html' \
		-dict BookTitle=/tmp/objectrunner-bench/dictionaries/booktitle.txt \
		-dict Author=/tmp/objectrunner-bench/dictionaries/author.txt \
		-trace /tmp/objectrunner-trace.jsonl -report -json >/dev/null
	@echo "trace written to /tmp/objectrunner-trace.jsonl"

clean:
	rm -rf /tmp/objectrunner-bench /tmp/objectrunner-trace.jsonl
	rm -f BENCH_parallel.json.tmp BENCH_serve.json.tmp BENCH_alloc.json.tmp
	rm -f BENCH_load.json.tmp BENCH_cluster.json.tmp
	rm -f bench/baseline/BENCH_parallel.json.tmp bench/baseline/BENCH_serve.json.tmp
