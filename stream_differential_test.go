package objectrunner

import (
	"context"
	"encoding/json"
	"testing"

	"objectrunner/internal/corpus"
	"objectrunner/internal/obs"
	"objectrunner/internal/recognize"
	"objectrunner/internal/sitegen"
	"objectrunner/internal/wrapper"
)

// flattenBatchJSON canonicalizes per-page extraction output for
// byte-comparison: FlattenObjects per page, JSON-encoded (map keys sort,
// so equal structures encode identically).
func flattenBatchJSON(tb testing.TB, per [][]*Object) string {
	tb.Helper()
	all := make([][]map[string]any, len(per))
	for i, objs := range per {
		all[i] = FlattenObjects(objs)
	}
	b, err := json.Marshal(all)
	if err != nil {
		tb.Fatalf("marshal flattened objects: %v", err)
	}
	return string(b)
}

// TestStreamVsTreeSitegenDomains is the streaming path's differential
// harness over the full synthetic benchmark: every domain, every source,
// several worker counts. The tree path (parse + clean + tokenize per
// page) is the reference oracle; the streaming path must flatten
// byte-identically on every page. It also proves the fused tokenizer
// carries real coverage — if every page bailed to the tree fallback the
// comparison would be vacuous.
func TestStreamVsTreeSitegenDomains(t *testing.T) {
	cfg := sitegen.DefaultConfig()
	cfg.PagesPerSource = 6
	b, err := sitegen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var streamed, fellBack int64
	for _, dd := range b.Domains {
		reg := recognize.NewRegistry(b.KB, corpus.Source{Corpus: b.Corpus, Threshold: 0.05})
		recs, err := reg.ResolveAll(dd.SOD)
		if err != nil {
			t.Fatal(err)
		}
		for _, src := range dd.Sources {
			inner := wrapper.Infer(src.Pages, dd.SOD, recs, b.KB, wrapper.DefaultConfig())
			if inner.Aborted {
				continue
			}
			ob := obs.New()
			inner.SetObserver(ob)
			w := &Wrapper{inner: inner}
			for _, workers := range []int{1, 2, 4, 8} {
				inner.SetWorkers(workers)
				tree, err := w.ExtractBatchContext(ctx, src.HTML)
				if err != nil {
					t.Fatalf("%s/%s workers=%d tree: %v", dd.Spec.Name, src.Spec.Name, workers, err)
				}
				stream, err := w.ExtractStreamBatchContext(ctx, src.HTML)
				if err != nil {
					t.Fatalf("%s/%s workers=%d stream: %v", dd.Spec.Name, src.Spec.Name, workers, err)
				}
				want, got := flattenBatchJSON(t, tree), flattenBatchJSON(t, stream)
				if want != got {
					t.Errorf("%s/%s workers=%d: stream output diverges\ntree:   %s\nstream: %s",
						dd.Spec.Name, src.Spec.Name, workers, want, got)
				}
			}
			fb := ob.Counter("extract.stream_fallback")
			fellBack += fb
			streamed += ob.Counter("extract.pages") - fb
		}
	}
	if streamed == 0 {
		t.Fatalf("every page fell back to the tree path (%d fallbacks): differential coverage is vacuous", fellBack)
	}
	t.Logf("streamed %d pages, tree fallback on %d", streamed, fellBack)
}

// TestStreamVsTreeExtract drives the streaming serve path through edge
// pages — entity-heavy text, kept raw-text tags, pages with nothing to
// extract — against the tree oracle, wrapper-inferred from the paper's
// running example. Runs under -race -count=2 in make check.
func TestStreamVsTreeExtract(t *testing.T) {
	ex := concertExtractor(t)
	w, err := ex.Wrap(concertPages())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		src  string
	}{
		{"unseen_record", `<html><body><li><div>The Strokes</div><div>Friday July 2, 2010 9:00pm</div><div><span><a>Terminal 5</a></span><span>610 West 56th Street</span><span>New York City</span><span>New York</span><span>10019</span></div></li></body></html>`},
		{"entity_heavy", `<html><body><li><div>Simon &amp; Garfunkel</div><div>Monday May 11, 2010 8:00pm</div><div><span><a>Madison Square Garden</a></span><span>237 West 42nd Street &#8212; Floor 2</span><span>New York City</span><span>New York</span><span>10036</span></div></li></body></html>`},
		{"raw_text_tag", `<html><head><title>Gigs &amp; Shows</title><script>var x = "<li><div>Fake</div></li>";</script></head><body><li><div>Metallica</div><div>Monday May 11, 2010 8:00pm</div><div><span><a>Madison Square Garden</a></span><span>237 West 42nd Street</span><span>New York City</span><span>New York</span><span>10036</span></div></li></body></html>`},
		{"empty_page", ``},
		{"no_records", `<html><body><p>no concerts this week</p></body></html>`},
		{"missing_html_body", `<li><div>Muse</div><div>Friday June 19, 2010 7:00pm</div><div><span><a>B.B King Blues and Grill</a></span><span>4 Penn Plaza</span><span>New York City</span><span>New York</span><span>10001</span></div></li>`},
		{"multi_record_messy", `<HTML><BODY><ul><li><div>Madonna</div><div>Saturday May 29, 2010 7:00pm</div><div><span><a>The Town Hall</a></span><span>131 W 55th Street</span><span>New York City</span><span>New York</span><span>10019</span></div><li><div>Coldplay</div><div>Saturday August 8, 2010 8:00pm</div><div><span><a>Bowery Ballroom</a></span><span>6 Delancey Street</span><span>New York City</span><span>New York</span><span>10002</span></div></ul></BODY></HTML>`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tree, err := w.ExtractHTMLErr(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			stream, err := w.ExtractStreamBatchContext(context.Background(), []string{tc.src})
			if err != nil {
				t.Fatal(err)
			}
			want := flattenBatchJSON(t, [][]*Object{tree})
			got := flattenBatchJSON(t, stream)
			if want != got {
				t.Errorf("stream output diverges\ntree:   %s\nstream: %s", want, got)
			}
		})
	}
}

// TestServeExtractStreamParity proves the two serve configurations —
// streaming on (the default) and off — answer identically through the
// full Service facade, including cache warm-up.
func TestServeExtractStreamParity(t *testing.T) {
	ctx := context.Background()
	pages := concertPages()
	streamSvc := NewService(concertExtractor(t), StoreConfig{})
	treeSvc := NewService(concertExtractor(t), StoreConfig{DisableStreamExtract: true})
	for i := 0; i < 3; i++ { // first call infers, later calls hit the cache
		got, err := streamSvc.ServeExtract(ctx, "concerts", pages)
		if err != nil {
			t.Fatal(err)
		}
		want, err := treeSvc.ServeExtract(ctx, "concerts", pages)
		if err != nil {
			t.Fatal(err)
		}
		w, g := flattenBatchJSON(t, [][]*Object{want}), flattenBatchJSON(t, [][]*Object{got})
		if w != g {
			t.Fatalf("round %d: serve output diverges\ntree:   %s\nstream: %s", i, w, g)
		}
	}
}
