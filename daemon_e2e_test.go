package objectrunner

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestDaemonEndToEnd drives the real objectrunnerd binary over HTTP: it
// materializes a sitegen books source, registers it with POST /v1/wrap,
// batch-extracts with POST /v1/extract (asserting output identical to
// library-level ServeExtract), then SIGTERMs the daemon mid-wrap and
// asserts a clean drain (exit 0, spill on disk), and finally restarts
// over the same cache dir and observes a disk hit instead of
// re-inference. Requires the go toolchain; skipped in -short.
func TestDaemonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "bin")
	if err := os.MkdirAll(bin, 0o755); err != nil {
		t.Fatal(err)
	}
	build := func(name string) string {
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Dir = "."
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, b)
		}
		return out
	}
	sitegen := build("sitegen")
	daemonBin := build("objectrunnerd")

	benchDir := filepath.Join(dir, "bench")
	if out, err := exec.Command(sitegen, "-out", benchDir, "-pages", "6", "-domains", "books").CombinedOutput(); err != nil {
		t.Fatalf("sitegen: %v\n%s", err, out)
	}

	sodText := readFileT(t, filepath.Join(benchDir, "books", "sod.txt"))
	pages := readPagesT(t, filepath.Join(benchDir, "books", "bn", "page*.html"))
	dicts := map[string][]wireEntry{
		"BookTitle": readDictT(t, filepath.Join(benchDir, "dictionaries", "booktitle.txt")),
		"Author":    readDictT(t, filepath.Join(benchDir, "dictionaries", "author.txt")),
	}
	cacheDir := filepath.Join(dir, "cache")

	d := startDaemon(t, daemonBin, "-wrapper-cache-dir", cacheDir)

	// Wrap the source over HTTP.
	var wrapResp struct {
		Source      string  `json:"source"`
		Score       float64 `json:"score"`
		Description string  `json:"description"`
	}
	status := postJSONT(t, d.url("/v1/wrap"), map[string]any{
		"source": "books/bn", "sod": sodText, "pages": pages, "dictionaries": dicts,
	}, &wrapResp)
	if status != http.StatusOK {
		t.Fatalf("wrap status = %d (%+v)", status, wrapResp)
	}
	if wrapResp.Score <= 0 {
		t.Errorf("wrap response = %+v", wrapResp)
	}

	// Extract over HTTP and compare byte-for-byte with the library path.
	var extResp struct {
		Count   int              `json:"count"`
		Objects []map[string]any `json:"objects"`
	}
	status = postJSONT(t, d.url("/v1/extract"), map[string]any{
		"source": "books/bn", "pages": pages,
	}, &extResp)
	if status != http.StatusOK {
		t.Fatalf("extract status = %d", status)
	}
	if extResp.Count == 0 {
		t.Fatal("extracted no objects over HTTP")
	}
	var opts []Option
	for class, entries := range dicts {
		var es []Entry
		for _, e := range entries {
			es = append(es, Entry{Value: e.Value, Confidence: e.Confidence})
		}
		opts = append(opts, WithDictionary(class, es))
	}
	ex, err := New(sodText, opts...)
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(ex, StoreConfig{})
	objs, err := svc.ServeExtract(context.Background(), "books/bn", pages)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(FlattenObjects(objs))
	got, _ := json.Marshal(extResp.Objects)
	if !bytes.Equal(got, want) {
		t.Errorf("HTTP extraction differs from library ServeExtract:\n got: %s\nwant: %s", got, want)
	}

	// Kick off a slow wrap, then SIGTERM mid-flight: the daemon must
	// cancel it, spill the cache, and exit 0.
	slowPages := make([]string, 0, 20*len(pages))
	for i := 0; i < 20; i++ {
		slowPages = append(slowPages, pages...)
	}
	slowDone := make(chan int, 1)
	go func() {
		var ignore struct{}
		status := postJSONT(t, d.url("/v1/wrap"), map[string]any{
			"source": "books/slow", "sod": sodText, "pages": slowPages, "dictionaries": dicts,
		}, &ignore)
		slowDone <- status
	}()
	time.Sleep(300 * time.Millisecond)
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("daemon exit after SIGTERM: %v\nstderr:\n%s", err, d.stderr())
	}
	select {
	case <-slowDone: // 503 on clean cancel, or a transport error mapped to 0
	case <-time.After(10 * time.Second):
		t.Fatal("mid-flight wrap request never returned")
	}
	if !strings.Contains(d.stderr(), "drained, wrapper cache spilled") {
		t.Errorf("no drain confirmation in stderr:\n%s", d.stderr())
	}
	spills, err := filepath.Glob(filepath.Join(cacheDir, "*.wrapper"))
	if err != nil || len(spills) == 0 {
		t.Fatalf("no wrapper spilled to %s (err %v)", cacheDir, err)
	}

	// Restart over the same cache dir: the re-registered source loads
	// from disk, no re-inference.
	d2 := startDaemon(t, daemonBin, "-wrapper-cache-dir", cacheDir)
	status = postJSONT(t, d2.url("/v1/wrap"), map[string]any{
		"source": "books/bn", "sod": sodText, "pages": pages, "dictionaries": dicts,
	}, &wrapResp)
	if status != http.StatusOK {
		t.Fatalf("re-wrap status = %d", status)
	}
	var sources struct {
		Sources []struct {
			Source string `json:"source"`
			Stats  struct {
				DiskHits int64
				Misses   int64
			} `json:"stats"`
		} `json:"sources"`
	}
	getJSONT(t, d2.url("/v1/sources"), &sources)
	if len(sources.Sources) != 1 || sources.Sources[0].Stats.DiskHits != 1 || sources.Sources[0].Stats.Misses != 0 {
		t.Errorf("sources after restart = %+v, want a pure disk hit", sources.Sources)
	}
	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d2.cmd.Wait(); err != nil {
		t.Fatalf("second daemon exit: %v\nstderr:\n%s", err, d2.stderr())
	}
}

type wireEntry struct {
	Value      string  `json:"value"`
	Confidence float64 `json:"confidence"`
}

// daemonProc is one running objectrunnerd with its captured stderr.
type daemonProc struct {
	cmd  *exec.Cmd
	addr string
	buf  *syncBuffer
}

func (d *daemonProc) url(path string) string { return "http://" + d.addr + path }
func (d *daemonProc) stderr() string         { return d.buf.String() }

var listenRE = regexp.MustCompile(`listening on ([\d.:\[\]]+)`)

func startDaemon(t *testing.T, bin string, args ...string) *daemonProc {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	buf := &syncBuffer{}
	cmd.Stderr = buf
	cmd.Stdout = buf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemonProc{cmd: cmd, buf: buf}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if m := listenRE.FindStringSubmatch(buf.String()); m != nil {
			d.addr = m[1]
			return d
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("daemon never reported its address; stderr:\n%s", buf.String())
	return nil
}

type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func postJSONT(t *testing.T, url string, body any, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		// The daemon may legitimately vanish mid-request (SIGTERM test).
		return 0
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && resp.StatusCode == http.StatusOK {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func getJSONT(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func readFileT(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func readPagesT(t *testing.T, glob string) []string {
	t.Helper()
	files, err := filepath.Glob(glob)
	if err != nil || len(files) == 0 {
		t.Fatalf("no pages match %q (err %v)", glob, err)
	}
	pages := make([]string, 0, len(files))
	for _, f := range files {
		pages = append(pages, readFileT(t, f))
	}
	return pages
}

func readDictT(t *testing.T, path string) []wireEntry {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var entries []wireEntry
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		conf := 0.9
		if i := strings.IndexByte(line, '\t'); i >= 0 {
			if v, err := strconv.ParseFloat(strings.TrimSpace(line[i+1:]), 64); err == nil {
				conf = v
			}
			line = line[:i]
		}
		entries = append(entries, wireEntry{Value: line, Confidence: conf})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatalf("empty dictionary %s", path)
	}
	return entries
}
