package objectrunner

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	apiv1 "objectrunner/api/v1"
	client "objectrunner/api/v1/client"
)

// TestDaemonEndToEnd drives the real objectrunnerd binary over HTTP
// through the typed api/v1 client: it materializes a sitegen books
// source, registers it with Wrap, batch-extracts with Extract (asserting
// output identical to library-level ServeExtract), then SIGTERMs the
// daemon mid-wrap and asserts a clean drain (exit 0, spill on disk), and
// finally restarts over the same cache dir and observes a disk hit
// instead of re-inference. Requires the go toolchain; skipped in -short.
func TestDaemonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "bin")
	if err := os.MkdirAll(bin, 0o755); err != nil {
		t.Fatal(err)
	}
	build := func(name string) string {
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Dir = "."
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, b)
		}
		return out
	}
	sitegen := build("sitegen")
	daemonBin := build("objectrunnerd")

	benchDir := filepath.Join(dir, "bench")
	if out, err := exec.Command(sitegen, "-out", benchDir, "-pages", "6", "-domains", "books").CombinedOutput(); err != nil {
		t.Fatalf("sitegen: %v\n%s", err, out)
	}

	sodText := readFileT(t, filepath.Join(benchDir, "books", "sod.txt"))
	pages := readPagesT(t, filepath.Join(benchDir, "books", "bn", "page*.html"))
	dicts := map[string][]apiv1.Entry{
		"BookTitle": readDictT(t, filepath.Join(benchDir, "dictionaries", "booktitle.txt")),
		"Author":    readDictT(t, filepath.Join(benchDir, "dictionaries", "author.txt")),
	}
	cacheDir := filepath.Join(dir, "cache")
	ctx := context.Background()

	d := startDaemon(t, daemonBin, "-wrapper-cache-dir", cacheDir)
	cl := client.New(d.baseURL())

	// Wrap the source over HTTP.
	wrapResp, err := cl.Wrap(ctx, apiv1.WrapRequest{
		Source: "books/bn", SOD: sodText, Pages: pages, Dictionaries: dicts,
	})
	if err != nil {
		t.Fatalf("wrap: %v", err)
	}
	if wrapResp.Score <= 0 {
		t.Errorf("wrap response = %+v", wrapResp)
	}

	// Extract over HTTP and compare byte-for-byte with the library path.
	extResp, err := cl.Extract(ctx, apiv1.ExtractRequest{Source: "books/bn", Pages: pages})
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	if extResp.Count == 0 {
		t.Fatal("extracted no objects over HTTP")
	}
	var opts []Option
	for class, entries := range dicts {
		var es []Entry
		for _, e := range entries {
			es = append(es, Entry{Value: e.Value, Confidence: e.Confidence})
		}
		opts = append(opts, WithDictionary(class, es))
	}
	ex, err := New(sodText, opts...)
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(ex, StoreConfig{})
	objs, err := svc.ServeExtract(ctx, "books/bn", pages)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(FlattenObjects(objs))
	got, _ := json.Marshal(extResp.Objects)
	if !bytes.Equal(got, want) {
		t.Errorf("HTTP extraction differs from library ServeExtract:\n got: %s\nwant: %s", got, want)
	}

	// Kick off a slow wrap, then SIGTERM mid-flight: the daemon must
	// cancel it, spill the cache, and exit 0.
	slowPages := make([]string, 0, 20*len(pages))
	for i := 0; i < 20; i++ {
		slowPages = append(slowPages, pages...)
	}
	slowDone := make(chan error, 1)
	go func() {
		// The daemon legitimately vanishes mid-request here; any error —
		// a 503 on clean cancel or a transport error — is acceptable.
		_, err := cl.Wrap(ctx, apiv1.WrapRequest{
			Source: "books/slow", SOD: sodText, Pages: slowPages, Dictionaries: dicts,
		})
		slowDone <- err
	}()
	time.Sleep(300 * time.Millisecond)
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("daemon exit after SIGTERM: %v\nstderr:\n%s", err, d.stderr())
	}
	select {
	case <-slowDone:
	case <-time.After(10 * time.Second):
		t.Fatal("mid-flight wrap request never returned")
	}
	if !strings.Contains(d.stderr(), "drained, wrapper cache spilled") {
		t.Errorf("no drain confirmation in stderr:\n%s", d.stderr())
	}
	spills, err := filepath.Glob(filepath.Join(cacheDir, "*.wrapper"))
	if err != nil || len(spills) == 0 {
		t.Fatalf("no wrapper spilled to %s (err %v)", cacheDir, err)
	}

	// Restart over the same cache dir: the re-registered source loads
	// from disk, no re-inference.
	d2 := startDaemon(t, daemonBin, "-wrapper-cache-dir", cacheDir)
	cl2 := client.New(d2.baseURL())
	if _, err := cl2.Wrap(ctx, apiv1.WrapRequest{
		Source: "books/bn", SOD: sodText, Pages: pages, Dictionaries: dicts,
	}); err != nil {
		t.Fatalf("re-wrap: %v", err)
	}
	sources, err := cl2.Sources(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(sources.Sources) != 1 || sources.Sources[0].Stats.DiskHits != 1 || sources.Sources[0].Stats.Misses != 0 {
		t.Errorf("sources after restart = %+v, want a pure disk hit", sources.Sources)
	}
	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d2.cmd.Wait(); err != nil {
		t.Fatalf("second daemon exit: %v\nstderr:\n%s", err, d2.stderr())
	}
}

// TestDaemonClusterEndToEnd boots a real two-daemon cluster over a
// shared cache dir and proves the client-visible sharding behavior: a
// request to either node yields byte-identical output (the non-owner
// forwards), GET /v1/sources attributes ownership, and killing the owner
// leaves the source servable via the survivor's spill fallback.
// Skipped in -short.
func TestDaemonClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "bin")
	if err := os.MkdirAll(bin, 0o755); err != nil {
		t.Fatal(err)
	}
	build := func(name string) string {
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Dir = "."
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, b)
		}
		return out
	}
	sitegen := build("sitegen")
	daemonBin := build("objectrunnerd")

	benchDir := filepath.Join(dir, "bench")
	if out, err := exec.Command(sitegen, "-out", benchDir, "-pages", "6", "-domains", "books").CombinedOutput(); err != nil {
		t.Fatalf("sitegen: %v\n%s", err, out)
	}
	sodText := readFileT(t, filepath.Join(benchDir, "books", "sod.txt"))
	pages := readPagesT(t, filepath.Join(benchDir, "books", "bn", "page*.html"))
	dicts := map[string][]apiv1.Entry{
		"BookTitle": readDictT(t, filepath.Join(benchDir, "dictionaries", "booktitle.txt")),
		"Author":    readDictT(t, filepath.Join(benchDir, "dictionaries", "author.txt")),
	}
	cacheDir := filepath.Join(dir, "cache")
	ctx := context.Background()

	// Pre-reserve two loopback ports so each daemon can be started with
	// the complete, correct roster (the bind-then-close window is racy in
	// principle but fine for a test on loopback).
	freeAddr := func() string {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := l.Addr().String()
		l.Close()
		return addr
	}
	addr1, addr2 := freeAddr(), freeAddr()
	roster := func(self string) string {
		if self == "n1" {
			return "n1,n2=http://" + addr2
		}
		return "n1=http://" + addr1 + ",n2"
	}
	d1 := startDaemon(t, daemonBin, "-addr", addr1, "-wrapper-cache-dir", cacheDir,
		"-node-id", "n1", "-peers", roster("n1"))
	d2 := startDaemon(t, daemonBin, "-addr", addr2, "-wrapper-cache-dir", cacheDir,
		"-node-id", "n2", "-peers", roster("n2"))
	cl1 := client.New(d1.baseURL())
	cl2 := client.New(d2.baseURL())

	// Wrap through n2; the ring decides the owner and n2 forwards if it
	// is not n2 itself. Orient the rest of the test around the answer.
	key := "books/bn"
	wr, err := cl2.Wrap(ctx, apiv1.WrapRequest{Source: key, SOD: sodText, Pages: pages, Dictionaries: dicts})
	if err != nil {
		t.Fatalf("wrap via n2: %v", err)
	}
	owner := wr.Node
	ownerDaemon, ownerClient, peerClient := d1, cl1, cl2
	switch owner {
	case "n1":
	case "n2":
		ownerDaemon, ownerClient, peerClient = d2, cl2, cl1
	default:
		t.Fatalf("wrap served by %q, want n1 or n2", owner)
	}

	viaOwner, err := ownerClient.Extract(ctx, apiv1.ExtractRequest{Source: key, Pages: pages})
	if err != nil {
		t.Fatalf("extract via owner: %v", err)
	}
	if viaOwner.Node != owner {
		t.Errorf("owner-side extract served by %q, want %q", viaOwner.Node, owner)
	}
	viaPeer, err := peerClient.Extract(ctx, apiv1.ExtractRequest{Source: key, Pages: pages})
	if err != nil {
		t.Fatalf("extract via peer: %v", err)
	}
	if viaPeer.Node != owner {
		t.Errorf("peer-side extract served by %q, want the owner %q", viaPeer.Node, owner)
	}
	want, _ := json.Marshal(viaOwner.Objects)
	got, _ := json.Marshal(viaPeer.Objects)
	if !bytes.Equal(got, want) {
		t.Errorf("peer-side output differs from owner-side:\n got: %s\nwant: %s", got, want)
	}

	// Ownership is attributed in the owner's sources listing.
	sources, err := ownerClient.Sources(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(sources.Sources) != 1 || sources.Sources[0].Owner != owner {
		t.Errorf("owner sources = %+v", sources.Sources)
	}

	// Kill the owner; the survivor serves the source from the shared
	// spill after a fallback wrap.
	if err := ownerDaemon.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := ownerDaemon.cmd.Wait(); err != nil {
		t.Fatalf("owner exit: %v\nstderr:\n%s", err, ownerDaemon.stderr())
	}
	fwr, err := peerClient.Wrap(ctx, apiv1.WrapRequest{Source: key, SOD: sodText, Pages: pages, Dictionaries: dicts})
	if err != nil {
		t.Fatalf("fallback wrap via survivor: %v", err)
	}
	if fwr.Node == owner {
		t.Fatalf("fallback wrap claims the dead owner %q served it", fwr.Node)
	}
	surv, err := peerClient.Extract(ctx, apiv1.ExtractRequest{Source: key, Pages: pages})
	if err != nil {
		t.Fatalf("extract via survivor: %v", err)
	}
	got2, _ := json.Marshal(surv.Objects)
	if !bytes.Equal(got2, want) {
		t.Errorf("survivor output differs from the owner's:\n got: %s\nwant: %s", got2, want)
	}
}

// daemonProc is one running objectrunnerd with its captured stderr.
type daemonProc struct {
	cmd  *exec.Cmd
	addr string
	buf  *syncBuffer
}

func (d *daemonProc) baseURL() string { return "http://" + d.addr }
func (d *daemonProc) stderr() string  { return d.buf.String() }

var listenRE = regexp.MustCompile(`listening on ([\d.:\[\]]+)`)

func startDaemon(t *testing.T, bin string, args ...string) *daemonProc {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	buf := &syncBuffer{}
	cmd.Stderr = buf
	cmd.Stdout = buf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemonProc{cmd: cmd, buf: buf}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if m := listenRE.FindStringSubmatch(buf.String()); m != nil {
			d.addr = m[1]
			return d
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("daemon never reported its address; stderr:\n%s", buf.String())
	return nil
}

type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func readFileT(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func readPagesT(t *testing.T, glob string) []string {
	t.Helper()
	files, err := filepath.Glob(glob)
	if err != nil || len(files) == 0 {
		t.Fatalf("no pages match %q (err %v)", glob, err)
	}
	pages := make([]string, 0, len(files))
	for _, f := range files {
		pages = append(pages, readFileT(t, f))
	}
	return pages
}

func readDictT(t *testing.T, path string) []apiv1.Entry {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var entries []apiv1.Entry
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		conf := 0.9
		if i := strings.IndexByte(line, '\t'); i >= 0 {
			if v, err := strconv.ParseFloat(strings.TrimSpace(line[i+1:]), 64); err == nil {
				conf = v
			}
			line = line[:i]
		}
		entries = append(entries, apiv1.Entry{Value: line, Confidence: conf})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatalf("empty dictionary %s", path)
	}
	return entries
}
