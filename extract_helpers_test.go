package objectrunner

import "testing"

// extractAll concatenates ExtractBatchErr output across pages — the
// test-side stand-in for the removed ExtractAllHTML convenience, on the
// error-honest API.
func extractAll(tb testing.TB, w *Wrapper, pages []string) []*Object {
	tb.Helper()
	batches, err := w.ExtractBatchErr(pages)
	if err != nil {
		tb.Fatalf("extract batch: %v", err)
	}
	var out []*Object
	for _, objs := range batches {
		out = append(out, objs...)
	}
	return out
}
