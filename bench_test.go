package objectrunner

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§IV), regenerating the reported rows/series over the
// synthetic benchmark, plus ablations for the design choices listed in
// DESIGN.md §6 and micro-benchmarks of the pipeline stages. Run with
//
//	go test -bench=. -benchmem
//
// The absolute numbers differ from the paper's (different hardware and a
// synthetic substrate); the shapes — who wins, by what rough factor,
// where the failure modes sit — are the reproduction target and are
// recorded in EXPERIMENTS.md.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"objectrunner/internal/annotate"
	"objectrunner/internal/clean"
	"objectrunner/internal/corpus"
	"objectrunner/internal/dom"
	"objectrunner/internal/eqclass"
	"objectrunner/internal/experiments"
	"objectrunner/internal/recognize"
	"objectrunner/internal/sitegen"
	"objectrunner/internal/wrapper"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
	benchErr  error
)

// benchEnvironment generates one shared small-scale benchmark (the
// generation cost must not pollute the measured loops).
func benchEnvironment(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		cfg := sitegen.DefaultConfig()
		cfg.PagesPerSource = 8
		benchEnv, benchErr = experiments.NewEnv(cfg)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

// BenchmarkTable1Extraction regenerates Table I: ObjectRunner's
// per-source extraction results over all 49 sources of the 5 domains.
// Besides wall time it reports the aggregate extraction quality of the
// run as custom metrics (precision/recall/F1), so quality regressions
// show up in benchmark diffs alongside speed regressions.
func BenchmarkTable1Extraction(b *testing.B) {
	env := benchEnvironment(b)
	var runs []experiments.SourceRun
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runs = env.Table1()
		if len(runs) != 49 {
			b.Fatalf("sources = %d", len(runs))
		}
	}
	b.StopTimer()
	reportQuality(b, runs)
}

// reportQuality aggregates golden-standard counts over the runs and
// attaches precision/recall/F1 to the benchmark result (paper §IV:
// correct Oc vs partial Op vs incorrect Oi out of No golden objects).
func reportQuality(b *testing.B, runs []experiments.SourceRun) {
	b.Helper()
	var no, oc, op, oi int
	for _, r := range runs {
		no += r.Result.No
		oc += r.Result.Oc
		op += r.Result.Op
		oi += r.Result.Oi
	}
	var precision, recall, f1 float64
	if ex := oc + op + oi; ex > 0 {
		precision = float64(oc) / float64(ex)
	}
	if no > 0 {
		recall = float64(oc) / float64(no)
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	b.ReportMetric(precision, "precision")
	b.ReportMetric(recall, "recall")
	b.ReportMetric(f1, "F1")
}

// BenchmarkTable2SampleSelection regenerates Table II: SOD-guided sample
// selection vs uniform random selection, per domain.
func BenchmarkTable2SampleSelection(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := env.Table2()
		if len(rows) != 5 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkTable3Comparison regenerates Table III: ObjectRunner vs ExAlg
// vs RoadRunner per domain.
func BenchmarkTable3Comparison(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := env.Table3()
		if len(rows) != 5 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkFigure6Classification regenerates both facets of Figure 6
// (object classification rates and incompletely-managed-source rates)
// from the Table III runs.
func BenchmarkFigure6Classification(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points := experiments.Figure6FromTable3(env.Table3())
		if len(points) != 15 {
			b.Fatalf("points = %d", len(points))
		}
	}
}

// BenchmarkWrapperGeneration measures wrapper inference on one source —
// the paper's §IV wrapping-time claim (4–9 s per source on 2008-era
// hardware, with recognizers in place).
func BenchmarkWrapperGeneration(b *testing.B) {
	env := benchEnvironment(b)
	src, dd, err := env.B.FindSource("concerts", "eventorb (list)")
	if err != nil {
		b.Fatal(err)
	}
	recs := mustRecs(b, env, dd)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := wrapper.Infer(src.Pages, dd.SOD, recs, env.B.KB, wrapper.DefaultConfig())
		if w.Aborted {
			b.Fatal(w.AbortReason)
		}
	}
}

// BenchmarkExtractionOnly measures template application to one page once
// the wrapper exists — "the time required to extract the data was
// negligible" (§IV).
func BenchmarkExtractionOnly(b *testing.B) {
	env := benchEnvironment(b)
	src, dd, err := env.B.FindSource("concerts", "eventorb (list)")
	if err != nil {
		b.Fatal(err)
	}
	recs := mustRecs(b, env, dd)
	w := wrapper.Infer(src.Pages, dd.SOD, recs, env.B.KB, wrapper.DefaultConfig())
	if w.Aborted {
		b.Fatal(w.AbortReason)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if objs := w.ExtractPage(src.Pages[i%len(src.Pages)]); len(objs) == 0 {
			b.Fatal("no objects")
		}
	}
}

// mustRecs resolves a domain's recognizers from the benchmark KB+corpus.
func mustRecs(b *testing.B, env *experiments.Env, dd *sitegen.DomainData) map[string]recognize.Recognizer {
	b.Helper()
	reg := recognize.NewRegistry(env.B.KB, corpus.Source{Corpus: env.B.Corpus, Threshold: 0.05})
	recs, err := reg.ResolveAll(dd.SOD)
	if err != nil {
		b.Fatal(err)
	}
	return recs
}

// BenchmarkAblationSupport sweeps the token-support parameter on the
// publications domain (§IV "automatic variation of parameters").
func BenchmarkAblationSupport(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts := env.SupportAblation("publications")
		if len(pts) != 3 {
			b.Fatalf("points = %d", len(pts))
		}
	}
}

// BenchmarkAblationDictCoverage regenerates the concerts domain at 10%
// and 20% dictionary coverage (paper §IV.A and Appendix A) and measures
// extraction at each.
func BenchmarkAblationDictCoverage(b *testing.B) {
	cfg := sitegen.DefaultConfig()
	cfg.PagesPerSource = 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.CoverageAblation(cfg, "concerts", []float64{0.10, 0.20})
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 2 {
			b.Fatalf("points = %d", len(pts))
		}
	}
}

// BenchmarkAblationAlpha sweeps the block-abort threshold (§III.E) on
// the albums domain.
func BenchmarkAblationAlpha(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts := env.AlphaAblation("albums", []float64{0, 0.5, 1})
		if len(pts) != 3 {
			b.Fatalf("points = %d", len(pts))
		}
	}
}

// benchParallelExtractor builds a public-API extractor over a Table-1
// source at the given worker count; pages come back as raw HTML so Wrap
// includes the parse/clean front (the largest parallel fraction).
func benchParallelExtractor(b *testing.B, workers int) (*Extractor, []string) {
	b.Helper()
	env := benchEnvironment(b)
	src, dd, err := env.B.FindSource("concerts", "eventorb (list)")
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Workers = workers
	ex, err := NewFromSOD(dd.SOD,
		WithKnowledgeBase(env.B.KB),
		WithCorpus(env.B.Corpus, 0.05),
		WithConfig(cfg))
	if err != nil {
		b.Fatal(err)
	}
	return ex, src.HTML
}

// BenchmarkWrapParallel measures the full Wrap + ExtractBatch path on a
// Table-1 source at increasing worker counts. On a multi-core runner the
// per-page stages (clean, segment, annotate, tokenize, extract) scale
// near-linearly; setup asserts the parallel output stays byte-identical
// to the sequential path, so the sub-benchmarks compare equal work.
func BenchmarkWrapParallel(b *testing.B) {
	exSeq, html := benchParallelExtractor(b, 1)
	exPar, _ := benchParallelExtractor(b, 4)
	wSeq, err := exSeq.Wrap(html)
	if err != nil {
		b.Fatal(err)
	}
	wPar, err := exPar.Wrap(html)
	if err != nil {
		b.Fatal(err)
	}
	if wSeq.Report() != wPar.Report() {
		b.Fatal("parallel inference report diverges from sequential")
	}
	if fmt.Sprint(extractAll(b, wSeq, html)) != fmt.Sprint(extractAll(b, wPar, html)) {
		b.Fatal("parallel extraction output diverges from sequential")
	}

	counts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		counts = append(counts, p)
	}
	for _, workers := range counts {
		ex, pages := benchParallelExtractor(b, workers)
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w, err := ex.Wrap(pages)
				if err != nil {
					b.Fatal(err)
				}
				batch, err := w.ExtractBatchErr(pages)
				if err != nil {
					b.Fatal(err)
				}
				if len(batch) != len(pages) {
					b.Fatalf("batch = %d slots, want %d", len(batch), len(pages))
				}
			}
		})
	}
}

// --- Micro-benchmarks of the pipeline stages ---

func benchSourceHTML(b *testing.B) []string {
	env := benchEnvironment(b)
	src, _, err := env.B.FindSource("concerts", "eventorb (list)")
	if err != nil {
		b.Fatal(err)
	}
	return src.HTML
}

// BenchmarkHTMLParseClean measures the pre-processing front: parsing and
// cleaning one template-generated page.
func BenchmarkHTMLParseClean(b *testing.B) {
	html := benchSourceHTML(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p := clean.Page(html[i%len(html)]); p == nil {
			b.Fatal("nil page")
		}
	}
}

// BenchmarkAnnotatePage measures recognizer matching over one page.
func BenchmarkAnnotatePage(b *testing.B) {
	env := benchEnvironment(b)
	src, dd, err := env.B.FindSource("concerts", "eventorb (list)")
	if err != nil {
		b.Fatal(err)
	}
	recs := mustRecs(b, env, dd)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pa := annotate.AnnotatePage(src.Pages[i%len(src.Pages)], recs)
		if pa.Count() == 0 {
			b.Fatal("no annotations")
		}
	}
}

// BenchmarkEquivalenceClassAnalysis measures Algorithm 2 over an
// annotated sample.
func BenchmarkEquivalenceClassAnalysis(b *testing.B) {
	env := benchEnvironment(b)
	src, dd, err := env.B.FindSource("concerts", "eventorb (list)")
	if err != nil {
		b.Fatal(err)
	}
	recs := mustRecs(b, env, dd)
	var sample [][]*eqclass.Occurrence
	for i, p := range src.Pages {
		pa := annotate.AnnotatePage(p, recs)
		sample = append(sample, eqclass.TokenizePage(p, pa, i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fresh := make([][]*eqclass.Occurrence, len(sample))
		for j, page := range sample {
			fresh[j] = make([]*eqclass.Occurrence, len(page))
			for k, o := range page {
				cp := *o
				fresh[j][k] = &cp
			}
		}
		a := eqclass.Analyze(fresh, eqclass.DefaultParams(), nil)
		if len(a.EQs) == 0 {
			b.Fatal("no classes")
		}
	}
}

// BenchmarkAnalyzeFixpoint measures the staged Algorithm 2 core the way
// the wrapper drives it: one Base build per corpus (interning,
// criterion-i roles, first-round validation), then one resumed fixpoint
// run per support value in [3,5] — the support-variation loop's analysis
// work, minus template construction. allocs/op guards the flat-buffer
// role passes against regressing into per-occurrence allocations.
func BenchmarkAnalyzeFixpoint(b *testing.B) {
	env := benchEnvironment(b)
	src, dd, err := env.B.FindSource("concerts", "eventorb (list)")
	if err != nil {
		b.Fatal(err)
	}
	recs := mustRecs(b, env, dd)
	var sample [][]*eqclass.Occurrence
	for i, p := range src.Pages {
		pa := annotate.AnnotatePage(p, recs)
		sample = append(sample, eqclass.TokenizePage(p, pa, i))
	}
	params := eqclass.DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fresh := make([][]*eqclass.Occurrence, len(sample))
		for j, page := range sample {
			fresh[j] = eqclass.CopyPage(page)
		}
		pp := params
		pp.Support = 3
		base := eqclass.NewBase(fresh, pp, nil, nil)
		for support := 3; support <= 5; support++ {
			pr := pp
			pr.Support = support
			a := base.Analyze(pr, nil, nil)
			if len(a.EQs) == 0 {
				b.Fatal("no classes")
			}
		}
	}
}

// BenchmarkDictionaryFind measures gazetteer scanning over page-sized
// text.
func BenchmarkDictionaryFind(b *testing.B) {
	env := benchEnvironment(b)
	d := recognize.NewDictionary("instanceOf(Artist)")
	d.AddAll(env.B.KB.Instances("Artist"))
	page := clean.Page(benchSourceHTML(b)[0])
	text := page.Text()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Find(text)
	}
}

// BenchmarkHearstExtraction measures corpus mining for one class.
func BenchmarkHearstExtraction(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if es := env.B.Corpus.Score("artist"); len(es) == 0 {
			b.Fatal("no instances")
		}
	}
}

// BenchmarkSiteGeneration measures the synthetic-benchmark generator
// itself (one domain).
func BenchmarkSiteGeneration(b *testing.B) {
	cfg := sitegen.DefaultConfig()
	cfg.PagesPerSource = 8
	cfg.Domains = []string{"cars"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench, err := sitegen.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(bench.Domains) != 1 {
			b.Fatal("generation failed")
		}
	}
}

// BenchmarkPublicAPIRun measures the one-shot public path on the running
// example.
func BenchmarkPublicAPIRun(b *testing.B) {
	ex := concertExtractor(b)
	pages := concertPages()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		objs, err := ex.RunContext(context.Background(), pages)
		if err != nil {
			b.Fatal(err)
		}
		if len(objs) != 4 {
			b.Fatalf("objects = %d", len(objs))
		}
	}
}

// BenchmarkDOMOps measures raw DOM construction and traversal.
func BenchmarkDOMOps(b *testing.B) {
	html := benchSourceHTML(b)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doc := dom.Parse(html)
		n := 0
		doc.Walk(func(*dom.Node) bool { n++; return true })
		if n == 0 {
			b.Fatal("empty walk")
		}
	}
}
