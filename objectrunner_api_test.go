package objectrunner

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestExtractErrSentinels(t *testing.T) {
	var nilW *Wrapper
	if _, err := nilW.ExtractErr(nil); !errors.Is(err, ErrNoWrapper) {
		t.Errorf("nil wrapper: err = %v, want ErrNoWrapper", err)
	}
	if _, err := (&Wrapper{}).ExtractHTMLErr("<html></html>"); !errors.Is(err, ErrNoWrapper) {
		t.Errorf("empty wrapper: err = %v, want ErrNoWrapper", err)
	}
	if _, err := (&Wrapper{}).ExtractBatchErr([]string{"<html></html>"}); !errors.Is(err, ErrNoWrapper) {
		t.Errorf("batch on empty wrapper: err = %v, want ErrNoWrapper", err)
	}

	ex := concertExtractor(t)
	aborted, err := ex.Wrap([]string{
		"<html><body><p>about our company</p></body></html>",
		"<html><body><p>terms of service</p></body></html>",
	})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("wrap err = %v, want ErrAborted", err)
	}
	if _, err := aborted.ExtractErr(ParsePage("<html></html>")); !errors.Is(err, ErrAborted) {
		t.Errorf("aborted wrapper: err = %v, want ErrAborted", err)
	}
	// The abort reason survives into the error text for humans.
	if _, err := aborted.ExtractErr(nil); err == nil || !strings.Contains(err.Error(), "discarded") {
		t.Errorf("abort error lost its reason: %v", err)
	}
}

// TestExtractErrFormsAgree pins the *Err entry points to each other now
// that the silent shims are gone: raw-HTML, parsed-page and batch
// extraction of the same page must yield identical objects.
func TestExtractErrFormsAgree(t *testing.T) {
	ex := concertExtractor(t)
	w, err := ex.Wrap(concertPages())
	if err != nil {
		t.Fatal(err)
	}
	page := concertPages()[1]
	fromHTML, err := w.ExtractHTMLErr(page)
	if err != nil {
		t.Fatal(err)
	}
	fromParsed, err := w.ExtractErr(ParsePage(page))
	if err != nil {
		t.Fatal(err)
	}
	batches, err := w.ExtractBatchErr([]string{page})
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 1 {
		t.Fatalf("batch slots = %d, want 1", len(batches))
	}
	for name, got := range map[string][]*Object{"ExtractErr": fromParsed, "ExtractBatchErr": batches[0]} {
		if len(got) != len(fromHTML) {
			t.Fatalf("%s found %d objects, ExtractHTMLErr found %d", name, len(got), len(fromHTML))
		}
		for i := range got {
			if got[i].String() != fromHTML[i].String() {
				t.Errorf("%s object %d differs: %s vs %s", name, i, got[i], fromHTML[i])
			}
		}
	}
}

func TestWrapContextPreCanceled(t *testing.T) {
	ex := concertExtractor(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ex.WrapContext(ctx, concertPages()); !errors.Is(err, ErrCanceled) {
		t.Errorf("err = %v, want ErrCanceled", err)
	} else if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, must also wrap context.Canceled", err)
	}
}

func TestWrapContextCanceledMidFlightReturnsPromptly(t *testing.T) {
	ex := concertExtractor(t)
	// A large page pool keeps the pipeline busy long enough for the
	// cancellation to land mid-flight; the return must then be bounded by
	// the in-flight work (one page per worker), not by the remaining pool.
	pages := make([]string, 0, 40*len(concertPages()))
	for i := 0; i < 40; i++ {
		pages = append(pages, concertPages()...)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := ex.WrapContext(ctx, pages)
		done <- err
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, ErrCanceled) {
			t.Errorf("err = %v, want ErrCanceled or nil (finished first)", err)
		}
		if elapsed := time.Since(start); elapsed > 20*time.Second {
			t.Errorf("cancellation took %v", elapsed)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("WrapContext did not return after cancellation")
	}
}

func TestExtractBatchContextCanceled(t *testing.T) {
	ex := concertExtractor(t)
	w, err := ex.Wrap(concertPages())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := w.ExtractBatchContext(ctx, concertPages()); !errors.Is(err, ErrCanceled) {
		t.Errorf("err = %v, want ErrCanceled", err)
	}
}

func TestRunContextCanceled(t *testing.T) {
	ex := concertExtractor(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ex.RunContext(ctx, concertPages()); !errors.Is(err, ErrCanceled) {
		t.Errorf("err = %v, want ErrCanceled", err)
	}
}

// TestRunContextMatchesWrapExtract pins the one-shot RunContext to its
// two-step decomposition: WrapContext followed by batch extraction over
// the same pages.
func TestRunContextMatchesWrapExtract(t *testing.T) {
	ex := concertExtractor(t)
	ctx := context.Background()
	got, err := ex.RunContext(ctx, concertPages())
	if err != nil {
		t.Fatal(err)
	}
	w, err := ex.WrapContext(ctx, concertPages())
	if err != nil {
		t.Fatal(err)
	}
	batches, err := w.ExtractBatchContext(ctx, concertPages())
	if err != nil {
		t.Fatal(err)
	}
	var want []*Object
	for _, objs := range batches {
		want = append(want, objs...)
	}
	if len(got) != len(want) {
		t.Fatalf("RunContext found %d objects, wrap+extract found %d", len(got), len(want))
	}
	for i := range got {
		if got[i].String() != want[i].String() {
			t.Errorf("object %d differs: %s vs %s", i, got[i], want[i])
		}
	}
}
