// Quickstart: extract concert objects from template-based HTML pages with
// a Structured Object Description and small seed dictionaries — the
// paper's running example (Fig. 3), end to end.
package main

import (
	"context"
	"fmt"
	"log"

	"objectrunner"
)

// Three pages sharing one template, in the style of the paper's Figure 3.
var pages = []string{
	page(`<li><div>Metallica</div><div>Monday May 11, 2010 8:00pm</div>
		<div><span><a>Madison Square Garden</a></span><span>237 West 42nd Street</span>
		<span>New York City</span><span>New York</span><span>10036</span></div></li>`),
	page(`<li><div>Madonna</div><div>Saturday May 29, 2010 7:00pm</div>
		<div><span><a>The Town Hall</a></span><span>131 W 55th Street</span>
		<span>New York City</span><span>New York</span><span>10019</span></div></li>
		<li><div>Muse</div><div>Friday June 19, 2010 7:00pm</div>
		<div><span><a>B.B King Blues and Grill</a></span><span>4 Penn Plaza</span>
		<span>New York City</span><span>New York</span><span>10001</span></div></li>`),
	page(`<li><div>Coldplay</div><div>Saturday August 8, 2010 8:00pm</div>
		<div><span><a>Bowery Ballroom</a></span><span>6 Delancey Street</span>
		<span>New York City</span><span>New York</span><span>10002</span></div></li>`),
}

func page(body string) string {
	return "<html><body>" + body + "</body></html>"
}

func main() {
	// 1. Describe the target objects: a concert is an artist, a date and
	//    a location (theater plus optional address). Artist and theater
	//    are open isInstanceOf types; date and address have predefined
	//    recognizers.
	ex, err := objectrunner.New(`tuple {
		artist: instanceOf(Artist)
		date: date
		location: tuple { theater: instanceOf(Theater), address: address ? }
	}`,
		objectrunner.WithDictionary("Artist", []objectrunner.Entry{
			{Value: "Metallica", Confidence: 0.9},
			{Value: "Madonna", Confidence: 0.95},
			{Value: "Muse", Confidence: 0.85},
			{Value: "Coldplay", Confidence: 0.9},
		}),
		objectrunner.WithDictionary("Theater", []objectrunner.Entry{
			{Value: "Madison Square Garden", Confidence: 0.9},
			{Value: "The Town Hall", Confidence: 0.8},
			{Value: "B.B King Blues and Grill", Confidence: 0.75},
			{Value: "Bowery Ballroom", Confidence: 0.85},
		}),
	)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Infer the wrapper from the source's pages and extract. The
	//    context variant stops promptly if the caller cancels;
	//    errors.Is(err, objectrunner.ErrAborted) distinguishes "this
	//    source does not carry the data" from real failures.
	w, err := ex.WrapContext(context.Background(), pages)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrapper:", w.Describe())

	perPage, err := w.ExtractBatchErr(pages)
	if err != nil {
		log.Fatal(err)
	}
	i := 0
	for _, objs := range perPage {
		for _, o := range objs {
			i++
			fmt.Printf("%d. artist=%q date=%q theater=%q address=%q\n",
				i, o.FieldValue("artist"), o.FieldValue("date"),
				o.FieldValue("theater"), o.FieldValue("address"))
		}
	}

	// 3. The wrapper generalizes to unseen values: the dictionaries never
	//    saw these artists, but the template carries them out.
	unseen := page(`<li><div>The Strokes</div><div>Friday July 2, 2010 9:00pm</div>
		<div><span><a>Terminal 5</a></span><span>610 West 56th Street</span>
		<span>New York City</span><span>New York</span><span>10019</span></div></li>`)
	discovered, err := w.ExtractHTMLErr(unseen)
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range discovered {
		fmt.Printf("unseen page: artist=%q theater=%q\n", o.FieldValue("artist"), o.FieldValue("theater"))
	}
}
