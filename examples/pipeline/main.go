// Pipeline: the full ObjectRunner architecture (paper Fig. 1) on the
// synthetic benchmark — rank candidate sources for an SOD, wrap the best
// ones, merge and de-duplicate their objects, and run phase-two queries
// over the harvested collection.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"objectrunner"
	"objectrunner/internal/sitegen"
)

func main() {
	// The benchmark stands in for the structured Web: 9 concert sources
	// plus their knowledge base (the paper simulates source discovery
	// with Mechanical Turk; sitegen simulates both).
	cfg := sitegen.DefaultConfig()
	cfg.PagesPerSource = 15
	bench, err := sitegen.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	var dd *sitegen.DomainData
	for _, d := range bench.Domains {
		if d.Spec.Name == "concerts" {
			dd = d
		}
	}

	ex, err := objectrunner.New(dd.Spec.SODText,
		objectrunner.WithKnowledgeBase(bench.KB),
		objectrunner.WithCorpus(bench.Corpus, 0.05),
	)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Rank the candidate sources for this SOD (paper §VI).
	var names []string
	var sources [][]string
	for _, src := range dd.Sources {
		names = append(names, src.Spec.Name)
		sources = append(sources, src.HTML)
	}
	ranks := ex.RankSources(sources)
	fmt.Println("source ranking for the concert SOD:")
	for i, r := range ranks {
		if i >= 5 {
			break
		}
		fmt.Printf("  %d. %-26s score %.3f\n", i+1, names[r.Index], r.Score)
	}

	// 2. Wrap the top sources and extract.
	var perSource [][]*objectrunner.Object
	wrapped := 0
	for _, r := range ranks {
		if wrapped == 4 {
			break
		}
		w, err := ex.WrapContext(context.Background(), sources[r.Index])
		if err != nil {
			fmt.Printf("  %-26s discarded (%v)\n", names[r.Index], err)
			continue
		}
		perPage, err := w.ExtractBatchErr(sources[r.Index])
		if err != nil {
			fmt.Printf("  %-26s extraction failed (%v)\n", names[r.Index], err)
			continue
		}
		var objs []*objectrunner.Object
		for _, pageObjs := range perPage {
			objs = append(objs, pageObjs...)
		}
		fmt.Printf("  %-26s wrapper %s -> %d objects\n", names[r.Index], w.Describe(), len(objs))
		perSource = append(perSource, objs)
		wrapped++
	}

	// 3. Merge across sources; the Web's redundancy means duplicates.
	merged, dropped := objectrunner.MergeSources(perSource)
	fmt.Printf("merged: %d objects (%d cross-source duplicates dropped)\n", len(merged), dropped)

	// 4. Phase-two querying over the harvested collection.
	weekend := objectrunner.Over(merged).
		Where(objectrunner.Or(
			objectrunner.FieldContains("date", "Saturday"),
			objectrunner.FieldContains("date", "Sunday"),
		)).
		OrderBy("artist").
		Limit(5)
	fmt.Printf("weekend concerts (%d total, first 5):\n", weekend.Count())
	for _, row := range weekend.Project("artist", "theater", "date") {
		fmt.Printf("  %-24s at %-24s %s\n",
			strings.Join(row["artist"], ", "),
			strings.Join(row["theater"], ", "),
			strings.Join(row["date"], ", "))
	}
}
