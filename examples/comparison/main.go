// Comparison: ObjectRunner vs the two unsupervised baselines (ExAlg,
// RoadRunner) on one synthetic source from the benchmark — a miniature of
// the paper's Table III. The baselines see only the pages' structure; the
// extracted anonymous fields are labelled post-hoc against the golden
// standard, and all three are scored with the same Pc/Pp measures.
package main

import (
	"fmt"
	"log"

	"objectrunner/internal/exalg"
	"objectrunner/internal/experiments"
	"objectrunner/internal/roadrunner"
	"objectrunner/internal/sitegen"
	"objectrunner/internal/wrapper"
)

func main() {
	cfg := sitegen.DefaultConfig()
	cfg.PagesPerSource = 15
	env, err := experiments.NewEnv(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// A classless concerts list: fields are structurally identical divs,
	// so only the domain knowledge can tell artist from venue.
	src, dd, err := env.B.FindSource("concerts", "zvents (list)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("source %q: %d pages, %d golden objects\n\n",
		src.Spec.Name, len(src.Pages), src.NumObjects())

	or := env.RunOR(dd, src, wrapper.DefaultConfig())
	ea := env.RunEA(dd, src)
	rr := env.RunRR(dd, src)

	fmt.Printf("%-14s %8s %8s   %s\n", "system", "Pc", "Pp", "attribute outcome")
	for _, run := range []experiments.SourceRun{or, ea, rr} {
		r := run.Result
		fmt.Printf("%-14s %7.1f%% %7.1f%%   %s\n", string(run.Algo), 100*r.Pc(), 100*r.Pp(), r.FormatAttrRow())
	}

	// Show a couple of raw baseline records to make the difference
	// concrete: anonymous positional fields vs typed SOD instances.
	fmt.Println("\nExAlg raw record (anonymous fields):")
	if w := exalg.Infer(src.Pages, exalg.DefaultConfig()); !w.Aborted {
		if recs := w.ExtractPage(src.Pages[0]); len(recs) > 0 {
			for k, v := range recs[0] {
				fmt.Printf("  %-14s %v\n", k, v)
			}
		}
	}
	fmt.Println("\nRoadRunner wrapper expression (head):")
	if w := roadrunner.Infer(src.Pages, roadrunner.DefaultConfig()); !w.Aborted {
		s := w.String()
		if len(s) > 300 {
			s = s[:300] + " ..."
		}
		fmt.Println(" ", s)
	}
}
