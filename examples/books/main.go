// Books: a nested SOD with a multi-valued author set, mixed per-record
// markup (the paper's Fig. 2(a) Amazon encodings), and a study of how
// dictionary coverage affects extraction — the wrapper generalizes far
// beyond what the gazetteers have seen.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"objectrunner"
)

var catalog = []struct {
	title   string
	authors []string
	price   string
}{
	{"Pride and Prejudice", []string{"Jane Austen", "Fiona Stafford"}, "$9.99"},
	{"Cutting for Stone", []string{"Abraham Verghese"}, "$12.50"},
	{"Norse Mythology", []string{"Neil Gaiman"}, "$14.00"},
	{"Good Omens", []string{"Neil Gaiman", "Terry Pratchett"}, "$11.25"},
	{"The Colour of Magic", []string{"Terry Pratchett"}, "$7.80"},
	{"Persuasion", []string{"Jane Austen"}, "$8.75"},
}

// renderPages renders the catalog three books per page, varying the
// author markup per record exactly like the paper's Fig. 2(a): sometimes
// the first author is a link, sometimes the whole list is plain text.
func renderPages() []string {
	var pages []string
	for start := 0; start < len(catalog); start += 3 {
		var sb strings.Builder
		sb.WriteString("<html><body><ul>")
		for i := start; i < start+3 && i < len(catalog); i++ {
			b := catalog[i]
			var authors string
			switch i % 3 {
			case 0: // b1: by <a>First</a> and Rest
				authors = "by <a>" + b.authors[0] + "</a>"
				if len(b.authors) > 1 {
					authors += " and " + strings.Join(b.authors[1:], ", ")
				}
			case 1: // b2: by A, B
				authors = "by " + strings.Join(b.authors, ", ")
			default: // b3: by <a>A</a>
				authors = "by <a>" + strings.Join(b.authors, "</a>, <a>") + "</a>"
			}
			sb.WriteString("<li><div>" + b.title + "</div><span>" + authors + "</span><em>" + b.price + "</em></li>")
		}
		sb.WriteString("</ul></body></html>")
		pages = append(pages, sb.String())
	}
	return pages
}

func main() {
	pages := renderPages()

	// Coverage study: give the extractor only a fraction of the titles
	// and authors and watch the wrapper carry the rest structurally.
	for _, coverage := range []int{2, 4, 6} {
		titles := make([]objectrunner.Entry, 0, coverage)
		authors := make([]objectrunner.Entry, 0, coverage)
		seen := map[string]bool{}
		for i := 0; i < coverage && i < len(catalog); i++ {
			titles = append(titles, objectrunner.Entry{Value: catalog[i].title, Confidence: 0.9})
			for _, a := range catalog[i].authors {
				if !seen[a] {
					seen[a] = true
					authors = append(authors, objectrunner.Entry{Value: a, Confidence: 0.9})
				}
			}
		}
		ex, err := objectrunner.New(`tuple {
			title: instanceOf(BookTitle)
			price: price
			authors: set(author: instanceOf(Author))+
		}`,
			objectrunner.WithDictionary("BookTitle", titles),
			objectrunner.WithDictionary("Author", authors),
		)
		if err != nil {
			log.Fatal(err)
		}
		objects, err := ex.RunContext(context.Background(), pages)
		if err != nil {
			fmt.Printf("coverage %d/%d books: source discarded (%v)\n", coverage, len(catalog), err)
			continue
		}
		fmt.Printf("coverage %d/%d books known -> %d objects extracted\n", coverage, len(catalog), len(objects))
		if coverage == 6 {
			for _, o := range objects {
				var names []string
				if set := o.Field("authors"); set != nil {
					for _, a := range set.Children {
						names = append(names, a.Value)
					}
				}
				fmt.Printf("  %-22s %-7s by %s\n", o.FieldValue("title"), o.FieldValue("price"), strings.Join(names, " & "))
			}
		}
	}
}
