// Enrichment: build gazetteers on the fly from a knowledge base (with
// semantic-neighborhood lookup — the paper's Metallica-is-a-Band case)
// and from Hearst patterns over a text corpus, then close the loop by
// feeding extracted values back into the dictionaries (paper Eq. 4) so a
// second source benefits from the first.
package main

import (
	"context"
	"fmt"
	"log"

	"objectrunner"
)

func main() {
	// 1. A small ontology: some artists are only known as Bands, which
	//    the Artist query still reaches through the class neighborhood.
	kb := objectrunner.NewKnowledgeBase()
	kb.AddSubClass("Band", "Performer")
	kb.AddSubClass("Artist", "Performer")
	kb.AddInstance("Metallica", "Band", 0.9)
	kb.AddInstance("Madonna", "Artist", 0.95)

	// 2. A corpus mined with Hearst patterns contributes more instances.
	corpus := objectrunner.NewCorpus()
	corpus.AddDocument("Celebrated artists such as Muse and Coldplay headline festivals.")
	corpus.AddDocument("Muse is an artist known for live shows.")

	ex, err := objectrunner.New(`tuple { artist: instanceOf(Artist), date: date }`,
		objectrunner.WithKnowledgeBase(kb),
		objectrunner.WithCorpus(corpus, 0.01),
	)
	if err != nil {
		log.Fatal(err)
	}

	page := func(recs string) string { return "<html><body><ul>" + recs + "</ul></body></html>" }
	rec := func(artist, date string) string {
		return "<li><b>" + artist + "</b><i>" + date + "</i></li>"
	}

	// 3. Source one: its values are (mostly) known to the gazetteers.
	source1 := []string{
		page(rec("Metallica", "Monday May 11, 2010 8:00pm") + rec("Madonna", "Saturday May 29, 2010 7:00pm")),
		page(rec("Muse", "Friday June 19, 2010 7:00pm")),
		page(rec("Coldplay", "Saturday August 8, 2010 8:00pm") + rec("Metallica", "Tuesday May 12, 2010 8:00pm")),
	}
	ctx := context.Background()
	w1, err := ex.WrapContext(ctx, source1)
	if err != nil {
		log.Fatal(err)
	}
	objs1, err := extractAll(ctx, w1, source1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("source 1: %d objects, wrapper score %.2f\n", len(objs1), w1.Score())

	// Extraction discovers values the dictionaries never had (structure
	// carries them); Eq. 4 feeds them back.
	unseen := page(rec("The Strokes", "Friday July 2, 2010 9:00pm") + rec("Arcade Fire", "Sunday July 4, 2010 7:30pm"))
	discovered, err := w1.ExtractHTMLErr(unseen)
	if err != nil {
		log.Fatal(err)
	}
	added := ex.Enrich(discovered, w1.Score())
	fmt.Printf("enrichment: %d new dictionary entries from %d discovered objects\n", added, len(discovered))

	// 4. Source two uses a different template and features the newly
	//    learned artists: the enriched dictionaries now annotate them.
	source2 := []string{
		"<html><body><table><tr><td>The Strokes</td><td>Friday July 9, 2010 9:00pm</td></tr><tr><td>Arcade Fire</td><td>Saturday July 10, 2010 8:00pm</td></tr></table></body></html>",
		"<html><body><table><tr><td>Arcade Fire</td><td>Sunday July 11, 2010 7:00pm</td></tr></table></body></html>",
		"<html><body><table><tr><td>The Strokes</td><td>Monday July 12, 2010 9:30pm</td></tr><tr><td>Madonna</td><td>Tuesday July 13, 2010 8:00pm</td></tr></table></body></html>",
	}
	w2, err := ex.WrapContext(ctx, source2)
	if err != nil {
		log.Fatal(err)
	}
	objs2, err := extractAll(ctx, w2, source2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("source 2 (template unseen, artists learned via enrichment): %d objects\n", len(objs2))

	// 5. Merge the sources, dropping cross-source duplicates.
	merged, dropped := objectrunner.MergeSources([][]*objectrunner.Object{objs1, objs2})
	fmt.Printf("merged collection: %d objects (%d duplicates dropped)\n", len(merged), dropped)
	for _, o := range merged {
		fmt.Printf("  %-14s %s\n", o.FieldValue("artist"), o.FieldValue("date"))
	}
}

// extractAll flattens a per-page batch extraction into one object slice.
func extractAll(ctx context.Context, w *objectrunner.Wrapper, pages []string) ([]*objectrunner.Object, error) {
	perPage, err := w.ExtractBatchContext(ctx, pages)
	if err != nil {
		return nil, err
	}
	var out []*objectrunner.Object
	for _, objs := range perPage {
		out = append(out, objs...)
	}
	return out, nil
}
