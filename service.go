package objectrunner

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"time"

	"objectrunner/internal/obs"
	"objectrunner/internal/store"
	"objectrunner/internal/wrapper"
)

// StoreConfig tunes a Service's wrapper cache.
type StoreConfig struct {
	// Capacity bounds the wrappers held in memory (LRU beyond it).
	// Default 64.
	Capacity int
	// TTL expires cached wrappers after this long; 0 means no expiry.
	TTL time.Duration
	// HealthThreshold re-infers a source whose served pages come back
	// empty at a rate above this fraction (template drift detection);
	// 0 disables the health check.
	HealthThreshold float64
	// MinServedPages is the served-page floor before the health check
	// applies. Default 8.
	MinServedPages int
	// SpillDir persists wrappers to disk, surviving LRU eviction and
	// process restarts. Empty disables spilling.
	SpillDir string
	// DisableStreamExtract routes cache-hit serves through the tree
	// path (parse + clean per page) instead of the default streaming
	// path. Streaming extracts straight off the raw token stream with
	// pooled scratch and is byte-identical to the tree path — pages it
	// cannot faithfully reproduce fall back per page — so this exists
	// as an escape hatch and for differential testing, not tuning.
	DisableStreamExtract bool
}

// Service is the serving facade: an Extractor plus a wrapper cache. One
// Service handles many sources concurrently; the first ServeExtract for a
// source pays for wrapper inference (deduplicated across concurrent
// callers), every later call reuses the cached wrapper and runs only
// extraction.
type Service struct {
	ex     *Extractor
	st     *store.Store
	noStrm bool
}

// NewService builds a serving facade over the extractor.
func NewService(ex *Extractor, cfg StoreConfig) *Service {
	return &Service{
		ex:     ex,
		noStrm: cfg.DisableStreamExtract,
		st: store.New(store.Config{
			Capacity:        cfg.Capacity,
			TTL:             cfg.TTL,
			HealthThreshold: cfg.HealthThreshold,
			MinServedPages:  cfg.MinServedPages,
			SpillDir:        cfg.SpillDir,
			Obs:             ex.obs,
			// The spill codec re-binds the extractor's live SOD (and its
			// rules) to wrappers loaded from disk, exactly like LoadWrapper.
			Encode: func(w *wrapper.Wrapper, dst *os.File) error { return w.Encode(dst) },
			Decode: func(src *os.File) (*wrapper.Wrapper, error) {
				inner, err := wrapper.Decode(src, ex.sod)
				if err != nil {
					return nil, err
				}
				inner.SetWorkers(ex.cfg.Workers)
				inner.SetObserver(ex.obs)
				return inner, nil
			},
		}),
	}
}

// Wrapper returns the cached wrapper for the source, inferring it from
// the pages on a miss. Aborted wrappers are cached too — a source that
// does not carry the targeted data stays discarded until invalidated or
// evicted, instead of re-running inference per request — and come back
// with an error wrapping ErrAborted, like Wrap.
func (s *Service) Wrapper(ctx context.Context, sourceKey string, pages []string) (*Wrapper, error) {
	inner, err := s.st.Get(ctx, sourceKey, func(ctx context.Context) (*wrapper.Wrapper, error) {
		w, werr := s.ex.WrapContext(ctx, pages)
		if werr != nil && !errors.Is(werr, ErrAborted) {
			return nil, werr
		}
		return w.inner, nil
	})
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, canceledErr(err)
		}
		return nil, err
	}
	w := &Wrapper{inner: inner}
	if inner != nil && inner.Aborted {
		return w, abortedErr(inner.AbortReason)
	}
	return w, nil
}

// ServeExtract answers one extraction request: wrap-on-miss, extract-on-
// hit. The sourceKey identifies the source across requests (typically its
// site or crawl URL); pages are the request's raw HTML. On a cache miss
// the pages also serve as the inference input. Cancellation stops both
// inference and extraction promptly (ErrCanceled); a source that does not
// carry the targeted data returns ErrAborted. The per-page empty rate
// feeds the cache's health accounting, so a wrapper that stops matching
// its source is re-inferred after HealthThreshold is crossed.
//
// Every serve also feeds per-source telemetry on the extractor's
// observer: the serve.extract duration histogram and the serve.pages /
// serve.pages.empty / serve.objects / serve.errors counters, each
// labeled with the source key — match rate and empty-serve rate per
// source are (pages - pages.empty) / pages over any scrape interval.
func (s *Service) ServeExtract(ctx context.Context, sourceKey string, pages []string) ([]*Object, error) {
	start := time.Now()
	src := obs.L("source", sourceKey)
	w, err := s.Wrapper(ctx, sourceKey, pages)
	if errors.Is(err, ErrAborted) {
		// Aborted serves count as all-empty: a healthy source that was
		// discarded by a transient bad page set heals via eviction.
		s.st.RecordServe(sourceKey, len(pages), len(pages))
		s.ex.obs.CountL("serve.pages", int64(len(pages)), src)
		s.ex.obs.CountL("serve.pages.empty", int64(len(pages)), src)
		s.ex.obs.CountL("serve.errors", 1, src, obs.L("kind", "aborted"))
		return nil, err
	}
	if err != nil {
		s.ex.obs.CountL("serve.errors", 1, src, obs.L("kind", errKind(err)))
		return nil, err
	}
	var per [][]*Object
	if s.noStrm {
		per, err = w.ExtractBatchContext(ctx, pages)
	} else {
		per, err = w.ExtractStreamBatchContext(ctx, pages)
	}
	if err != nil {
		s.ex.obs.CountL("serve.errors", 1, src, obs.L("kind", errKind(err)))
		return nil, err
	}
	empty := 0
	var out []*Object
	for _, objs := range per {
		if len(objs) == 0 {
			empty++
		}
		out = append(out, objs...)
	}
	s.st.RecordServe(sourceKey, empty, len(pages))
	s.ex.obs.ObserveL("serve.extract", time.Since(start), src)
	s.ex.obs.CountL("serve.pages", int64(len(pages)), src)
	s.ex.obs.CountL("serve.pages.empty", int64(empty), src)
	s.ex.obs.CountL("serve.objects", int64(len(out)), src)
	return out, nil
}

// errKind buckets a serve error into a bounded label value.
func errKind(err error) string {
	switch {
	case errors.Is(err, ErrCanceled), errors.Is(err, context.Canceled):
		return "canceled"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, ErrClosed):
		return "closed"
	default:
		return "error"
	}
}

// Invalidate drops the source's cached wrapper (memory and disk); the
// next request re-infers.
func (s *Service) Invalidate(sourceKey string) { s.st.Invalidate(sourceKey) }

// Close drains the service for shutdown: new requests fail, in-flight
// wrapper builds are waited for (bounded by ctx), and every cached
// wrapper is spilled to the configured SpillDir so the next process
// starts warm. Idempotent; returns ctx.Err() when the wait was cut
// short.
func (s *Service) Close(ctx context.Context) error { return s.st.Close(ctx) }

// StoreStats is a snapshot of the service's cache accounting.
type StoreStats = store.Stats

// Stats returns the cache accounting (hits, misses, evictions by cause,
// singleflight shares, disk hits).
func (s *Service) Stats() StoreStats { return s.st.Stats() }

// SaveWrapperFile persists a wrapper to path (Save to a temp file plus
// rename, so a crash never leaves a truncated stream).
func SaveWrapperFile(w *Wrapper, path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".wrapper-*")
	if err != nil {
		return err
	}
	if err := w.Save(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadWrapperFile loads a wrapper persisted by SaveWrapperFile.
func LoadWrapperFile(path string, ex *Extractor) (*Wrapper, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadWrapper(f, ex)
}
