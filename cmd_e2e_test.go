package objectrunner

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCommandLineRoundTrip materializes a benchmark slice with
// cmd/sitegen and extracts it with cmd/objectrunner — the full
// user-facing tool chain. Requires the go toolchain; skipped in -short.
func TestCommandLineRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI binaries")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "bin")
	if err := os.MkdirAll(bin, 0o755); err != nil {
		t.Fatal(err)
	}
	build := func(name string) string {
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Dir = "."
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, b)
		}
		return out
	}
	sitegen := build("sitegen")
	runner := build("objectrunner")

	benchDir := filepath.Join(dir, "bench")
	out, err := exec.Command(sitegen, "-out", benchDir, "-pages", "12", "-domains", "cars").CombinedOutput()
	if err != nil {
		t.Fatalf("sitegen: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "benchmark written") {
		t.Fatalf("sitegen output: %s", out)
	}

	// The generated tree: bench/cars/<source>/page*.html + sod.txt, and
	// bench/dictionaries/carbrand.txt.
	sodPath := filepath.Join(benchDir, "cars", "sod.txt")
	if _, err := os.Stat(sodPath); err != nil {
		t.Fatal(err)
	}
	dict := filepath.Join(benchDir, "dictionaries", "carbrand.txt")
	if _, err := os.Stat(dict); err != nil {
		t.Fatal(err)
	}
	pages := filepath.Join(benchDir, "cars", "cars", "page*.html")

	cmd := exec.Command(runner,
		"-sod", sodPath,
		"-pages", pages,
		"-dict", "CarBrand="+dict,
		"-json",
	)
	raw, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			t.Fatalf("objectrunner: %v\n%s", err, ee.Stderr)
		}
		t.Fatal(err)
	}
	var objs []map[string]any
	if err := json.Unmarshal(raw, &objs); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, raw)
	}
	if len(objs) < 10 {
		t.Fatalf("extracted %d objects, want a full listing", len(objs))
	}
	for _, o := range objs[:3] {
		if o["brand"] == nil || o["price"] == nil {
			t.Errorf("incomplete object: %v", o)
		}
	}
	// Compare against the golden standard object count (duplicates are
	// dropped by the CLI, so extracted <= golden).
	var golden [][]map[string][]string
	gb, err := os.ReadFile(filepath.Join(benchDir, "cars", "cars", "golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(gb, &golden); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, page := range golden {
		total += len(page)
	}
	if len(objs) > total {
		t.Errorf("extracted %d objects exceed golden %d", len(objs), total)
	}
}
