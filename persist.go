package objectrunner

import (
	"fmt"
	"io"

	"objectrunner/internal/wrapper"
)

// Wrapper persistence: the full learned state of an inferred wrapper —
// template tree, canonical SOD binding, token-role descriptor tables,
// central-block key, support/conflict accounting and the EXPLAIN report —
// round-trips through an io.Writer/io.Reader pair. The stream is
// self-describing (format-version header plus SHA-256 checksum), and a
// loaded wrapper's extraction output is byte-identical to the original's.
//
// The SOD's rules (arbitrary Go predicates) cannot be serialized; a
// wrapper is therefore loaded *into* an Extractor, which re-binds its live
// SOD after verifying the canonical signature matches (ErrSODMismatch
// otherwise). This also re-attaches the extractor's observer and worker
// pool, which are process state, not learned state.

// Save writes the wrapper's full learned state to dst. Aborted wrappers
// save too — their Report explains the abort — so negative results can be
// cached across processes; a nil wrapper returns ErrNoWrapper.
func (w *Wrapper) Save(dst io.Writer) error {
	if w == nil || w.inner == nil {
		return ErrNoWrapper
	}
	return w.inner.Encode(dst)
}

// LoadWrapper reads a wrapper persisted by Save. The extractor must carry
// the same SOD the wrapper was inferred for (canonical-form comparison;
// ErrSODMismatch otherwise); its rules, observer and worker configuration
// are re-attached to the loaded wrapper. Errors from malformed, corrupted
// or version-incompatible streams wrap ErrFormat.
func LoadWrapper(src io.Reader, ex *Extractor) (*Wrapper, error) {
	if ex == nil {
		return nil, fmt.Errorf("objectrunner: LoadWrapper needs an extractor to re-bind the SOD")
	}
	inner, err := wrapper.Decode(src, ex.sod)
	if err != nil {
		return nil, err
	}
	inner.SetWorkers(ex.cfg.Workers)
	inner.SetObserver(ex.obs)
	return &Wrapper{inner: inner}, nil
}
