// Package client is the typed Go client for the ObjectRunner extraction
// daemon's /v1 API (see api/v1 for the wire contract and
// internal/httpserver for the server).
//
// The client is a thin, dependency-free wrapper over net/http with the
// operational behaviors a daemon caller needs baked in:
//
//   - Context support on every call: cancellation and deadlines reach
//     the wire request.
//   - Backpressure handling: a 429 from the daemon's inflight limiter is
//     retried up to Retries times, honoring the Retry-After header
//     (capped by MaxRetryWait) with a doubling fallback backoff.
//   - Trace-id propagation: a per-client TraceID option or a per-call
//     WithTraceID context is sent as X-Trace-Id, and the id the server
//     echoed (or minted) is recorded on every *APIError.
//
// Non-2xx responses become *APIError carrying the decoded error
// envelope, so callers can switch on StatusCode and read the inference
// Report of a rejected source.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	apiv1 "objectrunner/api/v1"
)

// Client talks to one daemon (or, in a cluster, any node of it — the
// ring forwards to the owner transparently). The zero value is not
// usable; construct with New.
type Client struct {
	base    string
	hc      *http.Client
	retries int
	backoff time.Duration
	maxWait time.Duration
	traceID string
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles). The default has a 60s timeout.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries sets how many times a 429 response is retried before
// being surfaced as an *APIError. Default 3; 0 disables retrying.
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithBackoff sets the fallback wait before a 429 retry when the
// server sent no Retry-After header; it doubles per attempt. Default
// 100ms.
func WithBackoff(d time.Duration) Option { return func(c *Client) { c.backoff = d } }

// WithMaxRetryWait caps a single retry wait, whatever Retry-After
// asked for. Default 5s.
func WithMaxRetryWait(d time.Duration) Option { return func(c *Client) { c.maxWait = d } }

// WithTraceID sets a fixed X-Trace-Id sent on every request from this
// client. A per-call WithTraceID context takes precedence.
func WithTraceID(id string) Option { return func(c *Client) { c.traceID = id } }

// New builds a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:    strings.TrimRight(baseURL, "/"),
		hc:      &http.Client{Timeout: 60 * time.Second},
		retries: 3,
		backoff: 100 * time.Millisecond,
		maxWait: 5 * time.Second,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// BaseURL returns the daemon base URL the client was built with.
func (c *Client) BaseURL() string { return c.base }

// traceKey is the context key of a per-call trace id.
type traceKey struct{}

// WithTraceIDContext returns a context whose requests carry the given
// X-Trace-Id, overriding the client-level id for that call.
func WithTraceIDContext(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// APIError is a non-2xx /v1 response: the decoded error envelope plus
// the HTTP status and the trace id the server echoed or minted, so a
// failed call can be found in the daemon's flight recorder
// (GET /v1/debug/traces) by id.
type APIError struct {
	StatusCode int
	Message    string
	Report     string
	TraceID    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("daemon: %s (HTTP %d)", e.Message, e.StatusCode)
}

// IsRetryable reports whether the error is the daemon's backpressure
// signal (HTTP 429) — the one status the client retries internally.
func (e *APIError) IsRetryable() bool { return e.StatusCode == http.StatusTooManyRequests }

// Wrap registers a source and infers (or reuses) its wrapper.
func (c *Client) Wrap(ctx context.Context, req apiv1.WrapRequest) (*apiv1.WrapResponse, error) {
	var resp apiv1.WrapResponse
	if err := c.do(ctx, http.MethodPost, "/v1/wrap", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Extract batch-extracts pages against a registered source.
func (c *Client) Extract(ctx context.Context, req apiv1.ExtractRequest) (*apiv1.ExtractResponse, error) {
	var resp apiv1.ExtractResponse
	if err := c.do(ctx, http.MethodPost, "/v1/extract", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Sources lists the answering node's registered sources with cache
// stats, ring ownership and forwarded-hit counts.
func (c *Client) Sources(ctx context.Context) (*apiv1.SourcesResponse, error) {
	var resp apiv1.SourcesResponse
	if err := c.do(ctx, http.MethodGet, "/v1/sources", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// DeleteSource invalidates a source's wrapper and registration; in a
// cluster the invalidation fans out to the peers.
func (c *Client) DeleteSource(ctx context.Context, key string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sources/"+escapeKey(key), nil, nil)
}

// Health reports readiness. A draining daemon answers with an
// *APIError (HTTP 503) whose envelope still decodes into the response.
func (c *Client) Health(ctx context.Context) (*apiv1.HealthResponse, error) {
	var resp apiv1.HealthResponse
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// escapeKey escapes a source key for the /v1/sources/{key} path while
// keeping its slashes: keys like "books/bn" address nested path
// segments by contract (the server routes with a {key...} wildcard).
func escapeKey(key string) string {
	parts := strings.Split(key, "/")
	for i, p := range parts {
		parts[i] = url.PathEscape(p)
	}
	return strings.Join(parts, "/")
}

// do runs one API call: marshal, send, retry on 429, decode into out
// (out == nil discards the body). Non-2xx statuses return *APIError.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("encode %s: %w", path, err)
		}
	}
	trace := c.traceID
	if id, ok := ctx.Value(traceKey{}).(string); ok && id != "" {
		trace = id
	}
	wait := c.backoff
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if trace != "" {
			req.Header.Set(apiv1.HeaderTraceID, trace)
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return err
		}
		apiErr := c.finish(resp, out)
		if apiErr == nil {
			return nil
		}
		if !apiErr.IsRetryable() || attempt >= c.retries {
			return apiErr
		}
		d := retryWait(resp.Header.Get("Retry-After"), wait)
		if d > c.maxWait {
			d = c.maxWait
		}
		wait *= 2
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// finish consumes one response: 2xx decodes into out and returns nil,
// anything else becomes an *APIError. The body is always drained so
// the connection can be reused.
func (c *Client) finish(resp *http.Response, out any) *APIError {
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if out != nil && resp.StatusCode != http.StatusNoContent {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				return &APIError{
					StatusCode: resp.StatusCode,
					Message:    fmt.Sprintf("bad response body: %v", err),
					TraceID:    resp.Header.Get(apiv1.HeaderTraceID),
				}
			}
		}
		return nil
	}
	apiErr := &APIError{
		StatusCode: resp.StatusCode,
		Message:    resp.Status,
		TraceID:    resp.Header.Get(apiv1.HeaderTraceID),
	}
	var envelope apiv1.Error
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err == nil && envelope.Error != "" {
		apiErr.Message = envelope.Error
		apiErr.Report = envelope.Report
	}
	return apiErr
}

// retryWait resolves the wait before a 429 retry: the server's
// Retry-After (seconds) when parseable, else the fallback.
func retryWait(retryAfter string, fallback time.Duration) time.Duration {
	if retryAfter != "" {
		if secs, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return fallback
}
