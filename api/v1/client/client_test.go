package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	apiv1 "objectrunner/api/v1"
)

func TestRetryOn429HonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	var sawTrace atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sawTrace.Store(r.Header.Get(apiv1.HeaderTraceID))
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"at capacity"}`))
			return
		}
		w.Write([]byte(`{"source":"s","count":1}`))
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetries(3), WithTraceID("trace-42"))
	resp, err := c.Extract(context.Background(), apiv1.ExtractRequest{Source: "s", Pages: []string{"<html></html>"}})
	if err != nil {
		t.Fatalf("Extract after retries: %v", err)
	}
	if resp.Count != 1 {
		t.Errorf("count = %d, want 1", resp.Count)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3 (2 throttled + 1 ok)", got)
	}
	if got := sawTrace.Load(); got != "trace-42" {
		t.Errorf("trace id on retried request = %q, want %q", got, "trace-42")
	}
}

func TestRetriesExhaustedSurfaceAPIError(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "0")
		w.Header().Set(apiv1.HeaderTraceID, "trace-x")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"at capacity: 4 requests in flight"}`))
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetries(2))
	_, err := c.Extract(context.Background(), apiv1.ExtractRequest{Source: "s", Pages: []string{"x"}})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v (%T), want *APIError", err, err)
	}
	if apiErr.StatusCode != http.StatusTooManyRequests || !apiErr.IsRetryable() {
		t.Errorf("apiErr = %+v, want a retryable 429", apiErr)
	}
	if apiErr.TraceID != "trace-x" {
		t.Errorf("trace id = %q, want the server echo", apiErr.TraceID)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 1 + 2 retries", got)
	}
}

func TestNoRetryOnNon429(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"error":"unknown source \"nope\""}`))
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetries(5))
	_, err := c.Extract(context.Background(), apiv1.ExtractRequest{Source: "nope", Pages: []string{"x"}})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Fatalf("err = %v, want a 404 *APIError", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d calls, want exactly 1 (no retry on 404)", got)
	}
}

func TestContextCancelsRetryWait(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	// MaxRetryWait far beyond the context deadline: the wait must end on
	// cancellation, not on the timer.
	c := New(ts.URL, WithRetries(1), WithMaxRetryWait(time.Minute))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Extract(ctx, apiv1.ExtractRequest{Source: "s", Pages: []string{"x"}})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, the Retry-After timer won", elapsed)
	}
}

func TestPerCallTraceIDOverridesClientID(t *testing.T) {
	var sawTrace atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sawTrace.Store(r.Header.Get(apiv1.HeaderTraceID))
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()

	c := New(ts.URL, WithTraceID("client-level"))
	ctx := WithTraceIDContext(context.Background(), "call-level")
	if _, err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	if got := sawTrace.Load(); got != "call-level" {
		t.Errorf("trace id = %q, want the per-call override", got)
	}
}

func TestDeleteSourceKeepsSlashes(t *testing.T) {
	var sawPath atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sawPath.Store(r.URL.Path)
		w.WriteHeader(http.StatusNoContent)
	}))
	defer ts.Close()

	c := New(ts.URL)
	if err := c.DeleteSource(context.Background(), "books/bn"); err != nil {
		t.Fatal(err)
	}
	if got := sawPath.Load(); got != "/v1/sources/books/bn" {
		t.Errorf("path = %q, want slashes preserved", got)
	}
}

func TestErrorEnvelopeCarriesReport(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusUnprocessableEntity)
		w.Write([]byte(`{"error":"source discarded","report":"segment: no repeated region"}`))
	}))
	defer ts.Close()

	c := New(ts.URL)
	_, err := c.Wrap(context.Background(), apiv1.WrapRequest{Source: "s", SOD: "tuple {}", Pages: []string{"x"}})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if apiErr.Report == "" {
		t.Errorf("APIError lost the inference report: %+v", apiErr)
	}
}
