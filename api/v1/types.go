// Package apiv1 is the versioned wire contract of the ObjectRunner
// extraction daemon (cmd/objectrunnerd): every request and response
// body exchanged over the /v1 HTTP surface lives here, in exactly one
// place. The server (internal/httpserver), the typed Go client
// (api/v1/client), the load generator (cmd/loadgen) and the end-to-end
// tests all import these types, so a field added or renamed here is the
// single source of truth for the wire format.
//
// The package deliberately imports nothing from the objectrunner module
// — not even the root package — so any program can depend on it without
// pulling in the extraction pipeline.
//
// Endpoints and their types:
//
//	POST   /v1/wrap           WrapRequest   → WrapResponse | Error
//	POST   /v1/extract        ExtractRequest → ExtractResponse | Error
//	GET    /v1/sources        SourcesResponse
//	DELETE /v1/sources/{key}  204 | Error
//	GET    /healthz           HealthResponse
//
// Clustering: in multi-node mode (see internal/cluster) a request may
// be transparently forwarded to the node owning its source key. The
// HeaderForwardedBy header marks a forwarded request (the loop guard:
// a forwarded request is never forwarded again), and the Node field on
// responses reports which node actually served.
package apiv1

// Header names of the /v1 contract.
const (
	// HeaderTraceID carries the request trace id. The server sanitizes
	// and echoes it (minting one when absent), so a caller-supplied id
	// joins the daemon's spans and flight-recorder entries.
	HeaderTraceID = "X-Trace-Id"
	// HeaderForwardedBy is set by a cluster node when it proxies a
	// request to the source's owner; its value is the forwarding node's
	// id. A request carrying it is always served locally (loop guard).
	HeaderForwardedBy = "X-Forwarded-By"
)

// Entry is one dictionary instance for an instanceOf entity type. A
// zero Confidence defaults server-side (like cmd/objectrunner's -dict
// files) to 0.9.
type Entry struct {
	Value      string  `json:"value"`
	Confidence float64 `json:"confidence,omitempty"`
}

// WrapRequest registers a source — its SOD, optional dictionaries and
// sample pages — and infers (or reuses) its wrapper.
type WrapRequest struct {
	Source       string             `json:"source"`
	SOD          string             `json:"sod"`
	Pages        []string           `json:"pages"`
	Dictionaries map[string][]Entry `json:"dictionaries,omitempty"`
}

// WrapResponse reports the inferred (or reused) wrapper.
type WrapResponse struct {
	Source      string  `json:"source"`
	Pages       int     `json:"pages"`
	Score       float64 `json:"score"`
	Support     int     `json:"support"`
	Description string  `json:"description"`
	// Node is the id of the cluster node that served the request (empty
	// in single-node mode). Under forwarding it names the owner, not
	// the node the client spoke to.
	Node string `json:"node,omitempty"`
}

// ExtractRequest batch-extracts pages against a registered source's
// cached wrapper (wrap-on-miss using these pages as the sample).
type ExtractRequest struct {
	Source string   `json:"source"`
	Pages  []string `json:"pages"`
}

// ExtractResponse carries the flattened objects, one map per object,
// in page order.
type ExtractResponse struct {
	Source  string           `json:"source"`
	Pages   int              `json:"pages"`
	Count   int              `json:"count"`
	Objects []map[string]any `json:"objects"`
	Node    string           `json:"node,omitempty"`
}

// Error is the error envelope every non-2xx /v1 response carries.
type Error struct {
	Error string `json:"error"`
	// Report holds the EXPLAIN-style inference report when a wrap was
	// rejected because the source does not carry the targeted data
	// (HTTP 422).
	Report string `json:"report,omitempty"`
}

// SourceStats is the wire view of a source's wrapper-cache accounting.
type SourceStats struct {
	Len             int   `json:"len"`
	Hits            int64 `json:"hits"`
	DiskHits        int64 `json:"disk_hits"`
	Misses          int64 `json:"misses"`
	Shared          int64 `json:"shared"`
	EvictionsLRU    int64 `json:"evictions_lru"`
	EvictionsTTL    int64 `json:"evictions_ttl"`
	EvictionsHealth int64 `json:"evictions_health"`
}

// SourceInfo describes one registered source on the answering node.
type SourceInfo struct {
	Source string `json:"source"`
	SOD    string `json:"sod"`
	// Owner is the id of the cluster node the hash ring assigns this
	// source to (empty in single-node mode). Owner != the answering
	// node means the source was registered here by a fallback serve or
	// before a ring change.
	Owner string `json:"owner,omitempty"`
	// ForwardedHits counts requests for this source that arrived here
	// via peer forwarding — how much of this node's traffic for the
	// source came through the ring rather than directly.
	ForwardedHits int64       `json:"forwarded_hits,omitempty"`
	Stats         SourceStats `json:"stats"`
}

// SourcesResponse is the GET /v1/sources body.
type SourcesResponse struct {
	// Node is the answering node's id (empty in single-node mode).
	Node    string       `json:"node,omitempty"`
	Sources []SourceInfo `json:"sources"`
}

// HealthResponse is the GET /healthz body. Status is "ok" (HTTP 200)
// or "draining" (HTTP 503).
type HealthResponse struct {
	Status   string `json:"status"`
	Sources  int    `json:"sources,omitempty"`
	Inflight int64  `json:"inflight,omitempty"`
	Node     string `json:"node,omitempty"`
}
