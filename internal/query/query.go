// Package query implements the "phase-two querying" of the ObjectRunner
// architecture (paper Fig. 1 and §I: after an SOD harvests structured
// data, users query the extracted collection). It provides a small,
// composable query layer over extracted instances: field predicates,
// ordering, projection and limits.
package query

import (
	"sort"
	"strconv"
	"strings"

	"objectrunner/internal/recognize"
	"objectrunner/internal/sod"
)

// Predicate tests one instance.
type Predicate func(in *sod.Instance) bool

// values gathers every leaf value of the named field within an instance.
func values(in *sod.Instance, field string) []string {
	var out []string
	var rec func(*sod.Instance)
	rec = func(x *sod.Instance) {
		if x.Leaf() {
			if x.Type.Name == field {
				out = append(out, x.Value)
			}
			return
		}
		for _, c := range x.Children {
			rec(c)
		}
	}
	rec(in)
	return out
}

// first returns the first value of the field, or "".
func first(in *sod.Instance, field string) string {
	vs := values(in, field)
	if len(vs) == 0 {
		return ""
	}
	return vs[0]
}

// Eq matches instances where some value of the field equals v after
// normalization (case and punctuation insensitive).
func Eq(field, v string) Predicate {
	want := recognize.NormalizePhrase(v)
	return func(in *sod.Instance) bool {
		for _, x := range values(in, field) {
			if recognize.NormalizePhrase(x) == want {
				return true
			}
		}
		return false
	}
}

// Contains matches instances where some value of the field contains the
// needle (case-insensitive).
func Contains(field, needle string) Predicate {
	n := strings.ToLower(needle)
	return func(in *sod.Instance) bool {
		for _, x := range values(in, field) {
			if strings.Contains(strings.ToLower(x), n) {
				return true
			}
		}
		return false
	}
}

// numeric extracts the first number from a string ("$12.99" -> 12.99).
func numeric(s string) (float64, bool) {
	start := -1
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= '0' && c <= '9' {
			start = i
			break
		}
	}
	if start < 0 {
		return 0, false
	}
	end := start
	for end < len(s) && (s[end] >= '0' && s[end] <= '9' || s[end] == '.' || s[end] == ',') {
		end++
	}
	v, err := strconv.ParseFloat(strings.ReplaceAll(s[start:end], ",", ""), 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// NumLess matches instances whose field holds a number strictly below
// bound (currency symbols and thousands separators are tolerated).
func NumLess(field string, bound float64) Predicate {
	return func(in *sod.Instance) bool {
		for _, x := range values(in, field) {
			if v, ok := numeric(x); ok && v < bound {
				return true
			}
		}
		return false
	}
}

// NumAtLeast matches instances whose field holds a number >= bound.
func NumAtLeast(field string, bound float64) Predicate {
	return func(in *sod.Instance) bool {
		for _, x := range values(in, field) {
			if v, ok := numeric(x); ok && v >= bound {
				return true
			}
		}
		return false
	}
}

// And combines predicates conjunctively.
func And(ps ...Predicate) Predicate {
	return func(in *sod.Instance) bool {
		for _, p := range ps {
			if !p(in) {
				return false
			}
		}
		return true
	}
}

// Or combines predicates disjunctively.
func Or(ps ...Predicate) Predicate {
	return func(in *sod.Instance) bool {
		for _, p := range ps {
			if p(in) {
				return true
			}
		}
		return false
	}
}

// Not inverts a predicate.
func Not(p Predicate) Predicate {
	return func(in *sod.Instance) bool { return !p(in) }
}

// Query is a fluent query over an extracted collection. Operations do not
// modify the source slice.
type Query struct {
	objects []*sod.Instance
}

// Over starts a query over a collection.
func Over(objects []*sod.Instance) *Query {
	return &Query{objects: objects}
}

// Where keeps the instances satisfying the predicate.
func (q *Query) Where(p Predicate) *Query {
	var out []*sod.Instance
	for _, o := range q.objects {
		if p(o) {
			out = append(out, o)
		}
	}
	return &Query{objects: out}
}

// OrderBy sorts by the field's first value, lexicographically (stable).
func (q *Query) OrderBy(field string) *Query {
	out := append([]*sod.Instance{}, q.objects...)
	sort.SliceStable(out, func(i, j int) bool {
		return recognize.NormalizePhrase(first(out[i], field)) < recognize.NormalizePhrase(first(out[j], field))
	})
	return &Query{objects: out}
}

// OrderByNum sorts by the field's first numeric value ascending; values
// without a number sort last.
func (q *Query) OrderByNum(field string) *Query {
	out := append([]*sod.Instance{}, q.objects...)
	key := func(in *sod.Instance) (float64, bool) { return numeric(first(in, field)) }
	sort.SliceStable(out, func(i, j int) bool {
		vi, oki := key(out[i])
		vj, okj := key(out[j])
		if oki != okj {
			return oki
		}
		return vi < vj
	})
	return &Query{objects: out}
}

// Limit truncates the result.
func (q *Query) Limit(n int) *Query {
	if n < 0 || n > len(q.objects) {
		n = len(q.objects)
	}
	return &Query{objects: q.objects[:n]}
}

// All returns the current result set.
func (q *Query) All() []*sod.Instance { return q.objects }

// Count returns the current result size.
func (q *Query) Count() int { return len(q.objects) }

// Project returns, for each instance, the requested fields' values.
func (q *Query) Project(fields ...string) []map[string][]string {
	out := make([]map[string][]string, 0, len(q.objects))
	for _, o := range q.objects {
		row := make(map[string][]string, len(fields))
		for _, f := range fields {
			row[f] = values(o, f)
		}
		out = append(out, row)
	}
	return out
}
