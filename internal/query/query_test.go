package query

import (
	"testing"

	"objectrunner/internal/sod"
)

var bookT = sod.MustParse(`tuple { title: instanceOf(T), price: price, authors: set(author: instanceOf(A))+ }`)

func book(title, price string, authors ...string) *sod.Instance {
	set := &sod.Instance{Type: bookT.Fields[2]}
	for _, a := range authors {
		set.Children = append(set.Children, sod.NewValue(bookT.Fields[2].Elem, a))
	}
	return &sod.Instance{Type: bookT, Children: []*sod.Instance{
		sod.NewValue(bookT.Fields[0], title),
		sod.NewValue(bookT.Fields[1], price),
		set,
	}}
}

func library() []*sod.Instance {
	return []*sod.Instance{
		book("Good Omens", "$11.25", "Neil Gaiman", "Terry Pratchett"),
		book("Norse Mythology", "$14.00", "Neil Gaiman"),
		book("Pride and Prejudice", "$9.99", "Jane Austen"),
		book("Persuasion", "no price", "Jane Austen"),
	}
}

func TestEqNormalized(t *testing.T) {
	got := Over(library()).Where(Eq("title", "good  OMENS")).All()
	if len(got) != 1 || got[0].FieldValue("title") != "Good Omens" {
		t.Fatalf("got %v", got)
	}
}

func TestEqOnSetMembers(t *testing.T) {
	got := Over(library()).Where(Eq("author", "Neil Gaiman")).Count()
	if got != 2 {
		t.Errorf("count = %d, want 2", got)
	}
}

func TestContains(t *testing.T) {
	got := Over(library()).Where(Contains("title", "pri")).Count()
	if got != 1 {
		t.Errorf("count = %d", got)
	}
}

func TestNumericPredicates(t *testing.T) {
	under12 := Over(library()).Where(NumLess("price", 12)).Count()
	if under12 != 2 { // 11.25 and 9.99; "no price" excluded
		t.Errorf("under12 = %d", under12)
	}
	atLeast14 := Over(library()).Where(NumAtLeast("price", 14)).Count()
	if atLeast14 != 1 {
		t.Errorf("atLeast14 = %d", atLeast14)
	}
}

func TestCombinators(t *testing.T) {
	q := Over(library())
	both := q.Where(And(Eq("author", "Neil Gaiman"), NumLess("price", 12))).Count()
	if both != 1 {
		t.Errorf("and = %d", both)
	}
	either := q.Where(Or(Eq("author", "Jane Austen"), Eq("author", "Terry Pratchett"))).Count()
	if either != 3 {
		t.Errorf("or = %d", either)
	}
	neither := q.Where(Not(Eq("author", "Neil Gaiman"))).Count()
	if neither != 2 {
		t.Errorf("not = %d", neither)
	}
}

func TestOrderByAndLimit(t *testing.T) {
	got := Over(library()).OrderBy("title").Limit(2).All()
	if len(got) != 2 {
		t.Fatalf("limit failed: %d", len(got))
	}
	if got[0].FieldValue("title") != "Good Omens" || got[1].FieldValue("title") != "Norse Mythology" {
		t.Errorf("order = %q, %q", got[0].FieldValue("title"), got[1].FieldValue("title"))
	}
}

func TestOrderByNum(t *testing.T) {
	got := Over(library()).OrderByNum("price").All()
	if got[0].FieldValue("price") != "$9.99" {
		t.Errorf("cheapest first = %q", got[0].FieldValue("price"))
	}
	// Value without a number sorts last.
	if got[len(got)-1].FieldValue("price") != "no price" {
		t.Errorf("last = %q", got[len(got)-1].FieldValue("price"))
	}
}

func TestProject(t *testing.T) {
	rows := Over(library()).Where(Eq("title", "Good Omens")).Project("title", "author")
	if len(rows) != 1 {
		t.Fatal("no rows")
	}
	if len(rows[0]["author"]) != 2 {
		t.Errorf("authors = %v", rows[0]["author"])
	}
}

func TestImmutability(t *testing.T) {
	objs := library()
	q := Over(objs)
	q.Where(Eq("author", "Jane Austen")).OrderBy("title").Limit(1)
	if q.Count() != 4 || len(objs) != 4 {
		t.Error("query mutated its source")
	}
}

func TestLimitEdgeCases(t *testing.T) {
	q := Over(library())
	if q.Limit(-1).Count() != 4 {
		t.Error("negative limit")
	}
	if q.Limit(100).Count() != 4 {
		t.Error("oversized limit")
	}
	if q.Limit(0).Count() != 0 {
		t.Error("zero limit")
	}
}
