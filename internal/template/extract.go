package template

import (
	"strings"

	"objectrunner/internal/eqclass"
	"objectrunner/internal/sod"
	"objectrunner/internal/symtab"
)

// Scratch holds the reusable buffers of one extraction pass: the
// descriptor-occurrence counting map, a bump arena for tuple positions,
// a free list of span slices, and the word/part/range accumulators. A
// Scratch is not safe for concurrent use; the serving path keeps one
// per worker in a pool. Token positions handed out by allocInts stay
// valid until the next Reset, so extracted instances (which copy text
// into strings) never alias scratch memory.
type Scratch struct {
	counts map[sig3]int
	ints   [][]int       // bump-allocated position storage, chunked
	free   [][]tupleSpan // recycled span-slice backing buffers
	words  []string
	parts  []string
	ranges [][2]int
}

// NewScratch returns an empty scratch ready for extraction.
func NewScratch() *Scratch {
	return &Scratch{counts: make(map[sig3]int)}
}

// Reset recycles all position storage. Spans handed out before the call
// become invalid; extracted instances are unaffected.
func (sc *Scratch) Reset() {
	for i := range sc.ints {
		sc.ints[i] = sc.ints[i][:0]
	}
}

// allocInts bump-allocates a zero-length int slice with capacity n from
// the current chunk, growing the chunk list geometrically on overflow.
func (sc *Scratch) allocInts(n int) []int {
	if k := len(sc.ints); k > 0 {
		c := sc.ints[k-1]
		if cap(c)-len(c) >= n {
			sc.ints[k-1] = c[:len(c)+n]
			return c[len(c) : len(c) : len(c)+n]
		}
	}
	size := 1024
	if k := len(sc.ints); k > 0 && 2*cap(sc.ints[k-1]) > size {
		size = 2 * cap(sc.ints[k-1])
	}
	if n > size {
		size = n
	}
	c := make([]int, n, size)
	sc.ints = append(sc.ints, c)
	return c[:0:n]
}

// getSpans hands out an empty span slice, recycling a returned buffer
// when one is available.
func (sc *Scratch) getSpans() []tupleSpan {
	if k := len(sc.free); k > 0 {
		b := sc.free[k-1]
		sc.free = sc.free[:k-1]
		return b[:0]
	}
	return make([]tupleSpan, 0, 8)
}

// putSpans returns a span slice's backing buffer to the free list. The
// caller must be done with the slice header itself; span values copied
// out remain valid (their positions live in the int arena).
func (sc *Scratch) putSpans(b []tupleSpan) {
	if b != nil {
		sc.free = append(sc.free, b)
	}
}

// Extract applies a match to one page's token sequence and returns the
// extracted SOD instances: one instance per (class tuple × repeated
// group). The page need not belong to the inference sample — only the
// match's separator descriptors are used to locate the template on it.
func Extract(s *sod.Type, m *Match, toks []*eqclass.Occurrence) []*sod.Instance {
	return extractWith(s, m, toks, NewScratch())
}

func extractWith(s *sod.Type, m *Match, toks []*eqclass.Occurrence, sc *Scratch) []*sod.Instance {
	var out []*sod.Instance
	spans := findTuples(toks, m.Node.EQ.Descs, 0, len(toks), sc)
	for _, span := range spans {
		if inst := extractGroup(m.Tuple, m, toks, span, sc); inst != nil {
			out = append(out, inst)
		}
	}
	sc.putSpans(spans)
	return out
}

// boundChildren collects the nested classes the match binds fields or
// sets to: their spans are excluded from sibling direct-slot text (they
// hold other fields' values), while unbound classes stay included (their
// structural match may cover this field's own words).
func boundChildren(m *Match) map[*Node]bool {
	out := make(map[*Node]bool)
	for _, bs := range m.Fields {
		for _, b := range bs {
			if len(b.Path) > 0 {
				out[b.Path[0]] = true
			}
		}
	}
	for _, sb := range m.Sets {
		if sb != nil && sb.Child != nil {
			out[sb.Child] = true
		}
	}
	return out
}

// childRanks resolves extraction ambiguity between annotation-split
// roles: children of one slot whose separator descriptors are
// structurally identical (same tags, same paths) cannot be told apart on
// an unseen page, so each bound child takes the candidate span at its
// rank in template order (EQ.OrderHint).
func childRanks(m *Match) map[*Node]int {
	type key struct {
		slot int
		sig  string
	}
	groups := make(map[key][]*Node)
	seen := make(map[*Node]bool)
	add := func(c *Node) {
		if c == nil || seen[c] {
			return
		}
		seen[c] = true
		k := key{c.EQ.ParentSlot, descSig(c)}
		groups[k] = append(groups[k], c)
	}
	for _, bs := range m.Fields {
		for _, b := range bs {
			if len(b.Path) > 0 {
				add(b.Path[0])
			}
		}
	}
	for _, sb := range m.Sets {
		if sb != nil {
			add(sb.Child)
		}
	}
	ranks := make(map[*Node]int)
	for _, g := range groups {
		for i := 1; i < len(g); i++ {
			for j := i; j > 0 && g[j].EQ.OrderHint < g[j-1].EQ.OrderHint; j-- {
				g[j], g[j-1] = g[j-1], g[j]
			}
		}
		for i, c := range g {
			ranks[c] = i
		}
	}
	return ranks
}

// fieldOrder maps field names (and disjunction alternative names) to
// their tuple declaration rank, for stable child ordering.
func fieldOrder(tuple *sod.Type) map[string]int {
	rank := make(map[string]int)
	if tuple == nil {
		return rank
	}
	for i, f := range tuple.Fields {
		rank[f.Name] = i
		if f.Kind == sod.KindDisjunction {
			for _, alt := range f.Fields {
				rank[alt.Name] = i
			}
		}
	}
	return rank
}

// descSig is the structural signature of a class's separators.
func descSig(n *Node) string {
	var sb strings.Builder
	for _, d := range n.EQ.Descs {
		sb.WriteString(d.String())
		sb.WriteByte(' ')
	}
	return sb.String()
}

// ExtractAll runs every match over the page and concatenates the results.
func ExtractAll(s *sod.Type, matches []*Match, toks []*eqclass.Occurrence) []*sod.Instance {
	return ExtractAllStream(s, matches, toks, NewScratch())
}

// ExtractAllStream is ExtractAll with caller-provided scratch: the
// streaming serve path pools Scratch values per worker so a cache-hit
// extract allocates nothing while locating tuples. The scratch is Reset
// on entry; returned instances never alias it.
func ExtractAllStream(s *sod.Type, matches []*Match, toks []*eqclass.Occurrence, sc *Scratch) []*sod.Instance {
	sc.Reset()
	var out []*sod.Instance
	for _, m := range matches {
		out = append(out, extractWith(s, m, toks, sc)...)
	}
	return out
}

// tupleSpan is one located repetition of a class on a page: the token
// positions of its separators.
type tupleSpan struct {
	positions []int
}

// slotRange returns the token range (exclusive bounds) of interior slot i.
func (ts tupleSpan) slotRange(i int) (int, int) {
	return ts.positions[i], ts.positions[i+1]
}

// findTuples locates repetitions of the separator sequence on the page by
// greedy forward matching of the descriptors (kind, value, DOM path)
// within [from, to). The returned slice's buffer belongs to the scratch:
// callers release it with putSpans once done with the headers.
func findTuples(toks []*eqclass.Occurrence, descs []eqclass.Desc, from, to int, sc *Scratch) []tupleSpan {
	out := sc.getSpans()
	i := from
	for {
		span, next, ok := matchOnce(toks, descs, i, to, sc)
		if !ok {
			return out
		}
		out = append(out, span)
		i = next
	}
}

// sig3 is the structural signature of a descriptor or token, compared as
// interned symbols: tokens and descriptors must carry symbols from the
// same table (the owning wrapper's). A token the table never saw holds
// symtab.None and can never equal a descriptor's non-zero symbols.
type sig3 struct {
	kind     eqclass.TokKind
	val, pth symtab.Sym
}

func sigOfTok(o *eqclass.Occurrence) sig3 { return sig3{o.Kind, o.Val, o.Pth} }
func sigOfDesc(d *eqclass.Desc) sig3      { return sig3{d.Kind, d.Val, d.Pth} }

// matchOnce finds one full descriptor sequence starting at or after i.
// Ordinal-bearing descriptors bind to the n-th occurrence of their
// structural signature within the tuple, counted from the anchor — this
// tells apart separators that annotations differentiated during
// inference but that look identical on an unseen page.
func matchOnce(toks []*eqclass.Occurrence, descs []eqclass.Desc, i, to int, sc *Scratch) (tupleSpan, int, bool) {
	if len(descs) == 0 {
		return tupleSpan{}, to, false
	}
	// Tracked signatures, with their running occurrence counts. Map
	// membership marks "tracked"; scanning a token costs a struct hash,
	// no per-token signature string. The map is scratch-owned and never
	// nested: matchOnce calls nothing that matches.
	counts := sc.counts
	clear(counts)
	for di := range descs {
		counts[sigOfDesc(&descs[di])] = 0
	}
	positions := sc.allocInts(len(descs))
	for di := range descs {
		d := &descs[di]
		sig := sigOfDesc(d)
		want := d.Ordinal
		if want <= 0 {
			want = counts[sig] + 1 // "next match"
		}
		found := -1
		for ; i < to; i++ {
			osig := sigOfTok(toks[i])
			if c, tracked := counts[osig]; tracked {
				counts[osig] = c + 1
			}
			if osig == sig && counts[osig] >= want {
				found = i
				break
			}
		}
		if found < 0 {
			return tupleSpan{}, to, false
		}
		positions = append(positions, found)
		i = found + 1
		if di == 0 {
			// Anchor: ordinal counting restarts at the tuple head.
			for s := range counts {
				counts[s] = 0
			}
			counts[sig] = 1
		}
	}
	return tupleSpan{positions: positions}, i, true
}

// extractGroup builds one SOD instance from a located tuple span, using
// the match's field and set bindings. Instances missing a required
// component are dropped (nil).
func extractGroup(tuple *sod.Type, m *Match, toks []*eqclass.Occurrence, span tupleSpan, sc *Scratch) *sod.Instance {
	ranks, excl, order := m.extractCaches()
	inst := &sod.Instance{Type: tuple}
	bound := make(map[*sod.Type]bool)
	for f, bindings := range m.Fields {
		text := bindingsText(m.Node, toks, span, bindings, ranks, excl, sc)
		if text == "" {
			continue
		}
		inst.Children = append(inst.Children, sod.NewValue(f, text))
		bound[f] = true
	}
	for f, b := range m.Sets {
		set := extractSet(f, b, toks, span, sc)
		if set == nil || len(set.Children) == 0 {
			continue
		}
		inst.Children = append(inst.Children, set)
		bound[f] = true
	}
	for _, f := range tuple.Fields {
		if f.Optional || bound[f] {
			continue
		}
		if f.Kind == sod.KindDisjunction {
			// Disjunctions were resolved at match time; the resolved
			// alternative is a distinct *Type key in m.Fields, accounted
			// for above via its own binding.
			continue
		}
		if f.Kind == sod.KindSet && f.Mult.Min == 0 {
			continue
		}
		return nil
	}
	if len(inst.Children) == 0 {
		return nil
	}
	orderChildren(inst, order)
	return inst
}

// orderChildren sorts instance children into the tuple's declaration
// order (precomputed as a name→rank map) for stable output.
func orderChildren(inst *sod.Instance, rank map[string]int) {
	sortStable(inst.Children, func(a, b *sod.Instance) bool {
		return rank[a.Type.Name] < rank[b.Type.Name]
	})
}

func sortStable(xs []*sod.Instance, less func(a, b *sod.Instance) bool) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && less(xs[j], xs[j-1]); j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// bindingsText concatenates the text located by each field binding.
func bindingsText(owner *Node, toks []*eqclass.Occurrence, span tupleSpan, bindings []FieldBinding, ranks map[*Node]int, excl map[*Node]bool, sc *Scratch) string {
	parts := sc.parts[:0]
	for _, b := range bindings {
		if text := bindingText(owner, toks, span, b, ranks, excl, sc); text != "" {
			parts = append(parts, text)
		}
	}
	out := strings.Join(parts, " ")
	sc.parts = parts[:0]
	return out
}

// bindingText resolves one binding: descend through the nested classes of
// the binding path, narrowing at each step to the slot of the enclosing
// class the child nests in, then read the final slot.
func bindingText(owner *Node, toks []*eqclass.Occurrence, span tupleSpan, b FieldBinding, ranks map[*Node]int, excl map[*Node]bool, sc *Scratch) string {
	cur := span
	for hop, node := range b.Path {
		from, to := cur.positions[0], cur.positions[len(cur.positions)-1]
		if s := node.EQ.ParentSlot; s >= 0 && s+1 < len(cur.positions) {
			from, to = cur.slotRange(s)
		}
		spans := findTuples(toks, node.EQ.Descs, from+1, to, sc)
		want := 0
		if hop == 0 {
			want = ranks[node]
		}
		if want >= len(spans) {
			sc.putSpans(spans)
			return ""
		}
		cur = spans[want] // copy the header before releasing the buffer
		sc.putSpans(spans)
		owner = node
	}
	return innerSlotText(owner, toks, cur, b.Slot, excl, sc)
}

// innerSlotText reads a slot's direct text, excluding the spans of
// classes nested in it — mirroring how slot profiles attribute words to
// their innermost class during inference.
func innerSlotText(owner *Node, toks []*eqclass.Occurrence, span tupleSpan, slot int, excl map[*Node]bool, sc *Scratch) string {
	if slot+1 >= len(span.positions) {
		return ""
	}
	from, to := span.slotRange(slot)
	ranges := sc.ranges[:0]
	if owner != nil {
		for _, c := range owner.Children {
			if c.EQ.ParentSlot != slot || !excl[c] {
				continue
			}
			cspans := findTuples(toks, c.EQ.Descs, from+1, to, sc)
			for _, cs := range cspans {
				ranges = append(ranges, [2]int{cs.positions[0], cs.positions[len(cs.positions)-1]})
			}
			sc.putSpans(cspans)
		}
	}
	words := sc.words[:0]
	for i := from + 1; i < to; i++ {
		if toks[i].Kind != eqclass.KindWord {
			continue
		}
		skip := false
		for _, e := range ranges {
			if i >= e[0] && i <= e[1] {
				skip = true
				break
			}
		}
		if !skip {
			words = append(words, toks[i].Raw)
		}
	}
	out := strings.Join(words, " ")
	sc.words, sc.ranges = words[:0], ranges[:0]
	return out
}

// slotsText concatenates the word content of the given slots of a span.
func slotsText(toks []*eqclass.Occurrence, span tupleSpan, slots []int, sc *Scratch) string {
	words := sc.words[:0]
	for _, s := range slots {
		if s+1 >= len(span.positions) {
			continue
		}
		from, to := span.slotRange(s)
		for i := from + 1; i < to; i++ {
			if toks[i].Kind == eqclass.KindWord {
				words = append(words, toks[i].Raw)
			}
		}
	}
	out := strings.Join(words, " ")
	sc.words = words[:0]
	return out
}

// extractSet materializes a set instance from its binding.
func extractSet(f *sod.Type, b *SetBinding, toks []*eqclass.Occurrence, span tupleSpan, sc *Scratch) *sod.Instance {
	set := &sod.Instance{Type: f}
	addEntity := func(text string) {
		for _, v := range SplitList(text) {
			set.Children = append(set.Children, sod.NewValue(f.Elem, v))
		}
	}
	// Inline case: typed slots of the parent node hold the members.
	if len(b.Slots) > 0 {
		for _, s := range b.Slots {
			if text := slotsText(toks, span, []int{s}, sc); text != "" {
				addEntity(text)
			}
		}
		return set
	}
	// Nested case: each child-class tuple inside the span is one member.
	if b.Child == nil {
		return set
	}
	from, to := span.positions[0], span.positions[len(span.positions)-1]
	childSpans := findTuples(toks, b.Child.EQ.Descs, from+1, to, sc)
	for _, childSpan := range childSpans {
		if b.ElemMatch != nil {
			if inst := extractGroup(b.ElemMatch.Tuple, b.ElemMatch, toks, childSpan, sc); inst != nil {
				inst.Type = f.Elem
				set.Children = append(set.Children, inst)
			}
			continue
		}
		if text := slotsText(toks, childSpan, b.ElemSlots, sc); text != "" {
			addEntity(text)
		}
	}
	sc.putSpans(childSpans)
	return set
}

// SplitList splits an inline list of set members on the separators that
// template-generated pages use between co-listed values: commas,
// semicolons and the word "and" (the Amazon author lists of paper
// Fig. 2(a): "Jane Austen and Fiona Stafford").
func SplitList(text string) []string {
	fields := strings.FieldsFunc(text, func(r rune) bool { return r == ',' || r == ';' })
	var out []string
	for _, f := range fields {
		for _, part := range strings.Split(f, " and ") {
			part = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(part), "and "))
			if part != "" {
				out = append(out, part)
			}
		}
	}
	return out
}
