package template

import (
	"fmt"
	"sort"

	"objectrunner/internal/eqclass"
	"objectrunner/internal/sod"
	"objectrunner/internal/symtab"
)

// Persistence of the learned template state (the wrapper serving-cache
// subsystem): the annotated template tree and the SOD match bindings,
// flattened to index-based records so the pointer graph — node identity
// in binding paths, *sod.Type identity in field keys — survives a
// round-trip intact. Types are interned in the caller's sod.TypePool;
// nodes are interned here by pre-order walk of the tree.

// PersistedSlot is the persisted form of one slot profile.
type PersistedSlot struct {
	Types     map[string]int `json:"types,omitempty"`
	TextCount int            `json:"text_count,omitempty"`
	ChildEQs  []int          `json:"child_eqs,omitempty"`
}

// PersistedNode is one template node; Children are node ids.
type PersistedNode struct {
	EQ       eqclass.PersistedEQ `json:"eq"`
	Slots    []PersistedSlot     `json:"slots,omitempty"`
	Children []int               `json:"children,omitempty"`
}

// PersistedTemplate is the whole annotated template tree.
type PersistedTemplate struct {
	DominanceThreshold float64         `json:"dominance_threshold"`
	Nodes              []PersistedNode `json:"nodes"`
	Roots              []int           `json:"roots"`
}

// PersistedBinding locates one field binding: a node-id descent path and
// the final slot.
type PersistedBinding struct {
	Path []int `json:"path,omitempty"`
	Slot int   `json:"slot"`
}

// PersistedFieldBindings carries the bindings of one tuple component,
// keyed by its type-pool id.
type PersistedFieldBindings struct {
	Type     int                `json:"type"`
	Bindings []PersistedBinding `json:"bindings"`
}

// PersistedSetBinding is the persisted form of one set binding.
type PersistedSetBinding struct {
	Type      int             `json:"type"`
	Slots     []int           `json:"slots,omitempty"`
	Child     int             `json:"child"`
	ElemMatch *PersistedMatch `json:"elem_match,omitempty"`
	ElemSlots []int           `json:"elem_slots,omitempty"`
}

// PersistedMatch binds a persisted tuple to template positions.
type PersistedMatch struct {
	Node   int                      `json:"node"`
	Tuple  int                      `json:"tuple"`
	Fields []PersistedFieldBindings `json:"fields,omitempty"`
	Sets   []PersistedSetBinding    `json:"sets,omitempty"`
	Start  int                      `json:"start"`
	End    int                      `json:"end"`
}

// InternDescs re-interns every descriptor of the template tree into tab,
// rewriting the descriptors' Val/Pth symbols in place. The walk order —
// roots pre-order, descriptors in slice order, Value before Path — is the
// same order Persist emits descriptors in, so a wrapper's symbol table is
// identical whether it was built at inference time, rebuilt from a v1
// stream, or restored from a v2 symbol list.
func InternDescs(t *Template, tab *symtab.Table) {
	var walk func(n *Node)
	walk = func(n *Node) {
		for i := range n.EQ.Descs {
			d := &n.EQ.Descs[i]
			d.Val = tab.Intern(d.Value)
			d.Pth = tab.Intern(d.Path)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range t.Roots {
		walk(r)
	}
}

// Persist flattens the template tree and its matches. Types reachable
// from the matches are interned into pool; the caller persists
// pool.Records() alongside the returned structures.
func Persist(t *Template, matches []*Match, pool *sod.TypePool) (*PersistedTemplate, []*PersistedMatch) {
	pt := &PersistedTemplate{DominanceThreshold: t.DominanceThreshold}
	ids := make(map[*Node]int)
	var walk func(n *Node) int
	walk = func(n *Node) int {
		id := len(pt.Nodes)
		ids[n] = id
		pt.Nodes = append(pt.Nodes, PersistedNode{})
		rec := PersistedNode{EQ: n.EQ.Persist()}
		for _, s := range n.Slots {
			rec.Slots = append(rec.Slots, PersistedSlot{
				Types: s.Types, TextCount: s.TextCount, ChildEQs: s.ChildEQs,
			})
		}
		for _, c := range n.Children {
			rec.Children = append(rec.Children, walk(c))
		}
		pt.Nodes[id] = rec
		return id
	}
	for _, r := range t.Roots {
		pt.Roots = append(pt.Roots, walk(r))
	}
	out := make([]*PersistedMatch, 0, len(matches))
	for _, m := range matches {
		out = append(out, persistMatch(m, ids, pool))
	}
	return pt, out
}

// persistMatch flattens one match. Map entries are emitted in a
// deterministic order (field name, then rendered type) so identical
// wrappers persist to identical bytes.
func persistMatch(m *Match, ids map[*Node]int, pool *sod.TypePool) *PersistedMatch {
	pm := &PersistedMatch{
		Node:  ids[m.Node],
		Tuple: pool.Add(m.Tuple),
		Start: m.Start,
		End:   m.End,
	}
	for _, f := range sortedTypeKeys(mapKeysFields(m.Fields)) {
		pf := PersistedFieldBindings{Type: pool.Add(f)}
		for _, b := range m.Fields[f] {
			pb := PersistedBinding{Slot: b.Slot}
			for _, n := range b.Path {
				pb.Path = append(pb.Path, ids[n])
			}
			pf.Bindings = append(pf.Bindings, pb)
		}
		pm.Fields = append(pm.Fields, pf)
	}
	for _, f := range sortedTypeKeys(mapKeysSets(m.Sets)) {
		sb := m.Sets[f]
		ps := PersistedSetBinding{Type: pool.Add(f), Slots: sb.Slots, Child: -1, ElemSlots: sb.ElemSlots}
		if sb.Child != nil {
			ps.Child = ids[sb.Child]
		}
		if sb.ElemMatch != nil {
			ps.ElemMatch = persistMatch(sb.ElemMatch, ids, pool)
		}
		pm.Sets = append(pm.Sets, ps)
	}
	return pm
}

func mapKeysFields(m map[*sod.Type][]FieldBinding) []*sod.Type {
	out := make([]*sod.Type, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func mapKeysSets(m map[*sod.Type]*SetBinding) []*sod.Type {
	out := make([]*sod.Type, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// sortedTypeKeys orders type keys by name, falling back to the rendered
// DSL form — a total, pointer-free order, so the persisted byte stream
// does not depend on map iteration.
func sortedTypeKeys(keys []*sod.Type) []*sod.Type {
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Name != keys[j].Name {
			return keys[i].Name < keys[j].Name
		}
		return keys[i].String() < keys[j].String()
	})
	return keys
}

// Restore rebuilds the template tree and matches from their persisted
// forms. types is the decoded type pool (sod.DecodeTypePool); tab is the
// restored symbol table for v2 streams (descriptor strings resolve from
// their symbol ids) or nil for v1 streams (inline strings are used, and
// the caller runs InternDescs afterwards).
func Restore(pt *PersistedTemplate, pms []*PersistedMatch, types []*sod.Type, tab *symtab.Table) (*Template, []*Match, error) {
	t := &Template{DominanceThreshold: pt.DominanceThreshold}
	nodes := make([]*Node, len(pt.Nodes))
	for i := range nodes {
		nodes[i] = &Node{}
	}
	nodeRef := func(id int) (*Node, error) {
		if id < 0 || id >= len(nodes) {
			return nil, fmt.Errorf("template: node reference %d out of range [0, %d)", id, len(nodes))
		}
		return nodes[id], nil
	}
	for i, rec := range pt.Nodes {
		n := nodes[i]
		n.EQ = rec.EQ.Restore(tab)
		for _, s := range rec.Slots {
			tm := s.Types
			if tm == nil {
				tm = make(map[string]int)
			}
			n.Slots = append(n.Slots, eqclass.SlotProfile{
				Types: tm, TextCount: s.TextCount, ChildEQs: s.ChildEQs,
			})
		}
		for _, cid := range rec.Children {
			c, err := nodeRef(cid)
			if err != nil {
				return nil, nil, err
			}
			n.Children = append(n.Children, c)
		}
	}
	// Hierarchy links: the persisted tree shape is authoritative for both
	// the node tree and the EQ tree it mirrors.
	for _, n := range nodes {
		for _, c := range n.Children {
			c.EQ.Parent = n.EQ
			n.EQ.Children = append(n.EQ.Children, c.EQ)
		}
	}
	for _, rid := range pt.Roots {
		r, err := nodeRef(rid)
		if err != nil {
			return nil, nil, err
		}
		t.Roots = append(t.Roots, r)
	}
	typeRef := func(id int) (*sod.Type, error) {
		if id < 0 || id >= len(types) {
			return nil, fmt.Errorf("template: type reference %d out of range [0, %d)", id, len(types))
		}
		return types[id], nil
	}
	var restoreMatch func(pm *PersistedMatch) (*Match, error)
	restoreMatch = func(pm *PersistedMatch) (*Match, error) {
		node, err := nodeRef(pm.Node)
		if err != nil {
			return nil, err
		}
		tuple, err := typeRef(pm.Tuple)
		if err != nil {
			return nil, err
		}
		m := &Match{
			Node:    node,
			Tuple:   tuple,
			Fields:  make(map[*sod.Type][]FieldBinding),
			Sets:    make(map[*sod.Type]*SetBinding),
			pending: make(map[*sod.Type][]FieldBinding),
			Start:   pm.Start,
			End:     pm.End,
		}
		for _, pf := range pm.Fields {
			f, err := typeRef(pf.Type)
			if err != nil {
				return nil, err
			}
			for _, pb := range pf.Bindings {
				b := FieldBinding{Slot: pb.Slot}
				for _, nid := range pb.Path {
					n, err := nodeRef(nid)
					if err != nil {
						return nil, err
					}
					b.Path = append(b.Path, n)
				}
				m.Fields[f] = append(m.Fields[f], b)
			}
		}
		for _, ps := range pm.Sets {
			f, err := typeRef(ps.Type)
			if err != nil {
				return nil, err
			}
			sb := &SetBinding{Slots: ps.Slots, ElemSlots: ps.ElemSlots}
			if ps.Child >= 0 {
				c, err := nodeRef(ps.Child)
				if err != nil {
					return nil, err
				}
				sb.Child = c
			}
			if ps.ElemMatch != nil {
				em, err := restoreMatch(ps.ElemMatch)
				if err != nil {
					return nil, err
				}
				sb.ElemMatch = em
			}
			m.Sets[f] = sb
		}
		return m, nil
	}
	var matches []*Match
	for _, pm := range pms {
		m, err := restoreMatch(pm)
		if err != nil {
			return nil, nil, err
		}
		matches = append(matches, m)
	}
	return t, matches, nil
}
