package template

import (
	"fmt"
	"strings"
	"testing"

	"objectrunner/internal/eqclass"
	"objectrunner/internal/recognize"
	"objectrunner/internal/sod"
)

// fakeNode builds a template node with nSlots interior slots, all
// text-bearing, for direct structural tests of the group machinery.
func fakeNode(nSlots int) *Node {
	eq := &eqclass.EQ{ID: 1}
	// K = nSlots+1 separators.
	for i := 0; i <= nSlots; i++ {
		eq.Roles = append(eq.Roles, i)
		eq.Descs = append(eq.Descs, eqclass.Desc{Kind: eqclass.KindStartTag, Value: "div", Path: "p"})
	}
	n := &Node{EQ: eq}
	for i := 0; i < nSlots; i++ {
		n.Slots = append(n.Slots, eqclass.SlotProfile{Types: map[string]int{}, TextCount: 3})
	}
	return n
}

func TestCompletePeriodicGroupsSynthesizes(t *testing.T) {
	tpl := &Template{DominanceThreshold: 0.5}
	tuple := sod.MustParse(`tuple { a: date, b: price }`)
	fa, fb := tuple.Fields[0], tuple.Fields[1]
	n := fakeNode(9) // three periods of 3 slots
	mk := func(start int) *Match {
		m := tpl.newMatch(n, tuple)
		m.Start, m.End = start, start+3
		m.Fields[fa] = []FieldBinding{{Slot: start}}
		m.Fields[fb] = []FieldBinding{{Slot: start + 1}}
		return m
	}
	out := tpl.completePeriodicGroups(tuple, n, []*Match{mk(0), mk(3)})
	if len(out) != 3 {
		t.Fatalf("groups = %d, want 3 (one synthesized)", len(out))
	}
	g := out[2]
	if g.Start != 6 {
		t.Errorf("synthesized start = %d", g.Start)
	}
	if got := g.Fields[fa][0].Slot; got != 6 {
		t.Errorf("a slot = %d, want 6", got)
	}
	if got := g.Fields[fb][0].Slot; got != 7 {
		t.Errorf("b slot = %d, want 7", got)
	}
}

func TestCompletePeriodicGroupsRefusesIrregularSpacing(t *testing.T) {
	tpl := &Template{DominanceThreshold: 0.5}
	tuple := sod.MustParse(`tuple { a: date }`)
	fa := tuple.Fields[0]
	n := fakeNode(10)
	mk := func(start, end int) *Match {
		m := tpl.newMatch(n, tuple)
		m.Start, m.End = start, end
		m.Fields[fa] = []FieldBinding{{Slot: start}}
		return m
	}
	out := tpl.completePeriodicGroups(tuple, n, []*Match{mk(0, 3), mk(3, 7), mk(7, 10)})
	if len(out) != 3 {
		t.Errorf("irregular spacing must not synthesize: groups = %d", len(out))
	}
}

func TestShiftGroupFailsOutOfRange(t *testing.T) {
	tpl := &Template{DominanceThreshold: 0.5}
	tuple := sod.MustParse(`tuple { a: date }`)
	fa := tuple.Fields[0]
	n := fakeNode(4)
	base := tpl.newMatch(n, tuple)
	base.Start, base.End = 0, 2
	base.Fields[fa] = []FieldBinding{{Slot: 1}}
	if _, ok := tpl.shiftGroup(tuple, n, base, 4); ok {
		t.Error("shift beyond template accepted")
	}
	if g, ok := tpl.shiftGroup(tuple, n, base, 2); !ok || g.Fields[fa][0].Slot != 3 {
		t.Errorf("valid shift failed: %v %v", g, ok)
	}
}

// TestNestedSetChildBinding: set members live in their own repeated
// sub-elements (one <b> per author), so the set binds to a nested class.
func TestNestedSetChildBinding(t *testing.T) {
	rec := func(title string, authors ...string) string {
		var sb strings.Builder
		sb.WriteString(`<li><div class="t">` + title + `</div><ul class="au">`)
		for _, a := range authors {
			sb.WriteString("<li><b>" + a + "</b></li>")
		}
		sb.WriteString(`</ul></li>`)
		return sb.String()
	}
	authors := []string{"Jane Austen", "Neil Gaiman", "Terry Pratchett", "Abraham Verghese", "Fiona Stafford", "Mary Shelley"}
	titles := []string{"Alpha Book", "Beta Book", "Gamma Book", "Delta Book", "Epsilon Book", "Zeta Book", "Eta Book", "Theta Book"}
	var srcs []string
	k := 0
	for p := 0; p < 4; p++ {
		var sb strings.Builder
		sb.WriteString(`<html><body><ul class="res">`)
		for j := 0; j < 2+p%2; j++ {
			n := 1 + (k % 3)
			var as []string
			for x := 0; x < n; x++ {
				as = append(as, authors[(k+x)%len(authors)])
			}
			sb.WriteString(rec(titles[k%len(titles)], as...))
			k++
		}
		sb.WriteString(`</ul></body></html>`)
		srcs = append(srcs, sb.String())
	}
	recs := sparseDicts(map[string][]string{
		"title":  {"Alpha Book", "Beta Book", "Gamma Book", "Delta Book"},
		"author": {"Jane Austen", "Neil Gaiman", "Terry Pratchett"},
	})
	delete(recs, "price")
	tmpl, sample, _ := build(t, srcs, recs)
	s := sod.MustParse(`tuple { title: instanceOf(Title), authors: set(author: instanceOf(Author))+ }`)
	ms := tmpl.MatchSOD(s)
	if len(ms) == 0 {
		t.Fatalf("no match:\n%s", tmpl)
	}
	objs := ExtractAll(s, ms, sample[0])
	if len(objs) != 2 {
		for _, o := range objs {
			t.Logf("obj: %s", o)
		}
		t.Fatalf("objects = %d, want 2", len(objs))
	}
	// First record (k=0) has exactly one author.
	set := objs[0].Field("authors")
	if set == nil || len(set.Children) != 1 {
		t.Fatalf("authors of first record = %v", set)
	}
	if set.Children[0].Value != "Jane Austen" {
		t.Errorf("author = %q", set.Children[0].Value)
	}
	// Second record (k=1) has two authors.
	set2 := objs[1].Field("authors")
	if set2 == nil || len(set2.Children) != 2 {
		t.Fatalf("authors of second record = %v", set2)
	}
}

// TestSetOfTuples: a set whose element is itself a tuple (author name +
// year) exercises the recursive elem-tuple matching.
func TestSetOfTuples(t *testing.T) {
	rec := func(title string, pairs ...[2]string) string {
		var sb strings.Builder
		sb.WriteString(`<li><div class="t">` + title + `</div><ul class="au">`)
		for _, p := range pairs {
			sb.WriteString(`<li><b>` + p[0] + `</b><i>` + p[1] + `</i></li>`)
		}
		sb.WriteString(`</ul></li>`)
		return sb.String()
	}
	authors := []string{"Jane Austen", "Neil Gaiman", "Terry Pratchett", "Abraham Verghese", "Fiona Stafford", "Mary Shelley"}
	titles := []string{"Alpha Book", "Beta Book", "Gamma Book", "Delta Book", "Epsilon Book", "Zeta Book", "Eta Book", "Theta Book"}
	var srcs []string
	k := 0
	for p := 0; p < 4; p++ {
		var sb strings.Builder
		sb.WriteString(`<html><body><ul class="res">`)
		for j := 0; j < 2+p%2; j++ {
			n := 1 + (k % 3)
			var pairs [][2]string
			for x := 0; x < n; x++ {
				pairs = append(pairs, [2]string{authors[(k+x)%len(authors)], fmt.Sprintf("%d", 1990+(k+x)%20)})
			}
			sb.WriteString(rec(titles[k%len(titles)], pairs...))
			k++
		}
		sb.WriteString(`</ul></body></html>`)
		srcs = append(srcs, sb.String())
	}
	recs := sparseDicts(map[string][]string{
		"title":  {"Alpha Book", "Beta Book", "Gamma Book", "Delta Book"},
		"author": {"Jane Austen", "Neil Gaiman", "Terry Pratchett"},
	})
	delete(recs, "price")
	recs["year"] = mustYear()
	tmpl, sample, _ := build(t, srcs, recs)
	s := sod.MustParse(`tuple { title: instanceOf(Title), authors: set(tuple { author: instanceOf(Author), year: year })+ }`)
	ms := tmpl.MatchSOD(s)
	if len(ms) == 0 {
		t.Skipf("set-of-tuples did not match at this scale:\n%s", tmpl)
	}
	objs := ExtractAll(s, ms, sample[0])
	if len(objs) == 0 {
		t.Fatal("nothing extracted")
	}
	set := objs[0].Field("authors")
	if set == nil || len(set.Children) == 0 {
		t.Fatalf("no set members: %v", objs[0])
	}
	member := set.Children[0]
	if member.FieldValue("author") == "" {
		t.Errorf("tuple member missing author: %v", member)
	}
}

// mustYear builds the predefined year recognizer for the tests.
func mustYear() recognize.Recognizer { return recognize.NewYear() }
