// Package template implements ObjectRunner's template-construction and
// SOD-matching steps (paper §III.D): the hierarchy of valid equivalence
// classes becomes an annotated template tree; the canonical SOD is matched
// bottom-up against that tree; and only the matched regions are extracted
// from pages. It also provides the partial-matching test used to stop
// wrapper generation early (§III.E).
package template

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"objectrunner/internal/eqclass"
	"objectrunner/internal/sod"
)

// Node is one node of the annotated template tree: an equivalence class
// with its slot profiles and nested classes.
type Node struct {
	EQ       *eqclass.EQ
	Slots    []eqclass.SlotProfile
	Children []*Node
}

// Template is the annotated template tree of a source.
type Template struct {
	Roots []*Node
	// DominanceThreshold is the minimal share a type needs to dominate a
	// slot during matching.
	DominanceThreshold float64
}

// Build converts an analysis's class hierarchy into a template tree.
func Build(a *eqclass.Analysis) *Template {
	t := &Template{DominanceThreshold: 0.5}
	byEQ := make(map[*eqclass.EQ]*Node)
	for _, e := range a.EQs {
		byEQ[e] = &Node{EQ: e, Slots: a.SlotProfilesOf(e)}
	}
	for _, e := range a.EQs {
		n := byEQ[e]
		for _, c := range e.Children {
			n.Children = append(n.Children, byEQ[c])
		}
		if e.Parent == nil {
			t.Roots = append(t.Roots, n)
		}
	}
	return t
}

// String renders the template tree for diagnostics.
func (t *Template) String() string {
	var sb strings.Builder
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		indent := strings.Repeat("  ", depth)
		fmt.Fprintf(&sb, "%s%s\n", indent, n.EQ)
		for i, s := range n.Slots {
			d, share := s.Dominant()
			fmt.Fprintf(&sb, "%s  slot %d: type=%s(%.2f) text=%d children=%v\n", indent, i, d, share, s.TextCount, s.ChildEQs)
		}
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	for _, r := range t.Roots {
		rec(r, 0)
	}
	return sb.String()
}

// slotType returns the dominant type of slot i when its share passes the
// threshold and the observations have minimal support relative to the
// class's repetition count — a handful of stray annotations must not
// out-vote the dozens of instances sitting in a nested class.
func (t *Template) slotType(n *Node, i int) string {
	d, share := n.Slots[i].Dominant()
	if share < t.DominanceThreshold {
		return ""
	}
	total := 0
	for _, c := range n.Slots[i].Types {
		total += c
	}
	tuples := 0
	for _, tups := range n.EQ.Tuples {
		tuples += len(tups)
	}
	min := 2
	if m := tuples / 10; m > min {
		min = m
	}
	if total < min {
		return ""
	}
	return d
}

// SetBinding describes how a set field was matched: either to typed slots
// of the matched node (inline lists, e.g. authors inside one span), or to
// a nested child class whose tuples are the set members.
type SetBinding struct {
	// Slots are parent-node slot indices typed with the element type.
	Slots []int
	// Child is the nested node holding set members, with the recursive
	// match for tuple elements (ElemMatch) or the member slots for entity
	// elements (ElemSlots).
	Child     *Node
	ElemMatch *Match
	ElemSlots []int
}

// FieldBinding locates one atomic field in the template: a slot of the
// matched node (Path empty), or a slot of a class nested below it (Path
// lists the descent through nested classes — the running example's
// span.val holding a title inside the record's row div).
type FieldBinding struct {
	Path []*Node
	Slot int
}

// Match binds the canonical SOD's components to template positions: each
// atomic field to slot bindings, each set field to a SetBinding.
type Match struct {
	Node *Node
	// Tuple is the canonical tuple the bindings refer to; Fields and Sets
	// are keyed by its component types.
	Tuple  *sod.Type
	Fields map[*sod.Type][]FieldBinding
	Sets   map[*sod.Type]*SetBinding
	// Start and End delimit the slot range of this group (inclusive /
	// exclusive), for repeated-group extraction.
	Start, End int
	// pending holds secondary (non-dominant) bindings, applied at group
	// close only for required fields that stayed unbound.
	pending map[*sod.Type][]FieldBinding

	// Extraction caches, built lazily on first use: they depend only on
	// the match's bindings and tuple — never on the page — so the
	// serving path amortizes them across every extract. Matches are
	// handled exclusively by pointer after construction, and persistence
	// goes through PersistedMatch, so the sync.Once stays private and
	// un-serialized.
	cacheOnce  sync.Once
	ranksCache map[*Node]int
	exclCache  map[*Node]bool
	orderCache map[string]int
}

// extractCaches returns the page-independent extraction lookup tables,
// building them on first call. Safe for concurrent extracts.
func (m *Match) extractCaches() (ranks map[*Node]int, excl map[*Node]bool, order map[string]int) {
	m.cacheOnce.Do(func() {
		m.ranksCache = childRanks(m)
		m.exclCache = boundChildren(m)
		m.orderCache = fieldOrder(m.Tuple)
	})
	return m.ranksCache, m.exclCache, m.orderCache
}

// MatchSOD matches the canonical form of s against the template tree,
// top-down, returning every complete group match found. When a node
// matches, its descendants are not searched again (they already serve the
// match's set bindings).
func (t *Template) MatchSOD(s *sod.Type) []*Match {
	canon := sod.Canonicalize(s)
	tuple := asTuple(canon)
	var out []*Match
	// Post-order: the deepest class at which the tuple's components
	// complete wins — the record class, not the page class that exposes
	// the same types through its nested record iterator.
	var walk func(n *Node) bool
	walk = func(n *Node) bool {
		matched := false
		for _, c := range n.Children {
			if walk(c) {
				matched = true
			}
		}
		if matched {
			return true
		}
		ms := t.matchTupleOnNode(tuple, n)
		if len(ms) > 0 {
			out = append(out, ms...)
			return true
		}
		return false
	}
	for _, r := range t.Roots {
		walk(r)
	}
	return out
}

// asTuple normalizes degenerate SOD shapes (bare entity, bare set,
// disjunction) to a tuple for uniform matching.
func asTuple(s *sod.Type) *sod.Type {
	if s.Kind == sod.KindTuple {
		return s
	}
	return &sod.Type{Kind: sod.KindTuple, Name: s.Name, Fields: []*sod.Type{s}}
}

// matchTupleOnNode sweeps the node's slots left to right, collecting the
// tuple's components into groups; a group closes when it is complete and
// a component type repeats (the repeated-record case of "too regular"
// list pages). Incomplete groups are dropped.
func (t *Template) matchTupleOnNode(tuple *sod.Type, n *Node) []*Match {
	fields := resolveDisjunctions(tuple, n, t)
	atomsByName := make(map[string]*sod.Type)
	setsByElem := make(map[string]*sod.Type)
	for _, f := range fields {
		switch f.Kind {
		case sod.KindEntity:
			atomsByName[f.Name] = f
		case sod.KindSet:
			for _, name := range elemTypeNames(f.Elem) {
				setsByElem[name] = f
			}
		}
	}
	var out []*Match
	cur := t.newMatch(n, tuple)
	closeGroup := func(end int) {
		cur.End = end
		// Fallback: required fields left unbound take their secondary
		// (mixed-slot) bindings — the merged-attribute case.
		for _, f := range fields {
			if f.Kind == sod.KindEntity && !f.Optional && len(cur.Fields[f]) == 0 && len(cur.pending[f]) > 0 {
				cur.Fields[f] = cur.pending[f]
			}
		}
		if t.groupComplete(fields, cur, n) {
			out = append(out, cur)
		}
		cur = t.newMatch(n, tuple)
		cur.Start = end
	}
	// Sweep state: a repeated component signals the next record of a
	// "too regular" constant-count list. For sets, repetition means a
	// set slot appearing after atoms were bound past the previous set
	// slots (adjacent set slots belong to one record's split list).
	lastAtom, lastSet := -1, -1
	for i := range n.Slots {
		sawAtom := false
		for _, ty := range t.slotTypings(n, i) {
			if f, ok := atomsByName[ty.typ]; ok {
				if ty.secondary {
					cur.pending[f] = append(cur.pending[f], ty.binding)
					continue
				}
				sawAtom = true
				if len(cur.Fields[f]) > 0 && t.groupComplete(fields, cur, n) {
					closeGroup(i)
					lastAtom, lastSet = -1, -1
				}
				cur.Fields[f] = append(cur.Fields[f], ty.binding)
				lastAtom = i
				continue
			}
			if f, ok := setsByElem[ty.typ]; ok && len(ty.binding.Path) == 0 {
				if cur.Sets[f] != nil && lastAtom > lastSet && t.groupComplete(fields, cur, n) {
					closeGroup(i)
					lastAtom, lastSet = -1, -1
				}
				b := cur.Sets[f]
				if b == nil {
					b = &SetBinding{}
					cur.Sets[f] = b
				}
				b.Slots = append(b.Slots, i)
				lastSet = i
			}
		}
		if !sawAtom {
			// A child class nested here may serve a set field.
			boundNew := t.bindChildSets(fields, cur, n, i, lastAtom > lastSet)
			if boundNew {
				lastSet = i
			}
		}
	}
	closeGroup(len(n.Slots))
	return t.completePeriodicGroups(tuple, n, out)
}

// completePeriodicGroups handles "too regular" constant-count lists: when
// every page shows the same number of records, the records merge into one
// class whose slots repeat with a fixed period, and sparse dictionaries
// may fail to type some repetition's slots. Given at least two complete,
// equally-spaced groups, the remaining periods are synthesized by
// shifting the first group's bindings.
func (t *Template) completePeriodicGroups(tuple *sod.Type, n *Node, out []*Match) []*Match {
	if len(out) < 2 {
		return out
	}
	period := out[1].Start - out[0].Start
	if period <= 0 {
		return out
	}
	for i := 2; i < len(out); i++ {
		if out[i].Start-out[i-1].Start != period {
			return out
		}
	}
	covered := make(map[int]bool, len(out))
	for _, g := range out {
		covered[g.Start] = true
	}
	base := out[0]
	for start := base.Start + period; start < len(n.Slots); start += period {
		if covered[start] {
			continue
		}
		g, ok := t.shiftGroup(tuple, n, base, start-base.Start)
		if !ok {
			break
		}
		out = append(out, g)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// shiftGroup clones a group's bindings displaced by delta slots; it fails
// when a shifted slot falls outside the template or carries no data.
func (t *Template) shiftGroup(tuple *sod.Type, n *Node, base *Match, delta int) (*Match, bool) {
	g := t.newMatch(n, tuple)
	g.Start, g.End = base.Start+delta, base.End+delta
	anyData := false
	for f, bs := range base.Fields {
		for _, b := range bs {
			if len(b.Path) == 0 {
				slot := b.Slot + delta
				if slot >= len(n.Slots) {
					return nil, false
				}
				if n.Slots[slot].TextCount > 0 {
					anyData = true
				}
				g.Fields[f] = append(g.Fields[f], FieldBinding{Slot: slot})
				continue
			}
			// Child binding: rebind to a same-signature child nested at
			// the shifted slot.
			outer := b.Path[0].EQ.ParentSlot + delta
			if outer >= len(n.Slots) {
				return nil, false
			}
			sig := nodeDescSig(b.Path[0])
			rebound := false
			for _, c := range n.Children {
				if c.EQ.ParentSlot == outer && nodeDescSig(c) == sig {
					nb := b
					nb.Path = append([]*Node{c}, b.Path[1:]...)
					g.Fields[f] = append(g.Fields[f], nb)
					rebound, anyData = true, true
					break
				}
			}
			if !rebound {
				// Fall back to the shifted outer slot's direct text.
				g.Fields[f] = append(g.Fields[f], FieldBinding{Slot: outer})
			}
		}
	}
	for f, sb := range base.Sets {
		nb := &SetBinding{}
		for _, s := range sb.Slots {
			if s+delta >= len(n.Slots) {
				return nil, false
			}
			nb.Slots = append(nb.Slots, s+delta)
			if n.Slots[s+delta].TextCount > 0 {
				anyData = true
			}
		}
		if sb.Child != nil {
			outer := sb.Child.EQ.ParentSlot + delta
			if outer >= len(n.Slots) {
				return nil, false
			}
			sig := nodeDescSig(sb.Child)
			for _, c := range n.Children {
				if c.EQ.ParentSlot == outer && nodeDescSig(c) == sig {
					nb.Child, nb.ElemSlots, nb.ElemMatch = c, sb.ElemSlots, sb.ElemMatch
					anyData = true
					break
				}
			}
			if nb.Child == nil && len(nb.Slots) == 0 {
				nb.Slots = append(nb.Slots, outer)
			}
		}
		g.Sets[f] = nb
	}
	if !anyData {
		return nil, false
	}
	return g, true
}

// nodeDescSig is the structural signature of a node's class separators.
func nodeDescSig(n *Node) string {
	var sb strings.Builder
	for _, d := range n.EQ.Descs {
		sb.WriteString(d.Sig())
		sb.WriteByte(' ')
	}
	return sb.String()
}

// slotTyping is one typed position reachable from a slot: directly, or
// through classes nested in it. Secondary typings are substantial but
// non-dominant types of mixed slots (two attributes rendered in one text
// node): they serve as fallback bindings when a group would otherwise
// stay incomplete, yielding the paper's "partially correct" outcomes.
type slotTyping struct {
	typ       string
	binding   FieldBinding
	secondary bool
}

// slotTypings collects the entity types observable at slot i of node n:
// the slot's own dominant type (plus substantial secondary types), and
// recursively the typed slots of the classes nested there. Direct
// typings come first.
func (t *Template) slotTypings(n *Node, i int) []slotTyping {
	var out []slotTyping
	dominant, _ := n.Slots[i].Dominant()
	if st := t.slotType(n, i); st != "" {
		out = append(out, slotTyping{typ: st, binding: FieldBinding{Slot: i}})
	}
	// Secondary types: a non-trivial share of the slot's observations
	// (sparse dictionaries legitimately witness only a fraction of a
	// merged attribute's values).
	total := 0
	for _, c := range n.Slots[i].Types {
		total += c
	}
	if total > 0 {
		names := make([]string, 0, len(n.Slots[i].Types))
		for ty := range n.Slots[i].Types {
			names = append(names, ty)
		}
		sort.Strings(names)
		for _, ty := range names {
			if ty == dominant {
				continue
			}
			c := n.Slots[i].Types[ty]
			if c >= 2 && float64(c)/float64(total) >= 0.08 {
				out = append(out, slotTyping{typ: ty, binding: FieldBinding{Slot: i}, secondary: true})
			}
		}
	}
	for _, c := range n.Children {
		if c.EQ.ParentSlot != i {
			continue
		}
		for j := range c.Slots {
			for _, ty := range t.slotTypings(c, j) {
				ty.binding.Path = append([]*Node{c}, ty.binding.Path...)
				out = append(out, ty)
			}
		}
	}
	return out
}

func (t *Template) newMatch(n *Node, tuple *sod.Type) *Match {
	return &Match{
		Node:    n,
		Tuple:   tuple,
		Fields:  make(map[*sod.Type][]FieldBinding),
		Sets:    make(map[*sod.Type]*SetBinding),
		pending: make(map[*sod.Type][]FieldBinding),
	}
}

// elemTypeNames lists the entity-type names by which a set's element can
// be recognized in slot profiles: the element's own name for entity
// elements, the atomic components' names for tuple elements.
func elemTypeNames(elem *sod.Type) []string {
	if elem.Kind == sod.KindEntity {
		return []string{elem.Name}
	}
	var out []string
	for _, e := range elem.EntityTypes() {
		out = append(out, e.Name)
	}
	return out
}

// bindChildSets tries to bind set fields to child classes nested in slot
// i of node n, reporting whether a binding was added.
func (t *Template) bindChildSets(fields []*sod.Type, cur *Match, n *Node, i int, _ bool) bool {
	bound := false
	for _, f := range fields {
		if f.Kind != sod.KindSet || cur.Sets[f] != nil {
			continue
		}
		for _, c := range n.Children {
			if c.EQ.ParentSlot != i {
				continue
			}
			if b := t.matchSetOnChild(f, c); b != nil {
				cur.Sets[f] = b
				bound = true
				break
			}
		}
	}
	return bound
}

// matchSetOnChild checks whether a nested class can hold the set's
// members: entity elements need a slot dominated by the element type;
// tuple elements need a recursive tuple match.
func (t *Template) matchSetOnChild(set *sod.Type, c *Node) *SetBinding {
	if set.Elem.Kind == sod.KindEntity {
		var slots []int
		for i := range c.Slots {
			if t.slotType(c, i) == set.Elem.Name {
				slots = append(slots, i)
			}
		}
		if len(slots) > 0 {
			return &SetBinding{Child: c, ElemSlots: slots}
		}
		return nil
	}
	elemTuple := asTuple(sod.Canonicalize(set.Elem))
	ms := t.matchTupleOnNode(elemTuple, c)
	if len(ms) > 0 {
		return &SetBinding{Child: c, ElemMatch: ms[0]}
	}
	return nil
}

// groupComplete reports whether every required component of the tuple is
// bound in the group. Pending secondary bindings count — they are applied
// at group close.
func (t *Template) groupComplete(fields []*sod.Type, m *Match, n *Node) bool {
	complete := false
	for _, f := range fields {
		switch f.Kind {
		case sod.KindEntity:
			if len(m.Fields[f]) == 0 && len(m.pending[f]) == 0 {
				if !f.Optional {
					return false
				}
				continue
			}
			complete = true
		case sod.KindSet:
			b := m.Sets[f]
			if b == nil {
				// Sets may also bind to children nested inside the
				// group's slot range even when no typed slot triggered
				// binding during the sweep.
				if !f.Optional && f.Mult.Min > 0 {
					return false
				}
				continue
			}
			complete = true
		}
	}
	return complete
}

// resolveDisjunctions replaces each disjunction component with whichever
// alternative the template can support (the first alternative whose
// entity types appear among the node's slot types), keeping other
// components as-is.
func resolveDisjunctions(tuple *sod.Type, n *Node, t *Template) []*sod.Type {
	present := make(map[string]bool)
	for i := range n.Slots {
		if st := t.slotType(n, i); st != "" {
			present[st] = true
		}
	}
	var out []*sod.Type
	for _, f := range tuple.Fields {
		if f.Kind != sod.KindDisjunction {
			out = append(out, f)
			continue
		}
		chosen := f.Fields[0]
		for _, alt := range f.Fields {
			ok := true
			for _, e := range alt.EntityTypes() {
				if !present[e.Name] {
					ok = false
					break
				}
			}
			if ok {
				chosen = alt
				break
			}
		}
		cp := chosen.Clone()
		cp.Optional = f.Optional
		out = append(out, cp)
	}
	return out
}

// PartialMatchPossible implements the early-stopping test of §III.E:
// during wrapper generation there must exist at least one partial
// matching of the SOD into the current template tree — part of the SOD
// matches, and for each missing atomic type some annotated token of that
// type remains available. Annotated types are supplied by the caller
// (from the sample's annotations).
func PartialMatchPossible(s *sod.Type, a *eqclass.Analysis, annotatedTypes map[string]bool) bool {
	canon := sod.Canonicalize(s)
	t := Build(a)
	// Types visible as dominated slots anywhere in the tree.
	slotTypes := make(map[string]bool)
	var walk func(n *Node)
	walk = func(n *Node) {
		for i := range n.Slots {
			if st := t.slotType(n, i); st != "" {
				slotTypes[st] = true
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range t.Roots {
		walk(r)
	}
	matched := 0
	for _, e := range canon.EntityTypes() {
		switch {
		case slotTypes[e.Name]:
			matched++
		case annotatedTypes[e.Name]:
			// Unmatched but still completable later.
		case e.Optional:
			// Missing optional components never block.
		default:
			return false
		}
	}
	// At least part of the SOD must match once slots exist at all; before
	// any class with slots is found, annotations alone keep hope alive.
	if len(slotTypes) == 0 {
		for _, e := range canon.EntityTypes() {
			if annotatedTypes[e.Name] {
				return true
			}
			if !e.Optional {
				return false
			}
		}
		return true
	}
	return matched > 0
}
