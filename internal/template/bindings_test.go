package template

import (
	"fmt"
	"strings"
	"testing"

	"objectrunner/internal/annotate"
	"objectrunner/internal/clean"
	"objectrunner/internal/eqclass"
	"objectrunner/internal/recognize"
	"objectrunner/internal/sod"
)

// build runs the front of the pipeline over the sources and returns the
// template plus the annotated sample tokens.
func build(t *testing.T, srcs []string, recs map[string]recognize.Recognizer) (*Template, [][]*eqclass.Occurrence, *eqclass.Analysis) {
	t.Helper()
	var sample [][]*eqclass.Occurrence
	for i, src := range srcs {
		page := clean.Page(src)
		pa := annotate.AnnotatePage(page, recs)
		sample = append(sample, eqclass.TokenizePage(page, pa, i))
	}
	a := eqclass.Analyze(sample, eqclass.DefaultParams(), nil)
	return Build(a), sample, a
}

func sparseDicts(coverage map[string][]string) map[string]recognize.Recognizer {
	out := make(map[string]recognize.Recognizer)
	for name, vals := range coverage {
		d := recognize.NewDictionary("instanceOf(" + name + ")")
		for _, v := range vals {
			d.Add(v, 0.9)
		}
		out[name] = d
	}
	out["price"] = recognize.NewPrice()
	return out
}

// TestDeepBindingThroughNestedClasses reproduces the labelled-rows layout
// where sparsely annotated values live inside value spans: atomic fields
// must bind through the nested classes and extract correctly.
func TestDeepBindingThroughNestedClasses(t *testing.T) {
	rec := func(brand, price string) string {
		return `<div class="rec">` +
			`<div class="row-brand"><span class="lbl">Model:</span> <span class="val">` + brand + `</span></div>` +
			`<div class="row-price"><span class="lbl">Price:</span> <span class="val">` + price + `</span></div>` +
			`</div>`
	}
	brands := []string{"Toyota Camry", "Honda Accord", "Ford Fusion", "Mazda 6", "Kia Optima", "Audi A4", "Volvo S60", "Jaguar XE"}
	var srcs []string
	k := 0
	for p := 0; p < 4; p++ {
		var sb strings.Builder
		sb.WriteString(`<html><body><div class="list">`)
		for j := 0; j < 2+p%2; j++ {
			sb.WriteString(rec(brands[k%len(brands)], fmt.Sprintf("$%d,%03d", 10+k, 100+k)))
			k++
		}
		sb.WriteString(`</div></body></html>`)
		srcs = append(srcs, sb.String())
	}
	// Only a quarter of the brands are known.
	recs := sparseDicts(map[string][]string{"brand": {"Toyota Camry", "Mazda 6"}})
	tmpl, sample, _ := build(t, srcs, recs)
	s := sod.MustParse(`tuple { brand: instanceOf(Brand), price: price }`)
	ms := tmpl.MatchSOD(s)
	if len(ms) == 0 {
		t.Fatalf("no match:\n%s", tmpl)
	}
	objs := ExtractAll(s, ms, sample[0])
	if len(objs) != 2 {
		for _, o := range objs {
			t.Logf("obj: %s", o)
		}
		t.Fatalf("objects = %d, want 2", len(objs))
	}
	if got := objs[0].FieldValue("brand"); got != "Toyota Camry" {
		t.Errorf("brand = %q", got)
	}
	if got := objs[1].FieldValue("brand"); got != "Honda Accord" {
		t.Errorf("brand = %q (unknown value must still extract)", got)
	}
}

// TestMergedFieldsSecondaryBinding: two attributes rendered in one text
// node bind to the same slot (the dominant one directly, the other via
// the secondary fallback), yielding partially-correct values rather than
// a failed match.
func TestMergedFieldsSecondaryBinding(t *testing.T) {
	rec := func(brand, price string) string {
		return `<li><div class="f">` + brand + ` ` + price + `</div></li>`
	}
	brands := []string{"Toyota Camry", "Honda Accord", "Ford Fusion", "Mazda 6", "Kia Optima", "Audi A4", "Volvo S60", "Jaguar XE"}
	var srcs []string
	k := 0
	for p := 0; p < 8; p++ {
		var sb strings.Builder
		sb.WriteString(`<html><body><ul>`)
		for j := 0; j < 3+p%2; j++ {
			sb.WriteString(rec(brands[k%len(brands)], fmt.Sprintf("$%d,%03d", 10+k, 100+k)))
			k++
		}
		sb.WriteString(`</ul></body></html>`)
		srcs = append(srcs, sb.String())
	}
	recs := sparseDicts(map[string][]string{"brand": {"Toyota Camry", "Honda Accord", "Ford Fusion", "Mazda 6"}})
	tmpl, sample, _ := build(t, srcs, recs)
	s := sod.MustParse(`tuple { brand: instanceOf(Brand), price: price }`)
	ms := tmpl.MatchSOD(s)
	if len(ms) == 0 {
		t.Fatalf("merged source did not match:\n%s", tmpl)
	}
	objs := ExtractAll(s, ms, sample[0])
	if len(objs) == 0 {
		t.Fatal("nothing extracted")
	}
	// Both fields carry the merged text: partially correct by design.
	found := false
	for _, o := range objs {
		if strings.Contains(o.FieldValue("brand"), "Honda Accord") {
			found = true
			if !strings.Contains(o.FieldValue("price"), "$11,101") {
				t.Errorf("price = %q, want merged text containing $11,101", o.FieldValue("price"))
			}
		}
	}
	if !found {
		for _, o := range objs {
			t.Logf("obj: %s", o)
		}
		t.Error("no object carries the merged Honda Accord record")
	}
}

// TestOrdinalSeparatorsOnClasslessRecords: structurally identical divs
// annotated as different types must extract by learned ordinal on a page
// never seen during inference.
func TestOrdinalSeparatorsOnClasslessRecords(t *testing.T) {
	rec := func(brand, price string) string {
		return `<li><div>` + brand + `</div><div>` + price + `</div></li>`
	}
	brands := []string{"Toyota Camry", "Honda Accord", "Ford Fusion", "Mazda 6", "Kia Optima", "Audi A4"}
	var srcs []string
	k := 0
	for p := 0; p < 4; p++ {
		var sb strings.Builder
		sb.WriteString(`<html><body><ul>`)
		for j := 0; j < 2+p%2; j++ {
			sb.WriteString(rec(brands[k%len(brands)], fmt.Sprintf("$%d,%03d", 10+k, 100+k)))
			k++
		}
		sb.WriteString(`</ul></body></html>`)
		srcs = append(srcs, sb.String())
	}
	recs := sparseDicts(map[string][]string{"brand": {"Toyota Camry", "Ford Fusion", "Kia Optima"}})
	tmpl, _, a := build(t, srcs, recs)
	s := sod.MustParse(`tuple { brand: instanceOf(Brand), price: price }`)
	ms := tmpl.MatchSOD(s)
	if len(ms) == 0 {
		t.Fatalf("no match:\n%s", tmpl)
	}
	unseen := clean.Page(`<html><body><ul>` +
		rec("Tesla Model 3", "$39,990") + rec("Genesis G70", "$41,000") +
		`</ul></body></html>`)
	toks := eqclass.TokenizePage(unseen, nil, 0)
	eqclass.LookupSyms(a.Table(), toks)
	objs := ExtractAll(s, ms, toks)
	if len(objs) != 2 {
		for _, o := range objs {
			t.Logf("obj: %s", o)
		}
		t.Fatalf("objects = %d, want 2", len(objs))
	}
	if got := objs[0].FieldValue("brand"); got != "Tesla Model 3" {
		t.Errorf("brand = %q (ordinal separator misbound)", got)
	}
	if got := objs[0].FieldValue("price"); got != "$39,990" {
		t.Errorf("price = %q", got)
	}
}
