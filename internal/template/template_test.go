package template

import (
	"fmt"
	"strings"
	"testing"

	"objectrunner/internal/annotate"
	"objectrunner/internal/clean"
	"objectrunner/internal/eqclass"
	"objectrunner/internal/recognize"
	"objectrunner/internal/sod"
)

func concertRecs() map[string]recognize.Recognizer {
	artists := recognize.NewDictionary("instanceOf(Artist)")
	artists.AddAll([]recognize.Entry{
		{Value: "Metallica", Confidence: 0.9}, {Value: "Madonna", Confidence: 0.95},
		{Value: "Muse", Confidence: 0.85}, {Value: "Coldplay", Confidence: 0.9},
	})
	theaters := recognize.NewDictionary("instanceOf(Theater)")
	theaters.AddAll([]recognize.Entry{
		{Value: "Madison Square Garden", Confidence: 0.9}, {Value: "The Town Hall", Confidence: 0.8},
		{Value: "B.B King Blues and Grill", Confidence: 0.75}, {Value: "Bowery Ballroom", Confidence: 0.85},
	})
	return map[string]recognize.Recognizer{
		"artist":  artists,
		"theater": theaters,
		"date":    recognize.NewDate(),
	}
}

func concertSOD() *sod.Type {
	return sod.MustParse(`tuple {
		artist: instanceOf(Artist)
		date: date
		theater: instanceOf(Theater)
	}`)
}

// concertPage builds a list page with the given records.
func concertPage(records [][3]string) string {
	var sb strings.Builder
	sb.WriteString("<html><body><ul>")
	for _, r := range records {
		fmt.Fprintf(&sb, `<li><div>%s</div><div>%s</div><div><a>%s</a></div></li>`, r[0], r[1], r[2])
	}
	sb.WriteString("</ul></body></html>")
	return sb.String()
}

// analyzeConcerts runs the full front of the pipeline over the given
// sources and returns the analysis and the annotated token sequences.
func analyzeConcerts(t *testing.T, srcs []string, recs map[string]recognize.Recognizer) *eqclass.Analysis {
	t.Helper()
	var pages [][]*eqclass.Occurrence
	for i, src := range srcs {
		page := clean.Page(src)
		pa := annotate.AnnotatePage(page, recs)
		pages = append(pages, eqclass.TokenizePage(page, pa, i))
	}
	return eqclass.Analyze(pages, eqclass.DefaultParams(), nil)
}

func concertSources() []string {
	return []string{
		concertPage([][3]string{
			{"Metallica", "Monday May 11, 8:00pm", "Madison Square Garden"},
			{"Madonna", "Saturday May 29 7:00p", "The Town Hall"},
		}),
		concertPage([][3]string{
			{"Muse", "Friday June 19 7:00p", "B.B King Blues and Grill"},
			{"Coldplay", "Saturday August 8, 2010 8:00pm", "Bowery Ballroom"},
			{"Metallica", "Monday May 11, 8:00pm", "The Town Hall"},
		}),
		concertPage([][3]string{
			{"Madonna", "Saturday May 29 7:00p", "Madison Square Garden"},
		}),
	}
}

func TestBuildTemplateTree(t *testing.T) {
	a := analyzeConcerts(t, concertSources(), concertRecs())
	tmpl := Build(a)
	if len(tmpl.Roots) == 0 {
		t.Fatalf("empty template tree:\n%s", tmpl)
	}
}

func TestMatchConcertSOD(t *testing.T) {
	a := analyzeConcerts(t, concertSources(), concertRecs())
	tmpl := Build(a)
	ms := tmpl.MatchSOD(concertSOD())
	if len(ms) == 0 {
		t.Fatalf("no match; template:\n%s", tmpl)
	}
	m := ms[0]
	if len(m.Fields) != 3 {
		t.Errorf("bound %d fields, want 3; match=%+v", len(m.Fields), m.Fields)
	}
}

func TestExtractConcerts(t *testing.T) {
	srcs := concertSources()
	a := analyzeConcerts(t, srcs, concertRecs())
	tmpl := Build(a)
	ms := tmpl.MatchSOD(concertSOD())
	if len(ms) == 0 {
		t.Fatalf("no match; template:\n%s", tmpl)
	}
	// Extract from page 1 (three records).
	page := clean.Page(srcs[1])
	toks := eqclass.TokenizePage(page, nil, 0)
	eqclass.LookupSyms(a.Table(), toks)
	objs := ExtractAll(concertSOD(), ms, toks)
	if len(objs) != 3 {
		for _, o := range objs {
			t.Logf("obj: %s", o)
		}
		t.Fatalf("extracted %d objects, want 3", len(objs))
	}
	first := objs[0]
	if got := first.FieldValue("artist"); got != "Muse" {
		t.Errorf("artist = %q", got)
	}
	if got := first.FieldValue("theater"); got != "B.B King Blues and Grill" {
		t.Errorf("theater = %q", got)
	}
	if got := first.FieldValue("date"); !strings.Contains(got, "June 19") {
		t.Errorf("date = %q", got)
	}
}

func TestExtractOnUnseenPage(t *testing.T) {
	srcs := concertSources()
	a := analyzeConcerts(t, srcs, concertRecs())
	ms := Build(a).MatchSOD(concertSOD())
	if len(ms) == 0 {
		t.Fatal("no match")
	}
	// A page never seen during inference, with unknown values.
	unseen := concertPage([][3]string{
		{"The Strokes", "Friday July 2, 9:00pm", "Terminal 5"},
		{"Arcade Fire", "Sunday July 4, 7:30pm", "Radio City"},
	})
	page := clean.Page(unseen)
	toks := eqclass.TokenizePage(page, nil, 0)
	eqclass.LookupSyms(a.Table(), toks)
	objs := ExtractAll(concertSOD(), ms, toks)
	if len(objs) != 2 {
		t.Fatalf("extracted %d objects from unseen page, want 2", len(objs))
	}
	if got := objs[0].FieldValue("artist"); got != "The Strokes" {
		t.Errorf("artist = %q (dictionary coverage must not matter at extraction time)", got)
	}
}

func TestOptionalFieldMissingFromSource(t *testing.T) {
	// The SOD declares an optional address; the source has none. The
	// match must still succeed.
	sodT := sod.MustParse(`tuple {
		artist: instanceOf(Artist)
		date: date
		theater: instanceOf(Theater)
		address: address ?
	}`)
	a := analyzeConcerts(t, concertSources(), concertRecs())
	ms := Build(a).MatchSOD(sodT)
	if len(ms) == 0 {
		t.Fatal("optional-field SOD did not match source lacking the field")
	}
	page := clean.Page(concertSources()[0])
	toks := eqclass.TokenizePage(page, nil, 0)
	eqclass.LookupSyms(a.Table(), toks)
	objs := ExtractAll(sodT, ms, toks)
	if len(objs) != 2 {
		t.Fatalf("extracted %d, want 2", len(objs))
	}
	if got := objs[0].FieldValue("address"); got != "" {
		t.Errorf("address = %q, want empty", got)
	}
}

func bookRecs() map[string]recognize.Recognizer {
	titles := recognize.NewDictionary("instanceOf(BookTitle)")
	titles.AddAll([]recognize.Entry{
		{Value: "Pride and Prejudice", Confidence: 0.9},
		{Value: "Cutting for Stone", Confidence: 0.9},
		{Value: "Norse Mythology", Confidence: 0.9},
		{Value: "Good Omens", Confidence: 0.9},
	})
	authors := recognize.NewDictionary("instanceOf(Author)")
	authors.AddAll([]recognize.Entry{
		{Value: "Jane Austen", Confidence: 0.9}, {Value: "Fiona Stafford", Confidence: 0.85},
		{Value: "Abraham Verghese", Confidence: 0.9}, {Value: "Neil Gaiman", Confidence: 0.9},
		{Value: "Terry Pratchett", Confidence: 0.9},
	})
	return map[string]recognize.Recognizer{
		"title":  titles,
		"author": authors,
		"price":  recognize.NewPrice(),
	}
}

func bookSOD() *sod.Type {
	return sod.MustParse(`tuple {
		title: instanceOf(BookTitle)
		price: price
		authors: set(author: instanceOf(Author))+
	}`)
}

func bookPage(books [][3]string) string {
	var sb strings.Builder
	sb.WriteString("<html><body><ul>")
	for _, b := range books {
		fmt.Fprintf(&sb, `<li><div>%s</div><span>by %s</span><em>%s</em></li>`, b[0], b[1], b[2])
	}
	sb.WriteString("</ul></body></html>")
	return sb.String()
}

func TestMatchAndExtractAuthorSet(t *testing.T) {
	srcs := []string{
		bookPage([][3]string{
			{"Pride and Prejudice", "Jane Austen and Fiona Stafford", "$9.99"},
			{"Cutting for Stone", "Abraham Verghese", "$12.50"},
		}),
		bookPage([][3]string{
			{"Norse Mythology", "Neil Gaiman", "$14.00"},
			{"Good Omens", "Neil Gaiman, Terry Pratchett", "$11.25"},
		}),
		bookPage([][3]string{
			{"Pride and Prejudice", "Jane Austen", "$8.75"},
		}),
	}
	a := analyzeConcerts(t, srcs, bookRecs())
	tmpl := Build(a)
	ms := tmpl.MatchSOD(bookSOD())
	if len(ms) == 0 {
		t.Fatalf("book SOD did not match; template:\n%s", tmpl)
	}
	page := clean.Page(srcs[0])
	toks := eqclass.TokenizePage(page, nil, 0)
	eqclass.LookupSyms(a.Table(), toks)
	objs := ExtractAll(bookSOD(), ms, toks)
	if len(objs) != 2 {
		for _, o := range objs {
			t.Logf("obj: %s", o)
		}
		t.Fatalf("extracted %d books, want 2", len(objs))
	}
	authors := objs[0].Field("authors")
	if authors == nil {
		t.Fatalf("no authors set in %s", objs[0])
	}
	if len(authors.Children) != 2 {
		t.Fatalf("authors = %s, want 2 members", authors)
	}
	if authors.Children[0].Value != "by Jane Austen" && authors.Children[0].Value != "Jane Austen" {
		t.Errorf("first author = %q", authors.Children[0].Value)
	}
}

func TestTooRegularListPagesConstantCount(t *testing.T) {
	// Every page shows exactly 2 records: there is no frequency signal
	// that the list repeats (the case where RoadRunner fails, §IV.B).
	// The SOD-guided matcher must still produce one object per record,
	// via repeated-group matching.
	srcs := []string{
		concertPage([][3]string{
			{"Metallica", "Monday May 11, 8:00pm", "Madison Square Garden"},
			{"Madonna", "Saturday May 29 7:00p", "The Town Hall"},
		}),
		concertPage([][3]string{
			{"Muse", "Friday June 19 7:00p", "B.B King Blues and Grill"},
			{"Coldplay", "Saturday August 8, 2010 8:00pm", "Bowery Ballroom"},
		}),
		concertPage([][3]string{
			{"Madonna", "Saturday May 29 7:00p", "Madison Square Garden"},
			{"Metallica", "Monday May 11, 8:00pm", "The Town Hall"},
		}),
	}
	a := analyzeConcerts(t, srcs, concertRecs())
	tmpl := Build(a)
	ms := tmpl.MatchSOD(concertSOD())
	if len(ms) == 0 {
		t.Fatalf("no match on constant-count list; template:\n%s", tmpl)
	}
	page := clean.Page(srcs[0])
	toks := eqclass.TokenizePage(page, nil, 0)
	eqclass.LookupSyms(a.Table(), toks)
	objs := ExtractAll(concertSOD(), ms, toks)
	if len(objs) != 2 {
		for _, o := range objs {
			t.Logf("obj: %s", o)
		}
		t.Fatalf("extracted %d objects, want 2 (repeated groups)", len(objs))
	}
	if objs[0].FieldValue("artist") == objs[1].FieldValue("artist") {
		t.Error("both objects have the same artist — groups not separated")
	}
}

func TestPartialMatchPossible(t *testing.T) {
	a := analyzeConcerts(t, concertSources(), concertRecs())
	anns := map[string]bool{"artist": true, "date": true, "theater": true}
	if !PartialMatchPossible(concertSOD(), a, anns) {
		t.Error("full match should imply partial match")
	}
	// An SOD wanting a type that never occurs anywhere is hopeless.
	bad := sod.MustParse(`tuple { artist: instanceOf(Artist), isbn: isbn }`)
	if PartialMatchPossible(bad, a, map[string]bool{"artist": true}) {
		t.Error("SOD with unannotated, unmatched required type should fail")
	}
	// But annotations keep hope alive.
	if !PartialMatchPossible(bad, a, map[string]bool{"artist": true, "isbn": true}) {
		t.Error("annotated types should keep the partial match possible")
	}
}

func TestMatchFailsOnIrrelevantSource(t *testing.T) {
	srcs := []string{
		`<html><body><div>about us</div><div>our services</div></body></html>`,
		`<html><body><div>contact</div><div>terms</div></body></html>`,
		`<html><body><div>jobs</div><div>press</div></body></html>`,
	}
	a := analyzeConcerts(t, srcs, concertRecs())
	ms := Build(a).MatchSOD(concertSOD())
	if len(ms) != 0 {
		t.Errorf("irrelevant source matched: %d matches", len(ms))
	}
}

func TestDisjunctionResolution(t *testing.T) {
	sodT := sod.MustParse(`tuple {
		artist: instanceOf(Artist)
		when: oneof(date: date | year: year)
	}`)
	srcs := []string{
		concertPage([][3]string{{"Metallica", "Monday May 11, 8:00pm", "Madison Square Garden"}, {"Madonna", "Saturday May 29 7:00p", "The Town Hall"}}),
		concertPage([][3]string{{"Muse", "Friday June 19 7:00p", "B.B King Blues and Grill"}, {"Coldplay", "Saturday August 8, 2010 8:00pm", "Bowery Ballroom"}}),
		concertPage([][3]string{{"Madonna", "Saturday May 29 7:00p", "Madison Square Garden"}}),
	}
	a := analyzeConcerts(t, srcs, concertRecs())
	ms := Build(a).MatchSOD(sodT)
	if len(ms) == 0 {
		t.Fatal("disjunction SOD did not match")
	}
	// The date alternative must be bound.
	found := false
	for f := range ms[0].Fields {
		if f.Name == "date" {
			found = true
		}
	}
	if !found {
		t.Errorf("date alternative not bound: %v", ms[0].Fields)
	}
}

func TestSplitList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Jane Austen and Fiona Stafford", []string{"Jane Austen", "Fiona Stafford"}},
		{"Hamilton Wright Mabie, Mary Hamilton Frey", []string{"Hamilton Wright Mabie", "Mary Hamilton Frey"}},
		{"Abraham Verghese", []string{"Abraham Verghese"}},
		{"A, B and C", []string{"A", "B", "C"}},
		{"", nil},
		{" , ", nil},
	}
	for _, c := range cases {
		got := SplitList(c.in)
		if len(got) != len(c.want) {
			t.Errorf("SplitList(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("SplitList(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestTemplateStringDiagnostics(t *testing.T) {
	a := analyzeConcerts(t, concertSources(), concertRecs())
	s := Build(a).String()
	if !strings.Contains(s, "slot") {
		t.Errorf("template diagnostics missing slots:\n%s", s)
	}
}
