package roadrunner

import (
	"fmt"
	"strings"
	"testing"

	"objectrunner/internal/clean"
	"objectrunner/internal/dom"
)

func listPages(counts []int) []*dom.Node {
	pool := [][2]string{
		{"Metallica", "Monday May 11, 8:00pm"},
		{"Madonna", "Saturday May 29 7:00p"},
		{"Muse", "Friday June 19 7:00p"},
		{"Coldplay", "Saturday August 8, 2010 8:00pm"},
	}
	var out []*dom.Node
	for pi, n := range counts {
		var sb strings.Builder
		sb.WriteString("<html><body><ul>")
		for j := 0; j < n; j++ {
			r := pool[(pi+j)%len(pool)]
			fmt.Fprintf(&sb, `<li><div>%s</div><div>%s</div></li>`, r[0], r[1])
		}
		sb.WriteString("</ul></body></html>")
		out = append(out, clean.Page(sb.String()))
	}
	return out
}

func TestStringMismatchBecomesField(t *testing.T) {
	pages := []*dom.Node{
		clean.Page(`<html><body><div>Metallica</div></body></html>`),
		clean.Page(`<html><body><div>Madonna</div></body></html>`),
	}
	w := Infer(pages, DefaultConfig())
	if w.NumFields() != 1 {
		t.Fatalf("fields = %d, want 1\nwrapper: %s", w.NumFields(), w)
	}
	recs := w.ExtractPage(pages[0])
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	found := false
	for _, vs := range recs[0] {
		for _, v := range vs {
			if v == "Metallica" {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("field value lost: %v", recs[0])
	}
}

func TestIteratorDiscoveredOnVaryingLists(t *testing.T) {
	pages := listPages([]int{2, 4, 3})
	w := Infer(pages, DefaultConfig())
	if !w.HasIterator() {
		t.Fatalf("no iterator found on varying lists\nwrapper: %s", w)
	}
	recs := w.ExtractPage(pages[1])
	if len(recs) != 4 {
		for _, r := range recs {
			t.Logf("rec: %v", r)
		}
		t.Fatalf("records = %d, want 4", len(recs))
	}
}

func TestTooRegularListsFail(t *testing.T) {
	// The paper's observation: constant record counts give RoadRunner no
	// variation to discover the iterator, so records collapse into the
	// page template.
	pages := listPages([]int{2, 2, 2})
	w := Infer(pages, DefaultConfig())
	recs := w.ExtractPage(pages[0])
	// Without an iterator, at most one page-level record comes back —
	// the two golden records cannot both be correct.
	if w.HasIterator() && len(recs) == 2 {
		t.Skip("iterator found despite constant counts (acceptable, but unexpected)")
	}
	if len(recs) > 1 {
		t.Errorf("expected collapsed extraction, got %d records", len(recs))
	}
}

func TestExtractOnUnseenPage(t *testing.T) {
	pages := listPages([]int{2, 4, 3})
	w := Infer(pages, DefaultConfig())
	unseen := clean.Page(`<html><body><ul>` +
		`<li><div>The Strokes</div><div>Friday July 2, 9:00pm</div></li>` +
		`<li><div>Arcade Fire</div><div>Sunday July 4, 7:30pm</div></li>` +
		`</ul></body></html>`)
	recs := w.ExtractPage(unseen)
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2\nwrapper: %s", len(recs), w)
	}
}

func TestInferEmpty(t *testing.T) {
	w := Infer(nil, DefaultConfig())
	if !w.Aborted {
		t.Error("no pages should abort")
	}
}

func TestOptionalBlocks(t *testing.T) {
	// Page 2 lacks the promo div: it must become optional, and both
	// pages should still extract their field.
	pages := []*dom.Node{
		clean.Page(`<html><body><div><em>promo</em></div><span>Metallica</span></body></html>`),
		clean.Page(`<html><body><span>Madonna</span></body></html>`),
		clean.Page(`<html><body><div><em>promo</em></div><span>Muse</span></body></html>`),
	}
	w := Infer(pages, DefaultConfig())
	for i, p := range pages {
		recs := w.ExtractPage(p)
		if len(recs) == 0 {
			t.Errorf("page %d extracted nothing\nwrapper: %s", i, w)
		}
	}
}

func TestWrapperString(t *testing.T) {
	pages := listPages([]int{2, 3})
	w := Infer(pages, DefaultConfig())
	s := w.String()
	if !strings.Contains(s, "<li>") {
		t.Errorf("wrapper rendering missing tags: %s", s)
	}
}

func TestExtractPagesAndClassedTags(t *testing.T) {
	pages := []*dom.Node{
		clean.Page(`<html><body><ul><li><div class="a">alpha</div></li><li><div class="a">beta</div></li></ul></body></html>`),
		clean.Page(`<html><body><ul><li><div class="a">gamma</div></li><li><div class="a">delta</div></li><li><div class="a">epsilon</div></li></ul></body></html>`),
		clean.Page(`<html><body><ul><li><div class="a">zeta</div></li></ul></body></html>`),
	}
	w := Infer(pages, DefaultConfig())
	all := w.ExtractPages(pages)
	if len(all) != 3 {
		t.Fatalf("pages = %d", len(all))
	}
	total := 0
	for _, recs := range all {
		total += len(recs)
	}
	if total != 6 {
		t.Errorf("records = %d, want 6", total)
	}
	// Class attributes participate in the token model.
	if !strings.Contains(w.String(), "div.a") {
		t.Errorf("wrapper tokens lack class refinement: %s", w.String())
	}
}
