// Package roadrunner implements the RoadRunner baseline (Crescenzi, Mecca
// & Merialdo, VLDB 2001) used in the paper's comparison (§IV.B):
// unsupervised wrapper inference by pairwise page alignment into a
// union-free regular expression. Matching a sample page against the
// current wrapper generalizes it on mismatches: string mismatches become
// #PCDATA fields, repeated blocks become iterators ( )+ discovered by
// square matching, and unalignable blocks become optionals ( )?.
//
// As the paper observes, this family of techniques assumes every HTML tag
// belongs to the template and relies purely on cross-page variation: list
// pages whose record count is constant across sample pages offer no
// variation, so the iterator is never discovered and record fields leak
// into the page template — the "too regular" failure mode.
package roadrunner

import (
	"fmt"
	"strings"

	"objectrunner/internal/dom"
)

// tokKind discriminates wrapper tokens.
type tokKind int

const (
	kindTag tokKind = iota
	kindEndTag
	kindText  // constant string
	kindField // #PCDATA
)

// wtoken is one token of the wrapper expression.
type wtoken struct {
	kind  tokKind
	value string
	// iter marks the start of an iterator region of length iterLen
	// (square matching result).
	iterLen int
	// opt marks the start of an optional region of length optLen.
	optLen int
}

func (t wtoken) matches(p ptoken) bool {
	switch t.kind {
	case kindTag:
		return p.kind == kindTag && p.value == t.value
	case kindEndTag:
		return p.kind == kindEndTag && p.value == t.value
	case kindText:
		return p.kind == kindText && p.value == t.value
	case kindField:
		return p.kind == kindText
	}
	return false
}

// ptoken is one token of a concrete page.
type ptoken struct {
	kind  tokKind
	value string
	raw   string
}

// Config tunes inference.
type Config struct {
	// SampleSize bounds how many pages participate in wrapper
	// generalization.
	SampleSize int
}

// DefaultConfig returns the defaults.
func DefaultConfig() Config { return Config{SampleSize: 20} }

// Record is one extracted record: field ids to values.
type Record map[string][]string

// Wrapper is the inferred union-free expression.
type Wrapper struct {
	tokens  []wtoken
	Aborted bool
}

// tagValue refines a tag token with the element's first class token, as
// rendered templates distinguish fields by class.
func tagValue(n *dom.Node) string {
	if cls, ok := n.Attr("class"); ok {
		if f := strings.Fields(cls); len(f) > 0 {
			return n.Data + "." + strings.ToLower(f[0])
		}
	}
	return n.Data
}

// tokenizePage flattens a page into tags and maximal text runs (the
// RoadRunner token model: strings between tags are single fields).
func tokenizePage(page *dom.Node) []ptoken {
	var out []ptoken
	var walk func(n *dom.Node)
	walk = func(n *dom.Node) {
		switch n.Type {
		case dom.TextNode:
			text := dom.CollapseSpace(n.Data)
			if text != "" {
				out = append(out, ptoken{kind: kindText, value: strings.ToLower(text), raw: text})
			}
		case dom.ElementNode:
			v := tagValue(n)
			out = append(out, ptoken{kind: kindTag, value: v})
			for _, c := range n.Children {
				walk(c)
			}
			out = append(out, ptoken{kind: kindEndTag, value: v})
		case dom.DocumentNode:
			for _, c := range n.Children {
				walk(c)
			}
		}
	}
	walk(page)
	return out
}

// Infer builds the wrapper by generalizing across the sample pages.
func Infer(pages []*dom.Node, cfg Config) *Wrapper {
	if cfg.SampleSize <= 0 {
		cfg = DefaultConfig()
	}
	if len(pages) == 0 {
		return &Wrapper{Aborted: true}
	}
	n := len(pages)
	if n > cfg.SampleSize {
		n = cfg.SampleSize
	}
	// Initial wrapper: the first page, verbatim.
	w := &Wrapper{}
	for _, p := range tokenizePage(pages[0]) {
		k := p.kind
		w.tokens = append(w.tokens, wtoken{kind: k, value: p.value})
	}
	for i := 1; i < n; i++ {
		w.generalize(tokenizePage(pages[i]))
	}
	return w
}

// generalize aligns the wrapper with a page and folds the differences
// into fields, iterators and optionals.
func (w *Wrapper) generalize(page []ptoken) {
	ops := align(w.tokens, page)
	var out []wtoken
	i, j := 0, 0
	inserts := false
	for _, op := range ops {
		switch op {
		case opMatch:
			t := w.tokens[i]
			// String mismatch under match-with-substitution becomes a
			// field.
			if t.kind == kindText && page[j].kind == kindText && t.value != page[j].value {
				t.kind = kindField
				t.value = "#PCDATA"
			}
			if t.kind == kindField {
				t.value = "#PCDATA"
			}
			out = append(out, t)
			i++
			j++
		case opDelete:
			// Wrapper token absent from the page: wrap as optional (or
			// extend a square if it repeats — handled post-hoc).
			t := w.tokens[i]
			if t.optLen == 0 {
				t.optLen = 1
			}
			out = append(out, t)
			i++
		case opInsert:
			// Page block absent from the wrapper: square matching below
			// decides between iterator and optional.
			inserts = true
			j++
		}
	}
	w.tokens = out
	// Iterator discovery is mismatch-driven, as in the original
	// algorithm: without an insertion there is no evidence of
	// repetition, which is exactly why constant-record-count ("too
	// regular") list pages defeat RoadRunner.
	if inserts {
		w.discoverIterators(page)
	}
}

// discoverIterators performs square matching: a region of the wrapper
// whose tag sequence immediately repeats on a page is an iterator.
func (w *Wrapper) discoverIterators(page []ptoken) {
	// Find candidate squares: for each end-tag position e in the
	// wrapper, try region lengths backwards and check whether the page
	// contains the region's tag signature at least twice in a row.
	sig := func(toks []wtoken, from, to int) string {
		var parts []string
		for _, t := range toks[from:to] {
			switch t.kind {
			case kindTag:
				parts = append(parts, "<"+t.value+">")
			case kindEndTag:
				parts = append(parts, "</"+t.value+">")
			default:
				parts = append(parts, "$")
			}
		}
		return strings.Join(parts, " ")
	}
	psig := func(toks []ptoken, from, to int) string {
		var parts []string
		for _, t := range toks[from:to] {
			switch t.kind {
			case kindTag:
				parts = append(parts, "<"+t.value+">")
			case kindEndTag:
				parts = append(parts, "</"+t.value+">")
			default:
				parts = append(parts, "$")
			}
		}
		return strings.Join(parts, " ")
	}
	for start := 0; start < len(w.tokens); start++ {
		if w.tokens[start].kind != kindTag || w.tokens[start].iterLen > 0 {
			continue
		}
		// Region = balanced element starting here.
		end := balancedEnd(w.tokens, start)
		if end < 0 {
			continue
		}
		regionSig := sig(w.tokens, start, end+1)
		// Does any page position repeat this signature at least twice?
		L := end + 1 - start
		for p := 0; p+2*L <= len(page); p++ {
			if psig(page, p, p+L) == regionSig && psig(page, p+L, p+2*L) == regionSig {
				w.tokens[start].iterLen = L
				break
			}
		}
	}
}

// balancedEnd returns the index of the end tag closing the element that
// starts at i, or -1.
func balancedEnd(toks []wtoken, i int) int {
	depth := 0
	for j := i; j < len(toks); j++ {
		switch toks[j].kind {
		case kindTag:
			depth++
		case kindEndTag:
			depth--
			if depth == 0 {
				return j
			}
		}
	}
	return -1
}

// Alignment operations.
type alignOp int

const (
	opMatch alignOp = iota
	opDelete
	opInsert
)

// align computes an edit script between wrapper and page tokens by
// longest-common-subsequence over a compatibility relation (fields match
// any string).
func align(w []wtoken, p []ptoken) []alignOp {
	n, m := len(w), len(p)
	// lcs[i][j] = best score aligning w[i:] with p[j:].
	lcs := make([][]int, n+1)
	for i := range lcs {
		lcs[i] = make([]int, m+1)
	}
	compat := func(i, j int) bool {
		t, q := w[i], p[j]
		if t.kind == kindField || t.kind == kindText {
			return q.kind == kindText
		}
		return t.matches(q)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			best := lcs[i+1][j]
			if lcs[i][j+1] > best {
				best = lcs[i][j+1]
			}
			if compat(i, j) && lcs[i+1][j+1]+1 > best {
				best = lcs[i+1][j+1] + 1
			}
			lcs[i][j] = best
		}
	}
	var ops []alignOp
	i, j := 0, 0
	for i < n && j < m {
		if compat(i, j) && lcs[i][j] == lcs[i+1][j+1]+1 {
			ops = append(ops, opMatch)
			i++
			j++
			continue
		}
		if lcs[i+1][j] >= lcs[i][j+1] {
			ops = append(ops, opDelete)
			i++
		} else {
			ops = append(ops, opInsert)
			j++
		}
	}
	for ; i < n; i++ {
		ops = append(ops, opDelete)
	}
	for ; j < m; j++ {
		ops = append(ops, opInsert)
	}
	return ops
}

// ExtractPage matches the wrapper against a page and returns the
// extracted records: one record per iteration of the iterator carrying
// the most fields, or a single page record when no iterator exists.
func (w *Wrapper) ExtractPage(page *dom.Node) []Record {
	if w.Aborted {
		return nil
	}
	toks := tokenizePage(page)
	values := w.matchPage(toks)
	return w.recordsFrom(values)
}

// fieldValue is one captured field instance.
type fieldValue struct {
	wrapperPos int
	iteration  int // -1 outside iterators
	value      string
}

// matchPage scans the page against the wrapper, capturing field values.
// Iterator regions repeat greedily; optional regions are skipped when
// they do not match.
func (w *Wrapper) matchPage(page []ptoken) []fieldValue {
	var out []fieldValue
	j := 0
	i := 0
	for i < len(w.tokens) && j <= len(page) {
		t := w.tokens[i]
		if t.iterLen > 0 {
			iter := 0
			for {
				nj, vals, ok := matchRegion(w.tokens, i, i+t.iterLen, page, j)
				if !ok {
					break
				}
				for _, v := range vals {
					v.iteration = iter
					out = append(out, v)
				}
				j = nj
				iter++
			}
			i += t.iterLen
			continue
		}
		if t.optLen > 0 {
			nj, vals, ok := matchRegion(w.tokens, i, i+t.optLen, page, j)
			if ok {
				for _, v := range vals {
					out = append(out, v)
				}
				j = nj
			}
			i += t.optLen
			continue
		}
		if j < len(page) && t.matches(page[j]) {
			if t.kind == kindField {
				out = append(out, fieldValue{wrapperPos: i, iteration: -1, value: page[j].raw})
			}
			i++
			j++
			continue
		}
		// Skip unmatched page tokens (noise tolerance).
		if j < len(page) {
			j++
			continue
		}
		break
	}
	return out
}

// matchRegion tries to match wrapper[i:end) at page position j; returns
// the new page position, the captured fields and success.
func matchRegion(wt []wtoken, i, end int, page []ptoken, j int) (int, []fieldValue, bool) {
	var vals []fieldValue
	for k := i; k < end; k++ {
		if j >= len(page) || !wt[k].matches(page[j]) {
			return j, nil, false
		}
		if wt[k].kind == kindField {
			vals = append(vals, fieldValue{wrapperPos: k, value: page[j].raw})
		}
		j++
	}
	return j, vals, true
}

// recordsFrom groups captured fields into records.
func (w *Wrapper) recordsFrom(values []fieldValue) []Record {
	// Group by iteration; iteration -1 fields belong to the page record.
	byIter := make(map[int]Record)
	for _, v := range values {
		rec, ok := byIter[v.iteration]
		if !ok {
			rec = make(Record)
			byIter[v.iteration] = rec
		}
		id := fmt.Sprintf("f%d", v.wrapperPos)
		rec[id] = append(rec[id], v.value)
	}
	if len(byIter) == 0 {
		return nil
	}
	// Iterations in order; the page-level record (iteration -1) is
	// emitted once, either merged (no iterations) or standalone last.
	var out []Record
	maxIter := -1
	for it := range byIter {
		if it > maxIter {
			maxIter = it
		}
	}
	for it := 0; it <= maxIter; it++ {
		if rec, ok := byIter[it]; ok {
			out = append(out, rec)
		}
	}
	if rec, ok := byIter[-1]; ok {
		if len(out) == 0 {
			out = append(out, rec)
		} else if len(rec) > 0 {
			// Page-level fields attach to the first record (RoadRunner
			// exposes them once per page).
			for k, vs := range rec {
				out[0][k] = append(out[0][k], vs...)
			}
		}
	}
	return out
}

// ExtractPages applies the wrapper to every page.
func (w *Wrapper) ExtractPages(pages []*dom.Node) [][]Record {
	out := make([][]Record, len(pages))
	for i, p := range pages {
		out[i] = w.ExtractPage(p)
	}
	return out
}

// NumFields returns how many #PCDATA fields the wrapper has (diagnostics).
func (w *Wrapper) NumFields() int {
	n := 0
	for _, t := range w.tokens {
		if t.kind == kindField {
			n++
		}
	}
	return n
}

// HasIterator reports whether square matching found any iterator.
func (w *Wrapper) HasIterator() bool {
	for _, t := range w.tokens {
		if t.iterLen > 0 {
			return true
		}
	}
	return false
}

// String renders the wrapper expression for diagnostics.
func (w *Wrapper) String() string {
	var sb strings.Builder
	for i := 0; i < len(w.tokens); i++ {
		t := w.tokens[i]
		if t.iterLen > 0 {
			sb.WriteString("( ")
		}
		switch t.kind {
		case kindTag:
			sb.WriteString("<" + t.value + "> ")
		case kindEndTag:
			sb.WriteString("</" + t.value + "> ")
		case kindText:
			sb.WriteString("'" + t.value + "' ")
		case kindField:
			sb.WriteString("#PCDATA ")
		}
		if t.iterLen > 0 {
			// Closing paren rendered after the region.
			// (kept simple: regions are annotated at their start)
			sb.WriteString(fmt.Sprintf("[iter:%d] ", t.iterLen))
		}
		if t.optLen > 0 {
			sb.WriteString("[opt] ")
		}
	}
	return strings.TrimSpace(sb.String())
}
