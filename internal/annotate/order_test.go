package annotate

import (
	"reflect"
	"testing"

	"objectrunner/internal/recognize"
	"objectrunner/internal/sod"
)

// TestSplitTypesTiesBreakByName pins the selectivity-ranking tie-break:
// dictionary types with equal Eq. 2 estimates are ordered by attribute
// name, not by declaration (or map) order.
func TestSplitTypesTiesBreakByName(t *testing.T) {
	s, err := sod.Parse(`tuple { zebra: instanceOf(Z), apple: instanceOf(A), mango: instanceOf(M), when: date }`)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string) *recognize.Dictionary {
		d := recognize.NewDictionary(name)
		d.Add("identical entry", 0.9) // same content => equal selectivity
		return d
	}
	recs := map[string]recognize.Recognizer{
		"zebra": mk("instanceOf(Z)"),
		"apple": mk("instanceOf(A)"),
		"mango": mk("instanceOf(M)"),
		"when":  recognize.NewDate(),
	}
	dict, other := splitTypes(s, recs, nil)
	if want := []string{"apple", "mango", "zebra"}; !reflect.DeepEqual(dict, want) {
		t.Errorf("dict order = %v, want %v", dict, want)
	}
	if want := []string{"when"}; !reflect.DeepEqual(other, want) {
		t.Errorf("other = %v, want %v", other, want)
	}
}
