package annotate

import (
	"fmt"
	"strings"
	"testing"

	"objectrunner/internal/clean"
	"objectrunner/internal/dom"
	"objectrunner/internal/recognize"
	"objectrunner/internal/sod"
)

// concertRecs builds recognizers for the running example.
func concertRecs() map[string]recognize.Recognizer {
	artists := recognize.NewDictionary("instanceOf(Artist)")
	artists.AddAll([]recognize.Entry{
		{Value: "Metallica", Confidence: 0.9}, {Value: "Madonna", Confidence: 0.95}, {Value: "Muse", Confidence: 0.85}, {Value: "Coldplay", Confidence: 0.9},
	})
	theaters := recognize.NewDictionary("instanceOf(Theater)")
	theaters.AddAll([]recognize.Entry{
		{Value: "Madison Square Garden", Confidence: 0.9}, {Value: "The Town Hall", Confidence: 0.8},
		{Value: "B.B King Blues and Grill", Confidence: 0.75}, {Value: "Bowery Ballroom", Confidence: 0.85},
	})
	return map[string]recognize.Recognizer{
		"artist":  artists,
		"theater": theaters,
		"date":    recognize.NewDate(),
		"address": recognize.NewAddress(),
	}
}

func concertSOD() *sod.Type {
	return sod.MustParse(`tuple {
		artist: instanceOf(Artist)
		date: date
		location: tuple { theater: instanceOf(Theater), address: address ? }
	}`)
}

// paperPage reproduces page P1 of the paper's running example (Fig. 3).
func paperPage(artist, date, theater, street, zip string) string {
	return fmt.Sprintf(`<html><body><li>
		<div>%s</div>
		<div>%s</div>
		<div>
			<span><a>%s</a></span>
			<span>%s</span>
			<span>New York City</span>
			<span>New York</span>
			<span>%s</span>
		</div>
	</li></body></html>`, artist, date, theater, street, zip)
}

func TestAnnotatePageRunningExample(t *testing.T) {
	page := clean.Page(paperPage("Metallica", "Monday May 11, 8:00pm", "Madison Square Garden", "237 West 42nd street", "10036"))
	pa := AnnotatePage(page, concertRecs())
	divs := page.Find("div")
	if len(divs) != 3 {
		t.Fatalf("page has %d divs", len(divs))
	}
	if got := pa.Types(divs[0]); len(got) != 1 || got[0] != "artist" {
		t.Errorf("div1 types = %v, want [artist]", got)
	}
	if got := pa.Types(divs[1]); len(got) != 1 || got[0] != "date" {
		t.Errorf("div2 types = %v, want [date]", got)
	}
	// div3's spans carry mixed annotations (theater, address), so div3
	// itself must stay unannotated — but the spans are annotated.
	if got := pa.Types(divs[2]); len(got) != 0 {
		t.Errorf("div3 types = %v, want none (mixed children)", got)
	}
	spans := divs[2].Find("span")
	// span1 must carry theater (propagated from the <a> linear path); it
	// may also carry address noise ("Madison Square" looks like a street),
	// which the pipeline is designed to tolerate.
	if got := strings.Join(pa.Types(spans[0]), ","); !strings.Contains(got, "theater") {
		t.Errorf("span1 types = %v, want theater among them", got)
	}
	if got := strings.Join(pa.Types(spans[1]), ","); got != "address" {
		t.Errorf("span2 types = %v, want address", got)
	}
	if got := strings.Join(pa.Types(spans[4]), ","); got != "address" {
		t.Errorf("zip span types = %v, want address", got)
	}
}

func TestAnnotationPropagationLinearPath(t *testing.T) {
	page := clean.Page(`<body><div><span><a>Metallica</a></span></div></body>`)
	pa := AnnotatePage(page, concertRecs())
	// a -> span (single child) -> div (single child): all annotated.
	for _, tag := range []string{"a", "span", "div"} {
		n := page.FindOne(tag)
		if got := pa.Types(n); len(got) != 1 || got[0] != "artist" {
			t.Errorf("%s types = %v, want [artist]", tag, got)
		}
	}
}

func TestAnnotationPropagationUniformChildren(t *testing.T) {
	page := clean.Page(`<body><ul><li>Metallica</li><li>Muse</li><li>Madonna</li></ul></body>`)
	pa := AnnotatePage(page, concertRecs())
	ul := page.FindOne("ul")
	if got := pa.Types(ul); len(got) != 1 || got[0] != "artist" {
		t.Errorf("ul types = %v, want [artist] (uniform children)", got)
	}
}

func TestAnnotationNoPropagationMixedChildren(t *testing.T) {
	page := clean.Page(`<body><div><span>Metallica</span><span>May 29, 2010</span></div></body>`)
	pa := AnnotatePage(page, concertRecs())
	div := page.FindOne("div")
	if got := pa.Types(div); len(got) != 0 {
		t.Errorf("div with mixed children got types %v", got)
	}
}

func TestWholeVsPartialMatch(t *testing.T) {
	page := clean.Page(`<body><div>Metallica</div><div>see Metallica live</div></body>`)
	pa := AnnotatePage(page, concertRecs())
	divs := page.Find("div")
	whole := pa.Anns[divs[0]]
	if len(whole) != 1 || !whole[0].Whole {
		t.Errorf("first div ann = %+v, want whole", whole)
	}
	partial := pa.Anns[divs[1]]
	if len(partial) != 1 || partial[0].Whole {
		t.Errorf("second div ann = %+v, want partial", partial)
	}
}

func TestMultipleAnnotationsPerNode(t *testing.T) {
	// "New York" is both a city fragment (address) and could be in the
	// artist dictionary: the paper allows multiple annotations per node.
	artists := recognize.NewDictionary("instanceOf(Artist)")
	artists.Add("New York", 0.4)
	recs := map[string]recognize.Recognizer{
		"artist":  artists,
		"address": recognize.NewAddress(),
	}
	page := clean.Page(`<body><div>New York, NY 10019</div></body>`)
	pa := AnnotatePage(page, recs)
	div := page.FindOne("div")
	if got := pa.Types(div); len(got) < 2 {
		t.Errorf("div types = %v, want both artist and address", got)
	}
}

func TestCountHelpers(t *testing.T) {
	page := clean.Page(`<body><div>Metallica</div><div>Muse</div><div>May 29, 2010</div></body>`)
	pa := AnnotatePage(page, concertRecs())
	if got := pa.CountType("artist"); got < 2 {
		t.Errorf("CountType(artist) = %d, want >= 2", got)
	}
	if pa.Count() < 3 {
		t.Errorf("Count = %d", pa.Count())
	}
}

type fixedTF map[string]float64

func (f fixedTF) TermFrequency(s string) float64 {
	if v, ok := f[recognize.NormalizePhrase(s)]; ok {
		return v
	}
	return 1
}

func TestTypeSelectivity(t *testing.T) {
	rare := recognize.NewDictionary("x")
	rare.AddAll([]recognize.Entry{{Value: "Unique Band", Confidence: 0.9}, {Value: "Odd Duo", Confidence: 0.9}})
	common := recognize.NewDictionary("y")
	common.AddAll([]recognize.Entry{{Value: "New York", Confidence: 0.9}, {Value: "Love", Confidence: 0.9}})
	tf := fixedTF{"new york": 1000, "love": 500}
	if rs, cs := TypeSelectivity(rare, tf), TypeSelectivity(common, tf); rs <= cs {
		t.Errorf("rare selectivity %v should exceed common %v", rs, cs)
	}
	if got := TypeSelectivity(nil, tf); got != 0 {
		t.Errorf("nil dict selectivity = %v", got)
	}
}

func TestPageScoreAndMinScore(t *testing.T) {
	page := clean.Page(`<body><div>Metallica</div><div>Muse</div></body>`)
	pa := AnnotatePage(page, concertRecs())
	tf := fixedTF{}
	s := PageScore(pa, "artist", tf)
	want := 0.9 + 0.85
	if diff := s - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("PageScore = %v, want %v", s, want)
	}
	if got := PageScore(pa, "date", tf); got != 0 {
		t.Errorf("PageScore(date) = %v", got)
	}
	if got := MinScore(pa, []string{"artist", "date"}, tf); got != 0 {
		t.Errorf("MinScore = %v, want 0 (no dates)", got)
	}
}

// sourcePages builds a synthetic source: rich pages carry concert data,
// poor pages are navigation-only.
func sourcePages(rich, poor int) []*dom.Node {
	var pages []*dom.Node
	artists := []string{"Metallica", "Madonna", "Muse", "Coldplay"}
	theaters := []string{"Madison Square Garden", "The Town Hall", "Bowery Ballroom", "B.B King Blues and Grill"}
	for i := 0; i < rich; i++ {
		var sb strings.Builder
		sb.WriteString("<html><body><ul>")
		for j := 0; j < 3; j++ {
			a := artists[(i+j)%len(artists)]
			th := theaters[(i+j)%len(theaters)]
			fmt.Fprintf(&sb, `<li><div>%s</div><div>Monday May %d, 8:00pm</div><div><span><a>%s</a></span><span>%d West 42nd street</span></div></li>`, a, j+1, th, 100+j)
		}
		sb.WriteString("</ul></body></html>")
		pages = append(pages, clean.Page(sb.String()))
	}
	for i := 0; i < poor; i++ {
		pages = append(pages, clean.Page(`<html><body><div>about us</div><div>terms of service</div></body></html>`))
	}
	return pages
}

func TestSelectSamplePrefersRichPages(t *testing.T) {
	pages := sourcePages(6, 6)
	recs := concertRecs()
	res := SelectSample(pages, concertSOD(), recs, nil, Params{SampleSize: 4, Alpha: 0.5, Shrink: 0.5})
	if res.Aborted {
		t.Fatalf("aborted: %s", res.AbortReason)
	}
	if len(res.Sample) != 4 {
		t.Fatalf("sample size = %d", len(res.Sample))
	}
	for i, pa := range res.Sample {
		if pa.CountType("artist") == 0 {
			t.Errorf("sample[%d] has no artist annotations (poor page selected)", i)
		}
	}
}

func TestSelectSampleTypeOrder(t *testing.T) {
	pages := sourcePages(3, 0)
	res := SelectSample(pages, concertSOD(), concertRecs(), nil, DefaultParams())
	if len(res.TypeOrder) != 4 {
		t.Fatalf("type order = %v", res.TypeOrder)
	}
	// Dictionary types first, predefined after.
	dictFirst := map[string]bool{res.TypeOrder[0]: true, res.TypeOrder[1]: true}
	if !dictFirst["artist"] || !dictFirst["theater"] {
		t.Errorf("dictionary types not first: %v", res.TypeOrder)
	}
}

func TestSelectSampleAbortsOnIrrelevantSource(t *testing.T) {
	pages := sourcePages(0, 8)
	res := SelectSample(pages, concertSOD(), concertRecs(), nil, Params{SampleSize: 4, Alpha: 0.5, Shrink: 0.5})
	if !res.Aborted {
		t.Error("irrelevant source not aborted")
	}
	if res.AbortReason == "" {
		t.Error("abort without reason")
	}
}

func TestSelectSampleAlphaZeroDisablesAbort(t *testing.T) {
	pages := sourcePages(0, 8)
	res := SelectSample(pages, concertSOD(), concertRecs(), nil, Params{SampleSize: 4, Alpha: 0, Shrink: 0.5})
	if res.Aborted {
		t.Error("abort with alpha=0")
	}
}

func TestSelectRandomDeterministic(t *testing.T) {
	pages := sourcePages(10, 0)
	recs := concertRecs()
	a := SelectRandom(pages, recs, 5, 42)
	b := SelectRandom(pages, recs, 5, 42)
	if len(a.Sample) != 5 || len(b.Sample) != 5 {
		t.Fatalf("sizes = %d, %d", len(a.Sample), len(b.Sample))
	}
	for i := range a.Sample {
		if a.Sample[i].Page != b.Sample[i].Page {
			t.Error("same seed gave different samples")
			break
		}
	}
	c := SelectRandom(pages, recs, 5, 7)
	same := true
	for i := range a.Sample {
		if a.Sample[i].Page != c.Sample[i].Page {
			same = false
			break
		}
	}
	if same {
		t.Log("different seeds gave the same sample (possible but unlikely)")
	}
}

func TestSelectRandomSmallPool(t *testing.T) {
	pages := sourcePages(2, 0)
	res := SelectRandom(pages, concertRecs(), 10, 1)
	if len(res.Sample) != 2 {
		t.Errorf("sample size = %d, want 2 (pool exhausted)", len(res.Sample))
	}
}

func TestBlockCondition(t *testing.T) {
	pages := sourcePages(3, 0)
	var sample []*PageAnnotations
	for _, p := range pages {
		sample = append(sample, AnnotatePage(p, concertRecs()))
	}
	if !blockCondition(sample, 0.5) {
		t.Error("rich sample fails block condition")
	}
	if blockCondition(nil, 0.5) {
		t.Error("empty sample passes block condition")
	}
	// Unannotated pages fail.
	var empty []*PageAnnotations
	for _, p := range sourcePages(0, 3) {
		empty = append(empty, AnnotatePage(p, concertRecs()))
	}
	if blockCondition(empty, 0.5) {
		t.Error("empty annotations pass block condition")
	}
}
