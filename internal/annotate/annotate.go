// Package annotate implements the automatic annotation stage of
// ObjectRunner (paper §III.B): recognizing instances of the input SOD's
// entity types in page content, scoring pages by annotation richness
// (Eq. 3), ordering types by selectivity estimates (Eq. 2), and greedily
// selecting the sample of top-annotated pages used for wrapper inference
// (Algorithm 1), with a block-level abort condition for sources that do
// not carry the targeted data.
package annotate

import (
	"context"
	"sort"

	"objectrunner/internal/dom"
	"objectrunner/internal/obs"
	"objectrunner/internal/parallel"
	"objectrunner/internal/recognize"
	"objectrunner/internal/render"
	"objectrunner/internal/sod"
	"objectrunner/internal/symtab"
)

// Ann is one annotation: an entity-type label attached to a DOM node whose
// text matched the type's recognizer.
type Ann struct {
	Type       string  // entity type name from the SOD
	Value      string  // the matched instance
	Confidence float64 // recognizer confidence
	Whole      bool    // the match covers the node's entire text
	Propagated bool    // inherited from descendants, not matched here
}

// PageAnnotations holds the annotations of one page, keyed by DOM node.
// Annotations attach to the element containing the matched text and are
// propagated upward along linear paths and uniformly-annotated children
// (paper §III.B).
type PageAnnotations struct {
	Page *dom.Node
	Anns map[*dom.Node][]Ann
}

// Types returns the distinct annotation types on the node.
func (pa *PageAnnotations) Types(n *dom.Node) []string {
	seen := make(map[string]bool)
	var out []string
	for _, a := range pa.Anns[n] {
		if !seen[a.Type] {
			seen[a.Type] = true
			out = append(out, a.Type)
		}
	}
	return out
}

// Count returns the total number of direct (non-propagated) annotations on
// the page.
func (pa *PageAnnotations) Count() int {
	n := 0
	for _, as := range pa.Anns {
		for _, a := range as {
			if !a.Propagated {
				n++
			}
		}
	}
	return n
}

// CountType returns the number of direct annotations with the given type.
func (pa *PageAnnotations) CountType(typeName string) int {
	n := 0
	for _, as := range pa.Anns {
		for _, a := range as {
			if a.Type == typeName && !a.Propagated {
				n++
			}
		}
	}
	return n
}

// AnnotatePage runs every recognizer over the page's text nodes and
// returns the resulting annotations. For each text node, a whole-text
// match annotates the parent element; partial matches annotate the parent
// as non-whole hints. Multiple annotations may land on the same node.
func AnnotatePage(page *dom.Node, recs map[string]recognize.Recognizer) *PageAnnotations {
	pa := &PageAnnotations{Page: page, Anns: make(map[*dom.Node][]Ann)}
	// Sorted-name order, not map order: the per-node annotation slices
	// keep insertion order, so iterating the map directly would reorder
	// equal matches between runs.
	names := make([]string, 0, len(recs))
	for name := range recs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		AnnotateType(pa, name, recs[name])
	}
	propagateUp(pa, page)
	return pa
}

// AnnotateType adds the annotations of a single entity type to an existing
// page annotation set (Algorithm 1 processes types one round at a time).
func AnnotateType(pa *PageAnnotations, typeName string, rec recognize.Recognizer) {
	AnnotateTypeRestricted(pa, typeName, rec, false)
}

// AnnotateTypeRestricted is AnnotateType with the whole-node restriction
// of the paper's §II.A footnote 1: when wholeOnly is set, a match
// annotates its node only if it covers the node's entire textual content.
func AnnotateTypeRestricted(pa *PageAnnotations, typeName string, rec recognize.Recognizer, wholeOnly bool) {
	for _, tn := range pa.Page.TextNodes() {
		text := dom.CollapseSpace(tn.Data)
		if text == "" {
			continue
		}
		target := tn.Parent
		if target == nil {
			target = tn
		}
		for _, m := range rec.Find(text) {
			whole := m.Start == 0 && m.End == len(text)
			if wholeOnly && !whole {
				continue
			}
			if hasAnn(pa.Anns[target], typeName, m.Value) {
				continue
			}
			pa.Anns[target] = append(pa.Anns[target], Ann{
				Type:       typeName,
				Value:      m.Value,
				Confidence: m.Confidence,
				Whole:      whole,
			})
		}
	}
}

func hasAnn(as []Ann, typeName, value string) bool {
	for _, a := range as {
		if a.Type == typeName && a.Value == value {
			return true
		}
	}
	return false
}

// propagateUp lifts annotations to ancestors along linear paths (single
// child) or when all element children carry the same annotation type
// (paper §III.B: "Annotations will also be propagated upwards in the DOM
// tree to ancestors as long as these nodes have only one child or all
// children have the same annotation").
func propagateUp(pa *PageAnnotations, page *dom.Node) {
	// Bottom-up: deeper nodes first.
	var order []*dom.Node
	page.Walk(func(n *dom.Node) bool {
		if n.Type == dom.ElementNode {
			order = append(order, n)
		}
		return true
	})
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		elems := elementChildren(n)
		if len(elems) == 0 {
			continue
		}
		if len(elems) == 1 && len(n.Children) == 1 {
			// Linear path: inherit everything.
			for _, a := range pa.Anns[elems[0]] {
				if !hasAnn(pa.Anns[n], a.Type, a.Value) {
					a.Propagated = true
					pa.Anns[n] = append(pa.Anns[n], a)
				}
			}
			continue
		}
		// All children share one annotation type: inherit that type.
		common := commonType(pa, elems)
		if common == "" {
			continue
		}
		for _, c := range elems {
			for _, a := range pa.Anns[c] {
				if a.Type == common && !hasAnn(pa.Anns[n], a.Type, a.Value) {
					a.Propagated = true
					pa.Anns[n] = append(pa.Anns[n], a)
				}
			}
		}
	}
}

func elementChildren(n *dom.Node) []*dom.Node {
	var out []*dom.Node
	for _, c := range n.Children {
		if c.Type == dom.ElementNode {
			out = append(out, c)
		}
	}
	return out
}

// commonType returns the single annotation type shared by every node, or
// "" when none exists.
func commonType(pa *PageAnnotations, nodes []*dom.Node) string {
	if len(nodes) == 0 {
		return ""
	}
	counts := make(map[string]int)
	for _, n := range nodes {
		for _, t := range pa.Types(n) {
			counts[t]++
		}
	}
	// Sorted iteration: with several qualifying types, always pick the
	// lexicographically first rather than whichever map order yields.
	types := make([]string, 0, len(counts))
	for t := range counts {
		types = append(types, t)
	}
	sort.Strings(types)
	for _, t := range types {
		if counts[t] == len(nodes) {
			return t
		}
	}
	return ""
}

// TermFreq supplies term frequencies for the tf(i) denominators of Eq. 2
// and Eq. 3. Both the knowledge base and the corpus implement it.
type TermFreq interface {
	TermFrequency(phrase string) float64
}

// constTF is the fallback when no frequency source is configured.
type constTF struct{}

func (constTF) TermFrequency(string) float64 { return 1 }

// tfMemo caches term frequencies under interned phrase symbols for the
// duration of one sample selection. Both KB- and corpus-backed sources
// normalize the phrase on every call (tokenize + join — two allocations);
// Algorithm 1 asks for the same annotation values over and over across
// scoring rounds, so one selection-scoped table amortizes all of it.
// Frequencies are immutable during selection, which makes the cache
// transparent.
type tfMemo struct {
	tf   TermFreq
	tab  *symtab.Table
	vals []float64
}

func newTFMemo(tf TermFreq) *tfMemo {
	if tf == nil {
		tf = constTF{}
	}
	return &tfMemo{tf: tf, tab: symtab.New()}
}

func (m *tfMemo) TermFrequency(phrase string) float64 {
	sym := m.tab.Intern(phrase)
	if int(sym) >= len(m.vals) {
		grown := make([]float64, int(sym)+1)
		copy(grown, m.vals)
		m.vals = grown
	}
	if m.vals[sym] == 0 {
		m.vals[sym] = m.tf.TermFrequency(phrase)
	}
	return m.vals[sym]
}

// TypeSelectivity computes the paper's Eq. 2 for a dictionary type:
// score(t) = Σ_{i∈dict} score(i,t)/tf(i). High values mean few, specific
// witness instances — those types are matched first in Algorithm 1.
//
// The estimate is normalised per instance (divided by dictionary size) so
// that huge dictionaries of common words do not dominate compact, highly
// specific ones.
func TypeSelectivity(d *recognize.Dictionary, tf TermFreq) float64 {
	if d == nil || d.Len() == 0 {
		return 0
	}
	if tf == nil {
		tf = constTF{}
	}
	sum := 0.0
	for _, e := range d.Entries() {
		sum += e.Confidence / tf.TermFrequency(e.Value)
	}
	return sum / float64(d.Len())
}

// PageScore computes the paper's Eq. 3 for one type on one page:
// score(page/t) = Σ_{i'∈t in page} score(i,t)/tf(i).
func PageScore(pa *PageAnnotations, typeName string, tf TermFreq) float64 {
	if tf == nil {
		tf = constTF{}
	}
	sum := 0.0
	for _, as := range pa.Anns {
		for _, a := range as {
			if a.Type == typeName && !a.Propagated {
				sum += a.Confidence / tf.TermFrequency(a.Value)
			}
		}
	}
	return sum
}

// MinScore returns the page's minimum score across the given types — the
// ordering criterion of Algorithm 1 ("we order the pages by their minimum
// score with respect to the types that were already processed").
func MinScore(pa *PageAnnotations, types []string, tf TermFreq) float64 {
	min := 0.0
	for i, t := range types {
		s := PageScore(pa, t, tf)
		if i == 0 || s < min {
			min = s
		}
	}
	return min
}

// Params configures Algorithm 1.
type Params struct {
	// SampleSize is k, the number of pages kept for wrapper inference
	// (approximately 20 in the paper).
	SampleSize int
	// Alpha is the block-level abort threshold (50% in the paper): at
	// least one visual block must average more than Alpha annotations per
	// sample page after each round, or the source is discarded.
	Alpha float64
	// Shrink is the fraction of pages kept after each annotation round.
	Shrink float64
	// Workers bounds the worker pool annotating pages concurrently
	// within each round; 0 means one worker per CPU. Pages are
	// independent (annotations attach to per-page state), and rounds
	// stay sequential, so the outcome matches the sequential path.
	Workers int
}

// DefaultParams mirrors the paper's experimental configuration.
func DefaultParams() Params {
	return Params{SampleSize: 20, Alpha: 0.5, Shrink: 0.5}
}

// Result is the outcome of sample selection.
type Result struct {
	// Sample holds the top-k annotated pages, ready for wrapper inference.
	Sample []*PageAnnotations
	// TypeOrder is the processing order chosen by selectivity.
	TypeOrder []string
	// Aborted reports that the source was discarded for unsatisfactory
	// annotation levels, with the reason.
	Aborted     bool
	AbortReason string
}

// SelectSample runs Algorithm 1: annotate the source's pages type by type
// in decreasing selectivity order, keep shrinking the set to the richest
// pages, abort when no visual block sustains the annotation threshold, and
// return the top-k sample.
func SelectSample(pages []*dom.Node, s *sod.Type, recs map[string]recognize.Recognizer, tf TermFreq, p Params) *Result {
	return SelectSampleObserved(pages, s, recs, tf, p, nil)
}

// SelectSampleObserved is SelectSample reporting each annotation round,
// the per-page Eq. 3 scores of the final sample, and the α-abort events
// to the observer.
func SelectSampleObserved(pages []*dom.Node, s *sod.Type, recs map[string]recognize.Recognizer, tf TermFreq, p Params, ob *obs.Observer) *Result {
	res, _ := SelectSampleCtx(context.Background(), pages, s, recs, tf, p, ob)
	return res
}

// SelectSampleCtx is SelectSampleObserved honoring cancellation: the
// per-page annotation fan-outs stop dispatching once ctx is canceled, the
// round loop checks ctx between types, and the context error is returned
// with a nil result.
func SelectSampleCtx(ctx context.Context, pages []*dom.Node, s *sod.Type, recs map[string]recognize.Recognizer, tf TermFreq, p Params, ob *obs.Observer) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if p.SampleSize <= 0 {
		p.SampleSize = 20
	}
	if p.Shrink <= 0 || p.Shrink >= 1 {
		p.Shrink = 0.5
	}
	// All scoring below shares one selection-scoped frequency cache; the
	// rounds re-score the same annotations repeatedly.
	tf = newTFMemo(tf)
	res := &Result{}
	cur := make([]*PageAnnotations, 0, len(pages))
	for _, pg := range pages {
		cur = append(cur, &PageAnnotations{Page: pg, Anns: make(map[*dom.Node][]Ann)})
	}

	// Order isInstanceOf types by decreasing selectivity estimate; the
	// predefined and regex types are processed afterwards (paper: "Once
	// the top annotated pages are selected over all isInstanceOf types,
	// the predefined and regular expression types are processed").
	dictTypes, otherTypes := splitTypes(s, recs, tf)
	res.TypeOrder = append(append([]string{}, dictTypes...), otherTypes...)
	ob.Event("annotate.type_order", obs.A("order", res.TypeOrder))

	wholeOnly := s.WholeNodeFields()
	processed := make([]string, 0, len(res.TypeOrder))
	for _, tName := range dictTypes {
		if err := parallel.ForEachCtx(ctx, p.Workers, len(cur), func(i int) {
			AnnotateTypeRestricted(cur[i], tName, recs[tName], wholeOnly[tName])
		}); err != nil {
			return nil, err
		}
		processed = append(processed, tName)
		// Keep the richest pages; never go below the sample size.
		keep := int(float64(len(cur)) * p.Shrink)
		if keep < p.SampleSize {
			keep = p.SampleSize
		}
		if keep < len(cur) {
			sortByMinScore(cur, processed, tf)
			cur = cur[:keep]
		}
		ob.Count("annotate.rounds", 1)
		ob.Event("annotate.round", obs.A("type", tName), obs.A("kept", len(cur)))
		// Intermediate abort: with incomplete dictionaries a singleton
		// page yields well under alpha annotations per round, so the
		// full alpha test only runs once every type is processed; rounds
		// in between just require that annotations exist at all.
		if p.Alpha > 0 && !blockCondition(cur, 0) {
			res.Aborted = true
			res.AbortReason = "no annotated visual block after type " + tName
			ob.Count("annotate.alpha_aborts", 1)
			ob.Event("annotate.alpha_abort", obs.A("after_type", tName), obs.A("alpha", 0.0))
			return res, nil
		}
	}
	// Final sample: top-k by minimum score over the dictionary types.
	sortByMinScore(cur, processed, tf)
	if len(cur) > p.SampleSize {
		cur = cur[:p.SampleSize]
	}
	// Predefined and regex types on the sample only. The type rounds must
	// stay ordered (annotation slices append per round), so the fan-out
	// is per page within a round.
	for _, tName := range otherTypes {
		if err := parallel.ForEachCtx(ctx, p.Workers, len(cur), func(i int) {
			AnnotateTypeRestricted(cur[i], tName, recs[tName], wholeOnly[tName])
		}); err != nil {
			return nil, err
		}
	}
	if err := parallel.ForEachCtx(ctx, p.Workers, len(cur), func(i int) {
		propagateUp(cur[i], cur[i].Page)
	}); err != nil {
		return nil, err
	}
	if p.Alpha > 0 && !blockCondition(cur, p.Alpha) {
		res.Aborted = true
		res.AbortReason = "no visual block sustains the annotation threshold after predefined types"
		ob.Count("annotate.alpha_aborts", 1)
		ob.Event("annotate.alpha_abort", obs.A("after_type", "predefined"), obs.A("alpha", p.Alpha))
		return res, nil
	}
	res.Sample = cur
	if ob.Enabled() {
		// Per-page Eq. 3 accounting of the selected sample.
		for i, pa := range cur {
			ob.Event("annotate.page",
				obs.A("rank", i),
				obs.A("min_score", MinScore(pa, processed, tf)),
				obs.A("annotations", pa.Count()))
		}
	}
	return res, nil
}

// splitTypes partitions the SOD's entity types into dictionary-backed
// (isInstanceOf, ordered by decreasing selectivity) and the rest.
func splitTypes(s *sod.Type, recs map[string]recognize.Recognizer, tf TermFreq) (dict, other []string) {
	type sel struct {
		name  string
		score float64
	}
	var sels []sel
	for _, e := range s.EntityTypes() {
		rec := recs[e.Name]
		if d, ok := rec.(*recognize.Dictionary); ok {
			sels = append(sels, sel{e.Name, TypeSelectivity(d, tf)})
			continue
		}
		other = append(other, e.Name)
	}
	// Equal selectivity estimates tie-break on the attribute name so the
	// greedy round order of Algorithm 1 is reproducible across runs.
	sort.SliceStable(sels, func(i, j int) bool {
		if sels[i].score != sels[j].score {
			return sels[i].score > sels[j].score
		}
		return sels[i].name < sels[j].name
	})
	for _, x := range sels {
		dict = append(dict, x.name)
	}
	return dict, other
}

func sortByMinScore(pas []*PageAnnotations, types []string, tf TermFreq) {
	// Primary criterion: the paper's minimum score across processed
	// types. With incomplete dictionaries many relevant pages tie at
	// zero (no known instance of some type on the page), so the total
	// annotation mass breaks ties. Scores are computed once per page up
	// front — the annotation scan is the expensive part, and a comparator
	// recomputing it turns every sort into O(n log n) page scans.
	type ranked struct {
		pa       *PageAnnotations
		min, sum float64
	}
	rs := make([]ranked, len(pas))
	for i, pa := range pas {
		r := ranked{pa: pa}
		for j, t := range types {
			s := PageScore(pa, t, tf)
			if j == 0 || s < r.min {
				r.min = s
			}
			r.sum += s
		}
		rs[i] = r
	}
	sort.SliceStable(rs, func(i, j int) bool {
		if rs[i].min != rs[j].min {
			return rs[i].min > rs[j].min
		}
		return rs[i].sum > rs[j].sum
	})
	for i := range rs {
		pas[i] = rs[i].pa
	}
}

// blockCondition checks the paper's abort test: for at least one visual
// block (identified across pages by its DOM path), the average number of
// annotations per sample page exceeds alpha.
func blockCondition(sample []*PageAnnotations, alpha float64) bool {
	if len(sample) == 0 {
		return false
	}
	totals := make(map[string]int)
	for _, pa := range sample {
		for n, as := range pa.Anns {
			direct := 0
			for _, a := range as {
				if !a.Propagated {
					direct++
				}
			}
			if direct == 0 {
				continue
			}
			totals[blockPathOf(n)] += direct
		}
	}
	k := float64(len(sample))
	for _, total := range totals {
		if float64(total)/k > alpha {
			return true
		}
	}
	return false
}

// blockPathOf maps a node to the DOM path of its nearest block-level
// ancestor (or itself), the cross-page identity of visual blocks.
func blockPathOf(n *dom.Node) string {
	cur := n
	for cur != nil && render.IsInline(cur) {
		cur = cur.Parent
	}
	if cur == nil {
		return n.Path()
	}
	return cur.Path()
}

// SelectRandom is the baseline sampler of the paper's Table II: it takes k
// pages pseudo-randomly (deterministically, from the seed) and annotates
// them with every recognizer.
func SelectRandom(pages []*dom.Node, recs map[string]recognize.Recognizer, k int, seed uint64) *Result {
	if k <= 0 {
		k = 20
	}
	idx := make([]int, len(pages))
	for i := range idx {
		idx[i] = i
	}
	// xorshift shuffle for deterministic, seed-driven selection.
	state := seed | 1
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for i := len(idx) - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		idx[i], idx[j] = idx[j], idx[i]
	}
	if k > len(idx) {
		k = len(idx)
	}
	res := &Result{}
	for _, i := range idx[:k] {
		res.Sample = append(res.Sample, AnnotatePage(pages[i], recs))
	}
	return res
}
