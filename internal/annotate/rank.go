package annotate

import (
	"sort"

	"objectrunner/internal/dom"
	"objectrunner/internal/recognize"
	"objectrunner/internal/sod"
)

// SourceScore summarizes how relevant and data-rich a source looks for a
// given SOD — the paper's future-work goal of automatically selecting
// "the most relevant and data rich sources" for an input SOD (§VI). The
// score is the average per-page minimum annotation score across the SOD's
// entity types: a source must witness every type to rank at all.
type SourceScore struct {
	Index int     // position in the input slice
	Score float64 // average per-page MinScore over all entity types
	Pages int     // pages annotated
}

// RankSources scores each candidate source (a slice of parsed pages) for
// the SOD and returns the ranking, best first. Only a bounded number of
// pages per source is annotated (probe), keeping the ranking cheap.
func RankSources(sources [][]*dom.Node, s *sod.Type, recs map[string]recognize.Recognizer, tf TermFreq, probe int) []SourceScore {
	if probe <= 0 {
		probe = 5
	}
	var types []string
	for _, e := range s.EntityTypes() {
		types = append(types, e.Name)
	}
	out := make([]SourceScore, 0, len(sources))
	for i, pages := range sources {
		n := len(pages)
		if n > probe {
			n = probe
		}
		total := 0.0
		for _, p := range pages[:n] {
			pa := AnnotatePage(p, recs)
			total += MinScore(pa, types, tf)
		}
		sc := SourceScore{Index: i, Pages: n}
		if n > 0 {
			sc.Score = total / float64(n)
		}
		out = append(out, sc)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}
