// Package recognize implements the type recognizers of ObjectRunner
// (paper §II.A, §III.A). A recognizer decides which substrings of a text
// are instances of an entity type. Three families are provided, matching
// the paper: (i) user-defined regular expressions, (ii) system-predefined
// recognizers (dates, addresses, phone numbers, prices, ...), and (iii)
// open, dictionary-based isInstanceOf recognizers whose gazetteers are
// built on the fly from a knowledge base or a Web corpus.
//
// Recognizers are never assumed to be entirely precise nor complete; every
// match carries a confidence score and downstream stages treat annotations
// as hints, not ground truth.
package recognize

import (
	"strings"
	"unicode"
)

// Match is one recognized instance inside a text.
type Match struct {
	Start      int     // byte offset of the first matched character
	End        int     // byte offset one past the last matched character
	Value      string  // the matched instance, as it appears in the text
	Confidence float64 // in (0, 1]
}

// Recognizer finds instances of one entity type in text.
type Recognizer interface {
	// Name identifies the recognizer (e.g. "date", "instanceOf(Artist)").
	Name() string
	// Find returns all non-overlapping matches in document order.
	Find(text string) []Match
}

// FindWhole reports whether the entire text (modulo surrounding space) is
// a single instance according to r, and with what confidence.
func FindWhole(r Recognizer, text string) (float64, bool) {
	trimmed := strings.TrimSpace(text)
	for _, m := range r.Find(trimmed) {
		if strings.TrimSpace(trimmed[m.Start:m.End]) == trimmed {
			return m.Confidence, true
		}
	}
	return 0, false
}

// Tokenize splits text into lower-cased word tokens, dropping punctuation.
// It is the shared lexical basis for dictionary matching and corpus
// statistics.
func Tokenize(text string) []string {
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			cur.WriteRune(unicode.ToLower(r))
		case r == '\'' || r == '’':
			// Keep apostrophes inside words (O'Brien).
			if cur.Len() > 0 {
				cur.WriteRune('\'')
			}
		default:
			flush()
		}
	}
	flush()
	return toks
}

// NormalizePhrase lower-cases and collapses a phrase to its token form,
// so "The  Beatles" and "the beatles" compare equal.
func NormalizePhrase(s string) string {
	return strings.Join(Tokenize(s), " ")
}
