package recognize

import "testing"

// TestDictionaryBuildMatchesScanNormalization pins the fix for the
// build/match tokenization mismatch: entries must be indexed through the
// same tokenSpans + ToLower(normToken) pipeline Find applies to page
// text, or entries with leading apostrophes (or unusual letter ranges)
// are stored under keys the scanner never produces.
func TestDictionaryBuildMatchesScanNormalization(t *testing.T) {
	d := NewDictionary("instanceOf(Artist)")
	d.Add("’Til Tuesday", 0.9)
	d.Add("IRON MAIDEN", 0.8)

	text := "Tonight: ’Til Tuesday live, then Iron Maiden on stage."
	ms := d.Find(text)
	if len(ms) != 2 {
		t.Fatalf("Find matched %d entries, want 2: %+v", len(ms), ms)
	}
	if ms[0].Value != "’Til Tuesday" {
		t.Errorf("first match = %q, want the apostrophe-led entry", ms[0].Value)
	}
	if ms[1].Value != "Iron Maiden" {
		t.Errorf("second match = %q", ms[1].Value)
	}
}

func TestDictionaryContainsNormalizesLikeFind(t *testing.T) {
	d := NewDictionary("instanceOf(Artist)")
	d.Add("’Til Tuesday", 0.9)
	for _, phrase := range []string{"’Til Tuesday", "'til tuesday", "’TIL TUESDAY"} {
		if conf, ok := d.Contains(phrase); !ok || conf != 0.9 {
			t.Errorf("Contains(%q) = (%v, %v), want (0.9, true)", phrase, conf, ok)
		}
	}
	if _, ok := d.Contains("Til Tuesday"); ok {
		t.Error("Contains matched without the apostrophe token")
	}
}

func TestDictionaryAddDeduplicatesApostropheVariants(t *testing.T) {
	d := NewDictionary("instanceOf(Artist)")
	d.Add("’Til Tuesday", 0.5)
	d.Add("'Til Tuesday", 0.8) // same tokens after normalization
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want the variants merged into 1 entry", d.Len())
	}
	if conf, ok := d.Contains("'til tuesday"); !ok || conf != 0.8 {
		t.Errorf("merged confidence = (%v, %v), want the higher 0.8", conf, ok)
	}
}
