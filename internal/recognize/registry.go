package recognize

import (
	"fmt"
	"strings"
	"sync"

	"objectrunner/internal/sod"
)

// GazetteerSource supplies instances for open isInstanceOf types. The
// knowledge-base and corpus packages implement it (paper §III.A lists the
// two alternatives: querying an ontology and Hearst patterns over a Web
// corpus).
type GazetteerSource interface {
	// Instances returns scored instances of the named class. An empty
	// result is legitimate: sources are best-effort.
	Instances(class string) []Entry
}

// Registry resolves the recognizer references of an SOD to concrete
// recognizers, constructing dictionary recognizers on the fly from the
// configured gazetteer sources.
// A Registry is safe for concurrent use: the mutex guards the predefined
// table and the cache, so sources resolved from parallel workers share
// one dictionary instead of racing on the map.
type Registry struct {
	mu         sync.Mutex
	sources    []GazetteerSource
	predefined map[string]func() Recognizer
	cache      map[string]Recognizer
}

// NewRegistry creates a registry with the standard predefined recognizers
// and the given gazetteer sources (consulted in order for isInstanceOf
// types, all contributions merged).
func NewRegistry(sources ...GazetteerSource) *Registry {
	r := &Registry{
		sources: sources,
		cache:   make(map[string]Recognizer),
		predefined: map[string]func() Recognizer{
			"date":    NewDate,
			"year":    NewYear,
			"price":   NewPrice,
			"phone":   NewPhone,
			"address": NewAddress,
			"email":   NewEmail,
			"number":  NewNumber,
			"isbn":    NewISBN,
		},
	}
	return r
}

// RegisterPredefined adds (or replaces) a named predefined recognizer
// family.
func (r *Registry) RegisterPredefined(kind string, ctor func() Recognizer) {
	r.mu.Lock()
	r.predefined[strings.ToLower(kind)] = ctor
	r.mu.Unlock()
}

// Resolve returns the recognizer for a reference, building and caching it
// on first use.
func (r *Registry) Resolve(ref sod.RecognizerRef) (Recognizer, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := strings.ToLower(ref.Kind) + "(" + ref.Arg + ")"
	if rec, ok := r.cache[key]; ok {
		return rec, nil
	}
	rec, err := r.build(ref)
	if err != nil {
		return nil, err
	}
	r.cache[key] = rec
	return rec, nil
}

func (r *Registry) build(ref sod.RecognizerRef) (Recognizer, error) {
	kind := strings.ToLower(ref.Kind)
	switch {
	case kind == "regex":
		if ref.Arg == "" {
			return nil, fmt.Errorf("recognize: regex recognizer needs a pattern")
		}
		return NewRegex("regex("+ref.Arg+")", ref.Arg)
	case ref.IsInstanceOf():
		if ref.Arg == "" {
			return nil, fmt.Errorf("recognize: instanceOf recognizer needs a class name")
		}
		d := NewDictionary("instanceOf(" + ref.Arg + ")")
		for _, src := range r.sources {
			d.AddAll(src.Instances(ref.Arg))
		}
		return d, nil
	default:
		ctor, ok := r.predefined[kind]
		if !ok {
			return nil, fmt.Errorf("recognize: unknown recognizer kind %q", ref.Kind)
		}
		return ctor(), nil
	}
}

// ResolveAll maps every entity type of the SOD to its recognizer, keyed by
// entity type name. It fails fast on the first unresolvable reference.
func (r *Registry) ResolveAll(t *sod.Type) (map[string]Recognizer, error) {
	out := make(map[string]Recognizer)
	for _, e := range t.EntityTypes() {
		rec, err := r.Resolve(e.Recognizer)
		if err != nil {
			return nil, fmt.Errorf("recognize: type %q: %w", e.Name, err)
		}
		out[e.Name] = rec
	}
	return out, nil
}

// Dictionary returns the dictionary recognizer cached for an isInstanceOf
// reference, if one has been resolved; used by the enrichment loop to add
// discovered instances back.
func (r *Registry) Dictionary(ref sod.RecognizerRef) (*Dictionary, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := strings.ToLower(ref.Kind) + "(" + ref.Arg + ")"
	d, ok := r.cache[key].(*Dictionary)
	return d, ok
}

// StaticSource is a GazetteerSource over a fixed in-memory table, useful
// for tests and for user-supplied dictionaries.
type StaticSource map[string][]Entry

// Instances implements GazetteerSource.
func (s StaticSource) Instances(class string) []Entry { return s[class] }
