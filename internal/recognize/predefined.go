package recognize

import (
	"fmt"
	"regexp"
	"sync"
)

// RegexRecognizer matches a user-supplied regular expression. Matches have
// full confidence: the user asserted the pattern.
type RegexRecognizer struct {
	name string
	re   *regexp.Regexp
	conf float64
}

// NewRegex compiles a user-defined regular-expression recognizer.
func NewRegex(name, pattern string) (*RegexRecognizer, error) {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, fmt.Errorf("recognize: bad pattern for %s: %w", name, err)
	}
	return &RegexRecognizer{name: name, re: re, conf: 1}, nil
}

// mustRegex builds a predefined recognizer from a known-good pattern.
func mustRegex(name, pattern string, conf float64) *RegexRecognizer {
	return &RegexRecognizer{name: name, re: regexp.MustCompile(pattern), conf: conf}
}

// Name implements Recognizer.
func (r *RegexRecognizer) Name() string { return r.name }

// Find implements Recognizer.
func (r *RegexRecognizer) Find(text string) []Match {
	var out []Match
	for _, loc := range r.re.FindAllStringIndex(text, -1) {
		out = append(out, Match{
			Start:      loc[0],
			End:        loc[1],
			Value:      text[loc[0]:loc[1]],
			Confidence: r.conf,
		})
	}
	return out
}

// Predefined recognizer patterns. These mirror the paper's "system
// predefined" family (addresses, dates, phone numbers, etc.). Patterns are
// deliberately permissive: recognizers are hints, and wrapper inference
// tolerates both false positives and false negatives.
const (
	monthNames = `(?:Jan(?:uary)?|Feb(?:ruary)?|Mar(?:ch)?|Apr(?:il)?|May|Jun(?:e)?|Jul(?:y)?|Aug(?:ust)?|Sep(?:t(?:ember)?)?|Oct(?:ober)?|Nov(?:ember)?|Dec(?:ember)?)`
	dayNames   = `(?:Mon(?:day)?|Tue(?:s(?:day)?)?|Wed(?:nesday)?|Thu(?:rs(?:day)?)?|Fri(?:day)?|Sat(?:urday)?|Sun(?:day)?)`
	timeOfDay  = `(?:[01]?\d|2[0-3]):[0-5]\d\s?(?:[ap]\.?m?\.?)?|(?:[01]?\d|2[0-3])\s?(?:[ap]\.?m?\.?)`
	streetKind = `(?:St(?:reet)?|Ave(?:nue)?|Blvd|Boulevard|R(?:oa)?d|Dr(?:ive)?|Lane|Ln|Way|Plaza|Pl(?:ace)?|Court|Ct|Square|Sq|Broadway)`
)

// The predefined recognizers are immutable once built (a compiled regexp
// is safe for concurrent use), so each family compiles exactly once per
// process via sync.OnceValue and every New* call returns the shared
// instance — wrapper inference resolves recognizers per source, and
// compiling these alternation-heavy patterns sat on that hot path.

// NewDate recognizes calendar dates in the formats that dominate
// template-generated pages: "Monday May 11, 8:00pm", "Saturday August 8,
// 2010 8:00pm", "May 29 7:00p", "2010-05-29", "05/29/2010", "June 2011".
func NewDate() Recognizer { return dateRec() }

var dateRec = sync.OnceValue(func() Recognizer {
	pat := `(?i)(?:` +
		dayNames + `,?\s+` + monthNames + `\s+\d{1,2}\b(?:\s*,\s*\d{4})?(?:,?\s*(?:` + timeOfDay + `))?` + // Monday May 11, 8:00pm
		`|` + monthNames + `\s+\d{4}\b` + // June 2011
		`|` + monthNames + `\s+\d{1,2}\b(?:\s*,\s*\d{4})?(?:,?\s*(?:` + timeOfDay + `))?` + // May 29, 2010 / May 29 7:00p
		`|\d{1,2}\s+` + monthNames + `\s+\d{4}` + // 29 May 2010
		`|\d{4}-\d{2}-\d{2}` + // ISO
		`|\d{1,2}/\d{1,2}/\d{2,4}` + // US slashes
		`)`
	return mustRegex("date", pat, 0.95)
})

// NewYear recognizes four-digit years in the plausible publication range.
func NewYear() Recognizer { return yearRec() }

var yearRec = sync.OnceValue(func() Recognizer {
	return mustRegex("year", `\b(?:1[89]\d{2}|20\d{2})\b`, 0.8)
})

// NewPrice recognizes currency amounts: "$12.99", "USD 4,500", "£7",
// "12.99 EUR".
func NewPrice() Recognizer { return priceRec() }

var priceRec = sync.OnceValue(func() Recognizer {
	pat := `(?:[$£€¥]\s?\d{1,3}(?:,\d{3})*(?:\.\d{2})?` +
		`|(?:USD|EUR|GBP|AUD|CAD)\s?\d{1,3}(?:,\d{3})*(?:\.\d{2})?` +
		`|\d{1,3}(?:,\d{3})*(?:\.\d{2})?\s?(?:USD|EUR|GBP|dollars|euros))`
	return mustRegex("price", pat, 0.95)
})

// NewPhone recognizes North-American and international phone numbers.
func NewPhone() Recognizer { return phoneRec() }

var phoneRec = sync.OnceValue(func() Recognizer {
	pat := `(?:\+?1[\s.-]?)?(?:\(\d{3}\)|\d{3})[\s.-]\d{3}[\s.-]\d{4}\b` +
		`|\+\d{1,3}(?:[\s.-]\d{1,4}){2,6}\b`
	return mustRegex("phone", pat, 0.9)
})

// NewAddress recognizes street addresses ("237 West 42nd street",
// "4 Penn Plaza", "Delancey St") plus city/state/zip fragments. Addresses
// are the loosest predefined type — the paper treats them as a single
// entity type covering several textual shapes.
func NewAddress() Recognizer { return addressRec() }

var addressRec = sync.OnceValue(func() Recognizer {
	pat := `(?i)(?:\d{1,5}\s+(?:(?:\d+(?:st|nd|rd|th)|[A-Za-z']+)\.?\s+){0,3}` + streetKind + `\b` + // 237 West 42nd street, 4 Penn Plaza
		`|\b[A-Z][a-z]+(?:\s[A-Z][a-z]+)?\s+` + streetKind + `\b` + // Delancey St
		`|\b[A-Z][a-z]+(?:\s[A-Z][a-z]+)*,\s*[A-Z]{2}\s+\d{5}\b` + // City, ST 12345
		`|\b\d{5}(?:-\d{4})?\b)` // bare zip
	return mustRegex("address", pat, 0.7)
})

// NewEmail recognizes e-mail addresses.
func NewEmail() Recognizer { return emailRec() }

var emailRec = sync.OnceValue(func() Recognizer {
	return mustRegex("email", `\b[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+\.[A-Za-z]{2,}\b`, 0.98)
})

// NewNumber recognizes decimal numbers.
func NewNumber() Recognizer { return numberRec() }

var numberRec = sync.OnceValue(func() Recognizer {
	return mustRegex("number", `\b\d+(?:\.\d+)?\b`, 0.5)
})

// NewISBN recognizes 10- and 13-digit ISBNs with optional hyphens.
func NewISBN() Recognizer { return isbnRec() }

var isbnRec = sync.OnceValue(func() Recognizer {
	return mustRegex("isbn", `\b(?:97[89][- ]?)?\d{1,5}[- ]?\d{1,7}[- ]?\d{1,7}[- ]?[\dXx]\b`, 0.85)
})
