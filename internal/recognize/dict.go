package recognize

import (
	"sort"
	"strings"
)

// Entry is one gazetteer instance with its confidence score w.r.t. the
// type the dictionary is associated to (paper §III.A: "gazetteer instances
// should be described by confidence values").
type Entry struct {
	Value      string
	Confidence float64
}

// Dictionary is a dictionary-based (isInstanceOf) recognizer: an open set
// of known instances for a class, built on the fly from a knowledge base
// or a Web corpus, and enrichable with values discovered during
// extraction.
type Dictionary struct {
	name string
	// byFirst indexes entries by their first token for linear-time text
	// scanning.
	byFirst map[string][]dictEntry
	size    int
}

type dictEntry struct {
	tokens []string
	value  string
	conf   float64
}

// NewDictionary creates an empty dictionary recognizer with the given
// display name (conventionally "instanceOf(Class)").
func NewDictionary(name string) *Dictionary {
	return &Dictionary{name: name, byFirst: make(map[string][]dictEntry)}
}

// Name implements Recognizer.
func (d *Dictionary) Name() string { return d.name }

// Len returns the number of entries.
func (d *Dictionary) Len() int { return d.size }

// Add inserts an instance with its confidence. Adding an existing instance
// keeps the higher confidence (enrichment never degrades knowledge).
func (d *Dictionary) Add(value string, conf float64) {
	toks := matchTokens(value)
	if len(toks) == 0 {
		return
	}
	first := toks[0]
	for i, e := range d.byFirst[first] {
		if equalTokens(e.tokens, toks) {
			if conf > e.conf {
				d.byFirst[first][i].conf = conf
			}
			return
		}
	}
	d.byFirst[first] = append(d.byFirst[first], dictEntry{tokens: toks, value: value, conf: conf})
	d.size++
}

// AddAll inserts every entry.
func (d *Dictionary) AddAll(entries []Entry) {
	for _, e := range entries {
		d.Add(e.Value, e.Confidence)
	}
}

// Contains reports whether the phrase is a known instance and returns its
// confidence.
func (d *Dictionary) Contains(phrase string) (float64, bool) {
	toks := matchTokens(phrase)
	if len(toks) == 0 {
		return 0, false
	}
	for _, e := range d.byFirst[toks[0]] {
		if equalTokens(e.tokens, toks) {
			return e.conf, true
		}
	}
	return 0, false
}

// Entries returns a copy of all entries, sorted by descending confidence
// then value, for deterministic iteration.
func (d *Dictionary) Entries() []Entry {
	out := make([]Entry, 0, d.size)
	for _, bucket := range d.byFirst {
		for _, e := range bucket {
			out = append(out, Entry{Value: e.value, Confidence: e.conf})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// Find implements Recognizer: it scans the text for maximal dictionary
// phrases. Matching is token-based and case-insensitive; among entries
// starting at the same token, the longest match wins.
func (d *Dictionary) Find(text string) []Match {
	spans := tokenSpans(text)
	var out []Match
	i := 0
	for i < len(spans) {
		tok := strings.ToLower(normToken(text[spans[i].start:spans[i].end]))
		best := -1
		bestLen := 0
		bestConf := 0.0
		for _, e := range d.byFirst[tok] {
			n := len(e.tokens)
			if n <= bestLen || i+n > len(spans) {
				continue
			}
			ok := true
			for k := 1; k < n; k++ {
				w := strings.ToLower(normToken(text[spans[i+k].start:spans[i+k].end]))
				if w != e.tokens[k] {
					ok = false
					break
				}
			}
			if ok {
				best = n
				bestLen = n
				bestConf = e.conf
			}
		}
		if best > 0 {
			start, end := spans[i].start, spans[i+best-1].end
			out = append(out, Match{Start: start, End: end, Value: text[start:end], Confidence: bestConf})
			i += best
			continue
		}
		i++
	}
	return out
}

// matchTokens tokenizes a phrase exactly the way Find segments and
// normalizes page text: tokenSpans for segmentation, then
// ToLower(normToken(...)) per token. Entries must be stored through this
// pipeline — the general-purpose Tokenize differs at the edges (it drops
// leading apostrophes and uses the full Unicode letter classes), so
// entries like "’Til Tuesday" indexed through it would never match the
// "'til" token the scanner produces.
func matchTokens(text string) []string {
	spans := tokenSpans(text)
	toks := make([]string, 0, len(spans))
	for _, sp := range spans {
		toks = append(toks, strings.ToLower(normToken(text[sp.start:sp.end])))
	}
	return toks
}

type span struct{ start, end int }

// tokenSpans returns the byte spans of word tokens in text, mirroring
// Tokenize's segmentation.
func tokenSpans(text string) []span {
	var spans []span
	start := -1
	for i, r := range text {
		isWord := r == '\'' || r == '’' ||
			r >= '0' && r <= '9' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' ||
			r > 127 && isLetterRune(r)
		if isWord {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			spans = append(spans, span{start, i})
			start = -1
		}
	}
	if start >= 0 {
		spans = append(spans, span{start, len(text)})
	}
	return spans
}

func isLetterRune(r rune) bool {
	// Unicode letters beyond ASCII (accented names etc).
	return r >= 0x00C0 && r <= 0x024F || r >= 0x0370
}

// normToken normalizes a raw token the way Tokenize does (apostrophe
// variants unified).
func normToken(s string) string {
	return strings.ReplaceAll(s, "’", "'")
}

func equalTokens(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
