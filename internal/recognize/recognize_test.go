package recognize

import (
	"strings"
	"testing"
	"testing/quick"

	"objectrunner/internal/sod"
)

func values(ms []Match) []string {
	var out []string
	for _, m := range ms {
		out = append(out, m.Value)
	}
	return out
}

func TestDateRecognizer(t *testing.T) {
	d := NewDate()
	positive := []string{
		"Saturday August 8, 2010 8:00pm",
		"Monday May 11, 8:00pm",
		"Saturday May 29 7:00p",
		"Friday June 19 7:00p",
		"May 29, 2010",
		"29 May 2010",
		"2010-05-29",
		"05/29/2010",
		"June 2011",
	}
	for _, s := range positive {
		if conf, ok := FindWhole(d, s); !ok || conf <= 0 {
			t.Errorf("date %q not recognized (matches: %v)", s, values(d.Find(s)))
		}
	}
	negative := []string{"Metallica", "Madison Square Garden", "hello world", ""}
	for _, s := range negative {
		if _, ok := FindWhole(d, s); ok {
			t.Errorf("non-date %q recognized as whole date", s)
		}
	}
}

func TestDateFindInContext(t *testing.T) {
	d := NewDate()
	ms := d.Find("The show is on Monday May 11, 8:00pm at the Garden")
	if len(ms) != 1 {
		t.Fatalf("got %d matches: %v", len(ms), values(ms))
	}
	if !strings.HasPrefix(ms[0].Value, "Monday May 11") {
		t.Errorf("match = %q", ms[0].Value)
	}
}

func TestPriceRecognizer(t *testing.T) {
	p := NewPrice()
	for _, s := range []string{"$12.99", "$1,299.00", "£7", "EUR 45", "12.99 USD"} {
		if _, ok := FindWhole(p, s); !ok {
			t.Errorf("price %q not recognized", s)
		}
	}
	for _, s := range []string{"twelve", "date", ""} {
		if _, ok := FindWhole(p, s); ok {
			t.Errorf("non-price %q recognized", s)
		}
	}
}

func TestPhoneRecognizer(t *testing.T) {
	p := NewPhone()
	for _, s := range []string{"(212) 555-0198", "212-555-0198", "+1 212 555 0198", "+33 1 42 68 53 00"} {
		if len(p.Find(s)) == 0 {
			t.Errorf("phone %q not recognized", s)
		}
	}
	if len(p.Find("May 11, 2010")) != 0 {
		t.Error("date recognized as phone")
	}
}

func TestAddressRecognizer(t *testing.T) {
	a := NewAddress()
	for _, s := range []string{
		"237 West 42nd street",
		"4 Penn Plaza",
		"Delancey St",
		"131 W 55th St",
		"New York, NY 10019",
		"10019",
	} {
		if len(a.Find(s)) == 0 {
			t.Errorf("address %q not recognized", s)
		}
	}
	if len(a.Find("Metallica")) != 0 {
		t.Error("band name recognized as address")
	}
}

func TestEmailAndISBN(t *testing.T) {
	if _, ok := FindWhole(NewEmail(), "a.b@example.com"); !ok {
		t.Error("email not recognized")
	}
	if _, ok := FindWhole(NewISBN(), "978-0-306-40615-7"); !ok {
		t.Error("isbn not recognized")
	}
}

func TestYearRecognizer(t *testing.T) {
	y := NewYear()
	if _, ok := FindWhole(y, "2010"); !ok {
		t.Error("2010 not a year")
	}
	if _, ok := FindWhole(y, "123"); ok {
		t.Error("123 recognized as year")
	}
	if _, ok := FindWhole(y, "3010"); ok {
		t.Error("3010 recognized as year")
	}
}

func TestRegexRecognizer(t *testing.T) {
	r, err := NewRegex("custom", `[A-Z]{3}-\d{4}`)
	if err != nil {
		t.Fatal(err)
	}
	ms := r.Find("codes ABC-1234 and XYZ-9999 here")
	if len(ms) != 2 {
		t.Fatalf("got %d matches", len(ms))
	}
	if ms[0].Value != "ABC-1234" || ms[0].Start != 6 {
		t.Errorf("first match = %+v", ms[0])
	}
	if _, err := NewRegex("bad", `[`); err == nil {
		t.Error("invalid pattern accepted")
	}
}

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"The Beatles", "the beatles"},
		{"  B.B King  Blues & Grill ", "b b king blues grill"},
		{"O'Brien's", "o'brien's"},
		{"", ""},
		{"123 Main St.", "123 main st"},
	}
	for _, c := range cases {
		if got := strings.Join(Tokenize(c.in), " "); got != c.want {
			t.Errorf("Tokenize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestDictionaryBasics(t *testing.T) {
	d := NewDictionary("instanceOf(Artist)")
	d.Add("Metallica", 0.9)
	d.Add("The Beatles", 0.95)
	d.Add("B.B King Blues and Grill", 0.8)
	if d.Len() != 3 {
		t.Errorf("Len = %d", d.Len())
	}
	if conf, ok := d.Contains("metallica"); !ok || conf != 0.9 {
		t.Errorf("Contains(metallica) = %v, %v", conf, ok)
	}
	if _, ok := d.Contains("Queen"); ok {
		t.Error("unknown instance found")
	}
	// Re-adding keeps the max confidence.
	d.Add("Metallica", 0.5)
	if conf, _ := d.Contains("Metallica"); conf != 0.9 {
		t.Errorf("confidence degraded to %v", conf)
	}
	d.Add("METALLICA", 0.99)
	if conf, _ := d.Contains("Metallica"); conf != 0.99 {
		t.Errorf("confidence not raised: %v", conf)
	}
	if d.Len() != 3 {
		t.Errorf("duplicates created: Len = %d", d.Len())
	}
}

func TestDictionaryFind(t *testing.T) {
	d := NewDictionary("instanceOf(Artist)")
	d.AddAll([]Entry{
		{Value: "Metallica", Confidence: 0.9},
		{Value: "The Town Hall", Confidence: 0.8},
		{Value: "Town", Confidence: 0.3}, // shorter prefix of a longer entry
	})
	ms := d.Find("Tonight Metallica plays at The Town Hall downtown")
	if len(ms) != 2 {
		t.Fatalf("matches = %v", values(ms))
	}
	if ms[0].Value != "Metallica" {
		t.Errorf("first = %q", ms[0].Value)
	}
	// Longest match wins over the "Town" entry.
	if ms[1].Value != "The Town Hall" {
		t.Errorf("second = %q", ms[1].Value)
	}
	if ms[1].Confidence != 0.8 {
		t.Errorf("conf = %v", ms[1].Confidence)
	}
}

func TestDictionaryFindCaseAndPunct(t *testing.T) {
	d := NewDictionary("x")
	d.Add("B.B King Blues and Grill", 0.8)
	ms := d.Find("<at> b.b king blues and grill!")
	if len(ms) != 1 {
		t.Fatalf("matches = %v", values(ms))
	}
}

func TestDictionaryOffsets(t *testing.T) {
	d := NewDictionary("x")
	d.Add("Muse", 0.9)
	text := "see Muse live"
	ms := d.Find(text)
	if len(ms) != 1 {
		t.Fatal("no match")
	}
	if text[ms[0].Start:ms[0].End] != "Muse" {
		t.Errorf("span = %q", text[ms[0].Start:ms[0].End])
	}
}

func TestDictionaryEntriesSorted(t *testing.T) {
	d := NewDictionary("x")
	d.Add("b", 0.5)
	d.Add("a", 0.5)
	d.Add("c", 0.9)
	es := d.Entries()
	if es[0].Value != "c" || es[1].Value != "a" || es[2].Value != "b" {
		t.Errorf("entries = %v", es)
	}
}

func TestDictionaryEmptyValue(t *testing.T) {
	d := NewDictionary("x")
	d.Add("  ", 0.5)
	d.Add("", 0.5)
	if d.Len() != 0 {
		t.Error("empty values should be ignored")
	}
}

// Property: every match's span reproduces its value.
func TestDictionarySpanConsistency(t *testing.T) {
	d := NewDictionary("x")
	d.AddAll([]Entry{{Value: "alpha beta", Confidence: 0.9}, {Value: "gamma", Confidence: 0.8}})
	f := func(prefix, suffix string) bool {
		text := prefix + " alpha beta " + suffix + " gamma"
		for _, m := range d.Find(text) {
			if text[m.Start:m.End] != m.Value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRegistryPredefined(t *testing.T) {
	r := NewRegistry()
	rec, err := r.Resolve(sod.RecognizerRef{Kind: "date"})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Name() != "date" {
		t.Errorf("name = %s", rec.Name())
	}
	// Caching: same instance back.
	rec2, _ := r.Resolve(sod.RecognizerRef{Kind: "date"})
	if rec != rec2 {
		t.Error("recognizer not cached")
	}
}

func TestRegistryInstanceOf(t *testing.T) {
	src := StaticSource{"Artist": {{Value: "Metallica", Confidence: 0.9}, {Value: "Muse", Confidence: 0.8}}}
	r := NewRegistry(src)
	rec, err := r.Resolve(sod.RecognizerRef{Kind: "instanceOf", Arg: "Artist"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Find("Metallica live")) != 1 {
		t.Error("gazetteer not populated from source")
	}
	d, ok := r.Dictionary(sod.RecognizerRef{Kind: "instanceOf", Arg: "Artist"})
	if !ok || d.Len() != 2 {
		t.Error("Dictionary accessor failed")
	}
}

func TestRegistryMergesSources(t *testing.T) {
	a := StaticSource{"Artist": {{Value: "Metallica", Confidence: 0.9}}}
	b := StaticSource{"Artist": {{Value: "Muse", Confidence: 0.8}}}
	r := NewRegistry(a, b)
	d, _ := r.Resolve(sod.RecognizerRef{Kind: "instanceOf", Arg: "Artist"})
	dict := d.(*Dictionary)
	if dict.Len() != 2 {
		t.Errorf("merged dict has %d entries, want 2", dict.Len())
	}
}

func TestRegistryErrors(t *testing.T) {
	r := NewRegistry()
	for _, ref := range []sod.RecognizerRef{
		{Kind: "nosuch"},
		{Kind: "regex"},           // missing pattern
		{Kind: "regex", Arg: "["}, // bad pattern
		{Kind: "instanceOf"},      // missing class
	} {
		if _, err := r.Resolve(ref); err == nil {
			t.Errorf("Resolve(%v) succeeded", ref)
		}
	}
}

func TestRegistryResolveAll(t *testing.T) {
	src := StaticSource{"Artist": {{Value: "Muse", Confidence: 0.8}}, "Theater": {{Value: "The Town Hall", Confidence: 0.7}}}
	r := NewRegistry(src)
	sodT := sod.MustParse(`tuple {
		artist: instanceOf(Artist)
		date: date
		location: tuple { theater: instanceOf(Theater), address: address ? }
	}`)
	m, err := r.ResolveAll(sodT)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"artist", "date", "theater", "address"} {
		if m[name] == nil {
			t.Errorf("no recognizer for %s", name)
		}
	}
}

func TestRegistryRegisterPredefined(t *testing.T) {
	r := NewRegistry()
	r.RegisterPredefined("color", func() Recognizer {
		d := NewDictionary("color")
		d.Add("red", 1)
		return d
	})
	rec, err := r.Resolve(sod.RecognizerRef{Kind: "color"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Find("a red car")) != 1 {
		t.Error("custom predefined recognizer not working")
	}
}

func TestNormalizePhrase(t *testing.T) {
	if NormalizePhrase("The  BEATLES!") != "the beatles" {
		t.Error("normalize failed")
	}
}

func TestFindWholePartialMatch(t *testing.T) {
	d := NewDate()
	if _, ok := FindWhole(d, "Concert on May 29, 2010 tonight"); ok {
		t.Error("partial match accepted as whole")
	}
	if _, ok := FindWhole(d, "  May 29, 2010  "); !ok {
		t.Error("whole match with surrounding space rejected")
	}
}
