// Package corpus implements the second gazetteer-construction alternative
// of ObjectRunner (paper §III.A): looking for instances of a type directly
// in a textual Web corpus by applying Hearst patterns ("Artist such as X",
// "X is an Artist", ...) and scoring the candidates with the
// Str-ICNorm-Thresh metric of McDowell & Cafarella (paper Eq. 1):
//
//	score(i,t) = Σ_p count(i,t,p) / (max(count(i), count25) · count(t))
//
// where count(i,t,p) is the number of corpus hits for pair (i,t) under
// pattern p, count(i) is the hit count of term i, count(t) of the class
// term, and count25 the hit count at the 25th percentile. The paper uses a
// ClueWeb-scale corpus; this package provides the same code path over an
// in-memory document collection.
package corpus

import (
	"sort"
	"strings"
	"unicode"

	"objectrunner/internal/recognize"
)

// Corpus is an in-memory collection of text documents with token-level
// indexes for pattern matching and hit counting.
type Corpus struct {
	docs [][]token
	// termCount caches Count results for single tokens.
	unigram map[string]int
	// MaxPhraseLen bounds candidate instance length in tokens.
	MaxPhraseLen int
}

type token struct {
	raw   string
	low   string
	upper bool // starts with an uppercase letter in the source text
}

// New creates an empty corpus.
func New() *Corpus {
	return &Corpus{unigram: make(map[string]int), MaxPhraseLen: 6}
}

// AddDocument tokenizes and stores a document.
func (c *Corpus) AddDocument(text string) {
	toks := lexDoc(text)
	c.docs = append(c.docs, toks)
	for _, t := range toks {
		if t.low != "," && t.low != "." {
			c.unigram[t.low]++
		}
	}
}

// NumDocuments returns how many documents the corpus holds.
func (c *Corpus) NumDocuments() int { return len(c.docs) }

// lexDoc splits text into word tokens, keeping "," and "." as standalone
// tokens because Hearst patterns are punctuation-sensitive.
func lexDoc(text string) []token {
	var toks []token
	var cur []rune
	flush := func() {
		if len(cur) > 0 {
			raw := string(cur)
			toks = append(toks, token{
				raw:   raw,
				low:   strings.ToLower(raw),
				upper: unicode.IsUpper(cur[0]),
			})
			cur = cur[:0]
		}
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '\'' || r == '’' || r == '-' || r == '.' && len(cur) > 0:
			// Periods inside abbreviations (B.B) stay attached; sentence
			// periods follow a space or end the text and are split below.
			cur = append(cur, r)
		case r == ',' || r == '.':
			flush()
			toks = append(toks, token{raw: string(r), low: string(r)})
		default:
			flush()
		}
	}
	flush()
	// Detach trailing periods from words ("Grill." -> "Grill", ".").
	var out []token
	for _, t := range toks {
		if len(t.raw) > 1 && strings.HasSuffix(t.raw, ".") && !strings.Contains(t.raw[:len(t.raw)-1], ".") {
			w := t.raw[:len(t.raw)-1]
			out = append(out, token{raw: w, low: strings.ToLower(w), upper: t.upper}, token{raw: ".", low: "."})
			continue
		}
		out = append(out, t)
	}
	return out
}

// Count returns the number of occurrences of the phrase in the corpus
// (token-based, case-insensitive).
func (c *Corpus) Count(phrase string) int {
	want := recognize.Tokenize(phrase)
	if len(want) == 0 {
		return 0
	}
	if len(want) == 1 {
		return c.unigram[want[0]]
	}
	count := 0
	for _, doc := range c.docs {
		for i := 0; i+len(want) <= len(doc); i++ {
			ok := true
			for k, w := range want {
				if normLow(doc[i+k].low) != w {
					ok = false
					break
				}
			}
			if ok {
				count++
			}
		}
	}
	return count
}

// normLow maps a lexer token to Tokenize's normal form (strip embedded
// periods and hyphens so "B.B" matches tokenized "b b"... single-token
// approximation: drop dots/hyphens).
func normLow(s string) string {
	s = strings.ReplaceAll(s, ".", "")
	s = strings.ReplaceAll(s, "-", "")
	s = strings.ReplaceAll(s, "’", "'")
	return s
}

// TermFrequency returns the corpus hit count of a phrase with a floor of 1
// (the tf(i) denominator of paper Eq. 2 and 3).
func (c *Corpus) TermFrequency(phrase string) float64 {
	if n := c.Count(phrase); n > 1 {
		return float64(n)
	}
	return 1
}

// Candidate is one instance extracted by Hearst patterns, with per-pattern
// hit counts.
type Candidate struct {
	Value string
	ByPat map[string]int
	Total int
}

// patternNames lists the implemented Hearst patterns. "t" stands for the
// class term (matched in singular or plural form).
var patternNames = []string{
	"t such as X",
	"such t as X",
	"t including X",
	"t especially X",
	"X is a t",
	"X and other t",
}

// Extract applies the Hearst patterns for the class and returns candidates
// with their per-pattern counts.
func (c *Corpus) Extract(class string) []Candidate {
	classToks := recognize.Tokenize(class)
	if len(classToks) == 0 {
		return nil
	}
	found := make(map[string]*Candidate)
	add := func(val string, pat string) {
		if val == "" {
			return
		}
		key := recognize.NormalizePhrase(val)
		cand, ok := found[key]
		if !ok {
			cand = &Candidate{Value: val, ByPat: make(map[string]int)}
			found[key] = cand
		}
		cand.ByPat[pat]++
		cand.Total++
	}
	for _, doc := range c.docs {
		c.scanDoc(doc, classToks, add)
	}
	out := make([]Candidate, 0, len(found))
	for _, cand := range found {
		out = append(out, *cand)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// classAt reports whether the class term (singular or plural) occurs at
// position i and returns the number of tokens consumed.
func classAt(doc []token, i int, class []string) int {
	if i+len(class) > len(doc) {
		return 0
	}
	for k := 0; k < len(class)-1; k++ {
		if doc[i+k].low != class[k] {
			return 0
		}
	}
	last := doc[i+len(class)-1].low
	want := class[len(class)-1]
	if last == want || last == want+"s" || last == want+"es" ||
		strings.HasSuffix(want, "y") && last == want[:len(want)-1]+"ies" {
		return len(class)
	}
	return 0
}

func (c *Corpus) scanDoc(doc []token, class []string, add func(string, string)) {
	n := len(doc)
	for i := 0; i < n; i++ {
		if k := classAt(doc, i, class); k > 0 {
			j := i + k
			// "t such as X", "t , such as X"
			j2 := skipComma(doc, j)
			if at(doc, j2, "such") && at(doc, j2+1, "as") {
				c.addList(doc, j2+2, "t such as X", add)
			}
			// "t including X" / "t , including X"
			if at(doc, j2, "including") {
				c.addList(doc, j2+1, "t including X", add)
			}
			// "t especially X"
			if at(doc, j2, "especially") {
				c.addList(doc, j2+1, "t especially X", add)
			}
		}
		// "such t as X"
		if at(doc, i, "such") {
			if k := classAt(doc, i+1, class); k > 0 && at(doc, i+1+k, "as") {
				c.addList(doc, i+2+k, "such t as X", add)
			}
		}
		// "X is a t" / "X is an t"
		if at(doc, i, "is") && (at(doc, i+1, "a") || at(doc, i+1, "an")) {
			if classAt(doc, i+2, class) > 0 {
				if v := c.properPhraseEndingAt(doc, i-1); v != "" {
					add(v, "X is a t")
				}
			}
		}
		// "X and other t"
		if at(doc, i, "and") && at(doc, i+1, "other") {
			if classAt(doc, i+2, class) > 0 {
				if v := c.properPhraseEndingAt(doc, i-1); v != "" {
					add(v, "X and other t")
				}
			}
		}
	}
}

func at(doc []token, i int, word string) bool {
	return i >= 0 && i < len(doc) && doc[i].low == word
}

func skipComma(doc []token, i int) int {
	if i < len(doc) && doc[i].low == "," {
		return i + 1
	}
	return i
}

// addList consumes a comma/and-separated list of proper phrases starting
// at i: "Madonna , Muse and Coldplay".
func (c *Corpus) addList(doc []token, i int, pat string, add func(string, string)) {
	for i < len(doc) {
		v, next := c.properPhraseAt(doc, i)
		if v == "" {
			return
		}
		add(v, pat)
		i = next
		// Separators between list items.
		switch {
		case at(doc, i, ","):
			i++
			if at(doc, i, "and") || at(doc, i, "or") {
				i++
			}
		case at(doc, i, "and"), at(doc, i, "or"):
			i++
		default:
			return
		}
	}
}

// properPhraseAt reads a maximal run of capitalized tokens (a proper-name
// phrase) starting at i and returns it with the next index. Lower-case
// connector words ("of", "the", "and" inside names) are allowed only
// between capitalized tokens.
func (c *Corpus) properPhraseAt(doc []token, i int) (string, int) {
	var parts []string
	j := i
	for j < len(doc) && len(parts) < c.MaxPhraseLen {
		t := doc[j]
		if t.upper || len(t.raw) > 0 && t.raw[0] >= '0' && t.raw[0] <= '9' {
			parts = append(parts, t.raw)
			j++
			continue
		}
		// Connector permitted mid-phrase when followed by a capital. "and"
		// is deliberately excluded: it separates list items in the
		// patterns ("X, Y and Z").
		if len(parts) > 0 && (t.low == "of" || t.low == "the") &&
			j+1 < len(doc) && doc[j+1].upper {
			parts = append(parts, t.raw)
			j += 2
			parts = append(parts, doc[j-1].raw)
			continue
		}
		break
	}
	if len(parts) == 0 {
		return "", i
	}
	return strings.Join(parts, " "), j
}

// properPhraseEndingAt reads backwards the maximal proper phrase ending at
// index i.
func (c *Corpus) properPhraseEndingAt(doc []token, i int) string {
	if i < 0 || i >= len(doc) || !doc[i].upper {
		return ""
	}
	start := i
	for start-1 >= 0 && doc[start-1].upper && i-start+1 < c.MaxPhraseLen {
		start--
	}
	var parts []string
	for k := start; k <= i; k++ {
		parts = append(parts, doc[k].raw)
	}
	return strings.Join(parts, " ")
}

// Score extracts candidates for the class and scores them with the
// Str-ICNorm-Thresh metric (paper Eq. 1), normalised so the best candidate
// has confidence 1. Implements recognize.GazetteerSource semantics via the
// Source adapter.
func (c *Corpus) Score(class string) []recognize.Entry {
	cands := c.Extract(class)
	if len(cands) == 0 {
		return nil
	}
	countT := float64(c.Count(class))
	if countT < 1 {
		countT = 1
	}
	// count25: the hit count at the 25th percentile of candidate counts.
	counts := make([]int, 0, len(cands))
	for _, cand := range cands {
		counts = append(counts, c.Count(cand.Value))
	}
	sort.Ints(counts)
	count25 := float64(counts[len(counts)/4])
	if count25 < 1 {
		count25 = 1
	}
	raw := make([]float64, len(cands))
	maxScore := 0.0
	for i, cand := range cands {
		ci := float64(c.Count(cand.Value))
		denomBase := ci
		if count25 > denomBase {
			denomBase = count25
		}
		s := 0.0
		for _, hits := range cand.ByPat {
			s += float64(hits)
		}
		s /= denomBase * countT
		raw[i] = s
		if s > maxScore {
			maxScore = s
		}
	}
	if maxScore == 0 {
		return nil
	}
	out := make([]recognize.Entry, 0, len(cands))
	for i, cand := range cands {
		out = append(out, recognize.Entry{Value: cand.Value, Confidence: raw[i] / maxScore})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// Source adapts the corpus to recognize.GazetteerSource with an optional
// confidence threshold: candidates scoring below Threshold (relative to
// the best) are dropped, mirroring the -Thresh part of the metric.
type Source struct {
	Corpus    *Corpus
	Threshold float64
}

// Instances implements recognize.GazetteerSource.
func (s Source) Instances(class string) []recognize.Entry {
	es := s.Corpus.Score(class)
	if s.Threshold <= 0 {
		return es
	}
	var out []recognize.Entry
	for _, e := range es {
		if e.Confidence >= s.Threshold {
			out = append(out, e)
		}
	}
	return out
}
