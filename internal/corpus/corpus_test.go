package corpus

import (
	"testing"
)

func seeded() *Corpus {
	c := New()
	c.AddDocument("Famous artists such as Madonna, Muse and Coldplay toured last year.")
	c.AddDocument("Metallica is an artist known worldwide. Madonna released a new record.")
	c.AddDocument("Many bands, including Radiohead and Muse, played the festival.")
	c.AddDocument("Such artists as Bob Dylan perform rarely.")
	c.AddDocument("Coldplay and other artists joined the lineup.")
	c.AddDocument("The city of New York hosts concerts. New York is big. New York again.")
	return c
}

func TestCount(t *testing.T) {
	c := seeded()
	if got := c.Count("Madonna"); got != 2 {
		t.Errorf("Count(Madonna) = %d, want 2", got)
	}
	if got := c.Count("New York"); got != 3 {
		t.Errorf("Count(New York) = %d, want 3", got)
	}
	if got := c.Count("zzz"); got != 0 {
		t.Errorf("Count(zzz) = %d", got)
	}
	if got := c.Count(""); got != 0 {
		t.Errorf("Count(\"\") = %d", got)
	}
}

func TestTermFrequencyFloor(t *testing.T) {
	c := seeded()
	if c.TermFrequency("neverseen") != 1 {
		t.Error("tf floor")
	}
	if c.TermFrequency("New York") != 3 {
		t.Error("tf of common phrase")
	}
}

func TestExtractSuchAs(t *testing.T) {
	c := seeded()
	cands := c.Extract("artist")
	byVal := make(map[string]*Candidate)
	for i := range cands {
		byVal[cands[i].Value] = &cands[i]
	}
	for _, want := range []string{"Madonna", "Muse", "Coldplay"} {
		cand, ok := byVal[want]
		if !ok {
			t.Errorf("%s not extracted (got %v)", want, names(cands))
			continue
		}
		if cand.ByPat["t such as X"] == 0 && cand.ByPat["X and other t"] == 0 && cand.ByPat["such t as X"] == 0 {
			t.Errorf("%s extracted by unexpected patterns: %v", want, cand.ByPat)
		}
	}
}

func names(cs []Candidate) []string {
	var out []string
	for _, c := range cs {
		out = append(out, c.Value)
	}
	return out
}

func TestExtractIsA(t *testing.T) {
	c := seeded()
	cands := c.Extract("artist")
	for _, cand := range cands {
		if cand.Value == "Metallica" {
			if cand.ByPat["X is a t"] != 1 {
				t.Errorf("Metallica patterns = %v", cand.ByPat)
			}
			return
		}
	}
	t.Errorf("Metallica not extracted: %v", names(cands))
}

func TestExtractAndOther(t *testing.T) {
	c := seeded()
	for _, cand := range c.Extract("artist") {
		if cand.Value == "Coldplay" && cand.ByPat["X and other t"] >= 1 {
			return
		}
	}
	t.Error("'Coldplay and other artists' not matched")
}

func TestExtractIncludingPlural(t *testing.T) {
	c := seeded()
	found := map[string]bool{}
	for _, cand := range c.Extract("band") {
		found[cand.Value] = true
	}
	if !found["Radiohead"] || !found["Muse"] {
		t.Errorf("including-pattern candidates = %v", found)
	}
}

func TestExtractSuchTAs(t *testing.T) {
	c := seeded()
	for _, cand := range c.Extract("artist") {
		if cand.Value == "Bob Dylan" {
			if cand.ByPat["such t as X"] != 1 {
				t.Errorf("Bob Dylan patterns = %v", cand.ByPat)
			}
			return
		}
	}
	t.Error("'Such artists as Bob Dylan' not matched")
}

func TestExtractMultiwordPhrases(t *testing.T) {
	c := New()
	c.AddDocument("Venues such as The Town Hall and Madison Square Garden sold out.")
	found := map[string]bool{}
	for _, cand := range c.Extract("venue") {
		found[cand.Value] = true
	}
	if !found["The Town Hall"] {
		t.Errorf("multiword candidate missing: %v", found)
	}
	if !found["Madison Square Garden"] {
		t.Errorf("second list item missing: %v", found)
	}
}

func TestExtractUnknownClass(t *testing.T) {
	c := seeded()
	if got := c.Extract("zeppelin"); len(got) != 0 {
		t.Errorf("unknown class extracted %v", names(got))
	}
	if got := c.Extract(""); got != nil {
		t.Error("empty class should yield nil")
	}
}

func TestScoreOrderingAndNormalization(t *testing.T) {
	c := New()
	// Muse has three pattern hits over three mentions (ratio 1); Madonna
	// has one pattern hit over two mentions (ratio 0.5). New York is
	// frequent in the corpus, so its single hit is damped by count(i).
	c.AddDocument("artists such as Muse and Madonna play.")
	c.AddDocument("Muse is an artist. artists such as Muse tour. Madonna released a record.")
	c.AddDocument("artists such as New York appear wrongly.")
	c.AddDocument("New York New York New York New York New York New York New York New York")
	es := c.Score("artist")
	if len(es) == 0 {
		t.Fatal("no scores")
	}
	if es[0].Value != "Muse" {
		t.Errorf("top candidate = %v", es[0])
	}
	if es[0].Confidence != 1 {
		t.Errorf("top confidence = %v, want 1 (normalised)", es[0].Confidence)
	}
	var muse, ny float64
	for _, e := range es {
		switch e.Value {
		case "Muse":
			muse = e.Confidence
		case "New York":
			ny = e.Confidence
		}
	}
	if ny >= muse {
		t.Errorf("frequent term not damped: NY=%v Muse=%v", ny, muse)
	}
}

func TestSourceThreshold(t *testing.T) {
	c := New()
	c.AddDocument("artists such as Muse and Madonna play.")
	c.AddDocument("Muse is an artist. artists such as Muse tour. Muse again? No: Madonna Madonna Madonna Madonna.")
	all := Source{Corpus: c}.Instances("artist")
	some := Source{Corpus: c, Threshold: 0.9}.Instances("artist")
	if len(some) >= len(all) {
		t.Errorf("threshold did not filter: %d vs %d", len(some), len(all))
	}
	for _, e := range some {
		if e.Confidence < 0.9 {
			t.Errorf("entry below threshold: %v", e)
		}
	}
}

func TestScoreEmptyCorpus(t *testing.T) {
	c := New()
	if es := c.Score("artist"); es != nil {
		t.Errorf("empty corpus scored %v", es)
	}
}

func TestNumDocuments(t *testing.T) {
	c := seeded()
	if c.NumDocuments() != 6 {
		t.Errorf("NumDocuments = %d", c.NumDocuments())
	}
}
