package sod

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse reads an SOD from its textual DSL form. The grammar, designed for
// minimal-effort specification (paper §I: SODs are "provided by users in a
// minimal-effort and flexible manner"):
//
//	sod    := type
//	type   := tuple | set | oneof | entity
//	tuple  := "tuple" "{" field ( ("," | newline) field )* "}"
//	set    := "set" "(" type ")" mult?
//	oneof  := "oneof" "(" type "|" type ")"
//	entity := name ":" rec
//	rec    := ident ( "(" arg ")" )?
//	field  := (name ":")? type "?"?
//	mult   := "*" | "+" | "?" | int | int "-" int
//
// Examples:
//
//	tuple { artist: instanceOf(Artist), date: date, address: address ? }
//	tuple { title: instanceOf(BookTitle), authors: set(author: instanceOf(Author))+ }
func Parse(src string) (*Type, error) {
	p := &parser{toks: lex(src)}
	t, err := p.parseType("")
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("sod: trailing input at %q", p.peek().val)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// MustParse is Parse that panics on error, for tests and fixed SODs.
func MustParse(src string) *Type {
	t, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return t
}

type tokKind int

const (
	tokIdent tokKind = iota
	tokPunct         // one of { } ( ) , : | ? * + -
	tokInt
	tokEOF
)

type tok struct {
	kind tokKind
	val  string
}

func lex(src string) []tok {
	var toks []tok
	i := 0
	for i < len(src) {
		r := src[i]
		switch {
		case r == '#': // comment to end of line
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case unicode.IsSpace(rune(r)):
			i++
		case strings.ContainsRune("{}(),:|?*+-", rune(r)):
			toks = append(toks, tok{tokPunct, string(r)})
			i++
		case r >= '0' && r <= '9':
			j := i
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			toks = append(toks, tok{tokInt, src[i:j]})
			i = j
		default:
			j := i
			for j < len(src) && (isIdentChar(src[j])) {
				j++
			}
			if j == i {
				// Unknown byte: skip it (robustness over strictness).
				i++
				continue
			}
			toks = append(toks, tok{tokIdent, src[i:j]})
			i = j
		}
	}
	toks = append(toks, tok{tokEOF, ""})
	return toks
}

func isIdentChar(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9' || b == '_' || b == '.'
}

type parser struct {
	toks []tok
	pos  int
}

func (p *parser) peek() tok { return p.toks[p.pos] }
func (p *parser) next() tok { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) eof() bool { return p.peek().kind == tokEOF }

func (p *parser) expect(val string) error {
	t := p.next()
	if t.kind != tokPunct || t.val != val {
		return fmt.Errorf("sod: expected %q, found %q", val, t.val)
	}
	return nil
}

func (p *parser) accept(val string) bool {
	if p.peek().kind == tokPunct && p.peek().val == val {
		p.pos++
		return true
	}
	return false
}

// parseType parses a type, attaching the given field name.
func (p *parser) parseType(name string) (*Type, error) {
	t := p.peek()
	if t.kind != tokIdent && t.kind != tokInt {
		return nil, fmt.Errorf("sod: expected a type, found %q", t.val)
	}
	switch t.val {
	case "tuple":
		p.next()
		return p.parseTuple(name)
	case "set":
		p.next()
		return p.parseSet(name)
	case "oneof":
		p.next()
		return p.parseDisjunction(name)
	}
	// Entity: name ":" rec, or bare rec when a field name was supplied.
	ident := p.next().val
	if p.accept(":") {
		inner, err := p.parseType(ident)
		if err != nil {
			return nil, err
		}
		return inner, nil
	}
	// Bare recognizer: use field name as entity name, or the recognizer
	// kind itself when anonymous (e.g. a top-level "date").
	rec, err := p.parseRecognizerAfter(ident)
	if err != nil {
		return nil, err
	}
	if name == "" {
		name = ident
	}
	return Entity(name, rec), nil
}

// parseRecognizerAfter parses the optional "(arg)" following a recognizer
// kind identifier already consumed.
func (p *parser) parseRecognizerAfter(kind string) (RecognizerRef, error) {
	ref := RecognizerRef{Kind: kind}
	if p.accept("(") {
		var parts []string
		depth := 1
		for {
			t := p.next()
			if t.kind == tokEOF {
				return ref, fmt.Errorf("sod: unterminated recognizer argument for %q", kind)
			}
			if t.kind == tokPunct {
				switch t.val {
				case "(":
					depth++
				case ")":
					depth--
					if depth == 0 {
						ref.Arg = strings.Join(parts, "")
						return ref, nil
					}
				}
			}
			parts = append(parts, t.val)
		}
	}
	return ref, nil
}

func (p *parser) parseTuple(name string) (*Type, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	tp := &Type{Kind: KindTuple, Name: name}
	for {
		if p.accept("}") {
			break
		}
		f, err := p.parseType("")
		if err != nil {
			return nil, err
		}
		if p.accept("?") {
			f.Optional = true
		}
		tp.Fields = append(tp.Fields, f)
		p.accept(",") // commas between fields are optional
	}
	return tp, nil
}

func (p *parser) parseSet(name string) (*Type, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	elem, err := p.parseType("")
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	mult, err := p.parseMultiplicity()
	if err != nil {
		return nil, err
	}
	return Set(name, elem, mult), nil
}

func (p *parser) parseMultiplicity() (Multiplicity, error) {
	t := p.peek()
	switch {
	case t.kind == tokPunct && t.val == "*":
		p.next()
		return MultStar, nil
	case t.kind == tokPunct && t.val == "+":
		p.next()
		return MultPlus, nil
	case t.kind == tokPunct && t.val == "?":
		p.next()
		return MultOptional, nil
	case t.kind == tokInt:
		p.next()
		lo, _ := strconv.Atoi(t.val)
		if p.accept("-") {
			hi := p.next()
			if hi.kind != tokInt {
				return Multiplicity{}, fmt.Errorf("sod: expected integer after %d-, found %q", lo, hi.val)
			}
			h, _ := strconv.Atoi(hi.val)
			return Multiplicity{Min: lo, Max: h}, nil
		}
		return Multiplicity{Min: lo, Max: lo}, nil
	}
	// No explicit multiplicity: + is the natural default for sets.
	return MultPlus, nil
}

func (p *parser) parseDisjunction(name string) (*Type, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	a, err := p.parseType("")
	if err != nil {
		return nil, err
	}
	if err := p.expect("|"); err != nil {
		return nil, err
	}
	b, err := p.parseType("")
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return Disjunction(name, a, b), nil
}
