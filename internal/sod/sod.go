// Package sod implements Structured Object Descriptions, the typing
// formalism by which ObjectRunner users describe the data to be targeted
// and extracted from HTML pages (paper §II.A).
//
// An SOD is a complex type built recursively from entity (atomic) types:
// set types carry a multiplicity constraint over instances of an element
// type, tuple types are unordered collections of component types, and
// disjunction types are pairs of mutually exclusive alternatives. Each
// entity type references a recognizer by name (regular expression,
// predefined, or dictionary-based isInstanceOf).
package sod

import (
	"fmt"
	"strings"
)

// Kind discriminates the type constructors of the SOD formalism.
type Kind int

const (
	// KindEntity is an atomic type recognized by an associated recognizer.
	KindEntity Kind = iota
	// KindSet is a homogeneous collection with a multiplicity constraint.
	KindSet
	// KindTuple is an unordered collection of component types.
	KindTuple
	// KindDisjunction is a pair of mutually exclusive types.
	KindDisjunction
)

// String returns the constructor name.
func (k Kind) String() string {
	switch k {
	case KindEntity:
		return "entity"
	case KindSet:
		return "set"
	case KindTuple:
		return "tuple"
	case KindDisjunction:
		return "disjunction"
	}
	return "unknown"
}

// Unbounded is the Max value of a multiplicity with no upper bound.
const Unbounded = -1

// Multiplicity restricts how many instances a set type may contain:
// n–m for at least n and at most m, * for zero or more, + for one or
// more, ? for zero or one, 1 for exactly one.
type Multiplicity struct {
	Min int
	Max int // Unbounded for no upper limit
}

// Predefined multiplicities matching the paper's notation.
var (
	MultOne      = Multiplicity{Min: 1, Max: 1}         // 1
	MultOptional = Multiplicity{Min: 0, Max: 1}         // ?
	MultStar     = Multiplicity{Min: 0, Max: Unbounded} // *
	MultPlus     = Multiplicity{Min: 1, Max: Unbounded} // +
)

// Allows reports whether a set of size n satisfies the constraint.
func (m Multiplicity) Allows(n int) bool {
	if n < m.Min {
		return false
	}
	return m.Max == Unbounded || n <= m.Max
}

// String renders the constraint in the paper's notation.
func (m Multiplicity) String() string {
	switch m {
	case MultOne:
		return "1"
	case MultOptional:
		return "?"
	case MultStar:
		return "*"
	case MultPlus:
		return "+"
	}
	if m.Max == Unbounded {
		return fmt.Sprintf("%d-", m.Min)
	}
	return fmt.Sprintf("%d-%d", m.Min, m.Max)
}

// RecognizerRef names the recognizer that validates instances of an entity
// type: Kind is the recognizer family ("date", "price", "regex",
// "instanceOf", ...) and Arg is its parameter (the class name for
// isInstanceOf types, the expression for regex types).
type RecognizerRef struct {
	Kind string
	Arg  string
}

// String renders the reference in DSL syntax.
func (r RecognizerRef) String() string {
	if r.Arg == "" {
		return r.Kind
	}
	return fmt.Sprintf("%s(%s)", r.Kind, r.Arg)
}

// IsInstanceOf reports whether the recognizer is an open, dictionary-based
// one for which a gazetteer must be constructed on the fly.
func (r RecognizerRef) IsInstanceOf() bool {
	return strings.EqualFold(r.Kind, "instanceof")
}

// Type is a node of an SOD type tree.
type Type struct {
	Kind Kind
	// Name labels the type: the attribute name for entity types and tuple
	// fields ("artist", "location"), optional for anonymous nodes.
	Name string
	// Recognizer is set for entity types only.
	Recognizer RecognizerRef
	// Elem is the element type of a set.
	Elem *Type
	// Mult constrains set cardinality (sets only).
	Mult Multiplicity
	// Fields are the components of a tuple or the alternatives of a
	// disjunction.
	Fields []*Type
	// Optional marks a tuple component that may be absent from a source
	// (the paper's optional attributes, e.g. the concert address).
	Optional bool
	// Rules are the additional restrictions of §II.A footnote 1 (value,
	// order, whole-node); meaningful on the SOD root. See rules.go.
	Rules []Rule
}

// Entity constructs an atomic type with the given name and recognizer.
func Entity(name string, rec RecognizerRef) *Type {
	return &Type{Kind: KindEntity, Name: name, Recognizer: rec}
}

// Set constructs a set type over elem with the given multiplicity.
func Set(name string, elem *Type, mult Multiplicity) *Type {
	return &Type{Kind: KindSet, Name: name, Elem: elem, Mult: mult}
}

// Tuple constructs a tuple type from the given component types.
func Tuple(name string, fields ...*Type) *Type {
	return &Type{Kind: KindTuple, Name: name, Fields: fields}
}

// Disjunction constructs a two-alternative disjunction type.
func Disjunction(name string, a, b *Type) *Type {
	return &Type{Kind: KindDisjunction, Name: name, Fields: []*Type{a, b}}
}

// MarkOptional flags the type as an optional tuple component and returns
// it, for fluent construction.
func (t *Type) MarkOptional() *Type {
	t.Optional = true
	return t
}

// Validate checks structural well-formedness of the type tree.
func (t *Type) Validate() error {
	switch t.Kind {
	case KindEntity:
		if t.Name == "" {
			return fmt.Errorf("sod: entity type without a name")
		}
		if t.Recognizer.Kind == "" {
			return fmt.Errorf("sod: entity type %q has no recognizer", t.Name)
		}
	case KindSet:
		if t.Elem == nil {
			return fmt.Errorf("sod: set type %q has no element type", t.Name)
		}
		if t.Mult.Min < 0 {
			return fmt.Errorf("sod: set type %q has negative minimum multiplicity", t.Name)
		}
		if t.Mult.Max != Unbounded && t.Mult.Max < t.Mult.Min {
			return fmt.Errorf("sod: set type %q has max < min multiplicity", t.Name)
		}
		return t.Elem.Validate()
	case KindTuple:
		if len(t.Fields) == 0 {
			return fmt.Errorf("sod: tuple type %q has no components", t.Name)
		}
		for _, f := range t.Fields {
			if err := f.Validate(); err != nil {
				return err
			}
		}
	case KindDisjunction:
		if len(t.Fields) != 2 {
			return fmt.Errorf("sod: disjunction type %q must have exactly two alternatives, has %d", t.Name, len(t.Fields))
		}
		for _, f := range t.Fields {
			if err := f.Validate(); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("sod: unknown type kind %d", t.Kind)
	}
	return nil
}

// EntityTypes returns every entity type in the tree, in depth-first order.
func (t *Type) EntityTypes() []*Type {
	var out []*Type
	t.walk(func(x *Type) {
		if x.Kind == KindEntity {
			out = append(out, x)
		}
	})
	return out
}

// InstanceOfTypes returns the entity types whose recognizers are open
// (dictionary-based) and need gazetteer construction.
func (t *Type) InstanceOfTypes() []*Type {
	var out []*Type
	for _, e := range t.EntityTypes() {
		if e.Recognizer.IsInstanceOf() {
			out = append(out, e)
		}
	}
	return out
}

func (t *Type) walk(fn func(*Type)) {
	fn(t)
	if t.Elem != nil {
		t.Elem.walk(fn)
	}
	for _, f := range t.Fields {
		f.walk(fn)
	}
}

// Clone returns a deep copy of the type tree.
func (t *Type) Clone() *Type {
	cp := *t
	if t.Elem != nil {
		cp.Elem = t.Elem.Clone()
	}
	if len(t.Fields) > 0 {
		cp.Fields = make([]*Type, len(t.Fields))
		for i, f := range t.Fields {
			cp.Fields[i] = f.Clone()
		}
	}
	return &cp
}

// String renders the type in the DSL syntax accepted by Parse.
func (t *Type) String() string {
	var sb strings.Builder
	t.render(&sb, 0)
	return sb.String()
}

func (t *Type) render(sb *strings.Builder, depth int) {
	switch t.Kind {
	case KindEntity:
		fmt.Fprintf(sb, "%s: %s", t.Name, t.Recognizer)
	case KindSet:
		if t.Name != "" {
			fmt.Fprintf(sb, "%s: ", t.Name)
		}
		sb.WriteString("set(")
		t.Elem.render(sb, depth)
		sb.WriteString(")")
		if t.Mult != MultOne {
			sb.WriteString(t.Mult.String())
		}
	case KindTuple:
		if t.Name != "" && depth > 0 {
			fmt.Fprintf(sb, "%s: ", t.Name)
		}
		sb.WriteString("tuple {")
		for i, f := range t.Fields {
			if i > 0 {
				sb.WriteString(", ")
			}
			f.render(sb, depth+1)
			if f.Optional {
				sb.WriteString(" ?")
			}
		}
		sb.WriteString("}")
	case KindDisjunction:
		if t.Name != "" && depth > 0 {
			fmt.Fprintf(sb, "%s: ", t.Name)
		}
		sb.WriteString("oneof(")
		t.Fields[0].render(sb, depth+1)
		sb.WriteString(" | ")
		t.Fields[1].render(sb, depth+1)
		sb.WriteString(")")
	}
}

// Instance is a value of an SOD type: a finite tree whose internal nodes
// correspond to complex type constructors and whose leaves hold entity
// values (paper §II.A).
type Instance struct {
	Type     *Type
	Value    string      // entity instances only
	Children []*Instance // tuple fields / set members / chosen alternative
}

// NewValue constructs an entity instance.
func NewValue(t *Type, v string) *Instance {
	return &Instance{Type: t, Value: v}
}

// Leaf returns true for entity instances.
func (in *Instance) Leaf() bool { return in.Type != nil && in.Type.Kind == KindEntity }

// Field returns the child instance for the named component, or nil.
func (in *Instance) Field(name string) *Instance {
	for _, c := range in.Children {
		if c.Type != nil && c.Type.Name == name {
			return c
		}
	}
	return nil
}

// FieldValue returns the entity value of the named component, descending
// one level, or "" when absent.
func (in *Instance) FieldValue(name string) string {
	if f := in.Field(name); f != nil {
		return f.Value
	}
	return ""
}

// Values returns all leaf values of the instance, depth-first.
func (in *Instance) Values() []string {
	var out []string
	var rec func(*Instance)
	rec = func(x *Instance) {
		if x.Leaf() {
			out = append(out, x.Value)
			return
		}
		for _, c := range x.Children {
			rec(c)
		}
	}
	rec(in)
	return out
}

// String renders the instance as a compact record literal.
func (in *Instance) String() string {
	var sb strings.Builder
	in.renderInstance(&sb)
	return sb.String()
}

func (in *Instance) renderInstance(sb *strings.Builder) {
	if in.Leaf() {
		fmt.Fprintf(sb, "%s=%q", in.Type.Name, in.Value)
		return
	}
	open, close := "{", "}"
	if in.Type != nil && in.Type.Kind == KindSet {
		open, close = "[", "]"
	}
	sb.WriteString(open)
	for i, c := range in.Children {
		if i > 0 {
			sb.WriteString(", ")
		}
		c.renderInstance(sb)
	}
	sb.WriteString(close)
}

// Conforms checks the instance against its type: entity leaves are
// non-empty, set sizes satisfy multiplicities, tuple components cover all
// non-optional fields, and a disjunction holds exactly one alternative.
func (in *Instance) Conforms() error {
	if in.Type == nil {
		return fmt.Errorf("sod: instance without a type")
	}
	t := in.Type
	switch t.Kind {
	case KindEntity:
		if in.Value == "" {
			return fmt.Errorf("sod: empty value for entity %q", t.Name)
		}
	case KindSet:
		if !t.Mult.Allows(len(in.Children)) {
			return fmt.Errorf("sod: set %q has %d members, multiplicity %s", t.Name, len(in.Children), t.Mult)
		}
		for _, c := range in.Children {
			if c.Type != t.Elem {
				return fmt.Errorf("sod: set %q member has wrong type", t.Name)
			}
			if err := c.Conforms(); err != nil {
				return err
			}
		}
	case KindTuple:
		seen := make(map[*Type]bool)
		for _, c := range in.Children {
			seen[c.Type] = true
			if err := c.Conforms(); err != nil {
				return err
			}
		}
		for _, f := range t.Fields {
			if !f.Optional && !seen[f] {
				return fmt.Errorf("sod: tuple %q missing required component %q", t.Name, f.Name)
			}
		}
	case KindDisjunction:
		if len(in.Children) != 1 {
			return fmt.Errorf("sod: disjunction %q must hold exactly one alternative", t.Name)
		}
		c := in.Children[0]
		if c.Type != t.Fields[0] && c.Type != t.Fields[1] {
			return fmt.Errorf("sod: disjunction %q holds a non-alternative", t.Name)
		}
		return c.Conforms()
	}
	return nil
}
