package sod

import (
	"strings"
	"testing"
)

func ruleSOD() *Type {
	return MustParse(`tuple { artist: instanceOf(Artist), start: date, end: date }`)
}

func ruleInstance(artist, start, end string) *Instance {
	t := ruleSOD()
	in := &Instance{Type: t}
	if artist != "" {
		in.Children = append(in.Children, NewValue(t.Fields[0], artist))
	}
	if start != "" {
		in.Children = append(in.Children, NewValue(t.Fields[1], start))
	}
	if end != "" {
		in.Children = append(in.Children, NewValue(t.Fields[2], end))
	}
	return in
}

func TestValueRule(t *testing.T) {
	r := ValueRule{Field: "artist", Desc: "non-numeric", Pred: func(v string) bool {
		return !strings.ContainsAny(v, "0123456789")
	}}
	if err := r.Check(ruleInstance("Metallica", "", "")); err != nil {
		t.Errorf("valid value rejected: %v", err)
	}
	if err := r.Check(ruleInstance("Blink 182", "", "")); err == nil {
		t.Error("invalid value accepted")
	}
	// Absent fields pass.
	if err := r.Check(ruleInstance("", "x", "")); err != nil {
		t.Errorf("absent field rejected: %v", err)
	}
	if !strings.Contains(r.Describe(), "non-numeric") {
		t.Error("describe")
	}
}

func TestOrderRule(t *testing.T) {
	r := OrderRule{Before: "start", After: "end"}
	if err := r.Check(ruleInstance("", "2010-05-01", "2010-06-01")); err != nil {
		t.Errorf("ordered dates rejected: %v", err)
	}
	if err := r.Check(ruleInstance("", "2010-06-01", "2010-05-01")); err == nil {
		t.Error("inverted dates accepted")
	}
	// Equal values pass; missing either side passes.
	if err := r.Check(ruleInstance("", "2010-05-01", "2010-05-01")); err != nil {
		t.Errorf("equal dates rejected: %v", err)
	}
	if err := r.Check(ruleInstance("", "2010-06-01", "")); err != nil {
		t.Errorf("missing side rejected: %v", err)
	}
	// Custom comparison.
	num := OrderRule{Before: "start", After: "end", Less: func(a, b string) bool { return len(a) < len(b) }}
	if err := num.Check(ruleInstance("", "ab", "abcd")); err != nil {
		t.Errorf("custom less rejected: %v", err)
	}
}

func TestContainsRule(t *testing.T) {
	r := ContainsRule{Field: "artist", Needle: "the"}
	if err := r.Check(ruleInstance("The Beatles", "", "")); err != nil {
		t.Errorf("containing value rejected: %v", err)
	}
	if err := r.Check(ruleInstance("Metallica", "", "")); err == nil {
		t.Error("non-containing value accepted")
	}
	neg := ContainsRule{Field: "artist", Needle: "the", Negate: true}
	if err := neg.Check(ruleInstance("Metallica", "", "")); err != nil {
		t.Errorf("negated rule rejected clean value: %v", err)
	}
	if err := neg.Check(ruleInstance("The Beatles", "", "")); err == nil {
		t.Error("negated rule accepted matching value")
	}
}

func TestFilterByRules(t *testing.T) {
	s := ruleSOD()
	s.AddRule(OrderRule{Before: "start", After: "end"})
	objs := []*Instance{
		ruleInstance("A", "2010-01-01", "2010-02-01"),
		ruleInstance("B", "2010-03-01", "2010-02-01"), // violates
		ruleInstance("C", "2010-04-01", "2010-05-01"),
	}
	kept, dropped := s.FilterByRules(objs)
	if len(kept) != 2 || dropped != 1 {
		t.Fatalf("kept=%d dropped=%d", len(kept), dropped)
	}
	if kept[0].FieldValue("artist") != "A" || kept[1].FieldValue("artist") != "C" {
		t.Error("wrong survivors")
	}
	// No rules: pass-through.
	plain := ruleSOD()
	kept2, dropped2 := plain.FilterByRules(objs)
	if len(kept2) != 3 || dropped2 != 0 {
		t.Error("rule-less filter dropped objects")
	}
}

func TestWholeNodeFields(t *testing.T) {
	s := ruleSOD()
	s.AddRule(WholeNodeRule{Field: "artist"})
	s.AddRule(OrderRule{Before: "start", After: "end"})
	w := s.WholeNodeFields()
	if !w["artist"] || w["start"] {
		t.Errorf("whole-node fields = %v", w)
	}
	// Whole-node rules are vacuous at instance level.
	if err := s.CheckRules(ruleInstance("x", "2010-01-01", "2010-02-01")); err != nil {
		t.Errorf("CheckRules: %v", err)
	}
}
