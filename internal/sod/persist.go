package sod

import "fmt"

// Wrapper persistence (the serving-cache subsystem) needs SOD type trees
// to survive a process restart with their pointer graph intact: template
// matches key field bindings by *Type identity, and extraction compares
// those keys against the canonical tuple's component pointers. The pool
// below therefore interns every reachable Type node exactly once and
// stores references by index, so decoding rebuilds an isomorphic pointer
// graph — shared nodes stay shared, distinct nodes stay distinct.
//
// Rules are deliberately not persisted: they hold arbitrary predicates
// (functions) and belong to the live SOD a wrapper is rebound to at load
// time.

// PersistedType is the flat persisted form of one Type node. References
// to other nodes (Elem, Fields) are pool indices; -1 means nil.
type PersistedType struct {
	Kind     int    `json:"kind"`
	Name     string `json:"name,omitempty"`
	RecKind  string `json:"rec_kind,omitempty"`
	RecArg   string `json:"rec_arg,omitempty"`
	Elem     int    `json:"elem"`
	MultMin  int    `json:"mult_min,omitempty"`
	MultMax  int    `json:"mult_max,omitempty"`
	Fields   []int  `json:"fields,omitempty"`
	Optional bool   `json:"optional,omitempty"`
}

// TypePool interns Type nodes for persistence. Add the roots you need,
// keep the returned ids, and persist Records; DecodeTypePool rebuilds the
// pool into live types addressable by the same ids.
type TypePool struct {
	records []PersistedType
	ids     map[*Type]int
}

// NewTypePool returns an empty pool.
func NewTypePool() *TypePool {
	return &TypePool{ids: make(map[*Type]int)}
}

// Add interns the type tree rooted at t (depth-first, deterministically)
// and returns t's pool id; nil maps to -1. Re-adding a known node is a
// cheap lookup, so shared subtrees keep one record.
func (p *TypePool) Add(t *Type) int {
	if t == nil {
		return -1
	}
	if id, ok := p.ids[t]; ok {
		return id
	}
	// Reserve the slot before descending so cycles cannot recurse forever
	// (well-formed SODs are acyclic, but a corrupt graph must not hang).
	id := len(p.records)
	p.ids[t] = id
	p.records = append(p.records, PersistedType{})
	rec := PersistedType{
		Kind:     int(t.Kind),
		Name:     t.Name,
		RecKind:  t.Recognizer.Kind,
		RecArg:   t.Recognizer.Arg,
		Elem:     p.Add(t.Elem),
		MultMin:  t.Mult.Min,
		MultMax:  t.Mult.Max,
		Optional: t.Optional,
	}
	for _, f := range t.Fields {
		rec.Fields = append(rec.Fields, p.Add(f))
	}
	p.records[id] = rec
	return id
}

// Records returns the persisted records, indexed by pool id.
func (p *TypePool) Records() []PersistedType { return p.records }

// DecodeTypePool rebuilds live types from persisted records. The returned
// slice is indexed by pool id; references out of range are an error.
func DecodeTypePool(records []PersistedType) ([]*Type, error) {
	types := make([]*Type, len(records))
	for i := range types {
		types[i] = &Type{}
	}
	ref := func(id int) (*Type, error) {
		if id == -1 {
			return nil, nil
		}
		if id < 0 || id >= len(types) {
			return nil, fmt.Errorf("sod: type pool reference %d out of range [0, %d)", id, len(types))
		}
		return types[id], nil
	}
	for i, rec := range records {
		t := types[i]
		t.Kind = Kind(rec.Kind)
		t.Name = rec.Name
		t.Recognizer = RecognizerRef{Kind: rec.RecKind, Arg: rec.RecArg}
		t.Mult = Multiplicity{Min: rec.MultMin, Max: rec.MultMax}
		t.Optional = rec.Optional
		elem, err := ref(rec.Elem)
		if err != nil {
			return nil, err
		}
		t.Elem = elem
		for _, fid := range rec.Fields {
			f, err := ref(fid)
			if err != nil {
				return nil, err
			}
			t.Fields = append(t.Fields, f)
		}
	}
	return types, nil
}
