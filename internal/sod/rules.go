package sod

import (
	"fmt"
	"strings"
)

// Rules are the additional restrictions the paper's §II.A (footnote 1)
// attaches to SODs beyond the type structure: "these could allow one to
// say that a certain entity type has to cover the entire textual content
// of an HTML node …; or to require that two date types have to be in a
// certain order relationship or that a particular address has to be in a
// certain range". The paper omits them from its experiments; they are
// implemented here as first-class instance validators.
//
// Rules attach to the SOD root via AddRule and are enforced on extracted
// instances by CheckRules (the wrapper drops violating objects).

// Rule validates one extracted instance.
type Rule interface {
	// Check returns nil when the instance satisfies the rule.
	Check(in *Instance) error
	// Describe renders the rule for diagnostics.
	Describe() string
}

// AddRule attaches a rule to the type (meaningful on the SOD root).
func (t *Type) AddRule(r Rule) *Type {
	t.Rules = append(t.Rules, r)
	return t
}

// CheckRules validates an instance against every rule of the type.
func (t *Type) CheckRules(in *Instance) error {
	for _, r := range t.Rules {
		if err := r.Check(in); err != nil {
			return err
		}
	}
	return nil
}

// FilterByRules drops the instances violating any rule and returns the
// survivors together with the number dropped.
func (t *Type) FilterByRules(objects []*Instance) ([]*Instance, int) {
	if len(t.Rules) == 0 {
		return objects, 0
	}
	out := objects[:0:0]
	for _, o := range objects {
		if t.CheckRules(o) == nil {
			out = append(out, o)
		}
	}
	return out, len(objects) - len(out)
}

// fieldValues collects every leaf value bound to the named entity type.
func fieldValues(in *Instance, name string) []string {
	var out []string
	var rec func(*Instance)
	rec = func(x *Instance) {
		if x.Leaf() {
			if x.Type.Name == name {
				out = append(out, x.Value)
			}
			return
		}
		for _, c := range x.Children {
			rec(c)
		}
	}
	rec(in)
	return out
}

// ValueRule constrains a field's value with an arbitrary predicate.
type ValueRule struct {
	Field string
	Desc  string
	Pred  func(value string) bool
}

// Check implements Rule: every value of the field must satisfy the
// predicate (fields absent from the instance pass).
func (r ValueRule) Check(in *Instance) error {
	for _, v := range fieldValues(in, r.Field) {
		if !r.Pred(v) {
			return fmt.Errorf("sod: rule %s: value %q rejected", r.Describe(), v)
		}
	}
	return nil
}

// Describe implements Rule.
func (r ValueRule) Describe() string {
	if r.Desc != "" {
		return fmt.Sprintf("value(%s: %s)", r.Field, r.Desc)
	}
	return fmt.Sprintf("value(%s)", r.Field)
}

// OrderRule requires that two fields stand in an order relationship under
// a caller-supplied comparison (the paper's "two date types have to be in
// a certain order relationship").
type OrderRule struct {
	Before, After string
	// Less compares two raw values; when nil, lexicographic comparison
	// of the normalized strings applies.
	Less func(a, b string) bool
}

// Check implements Rule.
func (r OrderRule) Check(in *Instance) error {
	before := fieldValues(in, r.Before)
	after := fieldValues(in, r.After)
	if len(before) == 0 || len(after) == 0 {
		return nil // absent fields do not violate the order
	}
	less := r.Less
	if less == nil {
		less = func(a, b string) bool { return strings.ToLower(a) < strings.ToLower(b) }
	}
	for _, b := range before {
		for _, a := range after {
			if !less(b, a) && b != a {
				return fmt.Errorf("sod: rule %s: %q not before %q", r.Describe(), b, a)
			}
		}
	}
	return nil
}

// Describe implements Rule.
func (r OrderRule) Describe() string {
	return fmt.Sprintf("order(%s < %s)", r.Before, r.After)
}

// ContainsRule requires a field's value to contain (or, inverted, avoid)
// a substring — a practical instantiation of the paper's textual rules
// ("a particular address has to be in a certain range of coordinates" is
// approximated by textual region constraints on the Web).
type ContainsRule struct {
	Field  string
	Needle string
	Negate bool
}

// Check implements Rule.
func (r ContainsRule) Check(in *Instance) error {
	for _, v := range fieldValues(in, r.Field) {
		has := strings.Contains(strings.ToLower(v), strings.ToLower(r.Needle))
		if has == r.Negate {
			return fmt.Errorf("sod: rule %s: value %q rejected", r.Describe(), v)
		}
	}
	return nil
}

// Describe implements Rule.
func (r ContainsRule) Describe() string {
	op := "contains"
	if r.Negate {
		op = "omits"
	}
	return fmt.Sprintf("%s(%s, %q)", op, r.Field, r.Needle)
}

// WholeNodeRule marks an entity type whose instances must cover the
// entire textual content of their HTML node. It is enforced during
// annotation (only whole-node matches annotate), so it is declared on the
// type and consulted by the annotation stage via WholeNodeFields.
type WholeNodeRule struct {
	Field string
}

// Check implements Rule; at the instance level the rule is vacuous (the
// annotation stage enforces it), so it always passes.
func (r WholeNodeRule) Check(*Instance) error { return nil }

// Describe implements Rule.
func (r WholeNodeRule) Describe() string { return fmt.Sprintf("wholeNode(%s)", r.Field) }

// WholeNodeFields lists the entity-type names restricted to whole-node
// matches.
func (t *Type) WholeNodeFields() map[string]bool {
	out := make(map[string]bool)
	for _, r := range t.Rules {
		if w, ok := r.(WholeNodeRule); ok {
			out[w.Field] = true
		}
	}
	return out
}
