package sod

// Canonicalize transforms an SOD into the canonical form used by the
// template matching step (paper §III.D): every tuple node receives as
// direct children all the atomic-type nodes reachable from it only via
// tuple nodes (no set nodes), i.e. nested tuples with identical
// multiplicity collapse into a single tuple level, while set types keep
// their nesting. The input is not modified.
func Canonicalize(t *Type) *Type {
	return canon(t.Clone())
}

func canon(t *Type) *Type {
	switch t.Kind {
	case KindEntity:
		return t
	case KindSet:
		t.Elem = canon(t.Elem)
		return t
	case KindDisjunction:
		for i, f := range t.Fields {
			t.Fields[i] = canon(f)
		}
		return t
	case KindTuple:
		var flat []*Type
		for _, f := range t.Fields {
			f = canon(f)
			if f.Kind == KindTuple {
				// Merge the nested tuple's children into this level. A
				// component of an optional nested tuple stays optional.
				for _, g := range f.Fields {
					if f.Optional {
						g.Optional = true
					}
					flat = append(flat, g)
				}
				continue
			}
			flat = append(flat, f)
		}
		t.Fields = flat
		return t
	}
	return t
}

// AtomicFields returns the direct entity-type children of a canonical
// tuple, i.e. the attributes that must co-occur at one template level.
func AtomicFields(t *Type) []*Type {
	var out []*Type
	for _, f := range t.Fields {
		if f.Kind == KindEntity {
			out = append(out, f)
		}
	}
	return out
}

// SetFields returns the direct set-type children of a canonical tuple,
// i.e. the nested collections that must match deeper template levels.
func SetFields(t *Type) []*Type {
	var out []*Type
	for _, f := range t.Fields {
		if f.Kind == KindSet {
			out = append(out, f)
		}
	}
	return out
}
