package sod

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestMultiplicityAllows(t *testing.T) {
	cases := []struct {
		m    Multiplicity
		n    int
		want bool
	}{
		{MultOne, 1, true}, {MultOne, 0, false}, {MultOne, 2, false},
		{MultOptional, 0, true}, {MultOptional, 1, true}, {MultOptional, 2, false},
		{MultStar, 0, true}, {MultStar, 100, true},
		{MultPlus, 0, false}, {MultPlus, 1, true}, {MultPlus, 50, true},
		{Multiplicity{Min: 2, Max: 4}, 1, false},
		{Multiplicity{Min: 2, Max: 4}, 3, true},
		{Multiplicity{Min: 2, Max: 4}, 5, false},
	}
	for _, c := range cases {
		if got := c.m.Allows(c.n); got != c.want {
			t.Errorf("%s.Allows(%d) = %v, want %v", c.m, c.n, got, c.want)
		}
	}
}

func TestMultiplicityString(t *testing.T) {
	for _, c := range []struct {
		m    Multiplicity
		want string
	}{
		{MultOne, "1"}, {MultOptional, "?"}, {MultStar, "*"}, {MultPlus, "+"},
		{Multiplicity{Min: 2, Max: 5}, "2-5"},
		{Multiplicity{Min: 3, Max: Unbounded}, "3-"},
	} {
		if got := c.m.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", c.m, got, c.want)
		}
	}
}

// concertSOD builds the running-example SOD: a concert is a tuple of
// artist, date and a location tuple {theater, address?}.
func concertSOD() *Type {
	return Tuple("concert",
		Entity("artist", RecognizerRef{Kind: "instanceOf", Arg: "Artist"}),
		Entity("date", RecognizerRef{Kind: "date"}),
		Tuple("location",
			Entity("theater", RecognizerRef{Kind: "instanceOf", Arg: "Theater"}),
			Entity("address", RecognizerRef{Kind: "address"}).MarkOptional(),
		),
	)
}

func bookSOD() *Type {
	return Tuple("book",
		Entity("title", RecognizerRef{Kind: "instanceOf", Arg: "BookTitle"}),
		Entity("price", RecognizerRef{Kind: "price"}),
		Entity("date", RecognizerRef{Kind: "date"}).MarkOptional(),
		Set("authors", Entity("author", RecognizerRef{Kind: "instanceOf", Arg: "Author"}), MultPlus),
	)
}

func TestValidate(t *testing.T) {
	if err := concertSOD().Validate(); err != nil {
		t.Errorf("concert SOD invalid: %v", err)
	}
	if err := bookSOD().Validate(); err != nil {
		t.Errorf("book SOD invalid: %v", err)
	}
	bad := []*Type{
		{Kind: KindEntity},            // no name
		{Kind: KindEntity, Name: "x"}, // no recognizer
		{Kind: KindSet, Name: "s"},    // no elem
		{Kind: KindTuple, Name: "t"},  // no fields
		{Kind: KindDisjunction, Name: "d", Fields: []*Type{Entity("a", RecognizerRef{Kind: "date"})}}, // one alternative
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad[%d] validated", i)
		}
	}
	neg := Set("s", Entity("a", RecognizerRef{Kind: "date"}), Multiplicity{Min: 3, Max: 1})
	if err := neg.Validate(); err == nil {
		t.Error("max<min multiplicity validated")
	}
}

func TestEntityTypes(t *testing.T) {
	ents := concertSOD().EntityTypes()
	var names []string
	for _, e := range ents {
		names = append(names, e.Name)
	}
	want := "artist,date,theater,address"
	if got := strings.Join(names, ","); got != want {
		t.Errorf("entity types = %s, want %s", got, want)
	}
}

func TestInstanceOfTypes(t *testing.T) {
	iot := concertSOD().InstanceOfTypes()
	if len(iot) != 2 {
		t.Fatalf("got %d instanceOf types, want 2", len(iot))
	}
	if iot[0].Name != "artist" || iot[1].Name != "theater" {
		t.Errorf("instanceOf types = %s, %s", iot[0].Name, iot[1].Name)
	}
}

func TestCloneIndependence(t *testing.T) {
	orig := concertSOD()
	cp := orig.Clone()
	cp.Fields[0].Name = "changed"
	cp.Fields[2].Fields[0].Recognizer.Arg = "Changed"
	if orig.Fields[0].Name != "artist" {
		t.Error("clone mutation leaked into original (field name)")
	}
	if orig.Fields[2].Fields[0].Recognizer.Arg != "Theater" {
		t.Error("clone mutation leaked into original (recognizer)")
	}
}

func TestParseConcert(t *testing.T) {
	src := `tuple {
		artist: instanceOf(Artist)
		date: date
		location: tuple {
			theater: instanceOf(Theater)
			address: address ?
		}
	}`
	got, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindTuple || len(got.Fields) != 3 {
		t.Fatalf("parsed %s", got)
	}
	loc := got.Fields[2]
	if loc.Kind != KindTuple || loc.Name != "location" {
		t.Fatalf("location = %s", loc)
	}
	if !loc.Fields[1].Optional {
		t.Error("address should be optional")
	}
	if loc.Fields[0].Recognizer.Arg != "Theater" {
		t.Errorf("theater recognizer = %s", loc.Fields[0].Recognizer)
	}
}

func TestParseBookWithSet(t *testing.T) {
	src := `tuple { title: instanceOf(BookTitle), price: price, date: date?, authors: set(author: instanceOf(Author))+ }`
	got, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	authors := got.Fields[3]
	if authors.Kind != KindSet || authors.Name != "authors" {
		t.Fatalf("authors = %s", authors)
	}
	if authors.Mult != MultPlus {
		t.Errorf("multiplicity = %s, want +", authors.Mult)
	}
	if authors.Elem.Name != "author" {
		t.Errorf("elem = %s", authors.Elem)
	}
	if !got.Fields[2].Optional {
		t.Error("date should be optional")
	}
}

func TestParseMultiplicities(t *testing.T) {
	for _, c := range []struct {
		src  string
		want Multiplicity
	}{
		{`set(a: date)*`, MultStar},
		{`set(a: date)+`, MultPlus},
		{`set(a: date)?`, MultOptional},
		{`set(a: date)1`, MultOne},
		{`set(a: date)2-5`, Multiplicity{Min: 2, Max: 5}},
		{`set(a: date)`, MultPlus}, // default
	} {
		got, err := Parse(c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if got.Mult != c.want {
			t.Errorf("%s: mult = %s, want %s", c.src, got.Mult, c.want)
		}
	}
}

func TestParseDisjunction(t *testing.T) {
	got, err := Parse(`oneof(isbn: regex([0-9]{13}) | title: instanceOf(BookTitle))`)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindDisjunction || len(got.Fields) != 2 {
		t.Fatalf("parsed %s", got)
	}
	if got.Fields[0].Recognizer.Kind != "regex" {
		t.Errorf("first alt recognizer = %s", got.Fields[0].Recognizer)
	}
}

func TestParseComments(t *testing.T) {
	got, err := Parse(`tuple {
		# the performer
		artist: instanceOf(Artist)
		date: date # when
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Fields) != 2 {
		t.Errorf("got %d fields", len(got.Fields))
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		``,
		`tuple {}`,                 // empty tuple
		`tuple { a: }`,             // missing recognizer
		`set()`,                    // empty set
		`oneof(a: date)`,           // single alternative
		`tuple { a: date } x`,      // trailing
		`set(a: date`,              // unterminated
		`tuple { a: instanceOf(X `, // unterminated arg
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	for _, src := range []string{
		`tuple { artist: instanceOf(Artist), date: date, address: address ?}`,
		`tuple { title: instanceOf(BookTitle), authors: set(author: instanceOf(Author))+}`,
		`tuple { a: date, loc: tuple {b: address, c: phone}}`,
	} {
		t1 := MustParse(src)
		t2, err := Parse(t1.String())
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v (rendered %q)", src, err, t1.String())
		}
		if t1.String() != t2.String() {
			t.Errorf("round trip differs:\n t1: %s\n t2: %s", t1, t2)
		}
	}
}

func TestCanonicalizeFlattensNestedTuples(t *testing.T) {
	c := Canonicalize(concertSOD())
	// location tuple merges into the top level: artist, date, theater, address.
	if len(c.Fields) != 4 {
		t.Fatalf("canonical has %d fields, want 4: %s", len(c.Fields), c)
	}
	names := make(map[string]bool)
	for _, f := range c.Fields {
		if f.Kind != KindEntity {
			t.Errorf("canonical concert has non-entity field %s", f)
		}
		names[f.Name] = true
	}
	for _, want := range []string{"artist", "date", "theater", "address"} {
		if !names[want] {
			t.Errorf("canonical missing %s", want)
		}
	}
}

func TestCanonicalizeKeepsSets(t *testing.T) {
	c := Canonicalize(bookSOD())
	sets := SetFields(c)
	if len(sets) != 1 || sets[0].Name != "authors" {
		t.Fatalf("sets = %v", sets)
	}
	atoms := AtomicFields(c)
	if len(atoms) != 3 {
		t.Errorf("atomic fields = %d, want 3", len(atoms))
	}
}

func TestCanonicalizeOptionalPropagation(t *testing.T) {
	// An optional nested tuple's components become optional at top level.
	src := MustParse(`tuple { a: date, inner: tuple { b: price, c: address } ? }`)
	c := Canonicalize(src)
	if len(c.Fields) != 3 {
		t.Fatalf("canonical fields = %d", len(c.Fields))
	}
	for _, f := range c.Fields[1:] {
		if !f.Optional {
			t.Errorf("field %s should inherit optionality", f.Name)
		}
	}
}

func TestCanonicalizeDoesNotMutateInput(t *testing.T) {
	orig := concertSOD()
	before := orig.String()
	Canonicalize(orig)
	if orig.String() != before {
		t.Error("Canonicalize mutated its input")
	}
}

func TestCanonicalizeDeepNesting(t *testing.T) {
	src := MustParse(`tuple { a: date, t1: tuple { b: price, t2: tuple { c: address, s: set(d: phone)* } } }`)
	c := Canonicalize(src)
	// a, b, c flatten to the top; the set survives.
	if got := len(AtomicFields(c)); got != 3 {
		t.Errorf("atomic fields = %d, want 3", got)
	}
	if got := len(SetFields(c)); got != 1 {
		t.Errorf("set fields = %d, want 1", got)
	}
}

func TestCanonicalizeInsideSet(t *testing.T) {
	// Tuples inside a set element are canonicalized independently.
	src := MustParse(`tuple { a: date, items: set(tuple { b: price, inner: tuple { c: address } })* }`)
	c := Canonicalize(src)
	set := SetFields(c)[0]
	if got := len(AtomicFields(set.Elem)); got != 2 {
		t.Errorf("set elem atomic fields = %d, want 2", got)
	}
}

func TestInstanceConforms(t *testing.T) {
	sodT := bookSOD()
	title, price, date, authors := sodT.Fields[0], sodT.Fields[1], sodT.Fields[2], sodT.Fields[3]
	inst := &Instance{Type: sodT, Children: []*Instance{
		NewValue(title, "War and Peace"),
		NewValue(price, "$12.99"),
		NewValue(date, "1869"),
		{Type: authors, Children: []*Instance{NewValue(authors.Elem, "Leo Tolstoy")}},
	}}
	if err := inst.Conforms(); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
	// Missing required title.
	noTitle := &Instance{Type: sodT, Children: inst.Children[1:]}
	if err := noTitle.Conforms(); err == nil {
		t.Error("instance missing required field accepted")
	}
	// Missing optional date is fine.
	noDate := &Instance{Type: sodT, Children: []*Instance{
		inst.Children[0], inst.Children[1], inst.Children[3],
	}}
	if err := noDate.Conforms(); err != nil {
		t.Errorf("instance missing only optional field rejected: %v", err)
	}
	// Empty author set violates +.
	emptySet := &Instance{Type: sodT, Children: []*Instance{
		inst.Children[0], inst.Children[1], {Type: authors},
	}}
	if err := emptySet.Conforms(); err == nil {
		t.Error("empty + set accepted")
	}
}

func TestInstanceAccessors(t *testing.T) {
	sodT := concertSOD()
	loc := sodT.Fields[2]
	inst := &Instance{Type: sodT, Children: []*Instance{
		NewValue(sodT.Fields[0], "Metallica"),
		NewValue(sodT.Fields[1], "Monday May 11, 8:00pm"),
		{Type: loc, Children: []*Instance{
			NewValue(loc.Fields[0], "Madison Square Garden"),
			NewValue(loc.Fields[1], "237 West 42nd street"),
		}},
	}}
	if got := inst.FieldValue("artist"); got != "Metallica" {
		t.Errorf("artist = %q", got)
	}
	if inst.Field("location").FieldValue("theater") != "Madison Square Garden" {
		t.Error("nested field access failed")
	}
	if inst.Field("nope") != nil {
		t.Error("absent field should be nil")
	}
	vals := inst.Values()
	if len(vals) != 4 {
		t.Errorf("Values = %v", vals)
	}
	s := inst.String()
	if !strings.Contains(s, `artist="Metallica"`) {
		t.Errorf("String = %s", s)
	}
}

func TestInstanceDisjunctionConforms(t *testing.T) {
	d := MustParse(`oneof(isbn: regex([0-9]+) | title: instanceOf(BookTitle))`)
	ok := &Instance{Type: d, Children: []*Instance{NewValue(d.Fields[0], "978")}}
	if err := ok.Conforms(); err != nil {
		t.Errorf("valid disjunction rejected: %v", err)
	}
	both := &Instance{Type: d, Children: []*Instance{
		NewValue(d.Fields[0], "978"), NewValue(d.Fields[1], "T"),
	}}
	if err := both.Conforms(); err == nil {
		t.Error("disjunction with both alternatives accepted")
	}
}

// Property: lexing never panics and always terminates with EOF.
func TestLexTotal(t *testing.T) {
	f := func(s string) bool {
		toks := lex(s)
		return len(toks) > 0 && toks[len(toks)-1].kind == tokEOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Parse never panics on arbitrary input.
func TestParseTotal(t *testing.T) {
	f := func(s string) bool {
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
