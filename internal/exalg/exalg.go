// Package exalg implements the ExAlg baseline (Arasu & Garcia-Molina,
// SIGMOD 2003) against which ObjectRunner is compared in the paper's
// §IV.B: fully unsupervised wrapper inference from occurrence vectors and
// equivalence classes, using only the pages' regularity — no semantic
// annotations and no target description. It extracts every data slot of
// the inferred template into anonymous fields; labeling happens (if at
// all) as a post-processing step, which the evaluation harness simulates
// with golden-standard-driven field mapping.
package exalg

import (
	"fmt"
	"strings"

	"objectrunner/internal/dom"
	"objectrunner/internal/eqclass"
)

// Config tunes the baseline.
type Config struct {
	// Support is the minimal number of pages a template token must
	// appear in.
	Support int
	// SampleSize bounds how many pages are used for inference.
	SampleSize int
	// MaxIter bounds the differentiation fixpoint.
	MaxIter int
}

// DefaultConfig mirrors the original system's defaults.
func DefaultConfig() Config {
	return Config{Support: 3, SampleSize: 20, MaxIter: 10}
}

// Record is one extracted record: anonymous field ids mapped to values.
type Record map[string][]string

// Wrapper is an inferred ExAlg template.
type Wrapper struct {
	Analysis *eqclass.Analysis
	// record is the equivalence class treated as the record template:
	// the class with the most typed... — ExAlg has no types; the class
	// with the most data slots below the root.
	records []*eqclass.EQ
	Aborted bool
}

// Infer builds the template from the source's pages.
func Infer(pages []*dom.Node, cfg Config) *Wrapper {
	if cfg.Support <= 0 {
		cfg = DefaultConfig()
	}
	if len(pages) == 0 {
		return &Wrapper{Aborted: true}
	}
	n := len(pages)
	if cfg.SampleSize > 0 && n > cfg.SampleSize {
		n = cfg.SampleSize
	}
	var sample [][]*eqclass.Occurrence
	for i := 0; i < n; i++ {
		sample = append(sample, eqclass.TokenizePage(pages[i], nil, i))
	}
	p := eqclass.Params{Support: cfg.Support, MaxIter: cfg.MaxIter, UseAnnotations: false, AnnThreshold: 0.7}
	a := eqclass.Analyze(sample, p, nil)
	w := &Wrapper{Analysis: a}
	w.records = recordClasses(a)
	if len(w.records) == 0 {
		w.Aborted = true
	}
	return w
}

// recordClasses selects the class whose tuples correspond to the
// source's records: the class maximizing repetitions × fields², where a
// record's fields include, for each descendant class, its per-record
// occurrences (ExAlg's schema is nested; a record's fields may live in
// classes iterating inside it). Squaring favours the outer class that
// groups a whole record over the inner class holding single values.
func recordClasses(a *eqclass.Analysis) []*eqclass.EQ {
	// A record class repeats: its tuples occur at least twice per parent
	// tuple (constant or varying). Only when no class repeats (singleton
	// detail pages) does the page-level class stand in for the record.
	var candidates []*eqclass.EQ
	for _, e := range a.EQs {
		if e.Parent == nil {
			continue
		}
		if _, mult := eqclass.Multiplicity(e.Parent, e); mult >= 2 {
			candidates = append(candidates, e)
		}
	}
	if len(candidates) == 0 {
		candidates = a.EQs
	}
	var best *eqclass.EQ
	bestScore := 0
	for _, e := range candidates {
		fields := fieldsPerRecord(a, e)
		if fields == 0 {
			continue
		}
		tuples := 0
		for _, tups := range e.Tuples {
			tuples += len(tups)
		}
		score := fields * fields * tuples
		if score > bestScore {
			best, bestScore = e, score
		}
	}
	if best == nil {
		return nil
	}
	return []*eqclass.EQ{best}
}

// fieldsPerRecord estimates how many data fields one tuple of the class
// yields: its own text slots plus each descendant's fields multiplied by
// the descendant's per-tuple repetition count.
func fieldsPerRecord(a *eqclass.Analysis, e *eqclass.EQ) int {
	text := 0
	for _, p := range a.SlotProfilesOf(e) {
		if p.TextCount > 0 {
			text++
		}
	}
	for _, c := range e.Children {
		_, mult := eqclass.Multiplicity(e, c)
		if mult < 1 {
			mult = 1
		}
		text += mult * fieldsPerRecord(a, c)
	}
	return text
}

// ExtractPage applies the template to one page, producing one record per
// repetition of the record class. A record's fields are the class's own
// data slots plus, for each descendant class, the data slots of its
// occurrences within the record span, keyed positionally — this tabulates
// ExAlg's nested output the way a manual labeler would, column by column.
func (w *Wrapper) ExtractPage(page *dom.Node) []Record {
	if w.Aborted {
		return nil
	}
	toks := eqclass.TokenizePage(page, nil, 0)
	var out []Record
	for _, e := range w.records {
		for _, span := range findSpans(toks, e.Descs) {
			rec := make(Record)
			w.fillRecord(rec, e, toks, span)
			if len(rec) > 0 {
				out = append(out, rec)
			}
		}
	}
	return out
}

// fillRecord collects the fields of one record span: the class's own data
// slots and, recursively, the occurrences of descendant classes within
// the span (keyed with the occurrence ordinal so repeated inner classes
// become distinct columns).
func (w *Wrapper) fillRecord(rec Record, e *eqclass.EQ, toks []*eqclass.Occurrence, span []int) {
	for _, s := range dataSlots(w.Analysis, e) {
		if val := spanSlotText(toks, span, s); val != "" {
			rec[fieldID(e, s)+".o0"] = append(rec[fieldID(e, s)+".o0"], val)
		}
	}
	from, to := span[0], span[len(span)-1]
	for _, c := range e.Children {
		childSlots := dataSlots(w.Analysis, c)
		if len(childSlots) == 0 && len(c.Children) == 0 {
			continue
		}
		ord := 0
		for _, cs := range findSpansWithin(toks, c.Descs, from+1, to) {
			for _, s := range childSlots {
				if val := spanSlotText(toks, cs, s); val != "" {
					key := fmt.Sprintf("%s.o%d", fieldID(c, s), ord)
					rec[key] = append(rec[key], val)
				}
			}
			// Grandchildren flatten without further ordinal nesting.
			for _, g := range c.Children {
				for _, gs := range findSpansWithin(toks, g.Descs, cs[0]+1, cs[len(cs)-1]) {
					for _, s := range dataSlots(w.Analysis, g) {
						if val := spanSlotText(toks, gs, s); val != "" {
							key := fmt.Sprintf("%s.o%d", fieldID(g, s), ord)
							rec[key] = append(rec[key], val)
						}
					}
				}
			}
			ord++
		}
	}
}

// ExtractPages applies the template to every page.
func (w *Wrapper) ExtractPages(pages []*dom.Node) [][]Record {
	out := make([][]Record, len(pages))
	for i, p := range pages {
		out[i] = w.ExtractPage(p)
	}
	return out
}

func fieldID(e *eqclass.EQ, slot int) string {
	return fmt.Sprintf("eq%d.s%d", e.ID, slot)
}

func dataSlots(a *eqclass.Analysis, e *eqclass.EQ) []int {
	var out []int
	for i, p := range a.SlotProfilesOf(e) {
		if p.TextCount > 0 {
			out = append(out, i)
		}
	}
	return out
}

// findSpans locates repetitions of the class's separator sequence on the
// page by greedy descriptor matching.
func findSpans(toks []*eqclass.Occurrence, descs []eqclass.Desc) [][]int {
	return findSpansWithin(toks, descs, 0, len(toks))
}

// findSpansWithin restricts the scan to token positions [from, to).
func findSpansWithin(toks []*eqclass.Occurrence, descs []eqclass.Desc, from, to int) [][]int {
	if to > len(toks) {
		to = len(toks)
	}
	var out [][]int
	i := from
	for {
		positions := make([]int, 0, len(descs))
		j := i
		ok := true
		for _, d := range descs {
			found := -1
			for ; j < to; j++ {
				o := toks[j]
				if o.Kind == d.Kind && o.Value == d.Value && o.Path == d.Path {
					found = j
					break
				}
			}
			if found < 0 {
				ok = false
				break
			}
			positions = append(positions, found)
			j = found + 1
		}
		if !ok || len(positions) == 0 {
			return out
		}
		out = append(out, positions)
		i = positions[len(positions)-1] + 1
	}
}

func spanSlotText(toks []*eqclass.Occurrence, span []int, slot int) string {
	if slot+1 >= len(span) {
		return ""
	}
	var words []string
	for i := span[slot] + 1; i < span[slot+1]; i++ {
		if toks[i].Kind == eqclass.KindWord {
			words = append(words, toks[i].Raw)
		}
	}
	return strings.Join(words, " ")
}
