package exalg

import (
	"fmt"
	"strings"
	"testing"

	"objectrunner/internal/clean"
	"objectrunner/internal/dom"
)

func listPages(counts []int) []*dom.Node {
	pool := [][2]string{
		{"Metallica", "Monday May 11, 8:00pm"},
		{"Madonna", "Saturday May 29 7:00p"},
		{"Muse", "Friday June 19 7:00p"},
		{"Coldplay", "Saturday August 8, 2010 8:00pm"},
	}
	var out []*dom.Node
	for pi, n := range counts {
		var sb strings.Builder
		sb.WriteString("<html><body><ul>")
		for j := 0; j < n; j++ {
			r := pool[(pi+j)%len(pool)]
			fmt.Fprintf(&sb, `<li><div>%s</div><div>%s</div></li>`, r[0], r[1])
		}
		sb.WriteString("</ul></body></html>")
		out = append(out, clean.Page(sb.String()))
	}
	return out
}

func TestInferAndExtract(t *testing.T) {
	pages := listPages([]int{2, 3, 2, 4})
	w := Infer(pages, DefaultConfig())
	if w.Aborted {
		t.Fatal("aborted on a clean structured source")
	}
	recs := w.ExtractPage(pages[1])
	if len(recs) != 3 {
		for _, r := range recs {
			t.Logf("rec: %v", r)
		}
		t.Fatalf("extracted %d records, want 3", len(recs))
	}
	// Each record must carry the artist and date values in separate
	// fields (the structural differentiation worked).
	for _, r := range recs {
		if len(r) < 2 {
			t.Errorf("record has %d fields, want >= 2: %v", len(r), r)
		}
	}
	// One of the fields must hold "Madonna" (the first record of page 1).
	found := false
	for _, vs := range recs[0] {
		for _, v := range vs {
			if v == "Madonna" {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("first record does not contain Madonna: %v", recs[0])
	}
}

func TestExtractPages(t *testing.T) {
	pages := listPages([]int{2, 3, 2, 4})
	w := Infer(pages, DefaultConfig())
	all := w.ExtractPages(pages)
	if len(all) != 4 {
		t.Fatalf("pages = %d", len(all))
	}
	total := 0
	for _, recs := range all {
		total += len(recs)
	}
	if total != 11 {
		t.Errorf("total records = %d, want 11", total)
	}
}

func TestInferEmpty(t *testing.T) {
	w := Infer(nil, DefaultConfig())
	if !w.Aborted {
		t.Error("no pages should abort")
	}
	if w.ExtractPage(clean.Page("<html><body>x</body></html>")) != nil {
		t.Error("aborted wrapper extracted")
	}
}

func TestInferUnstructuredSource(t *testing.T) {
	var pages []*dom.Node
	texts := []string{
		"Lorem ipsum dolor sit amet, consectetur adipiscing elit.",
		"Sed do eiusmod tempor incididunt ut labore et dolore.",
		"Ut enim ad minim veniam quis nostrud exercitation ullamco.",
	}
	for _, tx := range texts {
		pages = append(pages, clean.Page("<html><body><p>"+tx+"</p></body></html>"))
	}
	w := Infer(pages, DefaultConfig())
	// A single p block is still "structure", but record extraction
	// should be trivial (one record per page at most).
	if !w.Aborted {
		recs := w.ExtractPage(pages[0])
		if len(recs) > 1 {
			t.Errorf("unstructured page produced %d records", len(recs))
		}
	}
}

func TestTooRegularDataBecomesTemplate(t *testing.T) {
	// With counts [2,3,2] and the rotating pool, the token "8:00pm"
	// happens to occur exactly once per page: without semantic
	// annotations it is indistinguishable from the template, becomes a
	// separator, and record structure collapses — the failure mode the
	// paper attributes to purely structural techniques (§II.C). This
	// test pins that authentic baseline behaviour.
	a := listPages([]int{2, 3, 2})
	w := Infer(a, DefaultConfig())
	if w.Aborted {
		t.Fatal("aborted")
	}
	recs := w.ExtractPage(a[0])
	if len(recs) >= 2 {
		t.Skipf("structure survived the too-regular token (got %d records)", len(recs))
	}
	if len(recs) != 1 {
		t.Errorf("records = %d, want the collapsed single record", len(recs))
	}
}

func TestCleanVocabularyExtractsRecords(t *testing.T) {
	// With per-record vocabulary that never repeats across pages, the
	// structural inference recovers the records exactly.
	var pages []*dom.Node
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "iota", "kappa"}
	k := 0
	for _, n := range []int{2, 3, 2} {
		var sb strings.Builder
		sb.WriteString("<html><body><ul>")
		for j := 0; j < n; j++ {
			fmt.Fprintf(&sb, `<li><div>%s</div><div>%s</div></li>`, words[k%len(words)], words[(k+5)%len(words)])
			k++
		}
		sb.WriteString("</ul></body></html>")
		pages = append(pages, clean.Page(sb.String()))
	}
	w := Infer(pages, DefaultConfig())
	if w.Aborted {
		t.Fatal("aborted")
	}
	recs := w.ExtractPage(pages[0])
	if len(recs) != 2 {
		t.Errorf("records = %d, want 2", len(recs))
	}
}
