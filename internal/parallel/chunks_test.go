package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestChunksPartitionContiguousAndDeterministic(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 7, 100} {
		for _, n := range []int{0, 1, 2, 5, 7, 64, 101} {
			a, b := Chunks(workers, n), Chunks(workers, n)
			if fmt.Sprint(a) != fmt.Sprint(b) {
				t.Fatalf("workers=%d n=%d: Chunks not deterministic: %v vs %v", workers, n, a, b)
			}
			if n == 0 {
				if len(a) != 0 {
					t.Errorf("workers=%d n=0: got %d chunks, want none", workers, len(a))
				}
				continue
			}
			if want := min(workers, n); len(a) != want {
				t.Errorf("workers=%d n=%d: %d chunks, want %d", workers, n, len(a), want)
			}
			lo := 0
			for i, c := range a {
				if c.Lo != lo {
					t.Errorf("workers=%d n=%d: chunk %d starts at %d, want %d (contiguous)", workers, n, i, c.Lo, lo)
				}
				if c.Len() <= 0 {
					t.Errorf("workers=%d n=%d: chunk %d is empty", workers, n, i)
				}
				lo = c.Hi
			}
			if lo != n {
				t.Errorf("workers=%d n=%d: chunks end at %d, want %d", workers, n, lo, n)
			}
			// Balanced: sizes differ by at most one.
			minLen, maxLen := n, 0
			for _, c := range a {
				minLen, maxLen = min(minLen, c.Len()), max(maxLen, c.Len())
			}
			if maxLen-minLen > 1 {
				t.Errorf("workers=%d n=%d: chunk sizes range %d..%d, want spread <= 1", workers, n, minLen, maxLen)
			}
		}
	}
}

func TestMapWorkersCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 100} {
		for _, n := range []int{0, 1, 7, 64} {
			hits := make([]int32, n)
			states, err := MapWorkersCtx(context.Background(), workers, n,
				func(_ context.Context, worker int, c Chunk) (int, error) {
					count := 0
					for i := c.Lo; i < c.Hi; i++ {
						atomic.AddInt32(&hits[i], 1)
						count++
					}
					return count, nil
				})
			if err != nil {
				t.Fatalf("workers=%d n=%d: %v", workers, n, err)
			}
			for i, h := range hits {
				if h != 1 {
					t.Errorf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
			total := 0
			for _, s := range states {
				total += s
			}
			if total != n {
				t.Errorf("workers=%d n=%d: per-worker states sum to %d items", workers, n, total)
			}
		}
	}
}

// TestMapWorkersStateOrderMatchesChunkOrder pins the property the fused
// tokenize→intern stage depends on: the returned per-worker states come
// back in chunk (= input range) order, whatever the goroutine scheduling,
// so a left-to-right merge over them is deterministic.
func TestMapWorkersStateOrderMatchesChunkOrder(t *testing.T) {
	const workers, n = 4, 17
	want := Chunks(workers, n)
	for run := 0; run < 20; run++ {
		got, err := MapWorkersCtx(context.Background(), workers, n,
			func(_ context.Context, worker int, c Chunk) (Chunk, error) {
				return c, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("run %d: states %v, want chunk order %v", run, got, want)
		}
	}
}

func TestMapWorkersFirstErrorInChunkOrder(t *testing.T) {
	errA, errB := errors.New("chunk 1 failed"), errors.New("chunk 3 failed")
	_, err := MapWorkersCtx(context.Background(), 4, 16,
		func(_ context.Context, worker int, c Chunk) (struct{}, error) {
			switch worker {
			case 1:
				return struct{}{}, errA
			case 3:
				return struct{}{}, errB
			}
			return struct{}{}, nil
		})
	if err != errA {
		t.Fatalf("err = %v, want the first failing chunk's error %v", err, errA)
	}
}

func TestMapWorkersCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int32
	_, err := MapWorkersCtx(ctx, 4, 16, func(_ context.Context, worker int, c Chunk) (struct{}, error) {
		atomic.AddInt32(&ran, 1)
		return struct{}{}, nil
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Errorf("%d chunks ran on a pre-canceled context", ran)
	}
}

func TestMapWorkersEmptyInput(t *testing.T) {
	states, err := MapWorkersCtx(context.Background(), 4, 0,
		func(_ context.Context, worker int, c Chunk) (int, error) { return 1, nil })
	if err != nil || len(states) != 0 {
		t.Fatalf("empty input: states=%v err=%v, want none and nil", states, err)
	}
}

func TestMapWorkersPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want the chunk's panic value", r)
		}
	}()
	_, _ = MapWorkersCtx(context.Background(), 4, 16,
		func(_ context.Context, worker int, c Chunk) (struct{}, error) {
			if worker == 2 {
				panic("boom")
			}
			return struct{}{}, nil
		})
	t.Fatal("panic in a chunk was swallowed")
}

func TestMapWorkersSequentialFastPath(t *testing.T) {
	order := []int{}
	_, err := MapWorkersCtx(context.Background(), 1, 5,
		func(_ context.Context, worker int, c Chunk) (struct{}, error) {
			if worker != 0 {
				t.Errorf("sequential path reported worker %d", worker)
			}
			for i := c.Lo; i < c.Hi; i++ {
				order = append(order, i) // no goroutines: plain append is safe
			}
			return struct{}{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[0 1 2 3 4]" {
		t.Fatalf("sequential order = %v", order)
	}
}
