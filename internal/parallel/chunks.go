package parallel

import (
	"context"
	"sync"
)

// Chunk is a contiguous half-open index range [Lo, Hi) owned by one
// worker of a chunked fan-out.
type Chunk struct{ Lo, Hi int }

// Len returns the number of indices in the chunk.
func (c Chunk) Len() int { return c.Hi - c.Lo }

// Chunks partitions [0, n) into at most `workers` contiguous chunks whose
// sizes differ by at most one, larger chunks first. The partition is a
// pure function of (workers, n): two calls with the same arguments always
// return the same boundaries, which is what lets a second fan-out (e.g.
// the symbol remap pass) revisit exactly the ranges a first fan-out
// produced per-worker state for. Empty chunks are never returned: with
// workers > n the result has n single-index chunks.
func Chunks(workers, n int) []Chunk {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	out := make([]Chunk, workers)
	size, rem := n/workers, n%workers
	lo := 0
	for w := range out {
		hi := lo + size
		if w < rem {
			hi++
		}
		out[w] = Chunk{Lo: lo, Hi: hi}
		lo = hi
	}
	return out
}

// MapWorkersCtx is the fused per-worker primitive: it partitions [0, n)
// into the deterministic contiguous Chunks(workers, n), runs fn once per
// chunk — concurrently, one goroutine per chunk — and returns the
// per-chunk results in chunk order. Unlike ForEach, which balances
// per-index over a channel, a chunk is owned start-to-finish by a single
// worker, so fn can accumulate worker-local state (a local symbol table,
// a local buffer) across its whole range with zero cross-worker
// synchronization, and the caller can merge the returned states in a
// deterministic left-to-right pass.
//
// fn receives ctx and is responsible for its own cancellation checks
// between items; MapWorkersCtx itself only refuses to start work on an
// already-canceled context. The first non-nil error in chunk order is
// returned with a nil result slice. A panic in any chunk is re-raised on
// the calling goroutine after all chunks finish. workers <= 1 (or a
// single chunk) runs on the calling goroutine with no goroutines at all.
func MapWorkersCtx[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, worker int, c Chunk) (T, error)) ([]T, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	chunks := Chunks(workers, n)
	if len(chunks) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	results := make([]T, len(chunks))
	errs := make([]error, len(chunks))
	if len(chunks) == 1 {
		var err error
		results[0], err = fn(ctx, 0, chunks[0])
		if err != nil {
			return nil, err
		}
		return results, nil
	}
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	for w, c := range chunks {
		wg.Add(1)
		go func(worker int, c Chunk) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			results[worker], errs[worker] = fn(ctx, worker, c)
		}(w, c)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
