// Package parallel provides the bounded worker-pool primitive behind the
// pipeline's per-page fan-out (ROADMAP: "runs as fast as the hardware
// allows"). Every per-page stage — cleaning, segmentation, annotation,
// tokenization, extraction — is embarrassingly parallel: fn(i) writes
// only to the i-th slot of a pre-sized result slice, so results come back
// merged in stable input order and output stays byte-identical to the
// sequential path regardless of scheduling.
package parallel

import (
	"runtime"
	"sync"

	"objectrunner/internal/obs"
)

// Workers resolves a configured worker count: values <= 0 mean "one
// worker per available CPU" (runtime.GOMAXPROCS(0)).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach invokes fn(i) for every i in [0, n), fanning the indices out
// across at most workers goroutines and blocking until all calls return.
// workers <= 1 (or n <= 1) degenerates to a plain sequential loop on the
// calling goroutine. fn must confine its writes to per-index state; a
// panic in any fn is re-raised on the calling goroutine after the pool
// drains.
func ForEach(workers, n int, fn func(i int)) {
	ForEachWorker(workers, n, func(_, i int) { fn(i) })
}

// ForEachWorker is ForEach exposing the worker ordinal (0-based) running
// each index, for per-worker accounting.
func ForEachWorker(workers, n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	// Indices are handed out through a channel rather than pre-sliced so
	// that skewed pages (one huge, many tiny) still balance.
	idx := make(chan int)
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
					// Drain so the feeder never blocks on a dead pool.
					for range idx {
					}
				}
			}()
			for i := range idx {
				fn(worker, i)
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// ForEachObserved is ForEachWorker with observability: each worker runs
// under its own "pipeline.worker" span parented to ob (nil-safe), and fn
// receives the worker-scoped observer so nested spans and events land
// under the right worker. The span records the number of items the
// worker processed.
func ForEachObserved(ob *obs.Observer, workers, n int, fn func(wob *obs.Observer, i int)) {
	if !ob.Enabled() {
		ForEachWorker(workers, n, func(_, i int) { fn(nil, i) })
		return
	}
	type state struct {
		span  *obs.Span
		wob   *obs.Observer
		items int
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	states := make([]state, workers)
	ForEachWorker(workers, n, func(worker, i int) {
		st := &states[worker]
		if st.span == nil {
			st.span = ob.WorkerSpan(worker)
			st.wob = st.span.Observer()
		}
		st.items++
		fn(st.wob, i)
	})
	for i := range states {
		if states[i].span != nil {
			states[i].span.End(obs.A("items", states[i].items))
		}
	}
}
