// Package parallel provides the bounded worker-pool primitive behind the
// pipeline's per-page fan-out (ROADMAP: "runs as fast as the hardware
// allows"). Every per-page stage — cleaning, segmentation, annotation,
// tokenization, extraction — is embarrassingly parallel: fn(i) writes
// only to the i-th slot of a pre-sized result slice, so results come back
// merged in stable input order and output stays byte-identical to the
// sequential path regardless of scheduling.
//
// The Ctx variants additionally honor context cancellation: once the
// context is canceled (or any worker panics), no further indices are
// dispatched — each worker finishes at most the item it already holds, so
// cancellation latency is bounded by one in-flight item per worker.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"objectrunner/internal/obs"
)

// Workers resolves a configured worker count: values <= 0 mean "one
// worker per available CPU" (runtime.GOMAXPROCS(0)).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach invokes fn(i) for every i in [0, n), fanning the indices out
// across at most workers goroutines and blocking until all calls return.
// workers <= 1 (or n <= 1) degenerates to a plain sequential loop on the
// calling goroutine. fn must confine its writes to per-index state; a
// panic in any fn is re-raised on the calling goroutine after the pool
// drains.
func ForEach(workers, n int, fn func(i int)) {
	ForEachWorker(workers, n, func(_, i int) { fn(i) })
}

// ForEachCtx is ForEach honoring cancellation: queued indices stop being
// dispatched once ctx is canceled, and the context error is returned.
// Indices already handed to a worker still complete, so callers must
// treat the result slots as partially filled when a non-nil error comes
// back. A nil ctx behaves like context.Background().
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int)) error {
	return ForEachWorkerCtx(ctx, workers, n, func(_, i int) { fn(i) })
}

// ForEachWorker is ForEach exposing the worker ordinal (0-based) running
// each index, for per-worker accounting.
func ForEachWorker(workers, n int, fn func(worker, i int)) {
	// The background context never cancels, so the error is always nil.
	_ = ForEachWorkerCtx(context.Background(), workers, n, fn)
}

// ForEachWorkerCtx is the context-aware core of the pool. Indices are
// handed out through an unbuffered channel rather than pre-sliced so that
// skewed pages (one huge, many tiny) still balance; the feeder stops at
// the first of: all indices dispatched, ctx canceled, or a worker panic.
// Remaining indices are never dispatched in the latter two cases.
//
// The error reports whether the input was fully processed, not whether
// the context is canceled now: when every index was dispatched and
// completed, the return is nil even if a cancellation raced the final
// items — callers own a fully-populated result slice and must not
// discard it.
func ForEachWorkerCtx(ctx context.Context, workers, n int, fn func(worker, i int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(0, i)
		}
		// Every index ran: the work is complete whatever the context
		// did while the last item was in flight.
		return nil
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	// failed stops the feeder after a worker panic, so the pool never
	// drains the whole input on behalf of a dead computation.
	var failed atomic.Bool
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
					failed.Store(true)
					// Drain so the feeder never blocks on a dead pool.
					for range idx {
					}
				}
			}()
			for i := range idx {
				fn(worker, i)
			}
		}(w)
	}
	done := ctx.Done()
	dispatched := 0
feed:
	for i := 0; i < n; i++ {
		if failed.Load() {
			break
		}
		// Deterministic pre-check: a select with both cases ready picks
		// randomly, which would let extra items slip out after a cancel.
		select {
		case <-done:
			break feed
		default:
		}
		select {
		case idx <- i:
			dispatched++
		case <-done:
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	if dispatched == n {
		// A dispatched index is a completed index once wg.Wait returns;
		// all n completed, so the caller's result slice is whole.
		return nil
	}
	return ctx.Err()
}

// ForEachObserved is ForEachWorker with observability: each worker runs
// under its own "pipeline.worker" span parented to ob (nil-safe), and fn
// receives the worker-scoped observer so nested spans and events land
// under the right worker. The span records the number of items the
// worker processed.
func ForEachObserved(ob *obs.Observer, workers, n int, fn func(wob *obs.Observer, i int)) {
	_ = ForEachObservedCtx(context.Background(), ob, workers, n, fn)
}

// ForEachObservedCtx is ForEachObserved honoring cancellation, with the
// same partial-result contract as ForEachCtx.
func ForEachObservedCtx(ctx context.Context, ob *obs.Observer, workers, n int, fn func(wob *obs.Observer, i int)) error {
	if !ob.Enabled() {
		return ForEachWorkerCtx(ctx, workers, n, func(_, i int) { fn(nil, i) })
	}
	type state struct {
		span  *obs.Span
		wob   *obs.Observer
		items int
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	states := make([]state, workers)
	err := ForEachWorkerCtx(ctx, workers, n, func(worker, i int) {
		st := &states[worker]
		if st.span == nil {
			st.span = ob.WorkerSpan(worker)
			st.wob = st.span.Observer()
		}
		st.items++
		fn(st.wob, i)
	})
	for i := range states {
		if states[i].span != nil {
			states[i].span.End(obs.A("items", states[i].items))
		}
	}
	return err
}
