package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"objectrunner/internal/obs"
)

func TestWorkersResolution(t *testing.T) {
	if got, want := Workers(0), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("Workers(0) = %d, want %d", got, want)
	}
	if got, want := Workers(-3), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("Workers(-3) = %d, want %d", got, want)
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

func TestForEachCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 100} {
		for _, n := range []int{0, 1, 7, 64} {
			hits := make([]int32, n)
			ForEach(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Errorf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForEachWorkerOrdinalInBounds(t *testing.T) {
	const workers, n = 4, 32
	var mu sync.Mutex
	seen := make(map[int]bool)
	ForEachWorker(workers, n, func(worker, i int) {
		if worker < 0 || worker >= workers {
			t.Errorf("worker ordinal %d out of [0, %d)", worker, workers)
		}
		mu.Lock()
		seen[worker] = true
		mu.Unlock()
	})
	if len(seen) == 0 {
		t.Fatal("no worker ran")
	}
}

func TestForEachSequentialFastPathUsesWorkerZero(t *testing.T) {
	ForEachWorker(1, 8, func(worker, i int) {
		if worker != 0 {
			t.Errorf("sequential path reported worker %d", worker)
		}
	})
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want the worker's panic value", r)
		}
	}()
	ForEach(4, 16, func(i int) {
		if i == 5 {
			panic("boom")
		}
	})
	t.Fatal("panic in a worker was swallowed")
}

func TestForEachObservedSharesMetricsAndEndsWorkerSpans(t *testing.T) {
	ob := obs.New()
	var total int64
	ForEachObserved(ob, 4, 10, func(wob *obs.Observer, i int) {
		wob.Count("test.items", 1)
		atomic.AddInt64(&total, 1)
	})
	if total != 10 {
		t.Fatalf("ran %d items, want 10", total)
	}
	if got := ob.Counter("test.items"); got != 10 {
		t.Errorf("worker-scoped counter = %d, want 10", got)
	}
	hists := ob.Histograms()
	ws, ok := hists["span.pipeline.worker"]
	if !ok {
		t.Fatal("no pipeline.worker span was recorded")
	}
	if ws.Count < 1 || ws.Count > 4 {
		t.Errorf("worker span count = %d, want 1..4", ws.Count)
	}
}

func TestForEachObservedDisabledObserver(t *testing.T) {
	hits := make([]int32, 6)
	ForEachObserved(nil, 3, len(hits), func(wob *obs.Observer, i int) {
		if wob.Enabled() {
			t.Error("disabled parent produced an enabled worker observer")
		}
		atomic.AddInt32(&hits[i], 1)
	})
	for i, h := range hits {
		if h != 1 {
			t.Errorf("index %d visited %d times", i, h)
		}
	}
}

func TestForEachCtxCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := int32(0)
	err := ForEachCtx(ctx, 4, 100, func(i int) { atomic.AddInt32(&ran, 1) })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Errorf("%d items ran after pre-canceled context (workers may hold at most their in-flight item)", ran)
	}
}

func TestForEachCtxStopsDispatchOnCancel(t *testing.T) {
	const workers, n = 4, 1000
	ctx, cancel := context.WithCancel(context.Background())
	var ran int32
	err := ForEachCtx(ctx, workers, n, func(i int) {
		if atomic.AddInt32(&ran, 1) == workers {
			cancel() // all workers busy once; nothing more may be dispatched
		}
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Bounded by one in-flight item per worker around the cancel point:
	// the feeder may have parked one extra index per worker before the
	// cancellation was observed.
	if got := atomic.LoadInt32(&ran); got > 2*workers {
		t.Errorf("ran %d items after cancel, want <= %d", got, 2*workers)
	}
}

func TestForEachCtxSequentialPathStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int32
	err := ForEachCtx(ctx, 1, 100, func(i int) {
		if i == 3 {
			cancel()
		}
		atomic.AddInt32(&ran, 1)
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 4 {
		t.Errorf("sequential path ran %d items after cancel at index 3, want 4", ran)
	}
}

func TestForEachStopsDispatchAfterWorkerPanic(t *testing.T) {
	const workers, n = 2, 10000
	var ran int32
	func() {
		defer func() {
			if r := recover(); r != "die" {
				t.Fatalf("recovered %v, want the worker's panic value", r)
			}
		}()
		ForEach(workers, n, func(i int) {
			v := atomic.AddInt32(&ran, 1)
			if v == 1 {
				panic("die")
			}
			// Let the panic win the race against healthy workers.
			time.Sleep(100 * time.Microsecond)
		})
		t.Fatal("panic was swallowed")
	}()
	// Far below n: the feeder must stop once the panic is observed.
	if got := atomic.LoadInt32(&ran); got > n/2 {
		t.Errorf("ran %d of %d items after a worker panic; dispatch did not stop", got, n)
	}
}

// TestForEachCtxNilAfterAllIndicesCompleted is the regression test for
// the cancel-vs-completion race: a context canceled while (or after) the
// final items run must NOT surface as an error when every index was
// dispatched and completed — callers own a fully-populated result slice
// and would wrongly discard it.
func TestForEachCtxNilAfterAllIndicesCompleted(t *testing.T) {
	const workers, n = 4, 4
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran int32
	// The feeder hands out indices in order over an unbuffered channel,
	// so when fn(n-1) runs every index has been dispatched; canceling
	// there guarantees the cancel races (and loses to) full dispatch.
	err := ForEachCtx(ctx, workers, n, func(i int) {
		if i == n-1 {
			cancel()
		}
		atomic.AddInt32(&ran, 1)
	})
	if err != nil {
		t.Fatalf("err = %v after all %d indices completed, want nil", err, n)
	}
	if got := atomic.LoadInt32(&ran); got != n {
		t.Fatalf("ran %d of %d items", got, n)
	}
}

func TestForEachCtxSequentialNilAfterAllIndicesCompleted(t *testing.T) {
	const n = 5
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran int32
	err := ForEachCtx(ctx, 1, n, func(i int) {
		if i == n-1 {
			cancel() // races the return of the final item on the sequential path
		}
		atomic.AddInt32(&ran, 1)
	})
	if err != nil {
		t.Fatalf("err = %v after all %d indices completed, want nil", err, n)
	}
	if ran != n {
		t.Fatalf("ran %d of %d items", ran, n)
	}
}

func TestForEachCtxEmptyInputReturnsNil(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := ForEachCtx(ctx, 4, 0, func(i int) {}); err != nil {
		t.Fatalf("err = %v for n=0 (vacuously complete), want nil", err)
	}
}

func TestForEachObservedCtxReturnsContextError(t *testing.T) {
	ob := obs.New()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEachObservedCtx(ctx, ob, 4, 50, func(wob *obs.Observer, i int) {})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
