// Package render implements a heuristic box-model layout engine for DOM
// trees. ObjectRunner's pre-processing (paper §III) relies on VIPS-style
// visual segmentation, which requires approximate rectangles for page
// regions. The paper uses a full rendering engine; this package substitutes
// a lightweight flow layout that preserves the properties the segmentation
// heuristic depends on: block elements stack vertically, inline content
// flows and wraps, tables partition width among cells, and bigger subtrees
// get bigger rectangles.
package render

import (
	"objectrunner/internal/dom"
)

// Box is an axis-aligned rectangle in CSS-pixel coordinates, with the
// origin at the top-left of the viewport.
type Box struct {
	X, Y, W, H float64
}

// Area returns the rectangle's area.
func (b Box) Area() float64 { return b.W * b.H }

// CenterX returns the x coordinate of the rectangle's center.
func (b Box) CenterX() float64 { return b.X + b.W/2 }

// CenterY returns the y coordinate of the rectangle's center.
func (b Box) CenterY() float64 { return b.Y + b.H/2 }

// Contains reports whether b fully contains other.
func (b Box) Contains(other Box) bool {
	return other.X >= b.X && other.Y >= b.Y &&
		other.X+other.W <= b.X+b.W && other.Y+other.H <= b.Y+b.H
}

// Metrics are the constants of the heuristic layout.
type Metrics struct {
	ViewportWidth float64 // layout width of the page
	CharWidth     float64 // average glyph advance
	LineHeight    float64 // height of one text line
	BlockGap      float64 // vertical margin between sibling blocks
	ImageWidth    float64 // default <img> width
	ImageHeight   float64 // default <img> height
}

// DefaultMetrics returns the metrics used throughout the evaluation: a
// 1024px viewport with 8x16 text cells.
func DefaultMetrics() Metrics {
	return Metrics{
		ViewportWidth: 1024,
		CharWidth:     8,
		LineHeight:    16,
		BlockGap:      4,
		ImageWidth:    120,
		ImageHeight:   90,
	}
}

// Layout computes a rectangle for every element and text node under doc and
// returns the mapping. The document itself spans the full viewport width.
type Layout struct {
	Boxes   map[*dom.Node]Box
	Metrics Metrics
}

// Compute lays out the document with the given metrics.
func Compute(doc *dom.Node, m Metrics) *Layout {
	l := &Layout{Boxes: make(map[*dom.Node]Box), Metrics: m}
	h := l.layoutBlock(doc, 0, 0, m.ViewportWidth)
	l.Boxes[doc] = Box{X: 0, Y: 0, W: m.ViewportWidth, H: h}
	return l
}

// ComputeDefault lays out the document with DefaultMetrics.
func ComputeDefault(doc *dom.Node) *Layout {
	return Compute(doc, DefaultMetrics())
}

// Box returns the rectangle of n (zero Box when the node was not laid out,
// e.g. comments).
func (l *Layout) Box(n *dom.Node) Box { return l.Boxes[n] }

// inlineTags lists elements that participate in inline flow rather than
// establishing their own block.
var inlineTags = map[string]bool{
	"a": true, "abbr": true, "b": true, "bdi": true, "bdo": true,
	"cite": true, "code": true, "data": true, "dfn": true, "em": true,
	"i": true, "kbd": true, "label": true, "mark": true, "q": true,
	"s": true, "samp": true, "small": true, "span": true, "strong": true,
	"sub": true, "sup": true, "time": true, "u": true, "var": true,
	"img": true, "br": true, "wbr": true,
}

// IsInline reports whether the node flows inline in our box model.
func IsInline(n *dom.Node) bool {
	if n.Type == dom.TextNode {
		return true
	}
	return n.Type == dom.ElementNode && inlineTags[n.Data]
}

// layoutBlock lays out the children of n within [x, x+width) starting at
// vertical offset y, records boxes, and returns the total height consumed.
func (l *Layout) layoutBlock(n *dom.Node, x, y, width float64) float64 {
	if width <= 0 {
		width = l.Metrics.CharWidth
	}
	cursorY := y
	i := 0
	children := layoutChildren(n)
	for i < len(children) {
		c := children[i]
		if IsInline(c) {
			// Collect the maximal run of inline siblings into one flow.
			j := i
			for j < len(children) && IsInline(children[j]) {
				j++
			}
			h := l.layoutInlineRun(children[i:j], x, cursorY, width)
			cursorY += h
			i = j
			continue
		}
		h := l.layoutElement(c, x, cursorY, width)
		cursorY += h + l.Metrics.BlockGap
		i++
	}
	if cursorY > y {
		// Remove the trailing gap so empty containers have zero height.
		if i > 0 && !IsInline(children[len(children)-1]) {
			cursorY -= l.Metrics.BlockGap
		}
	}
	return cursorY - y
}

// layoutChildren filters out nodes that occupy no space.
func layoutChildren(n *dom.Node) []*dom.Node {
	out := make([]*dom.Node, 0, len(n.Children))
	for _, c := range n.Children {
		switch c.Type {
		case dom.CommentNode, dom.DoctypeNode:
			continue
		case dom.TextNode:
			if dom.CollapseSpace(c.Data) == "" {
				continue
			}
		}
		out = append(out, c)
	}
	return out
}

// layoutElement lays out a block-level element and returns its height.
func (l *Layout) layoutElement(n *dom.Node, x, y, width float64) float64 {
	var h float64
	switch n.Data {
	case "table":
		h = l.layoutTable(n, x, y, width)
	case "tr":
		h = l.layoutRow(n, x, y, width)
	default:
		h = l.layoutBlock(n, x, y, width)
	}
	if h == 0 && n.Type == dom.ElementNode {
		// Empty blocks still occupy a thin strip (e.g. <hr>).
		if n.Data == "hr" || n.Data == "br" {
			h = l.Metrics.LineHeight / 2
		}
	}
	l.Boxes[n] = Box{X: x, Y: y, W: width, H: h}
	return h
}

// layoutTable stacks rows; non-row children (caption, thead wrapper
// contents) are treated as blocks.
func (l *Layout) layoutTable(n *dom.Node, x, y, width float64) float64 {
	cursorY := y
	for _, c := range layoutChildren(n) {
		if c.Type != dom.ElementNode {
			h := l.layoutInlineRun([]*dom.Node{c}, x, cursorY, width)
			cursorY += h
			continue
		}
		switch c.Data {
		case "tr":
			cursorY += l.layoutRow(c, x, cursorY, width)
		case "thead", "tbody", "tfoot":
			h := l.layoutTable(c, x, cursorY, width)
			l.Boxes[c] = Box{X: x, Y: cursorY, W: width, H: h}
			cursorY += h
		default:
			cursorY += l.layoutElement(c, x, cursorY, width)
		}
	}
	return cursorY - y
}

// layoutRow splits the width equally among the row's cells.
func (l *Layout) layoutRow(n *dom.Node, x, y, width float64) float64 {
	var cells []*dom.Node
	for _, c := range layoutChildren(n) {
		if c.Type == dom.ElementNode && (c.Data == "td" || c.Data == "th") {
			cells = append(cells, c)
		}
	}
	if len(cells) == 0 {
		h := l.layoutBlock(n, x, y, width)
		l.Boxes[n] = Box{X: x, Y: y, W: width, H: h}
		return h
	}
	cellW := width / float64(len(cells))
	maxH := 0.0
	for i, cell := range cells {
		cx := x + float64(i)*cellW
		h := l.layoutBlock(cell, cx, y, cellW)
		if h < l.Metrics.LineHeight {
			h = l.Metrics.LineHeight
		}
		l.Boxes[cell] = Box{X: cx, Y: y, W: cellW, H: h}
		if h > maxH {
			maxH = h
		}
	}
	l.Boxes[n] = Box{X: x, Y: y, W: width, H: maxH}
	return maxH
}

// layoutInlineRun flows a run of inline nodes into lines of the given width
// and returns the height consumed. Each inline node is assigned the
// bounding box of its glyph run (possibly spanning lines, approximated as
// the rectangle from its first to last line).
func (l *Layout) layoutInlineRun(run []*dom.Node, x, y, width float64) float64 {
	flow := &inlineFlow{l: l, left: x, width: width, y: y, lineH: l.Metrics.LineHeight}
	for _, n := range run {
		flow.place(n)
	}
	return flow.height()
}

type inlineFlow struct {
	l       *Layout
	left    float64
	width   float64
	y       float64
	x       float64 // offset within the current line
	lines   float64 // completed lines
	lineH   float64
	anyText bool
}

func (f *inlineFlow) height() float64 {
	if f.x > 0 || f.anyText {
		return (f.lines + 1) * f.lineH
	}
	return f.lines * f.lineH
}

// place assigns a box to n covering its flowed extent.
func (f *inlineFlow) place(n *dom.Node) {
	startLine, startX := f.lines, f.x
	switch {
	case n.Type == dom.TextNode:
		f.advance(float64(len(dom.CollapseSpace(n.Data))) * f.l.Metrics.CharWidth)
		f.anyText = true
	case n.IsElement("br"):
		f.lines++
		f.x = 0
	case n.IsElement("img"):
		f.advance(f.l.Metrics.ImageWidth)
		f.anyText = true
	default:
		for _, c := range layoutChildren(n) {
			f.place(c)
		}
	}
	f.l.Boxes[n] = f.boxBetween(startLine, startX)
}

// advance moves the cursor by w pixels, wrapping lines as needed.
func (f *inlineFlow) advance(w float64) {
	for w > 0 {
		remaining := f.width - f.x
		if w <= remaining {
			f.x += w
			return
		}
		w -= remaining
		f.lines++
		f.x = 0
		if f.width <= 0 {
			return
		}
	}
}

// boxBetween returns the rectangle covering the flow from (startLine,
// startX) to the current cursor.
func (f *inlineFlow) boxBetween(startLine, startX float64) Box {
	y0 := f.y + startLine*f.lineH
	if f.lines == startLine {
		return Box{X: f.left + startX, Y: y0, W: f.x - startX, H: f.lineH}
	}
	// Spans multiple lines: bounding box is full width.
	h := (f.lines - startLine + 1) * f.lineH
	return Box{X: f.left, Y: y0, W: f.width, H: h}
}
