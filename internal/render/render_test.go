package render

import (
	"testing"

	"objectrunner/internal/clean"
	"objectrunner/internal/dom"
)

func layoutOf(t *testing.T, src string) (*dom.Node, *Layout) {
	t.Helper()
	doc := clean.Page(src)
	return doc, ComputeDefault(doc)
}

func TestBlocksStackVertically(t *testing.T) {
	doc, l := layoutOf(t, `<body><div>first</div><div>second</div></body>`)
	divs := doc.Find("div")
	if len(divs) != 2 {
		t.Fatal("need 2 divs")
	}
	a, b := l.Box(divs[0]), l.Box(divs[1])
	if b.Y <= a.Y {
		t.Errorf("second div (y=%v) should be below first (y=%v)", b.Y, a.Y)
	}
	if a.W != DefaultMetrics().ViewportWidth {
		t.Errorf("block width = %v, want viewport width", a.W)
	}
}

func TestInlineFlowsHorizontally(t *testing.T) {
	doc, l := layoutOf(t, `<body><div><span>aaa</span><span>bbb</span></div></body>`)
	spans := doc.Find("span")
	a, b := l.Box(spans[0]), l.Box(spans[1])
	if a.Y != b.Y {
		t.Errorf("inline siblings on different lines: %v vs %v", a.Y, b.Y)
	}
	if b.X <= a.X {
		t.Errorf("second span should be to the right: %v vs %v", b.X, a.X)
	}
}

func TestTextWraps(t *testing.T) {
	long := ""
	for i := 0; i < 300; i++ {
		long += "x"
	}
	doc, l := layoutOf(t, `<body><div>`+long+`</div></body>`)
	div := doc.FindOne("div")
	b := l.Box(div)
	m := DefaultMetrics()
	// 300 chars * 8px = 2400px over a 1024px viewport needs 3 lines.
	if b.H < 3*m.LineHeight {
		t.Errorf("height = %v, want >= %v (wrapped)", b.H, 3*m.LineHeight)
	}
}

func TestTableCellsShareWidth(t *testing.T) {
	doc, l := layoutOf(t, `<body><table><tr><td>a</td><td>b</td><td>c</td><td>d</td></tr></table></body>`)
	tds := doc.Find("td")
	if len(tds) != 4 {
		t.Fatal("need 4 cells")
	}
	w := DefaultMetrics().ViewportWidth / 4
	for i, td := range tds {
		b := l.Box(td)
		if b.W != w {
			t.Errorf("cell %d width = %v, want %v", i, b.W, w)
		}
		if b.X != float64(i)*w {
			t.Errorf("cell %d x = %v, want %v", i, b.X, float64(i)*w)
		}
	}
}

func TestTableRowsStack(t *testing.T) {
	doc, l := layoutOf(t, `<body><table><tr><td>a</td></tr><tr><td>b</td></tr></table></body>`)
	trs := doc.Find("tr")
	if l.Box(trs[1]).Y <= l.Box(trs[0]).Y {
		t.Error("rows did not stack")
	}
}

func TestBiggerSubtreeBiggerBox(t *testing.T) {
	doc, l := layoutOf(t, `<body>
		<div id="small">one line</div>
		<div id="big"><p>l1</p><p>l2</p><p>l3</p><p>l4</p></div>
	</body>`)
	var small, big Box
	for _, d := range doc.Find("div") {
		switch d.AttrOr("id", "") {
		case "small":
			small = l.Box(d)
		case "big":
			big = l.Box(d)
		}
	}
	if big.Area() <= small.Area() {
		t.Errorf("big area %v should exceed small %v", big.Area(), small.Area())
	}
}

func TestChildContainedInParent(t *testing.T) {
	doc, l := layoutOf(t, `<body><div><p>para one</p><p>para two</p><ul><li>x</li><li>y</li></ul></div></body>`)
	doc.Walk(func(n *dom.Node) bool {
		if n.Type != dom.ElementNode || n.Parent == nil || n.Parent.Type != dom.ElementNode {
			return true
		}
		pb, ok := l.Boxes[n.Parent]
		if !ok {
			return true
		}
		cb := l.Box(n)
		// Allow tiny numerical slack.
		if cb.Y < pb.Y-0.01 || cb.Y+cb.H > pb.Y+pb.H+0.01 {
			t.Errorf("%s box %+v escapes parent %s box %+v vertically", n.Data, cb, n.Parent.Data, pb)
		}
		return true
	})
}

func TestBrBreaksLine(t *testing.T) {
	doc, l := layoutOf(t, `<body><div><span>a</span><br><span>b</span></div></body>`)
	spans := doc.Find("span")
	a, b := l.Box(spans[0]), l.Box(spans[1])
	if b.Y <= a.Y {
		t.Error("br did not break the line")
	}
}

func TestImgOccupiesSpace(t *testing.T) {
	doc, l := layoutOf(t, `<body><div><img src="x.png"></div></body>`)
	img := doc.FindOne("img")
	if l.Box(img).W != DefaultMetrics().ImageWidth {
		t.Errorf("img width = %v", l.Box(img).W)
	}
}

func TestBoxHelpers(t *testing.T) {
	b := Box{X: 10, Y: 20, W: 100, H: 50}
	if b.Area() != 5000 {
		t.Errorf("Area = %v", b.Area())
	}
	if b.CenterX() != 60 || b.CenterY() != 45 {
		t.Errorf("center = (%v,%v)", b.CenterX(), b.CenterY())
	}
	inner := Box{X: 20, Y: 25, W: 10, H: 10}
	if !b.Contains(inner) {
		t.Error("Contains(inner) = false")
	}
	outer := Box{X: 0, Y: 0, W: 500, H: 500}
	if b.Contains(outer) {
		t.Error("Contains(outer) = true")
	}
}

func TestDocumentBoxCoversContent(t *testing.T) {
	doc, l := layoutOf(t, `<body><div>a</div><div>b</div><div>c</div></body>`)
	db := l.Box(doc)
	for _, d := range doc.Find("div") {
		if !db.Contains(l.Box(d)) {
			t.Errorf("document box %+v does not contain div box %+v", db, l.Box(d))
		}
	}
}

func TestEmptyDocument(t *testing.T) {
	doc := dom.Parse("")
	l := ComputeDefault(doc)
	if l.Box(doc).W != DefaultMetrics().ViewportWidth {
		t.Error("empty document missing viewport box")
	}
}
