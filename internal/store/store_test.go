package store

import (
	"context"
	"errors"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"objectrunner/internal/wrapper"
)

// fakeBuilder counts build calls and hands out distinguishable wrappers.
type fakeBuilder struct {
	calls atomic.Int64
}

func (f *fakeBuilder) build(ctx context.Context) (*wrapper.Wrapper, error) {
	n := f.calls.Add(1)
	return &wrapper.Wrapper{Support: int(n)}, nil
}

func TestGetCachesResult(t *testing.T) {
	s := New(Config{})
	var f fakeBuilder
	w1, err := s.Get(context.Background(), "src", f.build)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := s.Get(context.Background(), "src", f.build)
	if err != nil {
		t.Fatal(err)
	}
	if w1 != w2 {
		t.Error("second Get rebuilt instead of hitting the cache")
	}
	if got := f.calls.Load(); got != 1 {
		t.Errorf("build calls = %d, want 1", got)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Len != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestGetPropagatesBuildError(t *testing.T) {
	s := New(Config{})
	boom := errors.New("boom")
	_, err := s.Get(context.Background(), "src", func(ctx context.Context) (*wrapper.Wrapper, error) {
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// A failed build is not cached: the next Get retries.
	var f fakeBuilder
	if _, err := s.Get(context.Background(), "src", f.build); err != nil {
		t.Fatal(err)
	}
	if f.calls.Load() != 1 {
		t.Error("build not retried after a failed attempt")
	}
}

func TestLRUEviction(t *testing.T) {
	s := New(Config{Capacity: 2})
	var f fakeBuilder
	for _, key := range []string{"a", "b", "c"} {
		if _, err := s.Get(context.Background(), key, f.build); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Len != 2 || st.EvictionsLRU != 1 {
		t.Fatalf("stats after overflow = %+v", st)
	}
	// "a" was the least recently used; re-getting it rebuilds.
	if _, err := s.Get(context.Background(), "a", f.build); err != nil {
		t.Fatal(err)
	}
	if got := f.calls.Load(); got != 4 {
		t.Errorf("build calls = %d, want 4 (a evicted and rebuilt)", got)
	}
	// "c" stayed resident.
	if _, err := s.Get(context.Background(), "c", f.build); err != nil {
		t.Fatal(err)
	}
	if got := f.calls.Load(); got != 4 {
		t.Errorf("build calls = %d, want still 4 (c cached)", got)
	}
}

func TestTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	s := New(Config{TTL: time.Minute, Clock: clock})
	var f fakeBuilder
	if _, err := s.Get(context.Background(), "src", f.build); err != nil {
		t.Fatal(err)
	}
	advance(30 * time.Second)
	if _, err := s.Get(context.Background(), "src", f.build); err != nil {
		t.Fatal(err)
	}
	if f.calls.Load() != 1 {
		t.Error("entry expired before its TTL")
	}
	advance(31 * time.Second)
	if _, err := s.Get(context.Background(), "src", f.build); err != nil {
		t.Fatal(err)
	}
	if f.calls.Load() != 2 {
		t.Error("entry not rebuilt after TTL expiry")
	}
	if st := s.Stats(); st.EvictionsTTL != 1 {
		t.Errorf("stats = %+v, want one TTL eviction", st)
	}
}

func TestHealthEviction(t *testing.T) {
	s := New(Config{HealthThreshold: 0.5, MinServedPages: 4})
	var f fakeBuilder
	if _, err := s.Get(context.Background(), "src", f.build); err != nil {
		t.Fatal(err)
	}
	// Below the floor: no judgment yet.
	s.RecordServe("src", 3, 3)
	if st := s.Stats(); st.EvictionsHealth != 0 {
		t.Fatalf("evicted below MinServedPages floor: %+v", st)
	}
	// Past the floor with 6/7 empty: evict.
	s.RecordServe("src", 3, 4)
	st := s.Stats()
	if st.EvictionsHealth != 1 || st.Len != 0 {
		t.Fatalf("stats = %+v, want health eviction", st)
	}
	if _, err := s.Get(context.Background(), "src", f.build); err != nil {
		t.Fatal(err)
	}
	if f.calls.Load() != 2 {
		t.Error("source not re-inferred after health eviction")
	}
}

func TestHealthyWrapperStaysCached(t *testing.T) {
	s := New(Config{HealthThreshold: 0.5, MinServedPages: 4})
	var f fakeBuilder
	if _, err := s.Get(context.Background(), "src", f.build); err != nil {
		t.Fatal(err)
	}
	s.RecordServe("src", 1, 10)
	if st := s.Stats(); st.EvictionsHealth != 0 || st.Len != 1 {
		t.Errorf("healthy wrapper evicted: %+v", st)
	}
}

func TestSingleflightDedup(t *testing.T) {
	s := New(Config{})
	var calls atomic.Int64
	release := make(chan struct{})
	build := func(ctx context.Context) (*wrapper.Wrapper, error) {
		calls.Add(1)
		<-release
		return &wrapper.Wrapper{Support: 7}, nil
	}
	const n = 16
	var wg sync.WaitGroup
	results := make([]*wrapper.Wrapper, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Get(context.Background(), "src", build)
		}(i)
	}
	// Let the callers pile up on the single in-flight build, then release.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different wrapper", i)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("build calls = %d, want 1 (singleflight)", got)
	}
	if st := s.Stats(); st.Shared == 0 {
		t.Errorf("stats = %+v, want shared flights", st)
	}
}

func TestSingleflightWaiterRetriesAfterLeaderCanceled(t *testing.T) {
	s := New(Config{})
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderIn := make(chan struct{})
	var calls atomic.Int64
	build := func(ctx context.Context) (*wrapper.Wrapper, error) {
		if calls.Add(1) == 1 {
			close(leaderIn)
			<-ctx.Done() // the leader's build honors its cancellation
			return nil, ctx.Err()
		}
		return &wrapper.Wrapper{Support: 42}, nil
	}

	leaderDone := make(chan error, 1)
	go func() {
		_, err := s.Get(leaderCtx, "src", build)
		leaderDone <- err
	}()
	<-leaderIn

	waiterDone := make(chan struct{})
	var waiterW *wrapper.Wrapper
	var waiterErr error
	go func() {
		defer close(waiterDone)
		waiterW, waiterErr = s.Get(context.Background(), "src", build)
	}()
	// Give the waiter time to join the in-flight call, then kill the
	// leader: the waiter must take over the build, not inherit the
	// leader's cancellation.
	time.Sleep(20 * time.Millisecond)
	cancelLeader()

	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Errorf("leader err = %v, want context.Canceled", err)
	}
	select {
	case <-waiterDone:
	case <-time.After(10 * time.Second):
		t.Fatal("waiter never completed after leader cancellation")
	}
	if waiterErr != nil {
		t.Fatalf("waiter err = %v", waiterErr)
	}
	if waiterW == nil || waiterW.Support != 42 {
		t.Errorf("waiter wrapper = %+v, want the retried build's result", waiterW)
	}
}

func TestGetCanceledCaller(t *testing.T) {
	s := New(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.Get(ctx, "src", func(ctx context.Context) (*wrapper.Wrapper, error) {
		t.Error("build ran despite pre-canceled ctx")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestDiskSpillSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	var f fakeBuilder

	s1 := New(Config{SpillDir: dir})
	w1, err := s1.Get(context.Background(), "src", f.build)
	if err != nil {
		t.Fatal(err)
	}

	// A fresh store over the same directory simulates a process restart:
	// the wrapper loads from disk, no rebuild.
	s2 := New(Config{SpillDir: dir})
	w2, err := s2.Get(context.Background(), "src", f.build)
	if err != nil {
		t.Fatal(err)
	}
	if f.calls.Load() != 1 {
		t.Errorf("build calls = %d, want 1 (disk hit)", f.calls.Load())
	}
	if w2.Support != w1.Support {
		t.Errorf("disk-loaded wrapper differs: %d vs %d", w2.Support, w1.Support)
	}
	if st := s2.Stats(); st.DiskHits != 1 {
		t.Errorf("stats = %+v, want one disk hit", st)
	}
}

func TestDiskSpillSurvivesLRUEviction(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{Capacity: 1, SpillDir: dir})
	var f fakeBuilder
	if _, err := s.Get(context.Background(), "a", f.build); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(context.Background(), "b", f.build); err != nil {
		t.Fatal(err)
	}
	// "a" fell out of memory but not off disk.
	if _, err := s.Get(context.Background(), "a", f.build); err != nil {
		t.Fatal(err)
	}
	if f.calls.Load() != 2 {
		t.Errorf("build calls = %d, want 2 (a reloaded from disk)", f.calls.Load())
	}
}

func TestInvalidateRemovesMemoryAndDisk(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{SpillDir: dir})
	var f fakeBuilder
	if _, err := s.Get(context.Background(), "src", f.build); err != nil {
		t.Fatal(err)
	}
	s.Invalidate("src")
	if _, err := s.Get(context.Background(), "src", f.build); err != nil {
		t.Fatal(err)
	}
	if f.calls.Load() != 2 {
		t.Errorf("build calls = %d, want 2 (invalidated entry rebuilt)", f.calls.Load())
	}
}

func TestCorruptSpillIsRejectedAndRebuilt(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{SpillDir: dir})
	var f fakeBuilder
	if _, err := s.Get(context.Background(), "src", f.build); err != nil {
		t.Fatal(err)
	}
	// Corrupt the spill, then force a disk path via a fresh store.
	path := s.spillPath("src")
	if err := corruptFile(path); err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{SpillDir: dir})
	if _, err := s2.Get(context.Background(), "src", f.build); err != nil {
		t.Fatal(err)
	}
	if f.calls.Load() != 2 {
		t.Errorf("build calls = %d, want 2 (corrupt spill rebuilt)", f.calls.Load())
	}
}

func TestCloseDrainsInflightAndSpills(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{SpillDir: dir})
	enter := make(chan struct{})
	release := make(chan struct{})
	getDone := make(chan error, 1)
	go func() {
		_, err := s.Get(context.Background(), "src", func(ctx context.Context) (*wrapper.Wrapper, error) {
			close(enter)
			<-release
			return &wrapper.Wrapper{Support: 7}, nil
		})
		getDone <- err
	}()
	<-enter

	closeDone := make(chan error, 1)
	go func() { closeDone <- s.Close(context.Background()) }()

	// Close must wait for the in-flight build, not race past it.
	select {
	case err := <-closeDone:
		t.Fatalf("Close returned %v while a build was in flight", err)
	case <-time.After(30 * time.Millisecond):
	}
	// A closing store refuses new work immediately, even mid-drain.
	var f fakeBuilder
	if _, err := s.Get(context.Background(), "other", f.build); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get during drain err = %v, want ErrClosed", err)
	}
	close(release)
	if err := <-getDone; err != nil {
		t.Fatalf("in-flight Get err = %v", err)
	}
	if err := <-closeDone; err != nil {
		t.Fatalf("Close err = %v", err)
	}
	// The drained build's result reached the spill directory: a fresh
	// store over the same directory serves it without rebuilding.
	s2 := New(Config{SpillDir: dir})
	w, err := s2.Get(context.Background(), "src", func(ctx context.Context) (*wrapper.Wrapper, error) {
		return nil, errors.New("rebuilt after drain spill")
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Support != 7 {
		t.Errorf("spilled wrapper Support = %d, want 7", w.Support)
	}
	if st := s2.Stats(); st.DiskHits != 1 {
		t.Errorf("stats = %+v, want one disk hit", st)
	}
}

func TestCloseCutShortStillSpillsCached(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{SpillDir: dir})
	var f fakeBuilder
	if _, err := s.Get(context.Background(), "cached", f.build); err != nil {
		t.Fatal(err)
	}
	// Remove the spill written at build time, so only Close's final
	// spill pass can restore it.
	if err := os.Remove(s.spillPath("cached")); err != nil {
		t.Fatal(err)
	}

	enter := make(chan struct{})
	release := make(chan struct{})
	getDone := make(chan struct{})
	go func() {
		defer close(getDone)
		_, _ = s.Get(context.Background(), "slow", func(ctx context.Context) (*wrapper.Wrapper, error) {
			close(enter)
			<-release
			return nil, errors.New("too late")
		})
	}()
	<-enter

	// A pre-canceled ctx cuts the inflight wait short; the cached entry
	// must be spilled anyway.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Close(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Close err = %v, want context.Canceled", err)
	}
	if _, err := os.Stat(s.spillPath("cached")); err != nil {
		t.Errorf("cached entry not spilled by cut-short Close: %v", err)
	}
	close(release)
	<-getDone
	if err := s.Close(context.Background()); err != nil {
		t.Errorf("second Close = %v, want idempotent nil", err)
	}
}

// corruptFile flips bytes at the end of the file.
func corruptFile(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	for i := len(b) - 3; i < len(b); i++ {
		if i >= 0 {
			b[i] ^= 0xff
		}
	}
	return os.WriteFile(path, b, 0o644)
}
