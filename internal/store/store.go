// Package store is the wrapper serving cache: a source-keyed, size-bounded
// LRU of inferred wrappers with TTL expiry, singleflight deduplication of
// concurrent builds, health-based invalidation, and an optional disk-spill
// directory. One wrapper inference costs seconds of annotation and
// equivalence-class analysis; serving traffic re-runs only extraction,
// which the paper measures as negligible — so the cache is what turns the
// pipeline into a long-running service: the first request for a source
// pays for inference, every later request (and every concurrent duplicate
// of the first) reuses the learned wrapper.
package store

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"time"

	"objectrunner/internal/obs"
	"objectrunner/internal/wrapper"
)

// Config tunes the cache. The zero value is completed with defaults.
type Config struct {
	// Capacity bounds the number of wrappers held in memory; the least
	// recently used entry is evicted beyond it. Default 64.
	Capacity int
	// TTL expires entries (memory and disk) after this long; 0 means no
	// expiry.
	TTL time.Duration
	// HealthThreshold invalidates a wrapper whose served pages come back
	// empty at a rate above this fraction — the source's template drifted
	// and the wrapper no longer matches, so the next request re-infers.
	// 0 disables health eviction.
	HealthThreshold float64
	// MinServedPages is the number of served pages required before the
	// health test applies (a floor against judging on tiny samples).
	// Default 8.
	MinServedPages int
	// SpillDir persists built wrappers to disk so they survive both LRU
	// eviction and process restarts. Empty disables spilling.
	SpillDir string
	// Encode and Decode convert wrappers to and from their persisted
	// stream for the spill directory. They default to the wrapper layer's
	// own codec; the facade overrides Decode to re-bind its live SOD.
	Encode func(w *wrapper.Wrapper, dst *os.File) error
	// Decode is the inverse of Encode.
	Decode func(src *os.File) (*wrapper.Wrapper, error)
	// Obs receives the cache's counters (store.hits, store.misses,
	// store.evictions.*, store.singleflight.shared, store.disk.*), each
	// labeled with the source key — per-source hit/miss and eviction
	// rates are queryable straight off the observer's snapshot.
	Obs *obs.Observer
	// Clock overrides time.Now for TTL tests.
	Clock func() time.Time
}

func (c *Config) normalize() {
	if c.Capacity <= 0 {
		c.Capacity = 64
	}
	if c.MinServedPages <= 0 {
		c.MinServedPages = 8
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.Encode == nil {
		c.Encode = func(w *wrapper.Wrapper, dst *os.File) error { return w.Encode(dst) }
	}
	if c.Decode == nil {
		c.Decode = func(src *os.File) (*wrapper.Wrapper, error) { return wrapper.Decode(src, nil) }
	}
}

// Stats is a point-in-time snapshot of the cache's accounting.
type Stats struct {
	Len             int   // wrappers currently in memory
	Hits            int64 // memory hits
	DiskHits        int64 // misses served from the spill directory
	Misses          int64 // misses that ran the build function
	Shared          int64 // callers that piggybacked on an in-flight build
	EvictionsLRU    int64
	EvictionsTTL    int64
	EvictionsHealth int64
}

// entry is one cached wrapper with its health accounting.
type entry struct {
	key         string
	w           *wrapper.Wrapper
	addedAt     time.Time
	servedPages int
	emptyPages  int
}

// call is one in-flight build, shared by concurrent Get calls on the key.
type call struct {
	done chan struct{}
	w    *wrapper.Wrapper
	err  error
}

// ErrClosed reports a Get on a store that was shut down with Close.
var ErrClosed = errors.New("store: closed")

// Store is the serving cache. All methods are safe for concurrent use.
type Store struct {
	cfg Config

	mu       sync.Mutex
	ll       *list.List // front = most recently used; values are *entry
	entries  map[string]*list.Element
	inflight map[string]*call
	stats    Stats
	closed   bool
}

// New builds a cache with the given configuration.
func New(cfg Config) *Store {
	cfg.normalize()
	return &Store{
		cfg:      cfg,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*call),
	}
}

// Get returns the wrapper cached under key, building it at most once per
// concurrent wave of callers: the first caller runs build (after trying
// the spill directory), every other caller waits for that result. A
// waiter whose leader was canceled retries leadership rather than
// inheriting the cancellation; a caller whose own ctx ends while waiting
// returns its ctx error.
func (s *Store) Get(ctx context.Context, key string, build func(ctx context.Context) (*wrapper.Wrapper, error)) (*wrapper.Wrapper, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return nil, ErrClosed
		}
		if w, ok := s.lookupLocked(key); ok {
			s.stats.Hits++
			s.mu.Unlock()
			s.cfg.Obs.CountL("store.hits", 1, obs.L("source", key))
			return w, nil
		}
		if c, ok := s.inflight[key]; ok {
			s.stats.Shared++
			s.mu.Unlock()
			s.cfg.Obs.CountL("store.singleflight.shared", 1, obs.L("source", key))
			select {
			case <-c.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if c.err == nil {
				return c.w, nil
			}
			if errors.Is(c.err, context.Canceled) || errors.Is(c.err, context.DeadlineExceeded) {
				// The leader was canceled, not the build refused: retry,
				// possibly becoming the next leader.
				continue
			}
			return nil, c.err
		}
		c := &call{done: make(chan struct{})}
		s.inflight[key] = c
		s.mu.Unlock()

		c.w, c.err = s.buildOrLoad(ctx, key, build)

		s.mu.Lock()
		delete(s.inflight, key)
		// After Close the cache no longer accepts entries; the build's
		// result still reaches this caller (and its waiters), and
		// buildOrLoad already spilled it to disk.
		if c.err == nil && !s.closed {
			s.insertLocked(key, c.w)
		}
		s.mu.Unlock()
		close(c.done)
		return c.w, c.err
	}
}

// buildOrLoad tries the spill directory first, then runs the build and
// spills its result.
func (s *Store) buildOrLoad(ctx context.Context, key string, build func(ctx context.Context) (*wrapper.Wrapper, error)) (*wrapper.Wrapper, error) {
	if w, ok := s.loadSpill(key); ok {
		s.mu.Lock()
		s.stats.DiskHits++
		s.mu.Unlock()
		s.cfg.Obs.CountL("store.hits.disk", 1, obs.L("source", key))
		return w, nil
	}
	s.mu.Lock()
	s.stats.Misses++
	s.mu.Unlock()
	s.cfg.Obs.CountL("store.misses", 1, obs.L("source", key))
	w, err := build(ctx)
	if err != nil {
		return nil, err
	}
	s.writeSpill(key, w)
	return w, nil
}

// lookupLocked returns the live entry for key, expiring it by TTL.
func (s *Store) lookupLocked(key string) (*wrapper.Wrapper, bool) {
	el, ok := s.entries[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*entry)
	if s.cfg.TTL > 0 && s.cfg.Clock().Sub(e.addedAt) >= s.cfg.TTL {
		s.removeLocked(el)
		s.removeSpill(key)
		s.stats.EvictionsTTL++
		s.cfg.Obs.CountL("store.evictions.ttl", 1, obs.L("source", key))
		return nil, false
	}
	s.ll.MoveToFront(el)
	return e.w, true
}

// insertLocked adds the entry at the front, evicting beyond capacity. The
// LRU eviction keeps the spill file: memory stays bounded while the disk
// copy spares the evicted source a full re-inference.
func (s *Store) insertLocked(key string, w *wrapper.Wrapper) {
	if el, ok := s.entries[key]; ok {
		el.Value.(*entry).w = w
		el.Value.(*entry).addedAt = s.cfg.Clock()
		s.ll.MoveToFront(el)
		return
	}
	s.entries[key] = s.ll.PushFront(&entry{key: key, w: w, addedAt: s.cfg.Clock()})
	for s.ll.Len() > s.cfg.Capacity {
		oldest := s.ll.Back()
		if oldest == nil {
			break
		}
		evicted := oldest.Value.(*entry).key
		s.removeLocked(oldest)
		s.stats.EvictionsLRU++
		s.cfg.Obs.CountL("store.evictions.lru", 1, obs.L("source", evicted))
	}
}

func (s *Store) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	s.ll.Remove(el)
	delete(s.entries, e.key)
}

// RecordServe feeds health accounting back after serving pages from the
// cached wrapper: emptyPages of totalPages yielded no objects. Once
// enough pages were served, an empty rate above HealthThreshold evicts
// the wrapper (memory and disk), so the next request re-infers against
// the source's current template.
func (s *Store) RecordServe(key string, emptyPages, totalPages int) {
	if totalPages <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		return
	}
	e := el.Value.(*entry)
	e.servedPages += totalPages
	e.emptyPages += emptyPages
	if s.cfg.HealthThreshold <= 0 || e.servedPages < s.cfg.MinServedPages {
		return
	}
	rate := float64(e.emptyPages) / float64(e.servedPages)
	if rate <= s.cfg.HealthThreshold {
		return
	}
	s.removeLocked(el)
	s.removeSpill(key)
	s.stats.EvictionsHealth++
	s.cfg.Obs.CountL("store.evictions.health", 1, obs.L("source", key))
	s.cfg.Obs.Event("store.health_evict", obs.A("key", key),
		obs.A("empty_rate", rate), obs.A("served_pages", e.servedPages))
}

// Close drains and shuts down the cache: new Gets fail with ErrClosed,
// in-flight singleflight builds are waited for (bounded by ctx — their
// own contexts decide whether they finish or cancel), and every wrapper
// still in memory is spilled to the spill directory so a restart starts
// warm. Close is idempotent; it returns ctx.Err() when the wait was cut
// short (entries present at that moment are still spilled).
func (s *Store) Close(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	calls := make([]*call, 0, len(s.inflight))
	for _, c := range s.inflight {
		calls = append(calls, c)
	}
	s.mu.Unlock()

	var err error
	for _, c := range calls {
		select {
		case <-c.done:
		case <-ctx.Done():
			err = ctx.Err()
		}
		if err != nil {
			break
		}
	}

	s.mu.Lock()
	entries := make([]*entry, 0, s.ll.Len())
	for el := s.ll.Front(); el != nil; el = el.Next() {
		entries = append(entries, el.Value.(*entry))
	}
	s.mu.Unlock()
	for _, e := range entries {
		s.writeSpill(e.key, e.w)
	}
	s.cfg.Obs.Event("store.close", obs.A("spilled", len(entries)), obs.A("waited", len(calls)))
	return err
}

// Invalidate removes the key from memory and disk.
func (s *Store) Invalidate(key string) {
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.removeLocked(el)
	}
	s.mu.Unlock()
	s.removeSpill(key)
}

// Stats returns a snapshot of the cache accounting.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Len = s.ll.Len()
	return st
}

// spillPath maps a source key (an arbitrary string, often a URL) to a
// fixed-length filename in the spill directory.
func (s *Store) spillPath(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.cfg.SpillDir, hex.EncodeToString(sum[:16])+".wrapper")
}

// loadSpill reads the key's spilled wrapper, honoring TTL via the file's
// modification time. Undecodable spills are deleted, not served.
func (s *Store) loadSpill(key string) (*wrapper.Wrapper, bool) {
	if s.cfg.SpillDir == "" {
		return nil, false
	}
	path := s.spillPath(key)
	f, err := os.Open(path)
	if err != nil {
		return nil, false
	}
	defer f.Close()
	if s.cfg.TTL > 0 {
		if fi, err := f.Stat(); err != nil || s.cfg.Clock().Sub(fi.ModTime()) >= s.cfg.TTL {
			os.Remove(path)
			return nil, false
		}
	}
	w, err := s.cfg.Decode(f)
	if err != nil {
		os.Remove(path)
		s.cfg.Obs.Count("store.disk.errors", 1)
		s.cfg.Obs.Event("store.disk_error", obs.A("op", "decode"), obs.A("error", err.Error()))
		return nil, false
	}
	return w, true
}

// writeSpill persists the wrapper under the key, atomically (temp file +
// rename), so a crash mid-write never leaves a truncated spill. Spill
// failures are logged, not returned: the cache degrades to memory-only.
func (s *Store) writeSpill(key string, w *wrapper.Wrapper) {
	if s.cfg.SpillDir == "" || w == nil {
		return
	}
	path := s.spillPath(key)
	if err := os.MkdirAll(s.cfg.SpillDir, 0o755); err != nil {
		s.spillError("mkdir", err)
		return
	}
	tmp, err := os.CreateTemp(s.cfg.SpillDir, ".spill-*")
	if err != nil {
		s.spillError("create", err)
		return
	}
	if err := s.cfg.Encode(w, tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		s.spillError("encode", err)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		s.spillError("close", err)
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		s.spillError("rename", err)
		return
	}
	s.cfg.Obs.CountL("store.disk.writes", 1, obs.L("source", key))
}

func (s *Store) spillError(op string, err error) {
	s.cfg.Obs.Count("store.disk.errors", 1)
	s.cfg.Obs.Event("store.disk_error", obs.A("op", op), obs.A("error", err.Error()))
}

func (s *Store) removeSpill(key string) {
	if s.cfg.SpillDir == "" {
		return
	}
	os.Remove(s.spillPath(key))
}
