package httpserver

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"objectrunner/internal/obs"
)

func TestTraceIDPropagation(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(traceID string) string {
		req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
		if traceID != "" {
			req.Header.Set("X-Trace-Id", traceID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.Header.Get("X-Trace-Id")
	}

	// Inbound ids are propagated and echoed back.
	if got := get("caller-abc.123"); got != "caller-abc.123" {
		t.Errorf("inbound trace id not propagated: got %q", got)
	}
	// Hostile characters are stripped; length is capped. (Characters the
	// http client itself refuses, like \n, are covered by
	// TestSanitizeTraceID below.)
	if got := get("evil\"id with spaces"); got != "evilidwithspaces" {
		t.Errorf("sanitized trace id = %q", got)
	}
	long := strings.Repeat("x", 200)
	if got := get(long); got != strings.Repeat("x", 64) {
		t.Errorf("long trace id not capped: %d bytes", len(get(long)))
	}
	// A fully-hostile id (nothing survives) gets a minted one.
	if got := get("!! @@ ##"); !strings.HasPrefix(got, "req-") {
		t.Errorf("expected minted id, got %q", got)
	}
	// No header at all also mints.
	if got := get(""); !strings.HasPrefix(got, "req-") {
		t.Errorf("expected minted id, got %q", got)
	}
}

func TestSanitizeTraceID(t *testing.T) {
	for in, want := range map[string]string{
		"abc-123_X.y": "abc-123_X.y",
		"a b\tc":      "abc",
		`x"y\z`:       "xyz",
		"":            "",
		"héllo":       "hllo",
	} {
		if got := sanitizeTraceID(in); got != want {
			t.Errorf("sanitizeTraceID(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRouteLabel(t *testing.T) {
	for path, want := range map[string]string{
		"/v1/wrap":              "wrap",
		"/v1/extract":           "extract",
		"/v1/sources":           "sources",
		"/v1/sources/books/bn":  "sources",
		"/v1/debug/traces":      "traces",
		"/debug/pprof/heap":     "pprof",
		"/healthz":              "healthz",
		"/metrics":              "metrics",
		"/anything/else":        "other",
		"/v1/wrap/../../secret": "other",
	} {
		if got := routeLabel(path); got != want {
			t.Errorf("routeLabel(%q) = %q, want %q", path, got, want)
		}
	}
}

func TestMetricsPrometheusExposition(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Generate some labeled traffic first.
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != obs.PromContentType {
		t.Errorf("Content-Type = %q, want %q", got, obs.PromContentType)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"# TYPE http_requests_total counter",
		`http_requests_by_route_total{route="healthz",status="2xx"} 3`,
		"# TYPE http_request_seconds summary",
		`http_request_seconds{route="healthz",quantile="0.5"}`,
		`http_request_seconds{route="healthz",quantile="0.99"}`,
		`http_request_seconds_count{route="healthz"} 3`,
		"# TYPE http_request_seconds_max gauge",
		"# TYPE uptime_seconds gauge",
		`objectrunner_build_info{go_version="go`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "http.request") {
		t.Errorf("unsanitized metric name leaked into exposition:\n%s", text)
	}
}

func TestMetricsContentNegotiation(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		accept   string
		wantJSON bool
	}{
		{"", true},
		{"*/*", true},
		{"application/json", true},
		{"text/plain", false},
		{"text/plain; version=0.0.4", false},
		{"application/openmetrics-text; version=1.0.0", false},
		{"application/json, text/plain", true}, // first recognized wins
		{"text/plain, application/json", false},
	} {
		req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
		if tc.accept != "" {
			req.Header.Set("Accept", tc.accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		isJSON := strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json")
		if isJSON != tc.wantJSON {
			t.Errorf("Accept=%q: got Content-Type %q, want JSON=%v",
				tc.accept, resp.Header.Get("Content-Type"), tc.wantJSON)
		}
		if tc.wantJSON {
			var m metricsResponse
			if err := json.Unmarshal(body, &m); err != nil {
				t.Errorf("Accept=%q: bad JSON: %v", tc.accept, err)
			}
		}
	}
}

func TestDebugTraces(t *testing.T) {
	srv := New(Config{FlightRecorderSize: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Issue a request with a known trace id, then read the recorder.
	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Trace-Id", "trace-known-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/v1/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Recent  []traceJSON `json:"recent"`
		Slowest []traceJSON `json:"slowest"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Recent) == 0 || len(out.Slowest) == 0 {
		t.Fatalf("empty flight recorder: recent=%d slowest=%d", len(out.Recent), len(out.Slowest))
	}
	var found *traceJSON
	for i := range out.Recent {
		if out.Recent[i].ID == "trace-known-1" {
			found = &out.Recent[i]
			break
		}
	}
	if found == nil {
		t.Fatalf("known trace id not in recent traces: %+v", out.Recent)
	}
	if found.Name != "GET /healthz" {
		t.Errorf("trace name = %q, want %q", found.Name, "GET /healthz")
	}
	if found.Status != http.StatusOK {
		t.Errorf("trace status = %d, want 200", found.Status)
	}
	if found.Labels["route"] != "healthz" {
		t.Errorf("trace route label = %q", found.Labels["route"])
	}
	if found.DurMs < 0 {
		t.Errorf("trace dur_ms = %v", found.DurMs)
	}
	if found.Start.After(time.Now()) {
		t.Errorf("trace start in the future: %v", found.Start)
	}
}

func TestPprofGating(t *testing.T) {
	// Off by default.
	off := httptest.NewServer(New(Config{}).Handler())
	defer off.Close()
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without EnablePprof: status %d, want 404", resp.StatusCode)
	}

	// Mounted when enabled.
	on := httptest.NewServer(New(Config{EnablePprof: true}).Handler())
	defer on.Close()
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof with EnablePprof: status %d, want 200", resp.StatusCode)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index missing profile listing")
	}
}
