package httpserver

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"objectrunner"
	apiv1 "objectrunner/api/v1"
)

// TestDrainMidFlight exercises the full shutdown sequence against a live
// in-flight wrap: Drain refuses new work, Abort cancels the in-flight
// inference through its request context, Close spills the cache — and
// no goroutines outlive the server (the -race run of this test is the
// acceptance check for leak-free drain).
func TestDrainMidFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("slow in-flight wrap")
	}
	before := runtime.NumGoroutine()

	dir := t.TempDir()
	srv := New(Config{Store: objectrunner.StoreConfig{SpillDir: dir}})
	ts := httptest.NewServer(srv.Handler())

	// A cached wrapper that the drain must spill.
	wrapConcerts(t, ts.URL, "concerts")

	// A wrap slow enough to still be running when the drain starts.
	pages := make([]string, 0, 40*3)
	for i := 0; i < 40; i++ {
		pages = append(pages, concertPages()...)
	}
	slowDone := make(chan int, 1)
	go func() {
		resp := postJSON(t, ts.URL+"/v1/wrap", apiv1.WrapRequest{
			Source: "slow", SOD: concertSOD, Pages: pages, Dictionaries: concertDicts(),
		})
		resp.Body.Close()
		slowDone <- resp.StatusCode
	}()
	waitFor(t, time.Second, func() bool { return srv.inflight.Load() >= 1 })

	srv.Drain()
	srv.Abort()
	select {
	case status := <-slowDone:
		if status != http.StatusServiceUnavailable {
			t.Errorf("aborted wrap status = %d, want 503", status)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight wrap did not return after Abort")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	ts.Close()

	// The concerts wrapper reached the spill directory.
	spills, err := filepath.Glob(filepath.Join(dir, "*.wrapper"))
	if err != nil || len(spills) == 0 {
		t.Errorf("no wrapper spilled to %s (err %v)", dir, err)
	}

	// Every request goroutine (and the aborted inference's workers) must
	// be gone; allow slack for runtime background goroutines.
	waitFor(t, 5*time.Second, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+3
	})
}

// TestSpillServesAfterRestart closes one server mid-life and verifies a
// fresh server over the same spill directory serves the re-registered
// source from disk, without re-inference.
func TestSpillServesAfterRestart(t *testing.T) {
	dir := t.TempDir()
	srv1 := New(Config{Store: objectrunner.StoreConfig{SpillDir: dir}})
	ts1 := httptest.NewServer(srv1.Handler())
	wrapConcerts(t, ts1.URL, "concerts")
	if err := srv1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	srv2 := New(Config{Store: objectrunner.StoreConfig{SpillDir: dir}})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	wrapConcerts(t, ts2.URL, "concerts")
	st := srv2.lookup("concerts").svc.Stats()
	if st.DiskHits != 1 || st.Misses != 0 {
		t.Errorf("stats after restart = %+v, want a pure disk hit", st)
	}
}

// TestSaturationReturns429 drives a real request into a deliberately
// full semaphore: the server answers 429 + Retry-After through the full
// HTTP stack instead of queuing.
func TestSaturationReturns429(t *testing.T) {
	srv := New(Config{MaxInflight: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	wrapConcerts(t, ts.URL, "concerts")

	// Fill the semaphore as if MaxInflight requests were running.
	srv.sem <- struct{}{}
	srv.sem <- struct{}{}
	resp := postJSON(t, ts.URL+"/v1/extract", apiv1.ExtractRequest{Source: "concerts", Pages: concertPages()})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	resp.Body.Close()

	// Health and metrics stay reachable under saturation.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("healthz under saturation = %d", hresp.StatusCode)
	}
	hresp.Body.Close()

	// Free one slot: requests flow again.
	<-srv.sem
	resp = postJSON(t, ts.URL+"/v1/extract", apiv1.ExtractRequest{Source: "concerts", Pages: concertPages()})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status after slot freed = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
	<-srv.sem
}

func waitFor(t testing.TB, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("condition not reached within %v", timeout)
}
