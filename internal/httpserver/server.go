// Package httpserver is the network tier of ObjectRunner: a JSON/HTTP
// front-end over the objectrunner.Service serving facade, designed for
// a long-running extraction daemon (cmd/objectrunnerd).
//
// Endpoints:
//
//	POST   /v1/wrap           register a source (SOD + dictionaries) and
//	                          infer (or reuse) its wrapper from sample pages
//	POST   /v1/extract        batch-extract pages against a registered
//	                          source's cached wrapper (wrap-on-miss)
//	GET    /v1/sources        list registered sources with cache stats
//	DELETE /v1/sources/{key}  invalidate a source's wrapper and registration
//	GET    /healthz           readiness (503 while draining)
//	GET    /metrics           counters, gauges (uptime, build info) and
//	                          quantile-bearing histograms, per-source
//	                          labeled; JSON by default, Prometheus text
//	                          exposition under `Accept: text/plain`
//	GET    /v1/debug/traces   the request flight recorder: the N most
//	                          recent and N slowest requests
//	GET    /debug/pprof/...   net/http/pprof, only with Config.EnablePprof
//
// The robustness layer is the point, not the routing: per-request
// timeouts threaded into the context-aware extraction APIs, a
// semaphore-based concurrency limit that answers 429 + Retry-After when
// full (backpressure instead of collapse), request-size limits, a
// per-request trace id spanned through internal/obs, panic recovery
// that converts to a 500 without killing the process, and a graceful
// drain sequence (Drain → Abort → Close) that stops accepting work,
// cancels in-flight wraps and extracts through their contexts, and
// spills the wrapper caches to disk before exit.
//
// The wire types live in api/v1 — the single shared contract between
// this server, the typed client (api/v1/client), cmd/loadgen and the
// e2e tests. In multi-node mode (Config.Cluster) the server forwards
// requests for peer-owned sources to their owner; see cluster.go.
package httpserver

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"objectrunner"
	apiv1 "objectrunner/api/v1"
	"objectrunner/internal/cluster"
	"objectrunner/internal/obs"
)

// Config tunes the server. The zero value is completed with defaults.
type Config struct {
	// MaxInflight bounds the concurrent /v1/wrap + /v1/extract requests;
	// excess requests are refused with 429 and a Retry-After header
	// rather than queued. Default 32.
	MaxInflight int
	// RequestTimeout is the per-request deadline threaded into wrapper
	// inference and extraction; 0 means no limit.
	RequestTimeout time.Duration
	// MaxBodyBytes bounds a request body. Default 32 MiB.
	MaxBodyBytes int64
	// Workers is the per-request pipeline worker count (0 = one per CPU).
	Workers int
	// Store configures every registered source's wrapper cache; set
	// Store.SpillDir to persist wrappers across restarts (the drain
	// sequence spills there on shutdown).
	Store objectrunner.StoreConfig
	// Obs receives the server's spans and counters and backs /metrics.
	// Defaults to a fresh metrics-only observer.
	Obs *obs.Observer
	// FlightRecorderSize is the per-kind capacity of the request flight
	// recorder behind GET /v1/debug/traces (N most recent + N slowest
	// requests). Default 64.
	FlightRecorderSize int
	// EnablePprof mounts the net/http/pprof handlers under
	// /debug/pprof/. Off by default: the profiling endpoints expose
	// process internals and cost CPU while sampling, so they are opt-in.
	EnablePprof bool
	// Cluster enables multi-node mode: the consistent-hash ring decides
	// which node owns each source key, and requests for peer-owned
	// sources are transparently forwarded to the owner (see cluster.go).
	// nil means single-node — no forwarding, no node labels.
	Cluster *cluster.Cluster
	// Forward tunes the peer-forwarding client (retries, backoff, HTTP
	// client); its Obs field is ignored — the server's observer is used.
	Forward cluster.ForwarderConfig
}

func (c *Config) normalize() {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 32
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.Obs == nil {
		c.Obs = obs.New()
	}
	if c.FlightRecorderSize <= 0 {
		c.FlightRecorderSize = 64
	}
}

// source is one registered extraction source: its SOD (plus
// dictionaries, canonicalized into spec) and the serving facade holding
// its cached wrapper.
type source struct {
	spec string // canonical SOD + dictionary fingerprint
	sod  string
	svc  *objectrunner.Service
	// forwardedHits counts requests for this source that arrived via
	// peer forwarding (X-Forwarded-By set) — the ring's share of this
	// node's traffic for the source, surfaced in GET /v1/sources.
	forwardedHits atomic.Int64
}

// Server is the HTTP extraction daemon's core. Create with New, expose
// via Handler, and shut down with Drain/Abort/Close (or Shutdown for
// the whole sequence).
type Server struct {
	cfg Config
	obs *obs.Observer

	// baseCtx spans the server's lifetime; Abort cancels it, which
	// cancels every in-flight request context derived from it.
	baseCtx  context.Context
	abort    context.CancelFunc
	draining atomic.Bool

	sem      chan struct{}
	inflight atomic.Int64
	reqID    atomic.Int64

	flight *obs.FlightRecorder
	start  time.Time

	// Multi-node mode (nil / empty in single-node mode).
	cluster *cluster.Cluster
	fwd     *cluster.Forwarder
	nodeID  string

	handler http.Handler

	mu      sync.Mutex
	sources map[string]*source
}

// New builds a server. It performs no I/O; attach Handler to an
// http.Server (or httptest) to serve.
func New(cfg Config) *Server {
	cfg.normalize()
	s := &Server{
		cfg:     cfg,
		obs:     cfg.Obs,
		sem:     make(chan struct{}, cfg.MaxInflight),
		flight:  obs.NewFlightRecorder(cfg.FlightRecorderSize),
		start:   time.Now(),
		cluster: cfg.Cluster,
		sources: make(map[string]*source),
	}
	if cfg.Cluster != nil {
		s.nodeID = cfg.Cluster.Self().ID
		fcfg := cfg.Forward
		fcfg.Obs = s.obs
		s.fwd = cluster.NewForwarder(s.nodeID, fcfg)
	}
	s.baseCtx, s.abort = context.WithCancel(context.Background())
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/wrap", s.limited(s.handleWrap))
	mux.HandleFunc("POST /v1/extract", s.limited(s.handleExtract))
	mux.HandleFunc("GET /v1/sources", s.handleSources)
	mux.HandleFunc("DELETE /v1/sources/{key...}", s.handleDeleteSource)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/debug/traces", s.handleTraces)
	if cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("POST /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	s.handler = s.instrument(mux)
	return s
}

// Handler returns the server's routed and instrumented handler.
func (s *Server) Handler() http.Handler { return s.handler }

// Drain flips the server into shutdown mode: /healthz answers 503 so
// load balancers stop routing here, and new API requests are refused
// with 503. In-flight requests keep running until Abort.
func (s *Server) Drain() { s.draining.Store(true) }

// Abort cancels every in-flight wrap and extract through the request
// contexts; handlers answer 503 promptly. Safe to call more than once.
func (s *Server) Abort() { s.abort() }

// Close drains every registered source's wrapper cache: in-flight
// builds are waited for (bounded by ctx) and cached wrappers are
// spilled to Store.SpillDir. It returns the first error.
func (s *Server) Close(ctx context.Context) error {
	s.mu.Lock()
	svcs := make([]*objectrunner.Service, 0, len(s.sources))
	for _, src := range s.sources {
		svcs = append(svcs, src.svc)
	}
	s.mu.Unlock()
	var first error
	for _, svc := range svcs {
		if err := svc.Close(ctx); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Shutdown runs the full drain sequence: stop accepting (Drain), cancel
// in-flight work (Abort), spill the caches (Close). The caller is
// responsible for http.Server.Shutdown around it — see cmd/objectrunnerd.
func (s *Server) Shutdown(ctx context.Context) error {
	s.Drain()
	s.Abort()
	return s.Close(ctx)
}

// The /v1 wire types live in api/v1 (the one shared contract between
// server, client, loadgen and the e2e tests); only the observability
// payloads below — which expose internal types like obs.HistView — stay
// private to the server.

// statsWire converts the store's accounting into its api/v1 view.
func statsWire(st objectrunner.StoreStats) apiv1.SourceStats {
	return apiv1.SourceStats{
		Len:             st.Len,
		Hits:            st.Hits,
		DiskHits:        st.DiskHits,
		Misses:          st.Misses,
		Shared:          st.Shared,
		EvictionsLRU:    st.EvictionsLRU,
		EvictionsTTL:    st.EvictionsTTL,
		EvictionsHealth: st.EvictionsHealth,
	}
}

type metricsResponse struct {
	Counters      map[string]int64                   `json:"counters"`
	Gauges        map[string]float64                 `json:"gauges"`
	Histograms    map[string]obs.HistView            `json:"histograms"`
	Sources       map[string]objectrunner.StoreStats `json:"sources"`
	Inflight      int64                              `json:"inflight"`
	Draining      bool                               `json:"draining"`
	UptimeSeconds float64                            `json:"uptime_seconds"`
	Build         buildJSON                          `json:"build"`
}

type buildJSON struct {
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision"`
}

type traceJSON struct {
	ID     string            `json:"id"`
	Name   string            `json:"name"`
	Start  time.Time         `json:"start"`
	DurMs  float64           `json:"dur_ms"`
	Status int               `json:"status"`
	Labels map[string]string `json:"labels,omitempty"`
	Error  string            `json:"error,omitempty"`
}

// specOf canonicalizes a registration: SOD text plus the dictionaries in
// sorted class order. Re-registering a source with an identical spec
// reuses its cached wrapper; a changed spec rebuilds the extractor and
// invalidates the stale wrapper.
func specOf(req *apiv1.WrapRequest) string {
	var sb strings.Builder
	sb.WriteString(req.SOD)
	classes := make([]string, 0, len(req.Dictionaries))
	for class := range req.Dictionaries {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	for _, class := range classes {
		fmt.Fprintf(&sb, "\x00%s", class)
		for _, e := range req.Dictionaries[class] {
			fmt.Fprintf(&sb, "\x01%s\x02%g", e.Value, e.Confidence)
		}
	}
	return sb.String()
}

// register resolves the wrap request to a registered source, building a
// fresh extractor + service when the source is new or its spec changed.
func (s *Server) register(req *apiv1.WrapRequest) (*source, error) {
	spec := specOf(req)
	s.mu.Lock()
	defer s.mu.Unlock()
	if src, ok := s.sources[req.Source]; ok && src.spec == spec {
		return src, nil
	}
	opts := []objectrunner.Option{}
	classes := make([]string, 0, len(req.Dictionaries))
	for class := range req.Dictionaries {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	for _, class := range classes {
		entries := make([]objectrunner.Entry, 0, len(req.Dictionaries[class]))
		for _, e := range req.Dictionaries[class] {
			conf := e.Confidence
			if conf == 0 {
				conf = 0.9
			}
			entries = append(entries, objectrunner.Entry{Value: e.Value, Confidence: conf})
		}
		opts = append(opts, objectrunner.WithDictionary(class, entries))
	}
	cfg := objectrunner.DefaultConfig()
	cfg.Workers = s.cfg.Workers
	opts = append(opts, objectrunner.WithConfig(cfg), objectrunner.WithObserver(s.obs))
	ex, err := objectrunner.New(req.SOD, opts...)
	if err != nil {
		return nil, err
	}
	if old, ok := s.sources[req.Source]; ok {
		// The spec changed: the cached wrapper (memory and disk) was
		// inferred under the old SOD/dictionaries and must not be served.
		old.svc.Invalidate(req.Source)
		s.obs.Count("http.sources.replaced", 1)
	}
	src := &source{spec: spec, sod: req.SOD, svc: objectrunner.NewService(ex, s.cfg.Store)}
	s.sources[req.Source] = src
	s.obs.Count("http.sources.registered", 1)
	return src, nil
}

func (s *Server) lookup(key string) *source {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sources[key]
}

func (s *Server) handleWrap(w http.ResponseWriter, r *http.Request) {
	var req apiv1.WrapRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Source == "" || req.SOD == "" || len(req.Pages) == 0 {
		s.errorf(w, http.StatusBadRequest, "source, sod and pages are required")
		return
	}
	// Wrap is always locally servable on fallback: the payload carries
	// the full registration (SOD, dictionaries, pages).
	if handled, _ := s.routeToOwner(w, r, req.Source, "/v1/wrap", &req); handled {
		return
	}
	src, err := s.register(&req)
	if err != nil {
		s.errorf(w, http.StatusBadRequest, "bad source description: %v", err)
		return
	}
	s.countForwarded(r, src)
	wr, err := src.svc.Wrapper(r.Context(), req.Source, req.Pages)
	if errors.Is(err, objectrunner.ErrAborted) {
		writeJSON(w, http.StatusUnprocessableEntity, apiv1.Error{
			Error:  fmt.Sprintf("source discarded: %v", err),
			Report: wr.Report(),
		})
		return
	}
	if err != nil {
		s.serveError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, apiv1.WrapResponse{
		Source:      req.Source,
		Pages:       len(req.Pages),
		Score:       wr.Score(),
		Support:     wr.Support(),
		Description: wr.Describe(),
		Node:        s.nodeID,
	})
}

func (s *Server) handleExtract(w http.ResponseWriter, r *http.Request) {
	var req apiv1.ExtractRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Source == "" || len(req.Pages) == 0 {
		s.errorf(w, http.StatusBadRequest, "source and pages are required")
		return
	}
	handled, fallback := s.routeToOwner(w, r, req.Source, "/v1/extract", &req)
	if handled {
		return
	}
	src := s.lookup(req.Source)
	if src == nil {
		if fallback {
			// The owner is down and this node has no registration to
			// serve from: backpressure, don't 404 a source that exists.
			s.errorf(w, http.StatusServiceUnavailable,
				"owner of %q is unreachable and the source is not registered locally", req.Source)
			return
		}
		s.errorf(w, http.StatusNotFound, "unknown source %q: register it with POST /v1/wrap", req.Source)
		return
	}
	s.countForwarded(r, src)
	objs, err := src.svc.ServeExtract(r.Context(), req.Source, req.Pages)
	if errors.Is(err, objectrunner.ErrAborted) {
		writeJSON(w, http.StatusUnprocessableEntity, apiv1.Error{
			Error: fmt.Sprintf("source discarded: %v", err),
		})
		return
	}
	if err != nil {
		s.serveError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, apiv1.ExtractResponse{
		Source:  req.Source,
		Pages:   len(req.Pages),
		Count:   len(objs),
		Objects: objectrunner.FlattenObjects(objs),
		Node:    s.nodeID,
	})
}

func (s *Server) handleSources(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	keys := make([]string, 0, len(s.sources))
	for k := range s.sources {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	infos := make([]apiv1.SourceInfo, 0, len(keys))
	for _, k := range keys {
		src := s.sources[k]
		info := apiv1.SourceInfo{
			Source:        k,
			SOD:           src.sod,
			ForwardedHits: src.forwardedHits.Load(),
			Stats:         statsWire(src.svc.Stats()),
		}
		if s.cluster != nil {
			info.Owner = s.cluster.Owner(k).ID
		}
		infos = append(infos, info)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, apiv1.SourcesResponse{Node: s.nodeID, Sources: infos})
}

func (s *Server) handleDeleteSource(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	s.mu.Lock()
	src, ok := s.sources[key]
	if ok {
		delete(s.sources, key)
	}
	s.mu.Unlock()
	if ok {
		src.svc.Invalidate(key)
		s.obs.Count("http.sources.deleted", 1)
	}
	// In a cluster the invalidation fans out to every peer (the owner
	// holds the authoritative wrapper, but fallback serves may have
	// warmed copies elsewhere); a forwarded delete stays local.
	peersDeleted := s.fanoutDelete(r, key)
	if !ok && !peersDeleted {
		s.errorf(w, http.StatusNotFound, "unknown source %q", key)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable,
			apiv1.HealthResponse{Status: "draining", Node: s.nodeID})
		return
	}
	s.mu.Lock()
	n := len(s.sources)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, apiv1.HealthResponse{
		Status:   "ok",
		Sources:  n,
		Inflight: s.inflight.Load(),
		Node:     s.nodeID,
	})
}

// wantsPrometheus reports whether the Accept header asks for the text
// exposition format. JSON stays the default (*/*, no header, or
// application/json), so existing scrapers keep working; Prometheus
// itself and `curl -H 'Accept: text/plain'` get the exposition format.
// The first recognized media type in listed order wins.
func wantsPrometheus(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt := strings.TrimSpace(strings.SplitN(part, ";", 2)[0])
		switch mt {
		case "application/json":
			return false
		case "text/plain", "application/openmetrics-text":
			return true
		}
	}
	return false
}

// snapshot assembles the full metrics view: the observer's counters and
// histograms (per-source serve and store series included), plus
// process-level gauges — uptime, build info, inflight/draining, and the
// per-source cache occupancy.
func (s *Server) snapshot() (obs.Snapshot, map[string]objectrunner.StoreStats) {
	snap := s.obs.Snapshot()
	goVersion, revision := buildInfo()
	snap.SetGauge("uptime_seconds", time.Since(s.start).Seconds())
	snap.SetGauge("objectrunner_build_info", 1,
		obs.L("go_version", goVersion), obs.L("revision", revision))
	snap.SetGauge("http_inflight", float64(s.inflight.Load()))
	draining := 0.0
	if s.draining.Load() {
		draining = 1
	}
	snap.SetGauge("http_draining", draining)
	s.mu.Lock()
	stats := make(map[string]objectrunner.StoreStats, len(s.sources))
	for k, src := range s.sources {
		st := src.svc.Stats()
		stats[k] = st
		snap.SetGauge("store_wrappers", float64(st.Len), obs.L("source", k))
	}
	s.mu.Unlock()
	return snap, stats
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap, stats := s.snapshot()
	if wantsPrometheus(r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", obs.PromContentType)
		w.WriteHeader(http.StatusOK)
		_ = snap.WritePrometheus(w)
		return
	}
	goVersion, revision := buildInfo()
	writeJSON(w, http.StatusOK, metricsResponse{
		Counters:      snap.Counters,
		Gauges:        snap.Gauges,
		Histograms:    snap.Histograms,
		Sources:       stats,
		Inflight:      s.inflight.Load(),
		Draining:      s.draining.Load(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Build:         buildJSON{GoVersion: goVersion, Revision: revision},
	})
}

// handleTraces serves the flight recorder: the most recent requests
// (newest first) and the slowest since startup (slowest first), each as
// a compact trace record.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	recent, slowest := s.flight.Snapshot()
	writeJSON(w, http.StatusOK, map[string][]traceJSON{
		"recent":  tracesJSON(recent),
		"slowest": tracesJSON(slowest),
	})
}

func tracesJSON(ts []obs.Trace) []traceJSON {
	out := make([]traceJSON, len(ts))
	for i, t := range ts {
		out[i] = traceJSON{
			ID:     t.ID,
			Name:   t.Name,
			Start:  t.Start,
			DurMs:  float64(t.Dur) / float64(time.Millisecond),
			Status: t.Status,
			Labels: t.Labels,
			Error:  t.Err,
		}
	}
	return out
}

// serveError maps a Service error to an HTTP status: deadline → 504,
// cancellation (client gone or server draining) and a closed cache →
// 503, anything else → 500.
func (s *Server) serveError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.errorf(w, http.StatusGatewayTimeout, "deadline exceeded: %v", err)
	case errors.Is(err, objectrunner.ErrClosed), errors.Is(err, context.Canceled):
		s.errorf(w, http.StatusServiceUnavailable, "request canceled: %v", err)
	default:
		s.errorf(w, http.StatusInternalServerError, "%v", err)
	}
}
