package httpserver

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"objectrunner"
	apiv1 "objectrunner/api/v1"
	"objectrunner/internal/cluster"
	"objectrunner/internal/obs"
)

// twoNodes boots a two-node in-process cluster sharing one spill
// directory, with real listeners so the nodes can forward to each other
// over loopback. It returns the servers, their base URLs, and a teardown.
func twoNodes(t *testing.T, spillDir string) (s1, s2 *Server, url1, url2 string, stop func()) {
	t.Helper()
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url1 = "http://" + l1.Addr().String()
	url2 = "http://" + l2.Addr().String()

	c1, err := cluster.New("n1", []cluster.Node{{ID: "n1"}, {ID: "n2", URL: url2}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := cluster.New("n2", []cluster.Node{{ID: "n1", URL: url1}, {ID: "n2"}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	fwd := cluster.ForwarderConfig{Retries: 1, Backoff: time.Millisecond,
		Client: &http.Client{Timeout: 30 * time.Second}}
	s1 = New(Config{Cluster: c1, Forward: fwd,
		Store: objectrunner.StoreConfig{SpillDir: spillDir}})
	s2 = New(Config{Cluster: c2, Forward: fwd,
		Store: objectrunner.StoreConfig{SpillDir: spillDir}})

	ts1 := &httptest.Server{Listener: l1, Config: &http.Server{Handler: s1.Handler()}}
	ts2 := &httptest.Server{Listener: l2, Config: &http.Server{Handler: s2.Handler()}}
	ts1.Start()
	ts2.Start()
	return s1, s2, url1, url2, func() { ts1.Close(); ts2.Close() }
}

// ownedBy picks a concert-like source key owned by the wanted node.
func ownedBy(t *testing.T, c *cluster.Cluster, want string) string {
	t.Helper()
	for i := 0; i < 1000; i++ {
		key := "site" + string(rune('a'+i%26)) + "/concerts-" + string(rune('0'+i%10)) + string(rune('0'+i/10%10))
		if c.Owner(key).ID == want {
			return key
		}
	}
	t.Fatal("no key found for node " + want)
	return ""
}

func forwardedPost(t *testing.T, url string, by string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.HeaderForwardedBy, by)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestClusterForwardingByteIdentity is the tentpole e2e: a two-node
// cluster produces byte-identical extraction output no matter which
// node receives the request — forwarded to the owner, or (loop guard)
// forced local on the non-owner.
func TestClusterForwardingByteIdentity(t *testing.T) {
	s1, _, url1, url2, stop := twoNodes(t, t.TempDir())
	defer stop()

	key := ownedBy(t, s1.cluster, "n1")

	// Wrap through the NON-owner: transparently forwarded to n1.
	wr := wrapConcerts(t, url2, key)
	if wr.Node != "n1" {
		t.Fatalf("wrap served by %q, want the owner n1", wr.Node)
	}

	extract := func(base string) apiv1.ExtractResponse {
		resp := postJSON(t, base+"/v1/extract", apiv1.ExtractRequest{Source: key, Pages: concertPages()})
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			t.Fatalf("extract via %s = %d: %s", base, resp.StatusCode, b)
		}
		return decodeBody[apiv1.ExtractResponse](t, resp)
	}

	// Extract via both nodes: n2 forwards, n1 serves locally.
	viaOwner := extract(url1)
	viaPeer := extract(url2)
	if viaOwner.Node != "n1" || viaPeer.Node != "n1" {
		t.Errorf("served by %q and %q, want both n1", viaOwner.Node, viaPeer.Node)
	}

	// Loop guard: a request already marked forwarded is served locally by
	// n2, which registers the source itself (payload is self-contained).
	resp := forwardedPost(t, url2+"/v1/wrap", "n1", apiv1.WrapRequest{
		Source: key, SOD: concertSOD, Pages: concertPages(), Dictionaries: concertDicts(),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded wrap = %d", resp.StatusCode)
	}
	fwr := decodeBody[apiv1.WrapResponse](t, resp)
	if fwr.Node != "n2" {
		t.Fatalf("forwarded wrap served by %q, want n2 (loop guard forces local serve)", fwr.Node)
	}
	resp = forwardedPost(t, url2+"/v1/extract", "n1", apiv1.ExtractRequest{Source: key, Pages: concertPages()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded extract = %d", resp.StatusCode)
	}
	viaGuard := decodeBody[apiv1.ExtractResponse](t, resp)
	if viaGuard.Node != "n2" {
		t.Errorf("forwarded extract served by %q, want n2", viaGuard.Node)
	}

	// Byte-identity across all three serving paths.
	want, err := json.Marshal(viaOwner.Objects)
	if err != nil {
		t.Fatal(err)
	}
	for name, er := range map[string]apiv1.ExtractResponse{"via-peer": viaPeer, "loop-guard": viaGuard} {
		got, err := json.Marshal(er.Objects)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s output differs from owner's:\n got: %s\nwant: %s", name, got, want)
		}
	}

	// The owner's sources listing attributes the forwarded traffic.
	resp, err2 := http.Get(url1 + "/v1/sources")
	if err2 != nil {
		t.Fatal(err2)
	}
	list := decodeBody[apiv1.SourcesResponse](t, resp)
	if list.Node != "n1" || len(list.Sources) != 1 {
		t.Fatalf("sources on n1 = %+v", list)
	}
	if info := list.Sources[0]; info.Owner != "n1" || info.ForwardedHits < 2 {
		t.Errorf("source info = %+v, want owner n1 and >= 2 forwarded hits (wrap + extract)", info)
	}

	// Forwarding counters on the proxying node.
	if got := s1.obs.Counter("cluster.forwarded"); got != 0 {
		t.Errorf("owner n1 counted %d forwards of its own", got)
	}
}

// TestClusterOwnerDownFallback proves the availability story: when the
// owner dies, the surviving node serves the source locally from the
// shared spill directory, byte-identically.
func TestClusterOwnerDownFallback(t *testing.T) {
	spill := t.TempDir()
	s1, s2, url1, url2, stop := twoNodes(t, spill)
	defer stop()

	key := ownedBy(t, s1.cluster, "n1")
	wrapConcerts(t, url2, key) // forwarded to n1, wrapper cached there

	// The reference output, served by the owner while it is alive.
	resp := postJSON(t, url1+"/v1/extract", apiv1.ExtractRequest{Source: key, Pages: concertPages()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("extract via owner = %d", resp.StatusCode)
	}
	want := decodeBody[apiv1.ExtractResponse](t, resp)

	// Kill the owner: spill its cache, drain, stop accepting work.
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// n2 has no registration for the key yet, so a bare extract cannot
	// be served: forwarding fails, fallback finds nothing → 503, not 404.
	resp = postJSON(t, url2+"/v1/extract", apiv1.ExtractRequest{Source: key, Pages: concertPages()})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("extract with owner down and no local registration = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	// A wrap is self-contained: n2 falls back to registering locally and
	// warms the wrapper from the shared spill instead of re-inferring.
	wr2 := wrapConcerts(t, url2, key)
	if wr2.Node != "n2" {
		t.Fatalf("fallback wrap served by %q, want n2", wr2.Node)
	}
	src := s2.lookup(key)
	if src == nil {
		t.Fatal("fallback wrap did not register locally on n2")
	}
	if st := src.svc.Stats(); st.DiskHits != 1 {
		t.Errorf("stats after fallback wrap = %+v, want 1 disk hit (shared spill warm)", st)
	}
	if got := s2.obs.Counter(obs.SeriesKey("cluster.fallback_local", obs.L("owner", "n1"))); got < 1 {
		t.Errorf("cluster.fallback_local{owner=n1} = %d, want >= 1", got)
	}

	// Now extraction works on the survivor and matches the owner's bytes.
	resp = postJSON(t, url2+"/v1/extract", apiv1.ExtractRequest{Source: key, Pages: concertPages()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("extract after fallback wrap = %d", resp.StatusCode)
	}
	got := decodeBody[apiv1.ExtractResponse](t, resp)
	if got.Node != "n2" {
		t.Errorf("fallback extract served by %q, want n2", got.Node)
	}
	wantB, _ := json.Marshal(want.Objects)
	gotB, _ := json.Marshal(got.Objects)
	if !bytes.Equal(gotB, wantB) {
		t.Errorf("fallback output differs from the owner's:\n got: %s\nwant: %s", gotB, wantB)
	}
}

// TestClusterDeleteFansOut checks DELETE /v1/sources/{key} invalidates
// the source on every node, not just the one answering.
func TestClusterDeleteFansOut(t *testing.T) {
	s1, s2, url1, url2, stop := twoNodes(t, t.TempDir())
	defer stop()

	key := ownedBy(t, s1.cluster, "n1")
	wrapConcerts(t, url1, key) // registered on the owner n1
	// Register on n2 too, as a forwarded (loop-guarded) wrap would.
	resp := forwardedPost(t, url2+"/v1/wrap", "n1", apiv1.WrapRequest{
		Source: key, SOD: concertSOD, Pages: concertPages(), Dictionaries: concertDicts(),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wrap on n2 = %d", resp.StatusCode)
	}
	resp.Body.Close()

	req, _ := http.NewRequest(http.MethodDelete, url2+"/v1/sources/"+key, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete = %d, want 204", dresp.StatusCode)
	}
	dresp.Body.Close()

	if s1.lookup(key) != nil || s2.lookup(key) != nil {
		t.Error("delete did not fan out: source still registered on a node")
	}
}
