package httpserver

import (
	"encoding/json"
	"net/http"
	"net/url"
	"strings"

	"objectrunner/internal/cluster"
	"objectrunner/internal/obs"
)

// This file is the server side of multi-node mode: deciding per request
// whether to serve locally or proxy to the ring owner, relaying owner
// responses, and fanning out invalidations. Single-node servers
// (Config.Cluster == nil) never enter any of it.
//
// The routing invariants:
//
//   - A forwarded request (X-Forwarded-By set) is ALWAYS served locally.
//     This is the loop guard: if two nodes briefly disagree on ring
//     membership (mid-rollout config skew), the worst case is one extra
//     hop, never a forwarding cycle.
//   - A locally-owned request is served locally.
//   - A peer-owned request is proxied to its owner with bounded retry;
//     if the owner stays unreachable (or answers 502/503/504), the node
//     falls back to serving locally — any node can warm any wrapper from
//     the shared spill directory — and only answers 503 when it cannot
//     (an extract for a source it has no registration for).

// routeToOwner applies the routing decision for a request on the source
// key. handled means the response was already written (the owner's reply
// was relayed, or an error was sent); fallback means the owner could not
// serve and the caller should serve locally as best it can.
func (s *Server) routeToOwner(w http.ResponseWriter, r *http.Request, key, path string, req any) (handled, fallback bool) {
	if s.cluster == nil {
		return false, false
	}
	if r.Header.Get(cluster.HeaderForwardedBy) != "" {
		// Loop guard: a forwarded request terminates here.
		return false, false
	}
	if s.cluster.IsLocal(key) {
		return false, false
	}
	owner := s.cluster.Owner(key)
	body, err := json.Marshal(req)
	if err != nil {
		s.errorf(w, http.StatusInternalServerError, "re-encode forwarded request: %v", err)
		return true, false
	}
	// The instrument middleware already echoed the request's trace id
	// into the response headers; propagate the same id to the owner.
	res, err := s.fwd.Forward(r.Context(), owner, http.MethodPost, path, body, w.Header().Get("X-Trace-Id"))
	if err != nil || res.OwnerDown() {
		s.obs.CountL("cluster.fallback_local", 1, obs.L("owner", owner.ID))
		return false, true
	}
	relay(w, res)
	return true, false
}

// countForwarded attributes a request that arrived via peer forwarding
// to its source (surfaced as forwarded_hits in GET /v1/sources).
func (s *Server) countForwarded(r *http.Request, src *source) {
	if s.cluster != nil && r.Header.Get(cluster.HeaderForwardedBy) != "" {
		src.forwardedHits.Add(1)
	}
}

// relay writes an owner's response to the client verbatim.
func relay(w http.ResponseWriter, res *cluster.Result) {
	if res.ContentType != "" {
		w.Header().Set("Content-Type", res.ContentType)
	}
	w.WriteHeader(res.Status)
	_, _ = w.Write(res.Body)
}

// fanoutDelete broadcasts a source invalidation to every peer. It
// reports whether any peer deleted a registration. A forwarded delete
// stays local (the originating node is already doing the broadcast),
// as does single-node mode.
func (s *Server) fanoutDelete(r *http.Request, key string) bool {
	if s.cluster == nil || r.Header.Get(cluster.HeaderForwardedBy) != "" {
		return false
	}
	path := "/v1/sources/" + escapeKeyPath(key)
	trace := r.Header.Get(cluster.HeaderTraceID)
	deleted := false
	for _, peer := range s.cluster.Peers() {
		res, err := s.fwd.Forward(r.Context(), peer, http.MethodDelete, path, nil, trace)
		if err != nil {
			continue
		}
		if res.Status == http.StatusNoContent {
			deleted = true
		}
	}
	return deleted
}

// escapeKeyPath escapes a source key for use in a /v1/sources/{key...}
// path, preserving the slashes that are part of the key itself.
func escapeKeyPath(key string) string {
	segs := strings.Split(key, "/")
	for i, s := range segs {
		segs[i] = url.PathEscape(s)
	}
	return strings.Join(segs, "/")
}
