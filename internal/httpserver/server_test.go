package httpserver

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"objectrunner"
	apiv1 "objectrunner/api/v1"
	"objectrunner/internal/obs"
)

// The paper's running example (Fig. 3) as wire-level fixtures.
const concertSOD = `tuple {
	artist: instanceOf(Artist)
	date: date
	location: tuple { theater: instanceOf(Theater), address: address ? }
}`

func concertPages() []string {
	page := func(body string) string { return "<html><body>" + body + "</body></html>" }
	return []string{
		page(`<li><div>Metallica</div><div>Monday May 11, 2010 8:00pm</div><div><span><a>Madison Square Garden</a></span><span>237 West 42nd Street</span><span>New York City</span><span>New York</span><span>10036</span></div></li>`),
		page(`<li><div>Madonna</div><div>Saturday May 29, 2010 7:00pm</div><div><span><a>The Town Hall</a></span><span>131 W 55th Street</span><span>New York City</span><span>New York</span><span>10019</span></div></li><li><div>Muse</div><div>Friday June 19, 2010 7:00pm</div><div><span><a>B.B King Blues and Grill</a></span><span>4 Penn Plaza</span><span>New York City</span><span>New York</span><span>10001</span></div></li>`),
		page(`<li><div>Coldplay</div><div>Saturday August 8, 2010 8:00pm</div><div><span><a>Bowery Ballroom</a></span><span>6 Delancey Street</span><span>New York City</span><span>New York</span><span>10002</span></div></li>`),
	}
}

func concertDicts() map[string][]apiv1.Entry {
	return map[string][]apiv1.Entry{
		"Artist": {
			{Value: "Metallica", Confidence: 0.9}, {Value: "Madonna", Confidence: 0.95},
			{Value: "Muse", Confidence: 0.85}, {Value: "Coldplay", Confidence: 0.9},
		},
		"Theater": {
			{Value: "Madison Square Garden", Confidence: 0.9}, {Value: "The Town Hall", Confidence: 0.8},
			{Value: "B.B King Blues and Grill", Confidence: 0.75}, {Value: "Bowery Ballroom", Confidence: 0.85},
		},
	}
}

// concertService builds the library-level twin of a wrap registration,
// for output-identity comparisons.
func concertService(t testing.TB) *objectrunner.Service {
	t.Helper()
	var opts []objectrunner.Option
	for _, class := range []string{"Artist", "Theater"} {
		var entries []objectrunner.Entry
		for _, e := range concertDicts()[class] {
			entries = append(entries, objectrunner.Entry{Value: e.Value, Confidence: e.Confidence})
		}
		opts = append(opts, objectrunner.WithDictionary(class, entries))
	}
	ex, err := objectrunner.New(concertSOD, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return objectrunner.NewService(ex, objectrunner.StoreConfig{})
}

func postJSON(t testing.TB, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t testing.TB, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func wrapConcerts(t testing.TB, baseURL, source string) apiv1.WrapResponse {
	t.Helper()
	resp := postJSON(t, baseURL+"/v1/wrap", apiv1.WrapRequest{
		Source: source, SOD: concertSOD, Pages: concertPages(), Dictionaries: concertDicts(),
	})
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("wrap status = %d: %s", resp.StatusCode, b)
	}
	return decodeBody[apiv1.WrapResponse](t, resp)
}

func TestWrapExtractRoundTrip(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	wr := wrapConcerts(t, ts.URL, "concerts")
	if wr.Score <= 0 || wr.Pages != 3 {
		t.Errorf("wrap response = %+v", wr)
	}

	resp := postJSON(t, ts.URL+"/v1/extract", apiv1.ExtractRequest{Source: "concerts", Pages: concertPages()})
	if resp.Header.Get("X-Trace-Id") == "" {
		t.Error("missing X-Trace-Id header")
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("extract status = %d", resp.StatusCode)
	}
	er := decodeBody[apiv1.ExtractResponse](t, resp)
	if er.Count != 4 {
		t.Fatalf("extracted %d objects, want 4", er.Count)
	}

	// The HTTP response must be identical to library-level ServeExtract.
	svc := concertService(t)
	objs, err := svc.ServeExtract(context.Background(), "concerts", concertPages())
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(objectrunner.FlattenObjects(objs))
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(er.Objects)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("HTTP output differs from ServeExtract:\n got: %s\nwant: %s", got, want)
	}
}

func TestWrapReuseAndReplace(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	wrapConcerts(t, ts.URL, "concerts")
	wrapConcerts(t, ts.URL, "concerts") // identical spec: reuse, cache hit
	src := srv.lookup("concerts")
	if st := src.svc.Stats(); st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats after re-wrap = %+v, want 1 miss + 1 hit", st)
	}

	// A changed spec (extra dictionary entry) replaces the registration
	// and re-infers rather than serving the stale wrapper.
	dicts := concertDicts()
	dicts["Artist"] = append(dicts["Artist"], apiv1.Entry{Value: "The Strokes", Confidence: 0.9})
	resp := postJSON(t, ts.URL+"/v1/wrap", apiv1.WrapRequest{
		Source: "concerts", SOD: concertSOD, Pages: concertPages(), Dictionaries: dicts,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-wrap status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	if src2 := srv.lookup("concerts"); src2 == src {
		t.Error("changed spec did not replace the registration")
	}
}

func TestExtractUnknownSource(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp := postJSON(t, ts.URL+"/v1/extract", apiv1.ExtractRequest{Source: "nope", Pages: concertPages()})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
	er := decodeBody[apiv1.Error](t, resp)
	if !strings.Contains(er.Error, "nope") {
		t.Errorf("error = %q, want the source key named", er.Error)
	}
}

func TestWrapValidation(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for name, tc := range map[string]struct {
		body   string
		status int
	}{
		"bad json":       {`{"source": `, http.StatusBadRequest},
		"missing fields": {`{"source": "x"}`, http.StatusBadRequest},
		"bad sod":        {`{"source": "x", "sod": "tuple {", "pages": ["<html></html>"]}`, http.StatusBadRequest},
	} {
		resp, err := http.Post(ts.URL+"/v1/wrap", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d, want %d", name, resp.StatusCode, tc.status)
		}
		resp.Body.Close()
	}
}

func TestWrapAbortedSourceIs422(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp := postJSON(t, ts.URL+"/v1/wrap", apiv1.WrapRequest{
		Source: "about", SOD: concertSOD, Dictionaries: concertDicts(),
		Pages: []string{
			"<html><body><p>about our company</p></body></html>",
			"<html><body><p>terms of service</p></body></html>",
		},
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422", resp.StatusCode)
	}
	er := decodeBody[apiv1.Error](t, resp)
	if er.Report == "" {
		t.Error("422 response carries no inference report")
	}
}

func TestBodyLimit(t *testing.T) {
	srv := New(Config{MaxBodyBytes: 256})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp := postJSON(t, ts.URL+"/v1/wrap", apiv1.WrapRequest{
		Source: "concerts", SOD: concertSOD, Pages: concertPages(),
	})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %d, want 413", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestBackpressure429(t *testing.T) {
	srv := New(Config{MaxInflight: 1})
	entered := make(chan struct{})
	release := make(chan struct{})
	blocked := srv.limited(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		w.WriteHeader(http.StatusOK)
	})

	first := httptest.NewRecorder()
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		blocked(first, httptest.NewRequest("POST", "/v1/extract", nil))
	}()
	<-entered

	// The semaphore is full: the next request is refused immediately.
	second := httptest.NewRecorder()
	srv.limited(func(w http.ResponseWriter, r *http.Request) {
		t.Error("handler ran past a full semaphore")
	})(second, httptest.NewRequest("POST", "/v1/extract", nil))
	if second.Code != http.StatusTooManyRequests {
		t.Errorf("status = %d, want 429", second.Code)
	}
	if second.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	close(release)
	<-firstDone
	if first.Code != http.StatusOK {
		t.Errorf("first request status = %d", first.Code)
	}
	// The slot was released: the next request goes through.
	third := httptest.NewRecorder()
	srv.limited(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})(third, httptest.NewRequest("POST", "/v1/extract", nil))
	if third.Code != http.StatusOK {
		t.Errorf("post-release status = %d, want 200", third.Code)
	}
	if got := srv.obs.Counter("http.throttled"); got != 1 {
		t.Errorf("http.throttled = %d, want 1", got)
	}
}

func TestDrainRefusesNewWork(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	wrapConcerts(t, ts.URL, "concerts")

	srv.Drain()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz status = %d, want 503 while draining", resp.StatusCode)
	}
	resp.Body.Close()
	resp = postJSON(t, ts.URL+"/v1/extract", apiv1.ExtractRequest{Source: "concerts", Pages: concertPages()})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("extract status = %d, want 503 while draining", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestPanicRecovery(t *testing.T) {
	srv := New(Config{})
	h := srv.instrument(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/sources", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", rec.Code)
	}
	if got := srv.obs.Counter("http.panics"); got != 1 {
		t.Errorf("http.panics = %d, want 1", got)
	}
}

func TestRequestTimeout(t *testing.T) {
	srv := New(Config{RequestTimeout: time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// A page set large enough that inference cannot finish in 1ms.
	pages := make([]string, 0, 40*3)
	for i := 0; i < 40; i++ {
		pages = append(pages, concertPages()...)
	}
	resp := postJSON(t, ts.URL+"/v1/wrap", apiv1.WrapRequest{
		Source: "concerts", SOD: concertSOD, Pages: pages, Dictionaries: concertDicts(),
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("status = %d, want 504", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestDeleteSource(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	wrapConcerts(t, ts.URL, "site/concerts")

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sources/site/concerts", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status = %d, want 204", resp.StatusCode)
	}
	resp.Body.Close()

	resp = postJSON(t, ts.URL+"/v1/extract", apiv1.ExtractRequest{Source: "site/concerts", Pages: concertPages()})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("extract after delete = %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/sources/site/concerts", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("double delete = %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestSourcesAndMetrics(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	wrapConcerts(t, ts.URL, "concerts")
	resp := postJSON(t, ts.URL+"/v1/extract", apiv1.ExtractRequest{Source: "concerts", Pages: concertPages()})
	resp.Body.Close()

	resp, err := http.Get(ts.URL + "/v1/sources")
	if err != nil {
		t.Fatal(err)
	}
	list := decodeBody[struct {
		Sources []apiv1.SourceInfo `json:"sources"`
	}](t, resp)
	if len(list.Sources) != 1 || list.Sources[0].Source != "concerts" {
		t.Fatalf("sources = %+v", list.Sources)
	}
	if list.Sources[0].Stats.Misses != 1 || list.Sources[0].Stats.Hits != 1 {
		t.Errorf("source stats = %+v, want 1 miss (wrap) + 1 hit (extract)", list.Sources[0].Stats)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	m := decodeBody[metricsResponse](t, resp)
	if m.Counters["http.requests"] < 3 {
		t.Errorf("http.requests = %d, want >= 3", m.Counters["http.requests"])
	}
	if m.Counters["http.status.2xx"] == 0 {
		t.Error("no 2xx responses counted")
	}
	if _, ok := m.Histograms["span.http.request"]; !ok {
		keys := make([]string, 0, len(m.Histograms))
		for k := range m.Histograms {
			keys = append(keys, k)
		}
		t.Errorf("no http.request histogram; have %v", keys)
	}
	if st, ok := m.Sources["concerts"]; !ok || st.Len != 1 {
		t.Errorf("metrics sources = %+v", m.Sources)
	}
	if m.Counters[obs.SeriesKey("store.misses", obs.L("source", "concerts"))] == 0 {
		t.Error("store counters not flowing through the shared observer")
	}
	if m.Counters[obs.SeriesKey("serve.pages", obs.L("source", "concerts"))] == 0 {
		t.Error("per-source serve counters not flowing through the shared observer")
	}
	if m.UptimeSeconds <= 0 {
		t.Errorf("uptime_seconds = %v, want > 0", m.UptimeSeconds)
	}
	if m.Build.GoVersion == "" || m.Build.Revision == "" {
		t.Errorf("build info = %+v, want go version and revision", m.Build)
	}
}

func TestHealthz(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	h := decodeBody[map[string]any](t, resp)
	if h["status"] != "ok" {
		t.Errorf("healthz = %v", h)
	}
}
