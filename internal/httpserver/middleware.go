package httpserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"objectrunner/internal/obs"
)

// statusWriter records the status code a handler wrote, for the request
// span and the per-class status counters.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument is the outer middleware on every route: a per-request
// trace id (echoed as X-Trace-Id and spanned through internal/obs),
// panic recovery into a 500, the request body size limit, and the
// request context merged with the server lifetime — Abort cancels every
// request derived this way, which is how the drain sequence stops
// in-flight wraps and extracts.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		trace := fmt.Sprintf("req-%06d", s.reqID.Add(1))
		w.Header().Set("X-Trace-Id", trace)
		sw := &statusWriter{ResponseWriter: w}
		sp := s.obs.Span("http.request",
			obs.A("method", r.Method), obs.A("path", r.URL.Path), obs.A("trace", trace))
		s.obs.Count("http.requests", 1)
		defer func() {
			if p := recover(); p != nil {
				s.obs.Count("http.panics", 1)
				sp.Event("http.panic", obs.A("value", fmt.Sprint(p)))
				if sw.status == 0 {
					writeJSON(sw, http.StatusInternalServerError,
						errorResponse{Error: "internal error"})
				}
				// A panic after the response started cannot be converted;
				// the connection is abandoned but the process lives on.
			}
			sp.End(obs.A("status", sw.status))
			s.obs.Count(fmt.Sprintf("http.status.%dxx", sw.status/100), 1)
		}()
		if r.Body != nil && s.cfg.MaxBodyBytes > 0 {
			r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBodyBytes)
		}
		ctx := r.Context()
		if s.cfg.RequestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
			defer cancel()
		}
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()
		stop := context.AfterFunc(s.baseCtx, cancel)
		defer stop()
		next.ServeHTTP(sw, r.WithContext(ctx))
	})
}

// limited applies the backpressure semaphore to the expensive endpoints:
// when MaxInflight requests are already running, the request is refused
// immediately with 429 + Retry-After instead of queuing unboundedly; a
// draining server refuses with 503.
func (s *Server) limited(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			s.obs.Count("http.drain_refused", 1)
			s.errorf(w, http.StatusServiceUnavailable, "draining: not accepting new work")
			return
		}
		select {
		case s.sem <- struct{}{}:
		default:
			s.obs.Count("http.throttled", 1)
			w.Header().Set("Retry-After", "1")
			s.errorf(w, http.StatusTooManyRequests,
				"at capacity: %d requests in flight", cap(s.sem))
			return
		}
		s.inflight.Add(1)
		defer func() {
			s.inflight.Add(-1)
			<-s.sem
		}()
		h(w, r)
	}
}

// decode parses the JSON request body into dst, answering 400 on bad
// JSON and 413 when the body limit was hit. It reports whether the
// handler should proceed.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(dst); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			s.errorf(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", maxErr.Limit)
			return false
		}
		s.errorf(w, http.StatusBadRequest, "bad JSON: %v", err)
		return false
	}
	return true
}

func (s *Server) errorf(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeJSON writes the response envelope; encode errors mean the client
// is gone and are dropped.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
