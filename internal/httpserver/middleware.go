package httpserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	apiv1 "objectrunner/api/v1"
	"objectrunner/internal/obs"
)

// statusWriter records the status code a handler wrote, for the request
// span and the per-class status counters.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// maxTraceIDLen caps an inbound X-Trace-Id: longer ids are truncated, so
// a hostile caller cannot grow the trace ring or the span attributes.
const maxTraceIDLen = 64

// sanitizeTraceID filters an inbound trace id down to [0-9A-Za-z._-],
// capped at maxTraceIDLen bytes. An empty result means "mint one".
func sanitizeTraceID(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s) && sb.Len() < maxTraceIDLen; i++ {
		c := s[i]
		if c >= '0' && c <= '9' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
			c == '.' || c == '_' || c == '-' {
			sb.WriteByte(c)
		}
	}
	return sb.String()
}

// routeLabel maps a request path to a bounded label value. Raw paths
// must never become labels — the label set has to stay low-cardinality
// (see DESIGN.md §13) — so unknown paths collapse into "other".
func routeLabel(path string) string {
	switch {
	case path == "/v1/wrap":
		return "wrap"
	case path == "/v1/extract":
		return "extract"
	case path == "/v1/sources" || strings.HasPrefix(path, "/v1/sources/"):
		return "sources"
	case path == "/v1/debug/traces":
		return "traces"
	case strings.HasPrefix(path, "/debug/pprof"):
		return "pprof"
	case path == "/healthz":
		return "healthz"
	case path == "/metrics":
		return "metrics"
	default:
		return "other"
	}
}

// instrument is the outer middleware on every route: a per-request
// trace id (the sanitized inbound X-Trace-Id when the caller sent one —
// daemon traces join caller traces — else minted, echoed back either
// way and spanned through internal/obs), labeled request metrics and the
// flight recorder, panic recovery into a 500, the request body size
// limit, and the request context merged with the server lifetime —
// Abort cancels every request derived this way, which is how the drain
// sequence stops in-flight wraps and extracts.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		trace := sanitizeTraceID(r.Header.Get("X-Trace-Id"))
		if trace == "" {
			trace = fmt.Sprintf("req-%06d", s.reqID.Add(1))
		}
		w.Header().Set("X-Trace-Id", trace)
		route := routeLabel(r.URL.Path)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		sp := s.obs.Span("http.request",
			obs.A("method", r.Method), obs.A("path", r.URL.Path), obs.A("trace", trace))
		s.obs.Count("http.requests", 1)
		defer func() {
			if p := recover(); p != nil {
				s.obs.Count("http.panics", 1)
				sp.Event("http.panic", obs.A("value", fmt.Sprint(p)))
				if sw.status == 0 {
					writeJSON(sw, http.StatusInternalServerError,
						apiv1.Error{Error: "internal error"})
				}
				// A panic after the response started cannot be converted;
				// the connection is abandoned but the process lives on.
			}
			sp.End(obs.A("status", sw.status))
			d := time.Since(start)
			class := fmt.Sprintf("%dxx", sw.status/100)
			s.obs.Count("http.status."+class, 1)
			s.obs.CountL("http.requests_by_route", 1,
				obs.L("route", route), obs.L("status", class))
			s.obs.ObserveL("http.request", d, obs.L("route", route))
			s.flight.Record(obs.Trace{
				ID:     trace,
				Name:   r.Method + " " + r.URL.Path,
				Start:  start,
				Dur:    d,
				Status: sw.status,
				Labels: map[string]string{"route": route},
			})
		}()
		if r.Body != nil && s.cfg.MaxBodyBytes > 0 {
			r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBodyBytes)
		}
		ctx := r.Context()
		if s.cfg.RequestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
			defer cancel()
		}
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()
		stop := context.AfterFunc(s.baseCtx, cancel)
		defer stop()
		next.ServeHTTP(sw, r.WithContext(ctx))
	})
}

// limited applies the backpressure semaphore to the expensive endpoints:
// when MaxInflight requests are already running, the request is refused
// immediately with 429 + Retry-After instead of queuing unboundedly; a
// draining server refuses with 503.
func (s *Server) limited(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			s.obs.Count("http.drain_refused", 1)
			s.errorf(w, http.StatusServiceUnavailable, "draining: not accepting new work")
			return
		}
		select {
		case s.sem <- struct{}{}:
		default:
			s.obs.Count("http.throttled", 1)
			w.Header().Set("Retry-After", "1")
			s.errorf(w, http.StatusTooManyRequests,
				"at capacity: %d requests in flight", cap(s.sem))
			return
		}
		s.inflight.Add(1)
		defer func() {
			s.inflight.Add(-1)
			<-s.sem
		}()
		h(w, r)
	}
}

// decode parses the JSON request body into dst, answering 400 on bad
// JSON and 413 when the body limit was hit. It reports whether the
// handler should proceed.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(dst); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			s.errorf(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", maxErr.Limit)
			return false
		}
		s.errorf(w, http.StatusBadRequest, "bad JSON: %v", err)
		return false
	}
	return true
}

func (s *Server) errorf(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiv1.Error{Error: fmt.Sprintf(format, args...)})
}

// writeJSON writes the response envelope; encode errors mean the client
// is gone and are dropped.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
