package httpserver

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// buildInfo returns the process's Go version and VCS revision, read once
// from the binary's embedded build info. Binaries built outside a VCS
// checkout (go test, plain go build of a dirty tree) report "unknown".
var buildInfo = sync.OnceValues(func() (goVersion, revision string) {
	goVersion = runtime.Version()
	revision = "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return goVersion, revision
	}
	if bi.GoVersion != "" {
		goVersion = bi.GoVersion
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && s.Value != "" {
			revision = s.Value
		}
	}
	return goVersion, revision
})
