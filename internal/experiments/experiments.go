// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV) over the synthetic benchmark: Table I (per-source
// extraction results), Table II (SOD-guided vs random sample selection),
// Table III and Figure 6 (ObjectRunner vs ExAlg vs RoadRunner), the
// wrapping-time measurement, and the ablations called out in DESIGN.md
// (support variation, dictionary coverage, block-abort threshold).
package experiments

import (
	"fmt"
	"time"

	"objectrunner/internal/corpus"
	"objectrunner/internal/eval"
	"objectrunner/internal/exalg"
	"objectrunner/internal/obs"
	"objectrunner/internal/recognize"
	"objectrunner/internal/roadrunner"
	"objectrunner/internal/sitegen"
	"objectrunner/internal/wrapper"
)

// Algo names the competing systems of §IV.B.
type Algo string

const (
	// OR is ObjectRunner, the paper's system.
	OR Algo = "ObjectRunner"
	// EA is the ExAlg baseline.
	EA Algo = "ExAlg"
	// RR is the RoadRunner baseline.
	RR Algo = "RoadRunner"
)

// Env caches the generated benchmark and the per-domain recognizers.
type Env struct {
	B    *sitegen.Benchmark
	regs map[string]map[string]recognize.Recognizer
	// Workers, when non-zero, overrides Config.Workers on every
	// ObjectRunner inference the experiments run (the -workers flag).
	Workers int
	// Obs, when set, observes every wrapper inference the experiments run.
	Obs *obs.Observer
}

// NewEnv generates the benchmark and resolves recognizers for every
// domain from the knowledge base and the corpus (both gazetteer sources
// of §III.A).
func NewEnv(cfg sitegen.Config) (*Env, error) {
	b, err := sitegen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	e := &Env{B: b, regs: make(map[string]map[string]recognize.Recognizer)}
	for _, dd := range b.Domains {
		reg := recognize.NewRegistry(b.KB, corpus.Source{Corpus: b.Corpus, Threshold: 0.05})
		recs, err := reg.ResolveAll(dd.SOD)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", dd.Spec.Name, err)
		}
		e.regs[dd.Spec.Name] = recs
	}
	return e, nil
}

// SourceRun is one (algorithm, source) evaluation outcome.
type SourceRun struct {
	Domain, Source string
	Algo           Algo
	Detail         bool
	Optional       bool
	Aborted        bool
	AbortReason    string
	InferSeconds   float64
	Result         eval.SourceResult
}

// RunOR runs ObjectRunner on one source with the given pipeline config
// and scores it against the golden standard.
func (e *Env) RunOR(dd *sitegen.DomainData, src *sitegen.Source, cfg wrapper.Config) SourceRun {
	recs := e.regs[dd.Spec.Name]
	if e.Obs != nil {
		cfg.Obs = e.Obs
	}
	if e.Workers != 0 {
		cfg.Workers = e.Workers
	}
	start := time.Now()
	w := wrapper.Infer(src.Pages, dd.SOD, recs, e.B.KB, cfg)
	elapsed := time.Since(start).Seconds()
	run := SourceRun{
		Domain: dd.Spec.Name, Source: src.Spec.Name, Algo: OR,
		Detail: src.Spec.Detail, InferSeconds: elapsed,
		Aborted: w.Aborted, AbortReason: w.AbortReason,
	}
	var extracted [][]eval.Record
	if !w.Aborted {
		for _, objs := range w.ExtractBatch(src.Pages) {
			extracted = append(extracted, eval.RecordsFromInstances(objs))
		}
	}
	run.Result = eval.EvaluateSource(src.Spec.Name, dd.Spec.Attrs, src.Golden, extracted, eval.IdentityMapping(dd.Spec.Attrs))
	run.Optional = run.Result.OptionalPresent
	return run
}

// RunEA runs the ExAlg baseline on one source. Its anonymous fields are
// labelled post-hoc against the golden standard (the manual labeling the
// paper's methodology implies for the baselines).
func (e *Env) RunEA(dd *sitegen.DomainData, src *sitegen.Source) SourceRun {
	start := time.Now()
	w := exalg.Infer(src.Pages, exalg.DefaultConfig())
	elapsed := time.Since(start).Seconds()
	run := SourceRun{
		Domain: dd.Spec.Name, Source: src.Spec.Name, Algo: EA,
		Detail: src.Spec.Detail, InferSeconds: elapsed, Aborted: w.Aborted,
	}
	var extracted [][]eval.Record
	if !w.Aborted {
		for _, recs := range w.ExtractPages(src.Pages) {
			page := make([]eval.Record, len(recs))
			for i, r := range recs {
				page[i] = eval.Record(r)
			}
			extracted = append(extracted, page)
		}
	}
	mapping := eval.BuildMapping(dd.Spec.Attrs, src.Golden, extracted)
	run.Result = eval.EvaluateSource(src.Spec.Name, dd.Spec.Attrs, src.Golden, extracted, mapping)
	run.Optional = run.Result.OptionalPresent
	return run
}

// RunRR runs the RoadRunner baseline on one source, labelled post-hoc
// like ExAlg.
func (e *Env) RunRR(dd *sitegen.DomainData, src *sitegen.Source) SourceRun {
	start := time.Now()
	w := roadrunner.Infer(src.Pages, roadrunner.DefaultConfig())
	elapsed := time.Since(start).Seconds()
	run := SourceRun{
		Domain: dd.Spec.Name, Source: src.Spec.Name, Algo: RR,
		Detail: src.Spec.Detail, InferSeconds: elapsed, Aborted: w.Aborted,
	}
	var extracted [][]eval.Record
	if !w.Aborted {
		for _, recs := range w.ExtractPages(src.Pages) {
			page := make([]eval.Record, len(recs))
			for i, r := range recs {
				page[i] = eval.Record(r)
			}
			extracted = append(extracted, page)
		}
	}
	mapping := eval.BuildMapping(dd.Spec.Attrs, src.Golden, extracted)
	run.Result = eval.EvaluateSource(src.Spec.Name, dd.Spec.Attrs, src.Golden, extracted, mapping)
	run.Optional = run.Result.OptionalPresent
	return run
}

// Run dispatches on the algorithm.
func (e *Env) Run(algo Algo, dd *sitegen.DomainData, src *sitegen.Source, cfg wrapper.Config) SourceRun {
	switch algo {
	case EA:
		return e.RunEA(dd, src)
	case RR:
		return e.RunRR(dd, src)
	default:
		return e.RunOR(dd, src, cfg)
	}
}

// Table1 reproduces the paper's Table I: ObjectRunner's per-source
// attribute and object results across all domains.
func (e *Env) Table1() []SourceRun {
	var out []SourceRun
	for _, dd := range e.B.Domains {
		for _, src := range dd.Sources {
			out = append(out, e.RunOR(dd, src, wrapper.DefaultConfig()))
		}
	}
	return out
}

// Table2Row is one domain of Table II.
type Table2Row struct {
	Domain         string
	SelPc, SelPp   float64
	RandPc, RandPp float64
}

// Table2 reproduces the paper's Table II: precision with SOD-guided
// sample selection vs uniform random selection. The sample is kept well
// below the page pool (as in the paper: k≈20 of ~50 crawled pages, some
// of which are off-template) so that how pages are selected matters.
func (e *Env) Table2() []Table2Row {
	// The random baseline is averaged over a few seeds so a lucky or
	// unlucky draw does not decide a domain.
	randomSeeds := []uint64{1789, 31, 97}
	var out []Table2Row
	for _, dd := range e.B.Domains {
		sel := eval.DomainResult{Domain: dd.Spec.Name}
		rnds := make([]eval.DomainResult, len(randomSeeds))
		for _, src := range dd.Sources {
			k := 2 * len(src.Pages) / 5
			if k < 4 {
				k = 4
			}
			cfg := wrapper.DefaultConfig()
			cfg.Sample.SampleSize = k
			sel.Sources = append(sel.Sources, e.RunOR(dd, src, cfg).Result)
			for si, seed := range randomSeeds {
				cfg.RandomSample = true
				cfg.RandomSeed = seed
				rnds[si].Sources = append(rnds[si].Sources, e.RunOR(dd, src, cfg).Result)
			}
		}
		var rpc, rpp float64
		for _, r := range rnds {
			rpc += r.Pc()
			rpp += r.Pp()
		}
		rpc /= float64(len(rnds))
		rpp /= float64(len(rnds))
		out = append(out, Table2Row{
			Domain: dd.Spec.Name,
			SelPc:  sel.Pc(), SelPp: sel.Pp(),
			RandPc: rpc, RandPp: rpp,
		})
	}
	return out
}

// Table3Row is one domain of Table III.
type Table3Row struct {
	Domain string
	// Per-algorithm domain results, keyed OR/EA/RR.
	Results map[Algo]eval.DomainResult
}

// Table3 reproduces the paper's Table III and feeds Figure 6: per-domain
// Pc/Pp of the three systems.
func (e *Env) Table3() []Table3Row {
	var out []Table3Row
	for _, dd := range e.B.Domains {
		row := Table3Row{Domain: dd.Spec.Name, Results: make(map[Algo]eval.DomainResult)}
		for _, algo := range []Algo{OR, EA, RR} {
			dr := eval.DomainResult{Domain: dd.Spec.Name}
			for _, src := range dd.Sources {
				dr.Sources = append(dr.Sources, e.Run(algo, dd, src, wrapper.DefaultConfig()).Result)
			}
			row.Results[algo] = dr
		}
		out = append(out, row)
	}
	return out
}

// Figure6 summarizes Table III the way the paper's Figure 6 does:
// object-classification rates (a) and incompletely-managed-source rates
// (b) per domain and algorithm.
type Figure6 struct {
	Domain                      string
	Algo                        Algo
	Correct, Partial, Incorrect float64 // Figure 6(a)
	IncompleteSources           float64 // Figure 6(b)
}

// Figure6FromTable3 derives the figure series.
func Figure6FromTable3(rows []Table3Row) []Figure6 {
	var out []Figure6
	for _, row := range rows {
		for _, algo := range []Algo{OR, EA, RR} {
			dr := row.Results[algo]
			c, p, i := dr.ClassificationRates()
			out = append(out, Figure6{
				Domain: row.Domain, Algo: algo,
				Correct: c, Partial: p, Incorrect: i,
				IncompleteSources: dr.IncompleteRate(),
			})
		}
	}
	return out
}

// SupportAblation re-runs ObjectRunner on one domain with the support
// parameter pinned to each value in [3,5], reporting conflicts and
// precision — the paper's "automatic variation of parameters" study on
// publication sources.
type SupportPoint struct {
	Support int
	Pc, Pp  float64
}

// SupportAblation sweeps the support parameter on the named domain.
func (e *Env) SupportAblation(domain string) []SupportPoint {
	var out []SupportPoint
	for _, dd := range e.B.Domains {
		if dd.Spec.Name != domain {
			continue
		}
		for support := 3; support <= 5; support++ {
			cfg := wrapper.DefaultConfig()
			cfg.SupportMin, cfg.SupportMax = support, support
			dr := eval.DomainResult{Domain: domain}
			for _, src := range dd.Sources {
				dr.Sources = append(dr.Sources, e.RunOR(dd, src, cfg).Result)
			}
			out = append(out, SupportPoint{Support: support, Pc: dr.Pc(), Pp: dr.Pp()})
		}
	}
	return out
}

// CoveragePoint is one dictionary-coverage measurement.
type CoveragePoint struct {
	Coverage float64
	Pc, Pp   float64
	Aborted  int
}

// CoverageAblation regenerates the benchmark at several dictionary
// coverage levels (the paper reports 20% in the body and 10% in Appendix
// A) and measures ObjectRunner's precision on the given domain.
func CoverageAblation(base sitegen.Config, domain string, coverages []float64) ([]CoveragePoint, error) {
	var out []CoveragePoint
	for _, cov := range coverages {
		cfg := base
		cfg.KBCoverage = cov
		cfg.Domains = []string{domain}
		env, err := NewEnv(cfg)
		if err != nil {
			return nil, err
		}
		dd := env.B.Domains[0]
		dr := eval.DomainResult{Domain: domain}
		aborted := 0
		for _, src := range dd.Sources {
			run := env.RunOR(dd, src, wrapper.DefaultConfig())
			if run.Aborted {
				aborted++
			}
			dr.Sources = append(dr.Sources, run.Result)
		}
		out = append(out, CoveragePoint{Coverage: cov, Pc: dr.Pc(), Pp: dr.Pp(), Aborted: aborted})
	}
	return out, nil
}

// AlphaPoint is one block-threshold measurement.
type AlphaPoint struct {
	Alpha   float64
	Pc      float64
	Aborted int
}

// AlphaAblation sweeps the block-abort threshold on one domain.
func (e *Env) AlphaAblation(domain string, alphas []float64) []AlphaPoint {
	var out []AlphaPoint
	for _, dd := range e.B.Domains {
		if dd.Spec.Name != domain {
			continue
		}
		for _, alpha := range alphas {
			cfg := wrapper.DefaultConfig()
			cfg.Sample.Alpha = alpha
			dr := eval.DomainResult{Domain: domain}
			aborted := 0
			for _, src := range dd.Sources {
				run := e.RunOR(dd, src, cfg)
				if run.Aborted {
					aborted++
				}
				dr.Sources = append(dr.Sources, run.Result)
			}
			out = append(out, AlphaPoint{Alpha: alpha, Pc: dr.Pc(), Aborted: aborted})
		}
	}
	return out
}

// Timing reports wrapper-inference wall time per source (the paper's
// §IV: "the wrapping time of our algorithm ranged from 4 to 9 seconds").
type Timing struct {
	Domain, Source string
	Seconds        float64
}

// WrappingTimes measures ObjectRunner inference time on every source.
func (e *Env) WrappingTimes() []Timing {
	var out []Timing
	for _, dd := range e.B.Domains {
		for _, src := range dd.Sources {
			run := e.RunOR(dd, src, wrapper.DefaultConfig())
			out = append(out, Timing{Domain: dd.Spec.Name, Source: src.Spec.Name, Seconds: run.InferSeconds})
		}
	}
	return out
}
