package experiments

import (
	"fmt"
	"testing"

	"objectrunner/internal/sitegen"
)

// TestT3Smoke prints the Table III / Figure 6 reproduction at a reduced
// scale; used during development and skipped in -short runs.
func TestT3Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow smoke")
	}
	cfg := sitegen.DefaultConfig()
	cfg.PagesPerSource = 12
	e, err := NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := e.Table3()
	fmt.Println(FormatTable3(rows))
	fmt.Println(FormatFigure6(Figure6FromTable3(rows)))
}
