package experiments

import (
	"strings"
	"sync"
	"testing"

	"objectrunner/internal/sitegen"
	"objectrunner/internal/wrapper"
)

// testEnv builds one shared small-scale environment for the package's
// tests (generation plus recognizer resolution is the expensive part).
var (
	envOnce sync.Once
	envVal  *Env
	envErr  error
)

func testEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		cfg := sitegen.DefaultConfig()
		cfg.PagesPerSource = 14
		envVal, envErr = NewEnv(cfg)
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envVal
}

func domain(t *testing.T, e *Env, name string) *sitegen.DomainData {
	t.Helper()
	for _, dd := range e.B.Domains {
		if dd.Spec.Name == name {
			return dd
		}
	}
	t.Fatalf("no domain %s", name)
	return nil
}

func TestCleanSourceExtractsPerfectly(t *testing.T) {
	e := testEnv(t)
	dd := domain(t, e, "concerts")
	src, _, err := e.B.FindSource("concerts", "eventorb (list)")
	if err != nil {
		t.Fatal(err)
	}
	run := e.RunOR(dd, src, wrapper.DefaultConfig())
	if run.Aborted {
		t.Fatalf("aborted: %s", run.AbortReason)
	}
	if run.Result.Pc() < 0.95 {
		t.Errorf("clean source Pc = %.2f, want ~1", run.Result.Pc())
	}
}

func TestClasslessSourceStillExtracts(t *testing.T) {
	// The paper's central claim: annotations differentiate token roles
	// that structure alone cannot (no semantic class attributes).
	e := testEnv(t)
	dd := domain(t, e, "concerts")
	src, _, err := e.B.FindSource("concerts", "zvents (list)")
	if err != nil {
		t.Fatal(err)
	}
	or := e.RunOR(dd, src, wrapper.DefaultConfig())
	if or.Result.Pc() < 0.9 {
		t.Errorf("ObjectRunner on classless source Pc = %.2f, want >= 0.9", or.Result.Pc())
	}
	// ExAlg may or may not recover this particular source (its scoring
	// gets a golden-standard labeling oracle), but it never beats the
	// targeted extraction.
	ea := e.RunEA(dd, src)
	if ea.Result.Pc() > or.Result.Pc()+1e-9 {
		t.Errorf("ExAlg (%.2f) beat ObjectRunner (%.2f) on a classless source", ea.Result.Pc(), or.Result.Pc())
	}
}

func TestUnstructuredSourceDiscarded(t *testing.T) {
	e := testEnv(t)
	dd := domain(t, e, "albums")
	src, _, err := e.B.FindSource("albums", "emusic")
	if err != nil {
		t.Fatal(err)
	}
	run := e.RunOR(dd, src, wrapper.DefaultConfig())
	if !run.Aborted {
		t.Error("prose source was not discarded")
	}
}

func TestMergedFieldsYieldPartial(t *testing.T) {
	e := testEnv(t)
	dd := domain(t, e, "cars")
	src, _, err := e.B.FindSource("cars", "automotive")
	if err != nil {
		t.Fatal(err)
	}
	run := e.RunOR(dd, src, wrapper.DefaultConfig())
	if run.Aborted {
		t.Fatalf("merged-fields source aborted: %s", run.AbortReason)
	}
	r := run.Result
	if r.Op == 0 {
		t.Errorf("merged fields should yield partially correct objects: Oc=%d Op=%d Oi=%d", r.Oc, r.Op, r.Oi)
	}
	if r.Oc != 0 {
		t.Errorf("merged fields cannot be exactly correct: Oc=%d", r.Oc)
	}
}

func TestRoadRunnerFailsOnTooRegularLists(t *testing.T) {
	// Table III / §IV.B: constant record counts give RoadRunner no
	// cross-page variation, so the iterator is never discovered.
	e := testEnv(t)
	dd := domain(t, e, "books")
	oc := 0
	for _, src := range dd.Sources {
		run := e.RunRR(dd, src)
		oc += run.Result.Oc
	}
	total := 0
	for _, src := range dd.Sources {
		total += src.NumObjects()
	}
	if float64(oc)/float64(total) > 0.1 {
		t.Errorf("RoadRunner books Pc = %.2f, want ~0 (too-regular lists)", float64(oc)/float64(total))
	}
}

func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison is slow")
	}
	e := testEnv(t)
	rows := e.Table3()
	if len(rows) != 5 {
		t.Fatalf("domains = %d", len(rows))
	}
	for _, row := range rows {
		or := row.Results[OR]
		ea := row.Results[EA]
		rr := row.Results[RR]
		// At this reduced scale (10 pages/source) small-sample noise can
		// move individual domains by ~10 points; the full-scale shape is
		// recorded in EXPERIMENTS.md. Here we assert the ordering with a
		// tolerance.
		if or.Pc() < ea.Pc()-0.15 {
			t.Errorf("%s: OR Pc %.2f clearly below EA %.2f", row.Domain, or.Pc(), ea.Pc())
		}
		if or.Pc() < rr.Pc()-0.05 {
			t.Errorf("%s: OR Pc %.2f below RR %.2f", row.Domain, or.Pc(), rr.Pc())
		}
		if row.Domain == "books" || row.Domain == "publications" {
			if rr.Pc() > 0.1 {
				t.Errorf("%s: RR Pc %.2f, want ~0 on constant-count lists", row.Domain, rr.Pc())
			}
		}
	}
	// Figure 6 rates must be consistent probabilities.
	for _, p := range Figure6FromTable3(rows) {
		sum := p.Correct + p.Partial + p.Incorrect
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("%s/%s: classification rates sum to %.3f", p.Domain, p.Algo, sum)
		}
		if p.IncompleteSources < 0 || p.IncompleteSources > 1 {
			t.Errorf("%s/%s: incomplete-source rate %.3f", p.Domain, p.Algo, p.IncompleteSources)
		}
	}
}

func TestTable2SelectionBeatsRandomOnMixedSources(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// Build a variant environment where half the pages of each source
	// are annotation-poor, so sample selection matters. Use the standard
	// benchmark domains but evaluate the concerts domain only.
	e := testEnv(t)
	rows := e.Table2()
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SelPc < r.RandPc-0.05 {
			t.Errorf("%s: selected sampling Pc %.2f clearly below random %.2f", r.Domain, r.SelPc, r.RandPc)
		}
	}
}

func TestTable1Formatting(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	e := testEnv(t)
	runs := e.Table1()
	if len(runs) != 49 {
		t.Fatalf("sources = %d, want 49", len(runs))
	}
	txt := FormatTable1(runs)
	for _, want := range []string{"TABLE I", "concerts", "zvents", "discarded"} {
		if !strings.Contains(txt, want) {
			t.Errorf("Table I output missing %q", want)
		}
	}
}

func TestSupportAblationRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	e := testEnv(t)
	pts := e.SupportAblation("publications")
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Pc < 0 || p.Pc > 1 {
			t.Errorf("support %d: Pc = %v", p.Support, p.Pc)
		}
	}
	txt := FormatSupportAblation("publications", pts)
	if !strings.Contains(txt, "Support") {
		t.Error("ablation formatting")
	}
}

func TestAlphaAblationAbortsMore(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	e := testEnv(t)
	pts := e.AlphaAblation("albums", []float64{0, 0.5, 1000})
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// A ridiculous threshold must abort more sources than no threshold.
	if pts[2].Aborted <= pts[0].Aborted {
		t.Errorf("alpha=1000 aborted %d, alpha=0 aborted %d", pts[2].Aborted, pts[0].Aborted)
	}
}

func TestWrappingTimesWithinBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	e := testEnv(t)
	ts := e.WrappingTimes()
	if len(ts) == 0 {
		t.Fatal("no timings")
	}
	for _, x := range ts {
		// The paper reports 4-9s on 2008 hardware; anything pathological
		// (minutes) indicates a runaway loop.
		if x.Seconds > 60 {
			t.Errorf("%s/%s took %.1fs", x.Domain, x.Source, x.Seconds)
		}
	}
	if !strings.Contains(FormatTimings(ts), "range:") {
		t.Error("timing formatting")
	}
}

func TestFormatTable2And3(t *testing.T) {
	rows2 := []Table2Row{{Domain: "x", SelPc: 0.8, SelPp: 0.9, RandPc: 0.6, RandPp: 0.7}}
	if !strings.Contains(FormatTable2(rows2), "TABLE II") {
		t.Error("table 2 formatting")
	}
}
