package experiments

import (
	"fmt"
	"strings"
)

// FormatTable1 renders the Table I reproduction as text.
func FormatTable1(runs []SourceRun) string {
	var sb strings.Builder
	sb.WriteString("TABLE I — EXTRACTION RESULTS (ObjectRunner)\n")
	sb.WriteString(fmt.Sprintf("%-14s %-26s %-8s %-6s %-6s %-6s %6s %6s %6s %6s\n",
		"Domain", "Source", "Optional", "Ac", "Ap", "Ai", "No", "Oc", "Op", "Oi"))
	lastDomain := ""
	for _, r := range runs {
		domain := ""
		if r.Domain != lastDomain {
			domain = r.Domain
			lastDomain = r.Domain
		}
		if r.Aborted {
			sb.WriteString(fmt.Sprintf("%-14s %-26s (discarded: %s)\n", domain, r.Source, r.AbortReason))
			continue
		}
		opt := "no"
		if r.Optional {
			opt = "yes"
		}
		res := r.Result
		sb.WriteString(fmt.Sprintf("%-14s %-26s %-8s %d/%-4d %d/%-4d %d/%-4d %6d %6d %6d %6d\n",
			domain, r.Source, opt,
			res.Ac, res.ATotal, res.Ap, res.ATotal, res.Ai, res.ATotal,
			res.No, res.Oc, res.Op, res.Oi))
	}
	return sb.String()
}

// FormatTable2 renders the Table II reproduction.
func FormatTable2(rows []Table2Row) string {
	var sb strings.Builder
	sb.WriteString("TABLE II — PRECISION BY SAMPLE SELECTION: SOD-BASED VS RANDOM (%)\n")
	sb.WriteString(fmt.Sprintf("%-14s %10s %10s %12s %12s\n", "Domain", "Sel Pc", "Sel Pp", "Random Pc", "Random Pp"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-14s %10.2f %10.2f %12.2f %12.2f\n",
			r.Domain, 100*r.SelPc, 100*r.SelPp, 100*r.RandPc, 100*r.RandPp))
	}
	return sb.String()
}

// FormatTable3 renders the Table III reproduction.
func FormatTable3(rows []Table3Row) string {
	var sb strings.Builder
	sb.WriteString("TABLE III — PERFORMANCE RESULTS (%)\n")
	sb.WriteString(fmt.Sprintf("%-14s %8s %8s %8s %8s %8s %8s\n",
		"Domain", "OR Pc", "OR Pp", "EA Pc", "EA Pp", "RR Pc", "RR Pp"))
	for _, r := range rows {
		or, ea, rr := r.Results[OR], r.Results[EA], r.Results[RR]
		sb.WriteString(fmt.Sprintf("%-14s %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f\n",
			r.Domain,
			100*or.Pc(), 100*or.Pp(),
			100*ea.Pc(), 100*ea.Pp(),
			100*rr.Pc(), 100*rr.Pp()))
	}
	return sb.String()
}

// FormatFigure6 renders both facets of Figure 6 as text series.
func FormatFigure6(points []Figure6) string {
	var sb strings.Builder
	sb.WriteString("FIGURE 6(a) — OBJECT CLASSIFICATION RATES\n")
	sb.WriteString(fmt.Sprintf("%-14s %-12s %9s %9s %11s\n", "Domain", "Algorithm", "Correct", "Partial", "Incorrect"))
	for _, p := range points {
		sb.WriteString(fmt.Sprintf("%-14s %-12s %9.2f %9.2f %11.2f\n",
			p.Domain, p.Algo, p.Correct, p.Partial, p.Incorrect))
	}
	sb.WriteString("\nFIGURE 6(b) — RATE OF INCOMPLETELY MANAGED SOURCES\n")
	sb.WriteString(fmt.Sprintf("%-14s %-12s %10s\n", "Domain", "Algorithm", "Rate"))
	for _, p := range points {
		sb.WriteString(fmt.Sprintf("%-14s %-12s %10.2f\n", p.Domain, p.Algo, p.IncompleteSources))
	}
	return sb.String()
}

// FormatSupportAblation renders the support sweep.
func FormatSupportAblation(domain string, points []SupportPoint) string {
	var sb strings.Builder
	sb.WriteString("ABLATION — TOKEN SUPPORT (" + domain + ")\n")
	sb.WriteString(fmt.Sprintf("%-8s %8s %8s\n", "Support", "Pc", "Pp"))
	for _, p := range points {
		sb.WriteString(fmt.Sprintf("%-8d %8.2f %8.2f\n", p.Support, 100*p.Pc, 100*p.Pp))
	}
	return sb.String()
}

// FormatCoverageAblation renders the dictionary-coverage sweep.
func FormatCoverageAblation(domain string, points []CoveragePoint) string {
	var sb strings.Builder
	sb.WriteString("ABLATION — DICTIONARY COVERAGE (" + domain + ")\n")
	sb.WriteString(fmt.Sprintf("%-10s %8s %8s %9s\n", "Coverage", "Pc", "Pp", "Aborted"))
	for _, p := range points {
		sb.WriteString(fmt.Sprintf("%-10.2f %8.2f %8.2f %9d\n", p.Coverage, 100*p.Pc, 100*p.Pp, p.Aborted))
	}
	return sb.String()
}

// FormatAlphaAblation renders the block-threshold sweep.
func FormatAlphaAblation(domain string, points []AlphaPoint) string {
	var sb strings.Builder
	sb.WriteString("ABLATION — BLOCK ABORT THRESHOLD ALPHA (" + domain + ")\n")
	sb.WriteString(fmt.Sprintf("%-8s %8s %9s\n", "Alpha", "Pc", "Aborted"))
	for _, p := range points {
		sb.WriteString(fmt.Sprintf("%-8.2f %8.2f %9d\n", p.Alpha, 100*p.Pc, p.Aborted))
	}
	return sb.String()
}

// FormatTimings renders wrapper-inference times with min/max summary.
func FormatTimings(ts []Timing) string {
	var sb strings.Builder
	sb.WriteString("WRAPPING TIME PER SOURCE (s)\n")
	min, max := -1.0, 0.0
	for _, t := range ts {
		sb.WriteString(fmt.Sprintf("%-14s %-26s %8.3f\n", t.Domain, t.Source, t.Seconds))
		if min < 0 || t.Seconds < min {
			min = t.Seconds
		}
		if t.Seconds > max {
			max = t.Seconds
		}
	}
	sb.WriteString(fmt.Sprintf("range: %.3f – %.3f s (paper: 4–9 s on 2008-era hardware)\n", min, max))
	return sb.String()
}
