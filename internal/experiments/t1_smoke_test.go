package experiments

import (
	"fmt"
	"testing"

	"objectrunner/internal/sitegen"
	"objectrunner/internal/wrapper"
)

// TestT1Smoke prints per-source ObjectRunner results at reduced scale.
func TestT1Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow smoke")
	}
	cfg := sitegen.DefaultConfig()
	cfg.PagesPerSource = 12
	e, err := NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, dd := range e.B.Domains {
		for _, src := range dd.Sources {
			run := e.RunOR(dd, src, wrapper.DefaultConfig())
			if run.Aborted {
				fmt.Printf("%-12s %-24s ABORT: %s\n", run.Domain, run.Source, run.AbortReason)
				continue
			}
			r := run.Result
			fmt.Printf("%-12s %-24s %s No=%d Oc=%d Op=%d Oi=%d\n", run.Domain, run.Source, r.FormatAttrRow(), r.No, r.Oc, r.Op, r.Oi)
		}
	}
}
