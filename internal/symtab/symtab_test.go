package symtab

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternDenseAndStable(t *testing.T) {
	tab := New()
	a := tab.Intern("alpha")
	b := tab.Intern("beta")
	if a != 1 || b != 2 {
		t.Fatalf("expected dense symbols 1,2 got %d,%d", a, b)
	}
	if got := tab.Intern("alpha"); got != a {
		t.Fatalf("re-intern changed symbol: %d vs %d", got, a)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
	if tab.StringOf(a) != "alpha" || tab.StringOf(b) != "beta" {
		t.Fatalf("StringOf mismatch: %q %q", tab.StringOf(a), tab.StringOf(b))
	}
}

func TestLookupNeverGrows(t *testing.T) {
	tab := New()
	tab.Intern("known")
	if got := tab.Lookup("unknown"); got != None {
		t.Fatalf("Lookup(unknown) = %d, want None", got)
	}
	if tab.Len() != 1 {
		t.Fatalf("Lookup grew the table: Len = %d", tab.Len())
	}
	if got := tab.Lookup("known"); got != 1 {
		t.Fatalf("Lookup(known) = %d, want 1", got)
	}
}

func TestNoneNeverAssigned(t *testing.T) {
	tab := New()
	if got := tab.Intern(""); got == None {
		t.Fatal("Intern returned None")
	}
	if tab.StringOf(None) != "" {
		t.Fatalf("StringOf(None) = %q, want empty", tab.StringOf(None))
	}
	if tab.StringOf(99) != "" {
		t.Fatalf("StringOf(out of range) = %q, want empty", tab.StringOf(99))
	}
}

func TestSymbolsRoundTrip(t *testing.T) {
	tab := New()
	for _, s := range []string{"div", "html/body/div", "price", ""} {
		tab.Intern(s)
	}
	snap := tab.Symbols()
	got, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tab.Len() {
		t.Fatalf("Len after restore = %d, want %d", got.Len(), tab.Len())
	}
	for i, s := range snap {
		y := Sym(i + 1)
		if got.StringOf(y) != s {
			t.Fatalf("StringOf(%d) = %q, want %q", y, got.StringOf(y), s)
		}
		if got.Lookup(s) != y {
			t.Fatalf("Lookup(%q) = %d, want %d", s, got.Lookup(s), y)
		}
	}
}

func TestRestoreRejectsDuplicates(t *testing.T) {
	if _, err := Restore([]string{"a", "b", "a"}); err == nil {
		t.Fatal("Restore accepted duplicate symbols")
	}
}

func TestConcurrentIntern(t *testing.T) {
	tab := New()
	const workers = 8
	const n = 200
	var wg sync.WaitGroup
	results := make([][]Sym, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = make([]Sym, n)
			for i := 0; i < n; i++ {
				results[w][i] = tab.Intern(fmt.Sprintf("tok-%d", i))
			}
		}(w)
	}
	wg.Wait()
	if tab.Len() != n {
		t.Fatalf("Len = %d, want %d", tab.Len(), n)
	}
	// Every worker must agree on every symbol, and symbols must map back
	// to the string they were interned from.
	for i := 0; i < n; i++ {
		want := results[0][i]
		for w := 1; w < workers; w++ {
			if results[w][i] != want {
				t.Fatalf("worker %d disagrees on tok-%d: %d vs %d", w, i, results[w][i], want)
			}
		}
		if s := tab.StringOf(want); s != fmt.Sprintf("tok-%d", i) {
			t.Fatalf("StringOf(%d) = %q", want, s)
		}
	}
}
