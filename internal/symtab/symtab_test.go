package symtab

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternDenseAndStable(t *testing.T) {
	tab := New()
	a := tab.Intern("alpha")
	b := tab.Intern("beta")
	if a != 1 || b != 2 {
		t.Fatalf("expected dense symbols 1,2 got %d,%d", a, b)
	}
	if got := tab.Intern("alpha"); got != a {
		t.Fatalf("re-intern changed symbol: %d vs %d", got, a)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
	if tab.StringOf(a) != "alpha" || tab.StringOf(b) != "beta" {
		t.Fatalf("StringOf mismatch: %q %q", tab.StringOf(a), tab.StringOf(b))
	}
}

func TestLookupNeverGrows(t *testing.T) {
	tab := New()
	tab.Intern("known")
	if got := tab.Lookup("unknown"); got != None {
		t.Fatalf("Lookup(unknown) = %d, want None", got)
	}
	if tab.Len() != 1 {
		t.Fatalf("Lookup grew the table: Len = %d", tab.Len())
	}
	if got := tab.Lookup("known"); got != 1 {
		t.Fatalf("Lookup(known) = %d, want 1", got)
	}
}

func TestNoneNeverAssigned(t *testing.T) {
	tab := New()
	if got := tab.Intern(""); got == None {
		t.Fatal("Intern returned None")
	}
	if tab.StringOf(None) != "" {
		t.Fatalf("StringOf(None) = %q, want empty", tab.StringOf(None))
	}
	if tab.StringOf(99) != "" {
		t.Fatalf("StringOf(out of range) = %q, want empty", tab.StringOf(99))
	}
}

func TestSymbolsRoundTrip(t *testing.T) {
	tab := New()
	for _, s := range []string{"div", "html/body/div", "price", ""} {
		tab.Intern(s)
	}
	snap := tab.Symbols()
	got, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tab.Len() {
		t.Fatalf("Len after restore = %d, want %d", got.Len(), tab.Len())
	}
	for i, s := range snap {
		y := Sym(i + 1)
		if got.StringOf(y) != s {
			t.Fatalf("StringOf(%d) = %q, want %q", y, got.StringOf(y), s)
		}
		if got.Lookup(s) != y {
			t.Fatalf("Lookup(%q) = %d, want %d", s, got.Lookup(s), y)
		}
	}
}

func TestRestoreRejectsDuplicates(t *testing.T) {
	if _, err := Restore([]string{"a", "b", "a"}); err == nil {
		t.Fatal("Restore accepted duplicate symbols")
	}
}

// TestMergeReproducesSequentialNumbering is the core determinism claim
// of the fused parallel intern stage: splitting a token stream into
// contiguous chunks, interning each into its own local table, and
// merging the locals left-to-right must assign every string exactly the
// id a single sequential pass over the whole stream would have.
func TestMergeReproducesSequentialNumbering(t *testing.T) {
	// A stream with heavy cross-chunk repetition (collisions) and some
	// chunk-local vocabulary.
	stream := []string{
		"div", "span", "div", "price", "a", "div", // chunk 1
		"span", "title", "div", "price", "b", "a", // chunk 2
		"em", "div", "title", "z", "span", "em", // chunk 3
	}
	seq := New()
	for _, s := range stream {
		seq.Intern(s)
	}
	for _, sizes := range [][]int{{18}, {6, 6, 6}, {1, 17}, {9, 9}, {5, 5, 5, 3}} {
		canon := New()
		lo := 0
		for _, size := range sizes {
			local := New()
			for _, s := range stream[lo : lo+size] {
				local.Intern(s)
			}
			remap := canon.Merge(local)
			// Every local symbol must land on the sequential table's id.
			for s := 1; s <= local.Len(); s++ {
				str := local.StringOf(Sym(s))
				if got, want := remap[s], seq.Lookup(str); got != want {
					t.Fatalf("chunks %v: %q remapped to %d, want sequential id %d", sizes, str, got, want)
				}
			}
			lo += size
		}
		if canon.Len() != seq.Len() {
			t.Fatalf("chunks %v: merged table has %d symbols, want %d", sizes, canon.Len(), seq.Len())
		}
		for s := 1; s <= seq.Len(); s++ {
			if canon.StringOf(Sym(s)) != seq.StringOf(Sym(s)) {
				t.Fatalf("chunks %v: symbol %d = %q, want %q", sizes, s, canon.StringOf(Sym(s)), seq.StringOf(Sym(s)))
			}
		}
	}
}

// TestMergeCollisionRemap pins the remap for symbols both tables know:
// the local id loses, the canonical id wins.
func TestMergeCollisionRemap(t *testing.T) {
	canon := New()
	canon.Intern("div")  // 1
	canon.Intern("span") // 2
	local := New()
	local.Intern("span")  // local 1 — collides, canonical 2
	local.Intern("price") // local 2 — new, canonical 3
	local.Intern("div")   // local 3 — collides, canonical 1
	remap := canon.Merge(local)
	if len(remap) != 4 {
		t.Fatalf("len(remap) = %d, want local.Len()+1 = 4", len(remap))
	}
	if remap[0] != None {
		t.Fatalf("remap[None] = %d, want None", remap[0])
	}
	for s, want := range map[Sym]Sym{1: 2, 2: 3, 3: 1} {
		if remap[s] != want {
			t.Errorf("remap[%d] = %d, want %d", s, remap[s], want)
		}
	}
	if canon.Len() != 3 {
		t.Errorf("canonical table grew to %d symbols, want 3", canon.Len())
	}
}

// TestMergeEmptyAndIdentity covers the degenerate worker shapes: a
// worker that saw no pages merges as a no-op, and the first worker's
// merge into an empty canonical table is the identity, so callers can
// skip its remap pass.
func TestMergeEmptyAndIdentity(t *testing.T) {
	canon := New()
	empty := New()
	remap := canon.Merge(empty)
	if len(remap) != 1 || remap[0] != None {
		t.Fatalf("merging an empty table: remap = %v, want [None]", remap)
	}
	if !IdentityRemap(remap) {
		t.Error("empty merge remap is not the identity")
	}
	first := New()
	first.Intern("div")
	first.Intern("span")
	remap = canon.Merge(first)
	if !IdentityRemap(remap) {
		t.Errorf("first merge into an empty table: remap = %v, want identity", remap)
	}
	second := New()
	second.Intern("price")
	second.Intern("div")
	remap = canon.Merge(second)
	if IdentityRemap(remap) {
		t.Errorf("colliding merge reported as identity: %v", remap)
	}
}

func TestConcurrentIntern(t *testing.T) {
	tab := New()
	const workers = 8
	const n = 200
	var wg sync.WaitGroup
	results := make([][]Sym, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = make([]Sym, n)
			for i := 0; i < n; i++ {
				results[w][i] = tab.Intern(fmt.Sprintf("tok-%d", i))
			}
		}(w)
	}
	wg.Wait()
	if tab.Len() != n {
		t.Fatalf("Len = %d, want %d", tab.Len(), n)
	}
	// Every worker must agree on every symbol, and symbols must map back
	// to the string they were interned from.
	for i := 0; i < n; i++ {
		want := results[0][i]
		for w := 1; w < workers; w++ {
			if results[w][i] != want {
				t.Fatalf("worker %d disagrees on tok-%d: %d vs %d", w, i, results[w][i], want)
			}
		}
		if s := tab.StringOf(want); s != fmt.Sprintf("tok-%d", i) {
			t.Fatalf("StringOf(%d) = %q", want, s)
		}
	}
}
