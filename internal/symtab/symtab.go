// Package symtab provides a small, concurrency-safe symbol table that
// maps token-signature strings to dense uint32 symbols. Tables are
// scoped per wrapper (and per analysis) rather than process-global, so
// symbol values stay small, serialize compactly, and never leak
// vocabulary between unrelated wrappers.
//
// Symbol 0 (None) is reserved as "unknown": Lookup returns it for
// strings the table has never seen, which makes read-only serving-time
// lookups safe — an unknown token can never compare equal to a learned
// descriptor, whose symbols are always non-zero.
package symtab

import (
	"fmt"
	"sync"
)

// Sym is a dense symbol identifier. The zero value is None.
type Sym uint32

// None is the reserved "unknown" symbol. Intern never returns it.
const None Sym = 0

// Table interns strings to dense symbols. Symbols are assigned in
// insertion order starting at 1, so a fixed interning order yields a
// deterministic table. The zero Table is not usable; call New.
type Table struct {
	mu   sync.RWMutex
	ids  map[string]Sym
	strs []string // strs[0] is the empty placeholder for None
}

// New returns an empty table.
func New() *Table {
	return &Table{
		ids:  make(map[string]Sym),
		strs: make([]string, 1),
	}
}

// Intern returns the symbol for s, assigning the next dense symbol if s
// has not been seen. Safe for concurrent use, but concurrent first
// interns race for assignment order — callers that need deterministic
// symbol values must intern sequentially.
func (t *Table) Intern(s string) Sym {
	t.mu.RLock()
	y, ok := t.ids[s]
	t.mu.RUnlock()
	if ok {
		return y
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if y, ok := t.ids[s]; ok {
		return y
	}
	y = Sym(len(t.strs))
	t.ids[s] = y
	t.strs = append(t.strs, s)
	return y
}

// Lookup returns the symbol for s, or None if s was never interned. It
// never grows the table, which makes it the right call on the serving
// path where the wrapper's table must stay frozen.
func (t *Table) Lookup(s string) Sym {
	t.mu.RLock()
	y := t.ids[s]
	t.mu.RUnlock()
	return y
}

// LookupBytes is Lookup for a byte-slice key. The map index expression
// with an inline string conversion compiles to a lookup without
// materializing the string, so the serving-path tokenizer can probe the
// frozen table from its scratch buffers with zero allocations.
func (t *Table) LookupBytes(b []byte) Sym {
	t.mu.RLock()
	y := t.ids[string(b)]
	t.mu.RUnlock()
	return y
}

// StringOf returns the string a symbol was interned from. None and
// out-of-range symbols return "".
func (t *Table) StringOf(y Sym) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if int(y) >= len(t.strs) {
		return ""
	}
	return t.strs[y]
}

// Len reports how many symbols have been interned (excluding None).
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.strs) - 1
}

// Symbols returns the interned strings in symbol order (symbol i+1 is
// element i). The slice is a copy and is the serialization form of the
// table: Restore(t.Symbols()) reproduces t exactly.
func (t *Table) Symbols() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, len(t.strs)-1)
	copy(out, t.strs[1:])
	return out
}

// Merge interns every symbol of local into t, in local symbol order, and
// returns the remap table: remap[s] is t's symbol for local symbol s
// (remap[None] = None, and len(remap) = local.Len()+1). Symbols t already
// knows keep their existing ids; new ones are appended densely.
//
// Merging worker-local tables in worker order — where worker w interned
// the tokens of a contiguous page chunk in page-then-token order —
// reproduces exactly the numbering a single sequential page-then-token
// pass over all pages would assign: a symbol first appearing in chunk w
// is absent from every earlier chunk's table, so the left-to-right merge
// assigns it an id after all symbols first seen in chunks 0..w-1 and
// before all symbols first seen later, in its first-appearance position
// within chunk w. That makes downstream symbol ids — and everything
// serialized from them — independent of the worker count.
func (t *Table) Merge(local *Table) []Sym {
	local.mu.RLock()
	defer local.mu.RUnlock()
	remap := make([]Sym, len(local.strs))
	for s := 1; s < len(local.strs); s++ {
		remap[s] = t.Intern(local.strs[s])
	}
	return remap
}

// IdentityRemap reports whether a Merge remap maps every symbol to
// itself, letting callers skip the occurrence-rewrite pass for chunks
// whose local numbering already matches the canonical table (always true
// for the first table merged into an empty one).
func IdentityRemap(remap []Sym) bool {
	for s, y := range remap {
		if y != Sym(s) {
			return false
		}
	}
	return true
}

// Restore rebuilds a table from a Symbols() snapshot. Duplicate entries
// are rejected: they could only have been produced by a corrupted
// stream and would silently alias two symbols on lookup.
func Restore(symbols []string) (*Table, error) {
	t := &Table{
		ids:  make(map[string]Sym, len(symbols)),
		strs: make([]string, 1, len(symbols)+1),
	}
	for i, s := range symbols {
		if _, dup := t.ids[s]; dup {
			return nil, fmt.Errorf("symtab: duplicate symbol %q at index %d", s, i)
		}
		t.ids[s] = Sym(i + 1)
		t.strs = append(t.strs, s)
	}
	return t, nil
}
