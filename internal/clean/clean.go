// Package clean implements the pre-processing cleaning step of the
// ObjectRunner pipeline (paper §III): removal of page segments that carry
// no extractable information — scripts, styles, comments, hidden nodes,
// empty elements — plus whitespace normalisation. Cleaning runs before
// visual segmentation and annotation, and makes wrapper inference both
// faster and less noisy.
package clean

import (
	"strings"

	"objectrunner/internal/dom"
)

// Options controls which cleaning passes run. The zero value disables
// everything; use DefaultOptions for the paper's configuration.
type Options struct {
	// DropScripts removes <script> and <noscript> elements.
	DropScripts bool
	// DropStyles removes <style> elements and style attributes.
	DropStyles bool
	// DropComments removes comment nodes.
	DropComments bool
	// DropHidden removes elements styled or attributed as invisible
	// (style="display:none", hidden, type="hidden").
	DropHidden bool
	// DropHead removes the <head> element entirely.
	DropHead bool
	// DropForms removes interactive form controls (input/select/button),
	// which belong to the page chrome rather than the data region.
	DropForms bool
	// DropEmpty prunes elements with no text, no image and no children
	// after the other passes.
	DropEmpty bool
	// NormalizeSpace collapses whitespace inside text nodes and removes
	// whitespace-only text nodes.
	NormalizeSpace bool
	// KeepAttrs, when non-nil, lists the only attribute names retained on
	// elements; all others are dropped. When nil, attributes are kept.
	KeepAttrs []string
}

// DefaultOptions is the cleaning configuration used in the paper's
// experiments: everything non-informative goes, structural attributes
// (id/class, href/src kept for block identification) stay.
func DefaultOptions() Options {
	return Options{
		DropScripts:    true,
		DropStyles:     true,
		DropComments:   true,
		DropHidden:     true,
		DropHead:       true,
		DropForms:      true,
		DropEmpty:      true,
		NormalizeSpace: true,
	}
}

// Clean applies the configured passes to the tree rooted at doc, in place,
// and returns doc for chaining.
func Clean(doc *dom.Node, opts Options) *dom.Node {
	removeUnwanted(doc, opts)
	if opts.NormalizeSpace {
		normalizeSpace(doc)
	}
	if opts.KeepAttrs != nil {
		keep := make(map[string]bool, len(opts.KeepAttrs))
		for _, a := range opts.KeepAttrs {
			keep[strings.ToLower(a)] = true
		}
		filterAttrs(doc, keep)
	}
	if opts.DropEmpty {
		for dropEmpty(doc) {
			// Iterate: removing leaves can empty their parents.
		}
	}
	return doc
}

// Page is a convenience that parses raw HTML and cleans it with the
// default options, mirroring the paper's JTidy + cleaning stage.
func Page(src string) *dom.Node {
	return Clean(dom.Parse(src), DefaultOptions())
}

func removeUnwanted(n *dom.Node, opts Options) {
	var doomed []*dom.Node
	for _, c := range n.Children {
		if isUnwanted(c, opts) {
			doomed = append(doomed, c)
			continue
		}
		removeUnwanted(c, opts)
	}
	for _, d := range doomed {
		n.RemoveChild(d)
	}
}

func isUnwanted(n *dom.Node, opts Options) bool {
	switch n.Type {
	case dom.CommentNode:
		return opts.DropComments
	case dom.DoctypeNode:
		return false
	case dom.ElementNode:
		switch n.Data {
		case "script", "noscript":
			return opts.DropScripts
		case "style":
			return opts.DropStyles
		case "head", "meta", "link", "base":
			return opts.DropHead
		case "input", "select", "button", "option", "textarea":
			if opts.DropForms {
				return true
			}
		case "iframe", "object", "embed":
			return opts.DropScripts
		}
		if opts.DropHidden && isHidden(n) {
			return true
		}
	}
	return false
}

// isHidden reports whether the element is invisible under common idioms.
func isHidden(n *dom.Node) bool {
	if _, ok := n.Attr("hidden"); ok {
		return true
	}
	if v, ok := n.Attr("type"); ok && strings.EqualFold(v, "hidden") {
		return true
	}
	style, ok := n.Attr("style")
	if !ok {
		return false
	}
	style = strings.ToLower(strings.ReplaceAll(style, " ", ""))
	return strings.Contains(style, "display:none") || strings.Contains(style, "visibility:hidden")
}

func normalizeSpace(n *dom.Node) {
	var doomed []*dom.Node
	for _, c := range n.Children {
		if c.Type == dom.TextNode {
			c.Data = dom.CollapseSpace(c.Data)
			if c.Data == "" {
				doomed = append(doomed, c)
			}
			continue
		}
		normalizeSpace(c)
	}
	for _, d := range doomed {
		n.RemoveChild(d)
	}
}

func filterAttrs(n *dom.Node, keep map[string]bool) {
	n.Walk(func(m *dom.Node) bool {
		if m.Type != dom.ElementNode {
			return true
		}
		var kept []dom.Attr
		for _, a := range m.Attrs {
			if keep[strings.ToLower(a.Name)] {
				kept = append(kept, a)
			}
		}
		m.Attrs = kept
		return true
	})
}

// contentBearing marks elements that are meaningful even when childless.
var contentBearing = map[string]bool{
	"img": true, "br": true, "hr": true, "html": true, "body": true,
	"td": true, "th": true, // empty cells preserve table geometry
}

// DroppedTag reports whether DefaultOptions removes elements with this
// tag name outright — scripts and embeds, styles, head furniture, and
// form controls. It is the tag-name half of isUnwanted, exported for the
// streaming tokenizer, which replays the cleaning passes without a tree.
func DroppedTag(name string) bool {
	switch name {
	case "script", "noscript", "iframe", "object", "embed",
		"style",
		"head", "meta", "link", "base",
		"input", "select", "button", "option", "textarea":
		return true
	}
	return false
}

// HiddenAttrs is isHidden evaluated over a raw attribute list before any
// tree is built. Like Node.Attr, only the first occurrence of a repeated
// attribute name counts.
func HiddenAttrs(attrs []dom.Attr) bool {
	typeSeen, styleSeen := false, false
	for _, a := range attrs {
		switch a.Name {
		case "hidden":
			return true
		case "type":
			if !typeSeen {
				typeSeen = true
				if strings.EqualFold(a.Value, "hidden") {
					return true
				}
			}
		case "style":
			if !styleSeen {
				styleSeen = true
				style := strings.ToLower(strings.ReplaceAll(a.Value, " ", ""))
				if strings.Contains(style, "display:none") || strings.Contains(style, "visibility:hidden") {
					return true
				}
			}
		}
	}
	return false
}

// ContentBearing reports elements that DropEmpty keeps even when
// childless (the exported form of the contentBearing set).
func ContentBearing(name string) bool { return contentBearing[name] }

// dropEmpty removes one generation of empty leaf elements and reports
// whether anything was removed.
func dropEmpty(n *dom.Node) bool {
	removed := false
	var walk func(*dom.Node)
	walk = func(m *dom.Node) {
		var doomed []*dom.Node
		for _, c := range m.Children {
			walk(c)
			if c.Type == dom.ElementNode && len(c.Children) == 0 && !contentBearing[c.Data] {
				doomed = append(doomed, c)
			}
		}
		for _, d := range doomed {
			m.RemoveChild(d)
			removed = true
		}
	}
	walk(n)
	return removed
}
