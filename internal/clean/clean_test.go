package clean

import (
	"strings"
	"testing"

	"objectrunner/internal/dom"
)

func TestCleanDropsScriptsStylesComments(t *testing.T) {
	doc := Page(`<html><head><style>.x{}</style></head><body>
		<script>var a=1;</script>
		<!-- comment -->
		<div>keep</div>
		<noscript>ns</noscript>
	</body></html>`)
	for _, tag := range []string{"script", "style", "noscript", "head"} {
		if doc.FindOne(tag) != nil {
			t.Errorf("%s survived cleaning", tag)
		}
	}
	var comments int
	doc.Walk(func(n *dom.Node) bool {
		if n.Type == dom.CommentNode {
			comments++
		}
		return true
	})
	if comments != 0 {
		t.Error("comment survived cleaning")
	}
	if doc.FindOne("div") == nil {
		t.Error("content div was lost")
	}
}

func TestCleanDropsHidden(t *testing.T) {
	doc := Page(`<body>
		<div style="display: none">hidden1</div>
		<div style="visibility:hidden">hidden2</div>
		<div hidden>hidden3</div>
		<div>visible</div>
	</body>`)
	divs := doc.Find("div")
	if len(divs) != 1 {
		t.Fatalf("got %d divs, want 1 (only visible)", len(divs))
	}
	if divs[0].Text() != "visible" {
		t.Errorf("wrong div survived: %q", divs[0].Text())
	}
}

func TestCleanDropsForms(t *testing.T) {
	doc := Page(`<body><form><input type="text"><select><option>a</option></select><button>go</button></form><div>data</div></body>`)
	for _, tag := range []string{"input", "select", "option", "button"} {
		if doc.FindOne(tag) != nil {
			t.Errorf("%s survived cleaning", tag)
		}
	}
}

func TestCleanDropsEmptyRecursively(t *testing.T) {
	doc := Page(`<body><div><span><em></em></span></div><p>keep</p></body>`)
	// em is empty -> span becomes empty -> div becomes empty.
	if doc.FindOne("div") != nil || doc.FindOne("span") != nil || doc.FindOne("em") != nil {
		t.Error("empty chain not pruned")
	}
	if doc.FindOne("p") == nil {
		t.Error("non-empty p pruned")
	}
}

func TestCleanKeepsImagesAndCells(t *testing.T) {
	doc := Page(`<body><table><tr><td></td><td>x</td></tr></table><img src="a.png"></body>`)
	if got := len(doc.Find("td")); got != 2 {
		t.Errorf("got %d td, want 2 (empty cells keep geometry)", got)
	}
	if doc.FindOne("img") == nil {
		t.Error("img pruned")
	}
}

func TestCleanNormalizesSpace(t *testing.T) {
	doc := Page("<body><div>  a  \n\t b  </div>\n\n<div>c</div></body>")
	divs := doc.Find("div")
	if len(divs) != 2 {
		t.Fatalf("got %d divs", len(divs))
	}
	if divs[0].OwnText() != "a b" {
		t.Errorf("text = %q", divs[0].OwnText())
	}
	// Whitespace-only text nodes between divs must be gone.
	body := doc.FindOne("body")
	for _, c := range body.Children {
		if c.Type == dom.TextNode {
			t.Errorf("whitespace text node survived: %q", c.Data)
		}
	}
}

func TestCleanKeepAttrs(t *testing.T) {
	opts := DefaultOptions()
	opts.KeepAttrs = []string{"class"}
	doc := Clean(dom.Parse(`<body><div class="a" onclick="x()" data-id="9">t</div></body>`), opts)
	div := doc.FindOne("div")
	if _, ok := div.Attr("onclick"); ok {
		t.Error("onclick kept")
	}
	if _, ok := div.Attr("data-id"); ok {
		t.Error("data-id kept")
	}
	if v, _ := div.Attr("class"); v != "a" {
		t.Error("class lost")
	}
}

func TestCleanZeroOptionsIsNoop(t *testing.T) {
	src := `<body><script>x</script><!--c--><div style="display:none">h</div></body>`
	doc := Clean(dom.Parse(src), Options{})
	if doc.FindOne("script") == nil {
		t.Error("zero options removed script")
	}
	if len(doc.Find("div")) != 1 {
		t.Error("zero options removed hidden div")
	}
}

func TestCleanRealisticPage(t *testing.T) {
	src := `<!DOCTYPE html><html><head><title>Concerts</title>
	<meta charset="utf-8"><link rel="stylesheet" href="s.css">
	<script src="app.js"></script></head>
	<body>
	<div id="header"><img src="logo.png"><input type="search"></div>
	<ul id="events">
	  <li><div>Coldplay</div><div>Saturday August 8, 2010 8:00pm</div></li>
	  <li><div>Muse</div><div>Friday June 19 7:00p</div></li>
	</ul>
	<div id="footer"><!-- tracking --><script>track()</script></div>
	</body></html>`
	doc := Page(src)
	if got := len(doc.Find("li")); got != 2 {
		t.Errorf("got %d li, want 2", got)
	}
	if !strings.Contains(doc.OuterHTML(), "Coldplay") {
		t.Error("record content lost")
	}
	if strings.Contains(doc.OuterHTML(), "track()") {
		t.Error("script content survived")
	}
}
