package dom

import (
	"strings"
	"testing"
)

// tokens drains the tokenizer over src.
func tokens(src string) []Token {
	z := NewTokenizer(src)
	var out []Token
	for {
		tok, ok := z.Next()
		if !ok {
			return out
		}
		out = append(out, tok)
	}
}

// TestRawTextCloseTagWithAttributes: some generators emit close tags with
// stray attributes (`</script foo="bar">`). The raw-text scanner must
// still recognize the end tag and not swallow the rest of the document.
func TestRawTextCloseTagWithAttributes(t *testing.T) {
	toks := tokens(`<script>var x = 1;</script foo="bar"><p>after</p>`)
	var sawEnd, sawAfter bool
	for _, tok := range toks {
		if tok.Type == EndTagToken && tok.Data == "script" {
			sawEnd = true
		}
		if tok.Type == TextToken && tok.Data == "after" {
			sawAfter = true
		}
	}
	if !sawEnd {
		t.Errorf("no script end tag in %+v", toks)
	}
	if !sawAfter {
		t.Errorf("content after attribute-bearing close tag lost: %+v", toks)
	}
}

// TestRawTextUnterminatedAtEOF: a raw-text element that never closes must
// consume the rest of the input as text and terminate — no infinite loop,
// no lost tokenizer state on a following Next call.
func TestRawTextUnterminatedAtEOF(t *testing.T) {
	for _, tag := range []string{"script", "style", "textarea", "title"} {
		src := "<" + tag + ">unterminated content"
		toks := tokens(src)
		if len(toks) != 2 {
			t.Fatalf("%s: got %d tokens %+v, want start tag + text", tag, len(toks), toks)
		}
		if toks[0].Type != StartTagToken || toks[0].Data != tag {
			t.Errorf("%s: first token = %+v", tag, toks[0])
		}
		if toks[1].Type != TextToken || toks[1].Data != "unterminated content" {
			t.Errorf("%s: second token = %+v", tag, toks[1])
		}
		z := NewTokenizer(src)
		z.Next()
		z.Next()
		if tok, ok := z.Next(); ok {
			t.Errorf("%s: token after EOF: %+v", tag, tok)
		}
	}
}

// TestRawTextCaseInsensitiveClose: the end-tag scan must match
// case-insensitively (`</SCRIPT>` closes `<script>`).
func TestRawTextCaseInsensitiveClose(t *testing.T) {
	toks := tokens(`<script>x</SCRIPT><b>y</b>`)
	var sawEnd bool
	for _, tok := range toks {
		if tok.Type == EndTagToken && tok.Data == "script" {
			sawEnd = true
		}
	}
	if !sawEnd {
		t.Errorf("uppercase close tag not recognized: %+v", toks)
	}
}

// TestEntityDecodingInAttributes: character references inside attribute
// values decode like text content, in both quoting styles.
func TestEntityDecodingInAttributes(t *testing.T) {
	toks := tokens(`<a href="?a=1&amp;b=2" title='&lt;hi&gt;' alt=x&#33;>t</a>`)
	if len(toks) == 0 || toks[0].Type != StartTagToken {
		t.Fatalf("tokens = %+v", toks)
	}
	want := map[string]string{
		"href":  "?a=1&b=2",
		"title": "<hi>",
		"alt":   "x!",
	}
	got := map[string]string{}
	for _, a := range toks[0].Attrs {
		got[a.Name] = a.Value
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("attr %s = %q, want %q", name, got[name], w)
		}
	}
}

// TestEntityUnknownPreserved: unknown or malformed references stay
// verbatim rather than corrupting surrounding text.
func TestEntityUnknownPreserved(t *testing.T) {
	for _, tc := range []string{"&bogus;", "&#x;", "&;", "& loose", "&#99999999;"} {
		if got := DecodeEntities(tc); got != tc {
			t.Errorf("DecodeEntities(%q) = %q, want unchanged", tc, got)
		}
	}
}

// TestRawTextFalseEndPrefix: an end-tag-looking run for a different
// element inside raw text is content, not a close.
func TestRawTextFalseEndPrefix(t *testing.T) {
	toks := tokens(`<script>if (a</b) {}</script>`)
	var text strings.Builder
	for _, tok := range toks {
		if tok.Type == TextToken {
			text.WriteString(tok.Data)
		}
	}
	if got := text.String(); got != "if (a</b) {}" {
		t.Errorf("script text = %q", got)
	}
}
