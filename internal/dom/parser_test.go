package dom

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSimple(t *testing.T) {
	doc := Parse(`<html><body><div class="a">hello</div></body></html>`)
	divs := doc.Find("div")
	if len(divs) != 1 {
		t.Fatalf("got %d divs, want 1", len(divs))
	}
	if got := divs[0].Text(); got != "hello" {
		t.Errorf("Text = %q, want %q", got, "hello")
	}
	if got := divs[0].AttrOr("class", ""); got != "a" {
		t.Errorf("class = %q, want %q", got, "a")
	}
	if got := divs[0].Path(); got != "html/body/div" {
		t.Errorf("Path = %q, want html/body/div", got)
	}
}

func TestParseUnclosedLi(t *testing.T) {
	doc := Parse(`<ul><li>one<li>two<li>three</ul>`)
	lis := doc.Find("li")
	if len(lis) != 3 {
		t.Fatalf("got %d li, want 3", len(lis))
	}
	for i, want := range []string{"one", "two", "three"} {
		if got := lis[i].Text(); got != want {
			t.Errorf("li[%d] = %q, want %q", i, got, want)
		}
	}
	// All lis must be siblings, not nested.
	for _, li := range lis {
		if li.Parent == nil || li.Parent.Data != "ul" {
			t.Errorf("li %q parent = %v, want ul", li.Text(), li.Parent)
		}
	}
}

func TestParseUnclosedP(t *testing.T) {
	doc := Parse(`<body><p>first<p>second<div>block</div></body>`)
	ps := doc.Find("p")
	if len(ps) != 2 {
		t.Fatalf("got %d p, want 2", len(ps))
	}
	div := doc.FindOne("div")
	if div == nil || div.Parent.Data != "body" {
		t.Errorf("div should be a child of body (open p implicitly closed)")
	}
}

func TestParseTableRepair(t *testing.T) {
	doc := Parse(`<table><tr><td>a<td>b<tr><td>c</table>`)
	trs := doc.Find("tr")
	if len(trs) != 2 {
		t.Fatalf("got %d tr, want 2", len(trs))
	}
	if got := len(trs[0].Find("td")); got != 2 {
		t.Errorf("row 0 has %d td, want 2", got)
	}
	if got := len(trs[1].Find("td")); got != 1 {
		t.Errorf("row 1 has %d td, want 1", got)
	}
}

func TestParseStrayEndTag(t *testing.T) {
	doc := Parse(`<div>a</span></div><span>b</span>`)
	if got := len(doc.Find("div")); got != 1 {
		t.Errorf("got %d div, want 1", got)
	}
	spans := doc.Find("span")
	if len(spans) != 1 {
		t.Fatalf("got %d span, want 1", len(spans))
	}
	if got := spans[0].Text(); got != "b" {
		t.Errorf("span text = %q, want b", got)
	}
}

func TestParseVoidElements(t *testing.T) {
	doc := Parse(`<div>a<br>b<img src="x.png">c</div>`)
	div := doc.FindOne("div")
	if div == nil {
		t.Fatal("no div")
	}
	if got := div.Text(); got != "a b c" {
		t.Errorf("text = %q, want %q", got, "a b c")
	}
	br := doc.FindOne("br")
	if br == nil || len(br.Children) != 0 {
		t.Error("br should exist and have no children")
	}
}

func TestParseScriptRawText(t *testing.T) {
	doc := Parse(`<script>if (a < b) { x("<div>"); }</script><p>after</p>`)
	script := doc.FindOne("script")
	if script == nil {
		t.Fatal("no script element")
	}
	if !strings.Contains(script.OwnText(), `x("<div>")`) {
		t.Errorf("script content mangled: %q", script.OwnText())
	}
	if got := len(doc.Find("div")); got != 0 {
		t.Errorf("div inside script leaked into tree: %d", got)
	}
	if p := doc.FindOne("p"); p == nil || p.Text() != "after" {
		t.Error("content after script lost")
	}
}

func TestParseComments(t *testing.T) {
	doc := Parse(`<div><!-- a comment -->text</div>`)
	var comments int
	doc.Walk(func(n *Node) bool {
		if n.Type == CommentNode {
			comments++
		}
		return true
	})
	if comments != 1 {
		t.Errorf("got %d comments, want 1", comments)
	}
}

func TestParseDoctype(t *testing.T) {
	doc := Parse(`<!DOCTYPE html><html><body>x</body></html>`)
	if doc.Children[0].Type != DoctypeNode {
		t.Error("doctype not first child")
	}
}

func TestParseEntities(t *testing.T) {
	doc := Parse(`<div title="a &amp; b">Fish &amp; Chips &lt;3 &#65;&#x42;</div>`)
	div := doc.FindOne("div")
	if got := div.Text(); got != "Fish & Chips <3 AB" {
		t.Errorf("text = %q", got)
	}
	if got := div.AttrOr("title", ""); got != "a & b" {
		t.Errorf("title = %q", got)
	}
}

func TestParseEnsureStructure(t *testing.T) {
	doc := Parse(`<div>bare</div>`)
	body := doc.FindOne("body")
	if body == nil {
		t.Fatal("no body synthesized")
	}
	if div := body.FindOne("div"); div == nil {
		t.Error("div not moved under body")
	}
}

func TestParseAttributesVariants(t *testing.T) {
	doc := Parse(`<input type=text name='n' disabled value="v">`)
	in := doc.FindOne("input")
	if in == nil {
		t.Fatal("no input")
	}
	for _, tc := range []struct{ name, want string }{
		{"type", "text"}, {"name", "n"}, {"disabled", ""}, {"value", "v"},
	} {
		if got := in.AttrOr(tc.name, "missing"); got != tc.want {
			t.Errorf("attr %s = %q, want %q", tc.name, got, tc.want)
		}
	}
}

func TestParseSelfClosing(t *testing.T) {
	doc := Parse(`<div><span/>after</div>`)
	span := doc.FindOne("span")
	if span == nil {
		t.Fatal("no span")
	}
	if len(span.Children) != 0 {
		t.Errorf("self-closed span has %d children", len(span.Children))
	}
}

func TestParseNestedLists(t *testing.T) {
	doc := Parse(`<ul><li>a<ul><li>a1<li>a2</ul><li>b</ul>`)
	outer := doc.FindOne("ul")
	topLis := 0
	for _, c := range outer.Children {
		if c.IsElement("li") {
			topLis++
		}
	}
	if topLis != 2 {
		t.Errorf("outer ul has %d direct li, want 2", topLis)
	}
	inner := outer.FindOne("li").FindOne("ul")
	if inner == nil {
		t.Fatal("nested ul not under first li")
	}
	if got := len(inner.Find("li")); got != 2 {
		t.Errorf("inner ul has %d li, want 2", got)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	const src = `<html><body><div class="x"><span>a</span><span>b</span></div></body></html>`
	doc := Parse(src)
	out := doc.OuterHTML()
	if out != src {
		t.Errorf("round trip changed document:\n in: %s\nout: %s", src, out)
	}
}

func TestSerializeEscaping(t *testing.T) {
	n := NewElement("div", Attr{Name: "title", Value: `a"b&c`})
	n.AppendChild(NewText("x<y&z"))
	got := n.OuterHTML()
	want := `<div title="a&quot;b&amp;c">x&lt;y&amp;z</div>`
	if got != want {
		t.Errorf("got %s, want %s", got, want)
	}
}

// TestParseSerializeIdempotent checks the fixpoint property: parsing the
// serialization of a parsed document yields the same serialization.
func TestParseSerializeIdempotent(t *testing.T) {
	inputs := []string{
		`<ul><li>one<li>two</ul>`,
		`<table><tr><td>a<td>b</table>`,
		`<p>x<p>y<div>z</div>`,
		`<div>a<br>b</div>`,
		`bare text &amp; more`,
		`<div><!--c--><span>s</span></div>`,
	}
	for _, in := range inputs {
		once := Parse(in).OuterHTML()
		twice := Parse(once).OuterHTML()
		if once != twice {
			t.Errorf("not idempotent for %q:\n once: %s\ntwice: %s", in, once, twice)
		}
	}
}

func TestDecodeEntitiesQuick(t *testing.T) {
	// Property: decoding text with no ampersand is the identity.
	f := func(s string) bool {
		clean := strings.ReplaceAll(s, "&", "")
		return DecodeEntities(clean) == clean
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeEntitiesRoundTrip(t *testing.T) {
	f := func(s string) bool {
		return DecodeEntities(EncodeEntities(s)) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNodeManipulation(t *testing.T) {
	parent := NewElement("div")
	a := NewElement("span")
	b := NewElement("em")
	parent.AppendChild(a)
	parent.AppendChild(b)
	if len(parent.Children) != 2 || a.Parent != parent {
		t.Fatal("append failed")
	}
	parent.RemoveChild(a)
	if len(parent.Children) != 1 || parent.Children[0] != b || a.Parent != nil {
		t.Error("remove failed")
	}
	// Removing a non-child is a no-op.
	parent.RemoveChild(a)
	if len(parent.Children) != 1 {
		t.Error("double remove changed tree")
	}
}

func TestNodeAttrs(t *testing.T) {
	n := NewElement("div")
	n.SetAttr("class", "x")
	n.SetAttr("Class", "y") // case-insensitive replace
	if v, _ := n.Attr("CLASS"); v != "y" {
		t.Errorf("attr = %q, want y", v)
	}
	if len(n.Attrs) != 1 {
		t.Errorf("got %d attrs, want 1", len(n.Attrs))
	}
	n.DelAttr("class")
	if _, ok := n.Attr("class"); ok {
		t.Error("attr not deleted")
	}
}

func TestClone(t *testing.T) {
	doc := Parse(`<div a="1"><span>x</span></div>`)
	div := doc.FindOne("div")
	cp := div.Clone()
	if cp.Parent != nil {
		t.Error("clone should be detached")
	}
	cp.FindOne("span").Children[0].Data = "changed"
	if div.Text() != "x" {
		t.Error("clone mutation affected original")
	}
	if cp.AttrOr("a", "") != "1" {
		t.Error("clone lost attributes")
	}
}

func TestIndexPath(t *testing.T) {
	doc := Parse(`<html><body><div>a</div><div><span>b</span></div></body></html>`)
	spans := doc.Find("span")
	if len(spans) != 1 {
		t.Fatal("no span")
	}
	p := spans[0].IndexPath()
	// Walk the path and verify it lands back at the span.
	cur := doc
	for _, i := range p {
		cur = cur.Children[i]
	}
	if cur != spans[0] {
		t.Errorf("IndexPath %v does not resolve to the span", p)
	}
}

func TestTextCollapsing(t *testing.T) {
	doc := Parse("<div>  a \n\t b   <span> c </span></div>")
	if got := doc.FindOne("div").Text(); got != "a b c" {
		t.Errorf("text = %q, want %q", got, "a b c")
	}
}

func TestAttrSignature(t *testing.T) {
	a := NewElement("div", Attr{Name: "b", Value: "2"}, Attr{Name: "a", Value: "1"})
	b := NewElement("div", Attr{Name: "a", Value: "1"}, Attr{Name: "b", Value: "2"})
	if a.AttrSignature() != b.AttrSignature() {
		t.Error("signature should be order-insensitive")
	}
	if NewElement("div").AttrSignature() != "" {
		t.Error("empty attrs should have empty signature")
	}
}

func TestCountNodes(t *testing.T) {
	doc := Parse(`<div><span>a</span><span>b</span></div>`)
	// document + html + body + div + 2 span + 2 text = 8
	if got := doc.CountNodes(); got != 8 {
		t.Errorf("CountNodes = %d, want 8", got)
	}
}

func TestParseDegenerateInputs(t *testing.T) {
	for _, src := range []string{"", "<", "<>", "</", "</x", "<!", "<!--", "<div", "&", "&#;", "&#xzz;", "text only"} {
		doc := Parse(src)
		if doc == nil {
			t.Fatalf("Parse(%q) returned nil", src)
		}
		_ = doc.OuterHTML() // must not panic
	}
}

func TestParseNeverPanicsQuick(t *testing.T) {
	f := func(s string) bool {
		doc := Parse(s)
		return doc != nil && doc.Type == DocumentNode
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFindOnePrunes(t *testing.T) {
	doc := Parse(`<div id="first"><div id="second"></div></div>`)
	first := doc.FindOne("div")
	if first.AttrOr("id", "") != "first" {
		t.Errorf("FindOne returned %q", first.AttrOr("id", ""))
	}
}

func TestDepthAndRoot(t *testing.T) {
	doc := Parse(`<html><body><div><span>x</span></div></body></html>`)
	span := doc.FindOne("span")
	if got := span.Depth(); got != 4 { // document > html > body > div > span
		t.Errorf("Depth = %d, want 4", got)
	}
	if span.Root() != doc {
		t.Error("Root did not return document")
	}
}

func TestTitleRawText(t *testing.T) {
	doc := Parse(`<head><title>A & B < C</title></head><body>x</body>`)
	title := doc.FindOne("title")
	if title == nil {
		t.Fatal("no title")
	}
	if got := title.OwnText(); got != "A & B < C" {
		t.Errorf("title = %q", got)
	}
}
