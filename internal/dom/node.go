// Package dom implements a from-scratch HTML document object model with an
// error-recovering parser, in the spirit of the JTidy pre-processing step
// used by ObjectRunner. It depends only on the standard library.
//
// The model is deliberately small: a Node is either an element, a text
// chunk, a comment, or a doctype, and carries an ordered child list. The
// parser (see parser.go) repairs the malformation classes that dominate
// real template-generated pages: unclosed <li>/<p>/<td>, stray end tags,
// mis-nested inline elements, and raw-text islands (<script>, <style>).
package dom

import (
	"sort"
	"strings"
)

// NodeType discriminates the kinds of DOM nodes.
type NodeType int

const (
	// ElementNode is an HTML element such as <div>.
	ElementNode NodeType = iota
	// TextNode is a run of character data.
	TextNode
	// CommentNode is an HTML comment.
	CommentNode
	// DoctypeNode is a <!DOCTYPE ...> declaration.
	DoctypeNode
	// DocumentNode is the synthetic root of a parsed page.
	DocumentNode
)

// String returns a short human-readable name for the node type.
func (t NodeType) String() string {
	switch t {
	case ElementNode:
		return "element"
	case TextNode:
		return "text"
	case CommentNode:
		return "comment"
	case DoctypeNode:
		return "doctype"
	case DocumentNode:
		return "document"
	}
	return "unknown"
}

// Attr is a single name/value attribute pair on an element.
type Attr struct {
	Name  string
	Value string
}

// Node is a single node of the DOM tree. Element nodes use Data for the
// (lower-cased) tag name; text and comment nodes use Data for their
// content.
type Node struct {
	Type     NodeType
	Data     string
	Attrs    []Attr
	Parent   *Node
	Children []*Node
}

// NewElement returns a detached element node with the given tag name.
func NewElement(tag string, attrs ...Attr) *Node {
	return &Node{Type: ElementNode, Data: strings.ToLower(tag), Attrs: attrs}
}

// NewText returns a detached text node.
func NewText(text string) *Node {
	return &Node{Type: TextNode, Data: text}
}

// AppendChild attaches child as the last child of n, reparenting it.
func (n *Node) AppendChild(child *Node) {
	child.Parent = n
	n.Children = append(n.Children, child)
}

// RemoveChild detaches child from n. It is a no-op when child is not a
// direct child of n.
func (n *Node) RemoveChild(child *Node) {
	for i, c := range n.Children {
		if c == child {
			n.Children = append(n.Children[:i], n.Children[i+1:]...)
			child.Parent = nil
			return
		}
	}
}

// Attr returns the value of the named attribute and whether it is present.
// Attribute names are matched case-insensitively.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if strings.EqualFold(a.Name, name) {
			return a.Value, true
		}
	}
	return "", false
}

// AttrOr returns the value of the named attribute, or def when absent.
func (n *Node) AttrOr(name, def string) string {
	if v, ok := n.Attr(name); ok {
		return v
	}
	return def
}

// SetAttr sets (or replaces) the named attribute.
func (n *Node) SetAttr(name, value string) {
	for i, a := range n.Attrs {
		if strings.EqualFold(a.Name, name) {
			n.Attrs[i].Value = value
			return
		}
	}
	n.Attrs = append(n.Attrs, Attr{Name: name, Value: value})
}

// DelAttr removes the named attribute if present.
func (n *Node) DelAttr(name string) {
	for i, a := range n.Attrs {
		if strings.EqualFold(a.Name, name) {
			n.Attrs = append(n.Attrs[:i], n.Attrs[i+1:]...)
			return
		}
	}
}

// IsElement reports whether n is an element with the given tag name.
func (n *Node) IsElement(tag string) bool {
	return n.Type == ElementNode && n.Data == tag
}

// Text returns the concatenation of all descendant text nodes, with runs of
// whitespace collapsed to single spaces and the result trimmed.
func (n *Node) Text() string {
	var sb strings.Builder
	n.appendText(&sb)
	return CollapseSpace(sb.String())
}

func (n *Node) appendText(sb *strings.Builder) {
	if n.Type == TextNode {
		sb.WriteString(n.Data)
		sb.WriteByte(' ')
		return
	}
	for _, c := range n.Children {
		c.appendText(sb)
	}
}

// OwnText returns the concatenation of the direct text children of n only.
func (n *Node) OwnText() string {
	var sb strings.Builder
	for _, c := range n.Children {
		if c.Type == TextNode {
			sb.WriteString(c.Data)
			sb.WriteByte(' ')
		}
	}
	return CollapseSpace(sb.String())
}

// CollapseSpace collapses consecutive whitespace into single spaces and
// trims the ends.
func CollapseSpace(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

// Path returns the slash-separated tag path from the document root to n,
// e.g. "html/body/div/span". Text nodes contribute the pseudo-tag "#text".
func (n *Node) Path() string {
	var parts []string
	for cur := n; cur != nil && cur.Type != DocumentNode; cur = cur.Parent {
		switch cur.Type {
		case ElementNode:
			parts = append(parts, cur.Data)
		case TextNode:
			parts = append(parts, "#text")
		case CommentNode:
			parts = append(parts, "#comment")
		case DoctypeNode:
			parts = append(parts, "#doctype")
		}
	}
	// Reverse into root-first order.
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, "/")
}

// IndexPath returns the path from root to n as child indexes, which
// uniquely identifies the node position within its document.
func (n *Node) IndexPath() []int {
	var idx []int
	for cur := n; cur.Parent != nil; cur = cur.Parent {
		pos := 0
		for i, c := range cur.Parent.Children {
			if c == cur {
				pos = i
				break
			}
		}
		idx = append(idx, pos)
	}
	for i, j := 0, len(idx)-1; i < j; i, j = i+1, j-1 {
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx
}

// Depth returns the number of ancestors of n.
func (n *Node) Depth() int {
	d := 0
	for cur := n.Parent; cur != nil; cur = cur.Parent {
		d++
	}
	return d
}

// Root returns the topmost ancestor of n (the document node for parsed
// pages).
func (n *Node) Root() *Node {
	cur := n
	for cur.Parent != nil {
		cur = cur.Parent
	}
	return cur
}

// Walk calls fn for n and every descendant in document order. Returning
// false from fn prunes the walk below that node.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Find returns all descendant elements (including n itself) with the given
// tag name, in document order.
func (n *Node) Find(tag string) []*Node {
	var out []*Node
	n.Walk(func(m *Node) bool {
		if m.IsElement(tag) {
			out = append(out, m)
		}
		return true
	})
	return out
}

// FindOne returns the first descendant element with the given tag name, or
// nil when none exists.
func (n *Node) FindOne(tag string) *Node {
	var found *Node
	n.Walk(func(m *Node) bool {
		if found != nil {
			return false
		}
		if m.IsElement(tag) {
			found = m
			return false
		}
		return true
	})
	return found
}

// TextNodes returns all descendant text nodes in document order.
func (n *Node) TextNodes() []*Node {
	var out []*Node
	n.Walk(func(m *Node) bool {
		if m.Type == TextNode {
			out = append(out, m)
		}
		return true
	})
	return out
}

// Clone returns a deep copy of the subtree rooted at n. The copy is
// detached (its Parent is nil).
func (n *Node) Clone() *Node {
	cp := &Node{Type: n.Type, Data: n.Data}
	if len(n.Attrs) > 0 {
		cp.Attrs = make([]Attr, len(n.Attrs))
		copy(cp.Attrs, n.Attrs)
	}
	for _, c := range n.Children {
		cc := c.Clone()
		cc.Parent = cp
		cp.Children = append(cp.Children, cc)
	}
	return cp
}

// CountNodes returns the number of nodes in the subtree rooted at n.
func (n *Node) CountNodes() int {
	count := 0
	n.Walk(func(*Node) bool { count++; return true })
	return count
}

// AttrSignature returns a stable signature of the element's attribute
// names and values (sorted by name), used to re-identify structurally
// equivalent blocks across pages of a source.
func (n *Node) AttrSignature() string {
	if len(n.Attrs) == 0 {
		return ""
	}
	pairs := make([]string, 0, len(n.Attrs))
	for _, a := range n.Attrs {
		pairs = append(pairs, strings.ToLower(a.Name)+"="+a.Value)
	}
	sort.Strings(pairs)
	return strings.Join(pairs, ";")
}
