package dom

import (
	"strconv"
	"strings"
	"unicode"
)

// TokenType discriminates lexical tokens produced by the HTML tokenizer.
type TokenType int

const (
	// StartTagToken is an opening tag such as <div class="x">.
	StartTagToken TokenType = iota
	// EndTagToken is a closing tag such as </div>.
	EndTagToken
	// SelfClosingToken is a self-closed tag such as <br/>.
	SelfClosingToken
	// TextToken is a run of character data between tags.
	TextToken
	// CommentToken is an HTML comment.
	CommentToken
	// DoctypeToken is a <!DOCTYPE ...> declaration.
	DoctypeToken
)

// Token is a single lexical token of an HTML document.
type Token struct {
	Type  TokenType
	Data  string // tag name (lower-cased) or text/comment content
	Attrs []Attr
}

// Tokenizer splits raw HTML into a stream of Tokens. It performs entity
// decoding on text and attribute values and lower-cases tag and attribute
// names. It is resilient: malformed markup degrades to text rather than
// failing.
type Tokenizer struct {
	src string
	pos int
	// rawTag, when non-empty, indicates the tokenizer is inside a raw-text
	// element (script/style/textarea) and must scan for its end tag only.
	rawTag string
}

// NewTokenizer returns a Tokenizer over the given HTML source.
func NewTokenizer(src string) *Tokenizer {
	return &Tokenizer{src: src}
}

// isRawTextTag reports elements whose content is scanned verbatim until
// the matching end tag. A switch compiles to direct comparisons — no map
// hash on the per-tag hot path.
func isRawTextTag(name string) bool {
	switch name {
	case "script", "style", "textarea", "title":
		return true
	}
	return false
}

// Next returns the next token and true, or a zero token and false at the
// end of input.
func (z *Tokenizer) Next() (Token, bool) {
	if z.pos >= len(z.src) {
		return Token{}, false
	}
	if z.rawTag != "" {
		return z.nextRawText()
	}
	if z.src[z.pos] == '<' {
		if tok, ok := z.nextTag(); ok {
			return tok, true
		}
		// A lone '<' that does not begin a valid construct is text.
		start := z.pos
		z.pos++
		return Token{Type: TextToken, Data: z.src[start:z.pos]}, true
	}
	return z.nextText()
}

func (z *Tokenizer) nextText() (Token, bool) {
	start := z.pos
	for z.pos < len(z.src) && z.src[z.pos] != '<' {
		z.pos++
	}
	return Token{Type: TextToken, Data: DecodeEntities(z.src[start:z.pos])}, true
}

func (z *Tokenizer) nextRawText() (Token, bool) {
	end := "</" + z.rawTag
	low := strings.ToLower(z.src[z.pos:])
	idx := strings.Index(low, end)
	if idx < 0 {
		// Unterminated raw element: consume everything.
		text := z.src[z.pos:]
		z.pos = len(z.src)
		z.rawTag = ""
		return Token{Type: TextToken, Data: text}, true
	}
	if idx == 0 {
		// At the end tag itself; emit it.
		tag := z.rawTag
		z.rawTag = ""
		// Advance past "</tag" then to '>'.
		z.pos += len(end)
		for z.pos < len(z.src) && z.src[z.pos] != '>' {
			z.pos++
		}
		if z.pos < len(z.src) {
			z.pos++
		}
		return Token{Type: EndTagToken, Data: tag}, true
	}
	text := z.src[z.pos : z.pos+idx]
	z.pos += idx
	return Token{Type: TextToken, Data: text}, true
}

// nextTag attempts to lex a tag, comment or doctype at the current '<'.
func (z *Tokenizer) nextTag() (Token, bool) {
	s := z.src
	i := z.pos
	if strings.HasPrefix(s[i:], "<!--") {
		end := strings.Index(s[i+4:], "-->")
		if end < 0 {
			z.pos = len(s)
			return Token{Type: CommentToken, Data: s[i+4:]}, true
		}
		z.pos = i + 4 + end + 3
		return Token{Type: CommentToken, Data: s[i+4 : i+4+end]}, true
	}
	if len(s) > i+1 && (s[i+1] == '!' || s[i+1] == '?') {
		// Doctype or processing instruction: skip to '>'.
		end := strings.IndexByte(s[i:], '>')
		if end < 0 {
			z.pos = len(s)
			return Token{Type: DoctypeToken, Data: s[i+2:]}, true
		}
		z.pos = i + end + 1
		return Token{Type: DoctypeToken, Data: s[i+2 : i+end]}, true
	}
	closing := false
	j := i + 1
	if j < len(s) && s[j] == '/' {
		closing = true
		j++
	}
	// A tag name must start with a letter.
	if j >= len(s) || !isLetter(s[j]) {
		return Token{}, false
	}
	nameStart := j
	for j < len(s) && isNameChar(s[j]) {
		j++
	}
	name := strings.ToLower(s[nameStart:j])
	tok := Token{Data: name}
	if closing {
		tok.Type = EndTagToken
		// Skip to '>'.
		for j < len(s) && s[j] != '>' {
			j++
		}
		if j < len(s) {
			j++
		}
		z.pos = j
		return tok, true
	}
	tok.Type = StartTagToken
	// Parse attributes.
	for {
		for j < len(s) && isSpace(s[j]) {
			j++
		}
		if j >= len(s) {
			break
		}
		if s[j] == '>' {
			j++
			break
		}
		if s[j] == '/' {
			// Possibly self-closing.
			k := j + 1
			for k < len(s) && isSpace(s[k]) {
				k++
			}
			if k < len(s) && s[k] == '>' {
				tok.Type = SelfClosingToken
				j = k + 1
				break
			}
			j++
			continue
		}
		// Attribute name.
		aStart := j
		for j < len(s) && !isSpace(s[j]) && s[j] != '=' && s[j] != '>' && s[j] != '/' {
			j++
		}
		aName := strings.ToLower(s[aStart:j])
		for j < len(s) && isSpace(s[j]) {
			j++
		}
		aVal := ""
		if j < len(s) && s[j] == '=' {
			j++
			for j < len(s) && isSpace(s[j]) {
				j++
			}
			if j < len(s) && (s[j] == '"' || s[j] == '\'') {
				q := s[j]
				j++
				vStart := j
				for j < len(s) && s[j] != q {
					j++
				}
				aVal = s[vStart:j]
				if j < len(s) {
					j++
				}
			} else {
				vStart := j
				for j < len(s) && !isSpace(s[j]) && s[j] != '>' {
					j++
				}
				aVal = s[vStart:j]
			}
		}
		if aName != "" {
			tok.Attrs = append(tok.Attrs, Attr{Name: aName, Value: DecodeEntities(aVal)})
		}
	}
	z.pos = j
	if tok.Type == StartTagToken && isRawTextTag(name) {
		z.rawTag = name
	}
	return tok, true
}

func isLetter(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z'
}

func isNameChar(b byte) bool {
	return isLetter(b) || b >= '0' && b <= '9' || b == '-' || b == '_' || b == ':'
}

func isSpace(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '\r' || b == '\f'
}

// namedEntities maps the HTML entities that appear in template-generated
// pages with any frequency. Unknown entities are left verbatim.
var namedEntities = map[string]string{
	"amp": "&", "lt": "<", "gt": ">", "quot": "\"", "apos": "'",
	"nbsp": " ", "copy": "©", "reg": "®", "trade": "™",
	"hellip": "…", "mdash": "—", "ndash": "–",
	"lsquo": "‘", "rsquo": "’", "ldquo": "“", "rdquo": "”",
	"bull": "•", "middot": "·", "laquo": "«", "raquo": "»",
	"times": "×", "divide": "÷", "deg": "°", "plusmn": "±",
	"frac12": "½", "frac14": "¼", "eacute": "é", "egrave": "è",
	"agrave": "à", "ccedil": "ç", "uuml": "ü", "ouml": "ö",
	"auml": "ä", "euro": "€", "pound": "£", "yen": "¥",
	"cent": "¢", "sect": "§", "para": "¶",
}

// DecodeEntities replaces HTML character references (&amp;, &#65;, &#x41;)
// with their character values. Unrecognised references are preserved
// verbatim.
func DecodeEntities(s string) string {
	if !strings.ContainsRune(s, '&') {
		return s
	}
	var sb strings.Builder
	sb.Grow(len(s))
	for i := 0; i < len(s); {
		if s[i] != '&' {
			sb.WriteByte(s[i])
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi < 0 || semi > 12 {
			sb.WriteByte(s[i])
			i++
			continue
		}
		ref := s[i+1 : i+semi]
		if strings.HasPrefix(ref, "#") {
			num := ref[1:]
			base := 10
			if strings.HasPrefix(num, "x") || strings.HasPrefix(num, "X") {
				num = num[1:]
				base = 16
			}
			if v, err := strconv.ParseInt(num, base, 32); err == nil && v > 0 && v <= unicode.MaxRune {
				sb.WriteRune(rune(v))
				i += semi + 1
				continue
			}
		} else if rep, ok := namedEntities[ref]; ok {
			sb.WriteString(rep)
			i += semi + 1
			continue
		}
		sb.WriteByte(s[i])
		i++
	}
	return sb.String()
}

// EncodeEntities escapes the characters that must be escaped when
// serializing text content back to HTML.
func EncodeEntities(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// EncodeAttr escapes an attribute value for double-quoted serialization.
func EncodeAttr(s string) string {
	r := strings.NewReplacer("&", "&amp;", "\"", "&quot;")
	return r.Replace(s)
}
