package dom

import (
	"strconv"
	"strings"
	"unicode"
)

// TokenType discriminates lexical tokens produced by the HTML tokenizer.
type TokenType int

const (
	// StartTagToken is an opening tag such as <div class="x">.
	StartTagToken TokenType = iota
	// EndTagToken is a closing tag such as </div>.
	EndTagToken
	// SelfClosingToken is a self-closed tag such as <br/>.
	SelfClosingToken
	// TextToken is a run of character data between tags.
	TextToken
	// CommentToken is an HTML comment.
	CommentToken
	// DoctypeToken is a <!DOCTYPE ...> declaration.
	DoctypeToken
)

// Token is a single lexical token of an HTML document.
type Token struct {
	Type  TokenType
	Data  string // tag name (lower-cased) or text/comment content
	Attrs []Attr
}

// Tokenizer splits raw HTML into a stream of Tokens. It performs entity
// decoding on text and attribute values and lower-cases tag and attribute
// names. It is resilient: malformed markup degrades to text rather than
// failing.
type Tokenizer struct {
	src string
	pos int
	// rawTag, when non-empty, indicates the tokenizer is inside a raw-text
	// element (script/style/textarea) and must scan for its end tag only.
	rawTag string
}

// NewTokenizer returns a Tokenizer over the given HTML source.
func NewTokenizer(src string) *Tokenizer {
	return &Tokenizer{src: src}
}

// isRawTextTag reports elements whose content is scanned verbatim until
// the matching end tag. A switch compiles to direct comparisons — no map
// hash on the per-tag hot path.
func isRawTextTag(name string) bool {
	switch name {
	case "script", "style", "textarea", "title":
		return true
	}
	return false
}

// Next returns the next token and true, or a zero token and false at the
// end of input. The returned token owns its Attrs slice — callers (the
// tree parser) may retain it.
func (z *Tokenizer) Next() (Token, bool) {
	var tok Token
	if !z.NextInto(&tok) {
		return Token{}, false
	}
	return tok, true
}

// NextInto lexes the next token into *tok, reusing tok.Attrs' backing
// array so a caller that recycles one Token across the whole document
// pays no per-tag allocation. The written Attrs (and any strings shared
// with the source) are only valid until the next NextInto call on the
// same Token. Returns false at end of input, leaving *tok zeroed except
// for the recycled Attrs backing.
func (z *Tokenizer) NextInto(tok *Token) bool {
	attrs := tok.Attrs[:0]
	*tok = Token{Attrs: attrs}
	if z.pos >= len(z.src) {
		return false
	}
	if z.rawTag != "" {
		z.nextRawText(tok)
		return true
	}
	if z.src[z.pos] == '<' {
		if z.nextTag(tok) {
			return true
		}
		// A lone '<' that does not begin a valid construct is text.
		start := z.pos
		z.pos++
		tok.Type = TextToken
		tok.Data = z.src[start:z.pos]
		return true
	}
	z.nextText(tok)
	return true
}

func (z *Tokenizer) nextText(tok *Token) {
	start := z.pos
	for z.pos < len(z.src) && z.src[z.pos] != '<' {
		z.pos++
	}
	tok.Type = TextToken
	tok.Data = DecodeEntities(z.src[start:z.pos])
}

func (z *Tokenizer) nextRawText(tok *Token) {
	end := "</" + z.rawTag
	low := strings.ToLower(z.src[z.pos:])
	idx := strings.Index(low, end)
	if idx < 0 {
		// Unterminated raw element: consume everything.
		text := z.src[z.pos:]
		z.pos = len(z.src)
		z.rawTag = ""
		tok.Type = TextToken
		tok.Data = text
		return
	}
	if idx == 0 {
		// At the end tag itself; emit it.
		tag := z.rawTag
		z.rawTag = ""
		// Advance past "</tag" then to '>'.
		z.pos += len(end)
		for z.pos < len(z.src) && z.src[z.pos] != '>' {
			z.pos++
		}
		if z.pos < len(z.src) {
			z.pos++
		}
		tok.Type = EndTagToken
		tok.Data = tag
		return
	}
	text := z.src[z.pos : z.pos+idx]
	z.pos += idx
	tok.Type = TextToken
	tok.Data = text
}

// nextTag attempts to lex a tag, comment or doctype at the current '<',
// writing into *tok. It reports false (without consuming input or
// touching *tok beyond Attrs truncation) when the '<' starts none of
// those constructs.
func (z *Tokenizer) nextTag(tok *Token) bool {
	s := z.src
	i := z.pos
	if strings.HasPrefix(s[i:], "<!--") {
		end := strings.Index(s[i+4:], "-->")
		tok.Type = CommentToken
		if end < 0 {
			z.pos = len(s)
			tok.Data = s[i+4:]
			return true
		}
		z.pos = i + 4 + end + 3
		tok.Data = s[i+4 : i+4+end]
		return true
	}
	if len(s) > i+1 && (s[i+1] == '!' || s[i+1] == '?') {
		// Doctype or processing instruction: skip to '>'.
		end := strings.IndexByte(s[i:], '>')
		tok.Type = DoctypeToken
		if end < 0 {
			z.pos = len(s)
			tok.Data = s[i+2:]
			return true
		}
		z.pos = i + end + 1
		tok.Data = s[i+2 : i+end]
		return true
	}
	closing := false
	j := i + 1
	if j < len(s) && s[j] == '/' {
		closing = true
		j++
	}
	// A tag name must start with a letter.
	if j >= len(s) || !isLetter(s[j]) {
		return false
	}
	nameStart := j
	for j < len(s) && isNameChar(s[j]) {
		j++
	}
	name := lowerASCII(s[nameStart:j])
	tok.Data = name
	if closing {
		tok.Type = EndTagToken
		// Skip to '>'.
		for j < len(s) && s[j] != '>' {
			j++
		}
		if j < len(s) {
			j++
		}
		z.pos = j
		return true
	}
	tok.Type = StartTagToken
	// Parse attributes.
	for {
		for j < len(s) && isSpace(s[j]) {
			j++
		}
		if j >= len(s) {
			break
		}
		if s[j] == '>' {
			j++
			break
		}
		if s[j] == '/' {
			// Possibly self-closing.
			k := j + 1
			for k < len(s) && isSpace(s[k]) {
				k++
			}
			if k < len(s) && s[k] == '>' {
				tok.Type = SelfClosingToken
				j = k + 1
				break
			}
			j++
			continue
		}
		// Attribute name.
		aStart := j
		for j < len(s) && !isSpace(s[j]) && s[j] != '=' && s[j] != '>' && s[j] != '/' {
			j++
		}
		aName := lowerASCII(s[aStart:j])
		for j < len(s) && isSpace(s[j]) {
			j++
		}
		aVal := ""
		if j < len(s) && s[j] == '=' {
			j++
			for j < len(s) && isSpace(s[j]) {
				j++
			}
			if j < len(s) && (s[j] == '"' || s[j] == '\'') {
				q := s[j]
				j++
				vStart := j
				for j < len(s) && s[j] != q {
					j++
				}
				aVal = s[vStart:j]
				if j < len(s) {
					j++
				}
			} else {
				vStart := j
				for j < len(s) && !isSpace(s[j]) && s[j] != '>' {
					j++
				}
				aVal = s[vStart:j]
			}
		}
		if aName != "" {
			tok.Attrs = append(tok.Attrs, Attr{Name: aName, Value: DecodeEntities(aVal)})
		}
	}
	z.pos = j
	if tok.Type == StartTagToken && isRawTextTag(name) {
		z.rawTag = name
	}
	return true
}

// lowerASCII lower-cases s, returning s itself (no allocation) when it
// is already free of ASCII upper-case letters — the overwhelmingly
// common case for tag and attribute names in generated markup.
func lowerASCII(s string) string {
	for i := 0; i < len(s); i++ {
		if b := s[i]; b >= 'A' && b <= 'Z' {
			return strings.ToLower(s)
		}
	}
	return s
}

func isLetter(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z'
}

func isNameChar(b byte) bool {
	return isLetter(b) || b >= '0' && b <= '9' || b == '-' || b == '_' || b == ':'
}

func isSpace(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '\r' || b == '\f'
}

// namedEntities maps the HTML entities that appear in template-generated
// pages with any frequency. Unknown entities are left verbatim.
var namedEntities = map[string]string{
	"amp": "&", "lt": "<", "gt": ">", "quot": "\"", "apos": "'",
	"nbsp": " ", "copy": "©", "reg": "®", "trade": "™",
	"hellip": "…", "mdash": "—", "ndash": "–",
	"lsquo": "‘", "rsquo": "’", "ldquo": "“", "rdquo": "”",
	"bull": "•", "middot": "·", "laquo": "«", "raquo": "»",
	"times": "×", "divide": "÷", "deg": "°", "plusmn": "±",
	"frac12": "½", "frac14": "¼", "eacute": "é", "egrave": "è",
	"agrave": "à", "ccedil": "ç", "uuml": "ü", "ouml": "ö",
	"auml": "ä", "euro": "€", "pound": "£", "yen": "¥",
	"cent": "¢", "sect": "§", "para": "¶",
}

// DecodeEntities replaces HTML character references (&amp;, &#65;, &#x41;)
// with their character values. Unrecognised references are preserved
// verbatim.
func DecodeEntities(s string) string {
	if !strings.ContainsRune(s, '&') {
		return s
	}
	var sb strings.Builder
	sb.Grow(len(s))
	for i := 0; i < len(s); {
		if s[i] != '&' {
			sb.WriteByte(s[i])
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi < 0 || semi > 12 {
			sb.WriteByte(s[i])
			i++
			continue
		}
		ref := s[i+1 : i+semi]
		if strings.HasPrefix(ref, "#") {
			num := ref[1:]
			base := 10
			if strings.HasPrefix(num, "x") || strings.HasPrefix(num, "X") {
				num = num[1:]
				base = 16
			}
			if v, err := strconv.ParseInt(num, base, 32); err == nil && v > 0 && v <= unicode.MaxRune {
				sb.WriteRune(rune(v))
				i += semi + 1
				continue
			}
		} else if rep, ok := namedEntities[ref]; ok {
			sb.WriteString(rep)
			i += semi + 1
			continue
		}
		sb.WriteByte(s[i])
		i++
	}
	return sb.String()
}

// EncodeEntities escapes the characters that must be escaped when
// serializing text content back to HTML.
func EncodeEntities(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// EncodeAttr escapes an attribute value for double-quoted serialization.
func EncodeAttr(s string) string {
	r := strings.NewReplacer("&", "&amp;", "\"", "&quot;")
	return r.Replace(s)
}
