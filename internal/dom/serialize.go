package dom

import "strings"

// OuterHTML serializes the subtree rooted at n back to HTML text. Void
// elements are emitted without end tags; raw-text elements are emitted
// without entity escaping.
func (n *Node) OuterHTML() string {
	var sb strings.Builder
	serialize(&sb, n)
	return sb.String()
}

// InnerHTML serializes the children of n.
func (n *Node) InnerHTML() string {
	var sb strings.Builder
	for _, c := range n.Children {
		serialize(&sb, c)
	}
	return sb.String()
}

func serialize(sb *strings.Builder, n *Node) {
	switch n.Type {
	case DocumentNode:
		for _, c := range n.Children {
			serialize(sb, c)
		}
	case DoctypeNode:
		sb.WriteString("<!")
		sb.WriteString(n.Data)
		sb.WriteString(">")
	case CommentNode:
		sb.WriteString("<!--")
		sb.WriteString(n.Data)
		sb.WriteString("-->")
	case TextNode:
		if n.Parent != nil && n.Parent.Type == ElementNode && isRawTextTag(n.Parent.Data) {
			sb.WriteString(n.Data)
		} else {
			sb.WriteString(EncodeEntities(n.Data))
		}
	case ElementNode:
		sb.WriteByte('<')
		sb.WriteString(n.Data)
		for _, a := range n.Attrs {
			sb.WriteByte(' ')
			sb.WriteString(a.Name)
			sb.WriteString(`="`)
			sb.WriteString(EncodeAttr(a.Value))
			sb.WriteByte('"')
		}
		sb.WriteByte('>')
		if isVoidElement(n.Data) {
			return
		}
		for _, c := range n.Children {
			serialize(sb, c)
		}
		sb.WriteString("</")
		sb.WriteString(n.Data)
		sb.WriteByte('>')
	}
}
