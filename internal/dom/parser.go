package dom

// This file implements an error-recovering HTML tree builder. It plays the
// role of the JTidy step in the ObjectRunner pipeline: template-generated
// pages are frequently ill-formed (unclosed <li>, <p>, table cells, stray
// end tags), and downstream wrapper inference requires a well-formed tree.

// isVoidElement reports tags that never take children and need no end
// tag. Consulted for every start tag; a switch keeps it off the map-hash
// path.
func isVoidElement(name string) bool {
	switch name {
	case "area", "base", "br", "col", "embed", "hr", "img", "input",
		"link", "meta", "param", "source", "track", "wbr":
		return true
	}
	return false
}

// autoClose maps a tag to the set of open tags it implicitly closes when it
// starts. This mirrors the HTML5 "implied end tags" rules for the elements
// that matter in data-rich pages.
var autoClose = map[string]map[string]bool{
	"li":       {"li": true},
	"p":        {"p": true},
	"dt":       {"dt": true, "dd": true},
	"dd":       {"dt": true, "dd": true},
	"tr":       {"tr": true, "td": true, "th": true},
	"td":       {"td": true, "th": true},
	"th":       {"td": true, "th": true},
	"thead":    {"tr": true, "td": true, "th": true, "tbody": true},
	"tbody":    {"tr": true, "td": true, "th": true, "thead": true},
	"tfoot":    {"tr": true, "td": true, "th": true, "tbody": true},
	"option":   {"option": true},
	"optgroup": {"option": true, "optgroup": true},
}

// blockClosesP reports block-level tags whose start implies closing an
// open <p>.
func blockClosesP(name string) bool {
	switch name {
	case "address", "article", "aside", "blockquote", "div", "dl",
		"fieldset", "footer", "form", "h1", "h2", "h3", "h4", "h5", "h6",
		"header", "hr", "main", "nav", "ol", "pre", "section", "table", "ul":
		return true
	}
	return false
}

// VoidElement reports tags that never take children and need no end tag
// — the exported form of isVoidElement for callers (the streaming
// tokenizer) that replay the parser's stack discipline without a tree.
func VoidElement(name string) bool { return isVoidElement(name) }

// ClosesImplicitly reports whether an opening <next> tag implies closing
// a currently open <open> element. It combines the parser's autoClose
// and blockClosesP rules into one predicate; because no tag appears in
// both rule sets, popping open elements while ClosesImplicitly holds is
// exactly equivalent to the parser's two sequential repair loops.
func ClosesImplicitly(next, open string) bool {
	if close, ok := autoClose[next]; ok && close[open] {
		return true
	}
	return open == "p" && blockClosesP(next)
}

// Parse builds a DOM tree from raw HTML. It never fails: malformed input
// yields the best-effort repaired tree. The returned node has type
// DocumentNode.
func Parse(src string) *Node {
	doc := &Node{Type: DocumentNode, Data: "#document"}
	z := NewTokenizer(src)
	// The open-element stack; stack[0] is the document.
	stack := []*Node{doc}
	top := func() *Node { return stack[len(stack)-1] }

	openTag := func(tok Token) {
		name := tok.Data
		// Implied end tags.
		if close, ok := autoClose[name]; ok {
			for len(stack) > 1 && close[top().Data] {
				stack = stack[:len(stack)-1]
			}
		}
		if blockClosesP(name) {
			for len(stack) > 1 && top().Data == "p" {
				stack = stack[:len(stack)-1]
			}
		}
		el := &Node{Type: ElementNode, Data: name, Attrs: tok.Attrs}
		top().AppendChild(el)
		if tok.Type == StartTagToken && !isVoidElement(name) {
			stack = append(stack, el)
		}
	}

	closeTag := func(name string) {
		if isVoidElement(name) {
			return
		}
		// Find the matching open element.
		for i := len(stack) - 1; i >= 1; i-- {
			if stack[i].Data == name {
				stack = stack[:i]
				return
			}
		}
		// Stray end tag: ignore.
	}

	for {
		tok, ok := z.Next()
		if !ok {
			break
		}
		switch tok.Type {
		case TextToken:
			if tok.Data == "" {
				continue
			}
			top().AppendChild(&Node{Type: TextNode, Data: tok.Data})
		case CommentToken:
			top().AppendChild(&Node{Type: CommentNode, Data: tok.Data})
		case DoctypeToken:
			top().AppendChild(&Node{Type: DoctypeNode, Data: tok.Data})
		case StartTagToken, SelfClosingToken:
			openTag(tok)
		case EndTagToken:
			closeTag(tok.Data)
		}
	}
	ensureStructure(doc)
	return doc
}

// ensureStructure guarantees the document has html and body elements, so
// downstream code can rely on a stable skeleton (the paper's running
// example templates always include <html><body>).
func ensureStructure(doc *Node) {
	html := doc.FindOne("html")
	if html == nil {
		html = NewElement("html")
		// Move everything except doctype under html.
		var keep []*Node
		for _, c := range doc.Children {
			if c.Type == DoctypeNode {
				keep = append(keep, c)
			} else {
				c.Parent = html
				html.Children = append(html.Children, c)
			}
		}
		doc.Children = append(keep, html)
		html.Parent = doc
	}
	if html.FindOne("body") == nil {
		body := NewElement("body")
		var keep []*Node
		for _, c := range html.Children {
			if c.Type == ElementNode && (c.Data == "head" || c.Data == "body") {
				keep = append(keep, c)
			} else {
				c.Parent = body
				body.Children = append(body.Children, c)
			}
		}
		html.Children = append(keep, body)
		body.Parent = html
	}
}
