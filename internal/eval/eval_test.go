package eval

import (
	"testing"

	"objectrunner/internal/sod"
)

var attrs = []AttrSpec{
	{Name: "artist"},
	{Name: "date"},
	{Name: "address", Optional: true},
}

func golden1() [][]Object {
	return [][]Object{
		{
			{"artist": {"Metallica"}, "date": {"May 11, 2010"}, "address": {"237 West 42nd street"}},
			{"artist": {"Madonna"}, "date": {"May 29, 2010"}, "address": {"131 W 55th St"}},
		},
		{
			{"artist": {"Muse"}, "date": {"June 19, 2010"}, "address": {"4 Penn Plaza"}},
		},
	}
}

func perfectExtraction() [][]Record {
	var out [][]Record
	for _, page := range golden1() {
		var recs []Record
		for _, g := range page {
			r := make(Record)
			for k, v := range g {
				r[k] = append([]string{}, v...)
			}
			recs = append(recs, r)
		}
		out = append(out, recs)
	}
	return out
}

func TestEvaluatePerfect(t *testing.T) {
	res := EvaluateSource("s", attrs, golden1(), perfectExtraction(), IdentityMapping(attrs))
	if res.No != 3 || res.Oc != 3 || res.Op != 0 || res.Oi != 0 {
		t.Fatalf("counts = %+v", res)
	}
	if res.Pc() != 1 || res.Pp() != 1 {
		t.Errorf("Pc=%v Pp=%v", res.Pc(), res.Pp())
	}
	if res.Ac != 3 || res.ATotal != 3 {
		t.Errorf("attrs = %s", res.FormatAttrRow())
	}
	if !res.OptionalPresent {
		t.Error("optional present not detected")
	}
	if res.Incomplete() {
		t.Error("perfect source flagged incomplete")
	}
}

func TestEvaluateMergedFields(t *testing.T) {
	// Artist and date extracted together in one field: partial.
	ext := [][]Record{
		{
			{"artist": {"Metallica May 11, 2010"}, "date": {"May 11, 2010"}, "address": {"237 West 42nd street"}},
			{"artist": {"Madonna May 29, 2010"}, "date": {"May 29, 2010"}, "address": {"131 W 55th St"}},
		},
		{
			{"artist": {"Muse June 19, 2010"}, "date": {"June 19, 2010"}, "address": {"4 Penn Plaza"}},
		},
	}
	res := EvaluateSource("s", attrs, golden1(), ext, IdentityMapping(attrs))
	if res.Oc != 0 || res.Op != 3 || res.Oi != 0 {
		t.Fatalf("counts = Oc=%d Op=%d Oi=%d", res.Oc, res.Op, res.Oi)
	}
	if res.Attr["artist"] != AttrPartial {
		t.Errorf("artist = %s", res.Attr["artist"])
	}
	if res.Pc() != 0 || res.Pp() != 1 {
		t.Errorf("Pc=%v Pp=%v", res.Pc(), res.Pp())
	}
	if !res.Incomplete() {
		t.Error("merged-field source not flagged incomplete")
	}
}

func TestEvaluateIncorrect(t *testing.T) {
	// Artist field holds unrelated values: incorrect.
	ext := [][]Record{
		{
			{"artist": {"XYZ"}, "date": {"May 11, 2010"}, "address": {"237 West 42nd street"}},
			{"artist": {"QRS"}, "date": {"May 29, 2010"}, "address": {"131 W 55th St"}},
		},
		{
			{"artist": {"TUV"}, "date": {"June 19, 2010"}, "address": {"4 Penn Plaza"}},
		},
	}
	res := EvaluateSource("s", attrs, golden1(), ext, IdentityMapping(attrs))
	if res.Oi != 3 {
		t.Fatalf("Oi = %d, want 3", res.Oi)
	}
	if res.Attr["artist"] != AttrIncorrect {
		t.Errorf("artist = %s", res.Attr["artist"])
	}
}

func TestEvaluateMissingExtraction(t *testing.T) {
	res := EvaluateSource("s", attrs, golden1(), nil, IdentityMapping(attrs))
	if res.No != 3 || res.Oi != 3 {
		t.Errorf("counts = %+v", res)
	}
}

func TestEvaluateOptionalAbsent(t *testing.T) {
	g := [][]Object{{
		{"artist": {"Metallica"}, "date": {"May 11, 2010"}},
		{"artist": {"Muse"}, "date": {"June 19, 2010"}},
	}}
	ext := [][]Record{{
		{"artist": {"Metallica"}, "date": {"May 11, 2010"}},
		{"artist": {"Muse"}, "date": {"June 19, 2010"}},
	}}
	res := EvaluateSource("s", attrs, g, ext, IdentityMapping(attrs))
	if res.OptionalPresent {
		t.Error("optional flagged present")
	}
	if res.ATotal != 2 {
		t.Errorf("ATotal = %d, want 2 (address absent)", res.ATotal)
	}
	if res.Attr["address"] != AttrAbsent {
		t.Errorf("address = %s", res.Attr["address"])
	}
	if res.Oc != 2 {
		t.Errorf("Oc = %d", res.Oc)
	}
}

func TestEvaluateSetValues(t *testing.T) {
	bAttrs := []AttrSpec{{Name: "title"}, {Name: "authors", Set: true}}
	g := [][]Object{{
		{"title": {"Good Omens"}, "authors": {"Neil Gaiman", "Terry Pratchett"}},
	}}
	exact := [][]Record{{
		{"title": {"Good Omens"}, "authors": {"Terry Pratchett", "Neil Gaiman"}},
	}}
	res := EvaluateSource("s", bAttrs, g, exact, IdentityMapping(bAttrs))
	if res.Oc != 1 {
		t.Errorf("set order should not matter: %+v", res)
	}
	// A comma/"and"-joined list is the trivial flat rendering of a set:
	// splitting it is part of labeling, so it scores exact.
	merged := [][]Record{{
		{"title": {"Good Omens"}, "authors": {"Neil Gaiman and Terry Pratchett"}},
	}}
	res = EvaluateSource("s", bAttrs, g, merged, IdentityMapping(bAttrs))
	if res.Oc != 1 {
		t.Errorf("joined set should be exact after splitting: Oc=%d Op=%d Oi=%d", res.Oc, res.Op, res.Oi)
	}
	// Merged with foreign content stays partial.
	noisy := [][]Record{{
		{"title": {"Good Omens"}, "authors": {"Neil Gaiman and Terry Pratchett hardcover"}},
	}}
	res = EvaluateSource("s", bAttrs, g, noisy, IdentityMapping(bAttrs))
	if res.Op != 1 {
		t.Errorf("noisy set should be partial: Oc=%d Op=%d Oi=%d", res.Oc, res.Op, res.Oi)
	}
}

func TestBuildMappingLabelsAnonymousFields(t *testing.T) {
	g := golden1()
	ext := [][]Record{
		{
			{"f1": {"Metallica"}, "f2": {"May 11, 2010"}, "f3": {"237 West 42nd street"}},
			{"f1": {"Madonna"}, "f2": {"May 29, 2010"}, "f3": {"131 W 55th St"}},
		},
		{
			{"f1": {"Muse"}, "f2": {"June 19, 2010"}, "f3": {"4 Penn Plaza"}},
		},
	}
	m := BuildMapping(attrs, g, ext)
	if m["artist"] != "f1" || m["date"] != "f2" || m["address"] != "f3" {
		t.Errorf("mapping = %v", m)
	}
	res := EvaluateSource("s", attrs, g, ext, m)
	if res.Oc != 3 {
		t.Errorf("mapped evaluation Oc = %d", res.Oc)
	}
}

func TestBuildMappingPrefersExact(t *testing.T) {
	g := [][]Object{{{"artist": {"Metallica"}}}}
	ext := [][]Record{{
		{"fa": {"Metallica"}, "fb": {"Metallica live tonight"}},
	}}
	m := BuildMapping([]AttrSpec{{Name: "artist"}}, g, ext)
	if m["artist"] != "fa" {
		t.Errorf("mapping = %v, want exact field fa", m)
	}
}

func TestRecordsFromInstances(t *testing.T) {
	bt := sod.MustParse(`tuple { title: instanceOf(BookTitle), authors: set(author: instanceOf(Author))+ }`)
	authors := bt.Fields[1]
	inst := &sod.Instance{Type: bt, Children: []*sod.Instance{
		sod.NewValue(bt.Fields[0], "Good Omens"),
		{Type: authors, Children: []*sod.Instance{
			sod.NewValue(authors.Elem, "Neil Gaiman"),
			sod.NewValue(authors.Elem, "Terry Pratchett"),
		}},
	}}
	recs := RecordsFromInstances([]*sod.Instance{inst})
	if len(recs) != 1 {
		t.Fatal("no record")
	}
	if got := recs[0]["title"]; len(got) != 1 || got[0] != "Good Omens" {
		t.Errorf("title = %v", got)
	}
	if got := recs[0]["author"]; len(got) != 2 {
		t.Errorf("authors = %v", got)
	}
}

func TestDomainAggregation(t *testing.T) {
	d := DomainResult{Domain: "concerts", Sources: []SourceResult{
		{No: 100, Oc: 80, Op: 10, Oi: 10, Ac: 3, ATotal: 3},
		{No: 50, Oc: 50, Ac: 2, Ap: 1, ATotal: 3},
	}}
	no, oc, op, oi := d.Totals()
	if no != 150 || oc != 130 || op != 10 || oi != 10 {
		t.Errorf("totals = %d %d %d %d", no, oc, op, oi)
	}
	if pc := d.Pc(); pc < 0.86 || pc > 0.87 {
		t.Errorf("Pc = %v", pc)
	}
	if pp := d.Pp(); pp < 0.93 || pp > 0.94 {
		t.Errorf("Pp = %v", pp)
	}
	c, p, i := d.ClassificationRates()
	if c+p+i < 0.99 || c+p+i > 1.01 {
		t.Errorf("rates = %v %v %v", c, p, i)
	}
	// Source 2 has Ap>0: half the sources incomplete.
	if got := d.IncompleteRate(); got != 0.5 {
		t.Errorf("incomplete rate = %v", got)
	}
}

func TestValuesMatchEdgeCases(t *testing.T) {
	if valuesMatch(nil, []string{"x"}) != matchNone {
		t.Error("empty golden matched")
	}
	if valuesMatch([]string{"x"}, nil) != matchNone {
		t.Error("empty extraction matched")
	}
	if valuesMatch([]string{"The Beatles"}, []string{"the  beatles"}) != matchExact {
		t.Error("normalization failed")
	}
	// Split case: golden value covered by concatenation of two fields.
	if valuesMatch([]string{"Neil Gaiman"}, []string{"Neil", "Gaiman"}) == matchNone {
		t.Error("split coverage not detected")
	}
}
