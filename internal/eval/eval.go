// Package eval implements the paper's evaluation methodology (§IV.B):
// extracted data is scored against a golden standard, attributes and
// objects are classified as correct, partially correct or incorrect, and
// the two precision measures Pc = Oc/No and Pp = (Oc+Op)/No are computed.
// Anonymous-field extractors (ExAlg, RoadRunner) are labelled
// post-hoc against the golden standard, simulating the manual labeling
// their pipelines require.
package eval

import (
	"fmt"
	"sort"
	"strings"

	"objectrunner/internal/recognize"
	"objectrunner/internal/sod"
	"objectrunner/internal/template"
)

// AttrSpec describes one attribute of the golden schema.
type AttrSpec struct {
	Name     string
	Optional bool
	Set      bool
}

// Object is a golden-standard object: attribute name to values (sets have
// several values).
type Object map[string][]string

// Record is an extracted record: field id to values. ObjectRunner emits
// attribute names as field ids; the baselines emit opaque slot ids.
type Record map[string][]string

// RecordsFromInstances converts ObjectRunner instances into evaluation
// records keyed by attribute name.
func RecordsFromInstances(objs []*sod.Instance) []Record {
	out := make([]Record, 0, len(objs))
	for _, o := range objs {
		rec := make(Record)
		var walk func(in *sod.Instance)
		walk = func(in *sod.Instance) {
			if in.Leaf() {
				rec[in.Type.Name] = append(rec[in.Type.Name], in.Value)
				return
			}
			for _, c := range in.Children {
				walk(c)
			}
		}
		walk(o)
		out = append(out, rec)
	}
	return out
}

// AttrStatus classifies one attribute of one source (paper §IV.B).
type AttrStatus int

const (
	// AttrAbsent means the (optional) attribute does not appear in the
	// source; it leaves the denominators.
	AttrAbsent AttrStatus = iota
	// AttrCorrect: the extracted values for it are correct.
	AttrCorrect
	// AttrPartial: values of several attributes extracted together, or
	// values of one attribute spread over separate fields.
	AttrPartial
	// AttrIncorrect: the extracted values mix distinct attributes of the
	// implicit schema.
	AttrIncorrect
)

// String renders the status.
func (s AttrStatus) String() string {
	switch s {
	case AttrAbsent:
		return "absent"
	case AttrCorrect:
		return "correct"
	case AttrPartial:
		return "partial"
	}
	return "incorrect"
}

// SourceResult aggregates one source's evaluation (one row of Table I).
type SourceResult struct {
	Source string
	// OptionalPresent reports whether the schema's optional attribute
	// appears in this source.
	OptionalPresent bool
	// Attr statuses by attribute name.
	Attr map[string]AttrStatus
	// Ac/Ap/Ai over ATotal present attributes.
	Ac, Ap, Ai, ATotal int
	// Object counts: No golden objects, of which Oc correct, Op
	// partially correct, Oi incorrect.
	No, Oc, Op, Oi int
}

// Pc is the precision for correctness Oc/No.
func (r SourceResult) Pc() float64 {
	if r.No == 0 {
		return 0
	}
	return float64(r.Oc) / float64(r.No)
}

// Pp is the precision for partial correctness (Oc+Op)/No.
func (r SourceResult) Pp() float64 {
	if r.No == 0 {
		return 0
	}
	return float64(r.Oc+r.Op) / float64(r.No)
}

// Incomplete reports whether the source was incompletely handled (any
// partially-correct or incorrect attribute) — Figure 6(b)'s measure.
func (r SourceResult) Incomplete() bool { return r.Ap > 0 || r.Ai > 0 }

// matchLevel grades how an extracted value set covers a golden value set.
type matchLevel int

const (
	matchNone matchLevel = iota
	matchPartial
	matchExact
)

func norm(s string) string { return recognize.NormalizePhrase(s) }

// valuesMatch grades extracted values w against golden values v.
func valuesMatch(golden, extracted []string) matchLevel {
	if len(golden) == 0 {
		return matchNone
	}
	if len(extracted) == 0 {
		return matchNone
	}
	gn := make([]string, len(golden))
	for i, g := range golden {
		gn[i] = norm(g)
	}
	en := make([]string, len(extracted))
	for i, e := range extracted {
		en[i] = norm(e)
	}
	// Exact: same multisets. Flat extractors return multi-valued
	// attributes as one comma/"and"-separated string; splitting it is
	// the trivial normalization a manual labeler performs, so it counts
	// as exact too.
	if sameMultiset(gn, en) {
		return matchExact
	}
	if len(golden) > 1 {
		var split []string
		for _, e := range extracted {
			for _, part := range template.SplitList(e) {
				split = append(split, norm(part))
			}
		}
		if sameMultiset(gn, split) {
			return matchExact
		}
	}
	// Partial: every golden value is contained in some extracted value
	// (merged with other data), or is covered by a concatenation /
	// fragment of extracted values (split across fields).
	covered := 0
	for _, g := range gn {
		ok := false
		for _, e := range en {
			if e == "" {
				continue
			}
			if strings.Contains(" "+e+" ", " "+g+" ") || strings.Contains(" "+g+" ", " "+e+" ") {
				ok = true
				break
			}
		}
		if ok {
			covered++
		}
	}
	if covered == len(gn) {
		return matchPartial
	}
	// The concatenation of all extracted values containing the golden
	// value also counts as split coverage.
	joined := strings.Join(en, " ")
	all := true
	for _, g := range gn {
		if !strings.Contains(" "+joined+" ", " "+g+" ") {
			all = false
			break
		}
	}
	if all {
		return matchPartial
	}
	return matchNone
}

func sameMultiset(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	ca := make(map[string]int)
	for _, x := range a {
		ca[x]++
	}
	for _, x := range b {
		ca[x]--
		if ca[x] < 0 {
			return false
		}
	}
	return true
}

// FieldMapping maps golden attributes to extracted field ids. Identity
// mapping applies when the extractor already labels fields (ObjectRunner).
type FieldMapping map[string]string

// IdentityMapping maps each attribute to itself.
func IdentityMapping(attrs []AttrSpec) FieldMapping {
	m := make(FieldMapping, len(attrs))
	for _, a := range attrs {
		m[a.Name] = a.Name
	}
	return m
}

// BuildMapping labels anonymous fields against the golden standard: for
// each attribute, the field whose values match it most often (exact
// matches weighted above partial ones) wins. This simulates the manual
// column-labeling step the unsupervised baselines require.
func BuildMapping(attrs []AttrSpec, golden [][]Object, extracted [][]Record) FieldMapping {
	type score struct {
		exact, partial int
	}
	scores := make(map[string]map[string]*score) // attr -> field -> score
	for _, a := range attrs {
		scores[a.Name] = make(map[string]*score)
	}
	for pi := range golden {
		if pi >= len(extracted) {
			break
		}
		n := len(golden[pi])
		if len(extracted[pi]) < n {
			n = len(extracted[pi])
		}
		for k := 0; k < n; k++ {
			g, r := golden[pi][k], extracted[pi][k]
			for _, a := range attrs {
				gv := g[a.Name]
				if len(gv) == 0 {
					continue
				}
				for field, ev := range r {
					lvl := valuesMatch(gv, ev)
					if lvl == matchNone {
						continue
					}
					s := scores[a.Name][field]
					if s == nil {
						s = &score{}
						scores[a.Name][field] = s
					}
					if lvl == matchExact {
						s.exact++
					} else {
						s.partial++
					}
				}
			}
		}
	}
	m := make(FieldMapping)
	for attr, fields := range scores {
		bestField, bestKey := "", [2]int{-1, -1}
		names := make([]string, 0, len(fields))
		for f := range fields {
			names = append(names, f)
		}
		sort.Strings(names)
		for _, f := range names {
			s := fields[f]
			key := [2]int{s.exact, s.partial}
			if key[0] > bestKey[0] || key[0] == bestKey[0] && key[1] > bestKey[1] {
				bestField, bestKey = f, key
			}
		}
		if bestField != "" {
			m[attr] = bestField
		}
	}
	return m
}

// EvaluateSource scores one source: golden objects and extracted records
// are given per page; the mapping translates attribute names to field
// ids.
func EvaluateSource(source string, attrs []AttrSpec, golden [][]Object, extracted [][]Record, mapping FieldMapping) SourceResult {
	res := SourceResult{Source: source, Attr: make(map[string]AttrStatus)}

	// Which attributes appear in the source at all?
	present := make(map[string]bool)
	for _, page := range golden {
		for _, obj := range page {
			for _, a := range attrs {
				if len(obj[a.Name]) > 0 {
					present[a.Name] = true
				}
			}
		}
	}
	for _, a := range attrs {
		if a.Optional && present[a.Name] {
			res.OptionalPresent = true
		}
	}

	// Per-attribute tallies across objects.
	type tally struct{ exact, partial, wrong, total int }
	tallies := make(map[string]*tally)
	for _, a := range attrs {
		tallies[a.Name] = &tally{}
	}

	for pi := range golden {
		var recs []Record
		if pi < len(extracted) {
			recs = extracted[pi]
		}
		used := make([]bool, len(recs))
		for _, gObj := range golden[pi] {
			res.No++
			// Greedy best-record assignment for this golden object.
			best, bestScore := -1, -1
			for ri, rec := range recs {
				if used[ri] {
					continue
				}
				s := pairScore(attrs, gObj, rec, mapping)
				if s > bestScore {
					best, bestScore = ri, s
				}
			}
			if best < 0 || bestScore <= 0 {
				res.Oi++
				for _, a := range attrs {
					if len(gObj[a.Name]) > 0 {
						t := tallies[a.Name]
						t.wrong++
						t.total++
					}
				}
				continue
			}
			used[best] = true
			rec := recs[best]
			objExact, objPartial := true, true
			for _, a := range attrs {
				gv := gObj[a.Name]
				if len(gv) == 0 {
					continue
				}
				t := tallies[a.Name]
				t.total++
				switch valuesMatch(gv, rec[mapping[a.Name]]) {
				case matchExact:
					t.exact++
				case matchPartial:
					t.partial++
					objExact = false
				default:
					t.wrong++
					objExact, objPartial = false, false
				}
			}
			switch {
			case objExact:
				res.Oc++
			case objPartial:
				res.Op++
			default:
				res.Oi++
			}
		}
	}

	// Attribute classification (thresholded aggregation of per-object
	// outcomes): correct when (almost) all values are exact; incorrect
	// when a substantial share mixes values of distinct attributes;
	// partially correct in between (merged or split values).
	for _, a := range attrs {
		t := tallies[a.Name]
		var st AttrStatus
		switch {
		case t.total == 0:
			st = AttrAbsent
		case float64(t.exact) >= 0.9*float64(t.total):
			st = AttrCorrect
		case float64(t.wrong) > 0.25*float64(t.total):
			st = AttrIncorrect
		default:
			st = AttrPartial
		}
		res.Attr[a.Name] = st
		switch st {
		case AttrCorrect:
			res.Ac++
			res.ATotal++
		case AttrPartial:
			res.Ap++
			res.ATotal++
		case AttrIncorrect:
			res.Ai++
			res.ATotal++
		}
	}
	return res
}

// pairScore ranks a candidate record for a golden object.
func pairScore(attrs []AttrSpec, g Object, r Record, mapping FieldMapping) int {
	s := 0
	for _, a := range attrs {
		gv := g[a.Name]
		if len(gv) == 0 {
			continue
		}
		switch valuesMatch(gv, r[mapping[a.Name]]) {
		case matchExact:
			s += 2
		case matchPartial:
			s++
		}
	}
	return s
}

// DomainResult aggregates sources of one domain (one row of Tables II
// and III).
type DomainResult struct {
	Domain  string
	Sources []SourceResult
}

// Totals sums the object counts.
func (d DomainResult) Totals() (no, oc, op, oi int) {
	for _, s := range d.Sources {
		no += s.No
		oc += s.Oc
		op += s.Op
		oi += s.Oi
	}
	return
}

// Pc is the domain-level precision for correctness.
func (d DomainResult) Pc() float64 {
	no, oc, _, _ := d.Totals()
	if no == 0 {
		return 0
	}
	return float64(oc) / float64(no)
}

// Pp is the domain-level precision for partial correctness.
func (d DomainResult) Pp() float64 {
	no, oc, op, _ := d.Totals()
	if no == 0 {
		return 0
	}
	return float64(oc+op) / float64(no)
}

// ClassificationRates returns the fractions of correct, partially correct
// and incorrect objects (Figure 6(a)).
func (d DomainResult) ClassificationRates() (c, p, i float64) {
	no, oc, op, oi := d.Totals()
	if no == 0 {
		return
	}
	return float64(oc) / float64(no), float64(op) / float64(no), float64(oi) / float64(no)
}

// IncompleteRate returns the fraction of incompletely managed sources
// (Figure 6(b)).
func (d DomainResult) IncompleteRate() float64 {
	if len(d.Sources) == 0 {
		return 0
	}
	n := 0
	for _, s := range d.Sources {
		if s.Incomplete() {
			n++
		}
	}
	return float64(n) / float64(len(d.Sources))
}

// FormatAttrRow renders "Ac/T Ap/T Ai/T" like Table I's attribute
// columns.
func (r SourceResult) FormatAttrRow() string {
	return fmt.Sprintf("%d/%d %d/%d %d/%d", r.Ac, r.ATotal, r.Ap, r.ATotal, r.Ai, r.ATotal)
}
