package sitegen

import "fmt"

// Name-part pools. Values are combined deterministically into entity
// pools large enough that sources overlap realistically (the Web's
// redundancy) without recognizers ever being complete.

var firstNames = []string{
	"James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
	"Linda", "David", "Elizabeth", "William", "Barbara", "Richard",
	"Susan", "Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen",
	"Christopher", "Nancy", "Daniel", "Lisa", "Matthew", "Betty",
	"Anthony", "Margaret", "Mark", "Sandra", "Donald", "Ashley",
	"Steven", "Kimberly", "Paul", "Emily", "Andrew", "Donna", "Joshua",
	"Michelle",
}

var lastNames = []string{
	"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
	"Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
	"Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson",
	"Martin", "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez",
	"Clark", "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen",
	"King", "Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores",
}

var bandAdjectives = []string{
	"Electric", "Velvet", "Crimson", "Silent", "Golden", "Midnight",
	"Burning", "Frozen", "Wandering", "Savage", "Neon", "Hollow",
	"Rising", "Falling", "Distant", "Broken", "Lunar", "Solar",
	"Eternal", "Phantom",
}

var bandNouns = []string{
	"Wolves", "Tigers", "Owls", "Ravens", "Engines", "Mirrors",
	"Shadows", "Rivers", "Mountains", "Flames", "Echoes", "Serpents",
	"Harbors", "Lanterns", "Pilots", "Prophets", "Dreamers", "Hunters",
	"Sparrows", "Giants",
}

var venueKinds = []string{
	"Ballroom", "Theater", "Hall", "Arena", "Lounge", "Club", "Garden",
	"Pavilion", "Stage", "Amphitheater",
}

var venuePrefixes = []string{
	"Grand", "Royal", "Crystal", "Empire", "Liberty", "Sunset",
	"Harbor", "Union", "Majestic", "Palace", "Apollo", "Orpheum",
	"Rialto", "Paramount", "Colonial", "Regent", "Cameo", "Strand",
	"Bluebird", "Starlight",
}

var streetNames = []string{
	"Main", "Oak", "Maple", "Cedar", "Elm", "Washington", "Lake",
	"Hill", "Park", "Pine", "Walnut", "Sunset", "Lincoln", "Jackson",
	"Church", "Spring", "Franklin", "River", "Willow", "Jefferson",
	"Delancey", "Bowery", "Houston", "Mercer", "Bleecker",
}

var streetKinds = []string{"Street", "Avenue", "Boulevard", "Road", "Lane", "Drive", "Plaza", "Place"}

var titleNouns = []string{
	"Garden", "Storm", "Journey", "Secret", "Empire", "Shadow", "Light",
	"Ocean", "Winter", "Summer", "Memory", "Silence", "Horizon",
	"Kingdom", "Mirror", "Forest", "Island", "Tower", "Bridge", "Letter",
}

var titleAdjectives = []string{
	"Lost", "Hidden", "Forgotten", "Endless", "Quiet", "Distant",
	"Golden", "Broken", "Invisible", "Burning", "Last", "First",
	"Secret", "Silent", "Wild", "Ancient", "Crimson", "Pale", "Bright",
	"Hollow",
}

var paperTopics = []string{
	"Query Optimization", "Data Integration", "Web Extraction",
	"Schema Matching", "Entity Resolution", "Stream Processing",
	"Index Structures", "Transaction Management", "Graph Mining",
	"Information Retrieval", "Distributed Storage", "Crowdsourcing",
	"Data Cleaning", "Keyword Search", "Record Linkage", "View Selection",
	"Workload Forecasting", "Cache Coherence", "Join Algorithms",
	"Sampling Methods",
}

var paperPatterns = []string{
	"Efficient %s over Large Corpora",
	"Scalable %s in the Cloud",
	"Towards Adaptive %s",
	"On the Complexity of %s",
	"%s with Probabilistic Guarantees",
	"A Unified Framework for %s",
	"Incremental %s for Evolving Data",
	"%s Revisited",
	"Learning-based %s",
	"Parallel %s on Modern Hardware",
}

var carBrands = []string{
	"Toyota Camry", "Honda Accord", "Ford Fusion", "Chevrolet Malibu",
	"Nissan Altima", "Hyundai Sonata", "Kia Optima", "Mazda 6",
	"Subaru Legacy", "Volkswagen Passat", "BMW 3 Series",
	"Mercedes C Class", "Audi A4", "Lexus ES", "Acura TLX",
	"Infiniti Q50", "Volvo S60", "Jaguar XE", "Tesla Model 3",
	"Dodge Charger", "Chrysler 300", "Buick Regal", "Cadillac ATS",
	"Lincoln MKZ", "Genesis G70", "Toyota Corolla", "Honda Civic",
	"Ford Focus", "Chevrolet Cruze", "Nissan Sentra", "Hyundai Elantra",
	"Kia Forte", "Mazda 3", "Subaru Impreza", "Volkswagen Jetta",
	"BMW 5 Series", "Mercedes E Class", "Audi A6", "Lexus GS",
	"Tesla Model S",
}

var monthNames = []string{
	"January", "February", "March", "April", "May", "June", "July",
	"August", "September", "October", "November", "December",
}

var dayNames = []string{"Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday", "Sunday"}

var cityNames = []string{
	"New York City", "Boston", "Chicago", "Seattle", "Austin", "Denver",
	"Portland", "Atlanta", "Nashville", "Philadelphia",
}

// Pools holds the generated entity pools of one benchmark instance.
type Pools struct {
	Artists     []string
	Theaters    []string
	Streets     []string
	AlbumTitles []string
	BookTitles  []string
	Authors     []string
	PubTitles   []string
	Brands      []string
}

// buildPools generates the entity pools deterministically.
func buildPools(r *rng) *Pools {
	p := &Pools{}
	seen := make(map[string]bool)
	add := func(dst *[]string, v string) {
		if !seen[v] {
			seen[v] = true
			*dst = append(*dst, v)
		}
	}
	g := r.derive("pools")
	for i := 0; i < 240; i++ {
		switch g.intn(3) {
		case 0:
			add(&p.Artists, "The "+pick(g, bandAdjectives)+" "+pick(g, bandNouns))
		case 1:
			add(&p.Artists, pick(g, bandAdjectives)+" "+pick(g, bandNouns))
		default:
			add(&p.Artists, pick(g, firstNames)+" "+pick(g, lastNames))
		}
	}
	for i := 0; i < 160; i++ {
		switch g.intn(3) {
		case 0:
			add(&p.Theaters, "The "+pick(g, venuePrefixes)+" "+pick(g, venueKinds))
		default:
			add(&p.Theaters, pick(g, venuePrefixes)+" "+pick(g, venueKinds))
		}
	}
	for i := 0; i < 300; i++ {
		add(&p.Streets, fmt.Sprintf("%d %s %s", g.rangeInt(1, 999), pick(g, streetNames), pick(g, streetKinds)))
	}
	for i := 0; i < 260; i++ {
		switch g.intn(3) {
		case 0:
			add(&p.AlbumTitles, "The "+pick(g, titleAdjectives)+" "+pick(g, titleNouns))
		case 1:
			add(&p.AlbumTitles, pick(g, titleAdjectives)+" "+pick(g, titleNouns))
		default:
			add(&p.AlbumTitles, pick(g, titleNouns)+" of "+pick(g, titleNouns))
		}
	}
	for i := 0; i < 260; i++ {
		switch g.intn(3) {
		case 0:
			add(&p.BookTitles, "The "+pick(g, titleNouns)+" of the "+pick(g, titleNouns))
		case 1:
			add(&p.BookTitles, "A "+pick(g, titleAdjectives)+" "+pick(g, titleNouns))
		default:
			add(&p.BookTitles, pick(g, titleAdjectives)+" "+pick(g, titleNouns)+"s")
		}
	}
	for i := 0; i < 220; i++ {
		add(&p.Authors, pick(g, firstNames)+" "+pick(g, lastNames))
	}
	for i := 0; i < 200; i++ {
		add(&p.PubTitles, fmt.Sprintf(pick(g, paperPatterns), pick(g, paperTopics)))
	}
	p.Brands = append([]string{}, carBrands...)
	return p
}
