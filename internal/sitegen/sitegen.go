package sitegen

import (
	"fmt"

	"objectrunner/internal/clean"
	"objectrunner/internal/dom"
	"objectrunner/internal/eval"
	"objectrunner/internal/sod"
)

// Config parameterizes benchmark generation.
type Config struct {
	// Seed drives all randomness; equal seeds give equal benchmarks.
	Seed uint64
	// PagesPerSource is the number of pages generated per source (the
	// paper collects roughly 50 per source).
	PagesPerSource int
	// KBCoverage is the fraction of each entity pool asserted in the
	// knowledge base (the paper completes dictionaries to at least 20%
	// coverage; Appendix A studies 10%).
	KBCoverage float64
	// CorpusCoverage is the fraction of each pool mentioned in Hearst
	// sentences of the Web corpus.
	CorpusCoverage float64
	// JunkFraction is the share of extra off-template pages (index pages,
	// editorials) appended to every non-pristine source — the crawl noise
	// that makes SOD-guided sample selection matter (Table II).
	JunkFraction float64
	// Domains restricts generation to the named domains (nil = all).
	Domains []string
}

// DefaultConfig mirrors the paper's setup at a laptop-friendly scale.
func DefaultConfig() Config {
	return Config{
		Seed:           42,
		PagesPerSource: 30,
		KBCoverage:     0.25,
		CorpusCoverage: 0.10,
		JunkFraction:   0.30,
	}
}

// Source is one generated synthetic source.
type Source struct {
	Spec   SourceSpec
	Domain string
	// HTML holds the raw pages; Pages the parsed and cleaned trees.
	HTML  []string
	Pages []*dom.Node
	// Golden holds the golden-standard objects, per page.
	Golden [][]eval.Object
}

// NumObjects counts the golden objects of the source.
func (s *Source) NumObjects() int {
	n := 0
	for _, page := range s.Golden {
		n += len(page)
	}
	return n
}

// DomainData bundles a domain's SOD and generated sources.
type DomainData struct {
	Spec    DomainSpec
	SOD     *sod.Type
	Sources []*Source
}

// Benchmark is a full generated evaluation environment: five domains of
// sources with golden standards, plus the knowledge base and corpus that
// feed gazetteer construction.
type Benchmark struct {
	Config  Config
	Pools   *Pools
	Domains []*DomainData
	KB      *KB
	Corpus  *Corpus
}

// Generate builds the benchmark. It returns an error when a domain's SOD
// text does not parse (a bug in the domain table, but library code must
// not panic on it).
func Generate(cfg Config) (*Benchmark, error) {
	if cfg.PagesPerSource <= 0 {
		cfg.PagesPerSource = DefaultConfig().PagesPerSource
	}
	if cfg.KBCoverage <= 0 {
		cfg.KBCoverage = DefaultConfig().KBCoverage
	}
	if cfg.CorpusCoverage <= 0 {
		cfg.CorpusCoverage = DefaultConfig().CorpusCoverage
	}
	root := newRNG(cfg.Seed)
	pools := buildPools(root)
	b := &Benchmark{Config: cfg, Pools: pools}
	b.KB = buildKB(pools, root.derive("kb"), cfg.KBCoverage)
	b.Corpus = buildCorpus(pools, root.derive("corpus"), cfg.CorpusCoverage)

	wantDomain := func(name string) bool {
		if len(cfg.Domains) == 0 {
			return true
		}
		for _, d := range cfg.Domains {
			if d == name {
				return true
			}
		}
		return false
	}
	for _, spec := range Domains() {
		if !wantDomain(spec.Name) {
			continue
		}
		st, err := sod.Parse(spec.SODText)
		if err != nil {
			return nil, fmt.Errorf("sitegen: domain %s: %w", spec.Name, err)
		}
		dd := &DomainData{Spec: spec, SOD: st}
		for _, ss := range spec.Sources {
			dd.Sources = append(dd.Sources, generateSource(spec, ss, pools, root, cfg))
		}
		b.Domains = append(b.Domains, dd)
	}
	return b, nil
}

// generateSource renders one source's pages and golden standard.
func generateSource(d DomainSpec, spec SourceSpec, pools *Pools, root *rng, cfg Config) *Source {
	r := root.derive(d.Name + "/" + spec.Name)
	st := style{
		layout:   spec.Layout,
		order:    attrOrder(d, r.derive("order")),
		labelled: r.chance(0.5),
		chrome:   r.intn(4),
		classed:  !spec.Classless,
		extras:   !spec.Pristine,
	}
	if spec.Detail {
		// Singleton pages: one object per page, label-rich layout.
		st.layout = 2
		st.labelled = true
	}
	pages := spec.Pages
	if pages <= 0 {
		pages = cfg.PagesPerSource
	}
	src := &Source{Spec: spec, Domain: d.Name}
	recRNG := r.derive("records")
	pageRNG := r.derive("pages")
	for pi := 0; pi < pages; pi++ {
		n := 1
		if !spec.Detail {
			lo, hi := spec.MinRecords, spec.MaxRecords
			if lo <= 0 {
				lo = 2
			}
			if hi < lo {
				hi = lo
			}
			if spec.has(QuirkConstantCount) {
				n = lo
			} else {
				n = pageRNG.rangeInt(lo, hi)
			}
		}
		var records []eval.Object
		for j := 0; j < n; j++ {
			records = append(records, genRecord(d, pools, recRNG, spec))
		}
		html := renderPage(d, spec, st, records, pageRNG, pi)
		src.HTML = append(src.HTML, html)
		src.Pages = append(src.Pages, clean.Page(html))
		if spec.has(QuirkUnstructured) {
			src.Golden = append(src.Golden, nil)
		} else {
			src.Golden = append(src.Golden, records)
		}
	}
	// Crawl noise: off-template pages (index pages, editorials) with no
	// records but the same chrome, interleaved deterministically. They
	// carry a few entity mentions in prose, so a random page sample
	// wastes slots on them while Algorithm 1 skips them.
	if cfg.JunkFraction > 0 && !spec.Pristine && !spec.has(QuirkUnstructured) {
		junkRNG := r.derive("junk")
		n := int(float64(pages) * cfg.JunkFraction)
		for j := 0; j < n; j++ {
			html := renderJunkPage(d, spec, st, pools, junkRNG)
			// Interleave: insert after every third content page.
			pos := (j*3 + 2) % (len(src.HTML) + 1)
			src.HTML = append(src.HTML[:pos], append([]string{html}, src.HTML[pos:]...)...)
			page := clean.Page(html)
			src.Pages = append(src.Pages[:pos], append([]*dom.Node{page}, src.Pages[pos:]...)...)
			src.Golden = append(src.Golden[:pos], append([][]eval.Object{nil}, src.Golden[pos:]...)...)
		}
	}
	return src
}

// FindSource returns a source by domain and name.
func (b *Benchmark) FindSource(domain, name string) (*Source, *DomainData, error) {
	for _, dd := range b.Domains {
		if dd.Spec.Name != domain {
			continue
		}
		for _, s := range dd.Sources {
			if s.Spec.Name == name {
				return s, dd, nil
			}
		}
		return nil, nil, fmt.Errorf("sitegen: no source %q in domain %q", name, domain)
	}
	return nil, nil, fmt.Errorf("sitegen: no domain %q", domain)
}
