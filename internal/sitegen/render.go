package sitegen

import (
	"fmt"
	"strings"

	"objectrunner/internal/eval"
)

// style is the per-source rendering style, fixed once per source so every
// page of the source shares one template.
type style struct {
	layout   int
	order    []string // attribute rendering order
	labelled bool     // render "Artist:" style labels
	chrome   int      // chrome variant
	classed  bool     // field nodes carry semantic class attributes
	extras   bool     // per-record extras and varying related blocks
}

// cls renders a class attribute when the source uses semantic classes.
func (st style) cls(name string) string {
	if !st.classed {
		return ""
	}
	return ` class="` + name + `"`
}

// attrOrder returns the source's attribute order: a deterministic
// permutation of the domain order, keeping theater/address adjacent (the
// nested location block of the running example).
func attrOrder(d DomainSpec, r *rng) []string {
	var units [][]string
	i := 0
	attrs := d.Attrs
	for i < len(attrs) {
		if attrs[i].Name == "theater" && i+1 < len(attrs) && attrs[i+1].Name == "address" {
			units = append(units, []string{"theater", "address"})
			i += 2
			continue
		}
		units = append(units, []string{attrs[i].Name})
		i++
	}
	// Fisher-Yates over units.
	for j := len(units) - 1; j > 0; j-- {
		k := r.intn(j + 1)
		units[j], units[k] = units[k], units[j]
	}
	var out []string
	for _, u := range units {
		out = append(out, u...)
	}
	return out
}

// genRecord draws one golden object for the domain.
func genRecord(d DomainSpec, p *Pools, r *rng, spec SourceSpec) eval.Object {
	obj := make(eval.Object)
	switch d.Name {
	case "concerts":
		obj["artist"] = []string{pick(r, p.Artists)}
		obj["date"] = []string{genConcertDate(r)}
		obj["theater"] = []string{pick(r, p.Theaters)}
		if !spec.has(QuirkOptionalAbsent) {
			obj["address"] = []string{pick(r, p.Streets)}
		}
	case "albums":
		obj["title"] = []string{pick(r, p.AlbumTitles)}
		obj["artist"] = []string{pick(r, p.Artists)}
		obj["price"] = []string{genPrice(r)}
		if !spec.has(QuirkOptionalAbsent) {
			obj["date"] = []string{genMonthYear(r)}
		}
	case "books":
		obj["title"] = []string{pick(r, p.BookTitles)}
		obj["price"] = []string{genPrice(r)}
		if !spec.has(QuirkOptionalAbsent) {
			obj["date"] = []string{genMonthYear(r)}
		}
		obj["author"] = genAuthors(p, r, 3)
	case "publications":
		obj["title"] = []string{pick(r, p.PubTitles)}
		if !spec.has(QuirkOptionalAbsent) {
			obj["date"] = []string{fmt.Sprint(r.rangeInt(1995, 2011))}
		}
		obj["author"] = genAuthors(p, r, 4)
	case "cars":
		obj["brand"] = []string{pick(r, p.Brands)}
		obj["price"] = []string{genCarPrice(r)}
	}
	return obj
}

func genAuthors(p *Pools, r *rng, max int) []string {
	n := r.rangeInt(1, max)
	seen := make(map[string]bool)
	var out []string
	for len(out) < n {
		a := pick(r, p.Authors)
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

func genConcertDate(r *rng) string {
	day := pick(r, dayNames)
	month := pick(r, monthNames)
	dom := r.rangeInt(1, 28)
	year := r.rangeInt(2009, 2011)
	hour := r.rangeInt(6, 11)
	min := []string{"00", "15", "30", "45"}[r.intn(4)]
	return fmt.Sprintf("%s %s %d, %d %d:%spm", day, month, dom, year, hour, min)
}

func genMonthYear(r *rng) string {
	return fmt.Sprintf("%s %d", pick(r, monthNames), r.rangeInt(1998, 2011))
}

func genPrice(r *rng) string {
	return fmt.Sprintf("$%d.%02d", r.rangeInt(5, 49), r.rangeInt(0, 99))
}

func genCarPrice(r *rng) string {
	return fmt.Sprintf("$%d,%03d", r.rangeInt(8, 52), r.rangeInt(0, 999))
}

var labelFor = map[string]string{
	"artist": "Artist", "date": "Date", "theater": "Venue",
	"address": "Address", "title": "Title", "price": "Price",
	"author": "Authors", "brand": "Model",
}

// renderPage produces the HTML of one page of a source.
func renderPage(d DomainSpec, spec SourceSpec, st style, records []eval.Object, r *rng, pageIdx int) string {
	var sb strings.Builder
	sb.WriteString("<!DOCTYPE html><html><head><title>")
	sb.WriteString(spec.Name)
	sb.WriteString("</title><meta charset=\"utf-8\"><script src=\"app.js\"></script></head><body>")
	renderChrome(&sb, spec, st, true)
	if spec.has(QuirkUnstructured) {
		renderProse(&sb, r)
	} else {
		sb.WriteString(`<div id="content" class="main">`)
		openList(&sb, st.layout)
		for ri, rec := range records {
			if spec.has(QuirkRarePromo) && ri == 0 && (pageIdx == 2 || pageIdx == 3 || pageIdx == 5) {
				sb.WriteString(`<div class="promo"><b>Limited promotional listing featured today</b></div>`)
			}
			if spec.has(QuirkNoisy) && r.chance(0.3) {
				renderJunk(&sb, r)
			}
			renderRecord(&sb, d, spec, st, rec, r)
		}
		closeList(&sb, st.layout)
		sb.WriteString(`</div>`)
		if st.extras {
			renderRelated(&sb, r)
		}
	}
	renderChrome(&sb, spec, st, false)
	sb.WriteString("</body></html>")
	return sb.String()
}

func renderChrome(sb *strings.Builder, spec SourceSpec, st style, header bool) {
	if header {
		fmt.Fprintf(sb, `<div id="header"><img src="logo.png"><span class="site">%s</span>`, strings.Fields(spec.Name)[0])
		sb.WriteString(`<div class="nav"><a href="/">home</a><a href="/browse">browse</a><a href="/help">help</a></div></div>`)
		if st.chrome%2 == 0 {
			sb.WriteString(`<div id="crumbs"><span>home</span> &gt; <span>results</span></div>`)
		}
		return
	}
	sb.WriteString(`<div id="footer"><span>terms of service</span><span>privacy</span><span>contact</span></div>`)
}

func renderProse(sb *strings.Builder, r *rng) {
	sb.WriteString(`<div id="content">`)
	for i := 0; i < r.rangeInt(3, 6); i++ {
		sb.WriteString("<p>")
		for j := 0; j < r.rangeInt(15, 40); j++ {
			sb.WriteString(pick(r, []string{
				"music", "discover", "listen", "great", "new", "releases",
				"enjoy", "download", "the", "best", "of", "today", "and",
				"every", "week", "curated", "for", "you", "explore", "more",
			}))
			sb.WriteByte(' ')
		}
		sb.WriteString("</p>")
	}
	sb.WriteString(`</div>`)
}

// renderJunkPage produces an off-template page of the source: same
// chrome, but an editorial body with a few entity mentions in prose
// instead of records.
func renderJunkPage(d DomainSpec, spec SourceSpec, st style, p *Pools, r *rng) string {
	var sb strings.Builder
	sb.WriteString("<!DOCTYPE html><html><head><title>")
	sb.WriteString(spec.Name)
	sb.WriteString("</title><meta charset=\"utf-8\"></head><body>")
	renderChrome(&sb, spec, st, true)
	sb.WriteString(`<div id="content" class="editorial">`)
	mentions := junkMentions(d, p, r)
	for i := 0; i < r.rangeInt(2, 4); i++ {
		sb.WriteString("<p>")
		for j := 0; j < r.rangeInt(12, 30); j++ {
			sb.WriteString(pick(r, []string{
				"this", "week", "we", "look", "at", "what", "makes", "a",
				"great", "pick", "and", "why", "fans", "keep", "coming",
				"back", "for", "more", "every", "season", "with", "our",
				"editors", "notes", "on", "the", "latest",
			}))
			sb.WriteByte(' ')
		}
		if i == 0 {
			sb.WriteString(" featuring " + esc(mentions[0]) + " ")
		}
		sb.WriteString("</p>")
	}
	sb.WriteString(`</div>`)
	renderRelated(&sb, r)
	renderChrome(&sb, spec, st, false)
	sb.WriteString("</body></html>")
	return sb.String()
}

// junkMentions picks a domain entity to drop into editorial prose.
func junkMentions(d DomainSpec, p *Pools, r *rng) []string {
	var pool []string
	switch d.Name {
	case "concerts", "albums":
		pool = p.Artists
	case "books":
		pool = p.Authors
	case "publications":
		pool = p.PubTitles
	default:
		pool = p.Brands
	}
	return []string{pick(r, pool)}
}

// renderRelated emits a cross-page-varying related-content block: a
// different number of differently-worded suggestions on every page.
func renderRelated(sb *strings.Builder, r *rng) {
	words := []string{
		"top", "picks", "bestsellers", "new", "arrivals", "deals",
		"weekly", "favorites", "trending", "editors", "choice", "gift",
		"ideas", "clearance", "popular", "nearby",
	}
	sb.WriteString(`<div id="related"><h3>You may also like</h3><ul>`)
	for i := 0; i < r.rangeInt(1, 5); i++ {
		sb.WriteString("<li>")
		for j := 0; j < r.rangeInt(2, 4); j++ {
			sb.WriteString(pick(r, words))
			sb.WriteByte(' ')
		}
		sb.WriteString("</li>")
	}
	sb.WriteString(`</ul></div>`)
}

var junkTemplates = []string{
	`<div class="ad"><span>sponsored</span><em>%s</em></div>`,
	`<div class="tip"><b>%s</b></div>`,
	`<div class="widget"><span>%s</span><span>more</span></div>`,
}

func renderJunk(sb *strings.Builder, r *rng) {
	words := []string{"special", "deal", "today", "featured", "trending", "hot", "offer", "exclusive"}
	text := pick(r, words) + " " + pick(r, words)
	fmt.Fprintf(sb, pick(r, junkTemplates), text)
}

func openList(sb *strings.Builder, layout int) {
	switch layout {
	case 0:
		sb.WriteString(`<ul class="results">`)
	case 1:
		sb.WriteString(`<table class="results">`)
	default:
		sb.WriteString(`<div class="results">`)
	}
}

func closeList(sb *strings.Builder, layout int) {
	switch layout {
	case 0:
		sb.WriteString(`</ul>`)
	case 1:
		sb.WriteString(`</table>`)
	default:
		sb.WriteString(`</div>`)
	}
}

// renderRecord renders one record according to the source's layout and
// quirks.
func renderRecord(sb *strings.Builder, d DomainSpec, spec SourceSpec, st style, rec eval.Object, r *rng) {
	// Units: attribute name -> rendered inner HTML. Quirks may merge two
	// consecutive attributes into one unit.
	type unit struct {
		attr string
		html string
	}
	var units []unit
	for _, attr := range st.order {
		vals := rec[attr]
		if len(vals) == 0 {
			continue
		}
		var inner string
		if attr == "author" {
			inner = renderAuthors(vals, spec, r)
		} else {
			inner = esc(vals[0])
		}
		units = append(units, unit{attr: attr, html: inner})
	}
	if spec.has(QuirkMergedFields) && len(units) >= 2 {
		// Merge the first two units into a single text node.
		units[0] = unit{attr: units[0].attr, html: units[0].html + " " + units[1].html}
		units = append(units[:1], units[2:]...)
	}
	if spec.has(QuirkUnstableLayout) && len(units) >= 2 && r.chance(0.4) {
		// Swap the first two units on a fraction of records: positional
		// wrappers then mix values of distinct attributes (incorrect).
		units[0], units[1] = units[1], units[0]
	}
	switch st.layout {
	case 0:
		sb.WriteString("<li>")
		for _, u := range units {
			fmt.Fprintf(sb, `<div%s>%s</div>`, st.cls("f-"+u.attr), u.html)
		}
		renderExtras(sb, st, r)
		sb.WriteString("</li>")
	case 1:
		sb.WriteString("<tr>")
		for _, u := range units {
			fmt.Fprintf(sb, `<td%s>%s</td>`, st.cls("f-"+u.attr), u.html)
		}
		if st.extras {
			fmt.Fprintf(sb, `<td%s>`, st.cls("f-x"))
			renderExtras(sb, st, r)
			sb.WriteString(`</td>`)
		}
		sb.WriteString("</tr>")
	case 2:
		sb.WriteString(`<div class="rec">`)
		for _, u := range units {
			if st.labelled {
				fmt.Fprintf(sb, `<div%s><span class="lbl">%s:</span> <span%s>%s</span></div>`, st.cls("row-"+u.attr), labelFor[u.attr], st.cls("val"), u.html)
			} else {
				fmt.Fprintf(sb, `<div%s><span%s>%s</span></div>`, st.cls("row-"+u.attr), st.cls("val"), u.html)
			}
		}
		renderExtras(sb, st, r)
		sb.WriteString(`</div>`)
	default:
		sb.WriteString(`<dl class="rec">`)
		for _, u := range units {
			fmt.Fprintf(sb, `<dt%s>%s</dt><dd%s>%s</dd>`, st.cls("k-"+u.attr), labelFor[u.attr], st.cls("v-"+u.attr), u.html)
		}
		sb.WriteString(`</dl>`)
		renderExtras(sb, st, r)
	}
}

// renderExtras emits the per-record noise of real listing pages: ratings
// and availability snippets whose presence and wording vary per record.
// They carry no golden data; targeted extraction ignores them, while
// structure-only alignment must absorb them.
func renderExtras(sb *strings.Builder, st style, r *rng) {
	if !st.extras {
		return
	}
	if r.chance(0.55) {
		fmt.Fprintf(sb, `<div%s><span>%d stars</span><span>%d customer reviews</span></div>`,
			st.cls("rating"), r.rangeInt(1, 5), r.rangeInt(2, 900))
	}
	if r.chance(0.35) {
		phrases := []string{
			"usually ships within %d days",
			"only %d left in stock",
			"free delivery on orders over %d",
			"%d people viewed this today",
		}
		fmt.Fprintf(sb, `<div%s><em>`+pick(r, phrases)+`</em></div>`, st.cls("avail"), r.rangeInt(1, 30))
	}
}

// renderAuthors renders a multi-valued author attribute. With
// QuirkMixedList the markup varies per record, reproducing the Amazon
// encodings of paper Fig. 2(a).
func renderAuthors(authors []string, spec SourceSpec, r *rng) string {
	if !spec.has(QuirkMixedList) {
		return "by " + esc(strings.Join(authors, ", "))
	}
	switch r.intn(3) {
	case 0:
		// b1: by <a>First</a> and Rest
		if len(authors) == 1 {
			return "by <a>" + esc(authors[0]) + "</a>"
		}
		return "by <a>" + esc(authors[0]) + "</a> and " + esc(strings.Join(authors[1:], ", "))
	case 1:
		// b2: by A, B
		return "by " + esc(strings.Join(authors, ", "))
	default:
		// b3: by <a>A</a><a>B</a>
		var sb strings.Builder
		sb.WriteString("by ")
		for i, a := range authors {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString("<a>" + esc(a) + "</a>")
		}
		return sb.String()
	}
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
