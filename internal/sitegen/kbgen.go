package sitegen

import (
	"fmt"

	"objectrunner/internal/corpus"
	"objectrunner/internal/kb"
)

// KB and Corpus aliases keep the sitegen API self-contained.
type (
	// KB is the knowledge-base type populated by the benchmark.
	KB = kb.KB
	// Corpus is the Web-corpus type populated by the benchmark.
	Corpus = corpus.Corpus
)

// classOf maps pool kinds to the ontology classes the SODs reference.
// Some instances are asserted on neighboring classes (Band instead of
// Artist, Writer instead of Author) so the semantic-neighborhood lookup
// path is exercised, exactly as the paper describes for Metallica/Band.
var classHierarchy = [][2]string{
	{"Artist", "Performer"}, {"Band", "Performer"}, {"Performer", "Person"},
	{"Theater", "Venue"}, {"ConcertHall", "Venue"},
	{"AlbumTitle", "CreativeWork"}, {"BookTitle", "CreativeWork"},
	{"PubTitle", "CreativeWork"},
	{"Author", "Writer"}, {"Writer", "Person"},
	{"CarBrand", "Product"},
}

// buildKB asserts a coverage fraction of each pool into the ontology.
func buildKB(p *Pools, r *rng, coverage float64) *kb.KB {
	k := kb.New()
	for _, edge := range classHierarchy {
		k.AddSubClass(edge[0], edge[1])
	}
	assert := func(values []string, class, altClass string) {
		for _, v := range values {
			if !r.chance(coverage) {
				continue
			}
			conf := 0.7 + float64(r.intn(25))/100
			c := class
			// A fifth of the covered instances live on a neighboring
			// class only.
			if altClass != "" && r.chance(0.2) {
				c = altClass
			}
			k.AddInstance(v, c, conf)
		}
	}
	assert(p.Artists, "Artist", "Band")
	assert(p.Theaters, "Theater", "ConcertHall")
	assert(p.AlbumTitles, "AlbumTitle", "")
	assert(p.BookTitles, "BookTitle", "")
	assert(p.Authors, "Author", "Writer")
	assert(p.PubTitles, "PubTitle", "")
	assert(p.Brands, "CarBrand", "")
	// Term frequencies: ubiquitous strings are poor discriminators.
	for _, city := range cityNames {
		k.SetTermFrequency(city, 5000)
	}
	k.SetTermFrequency("New York", 9000)
	return k
}

// hearstTemplates phrase class instances for the corpus.
var hearstTemplates = map[string][]string{
	"Artist": {
		"Great artists such as %s toured the country last year.",
		"%s is an artist with a devoted following.",
		"%s and other artists joined the festival lineup.",
	},
	"Theater": {
		"Historic venues such as %s host shows nightly.",
		"%s is a theater located downtown.",
	},
	"AlbumTitle": {
		"Classic albums such as %s defined the decade.",
	},
	"BookTitle": {
		"Novels such as %s remain in print.",
	},
	"Author": {
		"Celebrated authors such as %s signed copies.",
		"%s is an author of several bestsellers.",
	},
	"PubTitle": {
		"Influential papers such as %s are widely cited.",
	},
	"CarBrand": {
		"Popular cars such as %s sell quickly.",
		"%s is a car many families choose.",
	},
}

// buildCorpus writes Hearst-pattern sentences for a coverage fraction of
// each pool, plus filler text that supplies term frequencies.
func buildCorpus(p *Pools, r *rng, coverage float64) *corpus.Corpus {
	c := corpus.New()
	emit := func(values []string, class string) {
		tmpls := hearstTemplates[class]
		for _, v := range values {
			if !r.chance(coverage) {
				continue
			}
			c.AddDocument(fmt.Sprintf(pick(r, tmpls), v))
		}
	}
	emit(p.Artists, "Artist")
	emit(p.Theaters, "Theater")
	emit(p.AlbumTitles, "AlbumTitle")
	emit(p.BookTitles, "BookTitle")
	emit(p.Authors, "Author")
	emit(p.PubTitles, "PubTitle")
	emit(p.Brands, "CarBrand")
	// Frequency filler: common city strings appear often, so the
	// selectivity estimates damp them.
	for i := 0; i < 40; i++ {
		city := pick(r, cityNames)
		c.AddDocument(fmt.Sprintf("Things to do in %s this weekend. %s has endless events.", city, city))
	}
	return c
}

// MTurkRanking simulates the Mechanical-Turk source-selection step of the
// paper's §IV.A: workers independently rank the domain's sources with
// noise, and the aggregated top-k (Borda count) is returned. The
// benchmark generates exactly the sources the workers "know about", so
// the ranking decides ordering, not membership.
func MTurkRanking(d DomainSpec, workers, topK int, seed uint64) []string {
	r := newRNG(seed).derive("mturk/" + d.Name)
	scores := make(map[string]int)
	names := make([]string, len(d.Sources))
	for i, s := range d.Sources {
		names[i] = s.Name
	}
	for w := 0; w < workers; w++ {
		// Each worker perturbs the canonical order by random swaps.
		order := append([]string{}, names...)
		for i := 0; i < len(order); i++ {
			j := r.intn(len(order))
			order[i], order[j] = order[j], order[i]
		}
		for rank, name := range order {
			scores[name] += len(order) - rank
		}
	}
	// Sort by Borda score descending, stable on the canonical order.
	out := append([]string{}, names...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && scores[out[j]] > scores[out[j-1]]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if topK > 0 && topK < len(out) {
		out = out[:topK]
	}
	return out
}
