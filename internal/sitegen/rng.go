// Package sitegen generates the synthetic structured-Web benchmark that
// substitutes for the paper's 49 live sources (DESIGN.md §2): five
// domains — concerts, albums, books, publications, cars — each with a set
// of template-based sources whose quirks reproduce the structural
// phenomena the paper identifies as decisive (optional attributes,
// constant record counts, mixed value encodings, too-regular values,
// noise), plus the YAGO-like fact base and Hearst-ready corpus used to
// build gazetteers, the golden standard for precision scoring, and a
// simulated Mechanical-Turk source-ranking step.
//
// Everything is deterministic: the same seed reproduces the same pages,
// facts and golden objects.
package sitegen

// rng is a small deterministic xorshift64* generator. Sources derive
// their streams from the benchmark seed and their own name, so adding a
// source never perturbs the others.
type rng struct {
	state uint64
}

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{state: seed}
}

// derive returns an independent generator for a named sub-stream.
func (r *rng) derive(name string) *rng {
	h := r.state
	for _, c := range name {
		h ^= uint64(c)
		h *= 0x100000001B3
	}
	return newRNG(h)
}

func (r *rng) next() uint64 {
	r.state ^= r.state >> 12
	r.state ^= r.state << 25
	r.state ^= r.state >> 27
	return r.state * 0x2545F4914F6CDD1D
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// rangeInt returns a value in [lo, hi] inclusive.
func (r *rng) rangeInt(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.intn(hi-lo+1)
}

// pick returns a random element of xs.
func pick[T any](r *rng, xs []T) T {
	return xs[r.intn(len(xs))]
}

// chance returns true with probability p (0..1).
func (r *rng) chance(p float64) bool {
	return float64(r.next()%1000000)/1000000 < p
}
