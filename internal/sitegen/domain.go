package sitegen

import (
	"objectrunner/internal/eval"
)

// Quirk is a per-source template pathology, chosen to reproduce the
// failure modes the paper's Table I exhibits on live sources.
type Quirk int

const (
	// QuirkNone is a clean, regular template.
	QuirkNone Quirk = iota
	// QuirkOptionalAbsent omits the domain's optional attribute (the
	// "Optional: no" rows of Table I).
	QuirkOptionalAbsent
	// QuirkConstantCount renders the same number of records on every
	// page — the "too regular" list pages on which RoadRunner fails.
	QuirkConstantCount
	// QuirkMixedList varies the markup of multi-valued attributes per
	// record (the Amazon author encodings of paper Fig. 2(a)).
	QuirkMixedList
	// QuirkTooRegularValue renders a constant string ("New York") in its
	// own node next to a data attribute on every record.
	QuirkTooRegularValue
	// QuirkMergedFields renders two attributes inside one text node, so
	// even a perfect wrapper extracts them together (partially correct).
	QuirkMergedFields
	// QuirkUnstableLayout merges two attributes on some records and
	// separates them on others: wrappers mix values of distinct
	// attributes (incorrect).
	QuirkUnstableLayout
	// QuirkNoisy interleaves junk blocks of varying structure between
	// records.
	QuirkNoisy
	// QuirkUnstructured produces prose pages with no records at all (the
	// discarded emusic row).
	QuirkUnstructured
	// QuirkRarePromo injects a promo block on only a few pages — the
	// token-support ablation target (§IV, parameter variation).
	QuirkRarePromo
)

// SourceSpec describes one synthetic source.
type SourceSpec struct {
	Name   string
	Detail bool // singleton pages instead of list pages
	Quirks []Quirk
	// Layout selects the HTML record template family.
	Layout int
	// Pages overrides the benchmark's default page count when > 0.
	Pages int
	// MinRecords/MaxRecords bound records per list page.
	MinRecords, MaxRecords int
	// ExpectDiscard marks sources the pipeline should reject.
	ExpectDiscard bool
	// Pristine disables the default page realism (per-record extras,
	// varying related-content blocks): the source renders its records
	// and nothing else. Structure-only systems do best here.
	Pristine bool
	// Classless renders the template without semantic class attributes,
	// so fields are structurally indistinguishable — the situation where
	// the paper's annotations are decisive.
	Classless bool
}

func (s SourceSpec) has(q Quirk) bool {
	for _, x := range s.Quirks {
		if x == q {
			return true
		}
	}
	return false
}

// DomainSpec describes one evaluation domain: its SOD, golden schema and
// sources.
type DomainSpec struct {
	Name    string
	SODText string
	// Attrs is the golden schema; set members use the element type name.
	Attrs   []eval.AttrSpec
	Sources []SourceSpec
}

// Domains returns the five evaluation domains with their source lists,
// mirroring the 49 usable sources (plus one discarded) of Table I.
func Domains() []DomainSpec {
	return []DomainSpec{
		{
			Name: "concerts",
			SODText: `tuple {
				artist: instanceOf(Artist)
				date: date
				location: tuple { theater: instanceOf(Theater), address: address ? }
			}`,
			Attrs: []eval.AttrSpec{
				{Name: "artist"}, {Name: "date"}, {Name: "theater"},
				{Name: "address", Optional: true},
			},
			Sources: []SourceSpec{
				{Name: "zvents (detail)", Detail: true, Layout: 0},
				{Name: "zvents (list)", Layout: 0, MinRecords: 2, MaxRecords: 6, Classless: true},
				{Name: "upcoming.yahoo (detail)", Detail: true, Layout: 1, Classless: true},
				{Name: "upcoming.yahoo (list)", Layout: 1, MinRecords: 3, MaxRecords: 8, Quirks: []Quirk{QuirkUnstableLayout}},
				{Name: "eventful (detail)", Detail: true, Layout: 2, Quirks: []Quirk{QuirkMergedFields}},
				{Name: "eventful (list)", Layout: 2, MinRecords: 4, MaxRecords: 9, Quirks: []Quirk{QuirkOptionalAbsent}, Classless: true},
				{Name: "eventorb (detail)", Detail: true, Layout: 3, Pristine: true},
				{Name: "eventorb (list)", Layout: 3, MinRecords: 2, MaxRecords: 7, Pristine: true},
				{Name: "bandsintown (detail)", Detail: true, Layout: 0, Classless: true},
			},
		},
		{
			Name: "albums",
			SODText: `tuple {
				title: instanceOf(AlbumTitle)
				artist: instanceOf(Artist)
				price: price
				date: date ?
			}`,
			Attrs: []eval.AttrSpec{
				{Name: "title"}, {Name: "artist"}, {Name: "price"},
				{Name: "date", Optional: true},
			},
			Sources: []SourceSpec{
				{Name: "amazon", Layout: 0, MinRecords: 3, MaxRecords: 8},
				{Name: "101cd", Layout: 1, MinRecords: 4, MaxRecords: 9, Quirks: []Quirk{QuirkMergedFields, QuirkOptionalAbsent}},
				{Name: "towerrecords", Layout: 2, MinRecords: 3, MaxRecords: 9, Pristine: true},
				{Name: "walmart", Layout: 3, MinRecords: 5, MaxRecords: 10, Quirks: []Quirk{QuirkMergedFields}},
				{Name: "cdunivers", Layout: 0, MinRecords: 4, MaxRecords: 10},
				{Name: "hmv", Layout: 1, MinRecords: 2, MaxRecords: 6},
				{Name: "play", Layout: 2, MinRecords: 3, MaxRecords: 8, Quirks: []Quirk{QuirkOptionalAbsent}},
				{Name: "sanity", Layout: 3, MinRecords: 4, MaxRecords: 10},
				{Name: "secondspin", Layout: 0, MinRecords: 5, MaxRecords: 10, Classless: true},
				{Name: "emusic", Layout: 0, Quirks: []Quirk{QuirkUnstructured}, ExpectDiscard: true},
			},
		},
		{
			Name: "books",
			SODText: `tuple {
				title: instanceOf(BookTitle)
				price: price
				date: date ?
				authors: set(author: instanceOf(Author))+
			}`,
			Attrs: []eval.AttrSpec{
				{Name: "title"}, {Name: "price"},
				{Name: "date", Optional: true},
				{Name: "author", Set: true},
			},
			Sources: []SourceSpec{
				{Name: "amazon", Layout: 0, MinRecords: 3, MaxRecords: 3, Quirks: []Quirk{QuirkConstantCount, QuirkMixedList}},
				{Name: "bn", Layout: 1, MinRecords: 4, MaxRecords: 4, Quirks: []Quirk{QuirkConstantCount}, Classless: true},
				{Name: "buy", Layout: 2, MinRecords: 5, MaxRecords: 5, Quirks: []Quirk{QuirkConstantCount, QuirkOptionalAbsent}},
				{Name: "abebooks", Layout: 3, MinRecords: 3, MaxRecords: 3, Quirks: []Quirk{QuirkConstantCount, QuirkOptionalAbsent}},
				{Name: "walmart", Layout: 0, MinRecords: 4, MaxRecords: 4, Quirks: []Quirk{QuirkConstantCount, QuirkUnstableLayout}},
				{Name: "abc", Layout: 1, MinRecords: 3, MaxRecords: 3, Quirks: []Quirk{QuirkConstantCount}},
				{Name: "bookdepository", Layout: 2, MinRecords: 4, MaxRecords: 4, Quirks: []Quirk{QuirkConstantCount, QuirkMixedList}},
				{Name: "booksamillion", Layout: 3, MinRecords: 5, MaxRecords: 5, Quirks: []Quirk{QuirkConstantCount}, Classless: true},
				{Name: "bookstore", Layout: 0, MinRecords: 3, MaxRecords: 3, Quirks: []Quirk{QuirkConstantCount, QuirkUnstableLayout, QuirkOptionalAbsent}, Classless: true},
				{Name: "powells", Layout: 1, MinRecords: 4, MaxRecords: 4, Quirks: []Quirk{QuirkConstantCount, QuirkOptionalAbsent}, Pristine: true},
			},
		},
		{
			Name: "publications",
			SODText: `tuple {
				title: instanceOf(PubTitle)
				date: year ?
				authors: set(author: instanceOf(Author))+
			}`,
			Attrs: []eval.AttrSpec{
				{Name: "title"},
				{Name: "date", Optional: true},
				{Name: "author", Set: true},
			},
			Sources: []SourceSpec{
				{Name: "acm", Layout: 0, MinRecords: 4, MaxRecords: 4, Quirks: []Quirk{QuirkConstantCount}},
				{Name: "dblp", Layout: 1, MinRecords: 5, MaxRecords: 5, Quirks: []Quirk{QuirkConstantCount, QuirkRarePromo}},
				{Name: "cambridge", Layout: 2, MinRecords: 3, MaxRecords: 3, Quirks: []Quirk{QuirkConstantCount}},
				{Name: "citebase", Layout: 3, MinRecords: 4, MaxRecords: 4, Quirks: []Quirk{QuirkConstantCount, QuirkRarePromo}, Classless: true},
				{Name: "citeseer", Layout: 0, MinRecords: 5, MaxRecords: 5, Quirks: []Quirk{QuirkConstantCount, QuirkMergedFields}},
				{Name: "DivaPortal", Layout: 1, MinRecords: 3, MaxRecords: 3, Quirks: []Quirk{QuirkConstantCount}},
				{Name: "GoogleScholar", Layout: 2, MinRecords: 4, MaxRecords: 4, Quirks: []Quirk{QuirkConstantCount, QuirkNoisy, QuirkUnstableLayout}},
				{Name: "elsevier", Layout: 3, MinRecords: 4, MaxRecords: 4, Quirks: []Quirk{QuirkConstantCount}},
				{Name: "IngentaConnect", Layout: 0, MinRecords: 5, MaxRecords: 5, Quirks: []Quirk{QuirkConstantCount, QuirkUnstableLayout}},
				{Name: "IowaState", Layout: 1, MinRecords: 3, MaxRecords: 3, Quirks: []Quirk{QuirkConstantCount, QuirkNoisy, QuirkUnstableLayout, QuirkMergedFields}, Classless: true},
			},
		},
		{
			Name: "cars",
			SODText: `tuple {
				brand: instanceOf(CarBrand)
				price: price
			}`,
			Attrs: []eval.AttrSpec{
				{Name: "brand"}, {Name: "price"},
			},
			Sources: []SourceSpec{
				{Name: "amazoncars", Layout: 0, MinRecords: 1, MaxRecords: 3},
				{Name: "automotive", Layout: 1, MinRecords: 4, MaxRecords: 9, Quirks: []Quirk{QuirkMergedFields}},
				{Name: "cars", Layout: 2, MinRecords: 3, MaxRecords: 8, Pristine: true},
				{Name: "carmax", Layout: 3, MinRecords: 3, MaxRecords: 8},
				{Name: "autonation", Layout: 0, MinRecords: 2, MaxRecords: 7},
				{Name: "carsshop", Layout: 1, MinRecords: 3, MaxRecords: 8},
				{Name: "carsdirect", Layout: 2, MinRecords: 5, MaxRecords: 10, Quirks: []Quirk{QuirkMergedFields}},
				{Name: "usedcars", Layout: 3, MinRecords: 4, MaxRecords: 9},
				{Name: "autoweb", Layout: 0, MinRecords: 1, MaxRecords: 5},
				{Name: "autotrader", Layout: 1, MinRecords: 2, MaxRecords: 6},
			},
		},
	}
}

// DomainByName returns one domain spec.
func DomainByName(name string) (DomainSpec, bool) {
	for _, d := range Domains() {
		if d.Name == name {
			return d, true
		}
	}
	return DomainSpec{}, false
}
