package sitegen

import (
	"strings"
	"testing"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.PagesPerSource = 6
	return cfg
}

// mustGen is Generate for tests, where the built-in domain table is known
// to parse.
func mustGen(cfg Config) *Benchmark {
	b, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return b
}

func TestGenerateDeterministic(t *testing.T) {
	a := mustGen(testConfig())
	b := mustGen(testConfig())
	if len(a.Domains) != len(b.Domains) {
		t.Fatal("domain counts differ")
	}
	for i := range a.Domains {
		for j := range a.Domains[i].Sources {
			sa, sb := a.Domains[i].Sources[j], b.Domains[i].Sources[j]
			if len(sa.HTML) != len(sb.HTML) {
				t.Fatalf("page counts differ for %s", sa.Spec.Name)
			}
			for k := range sa.HTML {
				if sa.HTML[k] != sb.HTML[k] {
					t.Fatalf("page %d of %s differs between runs", k, sa.Spec.Name)
				}
			}
		}
	}
}

func TestGenerateAllDomains(t *testing.T) {
	b := mustGen(testConfig())
	if len(b.Domains) != 5 {
		t.Fatalf("domains = %d, want 5", len(b.Domains))
	}
	names := map[string]int{}
	total := 0
	for _, d := range b.Domains {
		names[d.Spec.Name] = len(d.Sources)
		total += len(d.Sources)
	}
	if total != 49 {
		t.Errorf("sources = %d, want 49 (Table I)", total)
	}
	if names["concerts"] != 9 {
		t.Errorf("concerts sources = %d, want 9", names["concerts"])
	}
}

func TestGoldenMatchesRenderedPages(t *testing.T) {
	b := mustGen(testConfig())
	for _, d := range b.Domains {
		for _, s := range d.Sources {
			if s.Spec.has(QuirkUnstructured) {
				continue
			}
			for pi, page := range s.Golden {
				html := s.HTML[pi]
				for _, obj := range page {
					for attr, vals := range obj {
						for _, v := range vals {
							if !strings.Contains(html, esc(v)) {
								t.Fatalf("%s/%s page %d: golden %s=%q not in HTML", d.Spec.Name, s.Spec.Name, pi, attr, v)
							}
						}
					}
				}
			}
		}
	}
}

func TestDetailSourcesSingleton(t *testing.T) {
	b := mustGen(testConfig())
	for _, d := range b.Domains {
		for _, s := range d.Sources {
			if !s.Spec.Detail {
				continue
			}
			for pi, page := range s.Golden {
				// Junk pages carry no golden objects.
				if len(page) != 1 && len(page) != 0 {
					t.Errorf("%s page %d has %d objects, want 0 or 1", s.Spec.Name, pi, len(page))
				}
			}
		}
	}
}

func TestConstantCountQuirk(t *testing.T) {
	b := mustGen(testConfig())
	src, _, err := b.FindSource("books", "bn")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, page := range src.Golden {
		if len(page) > 0 {
			n = len(page)
			break
		}
	}
	for pi, page := range src.Golden {
		// Content pages share one constant count; junk pages are empty.
		if len(page) != n && len(page) != 0 {
			t.Errorf("page %d has %d records, want constant %d", pi, len(page), n)
		}
	}
}

func TestOptionalAbsentQuirk(t *testing.T) {
	b := mustGen(testConfig())
	src, _, err := b.FindSource("concerts", "eventful (list)")
	if err != nil {
		t.Fatal(err)
	}
	for _, page := range src.Golden {
		for _, obj := range page {
			if len(obj["address"]) != 0 {
				t.Fatal("optional-absent source has addresses")
			}
		}
	}
}

func TestUnstructuredSourceHasNoGolden(t *testing.T) {
	b := mustGen(testConfig())
	src, _, err := b.FindSource("albums", "emusic")
	if err != nil {
		t.Fatal(err)
	}
	if src.NumObjects() != 0 {
		t.Errorf("unstructured source has %d golden objects", src.NumObjects())
	}
	if !src.Spec.ExpectDiscard {
		t.Error("emusic should be marked for discard")
	}
}

func TestMixedListQuirkVariesMarkup(t *testing.T) {
	b := mustGen(testConfig())
	src, _, err := b.FindSource("books", "amazon")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(src.HTML, "")
	if !strings.Contains(joined, "</a> and ") && !strings.Contains(joined, "</a>,") {
		t.Log("markup variant with links and plain text not found (seed-dependent)")
	}
	if !strings.Contains(joined, "<a>") {
		t.Error("mixed-list source has no author links at all")
	}
}

func TestKBPopulated(t *testing.T) {
	b := mustGen(testConfig())
	if b.KB.NumFacts() == 0 {
		t.Fatal("empty KB")
	}
	arts := b.KB.Instances("Artist")
	if len(arts) == 0 {
		t.Fatal("no artists in KB")
	}
	// Coverage should be partial: far fewer instances than the pool.
	if len(arts) >= len(b.Pools.Artists) {
		t.Errorf("KB coverage too high: %d of %d", len(arts), len(b.Pools.Artists))
	}
	// Neighborhood: some artists were asserted as Band and must still be
	// reachable via the Artist query.
	direct := len(b.KB.DirectInstances("Artist"))
	if len(arts) <= direct {
		t.Log("no neighborhood-only instances (seed-dependent)")
	}
}

func TestCorpusPopulated(t *testing.T) {
	b := mustGen(testConfig())
	if b.Corpus.NumDocuments() == 0 {
		t.Fatal("empty corpus")
	}
	es := b.Corpus.Score("artist")
	if len(es) == 0 {
		t.Error("Hearst extraction found no artists in the generated corpus")
	}
}

func TestPoolsDistinct(t *testing.T) {
	b := mustGen(testConfig())
	p := b.Pools
	for _, pool := range [][]string{p.Artists, p.Theaters, p.BookTitles, p.Authors, p.PubTitles, p.Brands} {
		if len(pool) < 30 {
			t.Errorf("pool too small: %d", len(pool))
		}
		seen := map[string]bool{}
		for _, v := range pool {
			if seen[v] {
				t.Errorf("duplicate pool value %q", v)
			}
			seen[v] = true
		}
	}
}

func TestDomainFilter(t *testing.T) {
	cfg := testConfig()
	cfg.Domains = []string{"cars"}
	b := mustGen(cfg)
	if len(b.Domains) != 1 || b.Domains[0].Spec.Name != "cars" {
		t.Errorf("domain filter failed: %d domains", len(b.Domains))
	}
}

func TestFindSourceErrors(t *testing.T) {
	b := mustGen(testConfig())
	if _, _, err := b.FindSource("nosuch", "x"); err == nil {
		t.Error("unknown domain accepted")
	}
	if _, _, err := b.FindSource("cars", "nosuch"); err == nil {
		t.Error("unknown source accepted")
	}
}

func TestMTurkRanking(t *testing.T) {
	d, _ := DomainByName("albums")
	top := MTurkRanking(d, 10, 5, 7)
	if len(top) != 5 {
		t.Fatalf("topK = %d", len(top))
	}
	// Deterministic for equal seeds.
	again := MTurkRanking(d, 10, 5, 7)
	for i := range top {
		if top[i] != again[i] {
			t.Error("ranking not deterministic")
		}
	}
	// All returned names are actual sources.
	valid := map[string]bool{}
	for _, s := range d.Sources {
		valid[s.Name] = true
	}
	for _, n := range top {
		if !valid[n] {
			t.Errorf("unknown source %q in ranking", n)
		}
	}
}

func TestSODsParse(t *testing.T) {
	for _, d := range Domains() {
		b := mustGen(Config{Seed: 1, PagesPerSource: 1, Domains: []string{d.Name}})
		if b.Domains[0].SOD == nil {
			t.Errorf("%s SOD did not parse", d.Name)
		}
	}
}
