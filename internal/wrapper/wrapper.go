// Package wrapper orchestrates the full ObjectRunner targeted-extraction
// pipeline (paper §III): pre-processing and segmentation, recognizer
// set-up, annotation and sample selection (Algorithm 1), wrapper
// generation over equivalence classes (Algorithm 2) with early stopping
// (§III.E), SOD matching, extraction, the self-validating parameter
// variation loop (§IV, "automatic variation of parameters"), and
// dictionary enrichment (Eq. 4).
package wrapper

import (
	"context"
	"fmt"

	"objectrunner/internal/annotate"
	"objectrunner/internal/dom"
	"objectrunner/internal/eqclass"
	"objectrunner/internal/obs"
	"objectrunner/internal/parallel"
	"objectrunner/internal/recognize"
	"objectrunner/internal/segment"
	"objectrunner/internal/sod"
	"objectrunner/internal/symtab"
	"objectrunner/internal/template"
)

// Config tunes the pipeline. The zero value is completed with the paper's
// defaults by Normalize.
type Config struct {
	// Sample configures Algorithm 1 (sample size k, alpha, shrink).
	Sample annotate.Params
	// EQ configures Algorithm 2 (support, annotation threshold).
	EQ eqclass.Params
	// SupportMin and SupportMax bound the automatic support variation
	// (3 to 5 in the paper). The loop re-executes wrapper generation with
	// the next support value while conflicts remain.
	SupportMin, SupportMax int
	// UseSegmentation enables the VIPS-style central-block scoping.
	UseSegmentation bool
	// Segment configures the block selection heuristic.
	Segment segment.Options
	// RandomSample switches Algorithm 1 off and samples pages uniformly
	// (the baseline of Table II).
	RandomSample bool
	// RandomSeed drives the baseline sampler.
	RandomSeed uint64
	// Workers bounds the worker pool of the per-page pipeline stages
	// (cleaning, segmentation, annotation, tokenization, extraction).
	// 0 (the default) means one worker per available CPU
	// (runtime.GOMAXPROCS(0)); 1 forces the sequential path. Results are
	// always merged in stable input order, so output is byte-identical
	// across worker counts.
	Workers int
	// Obs receives spans, events and metrics from every pipeline stage.
	// Nil (the default) disables observation at near-zero cost.
	Obs *obs.Observer
}

// DefaultConfig mirrors the paper's experimental setup.
func DefaultConfig() Config {
	return Config{
		Sample:          annotate.DefaultParams(),
		EQ:              eqclass.DefaultParams(),
		SupportMin:      3,
		SupportMax:      5,
		UseSegmentation: true,
		Segment:         segment.DefaultOptions(),
	}
}

// Normalize fills unset fields with defaults.
func (c *Config) Normalize() {
	d := DefaultConfig()
	if c.Sample.SampleSize == 0 {
		c.Sample = d.Sample
	}
	if c.EQ.MaxIter == 0 {
		c.EQ = d.EQ
	}
	if c.SupportMin == 0 {
		c.SupportMin = d.SupportMin
	}
	if c.SupportMax < c.SupportMin {
		c.SupportMax = c.SupportMin
	}
	c.Workers = parallel.Workers(c.Workers)
	// The per-stage configs inherit the pool size unless set explicitly.
	if c.Sample.Workers == 0 {
		c.Sample.Workers = c.Workers
	}
	if c.Segment.Workers == 0 {
		c.Segment.Workers = c.Workers
	}
	if c.EQ.Workers == 0 {
		c.EQ.Workers = c.Workers
	}
}

// Wrapper is an inferred extraction template for one source, applicable
// to any page of that source.
type Wrapper struct {
	SOD      *sod.Type
	Template *template.Template
	Matches  []*template.Match
	// Conflicts is the conflicting-annotation count of the chosen run
	// (the wrapper quality estimate).
	Conflicts int
	// Support is the support value the variation loop settled on.
	Support int
	// BlockKey re-identifies the source's central block on unseen pages.
	BlockKey segment.Key
	// Aborted reports that the source was discarded, with the reason.
	Aborted     bool
	AbortReason string
	// Report is the EXPLAIN-style account of the inference run; it is
	// populated even when the wrapper aborted.
	Report *Report

	useSegmentation bool
	workers         int
	obs             *obs.Observer
	// tab is the wrapper-scoped symbol table: exactly the template
	// descriptors' Value and Path strings, interned in template walk
	// order. Extraction resolves unseen pages' tokens against it
	// read-only; tokens outside the template vocabulary map to
	// symtab.None and can never match a descriptor.
	tab *symtab.Table
}

// Workers returns the resolved worker-pool size the wrapper inherited
// from its inference Config (at least 1).
func (w *Wrapper) Workers() int {
	if w == nil {
		return 1
	}
	return parallel.Workers(w.workers)
}

// Score is the wrapper quality estimate in [0, 1]: 1 for a wrapper built
// with no conflicting annotations, decaying with the conflict count.
func (w *Wrapper) Score() float64 {
	return 1 / (1 + float64(w.Conflicts))
}

// Infer runs the pipeline over a source's pages (parsed and cleaned DOM
// trees) and returns the wrapper. It never fails hard: sources that do
// not carry the targeted data come back with Aborted set.
func Infer(pages []*dom.Node, s *sod.Type, recs map[string]recognize.Recognizer, tf annotate.TermFreq, cfg Config) *Wrapper {
	w, _ := InferContext(context.Background(), pages, s, recs, tf, cfg)
	return w
}

// InferContext is Infer honoring cancellation: the per-page fan-outs stop
// dispatching once ctx is canceled, the support-variation loop checks ctx
// between iterations, and the context error comes back with a nil wrapper.
// A nil error with an Aborted wrapper still means "source discarded" — the
// two failure modes stay distinct.
func InferContext(ctx context.Context, pages []*dom.Node, s *sod.Type, recs map[string]recognize.Recognizer, tf annotate.TermFreq, cfg Config) (*Wrapper, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg.Normalize()
	ob := cfg.Obs
	w := &Wrapper{SOD: s, useSegmentation: cfg.UseSegmentation, workers: cfg.Workers, obs: ob,
		Report: &Report{Pages: len(pages), Segmentation: cfg.UseSegmentation}}
	sp := ob.Span("pipeline.infer", obs.A("pages", len(pages)))
	defer sp.End()
	ob = sp.Observer()
	if len(pages) == 0 {
		w.abortObserved(ob, "infer", "no pages")
		return w, nil
	}

	// Pre-processing: central-block scoping (VIPS-style).
	regions := pages
	if cfg.UseSegmentation {
		segSpan := ob.Span("pipeline.segment", obs.A("pages", len(pages)))
		var err error
		regions, err = segment.SelectMainCtx(ctx, pages, cfg.Segment, segSpan.Observer())
		if err != nil {
			segSpan.End(obs.A("canceled", true))
			return nil, err
		}
		w.BlockKey = segment.KeyOf(regions[0])
		w.Report.BlockTag, w.Report.BlockPath = w.BlockKey.Tag, w.BlockKey.Path
		segSpan.End(obs.A("block_tag", w.BlockKey.Tag), obs.A("block_path", w.BlockKey.Path))
	}

	// Annotation and sample selection (Algorithm 1 or the random
	// baseline). The effective sample stays well below the page pool —
	// the paper samples k≈20 of ~50 crawled pages — so that selection
	// has room to skip off-template pages.
	sampleCfg := cfg.Sample
	if cap := 3 * len(regions) / 5; sampleCfg.SampleSize > cap {
		sampleCfg.SampleSize = cap
		if sampleCfg.SampleSize < 4 {
			sampleCfg.SampleSize = 4
		}
		// The floor of 4 exists so mid-sized pools keep enough sample to
		// vote on; on tiny corpora it must not push the sample past the
		// page pool itself.
		if sampleCfg.SampleSize > len(regions) {
			sampleCfg.SampleSize = len(regions)
		}
	}
	annSpan := ob.Span("pipeline.annotate",
		obs.A("pages", len(regions)), obs.A("k", sampleCfg.SampleSize), obs.A("random", cfg.RandomSample))
	var res *annotate.Result
	if cfg.RandomSample {
		res = annotate.SelectRandom(regions, recs, sampleCfg.SampleSize, cfg.RandomSeed)
	} else {
		var err error
		res, err = annotate.SelectSampleCtx(ctx, regions, s, recs, tf, sampleCfg, annSpan.Observer())
		if err != nil {
			annSpan.End(obs.A("canceled", true))
			return nil, err
		}
	}
	annSpan.End(obs.A("sample", len(res.Sample)), obs.A("aborted", res.Aborted))
	w.Report.TypeOrder = res.TypeOrder
	w.Report.SampleSize = len(res.Sample)
	if res.Aborted {
		w.abortObserved(ob, "annotate", res.AbortReason)
		return w, nil
	}
	if len(res.Sample) == 0 {
		w.abortObserved(ob, "annotate", "empty sample")
		return w, nil
	}

	// The entity types that are annotated somewhere in the sample; used
	// by the partial-matching early-stop test.
	annotatedTypes := make(map[string]bool)
	for _, e := range s.EntityTypes() {
		for _, pa := range res.Sample {
			if pa.CountType(e.Name) > 0 {
				annotatedTypes[e.Name] = true
				w.Report.AnnotatedTypes = append(w.Report.AnnotatedTypes, e.Name)
				break
			}
		}
	}

	// Fused tokenize→intern. Each worker owns a contiguous chunk of the
	// sample and runs tokenization and interning for its pages against a
	// worker-local symbol table — no barrier between the stages and no
	// cross-worker lock traffic. The local tables are then merged into
	// the canonical inference table in worker order: contiguous chunks +
	// left-to-right merge reproduce exactly the symbol numbering a single
	// sequential page-then-token pass would assign (see symtab.Merge), so
	// symbol ids — and all downstream analysis, reports and serialized
	// wrappers — stay byte-identical at any worker count. Finally each
	// chunk rewrites its occurrences to the canonical numbering; chunk 0
	// merges into an empty table, so its remap is always the identity and
	// the pass is skipped.
	sample := make([][]*eqclass.Occurrence, len(res.Sample))
	tokSpan := ob.Span("pipeline.tokenize",
		obs.A("pages", len(res.Sample)), obs.A("workers", cfg.Workers))
	locals, err := parallel.MapWorkersCtx(ctx, cfg.Workers, len(res.Sample),
		func(ctx context.Context, _ int, c parallel.Chunk) (*symtab.Table, error) {
			lt := symtab.New()
			for i := c.Lo; i < c.Hi; i++ {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				pa := res.Sample[i]
				sample[i] = eqclass.TokenizeInternPage(lt, pa.Page, pa, i)
			}
			return lt, nil
		})
	if err != nil {
		tokSpan.End(obs.A("canceled", true))
		return nil, err
	}
	tab := symtab.New()
	remaps := make([][]symtab.Sym, len(locals))
	for i, lt := range locals {
		remaps[i] = tab.Merge(lt)
	}
	if _, err := parallel.MapWorkersCtx(ctx, cfg.Workers, len(sample),
		func(_ context.Context, worker int, c parallel.Chunk) (struct{}, error) {
			// Chunks(workers, n) is deterministic, so this fan-out sees the
			// same ranges the tokenize fan-out produced local tables for.
			if symtab.IdentityRemap(remaps[worker]) {
				return struct{}{}, nil
			}
			for i := c.Lo; i < c.Hi; i++ {
				eqclass.RemapSyms(remaps[worker], sample[i])
			}
			return struct{}{}, nil
		}); err != nil {
		tokSpan.End(obs.A("canceled", true))
		return nil, err
	}
	tokSpan.End(obs.A("symbols", tab.Len()))

	// The shared analysis base: interning, criterion-i role assignment
	// and first-round class validation run once per corpus; every support
	// variation below resumes from this snapshot (DESIGN §16).
	baseSpan := ob.Span("pipeline.eqbase",
		obs.A("pages", len(sample)), obs.A("workers", cfg.EQ.Workers))
	basep := cfg.EQ
	basep.Support = cfg.SupportMin
	base := eqclass.NewBase(sample, basep, baseSpan.Observer(), tab)
	baseSpan.End(obs.A("roles", base.Roles()), obs.A("groups", base.Groups()))

	// Wrapper generation with automatic support variation: re-execute
	// with the next support value while the quality estimate (conflict
	// count) can improve; keep the best run.
	var best *run
	bestVar := -1
	for support := cfg.SupportMin; support <= cfg.SupportMax; support++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p := cfg.EQ
		p.Support = support
		varSpan := ob.Span("pipeline.variation", obs.A("support", support))
		vob := varSpan.Observer()
		// Early stopping (§III.E): abort the iteration when no partial
		// match of the SOD into the current template tree remains
		// possible. The hook doubles as the cancellation checkpoint inside
		// the analysis loop — a canceled ctx stops the iteration, and the
		// ctx check after the analysis turns that into the context error.
		hook := func(an *eqclass.Analysis) bool {
			if ctx.Err() != nil {
				return false
			}
			return template.PartialMatchPossible(s, an, annotatedTypes)
		}
		eqSpan := vob.Span("pipeline.eqclass", obs.A("support", support))
		an := base.Analyze(p, hook, eqSpan.Observer())
		eqSpan.End(obs.A("eqs", len(an.EQs)), obs.A("conflicts", an.Conflicts), obs.A("iterations", an.Iterations))
		if err := ctx.Err(); err != nil {
			varSpan.End(obs.A("canceled", true))
			return nil, err
		}
		tmplSpan := vob.Span("pipeline.template")
		tmpl := template.Build(an)
		matches := tmpl.MatchSOD(s)
		tmplSpan.End(obs.A("matches", len(matches)))
		r := &run{analysis: an, tmpl: tmpl, matches: matches, support: support}
		v := Variation{
			Support: support, Conflicts: an.Conflicts, Matches: len(matches),
			EQs: len(an.EQs), Iterations: an.Iterations,
		}
		switch {
		case len(matches) == 0:
			v.Reason = "SOD found no complete match in the template"
		case better(r, best):
			v.Reason = "best run so far"
		default:
			v.Reason = fmt.Sprintf("no improvement over support=%d", best.support)
		}
		if better(r, best) {
			if bestVar >= 0 {
				prev := &w.Report.Variations[bestVar]
				prev.Accepted = false
				prev.Reason = fmt.Sprintf("superseded by support=%d", support)
			}
			best = r
			v.Accepted = true
			bestVar = len(w.Report.Variations)
		}
		w.Report.Variations = append(w.Report.Variations, v)
		ob.Count("wrapper.variations", 1)
		varSpan.End(obs.A("conflicts", an.Conflicts), obs.A("matches", len(matches)),
			obs.A("accepted", v.Accepted), obs.A("reason", v.Reason))
		if len(matches) > 0 && an.Conflicts == 0 {
			break // nothing left to improve
		}
	}
	if best == nil || len(best.matches) == 0 {
		if best != nil {
			w.Conflicts = best.analysis.Conflicts
		}
		// No variation survives a match failure: none was truly accepted.
		for i := range w.Report.Variations {
			w.Report.Variations[i].Accepted = false
		}
		w.abortObserved(ob, "match", "SOD cannot be matched against the inferred template")
		return w, nil
	}
	w.Template = best.tmpl
	w.Matches = best.matches
	// Re-intern the accepted template into a compact wrapper-scoped table:
	// the inference table carries the whole sample vocabulary plus
	// annotation labels, while serving only ever resolves the template
	// descriptors. The walk order matches Encode's, so a wrapper saves to
	// the same bytes whether it was inferred or loaded.
	w.tab = symtab.New()
	template.InternDescs(w.Template, w.tab)
	w.Conflicts = best.analysis.Conflicts
	w.Support = best.support
	w.Report.ChosenSupport = best.support
	w.Report.Conflicts = w.Conflicts
	w.Report.Matches = len(w.Matches)
	sp.Event("wrapper.accepted", obs.A("support", w.Support),
		obs.A("conflicts", w.Conflicts), obs.A("matches", len(w.Matches)))
	return w, nil
}

// abortObserved records an abort on the wrapper, its report, and the
// observability layer (event + per-stage counter).
func (w *Wrapper) abortObserved(ob *obs.Observer, stage, reason string) {
	w.abort(stage, reason)
	ob.Count("wrapper.aborts", 1)
	ob.Count("wrapper.aborts."+stage, 1)
	ob.Event("wrapper.abort", obs.A("stage", stage), obs.A("reason", reason))
}

// better ranks runs: having matches beats not; fewer conflicts beats
// more; lower support (larger template vocabulary) breaks ties.
func better(a, b *run) bool {
	if b == nil {
		return true
	}
	am, bm := len(a.matches) > 0, len(b.matches) > 0
	if am != bm {
		return am
	}
	if a.analysis.Conflicts != b.analysis.Conflicts {
		return a.analysis.Conflicts < b.analysis.Conflicts
	}
	return false
}

// run is one wrapper-generation attempt of the variation loop.
type run struct {
	analysis *eqclass.Analysis
	tmpl     *template.Template
	matches  []*template.Match
	support  int
}

// ExtractPage applies the wrapper to one page (parsed, cleaned) and
// returns the extracted objects. The page is scoped to the source's
// central block first when segmentation was used at inference time.
func (w *Wrapper) ExtractPage(page *dom.Node) []*sod.Instance {
	if w == nil {
		return nil
	}
	return w.extractPageObserved(page, w.obs)
}

// extractPageObserved is ExtractPage reporting to the given observer —
// the wrapper's own for single-page calls, a worker-scoped one inside
// ExtractBatch.
func (w *Wrapper) extractPageObserved(page *dom.Node, ob *obs.Observer) []*sod.Instance {
	if w == nil || w.Aborted || w.Template == nil {
		return nil
	}
	sp := ob.Span("pipeline.extract")
	region := page
	if w.useSegmentation {
		if n := segment.FindByKey(page, w.BlockKey); n != nil {
			region = n
		}
	}
	toks := eqclass.TokenizeLookupPage(w.tab, region, 0)
	objs := template.ExtractAll(w.SOD, w.Matches, toks)
	// Enforce the SOD's additional restrictions (§II.A footnote 1).
	objs, dropped := w.SOD.FilterByRules(objs)
	ob.Count("extract.pages", 1)
	ob.Count("extract.objects", int64(len(objs)))
	ob.Count("extract.rule_dropped", int64(dropped))
	sp.End(obs.A("objects", len(objs)), obs.A("rule_dropped", dropped))
	return objs
}

// ExtractBatch applies the wrapper to every page concurrently (bounded
// by the inference Config.Workers) and returns one object slice per
// input page, in input order. Extraction is read-only on the wrapper —
// the template, matches and block key are immutable after Infer — so
// pages are independent and the batch output is byte-identical to
// calling ExtractPage in a loop.
func (w *Wrapper) ExtractBatch(pages []*dom.Node) [][]*sod.Instance {
	out, _ := w.ExtractBatchContext(context.Background(), pages)
	return out
}

// ExtractBatchContext is ExtractBatch honoring cancellation: the per-page
// extraction fan-out stops dispatching once ctx is canceled, and the
// context error comes back with a nil slice.
func (w *Wrapper) ExtractBatchContext(ctx context.Context, pages []*dom.Node) ([][]*sod.Instance, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([][]*sod.Instance, len(pages))
	if w == nil || w.Aborted || w.Template == nil || len(pages) == 0 {
		return out, ctx.Err()
	}
	sp := w.obs.Span("pipeline.extract_batch",
		obs.A("pages", len(pages)), obs.A("workers", parallel.Workers(w.workers)))
	if err := parallel.ForEachObservedCtx(ctx, sp.Observer(), w.workers, len(pages), func(wob *obs.Observer, i int) {
		out[i] = w.extractPageObserved(pages[i], wob)
	}); err != nil {
		sp.End(obs.A("canceled", true))
		return nil, err
	}
	total := 0
	for _, objs := range out {
		total += len(objs)
	}
	sp.End(obs.A("objects", total))
	return out, nil
}

// ExtractPages applies the wrapper to every page and returns the
// concatenated objects, in page order. Per the paper, once the wrapper
// is constructed this step is negligible in cost and needs no
// annotations; it fans out across the configured workers.
func (w *Wrapper) ExtractPages(pages []*dom.Node) []*sod.Instance {
	var out []*sod.Instance
	for _, objs := range w.ExtractBatch(pages) {
		out = append(out, objs...)
	}
	return out
}

// EnrichDictionaries implements the dictionary-enrichment step (Eq. 4):
// values extracted for isInstanceOf types are added to their dictionaries
// with a confidence combining the wrapper score and the overlap between
// the extracted set and the existing dictionary. It returns the number of
// new entries added.
func EnrichDictionaries(reg *recognize.Registry, s *sod.Type, objects []*sod.Instance, wrapperScore float64) int {
	return EnrichDictionariesObserved(reg, s, objects, wrapperScore, nil)
}

// EnrichDictionariesObserved is EnrichDictionaries reporting each
// accepted and rejected term (Eq. 4 accounting) to the observer.
func EnrichDictionariesObserved(reg *recognize.Registry, s *sod.Type, objects []*sod.Instance, wrapperScore float64, ob *obs.Observer) int {
	sp := ob.Span("pipeline.enrich", obs.A("objects", len(objects)), obs.A("wrapper_score", wrapperScore))
	ob = sp.Observer()
	added, rejected := 0, 0
	for _, e := range s.InstanceOfTypes() {
		dict, ok := reg.Dictionary(e.Recognizer)
		if !ok {
			continue
		}
		values := collectValues(objects, e.Name)
		if len(values) == 0 {
			continue
		}
		// Overlap term of Eq. 4: Σ_{D∩I} score(i,c) / count(I).
		overlap := 0.0
		for _, v := range values {
			if conf, ok := dict.Contains(v); ok {
				overlap += conf
			}
		}
		overlap /= float64(len(values))
		conf := 0.5*wrapperScore + 0.5*overlap
		for _, v := range values {
			if _, known := dict.Contains(v); known {
				rejected++
				ob.Event("enrich.known", obs.A("type", e.Name), obs.A("value", v))
				continue
			}
			dict.Add(v, conf)
			added++
			ob.Event("enrich.add", obs.A("type", e.Name), obs.A("value", v), obs.A("confidence", conf))
		}
	}
	ob.Count("enrich.added", int64(added))
	ob.Count("enrich.rejected", int64(rejected))
	sp.End(obs.A("added", added), obs.A("rejected", rejected))
	return added
}

// collectValues gathers every leaf value bound to the named entity type
// across the instance trees.
func collectValues(objects []*sod.Instance, typeName string) []string {
	var out []string
	seen := make(map[string]bool)
	var rec func(in *sod.Instance)
	rec = func(in *sod.Instance) {
		if in.Leaf() {
			if in.Type.Name == typeName && in.Value != "" && !seen[in.Value] {
				seen[in.Value] = true
				out = append(out, in.Value)
			}
			return
		}
		for _, c := range in.Children {
			rec(c)
		}
	}
	for _, o := range objects {
		rec(o)
	}
	return out
}

// Describe summarizes the wrapper for logs and CLI output.
func (w *Wrapper) Describe() string {
	if w.Aborted {
		return "aborted: " + w.AbortReason
	}
	return fmt.Sprintf("matches=%d support=%d conflicts=%d score=%.3f",
		len(w.Matches), w.Support, w.Conflicts, w.Score())
}
