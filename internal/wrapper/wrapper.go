// Package wrapper orchestrates the full ObjectRunner targeted-extraction
// pipeline (paper §III): pre-processing and segmentation, recognizer
// set-up, annotation and sample selection (Algorithm 1), wrapper
// generation over equivalence classes (Algorithm 2) with early stopping
// (§III.E), SOD matching, extraction, the self-validating parameter
// variation loop (§IV, "automatic variation of parameters"), and
// dictionary enrichment (Eq. 4).
package wrapper

import (
	"fmt"

	"objectrunner/internal/annotate"
	"objectrunner/internal/dom"
	"objectrunner/internal/eqclass"
	"objectrunner/internal/recognize"
	"objectrunner/internal/segment"
	"objectrunner/internal/sod"
	"objectrunner/internal/template"
)

// Config tunes the pipeline. The zero value is completed with the paper's
// defaults by Normalize.
type Config struct {
	// Sample configures Algorithm 1 (sample size k, alpha, shrink).
	Sample annotate.Params
	// EQ configures Algorithm 2 (support, annotation threshold).
	EQ eqclass.Params
	// SupportMin and SupportMax bound the automatic support variation
	// (3 to 5 in the paper). The loop re-executes wrapper generation with
	// the next support value while conflicts remain.
	SupportMin, SupportMax int
	// UseSegmentation enables the VIPS-style central-block scoping.
	UseSegmentation bool
	// Segment configures the block selection heuristic.
	Segment segment.Options
	// RandomSample switches Algorithm 1 off and samples pages uniformly
	// (the baseline of Table II).
	RandomSample bool
	// RandomSeed drives the baseline sampler.
	RandomSeed uint64
}

// DefaultConfig mirrors the paper's experimental setup.
func DefaultConfig() Config {
	return Config{
		Sample:          annotate.DefaultParams(),
		EQ:              eqclass.DefaultParams(),
		SupportMin:      3,
		SupportMax:      5,
		UseSegmentation: true,
		Segment:         segment.DefaultOptions(),
	}
}

// Normalize fills unset fields with defaults.
func (c *Config) Normalize() {
	d := DefaultConfig()
	if c.Sample.SampleSize == 0 {
		c.Sample = d.Sample
	}
	if c.EQ.MaxIter == 0 {
		c.EQ = d.EQ
	}
	if c.SupportMin == 0 {
		c.SupportMin = d.SupportMin
	}
	if c.SupportMax < c.SupportMin {
		c.SupportMax = c.SupportMin
	}
}

// Wrapper is an inferred extraction template for one source, applicable
// to any page of that source.
type Wrapper struct {
	SOD      *sod.Type
	Template *template.Template
	Matches  []*template.Match
	// Conflicts is the conflicting-annotation count of the chosen run
	// (the wrapper quality estimate).
	Conflicts int
	// Support is the support value the variation loop settled on.
	Support int
	// BlockKey re-identifies the source's central block on unseen pages.
	BlockKey segment.Key
	// Aborted reports that the source was discarded, with the reason.
	Aborted     bool
	AbortReason string

	useSegmentation bool
}

// Score is the wrapper quality estimate in [0, 1]: 1 for a wrapper built
// with no conflicting annotations, decaying with the conflict count.
func (w *Wrapper) Score() float64 {
	return 1 / (1 + float64(w.Conflicts))
}

// Infer runs the pipeline over a source's pages (parsed and cleaned DOM
// trees) and returns the wrapper. It never fails hard: sources that do
// not carry the targeted data come back with Aborted set.
func Infer(pages []*dom.Node, s *sod.Type, recs map[string]recognize.Recognizer, tf annotate.TermFreq, cfg Config) *Wrapper {
	cfg.Normalize()
	w := &Wrapper{SOD: s, useSegmentation: cfg.UseSegmentation}
	if len(pages) == 0 {
		w.Aborted, w.AbortReason = true, "no pages"
		return w
	}

	// Pre-processing: central-block scoping (VIPS-style).
	regions := pages
	if cfg.UseSegmentation {
		regions = segment.SelectMain(pages, cfg.Segment)
		w.BlockKey = segment.KeyOf(regions[0])
	}

	// Annotation and sample selection (Algorithm 1 or the random
	// baseline). The effective sample stays well below the page pool —
	// the paper samples k≈20 of ~50 crawled pages — so that selection
	// has room to skip off-template pages.
	sampleCfg := cfg.Sample
	if cap := 3 * len(regions) / 5; sampleCfg.SampleSize > cap {
		sampleCfg.SampleSize = cap
		if sampleCfg.SampleSize < 4 {
			sampleCfg.SampleSize = 4
		}
	}
	var res *annotate.Result
	if cfg.RandomSample {
		res = annotate.SelectRandom(regions, recs, sampleCfg.SampleSize, cfg.RandomSeed)
	} else {
		res = annotate.SelectSample(regions, s, recs, tf, sampleCfg)
	}
	if res.Aborted {
		w.Aborted, w.AbortReason = true, res.AbortReason
		return w
	}
	if len(res.Sample) == 0 {
		w.Aborted, w.AbortReason = true, "empty sample"
		return w
	}

	// The entity types that are annotated somewhere in the sample; used
	// by the partial-matching early-stop test.
	annotatedTypes := make(map[string]bool)
	for _, e := range s.EntityTypes() {
		for _, pa := range res.Sample {
			if pa.CountType(e.Name) > 0 {
				annotatedTypes[e.Name] = true
				break
			}
		}
	}

	// Tokenize the sample once.
	var sample [][]*eqclass.Occurrence
	for i, pa := range res.Sample {
		sample = append(sample, eqclass.TokenizePage(pa.Page, pa, i))
	}

	// Wrapper generation with automatic support variation: re-execute
	// with the next support value while the quality estimate (conflict
	// count) can improve; keep the best run.
	var best *run
	for support := cfg.SupportMin; support <= cfg.SupportMax; support++ {
		p := cfg.EQ
		p.Support = support
		// Early stopping (§III.E): abort the iteration when no partial
		// match of the SOD into the current template tree remains
		// possible.
		hook := func(an *eqclass.Analysis) bool {
			return template.PartialMatchPossible(s, an, annotatedTypes)
		}
		an := analyzeFresh(sample, p, hook)
		tmpl := template.Build(an)
		matches := tmpl.MatchSOD(s)
		r := &run{analysis: an, tmpl: tmpl, matches: matches, support: support}
		if better(r, best) {
			best = r
		}
		if len(matches) > 0 && an.Conflicts == 0 {
			break // nothing left to improve
		}
	}
	if best == nil || len(best.matches) == 0 {
		w.Aborted = true
		w.AbortReason = "SOD cannot be matched against the inferred template"
		if best != nil {
			w.Conflicts = best.analysis.Conflicts
		}
		return w
	}
	w.Template = best.tmpl
	w.Matches = best.matches
	w.Conflicts = best.analysis.Conflicts
	w.Support = best.support
	return w
}

// better ranks runs: having matches beats not; fewer conflicts beats
// more; lower support (larger template vocabulary) breaks ties.
func better(a, b *run) bool {
	if b == nil {
		return true
	}
	am, bm := len(a.matches) > 0, len(b.matches) > 0
	if am != bm {
		return am
	}
	if a.analysis.Conflicts != b.analysis.Conflicts {
		return a.analysis.Conflicts < b.analysis.Conflicts
	}
	return false
}

// analyzeFresh re-tokenizes occurrences (roles are mutable) and analyzes.
func analyzeFresh(sample [][]*eqclass.Occurrence, p eqclass.Params, hook func(*eqclass.Analysis) bool) *eqclass.Analysis {
	fresh := make([][]*eqclass.Occurrence, len(sample))
	for i, page := range sample {
		fresh[i] = make([]*eqclass.Occurrence, len(page))
		for j, o := range page {
			cp := *o
			fresh[i][j] = &cp
		}
	}
	return eqclass.Analyze(fresh, p, hook)
}

// run is one wrapper-generation attempt of the variation loop.
type run struct {
	analysis *eqclass.Analysis
	tmpl     *template.Template
	matches  []*template.Match
	support  int
}

// ExtractPage applies the wrapper to one page (parsed, cleaned) and
// returns the extracted objects. The page is scoped to the source's
// central block first when segmentation was used at inference time.
func (w *Wrapper) ExtractPage(page *dom.Node) []*sod.Instance {
	if w.Aborted || w.Template == nil {
		return nil
	}
	region := page
	if w.useSegmentation {
		if n := segment.FindByKey(page, w.BlockKey); n != nil {
			region = n
		}
	}
	toks := eqclass.TokenizePage(region, nil, 0)
	objs := template.ExtractAll(w.SOD, w.Matches, toks)
	// Enforce the SOD's additional restrictions (§II.A footnote 1).
	objs, _ = w.SOD.FilterByRules(objs)
	return objs
}

// ExtractPages applies the wrapper to every page and returns the
// concatenated objects. Per the paper, once the wrapper is constructed
// this step is negligible in cost and needs no annotations.
func (w *Wrapper) ExtractPages(pages []*dom.Node) []*sod.Instance {
	var out []*sod.Instance
	for _, p := range pages {
		out = append(out, w.ExtractPage(p)...)
	}
	return out
}

// EnrichDictionaries implements the dictionary-enrichment step (Eq. 4):
// values extracted for isInstanceOf types are added to their dictionaries
// with a confidence combining the wrapper score and the overlap between
// the extracted set and the existing dictionary. It returns the number of
// new entries added.
func EnrichDictionaries(reg *recognize.Registry, s *sod.Type, objects []*sod.Instance, wrapperScore float64) int {
	added := 0
	for _, e := range s.InstanceOfTypes() {
		dict, ok := reg.Dictionary(e.Recognizer)
		if !ok {
			continue
		}
		values := collectValues(objects, e.Name)
		if len(values) == 0 {
			continue
		}
		// Overlap term of Eq. 4: Σ_{D∩I} score(i,c) / count(I).
		overlap := 0.0
		for _, v := range values {
			if conf, ok := dict.Contains(v); ok {
				overlap += conf
			}
		}
		overlap /= float64(len(values))
		conf := 0.5*wrapperScore + 0.5*overlap
		for _, v := range values {
			if _, known := dict.Contains(v); known {
				continue
			}
			dict.Add(v, conf)
			added++
		}
	}
	return added
}

// collectValues gathers every leaf value bound to the named entity type
// across the instance trees.
func collectValues(objects []*sod.Instance, typeName string) []string {
	var out []string
	seen := make(map[string]bool)
	var rec func(in *sod.Instance)
	rec = func(in *sod.Instance) {
		if in.Leaf() {
			if in.Type.Name == typeName && in.Value != "" && !seen[in.Value] {
				seen[in.Value] = true
				out = append(out, in.Value)
			}
			return
		}
		for _, c := range in.Children {
			rec(c)
		}
	}
	for _, o := range objects {
		rec(o)
	}
	return out
}

// Describe summarizes the wrapper for logs and CLI output.
func (w *Wrapper) Describe() string {
	if w.Aborted {
		return "aborted: " + w.AbortReason
	}
	return fmt.Sprintf("matches=%d support=%d conflicts=%d score=%.3f",
		len(w.Matches), w.Support, w.Conflicts, w.Score())
}
