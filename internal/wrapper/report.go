package wrapper

import (
	"fmt"
	"strings"
)

// Variation is the outcome of one token-support value of the automatic
// parameter-variation loop (§IV).
type Variation struct {
	Support    int
	Conflicts  int
	Matches    int
	EQs        int
	Iterations int
	// Accepted marks the run the wrapper finally kept.
	Accepted bool
	// Reason narrates why the run was kept or rejected.
	Reason string
}

// Report is the EXPLAIN-style account of one wrapper inference: which
// stages ran, what they decided, and why the pipeline aborted or settled
// on its final parameters. It is always populated, including for aborted
// wrappers.
type Report struct {
	Pages int
	// Segmentation narrates the central-block choice.
	Segmentation bool
	BlockTag     string
	BlockPath    string
	// SampleSize is the number of pages kept by Algorithm 1.
	SampleSize int
	// TypeOrder is the selectivity-ordered processing order of Eq. 2.
	TypeOrder []string
	// AnnotatedTypes lists the entity types seen somewhere in the sample.
	AnnotatedTypes []string
	// Variations holds one entry per support value tried.
	Variations []Variation
	// ChosenSupport is the accepted support value (0 when aborted before
	// the loop).
	ChosenSupport int
	Conflicts     int
	Matches       int
	// Abort accounting.
	Aborted     bool
	AbortStage  string
	AbortReason string
}

// String renders the report as a human-readable EXPLAIN block.
func (r *Report) String() string {
	if r == nil {
		return "no inference report"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "wrapper inference over %d pages\n", r.Pages)
	if r.Segmentation {
		fmt.Fprintf(&sb, "  segment: central block <%s> at %s\n", r.BlockTag, r.BlockPath)
	} else {
		sb.WriteString("  segment: disabled (whole pages)\n")
	}
	if len(r.TypeOrder) > 0 {
		fmt.Fprintf(&sb, "  annotate: type order by selectivity: %s\n", strings.Join(r.TypeOrder, " > "))
	}
	if r.SampleSize > 0 {
		fmt.Fprintf(&sb, "  annotate: sample of %d pages selected (Algorithm 1)\n", r.SampleSize)
	}
	if len(r.AnnotatedTypes) > 0 {
		fmt.Fprintf(&sb, "  annotate: types witnessed in sample: %s\n", strings.Join(r.AnnotatedTypes, ", "))
	}
	for _, v := range r.Variations {
		verdict := "rejected"
		if v.Accepted {
			verdict = "accepted"
		}
		fmt.Fprintf(&sb, "  variation support=%d: eqs=%d conflicts=%d matches=%d iterations=%d -> %s (%s)\n",
			v.Support, v.EQs, v.Conflicts, v.Matches, v.Iterations, verdict, v.Reason)
	}
	if r.Aborted {
		fmt.Fprintf(&sb, "  ABORTED at %s: %s\n", r.AbortStage, r.AbortReason)
		return sb.String()
	}
	fmt.Fprintf(&sb, "  chosen: support=%d matches=%d conflicts=%d\n", r.ChosenSupport, r.Matches, r.Conflicts)
	return sb.String()
}

// abort records an abort on both the wrapper and its report.
func (w *Wrapper) abort(stage, reason string) {
	w.Aborted, w.AbortReason = true, reason
	if w.Report != nil {
		w.Report.Aborted = true
		w.Report.AbortStage = stage
		w.Report.AbortReason = reason
	}
}
