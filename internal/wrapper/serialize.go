package wrapper

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"objectrunner/internal/obs"
	"objectrunner/internal/segment"
	"objectrunner/internal/sod"
	"objectrunner/internal/symtab"
	"objectrunner/internal/template"
)

// Versioned wrapper persistence: the full learned state of an inferred
// wrapper — template tree, canonical SOD binding, token-role descriptor
// tables, block key, support/conflict accounting and the EXPLAIN report —
// encodes to a self-describing stream and decodes to a wrapper whose
// Extract output is byte-identical to the original's. The paper's
// economics depend on this: one expensive Wrap amortizes over many pages
// only if the wrapper outlives the process that inferred it.
//
// Stream layout:
//
//	objectrunner-wrapper v<version> sha256=<hex>\n
//	<JSON payload>
//
// The header pins the format version (readers reject other versions) and
// carries a SHA-256 checksum of the payload, so truncated or corrupted
// spills are detected before a half-built wrapper can serve traffic.

// FormatMagic identifies the persistence stream.
const FormatMagic = "objectrunner-wrapper"

// FormatVersion is the current stream version. v2 introduced the
// wrapper-scoped symbol table: descriptor Value/Path strings are stored
// once in the Symbols list and referenced by id from the template tree.
// v1 streams (inline strings, no symbol list) still load — the reader
// rebuilds the table by re-interning the template in walk order.
const FormatVersion = 2

// minFormatVersion is the oldest stream version Decode accepts.
const minFormatVersion = 1

// ErrFormat reports a stream that is not a wrapper persistence stream, is
// of an unsupported version, or fails its checksum.
var ErrFormat = errors.New("wrapper: invalid persistence stream")

// ErrSODMismatch reports a persisted wrapper loaded against an extractor
// whose SOD differs from the one the wrapper was inferred for.
var ErrSODMismatch = errors.New("wrapper: persisted wrapper was inferred for a different SOD")

// persisted is the JSON payload of the stream.
type persisted struct {
	SODSig          string                      `json:"sod_sig"`
	SOD             int                         `json:"sod"`
	Aborted         bool                        `json:"aborted,omitempty"`
	AbortReason     string                      `json:"abort_reason,omitempty"`
	Support         int                         `json:"support,omitempty"`
	Conflicts       int                         `json:"conflicts,omitempty"`
	UseSegmentation bool                        `json:"use_segmentation,omitempty"`
	Workers         int                         `json:"workers,omitempty"`
	BlockTag        string                      `json:"block_tag,omitempty"`
	BlockPath       string                      `json:"block_path,omitempty"`
	BlockAttrSig    string                      `json:"block_attr_sig,omitempty"`
	Report          *Report                     `json:"report,omitempty"`
	Types           []sod.PersistedType         `json:"types,omitempty"`
	Symbols         []string                    `json:"symbols,omitempty"`
	Template        *template.PersistedTemplate `json:"template,omitempty"`
	Matches         []*template.PersistedMatch  `json:"matches,omitempty"`
}

// Encode writes the wrapper's full learned state to dst. Aborted wrappers
// encode too (their Report explains the abort); nil wrappers do not.
func (w *Wrapper) Encode(dst io.Writer) error {
	if w == nil {
		return errors.New("wrapper: cannot encode a nil wrapper")
	}
	p := persisted{
		SOD:             -1,
		Aborted:         w.Aborted,
		AbortReason:     w.AbortReason,
		Support:         w.Support,
		Conflicts:       w.Conflicts,
		UseSegmentation: w.useSegmentation,
		Workers:         w.workers,
		BlockTag:        w.BlockKey.Tag,
		BlockPath:       w.BlockKey.Path,
		BlockAttrSig:    w.BlockKey.AttrSig,
		Report:          w.Report,
	}
	pool := sod.NewTypePool()
	if w.SOD != nil {
		p.SODSig = w.SOD.String()
		p.SOD = pool.Add(w.SOD)
	}
	if w.Template != nil {
		if w.tab == nil {
			// Hand-built wrappers: establish the symbol-table invariant
			// before the descriptors' symbol ids are written out.
			w.tab = symtab.New()
			template.InternDescs(w.Template, w.tab)
		}
		p.Symbols = w.tab.Symbols()
		p.Template, p.Matches = template.Persist(w.Template, w.Matches, pool)
	}
	p.Types = pool.Records()
	payload, err := json.Marshal(p)
	if err != nil {
		return fmt.Errorf("wrapper: encode: %w", err)
	}
	sum := sha256.Sum256(payload)
	if _, err := fmt.Fprintf(dst, "%s v%d sha256=%s\n", FormatMagic, FormatVersion, hex.EncodeToString(sum[:])); err != nil {
		return err
	}
	_, err = dst.Write(payload)
	return err
}

// Decode reads a wrapper persisted by Encode. When rebind is non-nil, it
// becomes the decoded wrapper's SOD — after verifying that its canonical
// signature matches the persisted one (ErrSODMismatch otherwise); this is
// how loaded wrappers regain the live SOD's rules. With a nil rebind the
// persisted SOD (sans rules) is used as-is.
func Decode(src io.Reader, rebind *sod.Type) (*Wrapper, error) {
	br := bufio.NewReader(src)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("%w: missing header: %v", ErrFormat, err)
	}
	fields := strings.Fields(strings.TrimSuffix(header, "\n"))
	if len(fields) != 3 || fields[0] != FormatMagic {
		return nil, fmt.Errorf("%w: not a %s stream", ErrFormat, FormatMagic)
	}
	version, err := strconv.Atoi(strings.TrimPrefix(fields[1], "v"))
	if err != nil || !strings.HasPrefix(fields[1], "v") {
		return nil, fmt.Errorf("%w: malformed version %q", ErrFormat, fields[1])
	}
	if version < minFormatVersion || version > FormatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d (supported: %d through %d)", ErrFormat, version, minFormatVersion, FormatVersion)
	}
	wantSum, ok := strings.CutPrefix(fields[2], "sha256=")
	if !ok {
		return nil, fmt.Errorf("%w: malformed checksum field %q", ErrFormat, fields[2])
	}
	payload, err := io.ReadAll(br)
	if err != nil {
		return nil, fmt.Errorf("wrapper: decode: %w", err)
	}
	sum := sha256.Sum256(payload)
	if got := hex.EncodeToString(sum[:]); got != wantSum {
		return nil, fmt.Errorf("%w: checksum mismatch (stream corrupted or truncated)", ErrFormat)
	}
	var p persisted
	dec := json.NewDecoder(bytes.NewReader(payload))
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("%w: payload: %v", ErrFormat, err)
	}
	types, err := sod.DecodeTypePool(p.Types)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	w := &Wrapper{
		Aborted:         p.Aborted,
		AbortReason:     p.AbortReason,
		Support:         p.Support,
		Conflicts:       p.Conflicts,
		useSegmentation: p.UseSegmentation,
		workers:         p.Workers,
		BlockKey:        segment.Key{Tag: p.BlockTag, Path: p.BlockPath, AttrSig: p.BlockAttrSig},
		Report:          p.Report,
	}
	if p.SOD >= 0 {
		if p.SOD >= len(types) {
			return nil, fmt.Errorf("%w: SOD reference %d out of range", ErrFormat, p.SOD)
		}
		w.SOD = types[p.SOD]
	}
	if rebind != nil {
		if p.SODSig != "" && rebind.String() != p.SODSig {
			return nil, fmt.Errorf("%w: persisted for %q, loading against %q", ErrSODMismatch, p.SODSig, rebind.String())
		}
		w.SOD = rebind
	}
	if p.Template != nil {
		var tab *symtab.Table
		if version >= 2 {
			tab, err = symtab.Restore(p.Symbols)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrFormat, err)
			}
		}
		tmpl, matches, err := template.Restore(p.Template, p.Matches, types, tab)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
		if tab == nil {
			// v1 stream: rebuild the wrapper-scoped table from the inline
			// descriptor strings, in the same walk order Encode uses — a
			// migrated wrapper re-saves to a canonical v2 stream.
			tab = symtab.New()
			template.InternDescs(tmpl, tab)
		}
		w.Template = tmpl
		w.Matches = matches
		w.tab = tab
	}
	return w, nil
}

// SetWorkers overrides the decoded wrapper's worker-pool size (the saving
// machine's CPU count is meaningless on the serving machine).
func (w *Wrapper) SetWorkers(n int) { w.workers = n }

// SetObserver attaches an observer to the wrapper for its extraction
// calls. Decoded wrappers come back without one — observers are live
// process state, not learned state.
func (w *Wrapper) SetObserver(ob *obs.Observer) { w.obs = ob }
