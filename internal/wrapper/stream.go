package wrapper

// This file implements the streaming serve path: extraction straight off
// the raw HTML token stream, with no DOM tree, no cleaning pass and no
// page copy. The streaming tokenizer (eqclass.TokenizeLookupStream)
// replays parsing, cleaning and block scoping in a single pass over the
// source and bails out — explicitly, never silently — on the structures
// it cannot reproduce; those pages take the tree path as a fallback, so
// the streaming path is always byte-identical to ExtractPage.

import (
	"context"
	"sync"

	"objectrunner/internal/clean"
	"objectrunner/internal/eqclass"
	"objectrunner/internal/obs"
	"objectrunner/internal/parallel"
	"objectrunner/internal/sod"
	"objectrunner/internal/template"
)

// streamScratch bundles the reusable per-extract state of the streaming
// path: the tokenizer arena, the template matcher scratch, and the block
// key in stream form. Pooled rather than per-wrapper so concurrent
// serves never contend and idle wrappers hold no arenas.
type streamScratch struct {
	arena   eqclass.StreamArena
	scratch *template.Scratch
	key     eqclass.StreamKey
}

var streamPool = sync.Pool{New: func() any {
	return &streamScratch{scratch: template.NewScratch()}
}}

// ExtractStream applies the wrapper to one page of raw HTML without
// materializing a DOM tree. Output is byte-identical to
// ExtractPage(clean.Page(src)): pages the fused tokenizer cannot
// faithfully reproduce fall back to that exact call.
func (w *Wrapper) ExtractStream(src string) []*sod.Instance {
	if w == nil {
		return nil
	}
	return w.extractStreamObserved(src, w.obs)
}

// extractStreamObserved is ExtractStream reporting to the given observer.
func (w *Wrapper) extractStreamObserved(src string, ob *obs.Observer) []*sod.Instance {
	if w == nil || w.Aborted || w.Template == nil {
		return nil
	}
	sp := ob.Span("pipeline.extract_stream")
	ss := streamPool.Get().(*streamScratch)
	var key *eqclass.StreamKey
	if w.useSegmentation {
		ss.key = eqclass.StreamKey{Tag: w.BlockKey.Tag, Path: w.BlockKey.Path, AttrSig: w.BlockKey.AttrSig}
		key = &ss.key
	}
	toks, ok := eqclass.TokenizeLookupStream(&ss.arena, w.tab, src, key, 0)
	if !ok {
		streamPool.Put(ss)
		ob.Count("extract.stream_fallback", 1)
		sp.End(obs.A("fallback", true))
		return w.extractPageObserved(clean.Page(src), ob)
	}
	objs := template.ExtractAllStream(w.SOD, w.Matches, toks, ss.scratch)
	// Enforce the SOD's additional restrictions (§II.A footnote 1).
	objs, dropped := w.SOD.FilterByRules(objs)
	// Instances hold copied strings only; the arena and scratch are free
	// to serve the next page.
	streamPool.Put(ss)
	ob.Count("extract.pages", 1)
	ob.Count("extract.objects", int64(len(objs)))
	ob.Count("extract.rule_dropped", int64(dropped))
	sp.End(obs.A("objects", len(objs)), obs.A("rule_dropped", dropped))
	return objs
}

// ExtractStreamBatch applies the wrapper to every raw page concurrently
// (bounded by the inference Config.Workers) and returns one object slice
// per input page, in input order.
func (w *Wrapper) ExtractStreamBatch(pages []string) [][]*sod.Instance {
	out, _ := w.ExtractStreamBatchContext(context.Background(), pages)
	return out
}

// ExtractStreamBatchContext is ExtractStreamBatch honoring cancellation:
// the per-page fan-out stops dispatching once ctx is canceled, and the
// context error comes back with a nil slice.
func (w *Wrapper) ExtractStreamBatchContext(ctx context.Context, pages []string) ([][]*sod.Instance, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([][]*sod.Instance, len(pages))
	if w == nil || w.Aborted || w.Template == nil || len(pages) == 0 {
		return out, ctx.Err()
	}
	sp := w.obs.Span("pipeline.extract_stream_batch",
		obs.A("pages", len(pages)), obs.A("workers", parallel.Workers(w.workers)))
	if err := parallel.ForEachObservedCtx(ctx, sp.Observer(), w.workers, len(pages), func(wob *obs.Observer, i int) {
		out[i] = w.extractStreamObserved(pages[i], wob)
	}); err != nil {
		sp.End(obs.A("canceled", true))
		return nil, err
	}
	total := 0
	for _, objs := range out {
		total += len(objs)
	}
	sp.End(obs.A("objects", total))
	return out, nil
}
