package wrapper

import (
	"fmt"
	"strings"
	"testing"

	"objectrunner/internal/clean"
	"objectrunner/internal/dom"
	"objectrunner/internal/recognize"
	"objectrunner/internal/sod"
)

func concertRecs() (map[string]recognize.Recognizer, *recognize.Registry) {
	src := recognize.StaticSource{
		"Artist": {
			{Value: "Metallica", Confidence: 0.9}, {Value: "Madonna", Confidence: 0.95},
			{Value: "Muse", Confidence: 0.85}, {Value: "Coldplay", Confidence: 0.9},
		},
		"Theater": {
			{Value: "Madison Square Garden", Confidence: 0.9}, {Value: "The Town Hall", Confidence: 0.8},
			{Value: "B.B King Blues and Grill", Confidence: 0.75}, {Value: "Bowery Ballroom", Confidence: 0.85},
		},
	}
	reg := recognize.NewRegistry(src)
	recs, err := reg.ResolveAll(concertSOD())
	if err != nil {
		panic(err)
	}
	return recs, reg
}

func concertSOD() *sod.Type {
	return sod.MustParse(`tuple {
		artist: instanceOf(Artist)
		date: date
		theater: instanceOf(Theater)
	}`)
}

// site builds a realistic source: chrome + list of concert records.
func site(pages int, recordsOn func(i int) [][3]string) []*dom.Node {
	var out []*dom.Node
	for i := 0; i < pages; i++ {
		var sb strings.Builder
		sb.WriteString(`<html><head><title>gigs</title></head><body>`)
		sb.WriteString(`<div id="hdr"><span>GigFinder</span></div>`)
		sb.WriteString(`<div id="main"><ul>`)
		for _, r := range recordsOn(i) {
			fmt.Fprintf(&sb, `<li><div>%s</div><div>%s</div><div><a>%s</a></div></li>`, r[0], r[1], r[2])
		}
		sb.WriteString(`</ul></div>`)
		sb.WriteString(`<div id="ftr"><span>contact us</span></div>`)
		sb.WriteString(`</body></html>`)
		out = append(out, clean.Page(sb.String()))
	}
	return out
}

var pool = [][3]string{
	{"Metallica", "Monday May 11, 8:00pm", "Madison Square Garden"},
	{"Madonna", "Saturday May 29 7:00p", "The Town Hall"},
	{"Muse", "Friday June 19 7:00p", "B.B King Blues and Grill"},
	{"Coldplay", "Saturday August 8, 2010 8:00pm", "Bowery Ballroom"},
}

func rotating(n int) func(i int) [][3]string {
	return func(i int) [][3]string {
		var rs [][3]string
		for j := 0; j < n+i%2; j++ {
			rs = append(rs, pool[(i+j)%len(pool)])
		}
		return rs
	}
}

func TestInferAndExtract(t *testing.T) {
	recs, _ := concertRecs()
	pages := site(6, rotating(2))
	cfg := DefaultConfig()
	cfg.Sample.SampleSize = 6
	w := Infer(pages, concertSOD(), recs, nil, cfg)
	if w.Aborted {
		t.Fatalf("aborted: %s", w.AbortReason)
	}
	if len(w.Matches) == 0 {
		t.Fatal("no matches")
	}
	objs := w.ExtractPages(pages)
	want := 0
	for i := 0; i < 6; i++ {
		want += len(rotating(2)(i))
	}
	if len(objs) != want {
		t.Fatalf("extracted %d objects, want %d", len(objs), want)
	}
	for _, o := range objs {
		if o.FieldValue("artist") == "" || o.FieldValue("theater") == "" || o.FieldValue("date") == "" {
			t.Errorf("incomplete object: %s", o)
		}
	}
}

func TestInferAbortsOnIrrelevantSource(t *testing.T) {
	recs, _ := concertRecs()
	var pages []*dom.Node
	for i := 0; i < 5; i++ {
		pages = append(pages, clean.Page(`<html><body><div>about</div><div>terms</div></body></html>`))
	}
	cfg := DefaultConfig()
	cfg.Sample.SampleSize = 4
	w := Infer(pages, concertSOD(), recs, nil, cfg)
	if !w.Aborted {
		t.Errorf("irrelevant source not aborted: %s", w.Describe())
	}
	if w.ExtractPage(pages[0]) != nil {
		t.Error("aborted wrapper extracted objects")
	}
}

// TestSmallCorpusSampleClamp pins the sample-size clamp on tiny corpora:
// the floor of 4 the mid-size clamp applies must never push the
// effective sample size above the page pool itself (it used to ask
// Algorithm 1 for a 4-page sample out of a 2- or 3-page corpus).
func TestSmallCorpusSampleClamp(t *testing.T) {
	recs, _ := concertRecs()
	for _, pages := range []int{2, 3, 5} {
		ps := site(pages, rotating(2))
		w := Infer(ps, concertSOD(), recs, nil, DefaultConfig())
		if w.Report.SampleSize > pages {
			t.Errorf("pages=%d: effective sample %d exceeds the page pool", pages, w.Report.SampleSize)
		}
		if w.Aborted {
			t.Errorf("pages=%d: inference aborted on a tiny but clean corpus: %s", pages, w.AbortReason)
			continue
		}
		if objs := w.ExtractPages(ps); len(objs) == 0 {
			t.Errorf("pages=%d: no objects extracted", pages)
		}
	}
}

func TestInferNoPages(t *testing.T) {
	recs, _ := concertRecs()
	w := Infer(nil, concertSOD(), recs, nil, DefaultConfig())
	if !w.Aborted {
		t.Error("no-pages source not aborted")
	}
}

func TestWrapperScore(t *testing.T) {
	w := &Wrapper{Conflicts: 0}
	if w.Score() != 1 {
		t.Errorf("score = %v", w.Score())
	}
	w.Conflicts = 3
	if w.Score() != 0.25 {
		t.Errorf("score = %v", w.Score())
	}
}

func TestRandomSampleMode(t *testing.T) {
	recs, _ := concertRecs()
	pages := site(8, rotating(2))
	cfg := DefaultConfig()
	cfg.Sample.SampleSize = 5
	cfg.RandomSample = true
	cfg.RandomSeed = 17
	w := Infer(pages, concertSOD(), recs, nil, cfg)
	// All pages are rich here, so random sampling also succeeds.
	if w.Aborted {
		t.Fatalf("aborted: %s", w.AbortReason)
	}
	if len(w.ExtractPages(pages)) == 0 {
		t.Error("random-sample wrapper extracted nothing")
	}
}

func TestExtractOnUnseenPages(t *testing.T) {
	recs, _ := concertRecs()
	train := site(5, rotating(2))
	cfg := DefaultConfig()
	cfg.Sample.SampleSize = 5
	w := Infer(train, concertSOD(), recs, nil, cfg)
	if w.Aborted {
		t.Fatalf("aborted: %s", w.AbortReason)
	}
	unseen := site(1, func(int) [][3]string {
		return [][3]string{
			{"The Strokes", "Friday July 2, 9:00pm", "Terminal 5"},
			{"Arcade Fire", "Sunday July 4, 7:30pm", "Radio City"},
			{"Daft Punk", "Monday July 5, 10:00pm", "The Garage"},
		}
	})
	objs := w.ExtractPage(unseen[0])
	if len(objs) != 3 {
		t.Fatalf("extracted %d from unseen page, want 3", len(objs))
	}
	if objs[2].FieldValue("theater") != "The Garage" {
		t.Errorf("theater = %q", objs[2].FieldValue("theater"))
	}
}

func TestEnrichDictionaries(t *testing.T) {
	recs, reg := concertRecs()
	pages := site(5, rotating(2))
	cfg := DefaultConfig()
	cfg.Sample.SampleSize = 5
	w := Infer(pages, concertSOD(), recs, nil, cfg)
	if w.Aborted {
		t.Fatalf("aborted: %s", w.AbortReason)
	}
	unseen := site(1, func(int) [][3]string {
		return [][3]string{{"The Strokes", "Friday July 2, 9:00pm", "Terminal 5"}}
	})
	objs := w.ExtractPage(unseen[0])
	if len(objs) == 0 {
		t.Fatal("nothing extracted")
	}
	dict, _ := reg.Dictionary(sod.RecognizerRef{Kind: "instanceOf", Arg: "Artist"})
	before := dict.Len()
	added := EnrichDictionaries(reg, concertSOD(), objs, w.Score())
	if added == 0 {
		t.Fatal("no entries added")
	}
	if dict.Len() <= before {
		t.Error("artist dictionary did not grow")
	}
	if conf, ok := dict.Contains("The Strokes"); !ok || conf <= 0 {
		t.Errorf("The Strokes not enriched (conf=%v ok=%v)", conf, ok)
	}
	// Enrichment is idempotent for known values.
	if again := EnrichDictionaries(reg, concertSOD(), objs, w.Score()); again != 0 {
		t.Errorf("re-enrichment added %d entries", again)
	}
}

func TestDescribe(t *testing.T) {
	w := &Wrapper{Aborted: true, AbortReason: "x"}
	if !strings.Contains(w.Describe(), "aborted") {
		t.Error("describe of aborted wrapper")
	}
	w = &Wrapper{Matches: nil, Support: 3}
	if !strings.Contains(w.Describe(), "support=3") {
		t.Errorf("describe = %s", w.Describe())
	}
}

func TestSupportVariationImprovesNoisySource(t *testing.T) {
	// A source with 2 noisy pages (extra junk rows) among 6 good ones:
	// at support 3 the junk may enter the template; the variation loop
	// should still land on a working wrapper.
	recs, _ := concertRecs()
	pages := site(6, func(i int) [][3]string {
		rs := rotating(2)(i)
		return rs
	})
	// Corrupt two pages with an extra block.
	for i := 0; i < 2; i++ {
		extra := clean.Page(`<html><body><div id="main"><ul><li><div>junk</div></li></ul></div></body></html>`)
		_ = extra
		_ = i
	}
	cfg := DefaultConfig()
	cfg.Sample.SampleSize = 6
	w := Infer(pages, concertSOD(), recs, nil, cfg)
	if w.Aborted {
		t.Fatalf("aborted: %s", w.AbortReason)
	}
	if w.Support < cfg.SupportMin || w.Support > cfg.SupportMax {
		t.Errorf("support = %d outside [%d,%d]", w.Support, cfg.SupportMin, cfg.SupportMax)
	}
}
