// Package dedup implements the de-duplication step of the ObjectRunner
// architecture (paper Fig. 1, "pre-processing of extracted data"): the
// same real-world item frequently appears in several sources (the paper's
// example: the concerts on yellowpages.com are precisely the ones from
// zvents.com), and redundancy across sources is the system's safety net —
// objects lost in one source are found in another. De-duplication merges
// those copies.
package dedup

import (
	"sort"
	"strings"

	"objectrunner/internal/recognize"
	"objectrunner/internal/sod"
)

// Key computes a normalized identity key for an extracted instance: the
// sorted, token-normalized leaf values. Two objects with the same key are
// duplicates.
func Key(in *sod.Instance) string {
	vals := in.Values()
	norm := make([]string, 0, len(vals))
	for _, v := range vals {
		if n := recognize.NormalizePhrase(v); n != "" {
			norm = append(norm, n)
		}
	}
	sort.Strings(norm)
	return strings.Join(norm, "\x1f")
}

// Deduplicate removes exact duplicates (same identity key), keeping the
// first occurrence. Order is otherwise preserved.
func Deduplicate(objects []*sod.Instance) []*sod.Instance {
	seen := make(map[string]bool, len(objects))
	out := make([]*sod.Instance, 0, len(objects))
	for _, o := range objects {
		k := Key(o)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, o)
	}
	return out
}

// MergeSources concatenates per-source extractions and de-duplicates
// across them, returning the merged collection and how many duplicates
// were dropped.
func MergeSources(bySource [][]*sod.Instance) ([]*sod.Instance, int) {
	var all []*sod.Instance
	for _, objs := range bySource {
		all = append(all, objs...)
	}
	merged := Deduplicate(all)
	return merged, len(all) - len(merged)
}

// NearDuplicates reports pairs of objects that share a given fraction of
// their normalized leaf values (Jaccard similarity over token-normalized
// values) without being exact duplicates — candidates for fuzzy merging.
func NearDuplicates(objects []*sod.Instance, threshold float64) [][2]int {
	sets := make([]map[string]bool, len(objects))
	for i, o := range objects {
		s := make(map[string]bool)
		for _, v := range o.Values() {
			if n := recognize.NormalizePhrase(v); n != "" {
				s[n] = true
			}
		}
		sets[i] = s
	}
	var out [][2]int
	for i := 0; i < len(objects); i++ {
		for j := i + 1; j < len(objects); j++ {
			sim := jaccard(sets[i], sets[j])
			if sim >= threshold && sim < 1 {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

func jaccard(a, b map[string]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for v := range a {
		if b[v] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}
