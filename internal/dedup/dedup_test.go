package dedup

import (
	"testing"
	"testing/quick"

	"objectrunner/internal/sod"
)

var concertT = sod.MustParse(`tuple { artist: instanceOf(Artist), date: date }`)

func obj(artist, date string) *sod.Instance {
	return &sod.Instance{Type: concertT, Children: []*sod.Instance{
		sod.NewValue(concertT.Fields[0], artist),
		sod.NewValue(concertT.Fields[1], date),
	}}
}

func TestKeyNormalization(t *testing.T) {
	a := obj("Metallica", "May 11, 2010")
	b := obj("METALLICA", "may 11 2010")
	if Key(a) != Key(b) {
		t.Errorf("keys differ: %q vs %q", Key(a), Key(b))
	}
	c := obj("Muse", "May 11, 2010")
	if Key(a) == Key(c) {
		t.Error("distinct objects share a key")
	}
}

func TestKeyOrderInsensitive(t *testing.T) {
	a := &sod.Instance{Type: concertT, Children: []*sod.Instance{
		sod.NewValue(concertT.Fields[1], "May 11, 2010"),
		sod.NewValue(concertT.Fields[0], "Metallica"),
	}}
	b := obj("Metallica", "May 11, 2010")
	if Key(a) != Key(b) {
		t.Error("field order changed the key")
	}
}

func TestDeduplicate(t *testing.T) {
	objs := []*sod.Instance{
		obj("Metallica", "May 11, 2010"),
		obj("Muse", "June 19, 2010"),
		obj("metallica", "May 11 2010"), // duplicate of first
		obj("Muse", "June 19, 2010"),    // duplicate of second
	}
	out := Deduplicate(objs)
	if len(out) != 2 {
		t.Fatalf("got %d, want 2", len(out))
	}
	// First occurrences win, order preserved.
	if out[0].FieldValue("artist") != "Metallica" || out[1].FieldValue("artist") != "Muse" {
		t.Errorf("order not preserved: %v, %v", out[0], out[1])
	}
}

func TestDeduplicateEmpty(t *testing.T) {
	if got := Deduplicate(nil); len(got) != 0 {
		t.Error("dedup of nil")
	}
}

func TestMergeSources(t *testing.T) {
	s1 := []*sod.Instance{obj("Metallica", "May 11, 2010"), obj("Muse", "June 19, 2010")}
	s2 := []*sod.Instance{obj("Metallica", "May 11, 2010"), obj("Coldplay", "August 8, 2010")}
	merged, dropped := MergeSources([][]*sod.Instance{s1, s2})
	if len(merged) != 3 {
		t.Errorf("merged = %d, want 3", len(merged))
	}
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}
}

func TestNearDuplicates(t *testing.T) {
	objs := []*sod.Instance{
		obj("Metallica", "May 11, 2010"),
		obj("Metallica", "May 12, 2010"), // shares artist only
		obj("Coldplay", "August 8, 2010"),
	}
	pairs := NearDuplicates(objs, 0.2)
	found := false
	for _, p := range pairs {
		if p == [2]int{0, 1} {
			found = true
		}
		if p == [2]int{0, 2} {
			t.Error("unrelated objects flagged as near-duplicates")
		}
	}
	if !found {
		t.Errorf("near-duplicate pair not found: %v", pairs)
	}
	// Exact duplicates are excluded (similarity 1).
	dups := []*sod.Instance{obj("A", "May 1, 2010"), obj("A", "May 1, 2010")}
	if got := NearDuplicates(dups, 0.5); len(got) != 0 {
		t.Errorf("exact duplicates reported as near: %v", got)
	}
}

// Property: deduplication is idempotent.
func TestDeduplicateIdempotent(t *testing.T) {
	f := func(names []string) bool {
		var objs []*sod.Instance
		for _, n := range names {
			if n == "" {
				continue
			}
			objs = append(objs, obj(n, "May 1, 2010"))
		}
		once := Deduplicate(objs)
		twice := Deduplicate(once)
		return len(once) == len(twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
