package cluster

import (
	"fmt"
	"math"
	"testing"
)

// testKeys returns n synthetic source keys shaped like real ones
// (domain/source paths).
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("domain%d/source-%d", i%7, i)
	}
	return keys
}

func nodeIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("node-%c", 'a'+i)
	}
	return ids
}

// TestRingUniformity checks the key distribution across 3, 5 and 8
// nodes with a chi-square-style bound on sum((observed-expected)^2 /
// expected) over node buckets. The null model is the ring's own
// geometry, not multinomial sampling: with V vnodes per node the
// per-node share has std ≈ 1/(n·sqrt(V)), which puts the statistic's
// expectation near K/V for K keys (independent of n). The limit is 4x
// that — a broken hash or vnode layout skews it by orders of
// magnitude — plus a 25% cap on any single node's deviation from the
// fair share.
func TestRingUniformity(t *testing.T) {
	keys := testKeys(10000)
	for _, n := range []int{3, 5, 8} {
		t.Run(fmt.Sprintf("nodes=%d", n), func(t *testing.T) {
			ring, err := NewRing(nodeIDs(n), 0)
			if err != nil {
				t.Fatal(err)
			}
			counts := make(map[string]int, n)
			for _, k := range keys {
				counts[ring.Owner(k)]++
			}
			if len(counts) != n {
				t.Fatalf("only %d of %d nodes own keys: %v", len(counts), n, counts)
			}
			expected := float64(len(keys)) / float64(n)
			var chi2 float64
			for node, c := range counts {
				dev := float64(c) - expected
				chi2 += dev * dev / expected
				if frac := math.Abs(dev) / expected; frac > 0.25 {
					t.Errorf("node %s owns %d keys, %.0f%% off the fair share %.0f",
						node, c, frac*100, expected)
				}
			}
			limit := 4 * float64(len(keys)) / float64(DefaultVirtualNodes)
			if chi2 > limit {
				t.Errorf("chi-square statistic %.1f exceeds %.1f: %v", chi2, limit, counts)
			}
		})
	}
}

// TestRingMinimalMovement checks the consistent-hashing contract: when
// a node joins (or leaves), only the keys adjacent to its vnode points
// move — about 1/n of the keyspace — and every moved key lands on (or
// leaves) exactly the changed node.
func TestRingMinimalMovement(t *testing.T) {
	keys := testKeys(10000)
	for _, n := range []int{3, 5, 8} {
		t.Run(fmt.Sprintf("join_%d_to_%d", n, n+1), func(t *testing.T) {
			before, err := NewRing(nodeIDs(n), 0)
			if err != nil {
				t.Fatal(err)
			}
			after, err := NewRing(nodeIDs(n+1), 0)
			if err != nil {
				t.Fatal(err)
			}
			joined := nodeIDs(n + 1)[n]
			moved := 0
			for _, k := range keys {
				o1, o2 := before.Owner(k), after.Owner(k)
				if o1 == o2 {
					continue
				}
				moved++
				if o2 != joined {
					t.Fatalf("key %q moved %s -> %s, but only %s joined", k, o1, o2, joined)
				}
			}
			// Expected movement is 1/(n+1) of the keys; allow 2x slack for
			// vnode variance but fail on wholesale reshuffling.
			frac := float64(moved) / float64(len(keys))
			want := 1.0 / float64(n+1)
			if frac > 2*want {
				t.Errorf("join moved %.1f%% of keys, want about %.1f%%", frac*100, want*100)
			}
			if moved == 0 {
				t.Error("join moved no keys at all")
			}

			// Leave is the mirror image: removing the node must move back
			// exactly the keys it owned.
			for _, k := range keys {
				if after.Owner(k) != joined && before.Owner(k) != after.Owner(k) {
					t.Fatalf("key %q not owned by the leaving node changed owner", k)
				}
			}
		})
	}
}

// TestRingDeterministic asserts placement is a pure function of the
// node set: same inputs give identical owners across builds, and node
// list order does not matter.
func TestRingDeterministic(t *testing.T) {
	keys := testKeys(500)
	r1, err := NewRing([]string{"a", "b", "c"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing([]string{"c", "a", "b"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if r1.Owner(k) != r2.Owner(k) {
			t.Fatalf("owner of %q differs across node orderings: %s vs %s",
				k, r1.Owner(k), r2.Owner(k))
		}
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty node list accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Error("duplicate node id accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Error("empty node id accepted")
	}
}

func TestSingleNodeOwnsEverything(t *testing.T) {
	ring, err := NewRing([]string{"solo"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(100) {
		if ring.Owner(k) != "solo" {
			t.Fatalf("single-node ring sent %q elsewhere", k)
		}
	}
}
