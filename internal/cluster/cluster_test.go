package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"objectrunner/internal/obs"
)

func TestClusterNew(t *testing.T) {
	c, err := New("a", []Node{
		{ID: "a"}, // self needs no URL
		{ID: "b", URL: "http://peer-b:8080/"},
	}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if c.Self().ID != "a" || c.Size() != 2 {
		t.Errorf("self = %+v, size = %d", c.Self(), c.Size())
	}
	peers := c.Peers()
	if len(peers) != 1 || peers[0].ID != "b" || peers[0].URL != "http://peer-b:8080" {
		t.Errorf("peers = %+v (URL must be trimmed of the trailing slash)", peers)
	}
	// Ownership is total: every key has exactly one owner in the set.
	for _, k := range testKeys(200) {
		owner := c.Owner(k)
		if owner.ID != "a" && owner.ID != "b" {
			t.Fatalf("owner of %q = %+v", k, owner)
		}
		if c.IsLocal(k) != (owner.ID == "a") {
			t.Fatalf("IsLocal(%q) disagrees with Owner", k)
		}
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := New("x", []Node{{ID: "a", URL: "http://a"}}, 0); err == nil {
		t.Error("self missing from node list accepted")
	}
	if _, err := New("a", []Node{{ID: "a"}, {ID: "b"}}, 0); err == nil {
		t.Error("peer without URL accepted")
	}
	if _, err := New("a", []Node{{ID: "a"}, {ID: "a", URL: "http://x"}}, 0); err == nil {
		t.Error("duplicate node id accepted")
	}
}

func TestParseNodes(t *testing.T) {
	nodes, err := ParseNodes("a, b=http://10.0.0.2:8080 ,c=http://10.0.0.3:8080")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 || nodes[0].ID != "a" || nodes[0].URL != "" ||
		nodes[1].ID != "b" || nodes[1].URL != "http://10.0.0.2:8080" {
		t.Errorf("nodes = %+v", nodes)
	}
	if _, err := ParseNodes(""); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := ParseNodes("=http://x"); err == nil {
		t.Error("entry without id accepted")
	}
}

func TestForwardSetsLoopGuardAndTrace(t *testing.T) {
	var gotForwardedBy, gotTrace atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotForwardedBy.Store(r.Header.Get(HeaderForwardedBy))
		gotTrace.Store(r.Header.Get(HeaderTraceID))
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()

	f := NewForwarder("node-a", ForwarderConfig{Obs: obs.New()})
	res, err := f.Forward(context.Background(), Node{ID: "node-b", URL: ts.URL},
		http.MethodPost, "/v1/extract", []byte(`{}`), "trace-7")
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusOK || string(res.Body) != `{"ok":true}` {
		t.Errorf("result = %+v", res)
	}
	if res.ContentType != "application/json" {
		t.Errorf("content type = %q", res.ContentType)
	}
	if gotForwardedBy.Load() != "node-a" {
		t.Errorf("X-Forwarded-By = %q, want the forwarding node's id", gotForwardedBy.Load())
	}
	if gotTrace.Load() != "trace-7" {
		t.Errorf("X-Trace-Id = %q, want propagation", gotTrace.Load())
	}
}

func TestForwardRetriesThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	met := obs.New()
	f := NewForwarder("a", ForwarderConfig{Retries: 2, Backoff: time.Millisecond, Obs: met})
	res, err := f.Forward(context.Background(), Node{ID: "b", URL: ts.URL},
		http.MethodPost, "/v1/extract", nil, "")
	if err != nil || res.Status != http.StatusOK {
		t.Fatalf("res = %+v, err = %v", res, err)
	}
	if calls.Load() != 2 {
		t.Errorf("owner saw %d calls, want 2 (one 503 + one retry)", calls.Load())
	}
	if met.Counter(obs.SeriesKey("cluster.forward_retries", obs.L("owner", "b"))) != 1 {
		t.Error("cluster.forward_retries not counted")
	}
	if met.Counter(obs.SeriesKey("cluster.forwarded", obs.L("owner", "b"))) != 1 {
		t.Error("cluster.forwarded not counted")
	}
}

func TestForwardOwnerDownAfterRetries(t *testing.T) {
	// A peer that is down at the transport level: connection refused.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := ts.URL
	ts.Close()

	met := obs.New()
	f := NewForwarder("a", ForwarderConfig{Retries: 1, Backoff: time.Millisecond, Obs: met})
	_, err := f.Forward(context.Background(), Node{ID: "b", URL: url},
		http.MethodPost, "/v1/extract", []byte(`{}`), "")
	if err == nil {
		t.Fatal("forward to a dead peer returned no error")
	}
	if met.Counter(obs.SeriesKey("cluster.forward_errors",
		obs.L("kind", "network"), obs.L("owner", "b"))) != 2 {
		t.Errorf("network forward errors not counted per attempt: %v", met.Counters())
	}
}

func TestForwardDrainingOwnerReturnsLastResponse(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"draining"}`))
	}))
	defer ts.Close()

	f := NewForwarder("a", ForwarderConfig{Retries: 1, Backoff: time.Millisecond, Obs: obs.New()})
	res, err := f.Forward(context.Background(), Node{ID: "b", URL: ts.URL},
		http.MethodPost, "/v1/extract", nil, "")
	if err != nil {
		t.Fatalf("a reachable-but-draining owner must yield its response, got err %v", err)
	}
	if !res.OwnerDown() {
		t.Errorf("OwnerDown() = false for a 503 response")
	}
}

func TestForwardCanceledContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(time.Second)
	}))
	defer ts.Close()

	f := NewForwarder("a", ForwarderConfig{Obs: obs.New()})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := f.Forward(ctx, Node{ID: "b", URL: ts.URL}, http.MethodPost, "/v1/extract", nil, "")
	if err == nil {
		t.Fatal("canceled forward returned no error")
	}
}
