// Package cluster is the horizontal sharding layer of the serving tier:
// a consistent-hash ring that deterministically assigns every source
// key to one daemon instance, plus the forwarding client a node uses to
// proxy a request to the owner.
//
// The sharding unit is the source key because the paper's wrapper model
// makes it the natural partition: each source owns its independently
// inferred wrapper, so no cross-source state needs to move when a key
// changes hands — the next request on the new owner re-warms from the
// shared spill directory or re-infers. Virtual nodes smooth the key
// distribution; placement depends only on (node ids, vnode count), so
// every node computes the identical ring from identical flags and no
// coordination service is needed.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVirtualNodes is the per-node vnode count used when a Ring is
// built with vnodes <= 0. 128 points per node keeps the expected
// per-node share within a few percent of uniform for small clusters
// (see TestRingUniformity) at negligible memory cost.
const DefaultVirtualNodes = 128

// point is one vnode position on the ring.
type point struct {
	hash uint64
	node string
}

// Ring is an immutable consistent-hash ring over node ids. Build with
// NewRing; all methods are safe for concurrent use.
type Ring struct {
	points []point // sorted by hash
	nodes  []string
	vnodes int
}

// hash64 maps a string to a ring position. SHA-256 (truncated to its
// first 8 bytes) is deliberate over a faster non-crypto hash: placement
// must be identical across processes, architectures and Go versions,
// and Owner runs once per request — nanoseconds against a network hop.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds the ring for the given node ids with vnodes virtual
// nodes each (DefaultVirtualNodes when <= 0). Node order does not
// matter; duplicate ids are an error because they would silently own
// double the keyspace.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(nodes))
	sorted := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node id")
		}
		if seen[n] {
			return nil, fmt.Errorf("cluster: duplicate node id %q", n)
		}
		seen[n] = true
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	r := &Ring{
		points: make([]point, 0, len(nodes)*vnodes),
		nodes:  sorted,
		vnodes: vnodes,
	}
	for _, n := range sorted {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s#%d", n, i)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A 64-bit collision between vnode points is astronomically
		// unlikely but must not make placement order-dependent.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// Owner returns the node id owning the key: the first vnode point at or
// clockwise after the key's hash, wrapping at the top of the ring.
func (r *Ring) Owner(key string) string {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Nodes returns the ring's node ids in sorted order.
func (r *Ring) Nodes() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Size returns the number of nodes on the ring.
func (r *Ring) Size() int { return len(r.nodes) }
