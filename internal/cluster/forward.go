package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"objectrunner/internal/obs"
)

// Forward headers (mirrored in api/v1; duplicated here so the internal
// sharding layer does not depend on the public wire package).
const (
	// HeaderForwardedBy marks a proxied request with the forwarding
	// node's id. A node receiving it always serves locally — the loop
	// guard that makes ring-view disagreement (mid-rollout config skew)
	// degrade into one extra hop instead of a forwarding cycle.
	HeaderForwardedBy = "X-Forwarded-By"
	// HeaderTraceID is propagated onto the forwarded request so the
	// owner's spans and flight recorder join the original trace.
	HeaderTraceID = "X-Trace-Id"
)

// maxForwardResponse caps a peer response body read (64 MiB, matching
// the server's default request-body cap, since a forwarded response
// mostly carries extracted objects from request-sized inputs).
const maxForwardResponse = 64 << 20

// ForwarderConfig tunes a Forwarder; the zero value is completed with
// defaults.
type ForwarderConfig struct {
	// Client is the HTTP client used toward peers. The default has a
	// 2-minute timeout (wrapper inference on a cold owner is the slow
	// path a forward must survive).
	Client *http.Client
	// Retries is how many times a failed forward is re-attempted
	// (transport errors and 502/503/504 — peer down, restarting or
	// draining). Default 2, so one request costs at most 3 attempts.
	Retries int
	// Backoff is the wait before the first retry; it doubles per
	// attempt. Default 50ms.
	Backoff time.Duration
	// Obs receives the forwarding counters (cluster.forwarded,
	// cluster.forward_errors{kind}, cluster.forward_retries).
	Obs *obs.Observer
}

// Forwarder proxies a request to the node owning its source key. Safe
// for concurrent use.
type Forwarder struct {
	self    string
	client  *http.Client
	retries int
	backoff time.Duration
	obs     *obs.Observer
}

// NewForwarder builds the forwarding client for the node with id self.
func NewForwarder(self string, cfg ForwarderConfig) *Forwarder {
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 2 * time.Minute}
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 2
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 50 * time.Millisecond
	}
	return &Forwarder{
		self:    self,
		client:  cfg.Client,
		retries: cfg.Retries,
		backoff: cfg.Backoff,
		obs:     cfg.Obs,
	}
}

// Result is a completed forward: the owner's response, to be relayed
// to the client verbatim.
type Result struct {
	Status      int
	Body        []byte
	ContentType string
}

// OwnerDown reports whether the response says the owner cannot serve
// right now (it answered but is draining, restarting or proxied-to by
// a dead upstream) — the caller should fall back to serving locally
// from the shared spill, exactly as it does on a transport error.
func (r *Result) OwnerDown() bool {
	switch r.Status {
	case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// Forward sends the request to the owner node and returns its response.
// Transport errors and owner-down statuses are retried with doubling
// backoff up to Retries times; a non-nil error means no usable HTTP
// response was obtained (the caller should fall back or answer 503).
// The forwarded request carries X-Forwarded-By: self (loop guard) and
// the original trace id.
func (f *Forwarder) Forward(ctx context.Context, node Node, method, path string, body []byte, traceID string) (*Result, error) {
	owner := obs.L("owner", node.ID)
	wait := f.backoff
	var lastErr error
	var last *Result
	for attempt := 0; attempt <= f.retries; attempt++ {
		if attempt > 0 {
			f.obs.CountL("cluster.forward_retries", 1, owner)
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				f.obs.CountL("cluster.forward_errors", 1, owner, obs.L("kind", "canceled"))
				return nil, ctx.Err()
			}
			wait *= 2
		}
		res, err := f.once(ctx, node, method, path, body, traceID)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				f.obs.CountL("cluster.forward_errors", 1, owner, obs.L("kind", "canceled"))
				return nil, err
			}
			f.obs.CountL("cluster.forward_errors", 1, owner, obs.L("kind", "network"))
			lastErr = err
			continue
		}
		if res.OwnerDown() {
			f.obs.CountL("cluster.forward_errors", 1, owner, obs.L("kind", "owner_down"))
			last, lastErr = res, nil
			continue
		}
		f.obs.CountL("cluster.forwarded", 1, owner)
		return res, nil
	}
	if last != nil {
		// Every attempt reached the owner but it is down; hand the last
		// response back so the caller can fall back (or relay the 503).
		return last, nil
	}
	return nil, fmt.Errorf("cluster: forward to %s (%s) failed: %w", node.ID, node.URL, lastErr)
}

// once runs a single forward attempt.
func (f *Forwarder) once(ctx context.Context, node Node, method, path string, body []byte, traceID string) (*Result, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, node.URL+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set(HeaderForwardedBy, f.self)
	if traceID != "" {
		req.Header.Set(HeaderTraceID, traceID)
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxForwardResponse))
	if err != nil {
		return nil, err
	}
	return &Result{
		Status:      resp.StatusCode,
		Body:        b,
		ContentType: resp.Header.Get("Content-Type"),
	}, nil
}
