package cluster

import (
	"fmt"
	"net/url"
	"sort"
	"strings"
)

// Node is one daemon instance: its ring id and the base URL peers use
// to reach it.
type Node struct {
	ID  string
	URL string
}

// Cluster is one node's view of the ring: who it is, who the peers
// are, and which node owns a given source key. Immutable after New;
// safe for concurrent use.
type Cluster struct {
	self Node
	ring *Ring
	byID map[string]Node
}

// New builds a cluster view. nodes must include self (the daemon's own
// id); every node needs a base URL except self, whose URL peers know
// but the node itself never dials.
func New(selfID string, nodes []Node, vnodes int) (*Cluster, error) {
	byID := make(map[string]Node, len(nodes))
	ids := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if _, ok := byID[n.ID]; ok {
			return nil, fmt.Errorf("cluster: duplicate node id %q", n.ID)
		}
		if n.ID != selfID && n.URL == "" {
			return nil, fmt.Errorf("cluster: peer %q has no URL", n.ID)
		}
		if n.URL != "" {
			if _, err := url.Parse(n.URL); err != nil {
				return nil, fmt.Errorf("cluster: peer %q URL: %w", n.ID, err)
			}
			n.URL = strings.TrimRight(n.URL, "/")
		}
		byID[n.ID] = n
		ids = append(ids, n.ID)
	}
	self, ok := byID[selfID]
	if !ok {
		return nil, fmt.Errorf("cluster: self id %q not in the node list", selfID)
	}
	ring, err := NewRing(ids, vnodes)
	if err != nil {
		return nil, err
	}
	return &Cluster{self: self, ring: ring, byID: byID}, nil
}

// ParseNodes parses the -peers flag format: a comma-separated list of
// id=url entries, e.g. "a=http://10.0.0.1:8080,b=http://10.0.0.2:8080".
// The self entry's URL may be omitted ("a,b=http://...").
func ParseNodes(spec string) ([]Node, error) {
	var nodes []Node
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, u, _ := strings.Cut(part, "=")
		id = strings.TrimSpace(id)
		if id == "" {
			return nil, fmt.Errorf("cluster: node entry %q has no id", part)
		}
		nodes = append(nodes, Node{ID: id, URL: strings.TrimSpace(u)})
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: empty node list")
	}
	return nodes, nil
}

// Self returns this node.
func (c *Cluster) Self() Node { return c.self }

// Owner returns the node owning the source key.
func (c *Cluster) Owner(key string) Node { return c.byID[c.ring.Owner(key)] }

// IsLocal reports whether this node owns the key.
func (c *Cluster) IsLocal(key string) bool { return c.ring.Owner(key) == c.self.ID }

// Peers returns every node except self, in id order.
func (c *Cluster) Peers() []Node {
	out := make([]Node, 0, len(c.byID)-1)
	for _, id := range c.ring.Nodes() {
		if id != c.self.ID {
			out = append(out, c.byID[id])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Size returns the cluster's node count.
func (c *Cluster) Size() int { return len(c.byID) }
