package eqclass

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"objectrunner/internal/annotate"
	"objectrunner/internal/clean"
	"objectrunner/internal/recognize"
)

// analyzed runs the full analysis over the given page sources.
func analyzed(t testing.TB, srcs []string, recs map[string]recognize.Recognizer, p Params) *Analysis {
	t.Helper()
	var pages [][]*Occurrence
	for i, src := range srcs {
		page := clean.Page(src)
		var pa *annotate.PageAnnotations
		if recs != nil {
			pa = annotate.AnnotatePage(page, recs)
		}
		pages = append(pages, TokenizePage(page, pa, i))
	}
	return Analyze(pages, p, nil)
}

// listSrc builds a ul/li list page with n records of two fields each.
func listSrc(n, seed int) string {
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	var sb strings.Builder
	sb.WriteString("<html><body><ul>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, `<li><div class="a">%s</div><div class="b">%s</div></li>`,
			words[(seed+i)%len(words)], words[(seed+i+3)%len(words)])
	}
	sb.WriteString("</ul></body></html>")
	return sb.String()
}

// TestEQInvariants checks the structural invariants of every valid class:
// identical per-page counts for all roles, tuples in σ order, no
// overlapping tuples, hierarchy nesting consistent with ParentSlot.
func TestEQInvariants(t *testing.T) {
	a := analyzed(t, []string{listSrc(2, 0), listSrc(4, 1), listSrc(3, 2)}, nil,
		Params{Support: 3, MaxIter: 10, UseAnnotations: false, AnnThreshold: 0.7})
	for _, e := range a.EQs {
		if e.K() < 2 {
			t.Errorf("%v: hierarchy class with %d roles", e, e.K())
		}
		for pi, tups := range e.Tuples {
			if len(tups) != e.Vector[pi] {
				t.Errorf("%v: page %d has %d tuples, vector says %d", e, pi, len(tups), e.Vector[pi])
			}
			last := -1
			for _, tup := range tups {
				if len(tup.Positions) != e.K() {
					t.Errorf("%v: tuple with %d positions", e, len(tup.Positions))
				}
				for i := 1; i < len(tup.Positions); i++ {
					if tup.Positions[i] <= tup.Positions[i-1] {
						t.Errorf("%v: tuple positions not increasing", e)
					}
				}
				if tup.First() <= last {
					t.Errorf("%v: tuples overlap", e)
				}
				last = tup.Last()
			}
		}
		// Children nest strictly inside one slot of the parent.
		for _, c := range e.Children {
			if c.Parent != e {
				t.Errorf("%v: child %v has wrong parent", e, c)
			}
			if c.ParentSlot < 0 || c.ParentSlot >= e.Slots() {
				t.Errorf("%v: child slot %d out of range", e, c.ParentSlot)
			}
		}
	}
}

func TestMultiplicityConstantAndVarying(t *testing.T) {
	// Classless records: the two divs share one role and form a nested
	// class repeating exactly twice per record, while the record class
	// itself repeats a varying number of times per page.
	classless := func(n, seed int) string {
		var sb strings.Builder
		sb.WriteString("<html><body><ul>")
		for i := 0; i < n; i++ {
			// Unique words: no accidental cross-page regularity.
			fmt.Fprintf(&sb, `<li><div>va%dp%d</div><div>vb%dp%d</div></li>`, i, seed, i, seed)
		}
		sb.WriteString("</ul></body></html>")
		return sb.String()
	}
	a := analyzed(t, []string{classless(2, 0), classless(4, 1), classless(3, 2)}, nil,
		Params{Support: 3, MaxIter: 10, UseAnnotations: false, AnnThreshold: 0.7})
	var li, div *EQ
	for _, e := range a.EQs {
		isLi, isDiv := false, false
		for _, d := range e.Descs {
			if d.Value == "li" {
				isLi = true
			}
			if d.Value == "div" {
				isDiv = true
			}
		}
		if isLi && li == nil {
			li = e
		}
		if isDiv && !isLi && div == nil {
			div = e
		}
	}
	if li == nil {
		t.Fatal("no li class")
	}
	if li.Parent != nil {
		if constant, c := Multiplicity(li.Parent, li); constant {
			t.Errorf("li multiplicity constant=%v c=%d, want varying (2,4,3 records)", constant, c)
		}
	}
	if div == nil || div.Parent != li {
		t.Fatalf("no div child class under li (div=%v)", div)
	}
	if constant, c := Multiplicity(li, div); !constant || c != 2 {
		t.Errorf("div multiplicity = (%v, %d), want constant 2", constant, c)
	}
}

func TestDescOrdinalsLearned(t *testing.T) {
	// Classless records: both divs share the structural signature, so
	// the second div separator must learn ordinal 2.
	srcs := []string{
		`<html><body><ul><li><div>alpha</div><div>beta</div></li><li><div>gamma</div><div>delta</div></li></ul></body></html>`,
		`<html><body><ul><li><div>epsilon</div><div>zeta</div></li></ul></body></html>`,
		`<html><body><ul><li><div>eta</div><div>theta</div></li><li><div>beta</div><div>alpha</div></li></ul></body></html>`,
	}
	a := analyzed(t, srcs, nil, Params{Support: 3, MaxIter: 10, UseAnnotations: false, AnnThreshold: 0.7})
	for _, e := range a.EQs {
		sigCount := make(map[string][]int)
		for _, d := range e.Descs {
			sigCount[d.Sig()] = append(sigCount[d.Sig()], d.Ordinal)
		}
		for sig, ords := range sigCount {
			seen := make(map[int]bool)
			for _, o := range ords {
				if o <= 0 {
					t.Errorf("%v: desc %s has non-positive ordinal %d", e, sig, o)
				}
				if seen[o] {
					t.Errorf("%v: desc %s repeats ordinal %d", e, sig, o)
				}
				seen[o] = true
			}
		}
	}
}

func TestOrderHintOrdering(t *testing.T) {
	// Children of one slot must be sorted by their within-record offset.
	artists := recognize.NewDictionary("instanceOf(A)")
	artists.AddAll([]recognize.Entry{{Value: "alpha", Confidence: 0.9}, {Value: "gamma", Confidence: 0.9}, {Value: "epsilon", Confidence: 0.9}, {Value: "eta", Confidence: 0.9}})
	venues := recognize.NewDictionary("instanceOf(B)")
	venues.AddAll([]recognize.Entry{{Value: "beta", Confidence: 0.9}, {Value: "delta", Confidence: 0.9}, {Value: "zeta", Confidence: 0.9}, {Value: "theta", Confidence: 0.9}})
	recs := map[string]recognize.Recognizer{"a": artists, "b": venues}
	srcs := []string{listSrc(2, 0), listSrc(4, 1), listSrc(3, 2)}
	a := analyzed(t, srcs, recs, DefaultParams())
	for _, e := range a.EQs {
		for i := 1; i < len(e.Children); i++ {
			x, y := e.Children[i-1], e.Children[i]
			if x.ParentSlot == y.ParentSlot && x.OrderHint > y.OrderHint {
				t.Errorf("%v: children out of order (%f > %f)", e, x.OrderHint, y.OrderHint)
			}
		}
	}
}

// TestSalvageDropsCoincidentalWords: a word sharing the record class's
// vector must not invalidate the class — the tags survive without it.
func TestSalvageDropsCoincidentalWords(t *testing.T) {
	// "promo" appears exactly once per page, matching the page class
	// vector, but positioned inside the varying record region on page 2,
	// so the combined group cannot form a valid sequence.
	srcs := []string{
		`<html><body><p>promo</p><ul><li><i>alpha</i></li><li><i>beta</i></li></ul></body></html>`,
		`<html><body><ul><li><i>gamma</i></li><li><i>promo</i></li><li><i>delta</i></li></ul></body></html>`,
		`<html><body><p>promo</p><ul><li><i>epsilon</i></li><li><i>zeta</i></li></ul></body></html>`,
	}
	a := analyzed(t, srcs, nil, Params{Support: 3, MaxIter: 10, UseAnnotations: false, AnnThreshold: 0.7})
	found := false
	for _, e := range a.EQs {
		for _, d := range e.Descs {
			if d.Value == "li" {
				found = true
			}
			if d.Kind == KindWord && d.Value == "promo" {
				t.Errorf("coincidental word became a separator in %v", e)
			}
		}
	}
	if !found {
		t.Error("record class lost entirely")
	}
}

// Property: Analyze never panics and always yields consistent vectors,
// whatever the record counts.
func TestAnalyzeTotalQuick(t *testing.T) {
	f := func(n1, n2, n3 uint8) bool {
		counts := []int{int(n1%5) + 1, int(n2%5) + 1, int(n3%5) + 1}
		var srcs []string
		for i, n := range counts {
			srcs = append(srcs, listSrc(n, i))
		}
		a := analyzed(t, srcs, nil, Params{Support: 3, MaxIter: 6, UseAnnotations: false, AnnThreshold: 0.7})
		for _, e := range a.EQs {
			for pi, tups := range e.Tuples {
				if len(tups) != e.Vector[pi] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestTagValue(t *testing.T) {
	doc := clean.Page(`<body><div class="f-artist other">x</div><div>y</div></body>`)
	divs := doc.Find("div")
	if got := TagValue(divs[0]); got != "div.f-artist" {
		t.Errorf("TagValue = %q", got)
	}
	if got := TagValue(divs[1]); got != "div" {
		t.Errorf("TagValue = %q", got)
	}
}

func TestConflictsResetBetweenPasses(t *testing.T) {
	// Conflicts must reflect the final state, not accumulate across
	// outer-loop passes.
	artists := recognize.NewDictionary("instanceOf(A)")
	theaters := recognize.NewDictionary("instanceOf(B)")
	for _, v := range []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"} {
		artists.Add(v, 0.6)
		theaters.Add(v, 0.6) // every value ambiguous: conflicting types
	}
	recs := map[string]recognize.Recognizer{"a": artists, "b": theaters}
	srcs := []string{listSrc(2, 0), listSrc(3, 1), listSrc(2, 2)}
	a := analyzed(t, srcs, recs, DefaultParams())
	if a.Conflicts == 0 {
		t.Error("fully ambiguous annotations produced no conflicts")
	}
	// Conflicts bounded by total annotated occurrences.
	total := 0
	for _, page := range a.Pages {
		for _, o := range page {
			total += len(o.Types)
		}
	}
	if a.Conflicts > total {
		t.Errorf("conflicts %d exceed type mentions %d (accumulation bug)", a.Conflicts, total)
	}
}
