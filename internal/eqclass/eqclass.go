package eqclass

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"objectrunner/internal/obs"
	"objectrunner/internal/parallel"
	"objectrunner/internal/symtab"
)

// Params tunes Algorithm 2.
type Params struct {
	// Support is the minimal number of pages in which a token must appear
	// to be a template candidate (varied between 3 and 5 in the paper's
	// experiments).
	Support int
	// AnnThreshold is the generalization threshold for incomplete or
	// conflicting annotations (0.7 in the paper).
	AnnThreshold float64
	// MaxIter bounds the outer fixpoint loop.
	MaxIter int
	// UseAnnotations enables the semantic criteria. Disabling it yields
	// the pure ExAlg-style baseline behaviour.
	UseAnnotations bool
	// Workers bounds the fan-out of the analysis passes inside the
	// fixpoint (role re-keying, occurrence-vector counting, annotation
	// labelling, scope painting). 0 (the default) means one worker per
	// available CPU; 1 forces the sequential path. Role numbering — and
	// therefore every downstream artifact — is byte-identical at any
	// worker count.
	Workers int
}

// DefaultParams mirrors the paper's configuration.
func DefaultParams() Params {
	return Params{Support: 3, AnnThreshold: 0.7, MaxIter: 10, UseAnnotations: true}
}

// normalized fills unset fields with the paper's defaults and resolves
// the worker count.
func (p Params) normalized() Params {
	if p.Support <= 0 {
		p.Support = 3
	}
	if p.AnnThreshold <= 0 {
		p.AnnThreshold = 0.7
	}
	if p.MaxIter <= 0 {
		p.MaxIter = 10
	}
	p.Workers = parallel.Workers(p.Workers)
	return p
}

// Tuple is one repetition of an equivalence class on a page: the token
// positions of its k roles, in template order.
type Tuple struct {
	Positions []int
}

// First returns the position of the first separator.
func (t Tuple) First() int { return t.Positions[0] }

// Last returns the position of the last separator.
func (t Tuple) Last() int { return t.Positions[len(t.Positions)-1] }

// EQ is a valid equivalence class: a set of token roles having the same
// frequency of occurrences in each input page and a unique template role
// (paper §III.C). Roles are ordered; consecutive roles delimit the class's
// data slots.
type EQ struct {
	ID     int
	Roles  []int     // role ids in template (σ) order
	Descs  []Desc    // page-independent descriptors of the roles
	Vector []int     // occurrences per page
	Tuples [][]Tuple // per page, the class's repetitions in order

	// Hierarchy (filled by BuildHierarchy).
	Parent     *EQ
	ParentSlot int
	Children   []*EQ
	// OrderHint is the class's average token offset from the start of
	// the parent tuple containing it: children of one slot extract in
	// this order when their separator descriptors are structurally
	// identical (annotation-differentiated roles look alike on unseen
	// pages).
	OrderHint float64
}

// K returns the number of roles (separators) in the class.
func (e *EQ) K() int { return len(e.Roles) }

// Slots returns the number of interior data slots (K-1).
func (e *EQ) Slots() int {
	if e.K() < 2 {
		return 0
	}
	return e.K() - 1
}

// String renders a compact description for diagnostics.
func (e *EQ) String() string {
	var parts []string
	for _, d := range e.Descs {
		parts = append(parts, d.String())
	}
	return fmt.Sprintf("EQ%d%v [%s]", e.ID, e.Vector, strings.Join(parts, " "))
}

// Analysis is the result of running Algorithm 2 over a page sample.
type Analysis struct {
	// Pages holds the token sequences, with final role assignments.
	Pages [][]*Occurrence
	// EQs are the valid equivalence classes, in discovery order.
	EQs []*EQ
	// Conflicts counts the conflicting-annotation events observed; the
	// wrapper's self-validation loop uses it as a quality estimate.
	Conflicts int
	// Iterations is the number of outer-loop iterations performed.
	Iterations int

	params Params
	// tab interns token values, paths, and annotation labels for this
	// analysis; role keys and descriptors reference its symbols.
	tab *symtab.Table
	// roleKeys maps role id to its structural key.
	roleKeys []roleKey
	// profiles holds per-class slot profiles, keyed by EQ id (filled by
	// BuildHierarchy).
	profiles map[int][]SlotProfile
	// obs receives the per-step events of AnalyzeObserved.
	obs *obs.Observer
	// inClass and occsBuf are scratch buffers reused across validateEQ
	// calls (role-indexed membership bitmap; per-page member collector).
	inClass []bool
	occsBuf []*Occurrence
	// pageOff is the flat occurrence layout (see initLayout), shared
	// with the Base the analysis resumed from.
	pageOff []int
	// stats caches the per-role aggregation of the most recent
	// findEQs/shard for the annotation pass of the following
	// differentiate call; any role renumbering invalidates it.
	stats []roleStat
	// labelsBuf and perOccBuf are flat per-occurrence buffers (annotation
	// label syms; worker-local key ids) reused across differentiate and
	// assignRolesBy calls.
	labelsBuf []symtab.Sym
	perOccBuf []int32
}

// roleCount returns the number of distinct roles currently assigned.
func (a *Analysis) roleCount() int { return len(a.roleKeys) }

// Table returns the symbol table the analysis interned its pages into.
func (a *Analysis) Table() *symtab.Table { return a.tab }

// total returns the token count across all pages.
func (a *Analysis) total() int {
	if a.pageOff != nil {
		return a.pageOff[len(a.Pages)]
	}
	n := 0
	for _, page := range a.Pages {
		n += len(page)
	}
	return n
}

// Analyze runs Algorithm 2: differentiate roles by HTML features, then
// iterate {find EQs; differentiate by EQ positions and non-conflicting
// annotations} to a fixpoint, then apply conflicting annotations, until
// the outer fixpoint. The abort check of §III.E runs in the wrapper
// package between iterations via the Hook.
func Analyze(pages [][]*Occurrence, p Params, hook func(a *Analysis) bool) *Analysis {
	return AnalyzeObserved(pages, p, hook, nil)
}

// AnalyzeObserved is Analyze reporting the role counts and EQ counts of
// every differentiation step — (i) HTML features, (ii) positions within
// equivalence classes, (iii) non-conflicting and (iv) conflicting
// annotations — plus invalid-EQ salvage events, to the observer.
func AnalyzeObserved(pages [][]*Occurrence, p Params, hook func(a *Analysis) bool, ob *obs.Observer) *Analysis {
	return AnalyzeTable(pages, p, hook, ob, nil)
}

// AnalyzeTable is AnalyzeObserved interning into a caller-supplied symbol
// table (nil creates a private one). Occurrences already carrying symbols
// must have been interned against the same table; they are not re-interned.
// It is the staged core run end to end for a single support value: build
// the per-corpus Base snapshot, then run the fixpoint in place on the
// caller's pages (their occurrences carry the final role assignment).
// Callers that vary the support should build the Base once and call its
// Analyze per value instead.
func AnalyzeTable(pages [][]*Occurrence, p Params, hook func(a *Analysis) bool, ob *obs.Observer, tab *symtab.Table) *Analysis {
	b := NewBase(pages, p, ob, tab)
	return b.analyzeInPlace(hook, ob)
}

// roleKey is the comparable role-differentiation key. kind/val/pth are
// the HTML-feature base (criterion i); gen/eq/slot/ord record the
// positional refinement of criterion (ii), tagged with the generation so
// stale keys from earlier class ids cannot collide; ann is the interned
// annotation label of criteria (iii)/(iv), symtab.None when absent.
type roleKey struct {
	kind          TokKind
	val, pth      symtab.Sym
	gen           int32
	eq, slot, ord int32
	ann           symtab.Sym
}

// legacyString composes the historical string form of a role key
// ("kind|value|path" + "|g<gen>.eq<id>.s<slot>.o<ord>" + "|t:<label>").
// Role numbering sorts distinct keys on this form: numbering order is
// observable — the conflicting-annotation pass freezes roles through
// class role-id sets recorded before the last renumbering, so a
// different sort order would shift which roles those stale ids hit.
// Composing the string once per distinct key (a few hundred per pass)
// keeps the comparison cheap without hashing strings per occurrence.
func (a *Analysis) legacyString(k roleKey) string {
	b := make([]byte, 0, 64)
	b = strconv.AppendInt(b, int64(k.kind), 10)
	b = append(b, '|')
	b = append(b, a.tab.StringOf(k.val)...)
	b = append(b, '|')
	b = append(b, a.tab.StringOf(k.pth)...)
	if k.gen != 0 {
		b = append(b, "|g"...)
		b = strconv.AppendInt(b, int64(k.gen), 10)
		b = append(b, ".eq"...)
		b = strconv.AppendInt(b, int64(k.eq), 10)
		b = append(b, ".s"...)
		b = strconv.AppendInt(b, int64(k.slot), 10)
		b = append(b, ".o"...)
		b = strconv.AppendInt(b, int64(k.ord), 10)
	}
	if k.ann != symtab.None {
		b = append(b, "|t:"...)
		b = append(b, a.tab.StringOf(k.ann)...)
	}
	return string(b)
}

// baseKey is the HTML-feature role key.
func baseKey(o *Occurrence) roleKey {
	return roleKey{kind: o.Kind, val: o.Val, pth: o.Pth}
}

// templateCandidate reports whether the occurrence may serve as a
// template (separator) token. Words carrying entity-type annotations are
// data by definition when annotations are enabled.
func (a *Analysis) templateCandidate(o *Occurrence) bool {
	if a.params.UseAnnotations && o.Kind == KindWord && o.Annotated() {
		return false
	}
	return true
}

// roleStat aggregates a role's occurrence vector, page coverage, and
// occurrences (page order then position). Roles are dense, so analysis
// passes index a flat []roleStat instead of hashing role keys.
type roleStat struct {
	vector []int
	pages  int
	occs   []*Occurrence
	cand   bool
}

// findEQs groups template-candidate roles by occurrence vector, validates
// order and nesting, and returns the valid equivalence classes. The
// per-role aggregation is cached on the analysis for the annotation pass
// of the following differentiate call.
func (a *Analysis) findEQs() []*EQ {
	stats := a.computeRoleStats()
	a.stats = stats
	return a.classesFrom(stats, a.params.Support)
}

// classesFrom runs the grouping + validation half of findEQs on an
// existing per-role aggregation, for one support value.
func (a *Analysis) classesFrom(stats []roleStat, support int) []*EQ {
	if np := len(a.Pages); support > np {
		support = np
	}
	var eqs []*EQ
	for _, roles := range groupRoles(stats, support) {
		out, invalid := a.salvageEQs(roles, stats)
		if invalid {
			a.countInvalidGroup(len(roles))
		}
		for _, eq := range out {
			eq.ID = len(eqs) + 1
			eqs = append(eqs, eq)
		}
	}
	return eqs
}

// groupRoles returns the template-candidate role groups (same occurrence
// vector, page coverage >= support) in sorted vector-key order; each
// group lists its roles in ascending id order. The group key replicates
// the fmt.Sprint([]int) form "[1 2 3]" — group order is sorted on this
// string and determines class ids, which are visible in reports, so the
// historical ordering is load-bearing.
func groupRoles(stats []roleStat, support int) [][]int {
	groups := make(map[string][]int)
	var buf []byte
	for r := range stats {
		st := &stats[r]
		if !st.cand || st.pages < support {
			continue
		}
		buf = appendVector(buf[:0], st.vector)
		key := string(buf)
		groups[key] = append(groups[key], r)
	}
	gkeys := make([]string, 0, len(groups))
	for k := range groups {
		gkeys = append(gkeys, k)
	}
	sort.Strings(gkeys)
	out := make([][]int, 0, len(gkeys))
	for _, gk := range gkeys {
		out = append(out, groups[gk])
	}
	return out
}

// countInvalidGroup records one same-vector group failing the ordered-
// and-nested test (invalid-EQ accounting).
func (a *Analysis) countInvalidGroup(roles int) {
	a.obs.Count("eqclass.invalid_eqs", 1)
	a.obs.Event("eqclass.invalid_eq", obs.A("roles", roles))
}

// cloneForRun copies a base prototype class for one analysis run: the
// immutable parts (roles, vector, tuples) are shared across runs, the
// descriptors are copied (computeDescOrdinals mutates their ordinals),
// and the hierarchy links start zero-valued exactly like a class fresh
// out of validateEQ (BuildHierarchy fills them per run).
func (e *EQ) cloneForRun() *EQ {
	descs := make([]Desc, len(e.Descs))
	copy(descs, e.Descs)
	return &EQ{Roles: e.Roles, Descs: descs, Vector: e.Vector, Tuples: e.Tuples}
}

// appendVector formats an occurrence vector exactly like
// fmt.Sprint([]int): "[3 3 4]".
func appendVector(buf []byte, v []int) []byte {
	buf = append(buf, '[')
	for i, x := range v {
		if i > 0 {
			buf = append(buf, ' ')
		}
		buf = strconv.AppendInt(buf, int64(x), 10)
	}
	return append(buf, ']')
}

// salvageEQs handles invalid candidate classes (Algorithm 2, "handle
// invalid EQs"): when a same-vector group fails the ordered-and-nested
// test — typically because a data word coincidentally shares the vector —
// progressively smaller subgroups are retried: the tag tokens alone, then
// the tag tokens partitioned by DOM path. Members excluded from a class
// simply remain data. The invalid flag reports that salvage was entered;
// the caller owns the accounting (countInvalidGroup), so the base
// snapshot can validate once and re-report per sharded run.
func (a *Analysis) salvageEQs(roles []int, stats []roleStat) (out []*EQ, invalid bool) {
	vector := stats[roles[0]].vector
	if eq := a.validateEQ(roles, vector); eq != nil {
		return []*EQ{eq}, false
	}
	// The same-vector group failed the ordered-and-nested test and enters
	// progressive salvage.
	// Each role's first occurrence (page order) is its representative for
	// kind and path.
	rep := func(r int) *Occurrence { return stats[r].occs[0] }
	var tags []int
	for _, r := range roles {
		if rep(r).Kind != KindWord {
			tags = append(tags, r)
		}
	}
	if len(tags) > 0 && len(tags) < len(roles) {
		if eq := a.validateEQ(tags, vector); eq != nil {
			return []*EQ{eq}, true
		}
	}
	if len(tags) < 2 {
		return nil, true
	}
	byPath := make(map[string][]int)
	for _, r := range tags {
		byPath[rep(r).Path] = append(byPath[rep(r).Path], r)
	}
	paths := make([]string, 0, len(byPath))
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		// Subgroups inherit the ascending role order of tags.
		if eq := a.validateEQ(byPath[p], vector); eq != nil {
			out = append(out, eq)
		}
	}
	return out, true
}

// validateEQ checks the ordered-and-nested property: on every page the
// occurrences of the class's roles must form the same role sequence σ
// repeated vector[p] times. It returns the class with its tuples, or nil
// when invalid (such classes are discarded — Algorithm 2, "handle invalid
// EQs").
func (a *Analysis) validateEQ(roles []int, vector []int) *EQ {
	k := len(roles)
	if len(a.inClass) < a.roleCount() {
		a.inClass = make([]bool, a.roleCount())
	}
	inClass := a.inClass
	for _, r := range roles {
		inClass[r] = true
	}
	defer func() {
		for _, r := range roles {
			inClass[r] = false
		}
	}()
	var sigma []int
	var sigmaOccs []*Occurrence
	tuples := make([][]Tuple, len(a.Pages))
	for pi, page := range a.Pages {
		occs := a.occsBuf[:0]
		for _, o := range page {
			if inClass[o.role] {
				occs = append(occs, o)
			}
		}
		a.occsBuf = occs[:0]
		if len(occs) != k*vector[pi] {
			return nil // should not happen; defensive
		}
		if len(occs) == 0 {
			continue
		}
		if sigma == nil {
			// Derive σ from the first tuple: k distinct roles.
			seen := make(map[int]bool, k)
			for i := 0; i < k; i++ {
				r := occs[i].role
				if seen[r] {
					return nil
				}
				seen[r] = true
				sigma = append(sigma, r)
				sigmaOccs = append(sigmaOccs, occs[i])
			}
		}
		// The page must be σ repeated vector[pi] times.
		for i, o := range occs {
			if o.role != sigma[i%k] {
				return nil
			}
		}
		for t := 0; t < vector[pi]; t++ {
			pos := make([]int, k)
			for i := 0; i < k; i++ {
				pos[i] = occs[t*k+i].Pos
			}
			tuples[pi] = append(tuples[pi], Tuple{Positions: pos})
		}
	}
	if sigma == nil {
		return nil
	}
	descs := make([]Desc, k)
	for i, o := range sigmaOccs {
		descs[i] = DescOf(o)
	}
	return &EQ{Roles: sigma, Descs: descs, Vector: vector, Tuples: tuples}
}

// scope identifies the innermost equivalence-class slot containing a
// token position.
type scope struct {
	eq    int // EQ id
	tuple int // tuple ordinal on the page
	slot  int // interior slot index
}

// gap is one interior slot span of a class tuple, to be painted into the
// page's scope row.
type gap struct {
	from, to int // token positions, exclusive bounds
	sc       scope
}

// computeScopes paints, for every page position, the innermost (EQ,
// tuple, slot) containing it. Wider gaps are painted first so inner
// classes overwrite outer ones. Gaps never span pages, so the painting
// fans out per page; the per-page sort (width desc, position, class,
// slot) is exactly the historical global order restricted to one page,
// and it is total — same-width overlapping gaps always paint in the same
// order regardless of worker count.
func (a *Analysis) computeScopes() [][]scope {
	np := len(a.Pages)
	scopes := make([][]scope, np)
	byPage := make([][]gap, np)
	for _, eq := range a.EQs {
		if eq.K() < 2 {
			continue
		}
		for pi, tups := range eq.Tuples {
			for ti, t := range tups {
				for s := 0; s+1 < len(t.Positions); s++ {
					byPage[pi] = append(byPage[pi], gap{
						from: t.Positions[s],
						to:   t.Positions[s+1],
						sc:   scope{eq: eq.ID, tuple: ti, slot: s},
					})
				}
			}
		}
	}
	parallel.ForEach(a.params.Workers, np, func(pi int) {
		row := make([]scope, len(a.Pages[pi]))
		for i := range row {
			row[i] = scope{eq: -1}
		}
		gaps := byPage[pi]
		sort.Slice(gaps, func(i, j int) bool {
			if wi, wj := gaps[i].to-gaps[i].from, gaps[j].to-gaps[j].from; wi != wj {
				return wi > wj
			}
			if gaps[i].from != gaps[j].from {
				return gaps[i].from < gaps[j].from
			}
			if gaps[i].sc.eq != gaps[j].sc.eq {
				return gaps[i].sc.eq < gaps[j].sc.eq
			}
			return gaps[i].sc.slot < gaps[j].sc.slot
		})
		for _, g := range gaps {
			for p := g.from + 1; p < g.to; p++ {
				row[p] = g.sc
			}
		}
		scopes[pi] = row
	})
	return scopes
}

// differentiate recomputes roles with the positional (EQ + ordinal) and
// annotation criteria. Roles that belong to a valid class of the current
// hierarchy are "deemed unique" already and keep their keys unchanged —
// in particular, the repeated occurrences of an iterator class (a record
// <li> appearing a varying number of times per page) are never split.
// Free roles are refined by their innermost (class, slot) scope plus an
// ordinal, settling on the minimal number of consecutive occurrences
// across tuples (paper §III.C), and by annotation labels. With
// conflicting=false only unambiguous single-type annotations participate;
// with conflicting=true, disagreeing roles are resolved by majority
// generalization at the AnnThreshold and unresolved disagreements are
// counted as conflicts.
func (a *Analysis) differentiate(conflicting bool, generation int) bool {
	scopes := a.computeScopes()

	// Roles of current valid classes are frozen — except, when semantic
	// annotations are in play, those of child classes repeating a
	// constant number of times (>= 2) per parent tuple: such classes are
	// structural repetition, not iterators, and their tokens play several
	// distinct roles (the three <div>s of the running example). Those are
	// dissolved for ordinal differentiation. The paper is explicit that
	// positions in the HTML tree and in equivalence classes alone do not
	// suffice to tell the roles apart (§III.C) — so the purely structural
	// baseline (UseAnnotations=false) keeps such classes as nested
	// iterators, exactly like ExAlg.
	// e.Roles may hold ids from the numbering in effect when findEQs last
	// ran — assignRoles renumbers on every differentiate call, so after a
	// changed inner round these ids are stale (and can exceed the current
	// role count). The legacy-string sort order in assignRoles keeps this
	// aliasing deterministic; size the bitmap for both numberings.
	nRoles := a.roleCount()
	for _, e := range a.EQs {
		for _, r := range e.Roles {
			if r >= nRoles {
				nRoles = r + 1
			}
		}
	}
	frozen := make([]bool, nRoles)
	for _, e := range a.EQs {
		freeze := true
		if a.params.UseAnnotations && e.Parent != nil {
			if constant, c := Multiplicity(e.Parent, e); constant && c >= 2 {
				freeze = false
			}
		}
		if freeze {
			for _, r := range e.Roles {
				frozen[r] = true
			}
		}
	}

	// Ordinal bounds: for each free (role, class, slot), the minimal
	// occurrence count over the tuples that contain the role at all.
	minPerSlot := a.slotMinima(scopes, frozen)

	// Annotation labels per occurrence. Annotations apply to frozen roles
	// too: a frozen iterator class whose token occurrences carry distinct
	// types (the classless record <div>s) must still be differentiated —
	// freezing only shields roles from positional re-splitting.
	labels := a.annotationSyms(conflicting)

	// Recompute keys: frozen roles keep their previous key modulo the
	// annotation label; free occurrences get base + scope/ordinal +
	// annotation label, tagged with the generation so stale keys from
	// earlier class ids cannot collide. Each worker gets its own ordinal
	// counters — they are page-scoped (ordScope carries the page), so
	// page-aligned chunks count exactly like one sequential pass.
	gen := int32(generation)
	return a.assignRolesBy(func() func(*Occurrence) roleKey {
		ordinalSeen := make(map[ordScope]int)
		return func(o *Occurrence) roleKey {
			var ann symtab.Sym
			if labels != nil {
				ann = labels[a.pageOff[o.Page]+o.Pos]
			}
			if frozen[o.role] {
				k := a.roleKeys[o.role]
				k.ann = ann
				return k
			}
			sc := scopes[o.Page][o.Pos]
			k := baseKey(o)
			if sc.eq >= 0 {
				m := minPerSlot[rsKey{o.role, sc.eq, sc.slot}]
				os := ordScope{o.Page, sc.eq, sc.tuple, sc.slot, o.role}
				ordinalSeen[os]++
				ord := ordinalSeen[os]
				if ord > m {
					ord = m + 1 // overflow bucket beyond the minimal count
				}
				k.gen = gen
				k.eq = int32(sc.eq)
				k.slot = int32(sc.slot)
				k.ord = int32(ord)
			}
			k.ann = ann
			return k
		}
	})
}

// rsKey identifies a free role within one slot of one class, for the
// ordinal bounds of positional differentiation.
type rsKey struct {
	role, eq, slot int
}

// ordScope scopes an ordinal counter to one role inside one tuple slot
// on one page.
type ordScope struct {
	page, eq, tuple, slot, role int
}

// slotMinima computes, for each free (role, class, slot), the minimal
// occurrence count over the (page, tuple) pairs containing the role.
// Tuples never span pages, so per-chunk partial minima merge by min —
// commutative, hence worker-count independent.
func (a *Analysis) slotMinima(scopes [][]scope, frozen []bool) map[rsKey]int {
	np := len(a.Pages)
	// A key's occurrences of one class repetition are contiguous in page
	// position order (tuples of a class never interleave), so the
	// per-(page,tuple) counts reduce by run-length without a nested map.
	type slotAgg struct {
		page, tuple int32 // identity of the current run
		count       int32 // occurrences in the current run
		min         int32 // min over finalized runs; -1 until one finishes
	}
	locals, _ := parallel.MapWorkersCtx(nil, a.params.Workers, np,
		func(_ context.Context, _ int, c parallel.Chunk) (map[rsKey]int, error) {
			aggs := make(map[rsKey]slotAgg)
			for pi := c.Lo; pi < c.Hi; pi++ {
				for i, o := range a.Pages[pi] {
					sc := scopes[pi][i]
					if sc.eq < 0 || frozen[o.role] {
						continue
					}
					k := rsKey{o.role, sc.eq, sc.slot}
					ag, ok := aggs[k]
					if !ok {
						aggs[k] = slotAgg{page: int32(pi), tuple: int32(sc.tuple), count: 1, min: -1}
						continue
					}
					if ag.page == int32(pi) && ag.tuple == int32(sc.tuple) {
						ag.count++
					} else {
						if ag.min < 0 || ag.count < ag.min {
							ag.min = ag.count
						}
						ag.page, ag.tuple, ag.count = int32(pi), int32(sc.tuple), 1
					}
					aggs[k] = ag
				}
			}
			local := make(map[rsKey]int, len(aggs))
			for k, ag := range aggs {
				m := ag.count // the open run is a run like any other
				if ag.min >= 0 && ag.min < m {
					m = ag.min
				}
				local[k] = int(m)
			}
			return local, nil
		})
	if len(locals) == 0 {
		return map[rsKey]int{}
	}
	out := locals[0]
	for _, local := range locals[1:] {
		for k, m := range local {
			if cur, ok := out[k]; !ok || m < cur {
				out[k] = m
			}
		}
	}
	return out
}

// annotationSyms decides, per occurrence, the annotation label used for
// role differentiation, as interned symbols in a flat buffer indexed by
// the pageOff layout (symtab.None = unlabelled; labels are non-empty
// type names, so None is unambiguous). Returns nil when annotations are
// disabled.
//
// Non-conflicting phase: a role whose occurrences carry one consistent
// type is labelled wholesale when the annotated share reaches
// AnnThreshold (the paper's incomplete-annotation generalization); a role
// whose occurrences are each uniquely typed with different types splits
// by type. Sparse mixed roles and roles with multi-type occurrences are
// deferred.
//
// Conflicting phase: deferred roles are resolved by majority
// generalization at AnnThreshold; overridden or unresolved annotations
// are counted as conflicts (the wrapper's quality estimate).
//
// Decisions are independent per role, so the pass fans out across role
// chunks: every occurrence has exactly one role, hence exactly one
// writer for its label slot, and per-worker conflict counts merge by sum
// (commutative). Type names were pre-interned by NewBase, so the
// concurrent Intern calls all take the table's read path.
func (a *Analysis) annotationSyms(conflicting bool) []symtab.Sym {
	if !a.params.UseAnnotations {
		return nil
	}
	if conflicting {
		// Conflicts reflect the current role assignment; recount on each
		// conflicting pass rather than accumulating across passes.
		a.Conflicts = 0
	}
	// Group occurrences by role, reusing the aggregation of the findEQs
	// (or shard) round this differentiate call follows when still valid.
	stats := a.stats
	if stats == nil {
		stats = a.computeRoleStats()
	}
	total := a.total()
	if cap(a.labelsBuf) < total {
		a.labelsBuf = make([]symtab.Sym, total)
	}
	labels := a.labelsBuf[:total]
	clear(labels)
	n := len(stats)
	confl, _ := parallel.MapWorkersCtx(nil, a.params.Workers, n,
		func(_ context.Context, _ int, c parallel.Chunk) (int, error) {
			conflicts := 0
			label := func(o *Occurrence, t string) {
				labels[a.pageOff[o.Page]+o.Pos] = a.tab.Intern(t)
			}
			typeCounts := make(map[string]int) // cleared per role
			var keys []string
			for r := c.Lo; r < c.Hi; r++ {
				occs := stats[r].occs
				hasMulti := false
				sole := "" // the single type name while len(typeCounts) == 1
				clear(typeCounts)
				annotated := 0
				for _, o := range occs {
					if len(o.Types) > 1 {
						hasMulti = true
					}
					if len(o.Types) > 0 {
						annotated++
						for _, t := range o.Types {
							typeCounts[t]++
						}
						if len(typeCounts) == 1 {
							sole = o.Types[0]
						}
					}
				}
				if annotated == 0 {
					continue
				}
				annShare := float64(annotated) / float64(len(occs))
				if !conflicting {
					switch {
					case hasMulti:
						// Deferred to the conflicting phase.
					case len(typeCounts) == 1:
						if annShare >= a.params.AnnThreshold {
							for _, o := range occs {
								label(o, sole)
							}
						}
						// Too sparse to trust: leave unlabelled rather than
						// splitting annotated from unannotated occurrences.
					default:
						// Several distinct types share the role (the classless
						// <div>s of the running example): split the annotated
						// occurrences by their type; unannotated ones stay in
						// the base role. This is how annotations differentiate
						// roles that positions alone cannot (paper §III.C).
						for _, o := range occs {
							if t := o.SingleType(); t != "" {
								label(o, t)
							}
						}
					}
					continue
				}
				// Conflicting phase: majority generalization over the role.
				best, bestCount, annTotal := "", 0, 0
				keys = keys[:0]
				for t := range typeCounts {
					keys = append(keys, t)
				}
				sort.Strings(keys)
				for _, t := range keys {
					c := typeCounts[t]
					annTotal += c
					if c > bestCount {
						best, bestCount = t, c
					}
				}
				if len(typeCounts) == 1 && !hasMulti {
					// Consistent but possibly sparse; nothing conflicting here.
					if annShare >= a.params.AnnThreshold {
						for _, o := range occs {
							label(o, best)
						}
					}
					continue
				}
				if float64(bestCount)/float64(annTotal) >= a.params.AnnThreshold {
					conflicts += annTotal - bestCount
					for _, o := range occs {
						label(o, best)
					}
					continue
				}
				// Unresolvable: count the conflict, leave occurrences unlabeled.
				conflicts += annTotal
			}
			return conflicts, nil
		})
	for _, c := range confl {
		a.Conflicts += c
	}
	return labels
}
