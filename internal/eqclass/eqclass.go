package eqclass

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"objectrunner/internal/obs"
	"objectrunner/internal/symtab"
)

// Params tunes Algorithm 2.
type Params struct {
	// Support is the minimal number of pages in which a token must appear
	// to be a template candidate (varied between 3 and 5 in the paper's
	// experiments).
	Support int
	// AnnThreshold is the generalization threshold for incomplete or
	// conflicting annotations (0.7 in the paper).
	AnnThreshold float64
	// MaxIter bounds the outer fixpoint loop.
	MaxIter int
	// UseAnnotations enables the semantic criteria. Disabling it yields
	// the pure ExAlg-style baseline behaviour.
	UseAnnotations bool
}

// DefaultParams mirrors the paper's configuration.
func DefaultParams() Params {
	return Params{Support: 3, AnnThreshold: 0.7, MaxIter: 10, UseAnnotations: true}
}

// Tuple is one repetition of an equivalence class on a page: the token
// positions of its k roles, in template order.
type Tuple struct {
	Positions []int
}

// First returns the position of the first separator.
func (t Tuple) First() int { return t.Positions[0] }

// Last returns the position of the last separator.
func (t Tuple) Last() int { return t.Positions[len(t.Positions)-1] }

// EQ is a valid equivalence class: a set of token roles having the same
// frequency of occurrences in each input page and a unique template role
// (paper §III.C). Roles are ordered; consecutive roles delimit the class's
// data slots.
type EQ struct {
	ID     int
	Roles  []int     // role ids in template (σ) order
	Descs  []Desc    // page-independent descriptors of the roles
	Vector []int     // occurrences per page
	Tuples [][]Tuple // per page, the class's repetitions in order

	// Hierarchy (filled by BuildHierarchy).
	Parent     *EQ
	ParentSlot int
	Children   []*EQ
	// OrderHint is the class's average token offset from the start of
	// the parent tuple containing it: children of one slot extract in
	// this order when their separator descriptors are structurally
	// identical (annotation-differentiated roles look alike on unseen
	// pages).
	OrderHint float64
}

// K returns the number of roles (separators) in the class.
func (e *EQ) K() int { return len(e.Roles) }

// Slots returns the number of interior data slots (K-1).
func (e *EQ) Slots() int {
	if e.K() < 2 {
		return 0
	}
	return e.K() - 1
}

// String renders a compact description for diagnostics.
func (e *EQ) String() string {
	var parts []string
	for _, d := range e.Descs {
		parts = append(parts, d.String())
	}
	return fmt.Sprintf("EQ%d%v [%s]", e.ID, e.Vector, strings.Join(parts, " "))
}

// Analysis is the result of running Algorithm 2 over a page sample.
type Analysis struct {
	// Pages holds the token sequences, with final role assignments.
	Pages [][]*Occurrence
	// EQs are the valid equivalence classes, in discovery order.
	EQs []*EQ
	// Conflicts counts the conflicting-annotation events observed; the
	// wrapper's self-validation loop uses it as a quality estimate.
	Conflicts int
	// Iterations is the number of outer-loop iterations performed.
	Iterations int

	params Params
	// tab interns token values, paths, and annotation labels for this
	// analysis; role keys and descriptors reference its symbols.
	tab *symtab.Table
	// roleKeys maps role id to its structural key.
	roleKeys []roleKey
	// profiles holds per-class slot profiles, keyed by EQ id (filled by
	// BuildHierarchy).
	profiles map[int][]SlotProfile
	// obs receives the per-step events of AnalyzeObserved.
	obs *obs.Observer
	// inClass and occsBuf are scratch buffers reused across validateEQ
	// calls (role-indexed membership bitmap; per-page member collector).
	inClass []bool
	occsBuf []*Occurrence
}

// roleCount returns the number of distinct roles currently assigned.
func (a *Analysis) roleCount() int { return len(a.roleKeys) }

// Table returns the symbol table the analysis interned its pages into.
func (a *Analysis) Table() *symtab.Table { return a.tab }

// total returns the token count across all pages.
func (a *Analysis) total() int {
	n := 0
	for _, page := range a.Pages {
		n += len(page)
	}
	return n
}

// Analyze runs Algorithm 2: differentiate roles by HTML features, then
// iterate {find EQs; differentiate by EQ positions and non-conflicting
// annotations} to a fixpoint, then apply conflicting annotations, until
// the outer fixpoint. The abort check of §III.E runs in the wrapper
// package between iterations via the Hook.
func Analyze(pages [][]*Occurrence, p Params, hook func(a *Analysis) bool) *Analysis {
	return AnalyzeObserved(pages, p, hook, nil)
}

// AnalyzeObserved is Analyze reporting the role counts and EQ counts of
// every differentiation step — (i) HTML features, (ii) positions within
// equivalence classes, (iii) non-conflicting and (iv) conflicting
// annotations — plus invalid-EQ salvage events, to the observer.
func AnalyzeObserved(pages [][]*Occurrence, p Params, hook func(a *Analysis) bool, ob *obs.Observer) *Analysis {
	return AnalyzeTable(pages, p, hook, ob, nil)
}

// AnalyzeTable is AnalyzeObserved interning into a caller-supplied symbol
// table (nil creates a private one). Occurrences already carrying symbols
// must have been interned against the same table; they are not re-interned.
func AnalyzeTable(pages [][]*Occurrence, p Params, hook func(a *Analysis) bool, ob *obs.Observer, tab *symtab.Table) *Analysis {
	if p.Support <= 0 {
		p.Support = 3
	}
	if p.AnnThreshold <= 0 {
		p.AnnThreshold = 0.7
	}
	if p.MaxIter <= 0 {
		p.MaxIter = 10
	}
	if tab == nil {
		tab = symtab.New()
	}
	InternPages(tab, pages)
	a := &Analysis{Pages: pages, params: p, obs: ob, tab: tab}

	// Line 1: differentiate roles using HTML features (value + DOM path).
	// Annotated words are shielded from template candidacy so that
	// too-regular data ("New York") stays extractable (paper §II.C).
	a.assignRoles(baseKey)
	ob.Event("eqclass.step", obs.A("step", "i-html"), obs.A("roles", a.roleCount()))

	aborted := false
	generation := 0
	for iter := 0; iter < p.MaxIter; iter++ {
		a.Iterations = iter + 1
		changedOuter := false
		// Inner fixpoint: EQs + non-conflicting annotations.
		for inner := 0; inner < p.MaxIter; inner++ {
			a.EQs = a.findEQs()
			// Handle invalid EQs: classes straddling other classes'
			// separators are discarded, freeing their roles for further
			// differentiation.
			BuildHierarchy(a)
			if hook != nil && !hook(a) {
				aborted = true
				ob.Count("eqclass.early_stops", 1)
				ob.Event("eqclass.early_stop", obs.A("iteration", a.Iterations), obs.A("eqs", len(a.EQs)))
				break
			}
			generation++
			changed := a.differentiate(false, generation)
			// Steps ii-iii run fused: positional (EQ + ordinal) keys and
			// non-conflicting annotation labels in one recomputation.
			ob.Event("eqclass.step", obs.A("step", "ii-iii-positional+nonconflicting"),
				obs.A("iteration", a.Iterations), obs.A("roles", a.roleCount()),
				obs.A("eqs", len(a.EQs)), obs.A("changed", changed))
			if changed {
				changedOuter = true
				continue
			}
			break
		}
		if aborted {
			break
		}
		// Conflicting annotations.
		if p.UseAnnotations {
			generation++
			changed := a.differentiate(true, generation)
			ob.Event("eqclass.step", obs.A("step", "iv-conflicting"),
				obs.A("iteration", a.Iterations), obs.A("roles", a.roleCount()),
				obs.A("conflicts", a.Conflicts), obs.A("changed", changed))
			if changed {
				changedOuter = true
			}
		}
		if !changedOuter {
			break
		}
	}
	if !aborted {
		a.EQs = a.findEQs()
	}
	BuildHierarchy(a)
	// Extraction-time separator ordinals are only needed on the final
	// hierarchy.
	computeDescOrdinals(a)
	ob.Count("eqclass.conflicts", int64(a.Conflicts))
	return a
}

// roleKey is the comparable role-differentiation key. kind/val/pth are
// the HTML-feature base (criterion i); gen/eq/slot/ord record the
// positional refinement of criterion (ii), tagged with the generation so
// stale keys from earlier class ids cannot collide; ann is the interned
// annotation label of criteria (iii)/(iv), symtab.None when absent.
type roleKey struct {
	kind          TokKind
	val, pth      symtab.Sym
	gen           int32
	eq, slot, ord int32
	ann           symtab.Sym
}

// legacyString composes the historical string form of a role key
// ("kind|value|path" + "|g<gen>.eq<id>.s<slot>.o<ord>" + "|t:<label>").
// Role numbering sorts distinct keys on this form: numbering order is
// observable — the conflicting-annotation pass freezes roles through
// class role-id sets recorded before the last renumbering, so a
// different sort order would shift which roles those stale ids hit.
// Composing the string once per distinct key (a few hundred per pass)
// keeps the comparison cheap without hashing strings per occurrence.
func (a *Analysis) legacyString(k roleKey) string {
	b := make([]byte, 0, 64)
	b = strconv.AppendInt(b, int64(k.kind), 10)
	b = append(b, '|')
	b = append(b, a.tab.StringOf(k.val)...)
	b = append(b, '|')
	b = append(b, a.tab.StringOf(k.pth)...)
	if k.gen != 0 {
		b = append(b, "|g"...)
		b = strconv.AppendInt(b, int64(k.gen), 10)
		b = append(b, ".eq"...)
		b = strconv.AppendInt(b, int64(k.eq), 10)
		b = append(b, ".s"...)
		b = strconv.AppendInt(b, int64(k.slot), 10)
		b = append(b, ".o"...)
		b = strconv.AppendInt(b, int64(k.ord), 10)
	}
	if k.ann != symtab.None {
		b = append(b, "|t:"...)
		b = append(b, a.tab.StringOf(k.ann)...)
	}
	return string(b)
}

// baseKey is the HTML-feature role key.
func baseKey(o *Occurrence) roleKey {
	return roleKey{kind: o.Kind, val: o.Val, pth: o.Pth}
}

// templateCandidate reports whether the occurrence may serve as a
// template (separator) token. Words carrying entity-type annotations are
// data by definition when annotations are enabled.
func (a *Analysis) templateCandidate(o *Occurrence) bool {
	if a.params.UseAnnotations && o.Kind == KindWord && o.Annotated() {
		return false
	}
	return true
}

// assignRoles recomputes role ids from a key function. It reports whether
// the induced partition of occurrences changed — ids themselves may be
// relabelled freely (keys carry generation tags), so change is detected
// as a broken old↔new bijection. Role ids are dense and deterministic.
// The key function is called exactly once per occurrence, in page and
// position order (key functions may be stateful — ordinal counters).
func (a *Analysis) assignRoles(key func(*Occurrence) roleKey) bool {
	perOcc := make([]roleKey, 0, a.total())
	id := make(map[roleKey]int, len(a.roleKeys)+16)
	keys := make([]roleKey, 0, len(a.roleKeys)+16)
	for _, page := range a.Pages {
		for _, o := range page {
			k := key(o)
			perOcc = append(perOcc, k)
			if _, ok := id[k]; !ok {
				id[k] = 0
				keys = append(keys, k)
			}
		}
	}
	legacy := make([]string, len(keys))
	for i, k := range keys {
		legacy[i] = a.legacyString(k)
	}
	sort.Sort(&keySorter{keys: keys, legacy: legacy})
	for i, k := range keys {
		id[k] = i
	}
	oldRoles := len(a.roleKeys)
	if oldRoles == 0 {
		oldRoles = 1 // initial assignment: every occurrence has role 0
	}
	oldToNew := make([]int, oldRoles)
	newToOld := make([]int, len(keys))
	for i := range oldToNew {
		oldToNew[i] = -1
	}
	for i := range newToOld {
		newToOld[i] = -1
	}
	changed := false
	i := 0
	for _, page := range a.Pages {
		for _, o := range page {
			r := id[perOcc[i]]
			i++
			if n := oldToNew[o.role]; n >= 0 {
				if n != r {
					changed = true
				}
			} else {
				oldToNew[o.role] = r
			}
			if old := newToOld[r]; old >= 0 {
				if old != o.role {
					changed = true
				}
			} else {
				newToOld[r] = o.role
			}
			o.role = r
		}
	}
	a.roleKeys = keys
	return changed
}

// keySorter orders role keys with their legacy string forms in lockstep.
type keySorter struct {
	keys   []roleKey
	legacy []string
}

func (s *keySorter) Len() int           { return len(s.keys) }
func (s *keySorter) Less(i, j int) bool { return s.legacy[i] < s.legacy[j] }
func (s *keySorter) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.legacy[i], s.legacy[j] = s.legacy[j], s.legacy[i]
}

// roleStat aggregates a role's occurrence vector, page coverage, and
// occurrences (page order then position). Roles are dense, so analysis
// passes index a flat []roleStat instead of hashing role keys.
type roleStat struct {
	vector []int
	pages  int
	occs   []*Occurrence
	cand   bool
}

// findEQs groups template-candidate roles by occurrence vector, validates
// order and nesting, and returns the valid equivalence classes.
func (a *Analysis) findEQs() []*EQ {
	np := len(a.Pages)
	support := a.params.Support
	if support > np {
		support = np
	}
	// Occurrence vectors and page coverage per role: dense slices indexed
	// by role id, with one shared backing array per field.
	n := a.roleCount()
	stats := make([]roleStat, n)
	vecs := make([]int, n*np)
	for r := range stats {
		stats[r].vector = vecs[r*np : (r+1)*np : (r+1)*np]
		stats[r].cand = true
	}
	for pi, page := range a.Pages {
		for _, o := range page {
			st := &stats[o.role]
			if st.vector[pi] == 0 {
				st.pages++
			}
			st.vector[pi]++
			if !a.templateCandidate(o) {
				st.cand = false
			}
		}
	}
	// Carve per-role occurrence lists out of one arena now that counts are
	// known, then fill them in page order.
	counts := make([]int, n)
	total := 0
	for r := range stats {
		for _, c := range stats[r].vector {
			counts[r] += c
		}
		total += counts[r]
	}
	occArena := make([]*Occurrence, 0, total)
	off := 0
	for r := range stats {
		stats[r].occs = occArena[off : off : off+counts[r]]
		off += counts[r]
	}
	for _, page := range a.Pages {
		for _, o := range page {
			stats[o.role].occs = append(stats[o.role].occs, o)
		}
	}
	// Group candidate roles by vector. The group key replicates the
	// fmt.Sprint([]int) form "[1 2 3]" — group order is sorted on this
	// string and determines class ids, which are visible in reports, so
	// the historical ordering is load-bearing.
	groups := make(map[string][]int)
	var buf []byte
	for r := range stats {
		st := &stats[r]
		if !st.cand || st.pages < support {
			continue
		}
		buf = appendVector(buf[:0], st.vector)
		key := string(buf)
		groups[key] = append(groups[key], r)
	}
	gkeys := make([]string, 0, len(groups))
	for k := range groups {
		gkeys = append(gkeys, k)
	}
	sort.Strings(gkeys)

	var eqs []*EQ
	for _, gk := range gkeys {
		// Roles were appended in increasing id order, so each group is
		// already sorted.
		roles := groups[gk]
		for _, eq := range a.salvageEQs(roles, stats) {
			eq.ID = len(eqs) + 1
			eqs = append(eqs, eq)
		}
	}
	return eqs
}

// appendVector formats an occurrence vector exactly like
// fmt.Sprint([]int): "[3 3 4]".
func appendVector(buf []byte, v []int) []byte {
	buf = append(buf, '[')
	for i, x := range v {
		if i > 0 {
			buf = append(buf, ' ')
		}
		buf = strconv.AppendInt(buf, int64(x), 10)
	}
	return append(buf, ']')
}

// salvageEQs handles invalid candidate classes (Algorithm 2, "handle
// invalid EQs"): when a same-vector group fails the ordered-and-nested
// test — typically because a data word coincidentally shares the vector —
// progressively smaller subgroups are retried: the tag tokens alone, then
// the tag tokens partitioned by DOM path. Members excluded from a class
// simply remain data.
func (a *Analysis) salvageEQs(roles []int, stats []roleStat) []*EQ {
	vector := stats[roles[0]].vector
	if eq := a.validateEQ(roles, vector); eq != nil {
		return []*EQ{eq}
	}
	// Invalid-EQ accounting: the same-vector group failed the
	// ordered-and-nested test and enters progressive salvage.
	a.obs.Count("eqclass.invalid_eqs", 1)
	a.obs.Event("eqclass.invalid_eq", obs.A("roles", len(roles)))
	// Each role's first occurrence (page order) is its representative for
	// kind and path.
	rep := func(r int) *Occurrence { return stats[r].occs[0] }
	var tags []int
	for _, r := range roles {
		if rep(r).Kind != KindWord {
			tags = append(tags, r)
		}
	}
	if len(tags) > 0 && len(tags) < len(roles) {
		if eq := a.validateEQ(tags, vector); eq != nil {
			return []*EQ{eq}
		}
	}
	if len(tags) < 2 {
		return nil
	}
	byPath := make(map[string][]int)
	for _, r := range tags {
		byPath[rep(r).Path] = append(byPath[rep(r).Path], r)
	}
	paths := make([]string, 0, len(byPath))
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var out []*EQ
	for _, p := range paths {
		// Subgroups inherit the ascending role order of tags.
		if eq := a.validateEQ(byPath[p], vector); eq != nil {
			out = append(out, eq)
		}
	}
	return out
}

// validateEQ checks the ordered-and-nested property: on every page the
// occurrences of the class's roles must form the same role sequence σ
// repeated vector[p] times. It returns the class with its tuples, or nil
// when invalid (such classes are discarded — Algorithm 2, "handle invalid
// EQs").
func (a *Analysis) validateEQ(roles []int, vector []int) *EQ {
	k := len(roles)
	if len(a.inClass) < a.roleCount() {
		a.inClass = make([]bool, a.roleCount())
	}
	inClass := a.inClass
	for _, r := range roles {
		inClass[r] = true
	}
	defer func() {
		for _, r := range roles {
			inClass[r] = false
		}
	}()
	var sigma []int
	var sigmaOccs []*Occurrence
	tuples := make([][]Tuple, len(a.Pages))
	for pi, page := range a.Pages {
		occs := a.occsBuf[:0]
		for _, o := range page {
			if inClass[o.role] {
				occs = append(occs, o)
			}
		}
		a.occsBuf = occs[:0]
		if len(occs) != k*vector[pi] {
			return nil // should not happen; defensive
		}
		if len(occs) == 0 {
			continue
		}
		if sigma == nil {
			// Derive σ from the first tuple: k distinct roles.
			seen := make(map[int]bool, k)
			for i := 0; i < k; i++ {
				r := occs[i].role
				if seen[r] {
					return nil
				}
				seen[r] = true
				sigma = append(sigma, r)
				sigmaOccs = append(sigmaOccs, occs[i])
			}
		}
		// The page must be σ repeated vector[pi] times.
		for i, o := range occs {
			if o.role != sigma[i%k] {
				return nil
			}
		}
		for t := 0; t < vector[pi]; t++ {
			pos := make([]int, k)
			for i := 0; i < k; i++ {
				pos[i] = occs[t*k+i].Pos
			}
			tuples[pi] = append(tuples[pi], Tuple{Positions: pos})
		}
	}
	if sigma == nil {
		return nil
	}
	descs := make([]Desc, k)
	for i, o := range sigmaOccs {
		descs[i] = DescOf(o)
	}
	return &EQ{Roles: sigma, Descs: descs, Vector: vector, Tuples: tuples}
}

// scope identifies the innermost equivalence-class slot containing a
// token position.
type scope struct {
	eq    int // EQ id
	tuple int // tuple ordinal on the page
	slot  int // interior slot index
}

// computeScopes paints, for every page position, the innermost (EQ,
// tuple, slot) containing it. Wider gaps are painted first so inner
// classes overwrite outer ones.
func (a *Analysis) computeScopes() [][]scope {
	scopes := make([][]scope, len(a.Pages))
	for pi, page := range a.Pages {
		scopes[pi] = make([]scope, len(page))
		for i := range scopes[pi] {
			scopes[pi][i] = scope{eq: -1}
		}
	}
	type gap struct {
		page, from, to int // token positions, exclusive bounds
		sc             scope
	}
	var gaps []gap
	for _, eq := range a.EQs {
		if eq.K() < 2 {
			continue
		}
		for pi, tups := range eq.Tuples {
			for ti, t := range tups {
				for s := 0; s+1 < len(t.Positions); s++ {
					gaps = append(gaps, gap{
						page: pi,
						from: t.Positions[s],
						to:   t.Positions[s+1],
						sc:   scope{eq: eq.ID, tuple: ti, slot: s},
					})
				}
			}
		}
	}
	// Wider gaps first; equal widths are fully ordered (page, position,
	// class, slot) so that overlapping same-width gaps always paint in
	// the same order — sort.Slice is not stable and the paint order is
	// visible in the scopes.
	sort.Slice(gaps, func(i, j int) bool {
		if wi, wj := gaps[i].to-gaps[i].from, gaps[j].to-gaps[j].from; wi != wj {
			return wi > wj
		}
		if gaps[i].page != gaps[j].page {
			return gaps[i].page < gaps[j].page
		}
		if gaps[i].from != gaps[j].from {
			return gaps[i].from < gaps[j].from
		}
		if gaps[i].sc.eq != gaps[j].sc.eq {
			return gaps[i].sc.eq < gaps[j].sc.eq
		}
		return gaps[i].sc.slot < gaps[j].sc.slot
	})
	for _, g := range gaps {
		row := scopes[g.page]
		for p := g.from + 1; p < g.to; p++ {
			row[p] = g.sc
		}
	}
	return scopes
}

// differentiate recomputes roles with the positional (EQ + ordinal) and
// annotation criteria. Roles that belong to a valid class of the current
// hierarchy are "deemed unique" already and keep their keys unchanged —
// in particular, the repeated occurrences of an iterator class (a record
// <li> appearing a varying number of times per page) are never split.
// Free roles are refined by their innermost (class, slot) scope plus an
// ordinal, settling on the minimal number of consecutive occurrences
// across tuples (paper §III.C), and by annotation labels. With
// conflicting=false only unambiguous single-type annotations participate;
// with conflicting=true, disagreeing roles are resolved by majority
// generalization at the AnnThreshold and unresolved disagreements are
// counted as conflicts.
func (a *Analysis) differentiate(conflicting bool, generation int) bool {
	scopes := a.computeScopes()

	// Roles of current valid classes are frozen — except, when semantic
	// annotations are in play, those of child classes repeating a
	// constant number of times (>= 2) per parent tuple: such classes are
	// structural repetition, not iterators, and their tokens play several
	// distinct roles (the three <div>s of the running example). Those are
	// dissolved for ordinal differentiation. The paper is explicit that
	// positions in the HTML tree and in equivalence classes alone do not
	// suffice to tell the roles apart (§III.C) — so the purely structural
	// baseline (UseAnnotations=false) keeps such classes as nested
	// iterators, exactly like ExAlg.
	// e.Roles may hold ids from the numbering in effect when findEQs last
	// ran — assignRoles renumbers on every differentiate call, so after a
	// changed inner round these ids are stale (and can exceed the current
	// role count). The legacy-string sort order in assignRoles keeps this
	// aliasing deterministic; size the bitmap for both numberings.
	nRoles := a.roleCount()
	for _, e := range a.EQs {
		for _, r := range e.Roles {
			if r >= nRoles {
				nRoles = r + 1
			}
		}
	}
	frozen := make([]bool, nRoles)
	for _, e := range a.EQs {
		freeze := true
		if a.params.UseAnnotations && e.Parent != nil {
			if constant, c := Multiplicity(e.Parent, e); constant && c >= 2 {
				freeze = false
			}
		}
		if freeze {
			for _, r := range e.Roles {
				frozen[r] = true
			}
		}
	}

	// Ordinal bounds: for each free (role, class, slot), the minimal
	// occurrence count over the tuples that contain the role at all.
	type rsKey struct {
		role, eq, slot int
	}
	tupleCounts := make(map[rsKey]map[[2]int]int) // -> (page,tuple) -> count
	for pi, page := range a.Pages {
		for i, o := range page {
			sc := scopes[pi][i]
			if sc.eq < 0 || frozen[o.role] {
				continue
			}
			k := rsKey{o.role, sc.eq, sc.slot}
			if tupleCounts[k] == nil {
				tupleCounts[k] = make(map[[2]int]int)
			}
			tupleCounts[k][[2]int{pi, sc.tuple}]++
		}
	}
	minPerSlot := make(map[rsKey]int)
	for k, m := range tupleCounts {
		min := -1
		for _, c := range m {
			if min < 0 || c < min {
				min = c
			}
		}
		minPerSlot[k] = min
	}

	// Annotation labels per occurrence. Annotations apply to frozen roles
	// too: a frozen iterator class whose token occurrences carry distinct
	// types (the classless record <div>s) must still be differentiated —
	// freezing only shields roles from positional re-splitting.
	annLabel := a.annotationLabels(conflicting)

	// Recompute keys: frozen roles keep their previous key modulo the
	// annotation label; free occurrences get base + scope/ordinal +
	// annotation label, tagged with the generation so stale keys from
	// earlier class ids cannot collide.
	type ordScope struct {
		page, eq, tuple, slot, role int
	}
	ordinalSeen := make(map[ordScope]int)
	key := func(o *Occurrence) roleKey {
		if frozen[o.role] {
			k := a.roleKeys[o.role]
			k.ann = symtab.None
			if lbl, ok := annLabel[o]; ok {
				k.ann = a.tab.Intern(lbl)
			}
			return k
		}
		sc := scopes[o.Page][o.Pos]
		k := baseKey(o)
		if sc.eq >= 0 {
			m := minPerSlot[rsKey{o.role, sc.eq, sc.slot}]
			os := ordScope{o.Page, sc.eq, sc.tuple, sc.slot, o.role}
			ordinalSeen[os]++
			ord := ordinalSeen[os]
			if ord > m {
				ord = m + 1 // overflow bucket beyond the minimal count
			}
			k.gen = int32(generation)
			k.eq = int32(sc.eq)
			k.slot = int32(sc.slot)
			k.ord = int32(ord)
		}
		if lbl, ok := annLabel[o]; ok {
			k.ann = a.tab.Intern(lbl)
		}
		return k
	}
	return a.assignRoles(key)
}

// annotationLabels decides, per occurrence, the annotation label used for
// role differentiation of free (non-frozen) roles.
//
// Non-conflicting phase: a role whose occurrences carry one consistent
// type is labelled wholesale when the annotated share reaches
// AnnThreshold (the paper's incomplete-annotation generalization); a role
// whose occurrences are each uniquely typed with different types splits
// by type. Sparse mixed roles and roles with multi-type occurrences are
// deferred.
//
// Conflicting phase: deferred roles are resolved by majority
// generalization at AnnThreshold; overridden or unresolved annotations
// are counted as conflicts (the wrapper's quality estimate).
func (a *Analysis) annotationLabels(conflicting bool) map[*Occurrence]string {
	labels := make(map[*Occurrence]string)
	if !a.params.UseAnnotations {
		return labels
	}
	if conflicting {
		// Conflicts reflect the current role assignment; recount on each
		// conflicting pass rather than accumulating across passes.
		a.Conflicts = 0
	}
	// Group occurrences by role: count, carve from one arena, fill —
	// roles are dense, so every pass is a slice index.
	n := a.roleCount()
	counts := make([]int, n)
	total := 0
	for _, page := range a.Pages {
		total += len(page)
		for _, o := range page {
			counts[o.role]++
		}
	}
	arena := make([]*Occurrence, 0, total)
	byRole := make([][]*Occurrence, n)
	off := 0
	for r := range byRole {
		byRole[r] = arena[off : off : off+counts[r]]
		off += counts[r]
	}
	for _, page := range a.Pages {
		for _, o := range page {
			byRole[o.role] = append(byRole[o.role], o)
		}
	}
	for r := 0; r < n; r++ {
		occs := byRole[r]
		hasMulti := false
		sole := "" // the single type name while len(typeCounts) == 1
		typeCounts := make(map[string]int)
		annotated := 0
		for _, o := range occs {
			if len(o.Types) > 1 {
				hasMulti = true
			}
			if len(o.Types) > 0 {
				annotated++
				for _, t := range o.Types {
					typeCounts[t]++
				}
				if len(typeCounts) == 1 {
					sole = o.Types[0]
				}
			}
		}
		if annotated == 0 {
			continue
		}
		annShare := float64(annotated) / float64(len(occs))
		if !conflicting {
			switch {
			case hasMulti:
				// Deferred to the conflicting phase.
			case len(typeCounts) == 1:
				if annShare >= a.params.AnnThreshold {
					for _, o := range occs {
						labels[o] = sole
					}
				}
				// Too sparse to trust: leave unlabelled rather than
				// splitting annotated from unannotated occurrences.
			default:
				// Several distinct types share the role (the classless
				// <div>s of the running example): split the annotated
				// occurrences by their type; unannotated ones stay in
				// the base role. This is how annotations differentiate
				// roles that positions alone cannot (paper §III.C).
				for _, o := range occs {
					if t := o.SingleType(); t != "" {
						labels[o] = t
					}
				}
			}
			continue
		}
		// Conflicting phase: majority generalization over the role.
		best, bestCount, annTotal := "", 0, 0
		keys := make([]string, 0, len(typeCounts))
		for t := range typeCounts {
			keys = append(keys, t)
		}
		sort.Strings(keys)
		for _, t := range keys {
			c := typeCounts[t]
			annTotal += c
			if c > bestCount {
				best, bestCount = t, c
			}
		}
		if len(typeCounts) == 1 && !hasMulti {
			// Consistent but possibly sparse; nothing conflicting here.
			if annShare >= a.params.AnnThreshold {
				for _, o := range occs {
					labels[o] = best
				}
			}
			continue
		}
		if float64(bestCount)/float64(annTotal) >= a.params.AnnThreshold {
			a.Conflicts += annTotal - bestCount
			for _, o := range occs {
				labels[o] = best
			}
			continue
		}
		// Unresolvable: count the conflict, leave occurrences unlabeled.
		a.Conflicts += annTotal
	}
	return labels
}
