package eqclass

import (
	"testing"

	"objectrunner/internal/annotate"
	"objectrunner/internal/clean"
	"objectrunner/internal/symtab"
)

// occEqual compares the full observable occurrence state, symbols
// included.
func occEqual(a, b *Occurrence) bool {
	if a.Kind != b.Kind || a.Value != b.Value || a.Raw != b.Raw || a.Path != b.Path ||
		a.Page != b.Page || a.Pos != b.Pos || a.Val != b.Val || a.Pth != b.Pth ||
		len(a.Types) != len(b.Types) {
		return false
	}
	for i := range a.Types {
		if a.Types[i] != b.Types[i] {
			return false
		}
	}
	return true
}

// TestTokenizeInternPageMatchesSeparatePasses pins the fusion: a fused
// tokenize+intern must produce exactly the occurrences (symbols
// included) of TokenizePage followed by InternPages, against a table
// with identical numbering.
func TestTokenizeInternPageMatchesSeparatePasses(t *testing.T) {
	recs := concertRecs()
	for pi, src := range fig3Pages() {
		page := clean.Page(src)
		pa := annotate.AnnotatePage(page, recs)

		fusedTab := symtab.New()
		fused := TokenizeInternPage(fusedTab, page, pa, pi)

		sepTab := symtab.New()
		sep := TokenizePage(page, pa, pi)
		InternPages(sepTab, [][]*Occurrence{sep})

		if len(fused) != len(sep) {
			t.Fatalf("page %d: fused %d tokens, separate %d", pi, len(fused), len(sep))
		}
		for i := range fused {
			if !occEqual(fused[i], sep[i]) {
				t.Fatalf("page %d token %d diverged:\nfused    %+v\nseparate %+v", pi, i, *fused[i], *sep[i])
			}
		}
		if fusedTab.Len() != sepTab.Len() {
			t.Fatalf("page %d: fused table %d symbols, separate %d", pi, fusedTab.Len(), sepTab.Len())
		}
		for s := 1; s <= sepTab.Len(); s++ {
			if fusedTab.StringOf(symtab.Sym(s)) != sepTab.StringOf(symtab.Sym(s)) {
				t.Fatalf("page %d: symbol %d = %q fused vs %q separate",
					pi, s, fusedTab.StringOf(symtab.Sym(s)), sepTab.StringOf(symtab.Sym(s)))
			}
		}
	}
}

// TestTokenizeLookupPageMatchesSeparatePasses pins the serving-path
// fusion against TokenizePage + LookupSyms.
func TestTokenizeLookupPageMatchesSeparatePasses(t *testing.T) {
	srcs := fig3Pages()
	tab := symtab.New()
	// Learn the vocabulary of the first two pages only, so the third
	// carries both known and unknown tokens.
	for i, src := range srcs[:2] {
		TokenizeInternPage(tab, clean.Page(src), nil, i)
	}
	for pi, src := range srcs {
		page := clean.Page(src)
		fused := TokenizeLookupPage(tab, page, pi)
		sep := TokenizePage(page, nil, pi)
		LookupSyms(tab, sep)
		if len(fused) != len(sep) {
			t.Fatalf("page %d: fused %d tokens, separate %d", pi, len(fused), len(sep))
		}
		for i := range fused {
			if !occEqual(fused[i], sep[i]) {
				t.Fatalf("page %d token %d diverged:\nfused    %+v\nseparate %+v", pi, i, *fused[i], *sep[i])
			}
		}
	}
	// Nil table: symbols stay None, like plain TokenizePage.
	for _, o := range TokenizeLookupPage(nil, clean.Page(srcs[0]), 0) {
		if o.Val != symtab.None || o.Pth != symtab.None {
			t.Fatalf("nil table assigned symbols: %+v", *o)
		}
	}
}

// TestRemapSymsRewritesThroughMerge drives the worker-local path end to
// end on real pages: chunked local interning + Merge + RemapSyms must
// leave every occurrence with the symbols a sequential whole-sample
// intern pass assigns.
func TestRemapSymsRewritesThroughMerge(t *testing.T) {
	srcs := fig3Pages()
	recs := concertRecs()

	// Sequential reference.
	want := tokenizeAll(t, srcs, recs)
	seqTab := symtab.New()
	InternPages(seqTab, want)

	// Two workers: pages {0} and {1, 2}, each with a local table.
	pages := make([][]*Occurrence, len(srcs))
	locals := []*symtab.Table{symtab.New(), symtab.New()}
	chunks := [][]int{{0}, {1, 2}}
	for w, idxs := range chunks {
		for _, i := range idxs {
			page := clean.Page(srcs[i])
			pa := annotate.AnnotatePage(page, recs)
			pages[i] = TokenizeInternPage(locals[w], page, pa, i)
		}
	}
	canon := symtab.New()
	for w, idxs := range chunks {
		remap := canon.Merge(locals[w])
		if w == 0 && !symtab.IdentityRemap(remap) {
			t.Fatal("first worker's remap must be the identity")
		}
		if symtab.IdentityRemap(remap) {
			continue
		}
		for _, i := range idxs {
			RemapSyms(remap, pages[i])
		}
	}
	for i := range pages {
		if len(pages[i]) != len(want[i]) {
			t.Fatalf("page %d: %d tokens, want %d", i, len(pages[i]), len(want[i]))
		}
		for j := range pages[i] {
			if pages[i][j].Val != want[i][j].Val || pages[i][j].Pth != want[i][j].Pth {
				t.Fatalf("page %d token %d: syms (%d,%d), sequential (%d,%d)",
					i, j, pages[i][j].Val, pages[i][j].Pth, want[i][j].Val, want[i][j].Pth)
			}
		}
	}
	if canon.Len() != seqTab.Len() {
		t.Fatalf("merged table %d symbols, sequential %d", canon.Len(), seqTab.Len())
	}
}
