package eqclass

import (
	"fmt"
	"strings"
	"testing"

	"objectrunner/internal/clean"
	"objectrunner/internal/segment"
	"objectrunner/internal/symtab"
)

// treeTokens is the reference pipeline: parse+clean, optional block
// scoping, tokenize with read-only lookup — exactly what the serving
// tree path runs.
func treeTokens(tab *symtab.Table, src string, key *segment.Key, page int) []*Occurrence {
	doc := clean.Page(src)
	region := doc
	if key != nil {
		if n := segment.FindByKey(doc, *key); n != nil {
			region = n
		}
	}
	return TokenizeLookupPage(tab, region, page)
}

// fullTable interns every token of the cleaned tree so stream/tree
// symbol comparisons are meaningful (a lookup miss would flatten
// everything to None and hide divergences).
func fullTable(src string) *symtab.Table {
	tab := symtab.New()
	for _, o := range TokenizePage(clean.Page(src), nil, 0) {
		tab.Intern(o.Value)
		tab.Intern(o.Path)
	}
	return tab
}

func diffTokens(t *testing.T, want, got []*Occurrence) {
	t.Helper()
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		w, g := want[i], got[i]
		if w.Kind != g.Kind || w.Raw != g.Raw || w.Val != g.Val || w.Pth != g.Pth || w.Page != g.Page || w.Pos != g.Pos {
			t.Fatalf("token %d: tree {kind:%v raw:%q val:%d pth:%d pos:%d} vs stream {kind:%v raw:%q val:%d pth:%d pos:%d} (tree value %q path %q)",
				i, w.Kind, w.Raw, w.Val, w.Pth, w.Pos, g.Kind, g.Raw, g.Val, g.Pth, g.Pos, w.Value, w.Path)
		}
	}
	if len(want) != len(got) {
		t.Fatalf("token count: tree %d vs stream %d", len(want), len(got))
	}
}

var streamCases = []struct {
	name string
	src  string
}{
	{"well_formed", `<!DOCTYPE html><html><head><title>T</title><meta charset="utf-8"></head><body><div class="main"><ul><li><span>Item One</span></li><li><span>Item Two</span></li></ul></div></body></html>`},
	{"no_html_no_body", `<div><p>hello world</p><p>again</p></div>`},
	{"html_no_body", `<html><div>content here</div></html>`},
	{"body_no_html", `<body><div>content here</div></body>`},
	{"entity_heavy", `<html><body><p>Fish &amp; Chips &lt;fresh&gt; &#65;BC &copy; 2024 &nbsp;done &unknown; &#x41;x</p></body></html>`},
	{"raw_text_title_kept", `<html><body><title>Me &amp; You</title><div>after</div></body></html>`},
	{"raw_text_dropped", `<html><body><script>var x = "<div>not real</div>";</script><style>.a{color:red}</style><div>real</div></body></html>`},
	{"unterminated_raw", `<html><body><div>seen</div><script>var x = 1;`},
	{"hidden_elements", `<html><body><div hidden>gone</div><input type="hidden" name="tok"><div style="display: none">gone too</div><div style="VISIBILITY:  hidden">also</div><div>kept</div></body></html>`},
	{"empty_cascade", `<html><body><div><span><i></i></span></div><div>kept</div><td></td></body></html>`},
	{"void_and_selfclosing", `<html><body><br><img src="x.png"><hr/><wbr><div>text<br/>more</div></body></html>`},
	{"auto_close_li", `<html><body><ul><li>one<li>two<li>three</ul></body></html>`},
	{"auto_close_p_block", `<html><body><p>para one<div>block</div><p>para two</body></html>`},
	{"auto_close_table", `<html><body><table><tr><td>a<td>b<tr><td>c</table></body></html>`},
	{"stray_end_tags", `<html><body><div>x</span></div></article>more</body></html>`},
	{"stray_end_popover", `<html><body><div><span>deep</div>after</body></html>`},
	{"comments_everywhere", `<!-- top --><html><body><!-- mid --><div>x<!-- inner --></div></body></html>`},
	{"doctype_keeps_parent", `<html><body><div><!doctype odd></div><div>real</div></body></html>`},
	{"class_values", `<html><body><div class="First second">x</div><span class=" lone ">y</span><b class="">z</b></body></html>`},
	{"uppercase_markup", `<HTML><BODY><DIV CLASS="Big">Mixed Case Words</DIV></BODY></HTML>`},
	{"whitespace_soup", "<html><body><div>\n\t  spaced out  \n</div>  \t <div> </div></body></html>"},
	{"lone_lt", `<html><body><p>a < b and a <3 c</p></body></html>`},
	{"content_after_body_close", `<html><body><div>in</div></body><div>after</div></html>`},
	{"text_at_html_level", `<html>stray <body><div>x</div></body></html>`},
	{"nested_list_records", `<html><body><ul><li><div>Artist</div><div>Date</div><div><span><a>Venue</a></span>, <span>Addr</span></div></li></ul></body></html>`},
	{"textarea_dropped", `<html><body><textarea>ignore <b>this</b></textarea><div>keep</div></body></html>`},
	{"forms_dropped", `<html><body><form><select><option>a</option></select><button>go</button></form><div>data</div></body></html>`},
	{"deep_nesting", `<html><body>` + strings.Repeat(`<div class="lvl">`, 30) + `bottom` + strings.Repeat(`</div>`, 30) + `</body></html>`},
	{"empty_page", ``},
	{"only_whitespace", "  \n\t  "},
	{"only_doctype", `<!DOCTYPE html>`},
	{"late_html", `<div>early</div><html><span>wrapped</span></html>`},
	{"duplicate_attrs", `<html><body><div type="text" type="hidden">kept?</div><div type="hidden" type="text">gone</div></body></html>`},
}

// TestStreamTokenizerMatchesTree holds the streaming tokenizer
// byte-identical to the tree pipeline on every structure it claims to
// handle, and requires an explicit bail (never silent divergence) on the
// rest.
func TestStreamTokenizerMatchesTree(t *testing.T) {
	for _, tc := range streamCases {
		t.Run(tc.name, func(t *testing.T) {
			tab := fullTable(tc.src)
			var a StreamArena
			got, ok := TokenizeLookupStream(&a, tab, tc.src, nil, 3)
			if !ok {
				t.Skipf("stream bailed (tree fallback) on %q", tc.name)
			}
			diffTokens(t, treeTokens(tab, tc.src, nil, 3), got)
		})
	}
}

// TestStreamTokenizerBailsAreExplicit runs structures the fused pass
// cannot reproduce and asserts it refuses them instead of emitting a
// divergent stream.
func TestStreamTokenizerBailsAreExplicit(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"body_outside_html", `<html><div>x</div></html><body>y</body>`},
		{"html_promised_never_delivered", `<p>a &lt;html&gt; page about <b>&amp;html</b></p><div title="<html>">x</div>`},
		{"body_promised_never_delivered", `<html><div data-x="<body>">x</div></html>`},
	}
	for _, tc := range cases {
		tab := fullTable(tc.src)
		var a StreamArena
		got, ok := TokenizeLookupStream(&a, tab, tc.src, nil, 0)
		if !ok {
			continue // explicit bail: tree fallback takes over
		}
		// If it did not bail, the output must still match the tree.
		t.Run(tc.name, func(t *testing.T) {
			diffTokens(t, treeTokens(tab, tc.src, nil, 0), got)
		})
	}
}

// TestStreamTokenizerBlockScoping drives the candidate logic: full
// attr-signature match, path-only fallback, and whole-page fallback.
func TestStreamTokenizerBlockScoping(t *testing.T) {
	src := `<html><body><div class="nav"><span>menu</span></div><div class="main" id="m"><ul><li>one</li><li>two</li></ul></div><div class="main"><p>decoy</p></div></body></html>`
	tab := fullTable(src)

	keys := []struct {
		name string
		key  segment.Key
	}{
		{"full_match", segment.Key{Tag: "div", Path: "html/body/div", AttrSig: `class=main;id=m`}},
		{"path_only", segment.Key{Tag: "div", Path: "html/body/div", AttrSig: `class=gone`}},
		{"no_match_whole_page", segment.Key{Tag: "article", Path: "html/body/article", AttrSig: ""}},
		{"empty_candidate_skipped", segment.Key{Tag: "span", Path: "html/body/div/span", AttrSig: ""}},
	}
	for _, k := range keys {
		t.Run(k.name, func(t *testing.T) {
			sk := StreamKey{Tag: k.key.Tag, Path: k.key.Path, AttrSig: k.key.AttrSig}
			var a StreamArena
			got, ok := TokenizeLookupStream(&a, tab, src, &sk, 0)
			if !ok {
				t.Fatalf("unexpected bail")
			}
			diffTokens(t, treeTokens(tab, src, &k.key, 0), got)
		})
	}
}

// TestStreamArenaReuse proves the arena is safe to reuse across pages:
// a second, different page on the same arena must match its own tree
// output (no state bleed), and repeated runs must be stable.
func TestStreamArenaReuse(t *testing.T) {
	var a StreamArena
	for round := 0; round < 3; round++ {
		for i, tc := range streamCases {
			tab := fullTable(tc.src)
			got, ok := TokenizeLookupStream(&a, tab, tc.src, nil, i)
			if !ok {
				continue
			}
			diffTokens(t, treeTokens(tab, tc.src, nil, i), got)
		}
	}
}

// TestStreamTokenizerLargePage exercises arena growth across chunk
// boundaries with a page big enough to force several reallocations.
func TestStreamTokenizerLargePage(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(`<html><body><table>`)
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&sb, `<tr><td class="k">key%d</td><td>value %d text</td></tr>`, i, i)
	}
	sb.WriteString(`</table></body></html>`)
	src := sb.String()
	tab := fullTable(src)
	var a StreamArena
	got, ok := TokenizeLookupStream(&a, tab, src, nil, 0)
	if !ok {
		t.Fatalf("unexpected bail on large page")
	}
	diffTokens(t, treeTokens(tab, src, nil, 0), got)
}
