package eqclass

import (
	"sort"

	"objectrunner/internal/symtab"
)

// SlotProfile summarizes the data observed in one interior slot of an
// equivalence class across the sample: which annotation types appeared,
// how much raw text, and whether distinct types collide there (the
// conflicting-annotation signal used for wrapper self-validation).
type SlotProfile struct {
	// Types counts annotation-type observations on data tokens in the
	// slot.
	Types map[string]int
	// TextCount counts word tokens seen in the slot.
	TextCount int
	// ChildEQs lists ids of equivalence classes nested in this slot.
	ChildEQs []int
}

// Dominant returns the most frequent type and its share of all type
// observations in the slot ("", 0 when the slot is untyped).
func (s *SlotProfile) Dominant() (string, float64) {
	total, best, bestC := 0, "", 0
	keys := make([]string, 0, len(s.Types))
	for t := range s.Types {
		keys = append(keys, t)
	}
	sort.Strings(keys)
	for _, t := range keys {
		c := s.Types[t]
		total += c
		if c > bestC {
			best, bestC = t, c
		}
	}
	if total == 0 {
		return "", 0
	}
	return best, float64(bestC) / float64(total)
}

// Conflicting reports whether two or more types collide in the slot with
// no sufficiently dominant winner.
func (s *SlotProfile) Conflicting(threshold float64) bool {
	if len(s.Types) < 2 {
		return false
	}
	_, share := s.Dominant()
	return share < threshold
}

// coverage returns the total number of token positions covered by the
// class's tuples, a proxy for structural size used to order nesting
// candidates.
func (e *EQ) coverage() int {
	total := 0
	for _, tups := range e.Tuples {
		for _, t := range tups {
			total += t.Last() - t.First() + 1
		}
	}
	return total
}

// nesting relations between two classes.
const (
	relDisjoint = iota
	relContained
	relConflict
)

// relation determines how class b relates to class a: fully contained in
// one consistent slot, disjoint, or conflicting (straddling separators or
// spread over different slots — such classes are discarded, per
// Algorithm 2's invalid-EQ handling).
func relation(a, b *EQ) (rel int, slot int) {
	slot = -1
	anyInside := false
	anyOutside := false
	for pi := range b.Tuples {
		for _, tb := range b.Tuples[pi] {
			s, status := locate(a.Tuples[pi], tb)
			switch status {
			case relDisjoint:
				anyOutside = true
			case relConflict:
				return relConflict, -1
			case relContained:
				anyInside = true
				if slot == -1 {
					slot = s
				} else if slot != s {
					return relConflict, -1
				}
			}
		}
	}
	switch {
	case anyInside && anyOutside:
		return relConflict, -1
	case anyInside:
		return relContained, slot
	default:
		return relDisjoint, -1
	}
}

// locate finds the slot of a's tuples (on one page) containing tuple tb.
func locate(tuplesA []Tuple, tb Tuple) (slot, status int) {
	for _, ta := range tuplesA {
		if tb.First() > ta.Last() || tb.Last() < ta.First() {
			continue // disjoint from this tuple
		}
		// Overlapping: must sit inside one interior gap.
		for s := 0; s+1 < len(ta.Positions); s++ {
			if tb.First() > ta.Positions[s] && tb.Last() < ta.Positions[s+1] {
				return s, relContained
			}
		}
		return -1, relConflict
	}
	return -1, relDisjoint
}

// BuildHierarchy organizes the analysis's valid classes into a forest by
// span containment, discards classes that straddle others' separators,
// and computes per-slot data profiles. Classes with fewer than two roles
// carry no slots and are excluded.
func BuildHierarchy(a *Analysis) {
	var eqs []*EQ
	for _, e := range a.EQs {
		if e.K() >= 2 {
			e.Parent, e.Children, e.ParentSlot = nil, nil, -1
			eqs = append(eqs, e)
		}
	}
	// Outer classes first; equal coverage falls back to the class id so
	// the containment scan (and therefore parent assignment) never
	// depends on the incoming order. Coverage is precomputed — the
	// comparator runs O(n log n) times.
	cov := make(map[int]int, len(eqs))
	for _, e := range eqs {
		cov[e.ID] = e.coverage()
	}
	sort.SliceStable(eqs, func(i, j int) bool {
		if cov[eqs[i].ID] != cov[eqs[j].ID] {
			return cov[eqs[i].ID] > cov[eqs[j].ID]
		}
		return eqs[i].ID < eqs[j].ID
	})

	var kept []*EQ
	for _, b := range eqs {
		conflict := false
		var parent *EQ
		parentSlot := -1
		// kept is ordered outer->inner; the last container is innermost.
		for _, cand := range kept {
			rel, slot := relation(cand, b)
			switch rel {
			case relConflict:
				conflict = true
			case relContained:
				parent = cand
				parentSlot = slot
			}
			if conflict {
				break
			}
		}
		if conflict {
			continue
		}
		b.Parent = parent
		b.ParentSlot = parentSlot
		if parent != nil {
			parent.Children = append(parent.Children, b)
		}
		kept = append(kept, b)
	}
	a.EQs = kept
	for _, e := range kept {
		computeOrderHints(e)
		sortChildren(e)
	}
	computeSlotProfiles(a)
}

// computeDescOrdinals learns, for each separator of each class, its
// occurrence index among structurally identical tokens within one
// repetition of the class (the extraction-time disambiguator for
// annotation-differentiated roles). The most frequent index across the
// sample's tuples wins.
func computeDescOrdinals(a *Analysis) {
	// Intern structural signatures once per token, per page. The key is
	// the symbol triple, not the strings — occurrences and descriptors
	// both carry Val/Pth from the analysis table at this point.
	type sigKey struct {
		kind     TokKind
		val, pth symtab.Sym
	}
	sigID := make(map[sigKey]int)
	pageSigs := make([][]int, len(a.Pages))
	intern := func(k sigKey) int {
		if id, ok := sigID[k]; ok {
			return id
		}
		id := len(sigID) + 1
		sigID[k] = id
		return id
	}
	for pi, page := range a.Pages {
		pageSigs[pi] = make([]int, len(page))
		for i, o := range page {
			pageSigs[pi][i] = intern(sigKey{o.Kind, o.Val, o.Pth})
		}
	}
	counts := make(map[int]int)
	for _, e := range a.EQs {
		descSig := make([]int, len(e.Descs))
		for k, d := range e.Descs {
			descSig[k] = intern(sigKey{d.Kind, d.Val, d.Pth})
		}
		votes := make([]map[int]int, len(e.Descs))
		for k := range votes {
			votes[k] = make(map[int]int)
		}
		for pi, tups := range e.Tuples {
			sigs := pageSigs[pi]
			for _, t := range tups {
				// One forward pass per tuple: running count per signature.
				for s := range counts {
					delete(counts, s)
				}
				k := 0
				for j := t.Positions[0]; j <= t.Last() && j < len(sigs); j++ {
					counts[sigs[j]]++
					for k < len(t.Positions) && t.Positions[k] == j {
						votes[k][counts[descSig[k]]]++
						k++
					}
				}
			}
		}
		for k := range e.Descs {
			best, bestC := 0, 0
			for ord, c := range votes[k] {
				if c > bestC || c == bestC && ord < best {
					best, bestC = ord, c
				}
			}
			e.Descs[k].Ordinal = best
		}
	}
}

// computeOrderHints sets each child's average offset from the start of
// the parent tuple containing it.
func computeOrderHints(parent *EQ) {
	for _, c := range parent.Children {
		total, n := 0.0, 0
		for pi := range c.Tuples {
			for _, tb := range c.Tuples[pi] {
				for _, ta := range parent.Tuples[pi] {
					if tb.First() > ta.First() && tb.Last() < ta.Last() {
						total += float64(tb.First() - ta.First())
						n++
						break
					}
				}
			}
		}
		if n > 0 {
			c.OrderHint = total / float64(n)
		}
	}
}

func sortChildren(e *EQ) {
	sort.SliceStable(e.Children, func(i, j int) bool {
		a, b := e.Children[i], e.Children[j]
		if a.ParentSlot != b.ParentSlot {
			return a.ParentSlot < b.ParentSlot
		}
		if a.OrderHint != b.OrderHint {
			return a.OrderHint < b.OrderHint
		}
		return a.ID < b.ID
	})
}

// Multiplicity returns the per-parent-tuple repetition counts of a child
// class: constant reports whether every parent tuple contains the same
// number of child tuples, and c is that count (the maximum seen when not
// constant). A child with varying multiplicity is a true iterator (a
// record list); a child with constant multiplicity c >= 2 is structural
// repetition whose token roles must be differentiated by ordinal instead.
func Multiplicity(parent, child *EQ) (constant bool, c int) {
	counts := make(map[[2]int]int)
	for pi := range child.Tuples {
		for _, tb := range child.Tuples[pi] {
			for ti, ta := range parent.Tuples[pi] {
				if tb.First() > ta.First() && tb.Last() < ta.Last() {
					counts[[2]int{pi, ti}]++
					break
				}
			}
		}
	}
	constant = true
	first := true
	for _, n := range counts {
		if first {
			c, first = n, false
			continue
		}
		if n != c {
			constant = false
			if n > c {
				c = n
			}
		}
	}
	// Parent tuples with zero children also break constancy.
	total := 0
	for pi := range parent.Tuples {
		total += len(parent.Tuples[pi])
	}
	if total != len(counts) {
		constant = false
	}
	return constant, c
}

// TopEQs returns the hierarchy's root classes (outermost first).
func (a *Analysis) TopEQs() []*EQ {
	var out []*EQ
	for _, e := range a.EQs {
		if e.Parent == nil {
			out = append(out, e)
		}
	}
	return out
}

// SlotProfilesOf returns the computed slot profiles of a class.
func (a *Analysis) SlotProfilesOf(e *EQ) []SlotProfile {
	return a.profiles[e.ID]
}

// computeSlotProfiles paints innermost scopes with the hierarchy's
// classes and aggregates the data tokens of each slot.
func computeSlotProfiles(a *Analysis) {
	a.profiles = make(map[int][]SlotProfile)
	for _, e := range a.EQs {
		ps := make([]SlotProfile, e.Slots())
		for i := range ps {
			ps[i].Types = make(map[string]int)
		}
		a.profiles[e.ID] = ps
		for _, c := range e.Children {
			if c.ParentSlot >= 0 && c.ParentSlot < len(ps) {
				ps[c.ParentSlot].ChildEQs = append(ps[c.ParentSlot].ChildEQs, c.ID)
			}
		}
	}
	// Separator roles of the hierarchy.
	sepRoles := make(map[int]bool)
	for _, e := range a.EQs {
		for _, r := range e.Roles {
			sepRoles[r] = true
		}
	}
	scopes := a.computeScopes()
	for pi, page := range a.Pages {
		for i, o := range page {
			if sepRoles[o.role] {
				continue
			}
			sc := scopes[pi][i]
			if sc.eq < 0 {
				continue
			}
			profs, ok := a.profiles[sc.eq]
			if !ok || sc.slot >= len(profs) {
				continue
			}
			p := &profs[sc.slot]
			if o.Kind == KindWord {
				p.TextCount++
			}
			for _, t := range o.Types {
				p.Types[t]++
			}
		}
	}
}
