package eqclass

// This file is the serving path's streaming tokenizer: one fused pass
// over raw HTML that produces exactly the token stream the tree path
// produces via Parse → ensureStructure → clean.Page → segment.FindByKey
// → TokenizeLookupPage, without materializing a dom.Node tree. It
// replays the parser's stack repairs (implied end tags, stray end-tag
// recovery, void elements), the cleaner's drop/hide/empty rules by arena
// truncation, and FindByKey's candidate selection, all against a reused
// per-call arena — steady-state cache hits allocate close to nothing.
//
// The pass is exact on the structures template-generated pages use; the
// handful of pathological shapes it cannot reproduce faithfully (html
// re-rooted mid-document, a <body> outside the first <html> subtree)
// make it bail, and the caller falls back to the tree path. Correctness
// therefore never depends on the fast path: the tree pipeline remains
// the reference oracle, and TestStreamVsTreeExtract holds the two
// byte-identical over the sitegen corpus.

import (
	"unicode"
	"unicode/utf8"

	"objectrunner/internal/clean"
	"objectrunner/internal/dom"
	"objectrunner/internal/symtab"
)

// StreamKey mirrors segment.Key for streaming block scoping without an
// eqclass→segment dependency.
type StreamKey struct {
	Tag     string
	Path    string
	AttrSig string
}

// streamFrame is one open element on the streaming parse stack.
type streamFrame struct {
	name    string     // parser tag name (lower-cased)
	pathLen int        // pathBuf length before this frame extended it
	mark    int        // arena index of this frame's start occurrence
	valSym  symtab.Sym // interned TagValue (start and end share it)
	pthSym  symtab.Sym // interned document-rooted path
	dropped bool
	// implicit marks the synthesized html/body frames: they exist only
	// after ensureStructure in the tree path, so end tags never match
	// them during the parse replay.
	implicit bool
	// keepEven marks frames holding a doctype node — the one child kind
	// that produces no tokens yet keeps its parent out of dropEmpty.
	keepEven bool
	cand     int8 // 0 not a block-key candidate, 1 tag+path, 2 tag+path+attrs
}

// StreamArena is the reusable scratch state of one streaming
// tokenization. One arena serves one goroutine at a time; wrapper-level
// code pools them (sync.Pool) so steady-state serving reuses the token
// arena, the frame stack, and the path/word buffers across pages.
type StreamArena struct {
	arena    []Occurrence
	occs     []*Occurrence
	frames   []streamFrame
	pathBuf  []byte
	wordBuf  []byte
	sigPairs []string // attr-signature sort scratch (candidates only)
	tok      dom.Token
}

// TokenizeLookupStream tokenizes raw HTML straight into the region token
// stream the tree path would produce for it: parser repairs, default
// cleaning, block scoping by key (nil key means whole page), and
// read-only symbol resolution against tab are all fused into one pass.
// Occurrences carry only the fields extraction reads — Kind, Raw, Val,
// Pth — and live in the arena until the next call.
//
// ok is false when the page's structure defeats the fused replay (or tab
// is nil); the caller must then take the tree path. The returned slice
// aliases the arena: it is valid only until the next call on a.
func TokenizeLookupStream(a *StreamArena, tab *symtab.Table, src string, key *StreamKey, page int) (region []*Occurrence, ok bool) {
	if tab == nil {
		return nil, false
	}
	a.arena = a.arena[:0]
	a.frames = a.frames[:0]
	a.pathBuf = a.pathBuf[:0]

	// ensureStructure synthesizes <html>/<body> only when the parsed
	// tree has none anywhere, so the decision needs whole-document
	// knowledge before the first token. A substring scan can over-detect
	// (entity text, attribute values) — that only costs a rare bail —
	// but can never miss a real tag.
	srcHasHTML := containsTagFold(src, "html")
	srcHasBody := containsTagFold(src, "body")

	htmlSeen := false // an explicit <html> start tag occurred (kept or dropped)
	bodySeen := false // a <body> start occurred while the first html was open
	firstHTML := -1   // frame index of the structural html element
	droppedDepth := 0 // >0 while inside a subtree the cleaner removes
	fullStart := -1   // resolved full block-key match: [fullStart, fullEnd)
	fullEnd := -1
	pathStart, pathEnd := -1, -1 // first surviving tag+path-only match

	docPth := tab.Lookup("")

	curPth := func() symtab.Sym {
		if n := len(a.frames); n > 0 {
			return a.frames[n-1].pthSym
		}
		return docPth
	}

	push := func(f streamFrame) { a.frames = append(a.frames, f) }

	// closeTop closes the top frame: dropEmpty by arena truncation, end
	// tag emission, candidate resolution, and the body-synthesis bail
	// check when the structural html closes. It reports false on bail.
	closeTop := func() bool {
		n := len(a.frames) - 1
		f := a.frames[n]
		a.frames = a.frames[:n]
		a.pathBuf = a.pathBuf[:f.pathLen]
		if f.dropped {
			if droppedDepth > 0 {
				droppedDepth--
			}
			return true
		}
		if f.mark >= 0 {
			if len(a.arena) == f.mark+1 && !f.keepEven && !clean.ContentBearing(f.name) {
				// Only its own start tag: dropEmpty removes it. The
				// truncation cascades exactly like the iterative pass —
				// inner frames close (and truncate) first.
				a.arena = a.arena[:f.mark]
			} else {
				a.arena = append(a.arena, Occurrence{Kind: KindEndTag, Val: f.valSym, Pth: f.pthSym})
				// A candidate that reached end-tag emission survived
				// cleaning, so FindByKey would see it.
				switch f.cand {
				case 2:
					fullStart, fullEnd = f.mark, len(a.arena)
				case 1:
					if pathStart < 0 {
						pathStart, pathEnd = f.mark, len(a.arena)
					}
				}
			}
		}
		if n == firstHTML {
			firstHTML = -2 // closed
			if srcHasBody && !bodySeen {
				// ensureStructure would synthesize a body under this html
				// and move its children into it — a reshaping the stream
				// already emitted past. Fall back to the tree.
				return false
			}
		}
		return true
	}

	openImplicit := func(name string) {
		pathLen := len(a.pathBuf)
		if pathLen > 0 {
			a.pathBuf = append(a.pathBuf, '/')
		}
		a.pathBuf = append(a.pathBuf, name...)
		f := streamFrame{
			name:     name,
			pathLen:  pathLen,
			mark:     len(a.arena),
			valSym:   tab.Lookup(name),
			pthSym:   tab.LookupBytes(a.pathBuf),
			implicit: true,
		}
		a.arena = append(a.arena, Occurrence{Kind: KindStartTag, Val: f.valSym, Pth: f.pthSym})
		push(f)
	}

	if !srcHasHTML {
		openImplicit("html")
		firstHTML = 0
		if !srcHasBody {
			openImplicit("body")
		}
	}

	z := dom.NewTokenizer(src)
	bailed := false

scan:
	for z.NextInto(&a.tok) {
		tok := &a.tok
		switch tok.Type {
		case dom.TextToken:
			if droppedDepth > 0 {
				continue
			}
			pth := curPth()
			data := tok.Data
			i := 0
			for i < len(data) {
				r, size := rune(data[i]), 1
				if r >= utf8.RuneSelf {
					r, size = utf8.DecodeRuneInString(data[i:])
				}
				if unicode.IsSpace(r) {
					i += size
					continue
				}
				start := i
				for i < len(data) {
					r, size = rune(data[i]), 1
					if r >= utf8.RuneSelf {
						r, size = utf8.DecodeRuneInString(data[i:])
					}
					if unicode.IsSpace(r) {
						break
					}
					i += size
				}
				word := data[start:i]
				a.wordBuf = appendLower(a.wordBuf[:0], word)
				a.arena = append(a.arena, Occurrence{
					Kind: KindWord,
					Raw:  word,
					Val:  tab.LookupBytes(a.wordBuf),
					Pth:  pth,
				})
			}
		case dom.CommentToken:
			// Dropped by cleaning; no structural effect.
		case dom.DoctypeToken:
			// Doctype nodes survive cleaning but emit no tokens; they
			// keep their parent out of dropEmpty.
			if droppedDepth == 0 && len(a.frames) > 0 {
				a.frames[len(a.frames)-1].keepEven = true
			}
		case dom.StartTagToken, dom.SelfClosingToken:
			name := tok.Data
			// Parser repairs run before any cleaning decision, exactly
			// as Parse runs before Clean.
			for len(a.frames) > 0 && dom.ClosesImplicitly(name, a.frames[len(a.frames)-1].name) {
				if !closeTop() {
					bailed = true
					break scan
				}
			}
			if name == "html" {
				if !htmlSeen {
					htmlSeen = true
					if droppedDepth == 0 {
						// This is the element ensureStructure anchors body
						// synthesis on (the first html in pre-order).
						firstHTML = len(a.frames)
					}
				}
			} else if name == "body" && firstHTML >= 0 {
				bodySeen = true
			}
			dropped := droppedDepth > 0 || clean.DroppedTag(name) || clean.HiddenAttrs(tok.Attrs)
			pushed := tok.Type == dom.StartTagToken && !dom.VoidElement(name)
			if dropped {
				if pushed {
					push(streamFrame{name: name, pathLen: len(a.pathBuf), mark: -1, dropped: true})
					droppedDepth++
				}
				continue
			}
			pathLen := len(a.pathBuf)
			if pathLen > 0 {
				a.pathBuf = append(a.pathBuf, '/')
			}
			a.pathBuf = append(a.pathBuf, name...)
			f := streamFrame{
				name:    name,
				pathLen: pathLen,
				mark:    len(a.arena),
				valSym:  tab.LookupBytes(a.tagValue(name, tok.Attrs)),
				pthSym:  tab.LookupBytes(a.pathBuf),
			}
			if key != nil && fullStart < 0 && name == key.Tag && string(a.pathBuf) == key.Path {
				if attrSigEqual(a, tok.Attrs, key.AttrSig) {
					f.cand = 2
				} else if pathStart < 0 {
					f.cand = 1
				}
			}
			a.arena = append(a.arena, Occurrence{Kind: KindStartTag, Val: f.valSym, Pth: f.pthSym})
			if !pushed {
				// Void or self-closed: childless in the tree, so it
				// survives cleaning only when content-bearing.
				if clean.ContentBearing(name) {
					a.arena = append(a.arena, Occurrence{Kind: KindEndTag, Val: f.valSym, Pth: f.pthSym})
				} else {
					a.arena = a.arena[:f.mark]
				}
				a.pathBuf = a.pathBuf[:pathLen]
				continue
			}
			push(f)
			if firstHTML == len(a.frames)-1 && !srcHasBody {
				openImplicit("body")
			}
		case dom.EndTagToken:
			name := tok.Data
			if dom.VoidElement(name) {
				continue
			}
			// Stray end-tag recovery: close down to the matching open
			// element, or ignore. Implicit frames don't exist during the
			// tree parse and can never match.
			match := -1
			for i := len(a.frames) - 1; i >= 0; i-- {
				if !a.frames[i].implicit && a.frames[i].name == name {
					match = i
					break
				}
			}
			if match < 0 {
				continue
			}
			for len(a.frames) > match {
				if !closeTop() {
					bailed = true
					break scan
				}
			}
		}
		if fullStart >= 0 {
			// The block key resolved exactly; nothing after the region
			// can change it (pre-order-first wins, and a closed non-empty
			// region can no longer be truncated).
			break scan
		}
	}

	if bailed {
		return nil, false
	}
	for len(a.frames) > 0 && fullStart < 0 {
		if !closeTop() {
			return nil, false
		}
	}
	if srcHasHTML && !htmlSeen {
		// The scan promised an <html> that never materialized as a tag;
		// the tree path would synthesize structure the stream did not.
		return nil, false
	}

	start, end := 0, len(a.arena)
	if key != nil {
		switch {
		case fullStart >= 0:
			start, end = fullStart, fullEnd
		case pathStart >= 0:
			start, end = pathStart, pathEnd
		}
		// Neither: FindByKey misses and the wrapper scopes to the whole
		// page, which is the full arena already.
	}

	a.occs = a.occs[:0]
	for i := start; i < end; i++ {
		a.arena[i].Page = page
		a.arena[i].Pos = i - start
		a.occs = append(a.occs, &a.arena[i])
	}
	return a.occs, true
}

// tagValue builds TagValue's "name" or "name.firstclasstoken" form into
// the arena's word buffer.
func (a *StreamArena) tagValue(name string, attrs []dom.Attr) []byte {
	a.wordBuf = append(a.wordBuf[:0], name...)
	for _, at := range attrs {
		if at.Name != "class" {
			continue
		}
		cls := at.Value
		i := 0
		for i < len(cls) {
			r, size := rune(cls[i]), 1
			if r >= utf8.RuneSelf {
				r, size = utf8.DecodeRuneInString(cls[i:])
			}
			if !unicode.IsSpace(r) {
				break
			}
			i += size
		}
		start := i
		for i < len(cls) {
			r, size := rune(cls[i]), 1
			if r >= utf8.RuneSelf {
				r, size = utf8.DecodeRuneInString(cls[i:])
			}
			if unicode.IsSpace(r) {
				break
			}
			i += size
		}
		if start < i {
			a.wordBuf = append(a.wordBuf, '.')
			a.wordBuf = appendLower(a.wordBuf, cls[start:i])
		}
		break // only the first class attribute counts (Node.Attr semantics)
	}
	return a.wordBuf
}

// containsTagFold reports whether src contains '<' immediately followed
// by name, ASCII-case-insensitively. It can over-report (the bytes may
// sit in a comment, attribute value, or a longer tag name — costing at
// worst a bail to the tree path) but never misses a real <name tag.
func containsTagFold(src, name string) bool {
	for i := 0; i+len(name) < len(src); i++ {
		if src[i] != '<' {
			continue
		}
		match := true
		for j := 0; j < len(name); j++ {
			b := src[i+1+j]
			if 'A' <= b && b <= 'Z' {
				b += 'a' - 'A'
			}
			if b != name[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// appendLower appends the lower-cased form of s to dst with
// strings.ToLower's exact rune semantics.
func appendLower(dst []byte, s string) []byte {
	for i := 0; i < len(s); {
		b := s[i]
		if b < utf8.RuneSelf {
			if 'A' <= b && b <= 'Z' {
				b += 'a' - 'A'
			}
			dst = append(dst, b)
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		dst = utf8.AppendRune(dst, unicode.ToLower(r))
		i += size
	}
	return dst
}

// attrSigEqual reports whether the token attributes' AttrSignature —
// lexically sorted "name=value" pairs joined by ';' — equals sig.
// Attribute names arrive lower-cased from the tokenizer, matching
// AttrSignature's ToLower. The check runs only on tag+path candidates —
// a handful of elements per page at most — so the small sort scratch
// stays off the per-token path.
func attrSigEqual(a *StreamArena, attrs []dom.Attr, sig string) bool {
	if len(attrs) == 0 {
		return sig == ""
	}
	pairs := a.sigPairs[:0]
	for _, at := range attrs {
		pairs = append(pairs, at.Name+"="+at.Value)
	}
	for i := 1; i < len(pairs); i++ {
		for j := i; j > 0 && pairs[j] < pairs[j-1]; j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
	a.sigPairs = pairs[:0]
	pos := 0
	for i, p := range pairs {
		if i > 0 {
			if pos >= len(sig) || sig[pos] != ';' {
				return false
			}
			pos++
		}
		if pos+len(p) > len(sig) || sig[pos:pos+len(p)] != p {
			return false
		}
		pos += len(p)
	}
	return pos == len(sig)
}
