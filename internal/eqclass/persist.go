package eqclass

import "objectrunner/internal/symtab"

// Persistence of the learned token-role state (the wrapper serving-cache
// subsystem). An equivalence class survives a restart as its
// page-independent parts: the role ids and occurrence vector learned from
// the sample, and the separator descriptors — the token table extraction
// uses to re-locate the template on unseen pages. The sample-bound parts
// (per-page tuples, live occurrences) are inference-time state and are
// not persisted; the hierarchy links are restored by the template layer,
// which owns the tree shape.

// PersistedDesc is the persisted form of one separator descriptor. Since
// stream v2 the Value and Path strings are stored once in the wrapper's
// symbol list and referenced here by id (Val/Pth); v1 payloads carry the
// inline strings and no ids, and the reader rebuilds the symbol table
// from them.
type PersistedDesc struct {
	Kind    int    `json:"kind"`
	Value   string `json:"value,omitempty"`
	Path    string `json:"path,omitempty"`
	Val     int    `json:"val,omitempty"`
	Pth     int    `json:"pth,omitempty"`
	Ordinal int    `json:"ordinal,omitempty"`
}

// PersistedEQ is the persisted form of one equivalence class, sans
// hierarchy links and sample tuples.
type PersistedEQ struct {
	ID         int             `json:"id"`
	Roles      []int           `json:"roles,omitempty"`
	Vector     []int           `json:"vector,omitempty"`
	Descs      []PersistedDesc `json:"descs"`
	ParentSlot int             `json:"parent_slot"`
	OrderHint  float64         `json:"order_hint,omitempty"`
}

// Persist returns the class's persisted form.
func (e *EQ) Persist() PersistedEQ {
	p := PersistedEQ{
		ID:         e.ID,
		Roles:      e.Roles,
		Vector:     e.Vector,
		ParentSlot: e.ParentSlot,
		OrderHint:  e.OrderHint,
	}
	for _, d := range e.Descs {
		p.Descs = append(p.Descs, PersistedDesc{
			Kind: int(d.Kind), Val: int(d.Val), Pth: int(d.Pth), Ordinal: d.Ordinal,
		})
	}
	return p
}

// Restore rebuilds the class. Parent and Children stay nil — the caller
// re-links them from the persisted tree shape. With a non-nil table (v2
// streams) descriptor strings are resolved from their symbol ids; with a
// nil table (v1 streams) the inline strings are taken as-is and the
// caller re-interns the template afterwards.
func (p PersistedEQ) Restore(tab *symtab.Table) *EQ {
	e := &EQ{
		ID:         p.ID,
		Roles:      p.Roles,
		Vector:     p.Vector,
		ParentSlot: p.ParentSlot,
		OrderHint:  p.OrderHint,
	}
	for _, d := range p.Descs {
		rd := Desc{Kind: TokKind(d.Kind), Value: d.Value, Path: d.Path, Ordinal: d.Ordinal}
		if tab != nil {
			rd.Val, rd.Pth = symtab.Sym(d.Val), symtab.Sym(d.Pth)
			rd.Value, rd.Path = tab.StringOf(rd.Val), tab.StringOf(rd.Pth)
		}
		e.Descs = append(e.Descs, rd)
	}
	return e
}
