package eqclass

import (
	"context"
	"sort"

	"objectrunner/internal/parallel"
)

// This file holds the data-parallel core of the staged analysis: role
// re-keying and per-role occurrence aggregation fan out across page
// chunks via parallel.MapWorkersCtx, with deterministic merges that keep
// role numbering — and therefore every downstream artifact — byte-
// identical at any worker count.

// initLayout computes the flat occurrence layout: pageOff[pi] is the
// global index of page pi's first token, pageOff[len(Pages)] the total.
// Flat indices let the parallel passes address per-occurrence state
// (key ids, annotation labels) in shared pre-sized buffers with no
// cross-worker synchronization: chunks are page-aligned, so workers
// write disjoint index ranges.
func (a *Analysis) initLayout() {
	off := make([]int, len(a.Pages)+1)
	n := 0
	for i, page := range a.Pages {
		off[i] = n
		n += len(page)
	}
	off[len(a.Pages)] = n
	a.pageOff = off
}

// assignRolesBy recomputes role ids from per-occurrence keys. mk returns
// a fresh key function per worker: key functions may be stateful
// (ordinal counters), and their state is scoped to single pages
// (ordScope includes the page), so page-aligned chunks see exactly the
// counts a sequential pass would.
//
// Determinism across worker counts: each worker numbers the distinct
// keys of its chunk in first-seen order; the worker lists are merged
// left-to-right into one global list, whose order depends on chunk
// boundaries — but the *set* of distinct keys does not, and the final
// numbering is assigned by sorting that set on the legacy string form
// (with a full field-wise tie-break for the pathological case of two
// distinct keys composing the same string). The sorted numbering is
// therefore a pure function of the key set, independent of chunking.
//
// Like its sequential predecessor, it reports whether the induced
// partition of occurrences changed — ids may be relabelled freely (keys
// carry generation tags), so change is detected as a broken old↔new
// bijection, which is order-independent.
func (a *Analysis) assignRolesBy(mk func() func(*Occurrence) roleKey) bool {
	np := len(a.Pages)
	total := a.total()
	if cap(a.perOccBuf) < total {
		a.perOccBuf = make([]int32, total)
	}
	perOcc := a.perOccBuf[:total]
	chunks := parallel.Chunks(a.params.Workers, np)
	locals, _ := parallel.MapWorkersCtx(nil, a.params.Workers, np,
		func(_ context.Context, _ int, c parallel.Chunk) ([]roleKey, error) {
			key := mk()
			seen := make(map[roleKey]int32, len(a.roleKeys)+16)
			keys := make([]roleKey, 0, len(a.roleKeys)+16)
			for pi := c.Lo; pi < c.Hi; pi++ {
				gi := a.pageOff[pi]
				for _, o := range a.Pages[pi] {
					k := key(o)
					id, ok := seen[k]
					if !ok {
						id = int32(len(keys))
						seen[k] = id
						keys = append(keys, k)
					}
					perOcc[gi] = id
					gi++
				}
			}
			return keys, nil
		})

	// Merge the worker-local key lists into a global first-seen list,
	// remembering each local id's global id.
	nguess := 0
	for _, lk := range locals {
		nguess += len(lk)
	}
	idOf := make(map[roleKey]int32, nguess)
	keys := make([]roleKey, 0, nguess)
	remap := make([][]int32, len(locals))
	for w, lk := range locals {
		rm := make([]int32, len(lk))
		for li, k := range lk {
			gid, ok := idOf[k]
			if !ok {
				gid = int32(len(keys))
				idOf[k] = gid
				keys = append(keys, k)
			}
			rm[li] = gid
		}
		remap[w] = rm
	}

	// Final numbering: sort the distinct keys on their legacy string form
	// (see legacyString — the order is observable through frozen stale
	// role ids) and compose each worker remap with the sort ranks.
	legacy := make([]string, len(keys))
	for i, k := range keys {
		legacy[i] = a.legacyString(k)
	}
	perm := make([]int, len(keys))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(i, j int) bool {
		if legacy[perm[i]] != legacy[perm[j]] {
			return legacy[perm[i]] < legacy[perm[j]]
		}
		return keyLess(keys[perm[i]], keys[perm[j]])
	})
	rank := make([]int32, len(keys))
	sorted := make([]roleKey, len(keys))
	for newID, old := range perm {
		rank[old] = int32(newID)
		sorted[newID] = keys[old]
	}
	for _, rm := range remap {
		for li := range rm {
			rm[li] = rank[rm[li]]
		}
	}

	// Commit pass: rewrite roles in page order, tracking the old↔new
	// bijection. The boolean outcome is a property of the two partitions,
	// not of visit order.
	oldRoles := len(a.roleKeys)
	if oldRoles == 0 {
		// Initial assignment: no role keys yet, but occurrences may carry
		// stale ids from an earlier analysis (pages copied off a consumed
		// base) — size the bijection off what is actually there.
		oldRoles = 1
		for _, page := range a.Pages {
			for _, o := range page {
				if o.role >= oldRoles {
					oldRoles = o.role + 1
				}
			}
		}
	}
	oldToNew := make([]int, oldRoles)
	newToOld := make([]int, len(sorted))
	for i := range oldToNew {
		oldToNew[i] = -1
	}
	for i := range newToOld {
		newToOld[i] = -1
	}
	changed := false
	w := 0
	for pi, page := range a.Pages {
		for w < len(chunks)-1 && pi >= chunks[w].Hi {
			w++
		}
		rm := remap[w]
		gi := a.pageOff[pi]
		for _, o := range page {
			r := int(rm[perOcc[gi]])
			gi++
			if n := oldToNew[o.role]; n >= 0 {
				if n != r {
					changed = true
				}
			} else {
				oldToNew[o.role] = r
			}
			if old := newToOld[r]; old >= 0 {
				if old != o.role {
					changed = true
				}
			} else {
				newToOld[r] = o.role
			}
			o.role = r
		}
	}
	a.roleKeys = sorted
	// Any renumbering (even an unchanged partition gets fresh ids from
	// the legacy sort) invalidates role-indexed caches.
	a.stats = nil
	return changed
}

// keyLess is the deterministic field-wise tie-break for role keys whose
// legacy strings collide (possible only when a path or label itself
// contains the separator sequences). It keeps the sort total so the
// numbering cannot depend on chunk boundaries.
func keyLess(x, y roleKey) bool {
	if x.kind != y.kind {
		return x.kind < y.kind
	}
	if x.val != y.val {
		return x.val < y.val
	}
	if x.pth != y.pth {
		return x.pth < y.pth
	}
	if x.gen != y.gen {
		return x.gen < y.gen
	}
	if x.eq != y.eq {
		return x.eq < y.eq
	}
	if x.slot != y.slot {
		return x.slot < y.slot
	}
	if x.ord != y.ord {
		return x.ord < y.ord
	}
	return x.ann < y.ann
}

// computeRoleStats aggregates per-role occurrence vectors, page
// coverage, template candidacy, and occurrence lists (page order, then
// position). Roles are dense, so the result is a flat []roleStat. The
// two passes fan out across page chunks: vector columns are per-page,
// so workers write disjoint slots of the shared backing array, and the
// occurrence arena is filled through per-(worker, role) cursors derived
// from the vector prefix sums — every cell has exactly one writer.
func (a *Analysis) computeRoleStats() []roleStat {
	np := len(a.Pages)
	n := a.roleCount()
	stats := make([]roleStat, n)
	vecs := make([]int, n*np)
	for r := range stats {
		stats[r].vector = vecs[r*np : (r+1)*np : (r+1)*np]
		stats[r].cand = true
	}
	// Pass 1: occurrence vectors, plus per-worker non-candidate marks
	// (merged by OR — commutative, so merge order is irrelevant).
	marks, _ := parallel.MapWorkersCtx(nil, a.params.Workers, np,
		func(_ context.Context, _ int, c parallel.Chunk) ([]bool, error) {
			var notCand []bool
			for pi := c.Lo; pi < c.Hi; pi++ {
				for _, o := range a.Pages[pi] {
					vecs[o.role*np+pi]++
					if !a.templateCandidate(o) {
						if notCand == nil {
							notCand = make([]bool, n)
						}
						notCand[o.role] = true
					}
				}
			}
			return notCand, nil
		})
	for _, notCand := range marks {
		for r, bad := range notCand {
			if bad {
				stats[r].cand = false
			}
		}
	}
	// Page coverage and arena offsets from the completed vectors.
	counts := make([]int, n)
	total := 0
	for r := range stats {
		for _, c := range stats[r].vector {
			if c > 0 {
				stats[r].pages++
			}
			counts[r] += c
		}
		total += counts[r]
	}
	occArena := make([]*Occurrence, total)
	offs := make([]int, n+1)
	off := 0
	for r := range stats {
		offs[r] = off
		off += counts[r]
	}
	offs[n] = off
	// Pass 2: fill the per-role occurrence lists. A worker's cursor for
	// role r starts at offs[r] plus the occurrences of r on all pages
	// before its chunk — page-major iteration within the chunk then
	// reproduces exactly the sequential page order.
	if total > 0 {
		parallel.MapWorkersCtx(nil, a.params.Workers, np,
			func(_ context.Context, _ int, c parallel.Chunk) (struct{}, error) {
				cur := make([]int, n)
				for r := 0; r < n; r++ {
					base := offs[r]
					for pi := 0; pi < c.Lo; pi++ {
						base += vecs[r*np+pi]
					}
					cur[r] = base
				}
				for pi := c.Lo; pi < c.Hi; pi++ {
					for _, o := range a.Pages[pi] {
						occArena[cur[o.role]] = o
						cur[o.role]++
					}
				}
				return struct{}{}, nil
			})
	}
	for r := range stats {
		stats[r].occs = occArena[offs[r]:offs[r+1]:offs[r+1]]
	}
	return stats
}
