package eqclass

import (
	"fmt"
	"strings"
	"testing"

	"objectrunner/internal/obs"
	"objectrunner/internal/symtab"
)

// analysisFingerprint renders every observable artifact of an analysis —
// classes, hierarchy, descriptors, tuples, and the final per-occurrence
// role assignment — so two runs can be compared for exact equivalence.
func analysisFingerprint(a *Analysis) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "conflicts=%d iters=%d\n", a.Conflicts, a.Iterations)
	for _, e := range a.EQs {
		parent := 0
		if e.Parent != nil {
			parent = e.Parent.ID
		}
		fmt.Fprintf(&sb, "eq=%s parent=%d slot=%d hint=%.4f\n", e, parent, e.ParentSlot, e.OrderHint)
		for _, d := range e.Descs {
			fmt.Fprintf(&sb, "  desc %s ord=%d\n", d, d.Ordinal)
		}
		for pi, tups := range e.Tuples {
			fmt.Fprintf(&sb, "  page%d %v\n", pi, tups)
		}
		for _, prof := range a.SlotProfilesOf(e) {
			fmt.Fprintf(&sb, "  prof %+v\n", prof)
		}
	}
	for _, page := range a.Pages {
		for _, o := range page {
			fmt.Fprintf(&sb, "%d ", o.role)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// The staged core's resume path must be indistinguishable from the
// monolithic analysis: one Base serving every support value (including
// one below its validation floor) must reproduce the per-support
// AnalyzeTable results exactly, at any worker count.
func TestBaseAnalyzeMatchesMonolithAcrossSupportsAndWorkers(t *testing.T) {
	pages := tokenizeAll(t, fig3Pages(), concertRecs())
	refs := make(map[int]string)
	for support := 2; support <= 5; support++ {
		p := DefaultParams()
		p.Support = support
		p.Workers = 1
		a := AnalyzeTable(copyPages(pages, 1), p, nil, nil, nil)
		refs[support] = analysisFingerprint(a)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		p := DefaultParams()
		p.Support = 3 // the base's validation floor; support=2 resumes below it
		p.Workers = workers
		base := NewBase(copyPages(pages, 1), p, nil, nil)
		for support := 2; support <= 5; support++ {
			pp := p
			pp.Support = support
			a := base.Analyze(pp, nil, nil)
			if got := analysisFingerprint(a); got != refs[support] {
				t.Errorf("workers=%d support=%d diverges from monolith:\n got:\n%s\nwant:\n%s",
					workers, support, got, refs[support])
			}
		}
	}
}

// A base whose master pages were consumed by an in-place run must still
// serve Analyze calls correctly (by rebuilding from scratch).
func TestSpentBaseStillAnalyzes(t *testing.T) {
	pages := tokenizeAll(t, fig3Pages(), concertRecs())
	p := DefaultParams()
	p.Workers = 1
	want := analysisFingerprint(AnalyzeTable(copyPages(pages, 1), p, nil, nil, nil))

	base := NewBase(copyPages(pages, 1), p, nil, nil)
	base.analyzeInPlace(nil, nil) // consume the snapshot
	a := base.Analyze(p, nil, nil)
	if got := analysisFingerprint(a); got != want {
		t.Errorf("spent-base Analyze diverges:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestBaseReuseCounter(t *testing.T) {
	pages := tokenizeAll(t, fig3Pages(), concertRecs())
	p := DefaultParams()
	p.Workers = 1
	ob := obs.New()
	base := NewBase(copyPages(pages, 1), p, ob, nil)
	for support := 3; support <= 5; support++ {
		pp := p
		pp.Support = support
		base.Analyze(pp, nil, ob)
	}
	if got := ob.Counter("eqclass.base_builds"); got != 1 {
		t.Errorf("base_builds = %d, want 1", got)
	}
	// Three variations off one base: the second and third are reuses.
	if got := ob.Counter("eqclass.base_reuse"); got != 2 {
		t.Errorf("base_reuse = %d, want 2", got)
	}
}

// baseAnalysis runs interning + criterion-i role assignment so salvage
// paths can be unit-tested directly on the resulting role groups.
func baseAnalysis(t *testing.T, pages [][]*Occurrence) (*Analysis, []roleStat) {
	t.Helper()
	a := &Analysis{Pages: pages, params: DefaultParams().normalized(), tab: symtab.New()}
	InternPages(a.tab, pages)
	a.initLayout()
	a.assignRolesBy(func() func(*Occurrence) roleKey { return baseKey })
	return a, a.computeRoleStats()
}

// largestGroup returns the role group with the most roles.
func largestGroup(groups [][]int) []int {
	var best []int
	for _, g := range groups {
		if len(g) > len(best) {
			best = g
		}
	}
	return best
}

// Words swapped between pages invalidate their group; the tag subset
// still validates and is salvaged as one class.
func TestSalvageTagsOnlyClass(t *testing.T) {
	srcs := []string{
		"<html><body><div>alpha beta</div></body></html>",
		"<html><body><div>beta alpha</div></body></html>",
		"<html><body><div>alpha beta</div></body></html>",
	}
	a, stats := baseAnalysis(t, tokenizeAll(t, srcs, nil))
	group := largestGroup(groupRoles(stats, 3))
	if len(group) < 8 {
		t.Fatalf("expected one group holding tags and swapped words, got %d roles", len(group))
	}
	eqs, invalid := a.salvageEQs(group, stats)
	if !invalid {
		t.Error("swapped word order should invalidate the full group")
	}
	if len(eqs) != 1 {
		t.Fatalf("tags-only salvage should yield 1 class, got %d", len(eqs))
	}
	for _, d := range eqs[0].Descs {
		if d.Kind == KindWord {
			t.Errorf("salvaged class retains word separator %s", d)
		}
	}
}

// When even the tag subset is invalid (whole blocks reordered between
// pages), salvage partitions the tags by DOM path and keeps the per-path
// classes that validate.
func TestSalvagePathPartition(t *testing.T) {
	srcs := []string{
		"<html><body><div><i>x</i></div><p>y</p></body></html>",
		"<html><body><p>y</p><div><i>x</i></div></body></html>",
		"<html><body><div><i>x</i></div><p>y</p></body></html>",
	}
	a, stats := baseAnalysis(t, tokenizeAll(t, srcs, nil))
	group := largestGroup(groupRoles(stats, 3))
	eqs, invalid := a.salvageEQs(group, stats)
	if !invalid {
		t.Error("reordered blocks should invalidate the full group")
	}
	if len(eqs) < 2 {
		t.Fatalf("path partition should yield multiple classes, got %d", len(eqs))
	}
	for _, e := range eqs {
		paths := make(map[string]bool)
		for _, d := range e.Descs {
			if d.Kind == KindWord {
				t.Errorf("path-partition class retains word separator %s", d)
			}
			paths[d.Path] = true
		}
		if len(paths) != 1 {
			t.Errorf("salvaged class %s mixes paths %v", e, paths)
		}
	}
}

// An invalid group with no usable tag subset salvages to nothing.
func TestSalvageUnrecoverableGroup(t *testing.T) {
	wordPage := func(page int, vals ...string) []*Occurrence {
		out := make([]*Occurrence, len(vals))
		for i, v := range vals {
			out[i] = &Occurrence{Kind: KindWord, Value: v, Raw: v, Path: "p", Page: page, Pos: i}
		}
		return out
	}
	pages := [][]*Occurrence{
		wordPage(0, "a", "b"),
		wordPage(1, "b", "a"),
		wordPage(2, "a", "b"),
	}
	a, stats := baseAnalysis(t, pages)
	groups := groupRoles(stats, 3)
	if len(groups) != 1 || len(groups[0]) != 2 {
		t.Fatalf("expected one two-role group, got %v", groups)
	}
	eqs, invalid := a.salvageEQs(groups[0], stats)
	if !invalid || len(eqs) != 0 {
		t.Errorf("word-only invalid group: eqs=%v invalid=%v, want none/true", eqs, invalid)
	}
}

// mkEQ hand-builds a k-role class for hierarchy tests, one tuple list
// per page.
func mkEQ(id, k int, tuples [][]Tuple) *EQ {
	vector := make([]int, len(tuples))
	for pi, tups := range tuples {
		vector[pi] = len(tups)
	}
	roles := make([]int, k)
	for i := range roles {
		roles[i] = id*100 + i
	}
	return &EQ{ID: id, Roles: roles, Descs: make([]Desc, k), Vector: vector, Tuples: tuples}
}

func TestBuildHierarchyStraddlingClassDiscarded(t *testing.T) {
	page := make([]*Occurrence, 12)
	for i := range page {
		page[i] = &Occurrence{Kind: KindWord, Value: "w", Path: "p", Pos: i}
	}
	outer := mkEQ(1, 3, [][]Tuple{{{Positions: []int{0, 6, 11}}}})
	inner := mkEQ(2, 2, [][]Tuple{{{Positions: []int{2, 5}}}})
	// Straddles outer's separator at position 6: not inside any one slot.
	straddler := mkEQ(3, 2, [][]Tuple{{{Positions: []int{4, 8}}}})
	single := mkEQ(4, 1, [][]Tuple{{{Positions: []int{9}}}}) // K()==1: no slots

	a := &Analysis{
		Pages:  [][]*Occurrence{page},
		EQs:    []*EQ{outer, inner, straddler, single},
		params: DefaultParams().normalized(),
	}
	BuildHierarchy(a)

	if len(a.EQs) != 2 || a.EQs[0] != outer || a.EQs[1] != inner {
		t.Fatalf("kept classes = %v, want [outer inner]", a.EQs)
	}
	if inner.Parent != outer || inner.ParentSlot != 0 {
		t.Errorf("inner parent = %v slot %d, want outer slot 0", inner.Parent, inner.ParentSlot)
	}
	if len(outer.Children) != 1 || outer.Children[0] != inner {
		t.Errorf("outer children = %v, want [inner]", outer.Children)
	}
}

func TestBuildHierarchySparseAndEmptyClasses(t *testing.T) {
	mkPage := func(n int) []*Occurrence {
		page := make([]*Occurrence, n)
		for i := range page {
			page[i] = &Occurrence{Kind: KindWord, Value: "w", Path: "p", Pos: i}
		}
		return page
	}
	outer := mkEQ(1, 2, [][]Tuple{{{Positions: []int{0, 7}}}, {{Positions: []int{0, 7}}}})
	// Occurs on only one page (vector [1 0]); still nests under outer.
	sparse := mkEQ(2, 2, [][]Tuple{{{Positions: []int{2, 4}}}, {}})
	// No tuples at all: coverage zero, kept as an unrelated root.
	empty := mkEQ(3, 2, [][]Tuple{{}, {}})

	a := &Analysis{
		Pages:  [][]*Occurrence{mkPage(8), mkPage(8)},
		EQs:    []*EQ{outer, sparse, empty},
		params: DefaultParams().normalized(),
	}
	BuildHierarchy(a)

	if len(a.EQs) != 3 {
		t.Fatalf("kept %d classes, want 3", len(a.EQs))
	}
	if sparse.Parent != outer || sparse.ParentSlot != 0 {
		t.Errorf("sparse parent = %v slot %d, want outer slot 0", sparse.Parent, sparse.ParentSlot)
	}
	if empty.Parent != nil {
		t.Errorf("empty class parent = %v, want root", empty.Parent)
	}
}

func TestAnalyzeMaxIterExhaustion(t *testing.T) {
	pages := tokenizeAll(t, fig3Pages(), concertRecs())
	p := DefaultParams()
	p.MaxIter = 1
	a := Analyze(pages, p, nil)
	if a.Iterations != 1 {
		t.Errorf("Iterations = %d, want the MaxIter bound 1", a.Iterations)
	}
	if len(a.EQs) == 0 {
		t.Fatal("exhausted run still must produce classes")
	}
	kept := make(map[*EQ]bool, len(a.EQs))
	for _, e := range a.EQs {
		kept[e] = true
	}
	for _, e := range a.EQs {
		if e.Parent != nil && !kept[e.Parent] {
			t.Errorf("class %s has discarded parent", e)
		}
	}
}

// The early-stop hook path must be as worker-count-invariant as the full
// run: aborting after the second inspection leaves a partially
// differentiated analysis, and its every artifact must match the
// sequential abort exactly.
func TestBaseAnalyzeHookAbortDeterministicAcrossWorkers(t *testing.T) {
	pages := tokenizeAll(t, fig3Pages(), concertRecs())
	p := DefaultParams()
	var want string
	for _, workers := range []int{1, 2, 4, 8} {
		pp := p
		pp.Workers = workers
		base := NewBase(copyPages(pages, 1), pp, nil, nil)
		calls := 0
		a := base.Analyze(pp, func(*Analysis) bool {
			calls++
			return calls < 2
		}, nil)
		if calls != 2 {
			t.Fatalf("workers=%d: hook called %d times, want abort on call 2", workers, calls)
		}
		got := analysisFingerprint(a)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("workers=%d: aborted analysis diverged:\n got:\n%s\nwant:\n%s", workers, got, want)
		}
	}
}
